package netlistre_test

// Public-API differential tests: the exported DiffNetlists surface must
// recover the exact injected trojan gate set on every labeled golden/
// suspect article pair, report a self-diff as identical, and stay
// invariant under the metamorphic mutations that rewrite the suspect
// without touching its logic (topological reorder, internal renames).

import (
	"sort"
	"testing"

	"netlistre"
	"netlistre/internal/gen"
	"netlistre/internal/netlist"
	"netlistre/internal/oracle/mutate"
)

func sortedTrojan(lab *gen.Labels) []netlist.ID {
	want := append([]netlist.ID(nil), lab.Trojan...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	return want
}

func sameIDs(a, b []netlist.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPublicDiffRecoversTrojans drives the exported API over every
// golden/suspect pair: the added set must be exactly the labeled trojan
// nodes, with nothing removed or retyped.
func TestPublicDiffRecoversTrojans(t *testing.T) {
	for _, pair := range gen.TrojanArticlePairs() {
		pair := pair
		t.Run(pair[1], func(t *testing.T) {
			golden, _, err := gen.LabeledArticle(pair[0])
			if err != nil {
				t.Fatal(err)
			}
			suspect, lab, err := gen.LabeledArticle(pair[1])
			if err != nil {
				t.Fatal(err)
			}
			d := netlistre.DiffNetlists(golden, suspect, netlistre.NetlistDiffOptions{})
			if want := sortedTrojan(lab); !sameIDs(d.Added, want) {
				t.Errorf("Added = %v, want exactly the %d labeled trojan nodes %v",
					d.Added, len(want), want)
			}
			if len(d.Removed) != 0 || len(d.Retyped) != 0 {
				t.Errorf("Removed = %v, Retyped = %v; the trojan only adds logic",
					d.Removed, d.Retyped)
			}
			if d.Identical() {
				t.Error("Identical() = true for a trojaned suspect")
			}
		})
	}
}

// TestPublicDiffSelfIsIdentical: any netlist against itself is an empty
// diff.
func TestPublicDiffSelfIsIdentical(t *testing.T) {
	for _, name := range []string{"oc8051", "evoter", "oc8051-trojan", "evoter-trojan"} {
		nl, _, err := gen.LabeledArticle(name)
		if err != nil {
			t.Fatal(err)
		}
		d := netlistre.DiffNetlists(nl, nl, netlistre.NetlistDiffOptions{})
		if !d.Identical() {
			t.Errorf("%s: self-diff not identical: +%d -%d ~%d matched=%d",
				name, len(d.Added), len(d.Removed), len(d.Retyped), d.Matched)
		}
	}
}

// TestPublicDiffMetamorphic: rebuilding the suspect in a shuffled gate
// order ("reorder") or renaming every internal node ("rename") must not
// change what the diff recovers — the added set still equals the mutant's
// remapped trojan label exactly.
func TestPublicDiffMetamorphic(t *testing.T) {
	for _, pair := range gen.TrojanArticlePairs() {
		golden, _, err := gen.LabeledArticle(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		suspect, lab, err := gen.LabeledArticle(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		for _, mutName := range []string{"reorder", "rename"} {
			t.Run(pair[1]+"/"+mutName, func(t *testing.T) {
				m, err := mutate.Named(mutName)
				if err != nil {
					t.Fatal(err)
				}
				mut, err := m.Apply(suspect, lab, 11)
				if err != nil {
					t.Fatal(err)
				}
				d := netlistre.DiffNetlists(golden, mut.Netlist, netlistre.NetlistDiffOptions{})
				if want := sortedTrojan(mut.Labels); !sameIDs(d.Added, want) {
					t.Errorf("Added = %v, want the mutant's %d remapped trojan nodes %v",
						d.Added, len(want), want)
				}
				if len(d.Removed) != 0 || len(d.Retyped) != 0 {
					t.Errorf("Removed = %v, Retyped = %v; mutation must not surface as a change",
						d.Removed, d.Retyped)
				}
			})
		}
	}
}

// TestPublicBoundedCone exercises the exported cone-query surface on a
// trojan article: the fan-out cone of a primary input reaches gates, caps
// hold, and the fan-in cone of an output driver terminates at inputs.
func TestPublicBoundedCone(t *testing.T) {
	nl := netlistre.EVoterTrojaned()
	inputs := nl.Inputs()
	if len(inputs) == 0 {
		t.Fatal("article has no inputs")
	}
	res := nl.BoundedCone(inputs[0], netlistre.ConeFanout, 3, 50)
	if len(res.Nodes) == 0 || res.Nodes[0].ID != inputs[0] || res.Nodes[0].Depth != 0 {
		t.Fatalf("fanout cone must start at the root: %+v", res.Nodes)
	}
	if len(res.Nodes) > 50 {
		t.Errorf("size cap violated: %d nodes", len(res.Nodes))
	}
	for i := 1; i < len(res.Nodes); i++ {
		if res.Nodes[i].Depth < res.Nodes[i-1].Depth {
			t.Errorf("nodes not in BFS depth order at %d", i)
		}
		if res.Nodes[i].Depth > 3 {
			t.Errorf("depth cap violated: node %v at depth %d", res.Nodes[i].ID, res.Nodes[i].Depth)
		}
	}

	outs := nl.Outputs()
	if len(outs) == 0 {
		t.Fatal("article has no outputs")
	}
	fi := nl.BoundedCone(outs[0].Driver, netlistre.ConeFanin, 0, 0)
	if len(fi.Nodes) < 2 {
		t.Fatalf("unbounded fan-in cone of an output driver is implausibly small: %d", len(fi.Nodes))
	}
	if fi.TruncatedDepth || fi.TruncatedSize {
		t.Error("unbounded traversal reported truncation")
	}
}
