// Package netlistre reverse-engineers unstructured gate-level netlists,
// reproducing the algorithm portfolio of Subramanyan et al., "Reverse
// Engineering Digital Circuits Using Structural and Functional Analyses"
// (IEEE TETC 2014; the extended version of the DATE 2013 paper "Reverse
// Engineering Digital Circuits Using Functional Analysis").
//
// Given a flat sea of gates and latches with no module boundaries, Analyze
// infers high-level datapath components — multibit multiplexers, adders,
// subtractors, parity trees, decoders, demultiplexers, population counters,
// counters, shift registers, register files/RAMs, multibit registers and
// QBF-matched word operators — and resolves overlapping inferences with a
// 0-1 ILP so every netlist element is claimed by at most one module.
//
// A minimal session:
//
//	nl := netlistre.NewNetlist("dut")
//	... build or netlistre.ReadVerilog(...) ...
//	rep := netlistre.Analyze(nl, netlistre.Options{})
//	netlistre.WriteReport(os.Stdout, rep)
//
// For large designs, Simplify first (buffer/inverter-pair removal and
// structural hashing) and PartitionByResets to split an SoC into per-core
// sub-netlists (Section V-C of the paper).
//
// # Parallel execution and tracing
//
// Analyze runs the portfolio as a stage DAG on a bounded worker pool:
// the independent analyses (bitslice matching, common-support analysis,
// the latch-connection-graph detectors) execute concurrently and the
// downstream stages are gated on their declared inputs. Options.Workers
// bounds the pool (0 = GOMAXPROCS); results are merged in a canonical
// order so the report is bit-identical for any worker count, and
// Workers: 1 reproduces the serial pipeline exactly.
//
// Every run records per-stage wall-clock timings in Report.Trace (one
// StageTiming per stage, in pipeline order), rendered as a stage table
// by WriteReport and by the revan -trace flag. For long runs,
// Options.Progress receives a StageEvent at each stage start and finish.
//
// # Budgets, cancellation and degraded reports
//
// AnalyzeContext accepts a context for caller-driven cancellation, and
// Options.Timeout / Options.StageTimeout bound the whole run and each
// pipeline stage respectively. Cancellation is cooperative: the solver
// hot loops (CDCL search, QBF CEGAR refinement, ILP branch-and-bound,
// cut enumeration, word propagation, BDD class verification) poll the
// context and stop early, keeping whatever they found. A run that is
// canceled, times out, or loses a stage to a panic never returns an
// error — it returns a well-formed *degraded* report: Report.Degraded is
// set, each affected stage carries a non-OK StageTiming.Status
// (TimedOut, Canceled, or Failed with the panic text), downstream stages
// still run against the partial intermediate state, and the merged
// module list remains deterministic. Malformed inputs (dangling fanins,
// combinational cycles, latches with an unset D) are caught up front by
// Netlist.Validate and reported via Report.ValidationErr without running
// any analysis. Runs without a budget take a zero-overhead path: no
// polling hooks are installed and the report is byte-identical to an
// unbudgeted Analyze. The revan CLI exposes the run budget as -timeout
// and exits with code 3 when the report is degraded.
//
// # Incremental analysis: the stage store
//
// Options.StageStore enables per-stage memoization. Every pipeline stage
// is a pure function of its declared inputs, and its result is wrapped in
// a typed artifact whose digest covers the full input closure: the
// netlist's canonical Fingerprint, the stage name, the stage-relevant
// Options fields, and the digests of the upstream artifacts. Before a
// stage body runs, the scheduler consults the store; a hit replays the
// finished artifact without executing anything, recorded as provenance
// StageCached in the trace (cold stages are StageRan, stages whose body
// never started are StageSkipped). Population is single-flight, so
// concurrent analyses of the same content compute each stage once.
//
// Options digesting is selective: only fields that can change a stage's
// result participate. Workers, Timeout, StageTimeout, Progress and the
// other callbacks are excluded — results are worker-count- and
// budget-invariant — so a re-run with a different parallelism or budget
// still hits. ExtraPasses are arbitrary functions and cannot be digested;
// when present, the extra stage and everything downstream of it always
// executes.
//
// The cache invariants: (1) warm, cold, and any-worker-count runs of the
// same inputs produce byte-identical reports (only Trace provenance and
// wall-clock fields differ); (2) only complete artifacts of complete
// inputs are published — a stage interrupted by a timeout or
// cancellation, or one that consumed a partial upstream output, keeps its
// result out of the store; (3) with StageStore nil nothing is digested
// and the zero-overhead path is unchanged. Invariant (2) is what makes
// degraded runs resumable: re-running the same analysis after a timeout
// replays every stage that completed and re-executes only the interrupted
// ones. The revand service keeps one process-wide store for exactly this
// (resubmitting a timed-out job resumes it), and revan exposes the
// mechanism as -stage-cache.
package netlistre

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"netlistre/internal/artifact"
	"netlistre/internal/core"
	"netlistre/internal/module"
	"netlistre/internal/netlist"
	"netlistre/internal/overlap"
	"netlistre/internal/partition"
	"netlistre/internal/rtl"
	"netlistre/internal/simplify"
)

// Netlist is the gate-level circuit representation. See the methods on
// netlist.Netlist for the builder API (AddInput, AddGate, AddLatch,
// MarkOutput, ...).
type Netlist = netlist.Netlist

// ID identifies a netlist node.
type ID = netlist.ID

// NilID is the invalid node ID, returned by lookups that find nothing
// (e.g. Netlist.FindByName).
const NilID = netlist.Nil

// MaxLutInputs is the largest LUT arity a native k-input truth-table cell
// can carry (its packed mask is one uint64).
const MaxLutInputs = netlist.MaxLutInputs

// Kind enumerates netlist primitives (And, Or, Not, Latch, ...).
type Kind = netlist.Kind

// Module is one inferred high-level component.
type Module = module.Module

// ModuleType classifies inferred modules (Adder, Mux, Counter, RAM, ...).
type ModuleType = module.Type

// Report is the outcome of analyzing one netlist.
type Report = core.Report

// Options configures the analysis portfolio. The zero value runs every
// algorithm with the paper's parameters. Options.Workers bounds the
// stage scheduler's worker pool; Options.Progress observes stage
// start/finish events.
type Options = core.Options

// StageTiming is one Report.Trace entry: a pipeline stage's start
// offset, duration and produced item count.
type StageTiming = core.StageTiming

// StageEvent is delivered to Options.Progress when a pipeline stage
// starts (Done=false) and finishes (Done=true).
type StageEvent = core.StageEvent

// StageStatus classifies how a pipeline stage ended (see StageTiming).
type StageStatus = core.StageStatus

// Stage end statuses. Anything but StageOK marks the report Degraded.
const (
	StageOK       = core.StageOK
	StageTimedOut = core.StageTimedOut
	StageCanceled = core.StageCanceled
	StageFailed   = core.StageFailed
)

// StageProvenance records how a stage's output came to be (see
// StageTiming.Provenance and the package comment, "Incremental analysis:
// the stage store").
type StageProvenance = core.StageProvenance

// Stage provenances: the body executed, the artifact was replayed from
// the stage store, or the body never started because the run was over.
const (
	StageRan     = core.StageRan
	StageCached  = core.StageCached
	StageSkipped = core.StageSkipped
)

// StageStore is a bounded, content-addressed, single-flight cache of
// per-stage analysis artifacts; assign one to Options.StageStore to make
// analyses incremental and degraded runs resumable. Safe for concurrent
// use by any number of analyses.
type StageStore = artifact.Store

// StageCacheStats is a point-in-time snapshot of a StageStore's counters.
type StageCacheStats = artifact.Stats

// NewStageStore returns a stage store bounded to maxEntries artifacts
// (<= 0 selects a default of 1024).
func NewStageStore(maxEntries int) *StageStore { return artifact.NewStore(maxEntries) }

// Re-exported netlist primitives.
const (
	And   = netlist.And
	Or    = netlist.Or
	Nand  = netlist.Nand
	Nor   = netlist.Nor
	Xor   = netlist.Xor
	Xnor  = netlist.Xnor
	Not   = netlist.Not
	Buf   = netlist.Buf
	Latch = netlist.Latch
)

// Re-exported module types for report inspection.
const (
	TypeMux              = module.Mux
	TypeDecoder          = module.Decoder
	TypeDemux            = module.Demux
	TypePopCount         = module.PopCount
	TypeAdder            = module.Adder
	TypeSubtractor       = module.Subtractor
	TypeParityTree       = module.ParityTree
	TypeCounter          = module.Counter
	TypeShiftRegister    = module.ShiftRegister
	TypeRAM              = module.RAM
	TypeMultibitRegister = module.MultibitRegister
	TypeWordOp           = module.WordOp
	TypeGating           = module.Gating
	TypeFused            = module.Fused
	TypeCandidate        = module.Candidate
)

// NewNetlist returns an empty netlist with the given name.
func NewNetlist(name string) *Netlist { return netlist.New(name) }

// ReadVerilog parses a structural Verilog netlist (the gate-level subset
// documented in the internal/netlist package).
func ReadVerilog(r io.Reader) (*Netlist, error) { return netlist.ReadVerilog(r) }

// ReadBLIF parses a netlist in the Berkeley Logic Interchange Format
// subset (.model/.inputs/.outputs/.names/.latch). Covers the writer
// marked as LUTs (`.names ... # lut`) rebuild as native k-input cells;
// everything else decomposes into primitive gates.
func ReadBLIF(r io.Reader) (*Netlist, error) { return netlist.ReadBLIF(r) }

// BLIFOptions configures ReadBLIFOpts. The Luts field keeps every
// .names cover table (up to MaxLutInputs inputs) as a native Lut node —
// the natural reading for foreign LUT-mapped FPGA BLIF that lacks the
// writer's per-cover markers.
type BLIFOptions = netlist.BLIFOptions

// ReadBLIFOpts is ReadBLIF with explicit options.
func ReadBLIFOpts(r io.Reader, opt BLIFOptions) (*Netlist, error) {
	return netlist.ReadBLIFOpts(r, opt)
}

// Analyze runs the full reverse-engineering portfolio.
func Analyze(nl *Netlist, opt Options) *Report { return core.Analyze(nl, opt) }

// AnalyzeContext runs the portfolio under a context. Cancellation and the
// Options.Timeout / Options.StageTimeout budgets are cooperative and
// never produce an error: the result is a well-formed report with
// Report.Degraded set and the affected stages marked in Report.Trace
// (see the package comment, "Budgets, cancellation and degraded
// reports").
func AnalyzeContext(ctx context.Context, nl *Netlist, opt Options) *Report {
	return core.AnalyzeContext(ctx, nl, opt)
}

// RTLResult is the outcome of lowering a report to word-level Verilog
// (see EmitRTL).
type RTLResult = rtl.EmitResult

// RTLStats summarizes what one RTL emission lowered.
type RTLStats = rtl.EmitStats

// RTLEquiv is the machine-readable verdict of the RTL round-trip
// equivalence check (see CheckRTL).
type RTLEquiv = rtl.EquivResult

// EmitRTL lowers an analysis report plus its netlist into word-level
// Verilog: resolved modules become reference-library template instances
// or always blocks, recovered words become vector wires, and everything
// the analysis left unresolved passes through as residual structural
// logic, so the output is always a complete design. Emission is
// deterministic: byte-identical across worker counts and across
// Verilog/BLIF serializations of the same design. A nil report emits a
// pure structural passthrough.
func EmitRTL(nl *Netlist, rep *Report) (*RTLResult, error) { return rtl.Emit(nl, rep) }

// CheckRTL re-elaborates an emission and verifies it against the
// original netlist — by fingerprint when the emission was pure
// passthrough, by bit-parallel simulation plus exhaustive small-cone
// truth tables otherwise. An inequivalent design is reported in the
// result, not as an error.
func CheckRTL(nl *Netlist, er *RTLResult) (*RTLEquiv, error) { return rtl.Check(nl, er) }

// DecompileRTL emits RTL for the report and self-checks it in one call.
func DecompileRTL(nl *Netlist, rep *Report) (*RTLResult, *RTLEquiv, error) {
	return rtl.Decompile(nl, rep)
}

// NetlistDiff is the outcome of structurally and functionally aligning a
// suspect netlist revision against a golden one (see DiffNetlists).
type NetlistDiff = netlist.Diff

// NetlistDiffOptions tunes DiffNetlists. The zero value selects the
// calibrated defaults (simulation and WL resynchronization enabled).
type NetlistDiffOptions = netlist.DiffOptions

// RetypedPair is one golden/suspect node pair whose position matched but
// whose function changed (see NetlistDiff.Retyped).
type RetypedPair = netlist.RetypedPair

// DiffNetlists aligns suspect against golden with a multi-pass matcher —
// boundary anchoring, forward/backward structural signatures, dormant
// bit-parallel simulation, trace-seeded Weisfeiler-Leman refinement, and
// role inference across splice frontiers — and returns the unmatched
// remainder classified as added, removed, and retyped nodes plus boundary
// (port) changes. On a trojaned revision of a clean design the Added set
// is the injected gate set; NetlistDiff.SuspectSet bundles it with the
// suspect halves of retyped pairs. Both netlists should be Validated;
// neither is mutated.
func DiffNetlists(golden, suspect *Netlist, opt NetlistDiffOptions) *NetlistDiff {
	return netlist.DiffNetlists(golden, suspect, opt)
}

// ConeDirection selects which way BoundedCone walks (ConeFanin against
// signal flow, ConeFanout with it).
type ConeDirection = netlist.ConeDirection

// Cone traversal directions for BoundedCone.
const (
	ConeFanin  = netlist.Fanin
	ConeFanout = netlist.Fanout
)

// ConeNode is one visited node of a bounded cone traversal.
type ConeNode = netlist.ConeNode

// BoundedConeResult is the outcome of a bounded cone query: the visited
// nodes in deterministic BFS order plus explicit truncation flags. Query
// with Netlist.BoundedCone(root, dir, maxDepth, maxNodes); bounds <= 0 are
// unbounded. The revand session API exposes this as the per-session cone
// endpoint.
type BoundedConeResult = netlist.BoundedConeResult

// SimplifyResult pairs a simplified netlist with its node mapping.
type SimplifyResult = simplify.Result

// Simplify removes buffers, delay chains and paired inverters and merges
// structurally equivalent gates (the paper's BigSoC pre-pass, Section
// V-C.1).
func Simplify(nl *Netlist) SimplifyResult { return simplify.Run(nl) }

// CorePartition is one reset domain of a partitioned SoC.
type CorePartition struct {
	// Name is the reset input's name.
	Name string
	// Netlist is the extracted standalone sub-netlist.
	Netlist *Netlist
	// Latches and Elements count the partition's contents in the parent.
	Latches  int
	Elements int
}

// PartitionSummary reports whole-design partition accounting (Table 5).
type PartitionSummary struct {
	Cores []CorePartition
	// MultiOwned counts gates placed in more than one partition.
	MultiOwned int
	// Unowned counts gates in no partition (inter-core interconnect).
	Unowned int
}

// PartitionByResets splits nl into per-core sub-netlists anchored at the
// named reset inputs (Section V-C.2).
func PartitionByResets(nl *Netlist, resetNames []string) (PartitionSummary, error) {
	var resets []ID
	for _, name := range resetNames {
		id := nl.FindByName(name)
		if id == netlist.Nil {
			return PartitionSummary{}, fmt.Errorf("netlistre: no input named %q", name)
		}
		resets = append(resets, id)
	}
	s := partition.ByResets(nl, resets)
	out := PartitionSummary{MultiOwned: s.MultiOwned, Unowned: s.Unowned}
	for _, p := range s.Partitions {
		sub, _ := partition.Extract(nl, p)
		out.Cores = append(out.Cores, CorePartition{
			Name:     p.Name,
			Netlist:  sub,
			Latches:  len(p.Latches),
			Elements: len(p.Elements),
		})
	}
	return out, nil
}

// ResolveObjective selects the overlap-resolution objective.
type ResolveObjective = overlap.Objective

// Overlap-resolution objectives (Section IV).
const (
	MaxCoverage = overlap.MaxCoverage
	MinModules  = overlap.MinModules
)

// errWriter wraps a writer so a sequence of formatted writes can be
// checked once at the end: after the first failure every later write is a
// no-op and the first error is kept.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...interface{}) {
	if ew.err != nil {
		return
	}
	_, ew.err = fmt.Fprintf(ew.w, format, args...)
}

// degradedStages summarizes the non-OK trace entries for the report
// header, e.g. "words timed-out, modmatch canceled".
func degradedStages(rep *Report) string {
	var parts []string
	for _, st := range rep.Trace {
		if st.Status != StageOK {
			parts = append(parts, st.Name+" "+st.Status.String())
		}
	}
	return strings.Join(parts, ", ")
}

// firstLine truncates multi-line error text (panic stacks) for one-line
// rendering.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// WriteReport renders a human-readable module and coverage summary.
func WriteReport(w io.Writer, rep *Report) error {
	ew := &errWriter{w: w}
	stats := rep.Netlist.Stats()
	ew.printf("design %s: %d inputs, %d outputs, %d gates, %d latches\n",
		rep.Netlist.Name, stats.Inputs, stats.Outputs, stats.Gates, stats.Latches)
	if rep.ValidationErr != nil {
		ew.printf("input validation FAILED:\n")
		for _, line := range strings.Split(rep.ValidationErr.Error(), "\n") {
			ew.printf("  %s\n", line)
		}
	} else if rep.Degraded {
		ew.printf("DEGRADED report (%s): results are partial\n", degradedStages(rep))
	}
	ew.printf("inferred %d modules (%d after overlap resolution)\n",
		len(rep.All), len(rep.Resolved))
	ew.printf("coverage: %.1f%% before resolution, %.1f%% after\n",
		100*rep.CoverageFractionBefore(), 100*rep.CoverageFraction())
	ew.printf("analysis time: %v\n", rep.Runtime)
	if rep.OverlapErr != nil {
		ew.printf("overlap resolution FAILED: %v\n", rep.OverlapErr)
	}
	ew.printf("\n")

	type row struct {
		ty            ModuleType
		before, after int
	}
	var rows []row
	for ty, n := range rep.CountsBefore {
		rows = append(rows, row{ty, n, rep.CountsAfter[ty]})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ty < rows[j].ty })
	ew.printf("%-20s %8s %8s\n", "module type", "found", "selected")
	for _, r := range rows {
		ew.printf("%-20s %8d %8d\n", r.ty, r.before, r.after)
	}

	// Largest resolved modules.
	sel := append([]*Module(nil), rep.Resolved...)
	sort.Slice(sel, func(i, j int) bool { return sel[i].Size() > sel[j].Size() })
	n := len(sel)
	if n > 12 {
		n = 12
	}
	if n > 0 {
		ew.printf("\nlargest resolved modules:\n")
		for _, m := range sel[:n] {
			ew.printf("  %-28s %5d elements\n", m.Name, m.Size())
		}
	}
	if len(rep.Trace) > 0 {
		ew.printf("\n")
		if ew.err == nil {
			ew.err = WriteTrace(w, rep)
		}
	}
	return ew.err
}

// WriteTrace renders the per-stage timing table of Report.Trace. The
// modules column is right-aligned under its header, and every row carries
// the stage's provenance (ran, cached, or skipped) so warm-cache and
// degraded runs are distinguishable at a glance; stages that did not
// complete normally additionally carry a trailing status column.
func WriteTrace(w io.Writer, rep *Report) error {
	ew := &errWriter{w: w}
	ew.printf("%-12s %12s %12s %8s  %s\n", "stage", "start", "duration", "modules", "origin")
	for _, st := range rep.Trace {
		if st.Status == StageOK {
			ew.printf("%-12s %12v %12v %8d  %s\n",
				st.Name, st.Start, st.Duration, st.Modules, st.Provenance)
			continue
		}
		detail := ""
		if st.Err != "" {
			detail = ": " + firstLine(st.Err)
		}
		ew.printf("%-12s %12v %12v %8d  %-7s  [%s%s]\n",
			st.Name, st.Start, st.Duration, st.Modules, st.Provenance, st.Status, detail)
	}
	return ew.err
}
