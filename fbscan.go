package netlistre

import (
	"netlistre/internal/fbscan"
	"netlistre/internal/module"
	"netlistre/internal/netlist"
)

// FindFramebufferRead is a design-specific inference pass detecting OR-AND
// framebuffer read planes with one-hot row selects (Section V-C.3 of the
// paper). Plug it into Options.ExtraPasses:
//
//	opt := netlistre.Options{ExtraPasses: []func(*netlistre.Netlist) []*netlistre.Module{
//		netlistre.FindFramebufferRead,
//	}}
func FindFramebufferRead(nl *netlist.Netlist) []*module.Module {
	return fbscan.Find(nl, fbscan.Options{})
}
