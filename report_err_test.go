package netlistre

import (
	"bytes"
	"strings"
	"testing"
)

// TestOverlapInfeasibleSurfaced exercises the one failure mode of overlap
// resolution — a MinModules coverage target above what is coverable — and
// checks it is recorded in Report.OverlapErr and rendered by WriteReport
// instead of being silently dropped.
func TestOverlapInfeasibleSurfaced(t *testing.T) {
	nl := buildSmallDesign()
	opt := Options{SkipModMatch: true}
	opt.Overlap.Objective = MinModules
	// No selection can reach a target beyond every element the inferred
	// modules could ever claim (module element sets may also include
	// const nodes, so the bound is deliberately far above gates+latches).
	opt.Overlap.CoverageTarget = 1 << 30

	rep := Analyze(nl, opt)
	if rep.OverlapErr == nil {
		t.Fatal("infeasible MinModules target did not set OverlapErr")
	}
	if len(rep.Resolved) != 0 {
		t.Errorf("Resolved should be empty on infeasible resolution, got %d", len(rep.Resolved))
	}
	if len(rep.All) == 0 {
		t.Error("All (pre-resolution set) should survive an infeasible resolution")
	}

	var buf bytes.Buffer
	if err := WriteReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "overlap resolution FAILED") {
		t.Errorf("WriteReport does not surface the overlap error:\n%s", buf.String())
	}

	js := ToJSONReport(rep)
	if js.Overlap.Error == "" {
		t.Error("JSON report missing overlap error")
	}

	// A feasible target on the same design must resolve cleanly.
	opt.Overlap.CoverageTarget = 1
	rep = Analyze(nl, opt)
	if rep.OverlapErr != nil {
		t.Fatalf("feasible MinModules target failed: %v", rep.OverlapErr)
	}
	if len(rep.Resolved) == 0 {
		t.Error("feasible MinModules selected nothing")
	}
}
