package netlistre

// Decompilation smoke at the root: the emitted word-level Verilog must be
// byte-identical across worker counts and across input serializations, and
// every emission must pass its round-trip equivalence self-check. The full
// ten-article matrix with the residual-count baseline gate runs under
// cmd/revcheck -decompile / `make decompile-smoke`.

import (
	"bytes"
	"testing"
)

func decompileArticles(t *testing.T) []string {
	if testing.Short() {
		return []string{"usb", "evoter"}
	}
	return LabeledTestArticleNames()
}

// TestDecompileSmoke lowers each article at workers=1 and workers=4: the
// two emissions must match byte for byte, and the self-check must pass.
func TestDecompileSmoke(t *testing.T) {
	for _, article := range decompileArticles(t) {
		article := article
		t.Run(article, func(t *testing.T) {
			t.Parallel()
			nl, _, err := LabeledTestArticle(article)
			if err != nil {
				t.Fatal(err)
			}
			var emissions []*RTLResult
			for _, workerCount := range []int{1, 4} {
				opt := Options{Workers: workerCount}
				opt.Overlap.Sliceable = true
				rep := Analyze(nl, opt)
				er, err := EmitRTL(nl, rep)
				if err != nil {
					t.Fatalf("workers=%d: %v", workerCount, err)
				}
				emissions = append(emissions, er)
			}
			if !bytes.Equal(emissions[0].Verilog, emissions[1].Verilog) {
				t.Error("emitted RTL differs between workers=1 and workers=4")
			}
			eq, err := CheckRTL(nl, emissions[0])
			if err != nil {
				t.Fatal(err)
			}
			if !eq.Equivalent {
				t.Errorf("round-trip equivalence failed: %v", eq)
			}
			if st := emissions[0].Stats; st.Instances+st.AlwaysBlocks == 0 {
				t.Errorf("nothing lowered: %+v", st)
			}
		})
	}
}

// TestDecompileCrossSerialization re-reads each article through Verilog
// and through BLIF and decompiles both: node IDs, net resolution order,
// and gate lowering all differ between the two parsers, so byte-identical
// emissions mean the backend is driven purely by canonical structure.
func TestDecompileCrossSerialization(t *testing.T) {
	for _, article := range decompileArticles(t) {
		article := article
		t.Run(article, func(t *testing.T) {
			t.Parallel()
			nl, _, err := LabeledTestArticle(article)
			if err != nil {
				t.Fatal(err)
			}
			var vbuf, bbuf bytes.Buffer
			if err := nl.WriteVerilog(&vbuf); err != nil {
				t.Fatal(err)
			}
			if err := nl.WriteBLIF(&bbuf); err != nil {
				t.Fatal(err)
			}
			fromV, err := ReadVerilog(&vbuf)
			if err != nil {
				t.Fatal(err)
			}
			fromB, err := ReadBLIF(&bbuf)
			if err != nil {
				t.Fatal(err)
			}
			emit := func(n *Netlist) *RTLResult {
				t.Helper()
				opt := Options{Workers: 1}
				opt.Overlap.Sliceable = true
				er, eq, err := DecompileRTL(n, Analyze(n, opt))
				if err != nil {
					t.Fatal(err)
				}
				if !eq.Equivalent {
					t.Fatalf("round-trip equivalence failed: %v", eq)
				}
				return er
			}
			ev, eb := emit(fromV), emit(fromB)
			if !bytes.Equal(ev.Verilog, eb.Verilog) {
				t.Error("emission from the Verilog round-trip differs from the BLIF round-trip")
			}
		})
	}
}
