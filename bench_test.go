package netlistre

// Benchmarks regenerating every table of the paper's evaluation (one
// benchmark per table) plus ablations over the design choices called out in
// DESIGN.md. Coverage fractions and other qualitative outputs are attached
// to the benchmark results via ReportMetric so `go test -bench .` records
// both the runtime and the reproduced result shape.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"netlistre/internal/bitslice"
	"netlistre/internal/core"
	"netlistre/internal/cuts"
	"netlistre/internal/gen"
	"netlistre/internal/overlap"
	"netlistre/internal/simplify"
	"netlistre/internal/words"
)

func BenchmarkTable2Articles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := Table2()
		if len(rows) != 8 {
			b.Fatalf("expected 8 articles, got %d", len(rows))
		}
	}
}

func BenchmarkTable3Portfolio(b *testing.B) {
	for _, name := range gen.ArticleNames() {
		b.Run(name, func(b *testing.B) {
			var cov float64
			for i := 0; i < b.N; i++ {
				nl, err := gen.Article(name)
				if err != nil {
					b.Fatal(err)
				}
				opt := core.Options{}
				opt.Overlap.Sliceable = true
				rep := core.Analyze(nl, opt)
				cov = rep.CoverageFraction()
			}
			b.ReportMetric(100*cov, "coverage%")
		})
	}
}

func BenchmarkTable4ILP(b *testing.B) {
	// Pre-compute the module sets once; benchmark only the resolution.
	type inst struct {
		name string
		rep  *core.Report
	}
	var insts []inst
	for _, name := range gen.ArticleNames() {
		nl, err := gen.Article(name)
		if err != nil {
			b.Fatal(err)
		}
		insts = append(insts, inst{name, core.Analyze(nl, core.Options{})})
	}
	for _, formulation := range []string{"basic", "sliceable"} {
		sliceable := formulation == "sliceable"
		b.Run(formulation, func(b *testing.B) {
			var covered, total float64
			for i := 0; i < b.N; i++ {
				covered, total = 0, 0
				for _, in := range insts {
					res, err := overlap.Resolve(in.rep.All, overlap.Options{Sliceable: sliceable})
					if err != nil {
						b.Fatal(err)
					}
					covered += float64(res.Coverage)
					total += float64(in.rep.TotalElements)
				}
			}
			b.ReportMetric(100*covered/total, "coverage%")
		})
	}
}

func BenchmarkTable5Partition(b *testing.B) {
	var res Table5Result
	for i := 0; i < b.N; i++ {
		res = Table5()
	}
	b.ReportMetric(100*(1-float64(res.SimplifiedGates)/float64(res.RawGates)), "reduction%")
	b.ReportMetric(100*res.UnownedFraction, "unowned%")
}

func BenchmarkTable6BigSoC(b *testing.B) {
	var rows []Table6Row
	for i := 0; i < b.N; i++ {
		rows = Table6()
	}
	var covered, total float64
	for _, r := range rows {
		covered += r.Coverage * float64(r.Gates+r.Latches)
		total += float64(r.Gates + r.Latches)
	}
	b.ReportMetric(100*covered/total, "coverage%")
}

func BenchmarkTable7Trojans(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := Table7()
		if len(rows) != 2 {
			b.Fatal("expected 2 trojan pairs")
		}
	}
}

func BenchmarkTable8TrojanInference(b *testing.B) {
	var rows []Table8Row
	for i := 0; i < b.N; i++ {
		rows = Table8()
	}
	// Attach the analyst-visible deltas as metrics: the trojan must add
	// modules of its characteristic kinds.
	dEv := TrojanDelta(rows[0], rows[1])
	dOc := TrojanDelta(rows[2], rows[3])
	b.ReportMetric(float64(dEv[TypeMux]), "evoter-extra-muxes")
	b.ReportMetric(float64(dOc[TypeCounter]), "oc8051-extra-counters")
	b.ReportMetric(float64(dOc[TypeGating]), "oc8051-extra-gating")
}

// BenchmarkAnalyzeWorkers compares the serial pipeline (Workers: 1)
// against the parallel stage scheduler (Workers: GOMAXPROCS) on the
// largest article, and attaches the per-stage timings of the last run as
// metrics so scaling behavior is diagnosable from the bench output.
func BenchmarkAnalyzeWorkers(b *testing.B) {
	nl, err := gen.Article("riscfpu")
	if err != nil {
		b.Fatal(err)
	}
	// On a single-core host GOMAXPROCS(0) is 1; still measure a
	// multi-worker run so the scheduler overhead is visible.
	parallel := runtime.GOMAXPROCS(0)
	if parallel < 2 {
		parallel = 4
	}
	for _, workers := range []int{1, parallel} {
		name := "serial"
		if workers != 1 {
			name = fmt.Sprintf("parallel-%d", workers)
		}
		b.Run(name, func(b *testing.B) {
			var rep *core.Report
			for i := 0; i < b.N; i++ {
				rep = core.Analyze(nl, core.Options{Workers: workers})
			}
			for _, st := range rep.Trace {
				b.ReportMetric(float64(st.Duration.Microseconds())/1000, st.Name+"-ms")
			}
			b.ReportMetric(float64(len(rep.All)), "modules")
		})
	}
	// Budgeted variant: a Timeout that never fires installs the context
	// plumbing and the solver Interrupt polling hooks, so comparing this
	// against "serial" above measures the cost of the budgeted path on a
	// run that completes normally (kept under a few percent by the masked
	// polling intervals).
	b.Run("budgeted-serial", func(b *testing.B) {
		var rep *core.Report
		for i := 0; i < b.N; i++ {
			rep = core.Analyze(nl, core.Options{Workers: 1, Timeout: time.Hour})
		}
		if rep.Degraded {
			b.Fatal("budgeted run unexpectedly degraded")
		}
		b.ReportMetric(float64(len(rep.All)), "modules")
	})
}

// --- Ablations ---

// BenchmarkAblationCutK sweeps the cut-size limit (the paper fixes k=6 and
// reports 15-35 cuts per gate at that setting).
func BenchmarkAblationCutK(b *testing.B) {
	nl, err := gen.Article("oc8051")
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{4, 5, 6} {
		b.Run(map[int]string{4: "k4", 5: "k5", 6: "k6"}[k], func(b *testing.B) {
			var avg float64
			var matches int
			for i := 0; i < b.N; i++ {
				sets := cuts.Enumerate(nl, cuts.Options{K: k})
				avg = cuts.AverageCutsPerGate(nl, sets)
				res := bitslice.Find(nl, bitslice.Options{Cuts: cuts.Options{K: k}})
				matches = 0
				for _, ms := range res.ByClass {
					matches += len(ms)
				}
			}
			b.ReportMetric(avg, "cuts/gate")
			b.ReportMetric(float64(matches), "matches")
		})
	}
}

// BenchmarkAblationMinSlices sweeps the MinSlices parameter of the
// sliceable ILP (the paper fixes 2).
func BenchmarkAblationMinSlices(b *testing.B) {
	nl, err := gen.Article("router")
	if err != nil {
		b.Fatal(err)
	}
	rep := core.Analyze(nl, core.Options{})
	for _, ms := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "min1", 2: "min2", 4: "min4"}[ms], func(b *testing.B) {
			var cov float64
			for i := 0; i < b.N; i++ {
				res, err := overlap.Resolve(rep.All, overlap.Options{Sliceable: true, MinSlices: ms})
				if err != nil {
					b.Fatal(err)
				}
				cov = float64(res.Coverage) / float64(rep.TotalElements)
			}
			b.ReportMetric(100*cov, "coverage%")
		})
	}
}

// BenchmarkAblationSimplify compares analyzing a buffered core with and
// without the structural simplification pre-pass.
func BenchmarkAblationSimplify(b *testing.B) {
	base, err := gen.Article("aemb")
	if err != nil {
		b.Fatal(err)
	}
	noisy := gen.AddElectricalNoise(base, 11, 0.25)
	run := func(b *testing.B, pre bool) {
		var cov float64
		for i := 0; i < b.N; i++ {
			nl := noisy
			if pre {
				nl = simplify.Run(noisy).Netlist
			}
			rep := core.Analyze(nl, core.Options{SkipModMatch: true})
			cov = rep.CoverageFraction()
		}
		b.ReportMetric(100*cov, "coverage%")
	}
	b.Run("raw", func(b *testing.B) { run(b, false) })
	b.Run("simplified", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationControlWires sweeps the word-propagation control budget
// (the paper enumerates combinations of up to 3 control wires).
func BenchmarkAblationControlWires(b *testing.B) {
	nl, err := gen.Article("aemb")
	if err != nil {
		b.Fatal(err)
	}
	rep := core.Analyze(nl, core.Options{SkipWordProp: true, SkipModMatch: true})
	seeds := rep.Words
	for _, mc := range []int{1, 2, 3} {
		b.Run(map[int]string{1: "ctl1", 2: "ctl2", 3: "ctl3"}[mc], func(b *testing.B) {
			var found int
			for i := 0; i < b.N; i++ {
				all, _ := words.PropagateAll(nl, seeds, 3, words.Options{MaxControls: mc})
				found = len(all)
			}
			b.ReportMetric(float64(found), "words")
		})
	}
}

// BenchmarkAblationObjective compares the two overlap-resolution
// objectives: maximize coverage vs minimize module count at a coverage
// floor.
func BenchmarkAblationObjective(b *testing.B) {
	nl, err := gen.Article("evoter")
	if err != nil {
		b.Fatal(err)
	}
	rep := core.Analyze(nl, core.Options{})
	maxRes, err := overlap.Resolve(rep.All, overlap.Options{Sliceable: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("max-coverage", func(b *testing.B) {
		var mods int
		for i := 0; i < b.N; i++ {
			res, err := overlap.Resolve(rep.All, overlap.Options{Sliceable: true})
			if err != nil {
				b.Fatal(err)
			}
			mods = len(res.Selected)
		}
		b.ReportMetric(float64(mods), "modules")
		b.ReportMetric(float64(maxRes.Coverage), "elements")
	})
	b.Run("min-modules", func(b *testing.B) {
		target := int(0.9 * float64(maxRes.Coverage))
		var mods int
		for i := 0; i < b.N; i++ {
			res, err := overlap.Resolve(rep.All, overlap.Options{
				Objective: overlap.MinModules, CoverageTarget: target,
			})
			if err != nil {
				b.Fatal(err)
			}
			mods = len(res.Selected)
		}
		b.ReportMetric(float64(mods), "modules")
		b.ReportMetric(float64(target), "target-elements")
	})
}
