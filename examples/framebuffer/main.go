// Framebuffer demonstrates the analyst-extension API of Section VI-B.1:
// the generic portfolio misses a VGA-style OR-AND framebuffer read plane,
// and a design-specific pass — written with datasheet knowledge — recovers
// it and lifts coverage.
//
//	go run ./examples/framebuffer
package main

import (
	"fmt"

	"netlistre"
)

func main() {
	nl, _ := netlistre.VGACore(16, 12)
	st := nl.Stats()
	fmt.Printf("VGA core: %d gates, %d latches (16x12 framebuffer + scan counter)\n\n",
		st.Gates, st.Latches)

	// Generic portfolio only.
	base := netlistre.Analyze(nl, netlistre.Options{SkipModMatch: true})
	fmt.Printf("generic portfolio:        %5.1f%% coverage, %d modules\n",
		100*base.CoverageFraction(), len(base.Resolved))

	// With the design-specific framebuffer pass (the paper's VGA story).
	opt := netlistre.Options{
		SkipModMatch: true,
		ExtraPasses: []func(*netlistre.Netlist) []*netlistre.Module{
			netlistre.FindFramebufferRead,
		},
	}
	ext := netlistre.Analyze(nl, opt)
	fmt.Printf("with framebuffer pass:    %5.1f%% coverage, %d modules\n\n",
		100*ext.CoverageFraction(), len(ext.Resolved))

	for _, m := range ext.Resolved {
		if m.Attr["kind"] == "or-and scan plane" {
			fmt.Printf("found %s covering %d elements\n", m.Name, m.Size())
			fmt.Printf("  pixel outputs: %v\n", m.Port("pixel"))
			fmt.Printf("  row selects:   %v\n", m.Port("rowsel"))
		}
	}
}
