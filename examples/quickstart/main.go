// Quickstart: build a small datapath as a flat sea of gates, run the
// reverse-engineering portfolio, and print the inferred module report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"netlistre"
)

func main() {
	// Build an unstructured netlist: an 8-bit adder, a 2:1 word mux and a
	// 5-bit counter, all flattened to primitive gates with no module
	// boundaries — the reverse-engineering tool sees only gates.
	nl := netlistre.NewNetlist("quickstart")

	var a, b []netlistre.ID
	for i := 0; i < 8; i++ {
		a = append(a, nl.AddInput(fmt.Sprintf("a%d", i)))
		b = append(b, nl.AddInput(fmt.Sprintf("b%d", i)))
	}

	// Ripple adder, gate by gate.
	carry := nl.AddConst(false)
	var sum []netlistre.ID
	for i := 0; i < 8; i++ {
		sum = append(sum, nl.AddGate(netlistre.Xor, a[i], b[i], carry))
		carry = nl.AddGate(netlistre.Or,
			nl.AddGate(netlistre.And, a[i], b[i]),
			nl.AddGate(netlistre.And, b[i], carry),
			nl.AddGate(netlistre.And, carry, a[i]))
	}

	// 2:1 mux selecting between the sum and operand a.
	sel := nl.AddInput("sel")
	nsel := nl.AddGate(netlistre.Not, sel)
	for i := 0; i < 8; i++ {
		y := nl.AddGate(netlistre.Or,
			nl.AddGate(netlistre.And, sel, sum[i]),
			nl.AddGate(netlistre.And, nsel, a[i]))
		nl.MarkOutput(fmt.Sprintf("y%d", i), y)
	}

	// 5-bit enabled counter with synchronous reset.
	en := nl.AddInput("en")
	rst := nl.AddInput("rst")
	nrst := nl.AddGate(netlistre.Not, rst)
	var q []netlistre.ID
	for i := 0; i < 5; i++ {
		q = append(q, nl.AddLatch(nl.AddConst(false)))
	}
	for i := 0; i < 5; i++ {
		lits := []netlistre.ID{en}
		lits = append(lits, q[:i]...)
		var lower netlistre.ID
		if len(lits) == 1 {
			lower = en
		} else {
			lower = nl.AddGate(netlistre.And, lits...)
		}
		nl.SetLatchD(q[i], nl.AddGate(netlistre.And, nrst,
			nl.AddGate(netlistre.Xor, q[i], lower)))
		nl.MarkOutput(fmt.Sprintf("q%d", i), q[i])
	}

	// Run the portfolio and report.
	rep := netlistre.Analyze(nl, netlistre.Options{})
	if err := netlistre.WriteReport(os.Stdout, rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Programmatic access to the inferred structure.
	fmt.Println("\ninferred components:")
	for _, m := range rep.Resolved {
		switch m.Type {
		case netlistre.TypeAdder:
			fmt.Printf("  %d-bit adder over inputs %v / %v\n", m.Width, m.Port("a"), m.Port("b"))
		case netlistre.TypeMux:
			fmt.Printf("  %d-bit mux with select node %v\n", m.Width, m.Port("sel"))
		case netlistre.TypeCounter:
			fmt.Printf("  %d-bit %s-counter on latches %v\n", m.Width, m.Attr["direction"], m.Port("q"))
		}
	}
}
