// Trojanhunt reproduces the paper's Section V-D case study: run the
// inference portfolio on the clean and trojan-injected versions of the
// eVoter and oc8051 articles, and walk through the module-count deltas the
// way a human analyst would.
//
//	go run ./examples/trojanhunt
package main

import (
	"fmt"
	"sort"

	"netlistre"
)

func main() {
	fmt.Println("=== Case study: trojan detection by algorithmic reverse engineering ===")
	fmt.Println()

	hunt("eVoter (key-sequence backdoor)",
		mustArticle("evoter"), netlistre.EVoterTrojaned(),
		[]string{
			"extra decoders/comparators -> a matcher for some specific key pattern",
			"an extra mux in front of the key decoder -> something can override the vote",
			"an extra multibit register -> a stored value can replace the user input",
			"=> following the mux select leads to the sequence-detector state machine",
		})

	hunt("oc8051 (XOR kill switch)",
		mustArticle("oc8051"), netlistre.OC8051Trojaned(),
		[]string{
			"an extra counter -> something counts an event stream",
			"an extra gating module on the ALU->accumulator path -> a word can be forced to zero",
			"=> the counter's decode enables the gating: a count reaching a threshold",
			"   permanently zeroes the accumulator; that is a kill switch",
		})
}

func mustArticle(name string) *netlistre.Netlist {
	nl, err := netlistre.TestArticle(name)
	if err != nil {
		panic(err)
	}
	return nl
}

func hunt(title string, clean, troj *netlistre.Netlist, analystNotes []string) {
	fmt.Printf("--- %s ---\n", title)
	cs, ts := clean.Stats(), troj.Stats()
	fmt.Printf("clean: %d gates, %d latches; trojaned: %d gates (+%d), %d latches (+%d)\n",
		cs.Gates, cs.Latches, ts.Gates, ts.Gates-cs.Gates, ts.Latches, ts.Latches-cs.Latches)

	opt := netlistre.Options{}
	repC := netlistre.Analyze(clean, opt)
	repT := netlistre.Analyze(troj, opt)

	fmt.Println("module-count deltas (trojaned - clean, before overlap resolution):")
	type delta struct {
		ty netlistre.ModuleType
		d  int
	}
	var ds []delta
	for ty, n := range repT.CountsBefore {
		if d := n - repC.CountsBefore[ty]; d != 0 {
			ds = append(ds, delta{ty, d})
		}
	}
	for ty, n := range repC.CountsBefore {
		if _, ok := repT.CountsBefore[ty]; !ok && n > 0 {
			ds = append(ds, delta{ty, -n})
		}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].ty < ds[j].ty })
	for _, d := range ds {
		fmt.Printf("  %-20s %+d\n", d.ty, d.d)
	}

	fmt.Println("analyst reasoning:")
	for _, n := range analystNotes {
		fmt.Println("  -", n)
	}
	fmt.Println()
}
