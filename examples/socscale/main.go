// Socscale reproduces the paper's BigSoC pipeline (Section V-C): take a
// large raw SoC netlist full of electrical buffering, simplify it
// structurally, partition it into cores by reset tree, and analyze each
// core with the inference portfolio.
//
//	go run ./examples/socscale
package main

import (
	"fmt"
	"os"

	"netlistre"
)

func main() {
	fmt.Println("building BigSoC (seven cores, electrical buffering noise)...")
	soc := netlistre.BigSoC()
	raw := soc.Stats()
	fmt.Printf("raw netlist: %d combinational elements, %d latches\n\n", raw.Gates, raw.Latches)

	// Stage 1: structural simplification (Section V-C.1).
	res := netlistre.Simplify(soc)
	nl := res.Netlist
	simp := nl.Stats()
	fmt.Printf("after simplification: %d combinational elements (%.0f%% reduction)\n\n",
		simp.Gates, 100*(1-float64(simp.Gates)/float64(raw.Gates)))

	// Stage 2: partition by reset tree (Section V-C.2).
	summary, err := netlistre.PartitionByResets(nl, netlistre.BigSoCResetNames())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("partitioned into %d cores; %d multi-owned gates, %d unowned (interconnect)\n\n",
		len(summary.Cores), summary.MultiOwned, summary.Unowned)

	// Stage 3: per-core inference.
	var total, covered float64
	for _, c := range summary.Cores {
		rep := netlistre.Analyze(c.Netlist, netlistre.Options{})
		st := c.Netlist.Stats()
		elems := float64(st.Gates + st.Latches)
		fmt.Printf("%-16s %6d gates %5d latches -> %3d modules, %5.1f%% coverage (%v)\n",
			c.Name, st.Gates, st.Latches, len(rep.Resolved),
			100*rep.CoverageFraction(), rep.Runtime.Round(1e6))
		total += elems
		covered += rep.CoverageFraction() * elems
	}
	fmt.Printf("\noverall coverage across cores: %.1f%%\n", 100*covered/total)
}
