// Dynamicfind combines static and dynamic analysis the way Section VI-B.4
// of the paper suggests: drive the unknown design with known operands,
// locate where the known results surface (here: the 8051 accumulator), and
// cross-reference the hit against the statically inferred modules.
//
//	go run ./examples/dynamicfind
package main

import (
	"fmt"
	"math/rand"

	"netlistre"
)

func main() {
	nl, err := netlistre.TestArticle("oc8051")
	if err != nil {
		panic(err)
	}
	name := func(s string) netlistre.ID { return nl.FindByName(s) }

	// Step 1: dynamic — execute known ALU additions and record a trace.
	rng := rand.New(rand.NewSource(1))
	var stimuli []map[netlistre.ID]bool
	var results []uint64
	for t := 0; t < 40; t++ {
		av, bv := uint64(rng.Intn(256)), uint64(rng.Intn(256))
		inp := map[netlistre.ID]bool{
			name("rst"): false, name("ldalu"): true, name("ldbus"): false,
			name("alumode"): false, name("iramwe"): false,
			name("alusel0"): false, name("alusel1"): false,
		}
		for i := 0; i < 8; i++ {
			inp[name(fmt.Sprintf("acc_in%d", i))] = av>>uint(i)&1 == 1
			inp[name(fmt.Sprintf("opnd%d", i))] = bv>>uint(i)&1 == 1
			inp[name(fmt.Sprintf("bus%d", i))] = false
		}
		stimuli = append(stimuli, inp)
		results = append(results, (av+bv)&255)
	}
	tr := netlistre.RecordTrace(nl, stimuli)

	fmt.Println("driving the unknown design with known additions...")
	m, delay, ok := tr.LocateWordAnyDelay(results[:32], 8, 3)
	if !ok {
		fmt.Println("known results never surfaced — not an adder-based unit")
		return
	}
	fmt.Printf("known sums surface at pipeline delay %d; candidates per bit:\n", delay)
	var hits []netlistre.ID
	for i, c := range m.CandidatesPerBit {
		fmt.Printf("  bit %d: %v\n", i, c)
		hits = append(hits, c...)
	}

	// Step 2: static — which inferred modules contain the dynamic hits?
	rep := netlistre.Analyze(nl, netlistre.Options{SkipModMatch: true})
	fmt.Println("\nstatically inferred modules containing those nodes:")
	for _, mod := range rep.Resolved {
		contains := 0
		set := map[netlistre.ID]bool{}
		for _, e := range mod.Elements {
			set[e] = true
		}
		for _, h := range hits {
			if set[h] {
				contains++
			}
		}
		if contains > 0 {
			fmt.Printf("  %-28s holds %d of the hit nodes\n", mod.Name, contains)
		}
	}
	fmt.Println("\n=> the analyst now knows which inferred word-structure is the accumulator path")
}
