// Wordprop walks through Figure 2 of the paper: symbolic word propagation
// through an inverting selector using five-valued {0,1,D,D̄,X} simulation.
// This example uses the library's internal packages directly to show the
// machinery under the public Analyze API.
//
//	go run ./examples/wordprop
package main

import (
	"fmt"

	"netlistre/internal/gen"
	"netlistre/internal/netlist"
	"netlistre/internal/sim"
	"netlistre/internal/words"
)

func main() {
	// Figure 2: w = c ? ~v : ~u, bit by bit.
	nl := netlist.New("fig2")
	c := nl.AddInput("c")
	u := gen.InputWord(nl, "u", 3)
	v := gen.InputWord(nl, "v", 3)
	nu := gen.BitwiseNot(nl, u)
	nv := gen.BitwiseNot(nl, v)
	w := gen.Mux2Word(nl, c, nu, nv)
	gen.MarkOutputs(nl, "w", w)

	fmt.Println("circuit: w_i = c ? ~v_i : ~u_i   (Figure 2 of the paper)")
	fmt.Println()

	// Step 1: five-valued simulation with u = (D,D,D) and c = 0.
	assign := map[netlist.ID]sim.Value{c: sim.Zero}
	for _, b := range u {
		assign[b] = sim.D
	}
	vals := sim.Run(nl, assign)
	fmt.Println("with u=D,D,D and c=0 the outputs evaluate to:")
	for i, b := range w {
		fmt.Printf("  w%d = %v\n", i+1, vals[b])
	}
	fmt.Println("all outputs are D̄: the negated value of u propagates to w when c=0")
	fmt.Println()

	// Step 2: the automated guess-and-check propagation.
	props, _ := []words.Propagation(nil), 0
	all, propagations := words.PropagateAll(nl, []words.Word{{Bits: u, Origin: "seed"}}, 4, words.Options{})
	props = propagations
	fmt.Printf("automated propagation from the seed word u discovered %d words:\n", len(all))
	for _, wd := range all {
		fmt.Printf("  %-22s bits=%v\n", wd.Origin, wd.Bits)
	}
	fmt.Println()
	fmt.Println("propagation steps (with discovered control assignments):")
	for _, p := range props {
		dir := "forward"
		if p.Backward {
			dir = "backward"
		}
		fmt.Printf("  %v -> %v  [%s, controls %v]\n",
			p.Source.Bits, p.Target.Bits, dir, p.Controls)
	}
}
