// Package fbscan is a design-specific inference pass in the spirit of the
// paper's BigSoC VGA framebuffer-read detector (Sections V-C.3 and
// VI-B.1): the analyst knows from the datasheet that a frame buffer with a
// row-selected wide-OR read structure is present, and extends the portfolio
// with an algorithm tailored to it.
//
// The structure detected here is an OR-AND read plane:
//
//	pixel_c = OR_r ( rowsel_r AND cell_{r,c} )
//
// where the row selects are one-hot (driven by a scan counter's decoder).
// The generic RAM analysis does not recognize this shape — its read trees
// are 2:1 mux based — which is exactly why the paper needed a
// design-specific algorithm for its VGA core.
package fbscan

import (
	"fmt"
	"sort"

	"netlistre/internal/bdd"
	"netlistre/internal/module"
	"netlistre/internal/netlist"
)

// Options tunes detection.
type Options struct {
	// MinRows and MinCols bound the smallest plane reported.
	MinRows, MinCols int
}

func (o *Options) defaults() {
	if o.MinRows <= 0 {
		o.MinRows = 4
	}
	if o.MinCols <= 0 {
		o.MinCols = 4
	}
}

// Find locates framebuffer read planes. The returned modules cover the
// storage cells, the AND gating plane and the OR reduction.
func Find(nl *netlist.Netlist, opt Options) []*module.Module {
	opt.defaults()

	// Step 1: collect candidate column outputs: Or gates whose fanins are
	// all And gates pairing one latch with one non-latch "select" signal.
	type column struct {
		root    netlist.ID
		selects []netlist.ID // per-row select, aligned with cells
		cells   []netlist.ID
		ands    []netlist.ID
	}
	var cols []column
	for id := netlist.ID(0); int(id) < nl.Len(); id++ {
		if nl.Kind(id) != netlist.Or {
			continue
		}
		fan := nl.Fanin(id)
		if len(fan) < opt.MinRows {
			continue
		}
		col := column{root: id}
		ok := true
		for _, f := range fan {
			if nl.Kind(f) != netlist.And || len(nl.Fanin(f)) != 2 {
				ok = false
				break
			}
			a, b := nl.Fanin(f)[0], nl.Fanin(f)[1]
			var cell, sel netlist.ID
			switch {
			case nl.Kind(a) == netlist.Latch && nl.Kind(b) != netlist.Latch:
				cell, sel = a, b
			case nl.Kind(b) == netlist.Latch && nl.Kind(a) != netlist.Latch:
				cell, sel = b, a
			default:
				ok = false
			}
			if !ok {
				break
			}
			col.cells = append(col.cells, cell)
			col.selects = append(col.selects, sel)
			col.ands = append(col.ands, f)
		}
		if ok {
			cols = append(cols, col)
		}
	}

	// Step 2: group columns by their (sorted) select set: columns of the
	// same plane share row selects.
	bySel := make(map[string][]column)
	for _, c := range cols {
		bySel[key(netlist.SortedIDs(c.selects))] = append(bySel[key(netlist.SortedIDs(c.selects))], c)
	}
	var keys []string
	for k := range bySel {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var out []*module.Module
	for _, k := range keys {
		group := bySel[k]
		if len(group) < opt.MinCols {
			continue
		}
		if !oneHotSelects(nl, group[0].selects) {
			continue
		}
		var elements, reads []netlist.ID
		for _, c := range group {
			elements = append(elements, c.root)
			elements = append(elements, c.ands...)
			elements = append(elements, c.cells...)
			reads = append(reads, c.root)
		}
		// The select cone (decoder) belongs to the read structure too.
		selCone := nl.ConeOfAll(group[0].selects)
		elements = append(elements, selCone.Nodes...)

		m := module.New(module.RAM, len(group), elements)
		m.Name = fmt.Sprintf("framebuffer-read[%dx%d]", len(group[0].cells), len(group))
		m.SetAttr("kind", "or-and scan plane")
		m.SetPort("pixel", netlist.SortedIDs(reads))
		m.SetPort("rowsel", netlist.SortedIDs(group[0].selects))
		out = append(out, m)
	}
	return out
}

// oneHotSelects verifies with a BDD that at most one select is active at a
// time (the functional check that makes this an exclusive read, not an
// arbitrary OR plane).
func oneHotSelects(nl *netlist.Netlist, selects []netlist.ID) bool {
	mgr := bdd.New(0)
	bld := bdd.NewBuilder(mgr, nl)
	refs := make([]bdd.Ref, len(selects))
	err := mgr.Run(func() {
		for i, s := range selects {
			refs[i] = bld.Build(s)
		}
	})
	if err != nil {
		return false
	}
	for i := 0; i < len(refs); i++ {
		if refs[i] == bdd.False {
			return false
		}
		for j := i + 1; j < len(refs); j++ {
			if mgr.And(refs[i], refs[j]) != bdd.False {
				return false
			}
		}
	}
	return true
}

func key(ids []netlist.ID) string {
	b := make([]byte, 0, len(ids)*4)
	for _, id := range ids {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}
