package fbscan

import (
	"testing"

	"netlistre/internal/core"
	"netlistre/internal/gen"
	"netlistre/internal/module"
	"netlistre/internal/netlist"
	"netlistre/internal/seq"
)

func TestFindFramebufferPlane(t *testing.T) {
	nl, pixels := gen.VGACore(8, 6)
	mods := Find(nl, Options{})
	if len(mods) != 1 {
		t.Fatalf("found %d framebuffer planes, want 1", len(mods))
	}
	m := mods[0]
	if m.Width != 6 {
		t.Errorf("width = %d, want 6 columns", m.Width)
	}
	px := m.Port("pixel")
	pxSet := make(map[netlist.ID]bool)
	for _, p := range px {
		pxSet[p] = true
	}
	for i, p := range pixels {
		if !pxSet[p] {
			t.Errorf("pixel %d missing from module", i)
		}
	}
	if got := len(m.Port("rowsel")); got != 8 {
		t.Errorf("rowsel port = %d, want 8", got)
	}
	// The module must cover all 48 cells plus the gating plane.
	if m.Size() < 8*6*2 {
		t.Errorf("module covers only %d elements", m.Size())
	}
}

func TestGenericRAMAnalysisMissesPlane(t *testing.T) {
	// The motivation for the design-specific pass: the generic RAM
	// analysis does not recognize the OR-AND read shape.
	nl, _ := gen.VGACore(8, 6)
	if mods := seq.FindRAMs(nl, nil, seq.Options{}); len(mods) != 0 {
		t.Skipf("generic analysis unexpectedly found %d RAMs; pass unnecessary", len(mods))
	}
}

func TestNonOneHotPlaneRejected(t *testing.T) {
	// An OR-AND plane whose selects are independent inputs (not one-hot)
	// must be rejected by the BDD check.
	nl := netlist.New("bad")
	var sels []netlist.ID
	for r := 0; r < 4; r++ {
		sels = append(sels, nl.AddInput("s"+string(rune('0'+r))))
	}
	for c := 0; c < 4; c++ {
		var taps []netlist.ID
		for r := 0; r < 4; r++ {
			cell := nl.AddLatch(nl.AddInput("d" + string(rune('0'+r)) + string(rune('0'+c))))
			taps = append(taps, nl.AddGate(netlist.And, sels[r], cell))
		}
		nl.MarkOutput("y"+string(rune('0'+c)), nl.AddGate(netlist.Or, taps...))
	}
	if mods := Find(nl, Options{}); len(mods) != 0 {
		t.Errorf("non-one-hot plane accepted: %d modules", len(mods))
	}
}

func TestAsExtraPass(t *testing.T) {
	// Integration: the pass plugs into the portfolio via core.Options and
	// its module survives overlap resolution (it is the biggest module).
	nl, _ := gen.VGACore(8, 8)
	opt := core.Options{
		SkipModMatch: true,
		ExtraPasses: []func(*netlist.Netlist) []*module.Module{
			func(n *netlist.Netlist) []*module.Module { return Find(n, Options{}) },
		},
	}
	rep := core.Analyze(nl, opt)
	found := false
	for _, m := range rep.Resolved {
		if m.Attr["kind"] == "or-and scan plane" {
			found = true
		}
	}
	if !found {
		t.Error("framebuffer module not in resolved output")
	}
	// Without the pass, coverage must be lower.
	repBase := core.Analyze(nl, core.Options{SkipModMatch: true})
	if rep.CoverageAfter <= repBase.CoverageAfter {
		t.Errorf("extra pass did not improve coverage: %d vs %d",
			rep.CoverageAfter, repBase.CoverageAfter)
	}
}
