package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"netlistre"
)

// newTestServer starts a Server behind httptest and tears both down with
// the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body interface{}) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// wallClockRE matches the report's wall-clock fields, which legitimately
// differ between two runs of the same analysis.
var wallClockRE = regexp.MustCompile(`"(runtime_ms|start_ms|duration_ms)": [0-9.eE+-]+`)

func normalizeTimings(b []byte) string {
	return wallClockRE.ReplaceAllString(string(b), `"$1": 0`)
}

// refVerilog returns the reference circuit from the fingerprint tests as
// Verilog and BLIF text plus the netlist itself.
func refVerilog(t *testing.T, name string) (verilog, blif string) {
	t.Helper()
	n := netlistre.NewNetlist(name)
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	w1 := n.AddNamedGate("w1", netlistre.And, a, b)
	w2 := n.AddNamedGate("w2", netlistre.Not, c)
	q := n.AddNamedLatch("q", w1)
	y := n.AddNamedGate("y", netlistre.Or, w1, w2, q)
	n.SetLatchD(q, y)
	n.MarkOutput("y", y)
	var v, bl bytes.Buffer
	if err := n.WriteVerilog(&v); err != nil {
		t.Fatal(err)
	}
	if err := n.WriteBLIF(&bl); err != nil {
		t.Fatal(err)
	}
	return v.String(), bl.String()
}

// TestAnalyzeMatchesRevan is the wire-format acceptance check: the service
// response for an article must match what the revan CLI (-json) computes
// for the same netlist and options, byte for byte once wall-clock fields
// are normalized.
func TestAnalyzeMatchesRevan(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Article: "usb"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	if got := resp.Header.Get("X-Cache"); got != "MISS" {
		t.Errorf("first request X-Cache = %q, want MISS", got)
	}
	body := readBody(t, resp)

	nl, err := netlistre.TestArticle("usb")
	if err != nil {
		t.Fatal(err)
	}
	if fp := resp.Header.Get("X-Netlist-Fingerprint"); fp != nl.Fingerprint() {
		t.Errorf("X-Netlist-Fingerprint = %q, want %q", fp, nl.Fingerprint())
	}
	opt := netlistre.Options{}
	opt.Overlap.Sliceable = true // the revan default (no -basic-ilp)
	rep := netlistre.Analyze(nl, opt)
	var want bytes.Buffer
	if err := netlistre.WriteJSONReport(&want, rep); err != nil {
		t.Fatal(err)
	}
	if normalizeTimings(body) != normalizeTimings(want.Bytes()) {
		t.Errorf("service report differs from revan -json:\n--- service ---\n%s\n--- revan ---\n%s",
			body, want.String())
	}
}

func TestAnalyzeCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	req := AnalyzeRequest{Article: "evoter"}
	first := postJSON(t, ts.URL+"/v1/analyze", req)
	firstBody := readBody(t, first)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", first.StatusCode, firstBody)
	}

	second := postJSON(t, ts.URL+"/v1/analyze", req)
	secondBody := readBody(t, second)
	if got := second.Header.Get("X-Cache"); got != "HIT" {
		t.Fatalf("repeat request X-Cache = %q, want HIT", got)
	}
	if !bytes.Equal(firstBody, secondBody) {
		t.Error("cache hit response is not byte-identical to the original")
	}
	if st := s.cache.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 hit / 1 miss", st)
	}

	// Different options must not share the entry.
	third := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{
		Article: "evoter",
		Options: RequestOptions{SkipModMatch: true},
	})
	readBody(t, third)
	if got := third.Header.Get("X-Cache"); got != "MISS" {
		t.Errorf("changed options X-Cache = %q, want MISS", got)
	}
}

// TestAnalyzeCrossFormatCacheShare is the content-addressing payoff: the
// same circuit uploaded as Verilog and then as BLIF shares one cache
// entry, because the key is the canonical fingerprint, not the upload
// bytes.
func TestAnalyzeCrossFormatCacheShare(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	verilog, blif := refVerilog(t, "ref")

	first := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Verilog: verilog})
	firstBody := readBody(t, first)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("verilog upload: status %d: %s", first.StatusCode, firstBody)
	}
	second := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{BLIF: blif})
	secondBody := readBody(t, second)
	if got := second.Header.Get("X-Cache"); got != "HIT" {
		t.Errorf("BLIF re-upload of same circuit X-Cache = %q, want HIT", got)
	}
	if !bytes.Equal(firstBody, secondBody) {
		t.Error("cross-format cache hit returned different bytes")
	}
}

func TestJobsLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp := postJSON(t, ts.URL+"/v1/jobs", AnalyzeRequest{Article: "evoter"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	loc := resp.Header.Get("Location")
	var st JobStatus
	if err := json.Unmarshal(readBody(t, resp), &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || loc != "/v1/jobs/"+st.ID {
		t.Fatalf("bad submit response: id %q, location %q", st.ID, loc)
	}

	final := pollJob(t, ts.URL+loc)
	if final.Status != JobDone {
		t.Fatalf("job finished %q (error %q), want done", final.Status, final.Error)
	}
	if len(final.Report) == 0 {
		t.Fatal("finished job carries no report")
	}

	// The sync endpoint for the same request must now be a cache hit with
	// the job's report. The status envelope re-indents the embedded raw
	// message, so compare compacted forms.
	sync := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Article: "evoter"})
	syncBody := readBody(t, sync)
	if got := sync.Header.Get("X-Cache"); got != "HIT" {
		t.Errorf("sync after job X-Cache = %q, want HIT", got)
	}
	var a, b bytes.Buffer
	if err := json.Compact(&a, syncBody); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&b, final.Report); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("sync response differs from the job report for the same key")
	}

	// A second identical job records a cache hit in its status.
	resp2 := postJSON(t, ts.URL+"/v1/jobs", AnalyzeRequest{Article: "evoter"})
	var st2 JobStatus
	if err := json.Unmarshal(readBody(t, resp2), &st2); err != nil {
		t.Fatal(err)
	}
	final2 := pollJob(t, ts.URL+"/v1/jobs/"+st2.ID)
	if final2.Status != JobDone || !final2.CacheHit {
		t.Errorf("repeat job = %q cache_hit=%v, want done with cache_hit", final2.Status, final2.CacheHit)
	}
}

func pollJob(t *testing.T, url string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		if err := json.Unmarshal(readBody(t, resp), &st); err != nil {
			t.Fatal(err)
		}
		switch st.Status {
		case JobDone, JobDegraded, JobFailed:
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job did not finish within 60s")
	return JobStatus{}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty", `{}`, http.StatusBadRequest},
		{"two sources", `{"article":"usb","verilog":"module m (); endmodule"}`, http.StatusBadRequest},
		{"unknown article", `{"article":"nonesuch"}`, http.StatusBadRequest},
		{"bad verilog", `{"verilog":"not a netlist"}`, http.StatusBadRequest},
		{"bad objective", `{"article":"usb","options":{"objective":"most"}}`, http.StatusBadRequest},
		{"negative timeout", `{"article":"usb","options":{"timeout_ms":-5}}`, http.StatusBadRequest},
		{"unknown field", `{"articel":"usb"}`, http.StatusBadRequest},
		{"not json", `hello`, http.StatusBadRequest},
	}
	for _, endpoint := range []string{"/v1/analyze", "/v1/jobs"} {
		for _, tc := range cases {
			resp, err := http.Post(ts.URL+endpoint, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			body := readBody(t, resp)
			if resp.StatusCode != tc.want {
				t.Errorf("%s %s: status %d, want %d (%s)", endpoint, tc.name, resp.StatusCode, tc.want, body)
			}
			var apiErr apiError
			if err := json.Unmarshal(body, &apiErr); err != nil || apiErr.Error == "" {
				t.Errorf("%s %s: error body not structured: %s", endpoint, tc.name, body)
			}
		}
	}
}

func TestSyncSizeGate(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSyncElements: 10})
	resp := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Article: "usb"})
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "/v1/jobs") {
		t.Errorf("413 body should steer to /v1/jobs: %s", body)
	}
}

func TestBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxRequestBytes: 128})
	big := fmt.Sprintf(`{"verilog":%q}`, strings.Repeat("x", 1024))
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	if body := readBody(t, resp); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413 (%s)", resp.StatusCode, body)
	}
}

func TestJobNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/jobs/job-doesnotexist")
	if err != nil {
		t.Fatal(err)
	}
	if body := readBody(t, resp); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404 (%s)", resp.StatusCode, body)
	}
}

func TestArticlesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/articles")
	if err != nil {
		t.Fatal(err)
	}
	var articles []Article
	if err := json.Unmarshal(readBody(t, resp), &articles); err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for _, a := range articles {
		names[a.Name] = true
		if a.Description == "" {
			t.Errorf("article %q has no description", a.Name)
		}
	}
	for _, want := range []string{"usb", "evoter", "mips16", "bigsoc", "evoter-trojan", "oc8051-trojan"} {
		if !names[want] {
			t.Errorf("articles listing missing %q", want)
		}
	}
}

func TestHealthzAndDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status        string `json:"status"`
		QueueCapacity int    `json:"queue_capacity"`
	}
	if err := json.Unmarshal(readBody(t, resp), &health); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || health.Status != "ok" || health.QueueCapacity != 64 {
		t.Errorf("healthz = %d %+v, want 200 ok capacity 64", resp.StatusCode, health)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if body := readBody(t, resp2); resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d (%s), want 503", resp2.StatusCode, body)
	}
	resp3 := postJSON(t, ts.URL+"/v1/jobs", AnalyzeRequest{Article: "evoter"})
	if body := readBody(t, resp3); resp3.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("job submit while draining = %d (%s), want 503", resp3.StatusCode, body)
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// One miss, one hit, one finished job.
	readBody(t, postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Article: "evoter"}))
	readBody(t, postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Article: "evoter"}))
	var st JobStatus
	if err := json.Unmarshal(readBody(t, postJSON(t, ts.URL+"/v1/jobs", AnalyzeRequest{Article: "evoter"})), &st); err != nil {
		t.Fatal(err)
	}
	pollJob(t, ts.URL+"/v1/jobs/"+st.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	body := string(readBody(t, resp))
	for _, want := range []string{
		"revand_jobs_total{state=\"done\"} 1",
		"revand_cache_hits_total 2",
		"revand_cache_misses_total 1",
		"revand_queue_depth 0",
		"revand_queue_capacity 64",
		"revand_analyses_total{source=\"sync\"} 1",
		"revand_queue_full_total 0",
		"revand_stagecache_hits_total 0", // one cold analysis: misses only
		"revand_stage_duration_seconds_bucket{stage=\"overlap\",le=\"+Inf\"} 1",
		"revand_http_requests_total{route=\"/v1/analyze\",code=\"200\"} 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n--- exposition ---\n%s", want, body)
		}
	}
}

// TestDegradedNotCached drives the analysis path with an already-canceled
// context: the run degrades deterministically and its partial report must
// not poison the cache.
func TestDegradedNotCached(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())
	nl, err := netlistre.TestArticle("usb")
	if err != nil {
		t.Fatal(err)
	}
	var ro RequestOptions
	opt := ro.toOptions(nl, 0)
	fp := nl.Fingerprint()
	key := ro.cacheKey(fp, 0)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	report, hit, degraded, err := s.analyze(ctx, "sync", &parsedRequest{nl: nl, fingerprint: fp, opt: opt, key: key, ro: ro})
	if err != nil {
		t.Fatal(err)
	}
	if hit || !degraded {
		t.Fatalf("canceled analyze: hit=%v degraded=%v, want miss+degraded", hit, degraded)
	}
	var js netlistre.JSONReport
	if err := json.Unmarshal(report, &js); err != nil {
		t.Fatalf("degraded report is not valid JSON: %v", err)
	}
	if !js.Degraded {
		t.Error("degraded report does not say degraded")
	}
	if st := s.cache.Stats(); st.Entries != 0 {
		t.Errorf("degraded report was cached: %+v", st)
	}
}

// TestShutdownDrainsQueuedJobs submits more jobs than workers and then
// shuts down: every job must still reach a terminal state with a report.
func TestShutdownDrainsQueuedJobs(t *testing.T) {
	s := New(Config{QueueWorkers: 1, QueueDepth: 8})
	var ids []*Job
	for i := 0; i < 4; i++ {
		req := AnalyzeRequest{Article: "evoter"}
		if i%2 == 1 {
			req.Options.SkipModMatch = true // alternate keys: mix of hits and misses
		}
		nl, err := buildNetlist(&req)
		if err != nil {
			t.Fatal(err)
		}
		fp := nl.Fingerprint()
		j := NewJob(nl, req.Options.toOptions(nl, 0), fp, req.Options.cacheKey(fp, 0))
		if err := s.queue.Submit(j); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for i, j := range ids {
		if st := j.State(); st != JobDone {
			t.Errorf("job %d state after drain = %q, want done", i, st)
		}
	}
}

// TestQueueFullBackpressure wedges the single queue worker on a job whose
// progress callback blocks, fills the one-slot queue, and checks that the
// next submission is rejected with 503 + Retry-After and surfaces in the
// revand_queue_full_total counter.
func TestQueueFullBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueWorkers: 1, QueueDepth: 1})

	nl, err := netlistre.TestArticle("evoter")
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	var once sync.Once
	opt := netlistre.Options{}
	opt.Progress = func(netlistre.StageEvent) {
		once.Do(func() {
			close(entered)
			<-release
		})
	}
	fp := nl.Fingerprint()
	blocker := NewJob(nl, opt, fp, "blocker-"+fp)
	if err := s.queue.Submit(blocker); err != nil {
		t.Fatal(err)
	}
	<-entered // the worker is now parked inside the blocker's first stage

	resp := postJSON(t, ts.URL+"/v1/jobs", AnalyzeRequest{Article: "usb"})
	if body := readBody(t, resp); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("filling submission: status %d, want 202 (%s)", resp.StatusCode, body)
	}

	resp2 := postJSON(t, ts.URL+"/v1/jobs", AnalyzeRequest{Article: "mips16"})
	body := readBody(t, resp2)
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submission: status %d, want 503 (%s)", resp2.StatusCode, body)
	}
	if ra := resp2.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("503 Retry-After = %q, want \"1\"", ra)
	}
	if !strings.Contains(string(body), "queue full") {
		t.Errorf("503 body does not mention the queue: %s", body)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if m := string(readBody(t, mresp)); !strings.Contains(m, "revand_queue_full_total 1") {
		t.Errorf("metrics missing revand_queue_full_total 1:\n%s", m)
	}
}

// TestStageStoreSharesWorkAcrossRequests issues two analyses of the same
// netlist that differ only in skip_modmatch: the second is a report-cache
// miss, but every stage upstream of modmatch must replay from the
// process-wide stage store with "cached" provenance while modmatch and its
// dependents re-execute.
func TestStageStoreSharesWorkAcrossRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	readBody(t, postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Article: "usb"}))

	req := AnalyzeRequest{Article: "usb"}
	req.Options.SkipModMatch = true
	resp := postJSON(t, ts.URL+"/v1/analyze", req)
	body := readBody(t, resp)
	if got := resp.Header.Get("X-Cache"); got != "MISS" {
		t.Fatalf("options change X-Cache = %q, want MISS", got)
	}
	var js netlistre.JSONReport
	if err := json.Unmarshal(body, &js); err != nil {
		t.Fatal(err)
	}
	prov := make(map[string]string, len(js.Trace))
	for _, st := range js.Trace {
		prov[st.Name] = st.Provenance
	}
	for _, name := range []string{"bitslice", "support", "aggregate", "words", "registers", "order"} {
		if prov[name] != "cached" {
			t.Errorf("stage %s provenance = %q, want cached", name, prov[name])
		}
	}
	for _, name := range []string{"modmatch", "extra", "overlap"} {
		if prov[name] != "" {
			t.Errorf("stage %s provenance = %q, want ran (omitted)", name, prov[name])
		}
	}

	st := s.stages.Stats()
	if st.Hits == 0 || st.Misses == 0 || st.Entries == 0 {
		t.Fatalf("stage store saw no traffic: %+v", st)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m := string(readBody(t, mresp))
	for _, want := range []string{
		fmt.Sprintf("revand_stagecache_hits_total %d", st.Hits),
		fmt.Sprintf("revand_stagecache_misses_total %d", st.Misses),
		fmt.Sprintf("revand_stagecache_entries %d", st.Entries),
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q\n--- exposition ---\n%s", want, m)
		}
	}
}

// TestDegradedRunResumesFromStageStore cancels an analysis at a stage
// boundary and repeats it: the degraded report was never report-cached, so
// the repeat runs the portfolio again — but the first run's completed
// stages replay from the process-wide store and only the interrupted tail
// re-executes.
func TestDegradedRunResumesFromStageStore(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())
	nl, err := netlistre.TestArticle("usb")
	if err != nil {
		t.Fatal(err)
	}
	var ro RequestOptions
	fp := nl.Fingerprint()
	key := ro.cacheKey(fp, 0)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := ro.toOptions(nl, 0)
	opt.Workers = 1 // serial: stages complete in declaration order
	opt.Progress = func(ev netlistre.StageEvent) {
		if ev.Done && ev.Stage == "aggregate" {
			cancel()
		}
	}
	_, hit, degraded, err := s.analyze(ctx, "sync", &parsedRequest{nl: nl, fingerprint: fp, opt: opt, key: key, ro: ro})
	if err != nil {
		t.Fatal(err)
	}
	if hit || !degraded {
		t.Fatalf("interrupted analyze: hit=%v degraded=%v, want miss+degraded", hit, degraded)
	}

	opt2 := ro.toOptions(nl, 0)
	opt2.Workers = 1
	report, hit, degraded, err := s.analyze(context.Background(), "sync", &parsedRequest{nl: nl, fingerprint: fp, opt: opt2, key: key, ro: ro})
	if err != nil {
		t.Fatal(err)
	}
	if hit || degraded {
		t.Fatalf("resumed analyze: hit=%v degraded=%v, want miss+complete", hit, degraded)
	}
	var js netlistre.JSONReport
	if err := json.Unmarshal(report, &js); err != nil {
		t.Fatal(err)
	}
	prov := make(map[string]string, len(js.Trace))
	for _, st := range js.Trace {
		prov[st.Name] = st.Provenance
		if st.Status != "" {
			t.Errorf("resumed run stage %s status = %q, want OK", st.Name, st.Status)
		}
	}
	for _, name := range []string{"bitslice", "support", "aggregate"} {
		if prov[name] != "cached" {
			t.Errorf("stage %s provenance = %q, want cached (resumed)", name, prov[name])
		}
	}
	if prov["overlap"] != "" {
		t.Errorf("stage overlap provenance = %q, want ran", prov["overlap"])
	}
}
