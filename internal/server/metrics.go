package server

// Prometheus text-format metrics, hand-rolled on the standard library (the
// repo is dependency-free). Only the exposition subset the service needs is
// implemented: counters, gauges, and fixed-bucket histograms in the
// text/plain; version=0.0.4 format every Prometheus-compatible scraper
// accepts.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"netlistre"
	"netlistre/internal/fleet"
)

// stageBuckets are the per-stage duration histogram bounds in seconds.
// Stages range from sub-millisecond (lcg on small articles) to minutes
// (modmatch on BigSoC), so the buckets are log-spaced across that span.
var stageBuckets = [8]float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60}

type histogram struct {
	counts [len(stageBuckets) + 1]int64 // +1 for +Inf
	sum    float64
	total  int64
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(stageBuckets[:], v)
	h.counts[i]++
	h.sum += v
	h.total++
}

// Metrics aggregates the service counters. All methods are safe for
// concurrent use.
type Metrics struct {
	mu sync.Mutex

	jobs      map[string]int64 // terminal job states -> count
	analyses  map[string]int64 // "sync" / "job" -> completed analyses
	http      map[string]int64 // "route|code" -> count
	stages    map[string]*histogram
	queueFull int64 // submissions rejected because the queue was full

	sessionsCreated int64
	sessionsClosed  map[string]int64 // eviction reason -> count
	sessionDiffs    int64
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		jobs:           make(map[string]int64),
		analyses:       make(map[string]int64),
		http:           make(map[string]int64),
		stages:         make(map[string]*histogram),
		sessionsClosed: make(map[string]int64),
	}
}

// SessionCreated counts one exploration session opening.
func (m *Metrics) SessionCreated() {
	m.mu.Lock()
	m.sessionsCreated++
	m.mu.Unlock()
}

// SessionClosed counts one session leaving the store, by reason
// ("ttl", "lru", or "deleted").
func (m *Metrics) SessionClosed(reason string) {
	m.mu.Lock()
	m.sessionsClosed[reason]++
	m.mu.Unlock()
}

// SessionDiff counts one differential comparison served.
func (m *Metrics) SessionDiff() {
	m.mu.Lock()
	m.sessionDiffs++
	m.mu.Unlock()
}

// JobFinished counts a job reaching a terminal state.
func (m *Metrics) JobFinished(state string) {
	m.mu.Lock()
	m.jobs[state]++
	m.mu.Unlock()
}

// QueueFull counts a job submission rejected with 503 because the queue
// was at capacity (the backpressure signal clients should alert on).
func (m *Metrics) QueueFull() {
	m.mu.Lock()
	m.queueFull++
	m.mu.Unlock()
}

// AnalysisDone counts one completed (non-cached) analysis by source and
// feeds the per-stage duration histograms from the report trace.
func (m *Metrics) AnalysisDone(source string, trace []netlistre.StageTiming) {
	m.mu.Lock()
	m.analyses[source]++
	for _, st := range trace {
		h := m.stages[st.Name]
		if h == nil {
			h = &histogram{}
			m.stages[st.Name] = h
		}
		h.observe(st.Duration.Seconds())
	}
	m.mu.Unlock()
}

// HTTPRequest counts one served request by route pattern and status code.
func (m *Metrics) HTTPRequest(route string, code int) {
	m.mu.Lock()
	m.http[route+"|"+strconv.Itoa(code)]++
	m.mu.Unlock()
}

// FleetGauges carries the fleet coordinator's dispatch counters and peer
// breaker states for /metrics; nil when fleet mode is off, so the
// exposition of a non-fleet server is unchanged.
type FleetGauges struct {
	Stats fleet.Stats
	Peers []struct{ URL, State string }
}

// Gauges carries the point-in-time values rendered alongside the counters.
type Gauges struct {
	QueueDepth       int
	QueueCapacity    int
	JobsRunning      int
	QueueWaitSeconds float64
	Cache            CacheStats
	StageCache       netlistre.StageCacheStats
	UptimeSeconds    float64
	SessionsActive   int
	Fleet            *FleetGauges
}

// errw mirrors the root package's errWriter: check a long sequence of
// formatted writes once at the end.
type errw struct {
	w   io.Writer
	err error
}

func (e *errw) printf(format string, args ...interface{}) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteProm renders every metric in the Prometheus text exposition format.
// Output is deterministic (sorted label values) so it can be asserted in
// tests.
func (m *Metrics) WriteProm(w io.Writer, g Gauges) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := &errw{w: w}

	e.printf("# HELP revand_jobs_total Jobs finished, by terminal state.\n")
	e.printf("# TYPE revand_jobs_total counter\n")
	for _, state := range sortedKeys(m.jobs) {
		e.printf("revand_jobs_total{state=%q} %d\n", state, m.jobs[state])
	}

	e.printf("# HELP revand_analyses_total Completed (non-cached) analyses, by source.\n")
	e.printf("# TYPE revand_analyses_total counter\n")
	for _, src := range sortedKeys(m.analyses) {
		e.printf("revand_analyses_total{source=%q} %d\n", src, m.analyses[src])
	}

	e.printf("# HELP revand_http_requests_total HTTP requests served, by route and status code.\n")
	e.printf("# TYPE revand_http_requests_total counter\n")
	for _, key := range sortedKeys(m.http) {
		var route, code string
		if i := strings.LastIndexByte(key, '|'); i >= 0 {
			route, code = key[:i], key[i+1:]
		}
		e.printf("revand_http_requests_total{route=%q,code=%q} %d\n", route, code, m.http[key])
	}

	e.printf("# HELP revand_queue_depth Jobs waiting to start.\n")
	e.printf("# TYPE revand_queue_depth gauge\n")
	e.printf("revand_queue_depth %d\n", g.QueueDepth)
	e.printf("# HELP revand_queue_capacity Job queue bound.\n")
	e.printf("# TYPE revand_queue_capacity gauge\n")
	e.printf("revand_queue_capacity %d\n", g.QueueCapacity)
	e.printf("# HELP revand_jobs_running Jobs currently executing.\n")
	e.printf("# TYPE revand_jobs_running gauge\n")
	e.printf("revand_jobs_running %d\n", g.JobsRunning)
	e.printf("# HELP revand_job_queue_wait_seconds Estimated wait before a job submitted now would start.\n")
	e.printf("# TYPE revand_job_queue_wait_seconds gauge\n")
	e.printf("revand_job_queue_wait_seconds %g\n", g.QueueWaitSeconds)
	e.printf("# HELP revand_queue_full_total Job submissions rejected because the queue was full.\n")
	e.printf("# TYPE revand_queue_full_total counter\n")
	e.printf("revand_queue_full_total %d\n", m.queueFull)

	if g.Fleet != nil {
		e.printf("# HELP revand_fleet_partitions_total Partitions resolved, by executor.\n")
		e.printf("# TYPE revand_fleet_partitions_total counter\n")
		e.printf("revand_fleet_partitions_total{executor=\"local\"} %d\n", g.Fleet.Stats.Local)
		e.printf("revand_fleet_partitions_total{executor=\"remote\"} %d\n", g.Fleet.Stats.Remote)
		e.printf("# HELP revand_fleet_retries_total Remote dispatch attempts beyond each task's first.\n")
		e.printf("# TYPE revand_fleet_retries_total counter\n")
		e.printf("revand_fleet_retries_total %d\n", g.Fleet.Stats.Retries)
		e.printf("# HELP revand_fleet_failures_total Failed remote dispatch attempts.\n")
		e.printf("# TYPE revand_fleet_failures_total counter\n")
		e.printf("revand_fleet_failures_total %d\n", g.Fleet.Stats.Failures)
		e.printf("# HELP revand_fleet_hedges_total Hedge attempts launched, and how many won.\n")
		e.printf("# TYPE revand_fleet_hedges_total counter\n")
		e.printf("revand_fleet_hedges_total{outcome=\"launched\"} %d\n", g.Fleet.Stats.Hedges)
		e.printf("revand_fleet_hedges_total{outcome=\"won\"} %d\n", g.Fleet.Stats.HedgeWins)
		e.printf("# HELP revand_fleet_peer_breaker Peer circuit-breaker state (1 = current state).\n")
		e.printf("# TYPE revand_fleet_peer_breaker gauge\n")
		for _, p := range g.Fleet.Peers {
			e.printf("revand_fleet_peer_breaker{peer=%q,state=%q} 1\n", p.URL, p.State)
		}
	}

	e.printf("# HELP revand_cache_hits_total Report cache hits.\n")
	e.printf("# TYPE revand_cache_hits_total counter\n")
	e.printf("revand_cache_hits_total %d\n", g.Cache.Hits)
	e.printf("# HELP revand_cache_misses_total Report cache misses.\n")
	e.printf("# TYPE revand_cache_misses_total counter\n")
	e.printf("revand_cache_misses_total %d\n", g.Cache.Misses)
	e.printf("# HELP revand_cache_evictions_total Report cache LRU evictions.\n")
	e.printf("# TYPE revand_cache_evictions_total counter\n")
	e.printf("revand_cache_evictions_total %d\n", g.Cache.Evictions)
	e.printf("# HELP revand_cache_entries Reports currently cached.\n")
	e.printf("# TYPE revand_cache_entries gauge\n")
	e.printf("revand_cache_entries %d\n", g.Cache.Entries)
	e.printf("# HELP revand_cache_bytes Bytes of cached report JSON.\n")
	e.printf("# TYPE revand_cache_bytes gauge\n")
	e.printf("revand_cache_bytes %d\n", g.Cache.Bytes)

	e.printf("# HELP revand_stagecache_hits_total Stage-store artifact hits across analyses.\n")
	e.printf("# TYPE revand_stagecache_hits_total counter\n")
	e.printf("revand_stagecache_hits_total %d\n", g.StageCache.Hits)
	e.printf("# HELP revand_stagecache_misses_total Stage-store misses (stage bodies executed).\n")
	e.printf("# TYPE revand_stagecache_misses_total counter\n")
	e.printf("revand_stagecache_misses_total %d\n", g.StageCache.Misses)
	e.printf("# HELP revand_stagecache_evictions_total Stage artifacts dropped by the LRU bound.\n")
	e.printf("# TYPE revand_stagecache_evictions_total counter\n")
	e.printf("revand_stagecache_evictions_total %d\n", g.StageCache.Evictions)
	e.printf("# HELP revand_stagecache_entries Stage artifacts currently stored.\n")
	e.printf("# TYPE revand_stagecache_entries gauge\n")
	e.printf("revand_stagecache_entries %d\n", g.StageCache.Entries)

	e.printf("# HELP revand_sessions_created_total Exploration sessions opened.\n")
	e.printf("# TYPE revand_sessions_created_total counter\n")
	e.printf("revand_sessions_created_total %d\n", m.sessionsCreated)
	e.printf("# HELP revand_sessions_closed_total Sessions closed, by reason.\n")
	e.printf("# TYPE revand_sessions_closed_total counter\n")
	for _, reason := range sortedKeys(m.sessionsClosed) {
		e.printf("revand_sessions_closed_total{reason=%q} %d\n", reason, m.sessionsClosed[reason])
	}
	e.printf("# HELP revand_sessions_active Sessions currently live.\n")
	e.printf("# TYPE revand_sessions_active gauge\n")
	e.printf("revand_sessions_active %d\n", g.SessionsActive)
	e.printf("# HELP revand_session_diffs_total Differential comparisons served.\n")
	e.printf("# TYPE revand_session_diffs_total counter\n")
	e.printf("revand_session_diffs_total %d\n", m.sessionDiffs)

	e.printf("# HELP revand_uptime_seconds Seconds since the service started.\n")
	e.printf("# TYPE revand_uptime_seconds gauge\n")
	e.printf("revand_uptime_seconds %g\n", g.UptimeSeconds)

	e.printf("# HELP revand_stage_duration_seconds Pipeline stage wall-clock duration.\n")
	e.printf("# TYPE revand_stage_duration_seconds histogram\n")
	stageNames := make([]string, 0, len(m.stages))
	for name := range m.stages {
		stageNames = append(stageNames, name)
	}
	sort.Strings(stageNames)
	for _, name := range stageNames {
		h := m.stages[name]
		cum := int64(0)
		for i, bound := range stageBuckets {
			cum += h.counts[i]
			e.printf("revand_stage_duration_seconds_bucket{stage=%q,le=%q} %d\n",
				name, strconv.FormatFloat(bound, 'g', -1, 64), cum)
		}
		cum += h.counts[len(stageBuckets)]
		e.printf("revand_stage_duration_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", name, cum)
		e.printf("revand_stage_duration_seconds_sum{stage=%q} %g\n", name, h.sum)
		e.printf("revand_stage_duration_seconds_count{stage=%q} %d\n", name, h.total)
	}
	return e.err
}
