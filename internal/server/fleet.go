package server

// Fleet mode: the coordinator path. An oversized netlist is split by
// reset-tree partitioning, every partition is serialized to canonical
// structural Verilog and dispatched as a /v1/jobs job to a peer revand
// worker (with retries, hedging, and circuit breakers — see
// internal/fleet), and the partial reports are merged back through
// canonical-order overlap resolution into one report for the parent.
//
// Determinism is the load-bearing property. The merged report must be
// byte-identical (up to wall-clock fields) to the same coordinator
// running every partition locally, no matter which peers answered, in
// what order, after how many retries, or whether the whole fleet was
// dead. That holds because:
//
//   - the partition set is a pure function of the netlist and options
//     (explicit resets or deterministic GuessResets);
//   - each partition's wire form is canonical (partition.Canonical):
//     names are stripped, so its text — and hence the peer's parse of it
//     — depends only on the partition's structure;
//   - the coordinator parses the same text itself, so its node-ID view
//     of the partition matches every peer's, and the local fallback
//     analyzes that very parse;
//   - analysis is deterministic (worker-count-invariant reports), so
//     remote and local bytes for a partition decode to the same module
//     set; and
//   - core.MergePartitioned concatenates partials in partition order and
//     resolves overlaps with the same ILP as a local run.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"netlistre"
	"netlistre/internal/core"
	"netlistre/internal/fleet"
	"netlistre/internal/netlist"
	"netlistre/internal/partition"
)

// fleetEligible reports whether nl is large enough for the fleet path.
// The element floor keeps small requests on the fast single-process path
// regardless of fleet configuration.
func (s *Server) fleetEligible(nl *netlistre.Netlist) bool {
	if s.fleetDisp == nil {
		return false
	}
	st := nl.Stats()
	return st.Gates+st.Latches >= s.cfg.FleetMinElements
}

// fleetResets resolves the partition anchors: the request's explicit
// reset names (validated at decode time) or automatic discovery.
func fleetResets(nl *netlistre.Netlist, ro RequestOptions) []netlist.ID {
	if len(ro.PartitionResets) > 0 {
		ids := make([]netlist.ID, 0, len(ro.PartitionResets))
		for _, name := range ro.PartitionResets {
			if id := nl.FindByName(name); id != netlist.Nil {
				ids = append(ids, id)
			}
		}
		return ids
	}
	return partition.GuessResets(nl, partition.GuessOptions{})
}

// fleetTask is one partition prepared for dispatch: its canonical wire
// text, the coordinator's own parse of that text, and the node-ID mapping
// from the parse back into the parent netlist.
type fleetTask struct {
	name     string
	verilog  string
	wire     *netlistre.Netlist
	toParent map[netlistre.ID]netlistre.ID
	ro       RequestOptions
}

// forwardOptions projects the request options onto a partition job: only
// the semantic knobs travel (they change what a report contains), never
// the operational ones — workers and budgets are a peer's own business,
// and a degraded remote report is rejected by the dispatcher anyway.
func forwardOptions(ro RequestOptions) RequestOptions {
	return RequestOptions{
		SkipModMatch:    ro.SkipModMatch,
		SkipWordProp:    ro.SkipWordProp,
		KeepCandidates:  ro.KeepCandidates,
		Objective:       ro.Objective,
		CoverageTarget:  ro.CoverageTarget,
		Sliceable:       ro.Sliceable,
		IncludeElements: true,
	}
}

// buildFleetTasks partitions nl at the given anchors and prepares each
// non-empty partition for dispatch.
func (s *Server) buildFleetTasks(nl *netlistre.Netlist, resets []netlist.ID, ro RequestOptions) ([]fleetTask, error) {
	sum := partition.ByResets(nl, resets)
	fro := forwardOptions(ro)
	var tasks []fleetTask
	for _, p := range sum.Partitions {
		if len(p.Elements) == 0 {
			continue
		}
		sub, m := partition.Extract(nl, p)
		partition.Canonical(sub, nl.Name+"."+p.Name)
		var buf bytes.Buffer
		if err := sub.WriteVerilog(&buf); err != nil {
			return nil, fmt.Errorf("serializing partition %s: %w", p.Name, err)
		}
		text := buf.String()
		// Parse our own wire text: this is the exact netlist every peer
		// will see, so module element IDs in a peer's report are node IDs
		// of this parse.
		wire, err := netlistre.ReadVerilog(strings.NewReader(text))
		if err != nil {
			return nil, fmt.Errorf("reparsing partition %s: %w", p.Name, err)
		}
		inv := make(map[netlistre.ID]netlistre.ID, len(m))
		for parent, sid := range m {
			inv[sid] = parent
		}
		toParent := make(map[netlistre.ID]netlistre.ID, wire.Len())
		for i := 0; i < wire.Len(); i++ {
			id := netlistre.ID(i)
			k, ok := wireNodeID(wire.Node(id).Name)
			if !ok {
				continue
			}
			parent, ok := inv[netlistre.ID(k)]
			if !ok {
				continue // e.g. an unpatched latch-placeholder const
			}
			toParent[id] = parent
		}
		tasks = append(tasks, fleetTask{
			name:     p.Name,
			verilog:  text,
			wire:     wire,
			toParent: toParent,
			ro:       fro,
		})
	}
	return tasks, nil
}

// wireNodeID parses the canonical "n<id>" net name WriteVerilog emits for
// an unnamed node, recovering the sub-netlist node ID.
func wireNodeID(name string) (int, bool) {
	if len(name) < 2 || name[0] != 'n' {
		return 0, false
	}
	k, err := strconv.Atoi(name[1:])
	if err != nil || k < 0 {
		return 0, false
	}
	return k, true
}

// analyzePartitionLocal is the dispatch fallback: compute a partition's
// report on the coordinator itself, through the same report cache and
// stage store a dedicated request would use, rendered in the same wire
// format a peer would return.
func (s *Server) analyzePartitionLocal(ctx context.Context, wire *netlistre.Netlist, fro RequestOptions) ([]byte, error) {
	fp := wire.Fingerprint()
	key := fro.cacheKey(fp, 0)
	if b, _, ok := s.cache.Get(key); ok {
		return b, nil
	}
	opt := fro.toOptions(wire, 0)
	if s.stages != nil {
		opt.StageStore = s.stages
		opt.Fingerprint = fp
	}
	rep := netlistre.AnalyzeContext(ctx, wire, opt)
	s.metrics.AnalysisDone("fleet-local", rep.Trace)
	var buf bytes.Buffer
	if err := netlistre.WriteJSONReportElements(&buf, rep); err != nil {
		return nil, err
	}
	if !rep.Degraded {
		s.cache.Put(key, fp, buf.Bytes())
	}
	return buf.Bytes(), nil
}

// decodePartial decodes one partition report's bytes into its resolved
// modules (in wire-netlist ID space) plus the degraded flag.
func decodePartial(b []byte) ([]*netlistre.Module, bool, error) {
	jrep, err := netlistre.ReadJSONReport(bytes.NewReader(b))
	if err != nil {
		return nil, false, err
	}
	mods, err := netlistre.ModulesFromJSONReport(jrep)
	return mods, jrep.Degraded, err
}

// remapModules translates modules from a partition's wire-netlist ID
// space into the parent's. IDs with no parent counterpart (nodes the
// extraction synthesized) are dropped; the drop is deterministic because
// every executor sees the same wire netlist.
func remapModules(mods []*netlistre.Module, toParent map[netlistre.ID]netlistre.ID) []*netlistre.Module {
	out := make([]*netlistre.Module, 0, len(mods))
	for _, m := range mods {
		nm := &netlistre.Module{Type: m.Type, Name: m.Name, Width: m.Width}
		elems := make([]netlistre.ID, 0, len(m.Elements))
		for _, e := range m.Elements {
			if p, ok := toParent[e]; ok {
				elems = append(elems, p)
			}
		}
		nm.SetElements(elems)
		for _, slice := range m.Slices {
			mapped := make([]netlistre.ID, 0, len(slice))
			for _, e := range slice {
				if p, ok := toParent[e]; ok {
					mapped = append(mapped, p)
				}
			}
			if len(mapped) > 0 {
				nm.Slices = append(nm.Slices, mapped)
			}
		}
		var portNames []string
		for name := range m.Ports {
			portNames = append(portNames, name)
		}
		sort.Strings(portNames)
		for _, name := range portNames {
			ids := m.Ports[name]
			mapped := make([]netlistre.ID, 0, len(ids))
			for _, e := range ids {
				if p, ok := toParent[e]; ok {
					mapped = append(mapped, p)
				}
			}
			if len(mapped) > 0 {
				nm.SetPort(name, mapped)
			}
		}
		for k, v := range m.Attr {
			nm.SetAttr(k, v)
		}
		out = append(out, nm)
	}
	return out
}

// analyzeFleet attempts the fleet path for one analysis. handled=false
// (with a nil error) means the netlist did not split into at least two
// partitions and the caller should run the plain single-process path.
func (s *Server) analyzeFleet(ctx context.Context, source string, nl *netlistre.Netlist, opt netlistre.Options, fingerprint, key string, ro RequestOptions) (report []byte, degraded, handled bool, err error) {
	resets := fleetResets(nl, ro)
	if len(resets) < 2 {
		return nil, false, false, nil
	}
	tasks, err := s.buildFleetTasks(nl, resets, ro)
	if err != nil || len(tasks) < 2 {
		// A netlist that cannot be split (or serialized) is not a fleet
		// failure; the plain path still produces a full report.
		return nil, false, false, nil
	}

	ft := make([]fleet.Task, len(tasks))
	for i := range tasks {
		t := tasks[i]
		body, merr := json.Marshal(AnalyzeRequest{Verilog: t.verilog, Options: t.ro})
		if merr != nil {
			return nil, false, false, nil
		}
		ft[i] = fleet.Task{
			Key:  t.name,
			Body: body,
			Local: func(ctx context.Context) ([]byte, error) {
				return s.analyzePartitionLocal(ctx, t.wire, t.ro)
			},
		}
	}

	results := s.fleetDisp.Run(ctx, ft)
	partials := make([]core.Partial, len(results))
	for i, res := range results {
		t := tasks[i]
		if res.Err != nil {
			return nil, false, true, fmt.Errorf("fleet: partition %s: %w", t.name, res.Err)
		}
		mods, deg, derr := decodePartial(res.Report)
		if derr != nil && res.Source != "local" {
			// The peer's report is unusable (e.g. an older wire format
			// without element IDs); recompute the partition locally.
			var b []byte
			b, err = ft[i].Local(ctx)
			if err != nil {
				return nil, false, true, fmt.Errorf("fleet: partition %s: %w", t.name, err)
			}
			mods, deg, derr = decodePartial(b)
		}
		if derr != nil {
			return nil, false, true, fmt.Errorf("fleet: partition %s: %w", t.name, derr)
		}
		partials[i] = core.Partial{
			Name:     t.name,
			Modules:  remapModules(mods, t.toParent),
			Degraded: deg,
			Duration: res.Duration,
		}
	}

	rep := core.MergePartitioned(ctx, nl, opt, partials)
	s.metrics.AnalysisDone(source+"-fleet", rep.Trace)
	var buf bytes.Buffer
	if ro.IncludeElements {
		err = netlistre.WriteJSONReportElements(&buf, rep)
	} else {
		err = netlistre.WriteJSONReport(&buf, rep)
	}
	if err != nil {
		return nil, false, true, err
	}
	if !rep.Degraded {
		s.cache.Put(key, fingerprint, buf.Bytes())
	}
	return buf.Bytes(), rep.Degraded, true, nil
}
