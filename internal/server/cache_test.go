package server

import (
	"fmt"
	"testing"
)

func TestCacheHitMissEvict(t *testing.T) {
	c := NewCache(2)
	if _, _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", "fpa", []byte("ra"))
	c.Put("b", "fpb", []byte("rb"))
	if got, fp, ok := c.Get("a"); !ok || string(got) != "ra" || fp != "fpa" {
		t.Fatalf("Get(a) = %q, %q, %v", got, fp, ok)
	}
	// "b" is now LRU; inserting "c" must evict it.
	c.Put("c", "fpc", []byte("rc"))
	if _, _, ok := c.Get("b"); ok {
		t.Error("expected b evicted as least recently used")
	}
	if _, _, ok := c.Get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 2 hits, 2 misses, 1 eviction, 2 entries", st)
	}
	if want := int64(len("ra") + len("rc")); st.Bytes != want {
		t.Errorf("bytes = %d, want %d", st.Bytes, want)
	}
}

func TestCacheDuplicatePut(t *testing.T) {
	c := NewCache(4)
	c.Put("k", "fp", []byte("r1"))
	c.Put("k", "fp", []byte("r1"))
	if st := c.Stats(); st.Entries != 1 || st.Bytes != 2 {
		t.Errorf("duplicate Put double-counted: %+v", st)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(-1)
	c.Put("k", "fp", []byte("r"))
	if _, _, ok := c.Get("k"); ok {
		t.Error("disabled cache returned a hit")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("disabled cache stored an entry: %+v", st)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(8)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%16)
				c.Put(key, "fp", []byte(key))
				c.Get(key)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if st := c.Stats(); st.Entries > 8 {
		t.Errorf("cache exceeded bound: %+v", st)
	}
}
