package server

// Interactive exploration sessions. A session binds a server-side handle to
// an analyzed netlist (created from a done job, so the report cache and the
// process-wide stage store have already paid for the analysis) and exposes
// navigation endpoints over it: recovered blocks, words and ports, module
// expansion, bounded fan-in/fan-out cone queries, and single-analysis
// re-runs whose unchanged upstream stages replay from the stage store with
// "cached" provenance. A session can hold additional named netlist
// revisions (uploaded without analysis) for differential comparison — see
// diff.go for the golden/suspect trojan diff endpoint.
//
// Sessions live in a TTL + LRU store: a session idle past SessionTTL
// expires, and the store never holds more than MaxSessions (least recently
// used evicted first). Both are lazy — enforced on every store access — so
// there is no background goroutine to leak.

import (
	"container/list"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"netlistre"
)

// Session eviction reasons, as counted on /metrics.
const (
	sessionExpired = "ttl"
	sessionLRU     = "lru"
	sessionDeleted = "deleted"
)

// revisionMain is the name of the revision a session is created with.
const revisionMain = "main"

// Cone query guardrails: defaults applied when the client omits a bound,
// and hard caps a request cannot exceed.
const (
	coneDefaultDepth = 4
	coneDefaultLimit = 200
	coneMaxDepth     = 64
	coneMaxLimit     = 10000
)

// Session is one interactive exploration handle. Mutable state (revisions,
// lastUsed) is guarded by mu; the store holds its own lock separately and
// never calls into a locked session.
type Session struct {
	ID      string
	Created time.Time

	mu        sync.Mutex
	lastUsed  time.Time
	revisions map[string]*sessionRevision
	revOrder  []string // insertion order, for stable listings
}

// sessionRevision is one named netlist inside a session. rep is non-nil
// once the revision has been analyzed (always, for the creation revision).
type sessionRevision struct {
	name        string
	nl          *netlistre.Netlist
	fingerprint string
	ro          RequestOptions
	rep         *netlistre.Report
}

func (s *Session) revision(name string) *sessionRevision {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.revisions[name]
}

func (s *Session) addRevision(rev *sessionRevision) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.revisions[rev.name]; ok {
		return fmt.Errorf("revision %q already exists", rev.name)
	}
	s.revisions[rev.name] = rev
	s.revOrder = append(s.revOrder, rev.name)
	return nil
}

// sessionStore is the TTL + LRU session table.
type sessionStore struct {
	mu    sync.Mutex
	ttl   time.Duration
	max   int
	byID  map[string]*Session
	order *list.List // front = least recently used; values are *Session
	elem  map[string]*list.Element

	metrics *Metrics
	now     func() time.Time // injectable for expiry tests
}

func newSessionStore(ttl time.Duration, max int, m *Metrics) *sessionStore {
	return &sessionStore{
		ttl:     ttl,
		max:     max,
		byID:    map[string]*Session{},
		order:   list.New(),
		elem:    map[string]*list.Element{},
		metrics: m,
		now:     time.Now,
	}
}

func newSessionID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("sess-%x", time.Now().UnixNano())
	}
	return "sess-" + hex.EncodeToString(b[:])
}

// sweepLocked evicts expired sessions and enforces the LRU cap. Caller
// holds st.mu.
func (st *sessionStore) sweepLocked() {
	now := st.now()
	for e := st.order.Front(); e != nil; {
		next := e.Next()
		s := e.Value.(*Session)
		s.mu.Lock()
		idle := now.Sub(s.lastUsed)
		s.mu.Unlock()
		if idle > st.ttl {
			st.removeLocked(s.ID, sessionExpired)
		}
		e = next
	}
	for st.max > 0 && len(st.byID) > st.max {
		front := st.order.Front()
		if front == nil {
			break
		}
		st.removeLocked(front.Value.(*Session).ID, sessionLRU)
	}
}

func (st *sessionStore) removeLocked(id, reason string) {
	if _, ok := st.byID[id]; !ok {
		return
	}
	delete(st.byID, id)
	if e := st.elem[id]; e != nil {
		st.order.Remove(e)
		delete(st.elem, id)
	}
	st.metrics.SessionClosed(reason)
}

// Create registers a new session holding the given initial revision.
func (st *sessionStore) Create(rev *sessionRevision) *Session {
	now := st.now()
	s := &Session{
		ID:        newSessionID(),
		Created:   now,
		lastUsed:  now,
		revisions: map[string]*sessionRevision{rev.name: rev},
		revOrder:  []string{rev.name},
	}
	st.mu.Lock()
	st.byID[s.ID] = s
	st.elem[s.ID] = st.order.PushBack(s)
	st.sweepLocked()
	st.mu.Unlock()
	st.metrics.SessionCreated()
	return s
}

// Get returns the session and touches its recency, or nil when the ID is
// unknown or the session has expired.
func (st *sessionStore) Get(id string) *Session {
	st.mu.Lock()
	st.sweepLocked()
	s := st.byID[id]
	if s != nil {
		st.order.MoveToBack(st.elem[id])
	}
	st.mu.Unlock()
	if s != nil {
		now := st.now()
		s.mu.Lock()
		s.lastUsed = now
		s.mu.Unlock()
	}
	return s
}

// Delete removes a session explicitly; reports whether it existed.
func (st *sessionStore) Delete(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.byID[id]; !ok {
		return false
	}
	st.removeLocked(id, sessionDeleted)
	return true
}

// Active returns the live session count (after sweeping).
func (st *sessionStore) Active() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sweepLocked()
	return len(st.byID)
}

// ---- wire types ----

// CreateSessionRequest is the body of POST /v1/sessions.
type CreateSessionRequest struct {
	// JobID names a *done* job whose netlist and report the session binds
	// to. Queued, running, degraded, or failed jobs are rejected with 409.
	JobID string `json:"job_id"`
}

// RevisionStatus describes one named revision of a session.
type RevisionStatus struct {
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint"`
	Design      string `json:"design"`
	Inputs      int    `json:"inputs"`
	Outputs     int    `json:"outputs"`
	Gates       int    `json:"gates"`
	Latches     int    `json:"latches"`
	Analyzed    bool   `json:"analyzed"`
}

// SessionStatus is the wire form of a session.
type SessionStatus struct {
	ID        string           `json:"id"`
	CreatedAt time.Time        `json:"created_at"`
	IdleTTLMS int64            `json:"idle_ttl_ms"`
	Revisions []RevisionStatus `json:"revisions"`
}

// NodeRef identifies one netlist node on the wire.
type NodeRef struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
	Kind string `json:"kind"`
}

func nodeRef(nl *netlistre.Netlist, id netlistre.ID) NodeRef {
	return NodeRef{ID: int(id), Name: nl.NameOf(id), Kind: nl.Kind(id).String()}
}

// BlockSummary is one recovered module in a block listing.
type BlockSummary struct {
	Index    int    `json:"index"`
	Name     string `json:"name"`
	Type     string `json:"type"`
	Width    int    `json:"width"`
	Elements int    `json:"elements"`
}

// BlockDetail expands one recovered module to its member gates and ports.
type BlockDetail struct {
	BlockSummary
	Members []NodeRef            `json:"members"`
	Ports   map[string][]NodeRef `json:"ports,omitempty"`
}

// WordStatus is one recovered word.
type WordStatus struct {
	Origin string    `json:"origin"`
	Bits   []NodeRef `json:"bits"`
}

// PortStatus is one primary output with its driver.
type PortStatus struct {
	Name   string  `json:"name"`
	Driver NodeRef `json:"driver"`
}

// ConeNodeStatus is one node of a cone query response.
type ConeNodeStatus struct {
	NodeRef
	Depth int `json:"depth"`
}

// ConeResponse is the body of GET /v1/sessions/{id}/cone.
type ConeResponse struct {
	Revision       string           `json:"revision"`
	Root           NodeRef          `json:"root"`
	Direction      string           `json:"direction"`
	Nodes          []ConeNodeStatus `json:"nodes"`
	TruncatedDepth bool             `json:"truncated_depth"`
	TruncatedSize  bool             `json:"truncated_size"`
}

// RerunResponse is the body of POST /v1/sessions/{id}/rerun: the stage
// trace (with provenance, so the caller can see which stages replayed from
// the store) plus the full report.
type RerunResponse struct {
	Revision    string           `json:"revision"`
	Fingerprint string           `json:"fingerprint"`
	Degraded    bool             `json:"degraded,omitempty"`
	Trace       []StageRunStatus `json:"trace"`
	Report      json.RawMessage  `json:"report"`
}

// StageRunStatus is one stage of a re-run trace.
type StageRunStatus struct {
	Stage      string `json:"stage"`
	Provenance string `json:"provenance"`
	Status     string `json:"status"`
	DurationMS int64  `json:"duration_ms"`
	Modules    int    `json:"modules"`
}

// ---- handlers ----

func (s *Server) sessionStatus(sess *Session) SessionStatus {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	out := SessionStatus{
		ID:        sess.ID,
		CreatedAt: sess.Created,
		IdleTTLMS: s.cfg.SessionTTL.Milliseconds(),
	}
	for _, name := range sess.revOrder {
		rev := sess.revisions[name]
		stats := rev.nl.Stats()
		out.Revisions = append(out.Revisions, RevisionStatus{
			Name:        rev.name,
			Fingerprint: rev.fingerprint,
			Design:      rev.nl.Name,
			Inputs:      stats.Inputs,
			Outputs:     stats.Outputs,
			Gates:       stats.Gates,
			Latches:     stats.Latches,
			Analyzed:    rev.rep != nil,
		})
	}
	return out
}

// analyzeRevision runs (or replays) the analysis for a revision through
// the process-wide stage store, so a session created from a done job costs
// a stage replay, not a fresh portfolio run.
func (s *Server) analyzeRevision(r *http.Request, rev *sessionRevision) *netlistre.Report {
	opt := rev.ro.toOptions(rev.nl, s.cfg.DefaultTimeout)
	if s.stages != nil {
		opt.StageStore = s.stages
		opt.Fingerprint = rev.fingerprint
	}
	rep := netlistre.AnalyzeContext(r.Context(), rev.nl, opt)
	s.metrics.AnalysisDone("session", rep.Trace)
	return rep
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req CreateSessionRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.JobID == "" {
		writeError(w, http.StatusBadRequest, "job_id is required")
		return
	}
	j := s.queue.Get(req.JobID)
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", req.JobID)
		return
	}
	if st := j.State(); st != JobDone {
		writeError(w, http.StatusConflict,
			"job is %s; sessions can only bind to done jobs", st)
		return
	}
	rev := &sessionRevision{
		name:        revisionMain,
		nl:          j.nl,
		fingerprint: j.Fingerprint,
		ro:          j.ro,
	}
	rep := s.analyzeRevision(r, rev)
	if rep.Degraded {
		writeError(w, http.StatusServiceUnavailable,
			"re-deriving the job's report was degraded; retry")
		return
	}
	rev.rep = rep
	sess := s.sessions.Create(rev)
	w.Header().Set("Location", "/v1/sessions/"+sess.ID)
	writeJSON(w, http.StatusCreated, s.sessionStatus(sess))
}

// getSession resolves the {id} path value, writing the 404 itself.
func (s *Server) getSession(w http.ResponseWriter, r *http.Request) *Session {
	id := r.PathValue("id")
	sess := s.sessions.Get(id)
	if sess == nil {
		writeError(w, http.StatusNotFound,
			"no such session %q (sessions expire after %v idle)", id, s.cfg.SessionTTL)
	}
	return sess
}

// getRevision resolves the ?rev= query parameter (default "main") on a
// session, writing the 400 itself.
func (s *Server) getRevision(w http.ResponseWriter, r *http.Request, sess *Session) *sessionRevision {
	name := r.URL.Query().Get("rev")
	if name == "" {
		name = revisionMain
	}
	rev := sess.revision(name)
	if rev == nil {
		writeError(w, http.StatusBadRequest, "session has no revision %q", name)
	}
	return rev
}

// getAnalyzedRevision additionally requires a report, 409 otherwise (the
// revision was uploaded for diffing but never analyzed).
func (s *Server) getAnalyzedRevision(w http.ResponseWriter, r *http.Request, sess *Session) *sessionRevision {
	rev := s.getRevision(w, r, sess)
	if rev == nil {
		return nil
	}
	if rev.rep == nil {
		writeError(w, http.StatusConflict,
			"revision %q has not been analyzed; POST .../rerun?rev=%s first", rev.name, rev.name)
		return nil
	}
	return rev
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	if sess := s.getSession(w, r); sess != nil {
		writeJSON(w, http.StatusOK, s.sessionStatus(sess))
	}
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	if !s.sessions.Delete(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, "no such session %q", r.PathValue("id"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSessionBlocks(w http.ResponseWriter, r *http.Request) {
	sess := s.getSession(w, r)
	if sess == nil {
		return
	}
	rev := s.getAnalyzedRevision(w, r, sess)
	if rev == nil {
		return
	}
	blocks := []BlockSummary{}
	for i, m := range rev.rep.Resolved {
		blocks = append(blocks, BlockSummary{
			Index:    i,
			Name:     m.Name,
			Type:     m.Type.String(),
			Width:    m.Width,
			Elements: len(m.Elements),
		})
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"revision": rev.name,
		"blocks":   blocks,
	})
}

func (s *Server) handleSessionBlock(w http.ResponseWriter, r *http.Request) {
	sess := s.getSession(w, r)
	if sess == nil {
		return
	}
	rev := s.getAnalyzedRevision(w, r, sess)
	if rev == nil {
		return
	}
	idx, err := strconv.Atoi(r.PathValue("idx"))
	if err != nil || idx < 0 || idx >= len(rev.rep.Resolved) {
		writeError(w, http.StatusBadRequest,
			"block index %q out of range [0, %d)", r.PathValue("idx"), len(rev.rep.Resolved))
		return
	}
	m := rev.rep.Resolved[idx]
	detail := BlockDetail{
		BlockSummary: BlockSummary{
			Index: idx, Name: m.Name, Type: m.Type.String(),
			Width: m.Width, Elements: len(m.Elements),
		},
		Members: []NodeRef{},
	}
	for _, e := range m.Elements {
		detail.Members = append(detail.Members, nodeRef(rev.nl, e))
	}
	if len(m.Ports) > 0 {
		detail.Ports = map[string][]NodeRef{}
		for port, ids := range m.Ports {
			refs := make([]NodeRef, 0, len(ids))
			for _, id := range ids {
				refs = append(refs, nodeRef(rev.nl, id))
			}
			detail.Ports[port] = refs
		}
	}
	writeJSON(w, http.StatusOK, detail)
}

func (s *Server) handleSessionWords(w http.ResponseWriter, r *http.Request) {
	sess := s.getSession(w, r)
	if sess == nil {
		return
	}
	rev := s.getAnalyzedRevision(w, r, sess)
	if rev == nil {
		return
	}
	words := []WordStatus{}
	for _, word := range rev.rep.Words {
		ws := WordStatus{Origin: word.Origin, Bits: []NodeRef{}}
		for _, b := range word.Bits {
			ws.Bits = append(ws.Bits, nodeRef(rev.nl, b))
		}
		words = append(words, ws)
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"revision": rev.name,
		"words":    words,
	})
}

func (s *Server) handleSessionPorts(w http.ResponseWriter, r *http.Request) {
	sess := s.getSession(w, r)
	if sess == nil {
		return
	}
	rev := s.getRevision(w, r, sess)
	if rev == nil {
		return
	}
	inputs := []NodeRef{}
	for _, id := range rev.nl.Inputs() {
		inputs = append(inputs, nodeRef(rev.nl, id))
	}
	outputs := []PortStatus{}
	for _, p := range rev.nl.Outputs() {
		outputs = append(outputs, PortStatus{Name: p.Name, Driver: nodeRef(rev.nl, p.Driver)})
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"revision": rev.name,
		"inputs":   inputs,
		"outputs":  outputs,
	})
}

// coneBound parses one bounded-int query parameter with a default and cap.
func coneBound(q string, def, max int) (int, error) {
	if q == "" {
		return def, nil
	}
	v, err := strconv.Atoi(q)
	if err != nil || v < 1 {
		return 0, fmt.Errorf("must be a positive integer, got %q", q)
	}
	if v > max {
		return 0, fmt.Errorf("must be <= %d, got %d", max, v)
	}
	return v, nil
}

func (s *Server) handleSessionCone(w http.ResponseWriter, r *http.Request) {
	sess := s.getSession(w, r)
	if sess == nil {
		return
	}
	rev := s.getRevision(w, r, sess)
	if rev == nil {
		return
	}
	q := r.URL.Query()

	netParam := q.Get("net")
	if netParam == "" {
		writeError(w, http.StatusBadRequest, "net parameter is required (a node name or #id)")
		return
	}
	var root netlistre.ID
	if strings.HasPrefix(netParam, "#") {
		v, err := strconv.Atoi(netParam[1:])
		if err != nil || v < 0 || v >= rev.nl.Len() {
			writeError(w, http.StatusBadRequest, "net %q is not a valid node id", netParam)
			return
		}
		root = netlistre.ID(v)
	} else {
		root = rev.nl.FindByName(netParam)
		if root == netlistre.NilID {
			writeError(w, http.StatusBadRequest, "no node named %q", netParam)
			return
		}
	}

	dir := netlistre.ConeFanin
	switch q.Get("dir") {
	case "", "fanin":
	case "fanout":
		dir = netlistre.ConeFanout
	default:
		writeError(w, http.StatusBadRequest, "dir must be \"fanin\" or \"fanout\", got %q", q.Get("dir"))
		return
	}
	depth, err := coneBound(q.Get("depth"), coneDefaultDepth, coneMaxDepth)
	if err != nil {
		writeError(w, http.StatusBadRequest, "depth %v", err)
		return
	}
	limit, err := coneBound(q.Get("limit"), coneDefaultLimit, coneMaxLimit)
	if err != nil {
		writeError(w, http.StatusBadRequest, "limit %v", err)
		return
	}

	cone := rev.nl.BoundedCone(root, dir, depth, limit)
	resp := ConeResponse{
		Revision:       rev.name,
		Root:           nodeRef(rev.nl, root),
		Direction:      dir.String(),
		Nodes:          []ConeNodeStatus{},
		TruncatedDepth: cone.TruncatedDepth,
		TruncatedSize:  cone.TruncatedSize,
	}
	for _, cn := range cone.Nodes {
		resp.Nodes = append(resp.Nodes, ConeNodeStatus{
			NodeRef: nodeRef(rev.nl, cn.ID),
			Depth:   cn.Depth,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSessionRerun re-runs the analysis of one revision with new
// options, through the process-wide stage store: stages whose inputs are
// unchanged replay with "cached" provenance, and only the stages the new
// options actually affect execute.
func (s *Server) handleSessionRerun(w http.ResponseWriter, r *http.Request) {
	sess := s.getSession(w, r)
	if sess == nil {
		return
	}
	rev := s.getRevision(w, r, sess)
	if rev == nil {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var ro RequestOptions
	if err := dec.Decode(&ro); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if err := ro.validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	work := &sessionRevision{
		name:        rev.name,
		nl:          rev.nl,
		fingerprint: rev.fingerprint,
		ro:          ro,
	}
	rep := s.analyzeRevision(r, work)

	var buf strings.Builder
	var err error
	if ro.IncludeElements {
		err = netlistre.WriteJSONReportElements(&buf, rep)
	} else {
		err = netlistre.WriteJSONReport(&buf, rep)
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "rendering report: %v", err)
		return
	}
	resp := RerunResponse{
		Revision:    rev.name,
		Fingerprint: rev.fingerprint,
		Degraded:    rep.Degraded,
		Report:      json.RawMessage(buf.String()),
	}
	for _, st := range rep.Trace {
		resp.Trace = append(resp.Trace, StageRunStatus{
			Stage:      st.Name,
			Provenance: st.Provenance.String(),
			Status:     st.Status.String(),
			DurationMS: st.Duration.Milliseconds(),
			Modules:    st.Modules,
		})
	}
	if !rep.Degraded {
		// Adopt the re-run as the revision's current report and options.
		sess.mu.Lock()
		rev.rep = rep
		rev.ro = ro
		sess.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, resp)
}

// validRevisionName gates uploaded revision names: short, path-safe,
// lowercase identifiers.
func validRevisionName(name string) bool {
	if len(name) == 0 || len(name) > 32 {
		return false
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z':
		case c >= '0' && c <= '9':
		case c == '-' || c == '_':
		default:
			return false
		}
	}
	return true
}

// handleAddRevision uploads a named netlist revision into a session for
// later diffing. The body is an AnalyzeRequest (one netlist source plus
// options); the netlist is parsed and validated but NOT analyzed — the
// structural/functional diff does not need a report, and an explicit
// rerun?rev=<name> analyzes it on demand.
func (s *Server) handleAddRevision(w http.ResponseWriter, r *http.Request) {
	sess := s.getSession(w, r)
	if sess == nil {
		return
	}
	name := r.PathValue("name")
	if !validRevisionName(name) {
		writeError(w, http.StatusBadRequest,
			"revision name must match [a-z0-9_-]{1,32}, got %q", name)
		return
	}
	pr, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	rev := &sessionRevision{
		name:        name,
		nl:          pr.nl,
		fingerprint: pr.fingerprint,
		ro:          pr.ro,
	}
	if err := sess.addRevision(rev); err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, s.sessionStatus(sess))
}
