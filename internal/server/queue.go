package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"netlistre"
)

// Job states, as reported on GET /v1/jobs/{id} and counted on /metrics.
const (
	JobQueued   = "queued"
	JobRunning  = "running"
	JobDone     = "done"     // finished with a complete report
	JobDegraded = "degraded" // finished, but the report is partial
	JobFailed   = "failed"   // internal error while rendering the report
)

// Queue errors, mapped to 503 responses by the HTTP layer.
var (
	ErrQueueFull    = errors.New("server: job queue full")
	ErrShuttingDown = errors.New("server: shutting down")
)

// maxRetiredJobs bounds how many finished jobs stay queryable. Older
// finished jobs are forgotten FIFO so the job table cannot grow without
// bound under sustained traffic.
const maxRetiredJobs = 1024

// Job is one queued analysis. The exported fields are immutable after
// Submit; the mutable state is guarded by mu and read via Status.
type Job struct {
	ID          string
	Fingerprint string

	nl  *netlistre.Netlist
	opt netlistre.Options
	key string
	ro  RequestOptions

	mu       sync.Mutex
	state    string
	cacheHit bool
	report   []byte
	errText  string
	created  time.Time
	started  time.Time
	finished time.Time

	done chan struct{} // closed when the job reaches a terminal state
}

// JobStatus is the wire form of a job on GET /v1/jobs/{id}. Report holds
// the full JSON report once the job is done or degraded.
type JobStatus struct {
	ID          string          `json:"id"`
	Status      string          `json:"status"`
	Fingerprint string          `json:"fingerprint"`
	CacheHit    bool            `json:"cache_hit,omitempty"`
	Error       string          `json:"error,omitempty"`
	CreatedAt   time.Time       `json:"created_at"`
	StartedAt   *time.Time      `json:"started_at,omitempty"`
	FinishedAt  *time.Time      `json:"finished_at,omitempty"`
	Report      json.RawMessage `json:"report,omitempty"`
}

// Status snapshots the job for serving.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.ID,
		Status:      j.state,
		Fingerprint: j.Fingerprint,
		CacheHit:    j.cacheHit,
		Error:       j.errText,
		CreatedAt:   j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	if j.state == JobDone || j.state == JobDegraded {
		st.Report = json.RawMessage(j.report)
	}
	return st
}

// State returns the job's current state string.
func (j *Job) State() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

func (j *Job) markRunning() {
	j.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	j.mu.Unlock()
}

func (j *Job) finish(state string, report []byte, cacheHit bool, errText string) {
	j.mu.Lock()
	j.state = state
	j.report = report
	j.cacheHit = cacheHit
	j.errText = errText
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to a
		// time-derived ID rather than crashing the service.
		return fmt.Sprintf("job-%x", time.Now().UnixNano())
	}
	return "job-" + hex.EncodeToString(b[:])
}

// Queue is the bounded job queue: a buffered channel of jobs drained by a
// fixed worker pool, with an ID table for status lookups. Submission is
// non-blocking — a full queue is backpressure the client sees as 503, not
// an unbounded memory commitment.
type Queue struct {
	exec    func(ctx context.Context, j *Job)
	jobs    chan *Job
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	workers int
	running int64

	mu      sync.Mutex // guards byID, retired, closing, and the jobs send/close pair
	byID    map[string]*Job
	retired []string
	closing bool

	// Exponentially weighted mean of recent job execution times, feeding
	// the Retry-After hint and the queue-wait gauge.
	execMu      sync.Mutex
	execMean    float64 // seconds
	execSamples int64
}

// NewQueue starts workers goroutines draining a queue of the given depth.
// exec runs one job to completion; it must call finish on the job.
func NewQueue(workers, depth int, exec func(ctx context.Context, j *Job)) *Queue {
	ctx, cancel := context.WithCancel(context.Background())
	q := &Queue{
		exec:    exec,
		jobs:    make(chan *Job, depth),
		ctx:     ctx,
		cancel:  cancel,
		workers: workers,
		byID:    make(map[string]*Job),
	}
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go q.worker()
	}
	return q
}

func (q *Queue) worker() {
	defer q.wg.Done()
	for j := range q.jobs {
		j.markRunning()
		q.addRunning(1)
		begin := time.Now()
		q.exec(q.ctx, j)
		q.noteExec(time.Since(begin))
		q.addRunning(-1)
		q.retire(j)
	}
}

func (q *Queue) addRunning(d int64) {
	q.mu.Lock()
	q.running += d
	q.mu.Unlock()
}

// retire keeps the finished-job table bounded.
func (q *Queue) retire(j *Job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.retired = append(q.retired, j.ID)
	for len(q.retired) > maxRetiredJobs {
		delete(q.byID, q.retired[0])
		q.retired = q.retired[1:]
	}
}

// NewJob wraps an analysis request as a queued job. The job is not yet
// submitted.
func NewJob(nl *netlistre.Netlist, opt netlistre.Options, fingerprint, key string) *Job {
	return &Job{
		ID:          newJobID(),
		Fingerprint: fingerprint,
		nl:          nl,
		opt:         opt,
		key:         key,
		state:       JobQueued,
		created:     time.Now(),
		done:        make(chan struct{}),
	}
}

// Submit enqueues j. It never blocks: when the queue is at capacity it
// returns ErrQueueFull, and after Drain has begun it returns
// ErrShuttingDown.
func (q *Queue) Submit(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closing {
		return ErrShuttingDown
	}
	select {
	case q.jobs <- j:
		q.byID[j.ID] = j
		return nil
	default:
		return ErrQueueFull
	}
}

// Get returns the job with the given ID, or nil.
func (q *Queue) Get(id string) *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.byID[id]
}

// noteExec feeds one job's execution time into the running mean. The
// EWMA (alpha 0.3) tracks shifts in workload — a burst of BigSoC jobs
// raises the estimate within a few completions — without letting one
// outlier dominate.
func (q *Queue) noteExec(d time.Duration) {
	q.execMu.Lock()
	if q.execSamples == 0 {
		q.execMean = d.Seconds()
	} else {
		q.execMean = 0.7*q.execMean + 0.3*d.Seconds()
	}
	q.execSamples++
	q.execMu.Unlock()
}

// EstimatedWaitSeconds estimates how long a job submitted now would wait
// to start: queued jobs times the recent mean execution time, spread
// across the worker pool. Zero until the first job completes.
func (q *Queue) EstimatedWaitSeconds() float64 {
	q.execMu.Lock()
	mean := q.execMean
	q.execMu.Unlock()
	if q.workers <= 0 {
		return 0
	}
	return float64(len(q.jobs)) * mean / float64(q.workers)
}

// Depth returns the number of jobs waiting to start.
func (q *Queue) Depth() int { return len(q.jobs) }

// Capacity returns the queue bound.
func (q *Queue) Capacity() int { return cap(q.jobs) }

// Running returns the number of jobs currently executing.
func (q *Queue) Running() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return int(q.running)
}

// Closing reports whether Drain has begun.
func (q *Queue) Closing() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closing
}

// Drain stops intake and waits for every queued and running job to finish.
// If ctx expires first, the in-flight analyses are canceled cooperatively
// (the PR 2 cancellation hooks make them return degraded reports quickly)
// and Drain returns ctx.Err once the workers exit. Drain is idempotent.
func (q *Queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	if !q.closing {
		q.closing = true
		close(q.jobs)
	}
	q.mu.Unlock()

	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		q.cancel()
		return nil
	case <-ctx.Done():
		q.cancel()
		<-done
		return ctx.Err()
	}
}
