package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"netlistre"
)

// blockingExec returns an executor that parks every job on a gate and an
// idempotent release function.
func blockingExec() (exec func(context.Context, *Job), release func()) {
	gate := make(chan struct{})
	var once sync.Once
	exec = func(ctx context.Context, j *Job) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
		j.finish(JobDone, []byte("{}"), false, "")
	}
	return exec, func() { once.Do(func() { close(gate) }) }
}

func TestQueueBackpressure(t *testing.T) {
	exec, release := blockingExec()
	q := NewQueue(1, 2, exec)
	defer func() {
		release()
		q.Drain(context.Background())
	}()

	// One job occupies the worker; two more fill the queue; the fourth
	// must be rejected without blocking.
	var jobs []*Job
	first := NewJob(nil, netlistre.Options{}, "fp", "key")
	if err := q.Submit(first); err != nil {
		t.Fatalf("submit first: %v", err)
	}
	jobs = append(jobs, first)
	waitFor(t, func() bool { return q.Running() == 1 })
	for i := 0; i < 2; i++ {
		j := NewJob(nil, netlistre.Options{}, "fp", "key")
		if err := q.Submit(j); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	if q.Depth() != 2 {
		t.Fatalf("queue depth = %d, want 2", q.Depth())
	}

	extra := NewJob(nil, netlistre.Options{}, "fp", "key")
	if err := q.Submit(extra); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit beyond capacity: err = %v, want ErrQueueFull", err)
	}

	release()
	for _, j := range jobs {
		select {
		case <-j.Done():
		case <-time.After(5 * time.Second):
			t.Fatal("job did not finish after release")
		}
		if st := j.State(); st != JobDone {
			t.Errorf("job state = %q, want done", st)
		}
	}
}

func TestQueueDrainRejectsNewWork(t *testing.T) {
	exec, release := blockingExec()
	q := NewQueue(1, 4, exec)
	j := NewJob(nil, netlistre.Options{}, "fp", "key")
	if err := q.Submit(j); err != nil {
		t.Fatal(err)
	}
	release()
	if err := q.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := j.State(); st != JobDone {
		t.Errorf("queued job not drained: state %q", st)
	}
	if err := q.Submit(NewJob(nil, netlistre.Options{}, "fp", "key")); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("submit after drain: err = %v, want ErrShuttingDown", err)
	}
	// Idempotent.
	if err := q.Drain(context.Background()); err != nil {
		t.Errorf("second drain: %v", err)
	}
}

func TestQueueDrainDeadlineCancelsJobs(t *testing.T) {
	started := make(chan struct{}, 1)
	exec := func(ctx context.Context, j *Job) {
		started <- struct{}{}
		<-ctx.Done() // simulate an analysis that only stops when canceled
		j.finish(JobDegraded, []byte("{}"), false, "")
	}
	q := NewQueue(1, 1, exec)
	j := NewJob(nil, netlistre.Options{}, "fp", "key")
	if err := q.Submit(j); err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := q.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain err = %v, want deadline exceeded", err)
	}
	if st := j.State(); st != JobDegraded {
		t.Errorf("canceled job state = %q, want degraded", st)
	}
}

func TestQueueRetiresOldJobs(t *testing.T) {
	exec := func(ctx context.Context, j *Job) { j.finish(JobDone, []byte("{}"), false, "") }
	q := NewQueue(2, maxRetiredJobs+16, exec)
	defer q.Drain(context.Background())
	var first *Job
	for i := 0; i < maxRetiredJobs+8; i++ {
		j := NewJob(nil, netlistre.Options{}, "fp", "key")
		if i == 0 {
			first = j
		}
		if err := q.Submit(j); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		<-j.Done()
	}
	if q.Get(first.ID) != nil {
		t.Error("oldest finished job should have been forgotten")
	}
	if len(q.byID) > maxRetiredJobs+q.Capacity() {
		t.Errorf("job table unbounded: %d entries", len(q.byID))
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
