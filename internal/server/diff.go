package server

// Differential mode: POST /v1/sessions/{id}/diff compares two revisions
// held by one session — canonically a trusted "golden" netlist against a
// "suspect" revision that may carry an inserted hardware trojan — with the
// multi-pass structural/functional matcher in internal/netlist. The
// response classifies every unmatched suspect node as added, every
// unmatched golden node as removed, and every matched-position pair whose
// function changed as retyped, and rolls the added+retyped suspect nodes
// into one suspect gate set an analyst (or revcheck -diff) can compare
// against a trojan label.

import (
	"encoding/json"
	"net/http"

	"netlistre"
)

// DiffRequest is the body of POST /v1/sessions/{id}/diff. Empty revision
// names default to "golden" and "suspect"; a session created from a job
// can diff its own "main" revision against an uploaded one by naming it.
type DiffRequest struct {
	Golden  string `json:"golden,omitempty"`
	Suspect string `json:"suspect,omitempty"`
	// MaxPasses, WLRounds, SimCycles and SimBatches tune the matcher;
	// zero selects each one's default.
	MaxPasses  int  `json:"max_passes,omitempty"`
	WLRounds   int  `json:"wl_rounds,omitempty"`
	SimCycles  int  `json:"sim_cycles,omitempty"`
	SimBatches int  `json:"sim_batches,omitempty"`
	DisableWL  bool `json:"disable_wl,omitempty"`
	DisableSim bool `json:"disable_sim,omitempty"`
}

// RetypedStatus is one retyped pair on the wire: the same design position
// with a changed function (e.g. an XOR rewired as XNOR).
type RetypedStatus struct {
	Golden  NodeRef `json:"golden"`
	Suspect NodeRef `json:"suspect"`
}

// DiffResponse is the body of a successful diff.
type DiffResponse struct {
	GoldenRevision  string `json:"golden_revision"`
	SuspectRevision string `json:"suspect_revision"`
	Identical       bool   `json:"identical"`
	Fingerprints    struct {
		Golden  string `json:"golden"`
		Suspect string `json:"suspect"`
	} `json:"fingerprints"`
	// Added lists suspect nodes with no golden counterpart; Removed lists
	// golden nodes with no suspect counterpart; Retyped lists matched
	// positions whose function changed.
	Added   []NodeRef       `json:"added"`
	Removed []NodeRef       `json:"removed"`
	Retyped []RetypedStatus `json:"retyped"`
	// Boundary changes are reported by name.
	InputsAdded    []string `json:"inputs_added,omitempty"`
	InputsRemoved  []string `json:"inputs_removed,omitempty"`
	OutputsAdded   []string `json:"outputs_added,omitempty"`
	OutputsRemoved []string `json:"outputs_removed,omitempty"`
	// SuspectGates is the union of added and retyped suspect nodes — the
	// set to hand to a trojan triage pass.
	SuspectGates []NodeRef `json:"suspect_gates"`
	Matched      int       `json:"matched"`
	Passes       int       `json:"passes"`
}

func (s *Server) handleSessionDiff(w http.ResponseWriter, r *http.Request) {
	sess := s.getSession(w, r)
	if sess == nil {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req DiffRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Golden == "" {
		req.Golden = "golden"
	}
	if req.Suspect == "" {
		req.Suspect = "suspect"
	}
	// Bound the tunables: they scale matcher work multiplicatively, so an
	// absurd request must be a 400, not a service-wide stall.
	switch {
	case req.MaxPasses < 0 || req.WLRounds < 0 || req.SimCycles < 0 || req.SimBatches < 0:
		writeError(w, http.StatusBadRequest,
			"max_passes, wl_rounds, sim_cycles and sim_batches must be >= 0")
		return
	case req.MaxPasses > 100000, req.WLRounds > 4096, req.SimCycles > 1024, req.SimBatches > 64:
		writeError(w, http.StatusBadRequest,
			"tunables out of range: max_passes <= 100000, wl_rounds <= 4096, sim_cycles <= 1024, sim_batches <= 64")
		return
	}
	golden := sess.revision(req.Golden)
	if golden == nil {
		writeError(w, http.StatusBadRequest, "session has no revision %q", req.Golden)
		return
	}
	suspect := sess.revision(req.Suspect)
	if suspect == nil {
		writeError(w, http.StatusBadRequest, "session has no revision %q", req.Suspect)
		return
	}

	d := netlistre.DiffNetlists(golden.nl, suspect.nl, netlistre.NetlistDiffOptions{
		MaxPasses:  req.MaxPasses,
		WLRounds:   req.WLRounds,
		SimCycles:  req.SimCycles,
		SimBatches: req.SimBatches,
		DisableWL:  req.DisableWL,
		DisableSim: req.DisableSim,
	})
	s.metrics.SessionDiff()

	resp := DiffResponse{
		GoldenRevision:  golden.name,
		SuspectRevision: suspect.name,
		Identical:       d.Identical(),
		Added:           []NodeRef{},
		Removed:         []NodeRef{},
		Retyped:         []RetypedStatus{},
		InputsAdded:     d.InputsAdded,
		InputsRemoved:   d.InputsRemoved,
		OutputsAdded:    d.OutputsAdded,
		OutputsRemoved:  d.OutputsRemoved,
		SuspectGates:    []NodeRef{},
		Matched:         d.Matched,
		Passes:          d.Passes,
	}
	resp.Fingerprints.Golden = golden.fingerprint
	resp.Fingerprints.Suspect = suspect.fingerprint
	for _, id := range d.Added {
		resp.Added = append(resp.Added, nodeRef(suspect.nl, id))
	}
	for _, id := range d.Removed {
		resp.Removed = append(resp.Removed, nodeRef(golden.nl, id))
	}
	for _, p := range d.Retyped {
		resp.Retyped = append(resp.Retyped, RetypedStatus{
			Golden:  nodeRef(golden.nl, p.Golden),
			Suspect: nodeRef(suspect.nl, p.Suspect),
		})
	}
	for _, id := range d.SuspectSet() {
		resp.SuspectGates = append(resp.SuspectGates, nodeRef(suspect.nl, id))
	}
	writeJSON(w, http.StatusOK, resp)
}
