package server

// Fleet-mode acceptance: a coordinator dispatching partitions to peer
// workers over a hostile network must produce byte-identical reports to
// the same coordinator running every partition locally — the
// determinism contract internal/server/fleet.go documents — and a fully
// dead fleet must degrade to local execution, not to failure.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"netlistre/internal/fleet"
	"netlistre/internal/fleet/chaos"
	"netlistre/internal/gen"
)

// miniSoCVerilog builds a three-core SoC small enough for -race testing
// but structurally faithful to BigSoC: per-core resets, interconnect
// glue, electrical noise.
func miniSoCVerilog(t *testing.T) (verilog string, resets []string) {
	t.Helper()
	cores := []string{"usb", "router", "msp430"}
	nl := gen.SoC("minisoc", cores, 7, 0.1)
	var buf bytes.Buffer
	if err := nl.WriteVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	for _, c := range cores {
		resets = append(resets, "rst_"+c)
	}
	return buf.String(), resets
}

// fastFleetOptions keeps retries and hedging quick enough for tests while
// leaving attempt budgets generous: an analysis under -race is slow, and
// a timeout would masquerade as a chaos fault.
func fastFleetOptions() fleet.Options {
	return fleet.Options{
		MaxAttempts:      4,
		BaseBackoff:      5 * time.Millisecond,
		MaxBackoff:       50 * time.Millisecond,
		AttemptTimeout:   2 * time.Minute,
		HedgeAfter:       -1, // hedging is covered by the fleet unit tests
		PollInterval:     50 * time.Millisecond,
		Parallel:         4,
		FailureThreshold: 3,
		BreakerCooldown:  100 * time.Millisecond,
		ProbeInterval:    time.Hour, // probe explicitly, not on a timer
		Seed:             11,
	}
}

// runFleetJob submits the request as a job and waits for its terminal
// status.
func runFleetJob(t *testing.T, baseURL string, req AnalyzeRequest) JobStatus {
	t.Helper()
	resp := postJSON(t, baseURL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	var st JobStatus
	if err := json.Unmarshal(readBody(t, resp), &st); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Minute)
	for time.Now().Before(deadline) {
		r, err := http.Get(baseURL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(readBody(t, r), &st); err != nil {
			t.Fatal(err)
		}
		switch st.Status {
		case JobDone, JobDegraded, JobFailed:
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish (last status %s)", st.ID, st.Status)
	return st
}

// waitGoroutines polls until the goroutine count drops back to at most
// base+slack, reporting the shortfall on timeout.
func waitGoroutines(t *testing.T, base, slack int) {
	t.Helper()
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Errorf("goroutines leaked: %d now vs %d at start (+%d allowed)\n%s", n, base, slack, buf)
			return
		}
		time.Sleep(50 * time.Millisecond)
		http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	}
}

// TestFleetChaosSmoke is the chaos acceptance test (and the make
// chaos-smoke target): a coordinator drives three peer workers through a
// transport injecting ~30% failures — refused connections, latency, 5xx,
// truncated bodies — and one peer is killed outright mid-job. The merged
// report must match the all-local baseline byte for byte after wall-clock
// normalization, and shutting everything down must leak no goroutines.
func TestFleetChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos smoke is the long fleet test")
	}
	baseGoroutines := runtime.NumGoroutine()

	verilog, resets := miniSoCVerilog(t)
	req := AnalyzeRequest{
		Verilog: verilog,
		Options: RequestOptions{PartitionResets: resets},
	}

	// Peers: three plain workers.
	var peerURLs []string
	var peers []*httptest.Server
	var peerSrvs []*Server
	for i := 0; i < 3; i++ {
		ps := New(Config{})
		hs := httptest.NewServer(ps)
		peers = append(peers, hs)
		peerSrvs = append(peerSrvs, ps)
		peerURLs = append(peerURLs, hs.URL)
	}

	// ~30% of requests fail outright (refuse + 5xx + truncate), more are
	// delayed. Seeded: the run is reproducible.
	chaosT := chaos.New(nil, chaos.Config{
		Seed:         4242,
		RefuseProb:   0.10,
		DelayProb:    0.10,
		MaxDelay:     20 * time.Millisecond,
		ErrorProb:    0.10,
		TruncateProb: 0.10,
	})

	coord := New(Config{
		Fleet:            true,
		Peers:            peerURLs,
		FleetMinElements: 1,
		FleetTransport:   chaosT,
		FleetOptions:     fastFleetOptions(),
	})
	coordTS := httptest.NewServer(coord)

	// Kill peer 2 shortly after dispatch begins: every later request to it
	// fails at the transport, exactly as if the process died mid-job.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(150 * time.Millisecond)
		chaosT.Kill(strings.TrimPrefix(peerURLs[2], "http://"))
	}()

	st := runFleetJob(t, coordTS.URL, req)
	<-killed
	if st.Status != JobDone {
		t.Fatalf("fleet job finished %s (%s), want done", st.Status, st.Error)
	}
	if c := chaosT.Counts(); c.Total() == 0 {
		t.Errorf("chaos injected no faults (%+v); the run proved nothing", c)
	} else {
		t.Logf("chaos: %+v", c)
	}
	stats := coord.fleetDisp.Stats()
	t.Logf("fleet stats: %+v", stats)
	if stats.Remote == 0 {
		t.Error("no partition was resolved remotely; the fleet path was not exercised")
	}

	// Baseline: an identically configured coordinator with no peers runs
	// every partition through the local fallback.
	baseline := New(Config{
		Fleet:            true,
		FleetMinElements: 1,
		FleetOptions:     fastFleetOptions(),
	})
	baselineTS := httptest.NewServer(baseline)
	bst := runFleetJob(t, baselineTS.URL, req)
	if bst.Status != JobDone {
		t.Fatalf("baseline job finished %s (%s)", bst.Status, bst.Error)
	}
	if normalizeTimings(st.Report) != normalizeTimings(bst.Report) {
		t.Errorf("fleet report differs from all-local baseline:\n--- fleet ---\n%s\n--- local ---\n%s",
			st.Report, bst.Report)
	}

	// The coordinator's metrics must expose the fleet counters.
	mresp, err := http.Get(coordTS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(readBody(t, mresp))
	for _, want := range []string{"revand_fleet_partitions_total", "revand_fleet_peer_breaker"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %s", want)
		}
	}

	// Tear everything down and verify nothing leaked: dispatch goroutines
	// joined, probe loops stopped, peer queues drained.
	coordTS.Close()
	baselineTS.Close()
	for _, hs := range peers {
		hs.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := coord.Shutdown(ctx); err != nil {
		t.Errorf("coordinator shutdown: %v", err)
	}
	if err := baseline.Shutdown(ctx); err != nil {
		t.Errorf("baseline shutdown: %v", err)
	}
	for i, ps := range peerSrvs {
		if err := ps.Shutdown(ctx); err != nil {
			t.Errorf("peer %d shutdown: %v", i, err)
		}
	}
	waitGoroutines(t, baseGoroutines, 4)
}

// TestFleetAllPeersDownFallsBackLocal starts a coordinator whose entire
// fleet is unreachable from the first request: the job must still finish,
// locally, with the same report.
func TestFleetAllPeersDownFallsBackLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet fallback analysis is slow under -short")
	}
	// Reserve real listener addresses, then close them: connection refused.
	var deadURLs []string
	for i := 0; i < 2; i++ {
		hs := httptest.NewServer(http.NotFoundHandler())
		deadURLs = append(deadURLs, hs.URL)
		hs.Close()
	}

	verilog, resets := miniSoCVerilog(t)
	req := AnalyzeRequest{Verilog: verilog, Options: RequestOptions{PartitionResets: resets}}

	coord, coordTS := newTestServer(t, Config{
		Fleet:            true,
		Peers:            deadURLs,
		FleetMinElements: 1,
		FleetOptions:     fastFleetOptions(),
	})
	st := runFleetJob(t, coordTS.URL, req)
	if st.Status != JobDone {
		t.Fatalf("job with dead fleet finished %s (%s), want done via local fallback", st.Status, st.Error)
	}
	stats := coord.fleetDisp.Stats()
	if stats.Remote != 0 || stats.Local == 0 {
		t.Errorf("stats = %+v, want all partitions resolved locally", stats)
	}

	_, baselineTS := newTestServer(t, Config{
		Fleet:            true,
		FleetMinElements: 1,
		FleetOptions:     fastFleetOptions(),
	})
	bst := runFleetJob(t, baselineTS.URL, req)
	if normalizeTimings(st.Report) != normalizeTimings(bst.Report) {
		t.Error("dead-fleet report differs from no-peer baseline")
	}
}

// TestFleetSmallNetlistStaysLocal: below FleetMinElements the fleet path
// must not engage at all, peers or no peers.
func TestFleetSmallNetlistStaysLocal(t *testing.T) {
	verilog, _ := refVerilog(t, "tiny")
	coord, ts := newTestServer(t, Config{
		Fleet:        true,
		Peers:        []string{"http://127.0.0.1:1"}, // would explode if consulted
		FleetOptions: fastFleetOptions(),
		// FleetMinElements left at the 2000 default, far above this netlist.
	})
	resp := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Verilog: verilog})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	readBody(t, resp)
	if stats := coord.fleetDisp.Stats(); stats.Remote != 0 || stats.Local != 0 {
		t.Errorf("fleet engaged on a tiny netlist: %+v", stats)
	}
}

func TestPartitionResetsValidation(t *testing.T) {
	verilog, _ := refVerilog(t, "tiny")
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{
		Verilog: verilog,
		Options: RequestOptions{PartitionResets: []string{"no_such_input"}},
	})
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "no_such_input") {
		t.Errorf("error should name the missing input: %s", body)
	}
}

// TestIncludeElementsRoundTrip: include_elements adds per-module element
// IDs (the fleet wire format) and keys the cache separately from the
// default rendering.
func TestIncludeElementsRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	plain := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Article: "usb"})
	plainBody := readBody(t, plain)
	with := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{
		Article: "usb",
		Options: RequestOptions{IncludeElements: true},
	})
	withBody := readBody(t, with)

	if with.Header.Get("X-Cache") != "MISS" {
		t.Errorf("include_elements request hit the plain request's cache entry")
	}
	if bytes.Contains(plainBody, []byte(`"element_ids"`)) {
		t.Error("plain report leaked element IDs")
	}
	if !bytes.Contains(withBody, []byte(`"element_ids"`)) {
		t.Error("include_elements report carries no element IDs")
	}

	var probe struct {
		Modules []struct {
			Elements   int   `json:"elements"`
			ElementIDs []int `json:"element_ids"`
		} `json:"modules"`
	}
	if err := json.Unmarshal(withBody, &probe); err != nil {
		t.Fatal(err)
	}
	if len(probe.Modules) == 0 {
		t.Fatal("no modules in usb report")
	}
	for i, m := range probe.Modules {
		if len(m.ElementIDs) != m.Elements {
			t.Errorf("module %d: %d element IDs, elements %d", i, len(m.ElementIDs), m.Elements)
		}
	}
}
