package server

// Session lifecycle battery: create/query/expire semantics, eviction under
// TTL and LRU pressure, concurrent access under -race with a goroutine-leak
// check, the stage-store provenance guarantee on re-runs, and the
// differential endpoints' golden behaviour and error semantics.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newSession submits an article job, waits for it to finish, and opens a
// session bound to it, returning the session ID.
func newSession(t *testing.T, ts string, article string) string {
	t.Helper()
	resp := postJSON(t, ts+"/v1/jobs", AnalyzeRequest{Article: article})
	var st JobStatus
	if err := json.Unmarshal(readBody(t, resp), &st); err != nil {
		t.Fatal(err)
	}
	if final := pollJob(t, ts+"/v1/jobs/"+st.ID); final.Status != JobDone {
		t.Fatalf("job finished %s, want done", final.Status)
	}
	resp = postJSON(t, ts+"/v1/sessions", CreateSessionRequest{JobID: st.ID})
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create session: %d: %s", resp.StatusCode, body)
	}
	var ss SessionStatus
	if err := json.Unmarshal(body, &ss); err != nil {
		t.Fatal(err)
	}
	if ss.ID == "" || resp.Header.Get("Location") != "/v1/sessions/"+ss.ID {
		t.Fatalf("bad session status/Location: %+v / %q", ss, resp.Header.Get("Location"))
	}
	if len(ss.Revisions) != 1 || ss.Revisions[0].Name != "main" || !ss.Revisions[0].Analyzed {
		t.Fatalf("fresh session should hold one analyzed revision 'main': %+v", ss.Revisions)
	}
	return ss.ID
}

func getJSON(t *testing.T, url string, wantCode int, out interface{}) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s = %d, want %d: %s", url, resp.StatusCode, wantCode, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: %v: %s", url, err, body)
		}
	}
	return body
}

func TestSessionExploration(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := newSession(t, ts.URL, "evoter")
	base := ts.URL + "/v1/sessions/" + id

	var ss SessionStatus
	getJSON(t, base, http.StatusOK, &ss)
	if ss.ID != id {
		t.Fatalf("GET session ID = %q, want %q", ss.ID, id)
	}

	// Blocks: list, then expand the first one to gates and ports.
	var blocks struct {
		Revision string         `json:"revision"`
		Blocks   []BlockSummary `json:"blocks"`
	}
	getJSON(t, base+"/blocks", http.StatusOK, &blocks)
	if blocks.Revision != "main" || len(blocks.Blocks) == 0 {
		t.Fatalf("blocks: %+v", blocks)
	}
	var detail BlockDetail
	getJSON(t, fmt.Sprintf("%s/blocks/%d", base, blocks.Blocks[0].Index), http.StatusOK, &detail)
	if len(detail.Members) == 0 || len(detail.Members) != blocks.Blocks[0].Elements {
		t.Errorf("block 0 expanded to %d members, summary said %d",
			len(detail.Members), blocks.Blocks[0].Elements)
	}
	getJSON(t, base+"/blocks/9999", http.StatusBadRequest, nil)
	getJSON(t, base+"/blocks/x", http.StatusBadRequest, nil)

	var words struct {
		Words []WordStatus `json:"words"`
	}
	getJSON(t, base+"/words", http.StatusOK, &words)

	var ports struct {
		Inputs  []NodeRef    `json:"inputs"`
		Outputs []PortStatus `json:"outputs"`
	}
	getJSON(t, base+"/ports", http.StatusOK, &ports)
	if len(ports.Inputs) == 0 || len(ports.Outputs) == 0 {
		t.Fatalf("ports: %d inputs, %d outputs", len(ports.Inputs), len(ports.Outputs))
	}

	// Cone queries: fan-out of an input by name, fan-in of an output
	// driver by #id, caps and flags.
	var cone ConeResponse
	getJSON(t, base+"/cone?net="+ports.Inputs[0].Name+"&dir=fanout&depth=2&limit=10",
		http.StatusOK, &cone)
	if cone.Root.Name != ports.Inputs[0].Name || cone.Direction != "fanout" {
		t.Fatalf("cone root/direction: %+v", cone)
	}
	if len(cone.Nodes) == 0 || len(cone.Nodes) > 10 {
		t.Fatalf("cone size %d outside (0, 10]", len(cone.Nodes))
	}
	for _, n := range cone.Nodes {
		if n.Depth > 2 {
			t.Errorf("cone node %d at depth %d > 2", n.ID, n.Depth)
		}
	}
	var fanin ConeResponse
	getJSON(t, fmt.Sprintf("%s/cone?net=%%23%d", base, ports.Outputs[0].Driver.ID),
		http.StatusOK, &fanin)
	if fanin.Direction != "fanin" || fanin.Root.ID != ports.Outputs[0].Driver.ID {
		t.Fatalf("fanin cone: %+v", fanin.Root)
	}

	// Cone error semantics: unknown net, malformed id, bad dir, bad bounds.
	getJSON(t, base+"/cone", http.StatusBadRequest, nil)
	getJSON(t, base+"/cone?net=no-such-net", http.StatusBadRequest, nil)
	getJSON(t, base+"/cone?net=%23999999999", http.StatusBadRequest, nil)
	getJSON(t, base+"/cone?net="+ports.Inputs[0].Name+"&dir=sideways", http.StatusBadRequest, nil)
	getJSON(t, base+"/cone?net="+ports.Inputs[0].Name+"&depth=0", http.StatusBadRequest, nil)
	getJSON(t, base+"/cone?net="+ports.Inputs[0].Name+"&limit=99999999", http.StatusBadRequest, nil)

	// Unknown revision selector.
	getJSON(t, base+"/blocks?rev=nope", http.StatusBadRequest, nil)

	// Delete, then every further access 404s; a second delete 404s too.
	req, _ := http.NewRequest(http.MethodDelete, base, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE = %d, want 204", resp.StatusCode)
	}
	getJSON(t, base, http.StatusNotFound, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second DELETE = %d, want 404", resp.StatusCode)
	}
}

func TestSessionCreateSemantics(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Malformed bodies and unknown fields are 400.
	for _, body := range []string{`{`, `{"job":"x"}`, `{}`} {
		resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		readBody(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST /v1/sessions %q = %d, want 400", body, resp.StatusCode)
		}
	}

	// Unknown job is 404.
	resp := postJSON(t, ts.URL+"/v1/sessions", CreateSessionRequest{JobID: "job-nope"})
	readBody(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", resp.StatusCode)
	}

	// A job that finished degraded (1ms budget) is not bindable: 409.
	resp = postJSON(t, ts.URL+"/v1/jobs", AnalyzeRequest{
		Article: "evoter",
		Options: RequestOptions{TimeoutMS: 1},
	})
	var st JobStatus
	if err := json.Unmarshal(readBody(t, resp), &st); err != nil {
		t.Fatal(err)
	}
	if final := pollJob(t, ts.URL+"/v1/jobs/"+st.ID); final.Status != JobDegraded {
		t.Skipf("1ms job finished %s, not degraded; cannot exercise the 409", final.Status)
	}
	resp = postJSON(t, ts.URL+"/v1/sessions", CreateSessionRequest{JobID: st.ID})
	readBody(t, resp)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("degraded job = %d, want 409", resp.StatusCode)
	}
}

// TestSessionEviction drives the TTL and LRU policies through an injected
// clock and a cap-2 store.
func TestSessionEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxSessions: 2, SessionTTL: time.Minute})
	var offset atomic.Int64 // fake seconds added to the wall clock
	s.sessions.now = func() time.Time {
		return time.Now().Add(time.Duration(offset.Load()) * time.Second)
	}

	first := newSession(t, ts.URL, "evoter")
	second := newSession(t, ts.URL, "evoter")
	getJSON(t, ts.URL+"/v1/sessions/"+first, http.StatusOK, nil) // first is now most recent

	// A third session must evict the least recently used: second.
	third := newSession(t, ts.URL, "evoter")
	getJSON(t, ts.URL+"/v1/sessions/"+second, http.StatusNotFound, nil)
	getJSON(t, ts.URL+"/v1/sessions/"+first, http.StatusOK, nil)
	getJSON(t, ts.URL+"/v1/sessions/"+third, http.StatusOK, nil)

	// Advance past the TTL: everything idle expires lazily.
	offset.Store(120)
	getJSON(t, ts.URL+"/v1/sessions/"+first, http.StatusNotFound, nil)
	getJSON(t, ts.URL+"/v1/sessions/"+third, http.StatusNotFound, nil)

	// The metrics expose the lifecycle.
	metrics := string(getJSON(t, ts.URL+"/metrics", http.StatusOK, nil))
	for _, want := range []string{
		"revand_sessions_created_total 3",
		`revand_sessions_closed_total{reason="lru"} 1`,
		`revand_sessions_closed_total{reason="ttl"} 2`,
		"revand_sessions_active 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestSessionConcurrent hammers create/query/delete from many goroutines
// (run under -race) and then checks the process leaked no goroutines.
func TestSessionConcurrent(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		_, ts := newTestServer(t, Config{MaxSessions: 4})

		// One done job shared by every session.
		resp := postJSON(t, ts.URL+"/v1/jobs", AnalyzeRequest{Article: "evoter"})
		var st JobStatus
		if err := json.Unmarshal(readBody(t, resp), &st); err != nil {
			t.Fatal(err)
		}
		pollJob(t, ts.URL+"/v1/jobs/"+st.ID)

		const workers = 8
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 5; i++ {
					resp := postJSON(t, ts.URL+"/v1/sessions", CreateSessionRequest{JobID: st.ID})
					body := readBody(t, resp)
					if resp.StatusCode != http.StatusCreated {
						t.Errorf("create: %d: %s", resp.StatusCode, body)
						return
					}
					var ss SessionStatus
					if err := json.Unmarshal(body, &ss); err != nil {
						t.Error(err)
						return
					}
					base := ts.URL + "/v1/sessions/" + ss.ID
					// The session may be LRU-evicted by a sibling at any
					// point, so 404 is as acceptable as 200 here — the
					// point is that no response is ever inconsistent and
					// the race detector stays quiet.
					for _, path := range []string{"", "/blocks", "/ports", "/words"} {
						r, err := http.Get(base + path)
						if err != nil {
							t.Error(err)
							return
						}
						readBody(t, r)
						if r.StatusCode != http.StatusOK && r.StatusCode != http.StatusNotFound {
							t.Errorf("GET %s = %d", path, r.StatusCode)
						}
					}
					req, _ := http.NewRequest(http.MethodDelete, base, nil)
					r, err := http.DefaultClient.Do(req)
					if err != nil {
						t.Error(err)
						return
					}
					readBody(t, r)
				}
			}()
		}
		wg.Wait()
	}()
	waitGoroutines(t, before, 2)
}

// TestSessionRerunProvenance is the stage-store acceptance gate: a re-run
// with the options the session was analyzed under must answer entirely
// from the stage store — every stage replayed with "cached" provenance —
// and a re-run with different options must actually execute something.
func TestSessionRerunProvenance(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := newSession(t, ts.URL, "evoter")
	base := ts.URL + "/v1/sessions/" + id

	resp := postJSON(t, base+"/rerun", RequestOptions{})
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rerun: %d: %s", resp.StatusCode, body)
	}
	var rr RerunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Trace) == 0 || len(rr.Report) == 0 || rr.Degraded {
		t.Fatalf("rerun response: trace=%d report=%d degraded=%t",
			len(rr.Trace), len(rr.Report), rr.Degraded)
	}
	for _, st := range rr.Trace {
		if st.Provenance != "cached" {
			t.Errorf("stage %s provenance %q, want cached (stage store must answer an unchanged re-run)",
				st.Stage, st.Provenance)
		}
	}

	// Changing a report-shaping option forces at least one stage to run.
	resp = postJSON(t, base+"/rerun", RequestOptions{Objective: "min"})
	body = readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rerun(min): %d: %s", resp.StatusCode, body)
	}
	var rr2 RerunResponse
	if err := json.Unmarshal(body, &rr2); err != nil {
		t.Fatal(err)
	}
	ran := false
	for _, st := range rr2.Trace {
		if st.Provenance == "ran" {
			ran = true
		}
	}
	if !ran {
		t.Error("rerun with new options executed nothing")
	}

	// Bad bodies and options are 400.
	for _, body := range []string{`{`, `{"nope":1}`, `{"objective":"best"}`} {
		resp, err := http.Post(base+"/rerun", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		readBody(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("rerun %q = %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestSessionDiffTrojan uploads the trojaned revision of the session's
// golden article and asserts the differential endpoint recovers the
// inserted gates, the self-diff is empty, and the error semantics hold.
func TestSessionDiffTrojan(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := newSession(t, ts.URL, "evoter")
	base := ts.URL + "/v1/sessions/" + id

	// Upload the suspect and a byte-identical twin of the golden.
	for name, article := range map[string]string{"suspect": "evoter-trojan", "twin": "evoter"} {
		resp := postJSON(t, base+"/revisions/"+name, AnalyzeRequest{Article: article})
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload %s: %d: %s", name, resp.StatusCode, body)
		}
	}

	// Golden-vs-suspect: the trojan shows up as pure additions.
	resp := postJSON(t, base+"/diff", DiffRequest{Golden: "main", Suspect: "suspect"})
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diff: %d: %s", resp.StatusCode, body)
	}
	var dr DiffResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Identical || len(dr.Added) == 0 {
		t.Fatalf("trojan diff found nothing: %+v", dr)
	}
	if len(dr.Removed) != 0 || len(dr.Retyped) != 0 {
		t.Errorf("trojan diff reported removed=%d retyped=%d, want 0/0", len(dr.Removed), len(dr.Retyped))
	}
	if len(dr.SuspectGates) != len(dr.Added) {
		t.Errorf("suspect_gates=%d, want the %d added nodes", len(dr.SuspectGates), len(dr.Added))
	}

	// Self-diff: identical.
	resp = postJSON(t, base+"/diff", DiffRequest{Golden: "main", Suspect: "twin"})
	body = readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("self diff: %d: %s", resp.StatusCode, body)
	}
	var self DiffResponse
	if err := json.Unmarshal(body, &self); err != nil {
		t.Fatal(err)
	}
	if !self.Identical || len(self.Added)+len(self.Removed)+len(self.Retyped) != 0 {
		t.Errorf("self-diff not empty: %+v", self)
	}

	// Error semantics: unknown revisions 400, duplicate upload 409,
	// invalid names 400, malformed diff body 400.
	resp = postJSON(t, base+"/diff", DiffRequest{Golden: "main", Suspect: "nope"})
	readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("diff unknown revision = %d, want 400", resp.StatusCode)
	}
	resp = postJSON(t, base+"/diff", DiffRequest{}) // defaults golden/suspect: absent
	readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("diff default revisions = %d, want 400", resp.StatusCode)
	}
	resp = postJSON(t, base+"/revisions/suspect", AnalyzeRequest{Article: "evoter-trojan"})
	readBody(t, resp)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate revision = %d, want 409", resp.StatusCode)
	}
	resp = postJSON(t, base+"/revisions/Bad%20Name", AnalyzeRequest{Article: "evoter"})
	readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid revision name = %d, want 400", resp.StatusCode)
	}
	resp = postJSON(t, base+"/revisions/bad2", AnalyzeRequest{})
	readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty revision body = %d, want 400", resp.StatusCode)
	}

	// An uploaded-but-unanalyzed revision cannot serve report queries (409)
	// until an explicit rerun analyzes it.
	getJSON(t, base+"/blocks?rev=suspect", http.StatusConflict, nil)
	resp = postJSON(t, base+"/rerun?rev=suspect", RequestOptions{})
	readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rerun suspect: %d", resp.StatusCode)
	}
	getJSON(t, base+"/blocks?rev=suspect", http.StatusOK, nil)
}
