package server

import (
	"container/list"
	"sync"
)

// Cache is the content-addressed report cache: rendered JSON reports keyed
// by Netlist.Fingerprint() plus the canonical options string, bounded by an
// LRU entry limit. Because the key addresses the analysis *content* (the
// circuit and every option that can change the report), a hit can be served
// byte-for-byte without rerunning the portfolio; two clients uploading the
// same netlist in different serialization orders share one entry.
//
// Degraded reports are never stored: a run cut short by a client disconnect
// or an operator timeout is not the canonical answer for its key.
type Cache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits      int64
	misses    int64
	evictions int64
	bytes     int64
}

type cacheEntry struct {
	key         string
	fingerprint string
	report      []byte
}

// CacheStats is a point-in-time snapshot of the cache counters, exported
// on /metrics.
type CacheStats struct {
	Hits, Misses, Evictions int64
	Entries                 int
	Bytes                   int64
}

// NewCache returns a cache bounded to max entries. A max of zero or less
// disables caching entirely (every Get misses, Put is a no-op).
func NewCache(max int) *Cache {
	return &Cache{
		max:     max,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the cached report bytes and fingerprint for key, marking the
// entry most recently used. The returned slice must not be mutated.
func (c *Cache) Get(key string) (report []byte, fingerprint string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.entries[key]
	if !found {
		c.misses++
		return nil, "", false
	}
	c.hits++
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.report, e.fingerprint, true
}

// Put stores a report under key, evicting least-recently-used entries to
// stay within the entry bound.
func (c *Cache) Put(key, fingerprint string, report []byte) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, found := c.entries[key]; found {
		// Same key means same content; just refresh recency.
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, fingerprint: fingerprint, report: report})
	c.bytes += int64(len(report))
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		e := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.entries, e.key)
		c.bytes -= int64(len(e.report))
		c.evictions++
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
	}
}
