// Package server implements revand, the netlist analysis service: an
// HTTP/JSON front end over the AnalyzeContext portfolio with a bounded job
// queue, a content-addressed report cache, and Prometheus-text metrics.
//
// Endpoints:
//
//	POST /v1/analyze      synchronous analysis (small netlists)
//	POST /v1/jobs         enqueue an asynchronous analysis
//	GET  /v1/jobs/{id}    job status; carries the report when finished
//	GET  /v1/jobs/{id}/rtl  decompiled word-level Verilog for a done job
//	GET  /v1/articles     the built-in netlists the service can analyze
//	GET  /healthz         liveness/readiness (503 while draining)
//	GET  /metrics         Prometheus text exposition
//
// Both analysis endpoints accept the same request body: exactly one
// netlist source (a built-in article name, structural Verilog text, or
// BLIF text) plus per-request options mirroring the revan CLI flags. The
// response body of a successful analysis is exactly the JSON report
// WriteJSONReport produces — the service and the CLI share one wire
// format, pinned by the root package's round-trip golden test.
//
// Reports are memoized in an LRU cache keyed by Netlist.Fingerprint()
// plus the canonical options string, so re-submitting the same circuit —
// even serialized differently — is a cache hit served without running the
// portfolio. X-Cache on the response (HIT/MISS) and the /metrics counters
// expose the cache behaviour.
//
// Below the report cache sits a process-wide *stage store* (see
// Options.StageStore in the root package): every pipeline stage's result
// is memoized content-addressed across requests, so a report-cache miss
// that shares work with any earlier analysis — the same netlist with
// different options, or the resubmission of a job that timed out — only
// executes the stages whose inputs actually changed; the rest replay with
// "cached" provenance in the report trace. The
// revand_stagecache_{hits,misses,evictions}_total counters and
// revand_stagecache_entries gauge expose it on /metrics.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"netlistre"
	"netlistre/internal/artifact"
	"netlistre/internal/fleet"
)

// Config sizes the service. The zero value of any field selects the
// default noted on it.
type Config struct {
	// QueueWorkers is the number of concurrent analysis workers draining
	// the job queue (default GOMAXPROCS, capped at 4: each analysis is
	// itself internally parallel).
	QueueWorkers int
	// QueueDepth bounds the number of queued-but-not-started jobs
	// (default 64). A full queue rejects submissions with 503.
	QueueDepth int
	// CacheEntries bounds the report cache (default 256 entries; negative
	// disables caching).
	CacheEntries int
	// StageCacheEntries bounds the process-wide stage store memoizing
	// per-stage analysis artifacts across requests (default 512 entries;
	// negative disables it). The store is what makes re-analysis of an
	// unchanged netlist incremental and resubmitted degraded jobs
	// resumable: completed stages are replayed, only interrupted ones
	// re-execute.
	StageCacheEntries int
	// MaxRequestBytes bounds request bodies (default 32 MiB — netlist
	// uploads are text).
	MaxRequestBytes int64
	// DefaultTimeout is the per-analysis budget applied when a request
	// does not set one (default 0 = unbounded).
	DefaultTimeout time.Duration
	// MaxSyncElements rejects netlists larger than this (gates+latches)
	// on the synchronous endpoint, steering them to /v1/jobs
	// (default 20000; negative disables the gate).
	MaxSyncElements int
	// SessionTTL is how long an idle exploration session stays alive
	// (default 15 minutes). Expiry is lazy — checked on access — so no
	// background goroutine runs.
	SessionTTL time.Duration
	// MaxSessions bounds the session store; the least recently used
	// session is evicted past the cap (default 64; negative means
	// unbounded).
	MaxSessions int
	// Fleet enables coordinator mode: netlists of at least
	// FleetMinElements elements are reset-tree partitioned and the
	// partitions dispatched to Peers as /v1/jobs jobs, with local
	// fallback when the fleet cannot serve them (see internal/fleet).
	Fleet bool
	// Peers are the worker base URLs, e.g. "http://10.0.0.7:8080".
	// Fleet mode with no peers is valid: every partition falls back to
	// local execution, which is also the byte-identity baseline the
	// chaos tests compare against.
	Peers []string
	// FleetMinElements is the smallest netlist (gates+latches) the fleet
	// path considers (default 2000; smaller requests stay single-process).
	FleetMinElements int
	// FleetTransport overrides the HTTP transport used to reach peers —
	// the chaos tests inject their fault transport here (nil selects
	// http.DefaultTransport).
	FleetTransport http.RoundTripper
	// FleetOptions tunes dispatch: retries, backoff, hedging, breakers.
	FleetOptions fleet.Options
}

func (c Config) withDefaults() Config {
	if c.QueueWorkers == 0 {
		c.QueueWorkers = runtime.GOMAXPROCS(0)
		if c.QueueWorkers > 4 {
			c.QueueWorkers = 4
		}
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.StageCacheEntries == 0 {
		c.StageCacheEntries = 512
	}
	if c.MaxRequestBytes == 0 {
		c.MaxRequestBytes = 32 << 20
	}
	if c.MaxSyncElements == 0 {
		c.MaxSyncElements = 20000
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = 15 * time.Minute
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 64
	} else if c.MaxSessions < 0 {
		c.MaxSessions = 0 // sessionStore treats 0 as unbounded
	}
	if c.FleetMinElements == 0 {
		c.FleetMinElements = 2000
	}
	return c
}

// Server is the revand HTTP service. Create with New, serve it as an
// http.Handler, and call Shutdown to drain the job queue.
type Server struct {
	cfg      Config
	cache    *Cache
	stages   *netlistre.StageStore // nil when StageCacheEntries < 0
	rtl      *artifact.Store       // decompiled-RTL cache, keyed by fingerprint+options
	metrics  *Metrics
	queue    *Queue
	sessions *sessionStore
	mux      *http.ServeMux
	start    time.Time

	// Fleet coordinator state; nil unless Config.Fleet is set.
	fleetReg  *fleet.Registry
	fleetDisp *fleet.Dispatcher
}

// New builds a Server and starts its queue workers.
func New(cfg Config) *Server {
	s := &Server{
		cfg:     cfg.withDefaults(),
		metrics: NewMetrics(),
		mux:     http.NewServeMux(),
		start:   time.Now(),
	}
	s.cache = NewCache(s.cfg.CacheEntries)
	if s.cfg.StageCacheEntries > 0 {
		s.stages = netlistre.NewStageStore(s.cfg.StageCacheEntries)
	}
	s.rtl = artifact.NewStore(rtlCacheEntries)
	s.queue = NewQueue(s.cfg.QueueWorkers, s.cfg.QueueDepth, s.runJob)
	s.sessions = newSessionStore(s.cfg.SessionTTL, s.cfg.MaxSessions, s.metrics)
	if s.cfg.Fleet {
		client := &http.Client{Transport: s.cfg.FleetTransport}
		s.fleetReg = fleet.NewRegistry(s.cfg.Peers, client, s.cfg.FleetOptions)
		s.fleetDisp = fleet.NewDispatcher(s.fleetReg, client, s.cfg.FleetOptions)
		if len(s.cfg.Peers) > 0 {
			s.fleetReg.StartProbing()
		}
	}

	s.route("POST /v1/analyze", "/v1/analyze", s.handleAnalyze)
	s.route("POST /v1/jobs", "/v1/jobs", s.handleSubmitJob)
	s.route("GET /v1/jobs/{id}", "/v1/jobs/{id}", s.handleGetJob)
	s.route("GET /v1/jobs/{id}/rtl", "/v1/jobs/{id}/rtl", s.handleJobRTL)
	s.route("GET /v1/articles", "/v1/articles", s.handleArticles)
	s.route("POST /v1/sessions", "/v1/sessions", s.handleCreateSession)
	s.route("GET /v1/sessions/{id}", "/v1/sessions/{id}", s.handleGetSession)
	s.route("DELETE /v1/sessions/{id}", "/v1/sessions/{id}", s.handleDeleteSession)
	s.route("GET /v1/sessions/{id}/blocks", "/v1/sessions/{id}/blocks", s.handleSessionBlocks)
	s.route("GET /v1/sessions/{id}/blocks/{idx}", "/v1/sessions/{id}/blocks/{idx}", s.handleSessionBlock)
	s.route("GET /v1/sessions/{id}/words", "/v1/sessions/{id}/words", s.handleSessionWords)
	s.route("GET /v1/sessions/{id}/ports", "/v1/sessions/{id}/ports", s.handleSessionPorts)
	s.route("GET /v1/sessions/{id}/cone", "/v1/sessions/{id}/cone", s.handleSessionCone)
	s.route("POST /v1/sessions/{id}/rerun", "/v1/sessions/{id}/rerun", s.handleSessionRerun)
	s.route("POST /v1/sessions/{id}/revisions/{name}", "/v1/sessions/{id}/revisions/{name}", s.handleAddRevision)
	s.route("POST /v1/sessions/{id}/diff", "/v1/sessions/{id}/diff", s.handleSessionDiff)
	s.route("GET /healthz", "/healthz", s.handleHealthz)
	s.route("GET /metrics", "/metrics", s.handleMetrics)
	return s
}

// route registers a handler under the Go 1.22 method+pattern syntax and
// wraps it with per-route request counting.
func (s *Server) route(pattern, label string, h http.HandlerFunc) {
	s.mux.Handle(pattern, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cw := &codeWriter{ResponseWriter: w}
		h(cw, r)
		code := cw.code
		if code == 0 {
			code = http.StatusOK
		}
		s.metrics.HTTPRequest(label, code)
	}))
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown drains the job queue: intake stops (new submissions get 503),
// queued and running jobs run to completion, and their reports remain
// queryable until the process exits. If ctx expires first the in-flight
// analyses are canceled cooperatively and finish as degraded reports.
// Call http.Server.Shutdown before this so no new requests race intake.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.fleetReg != nil {
		s.fleetReg.StopProbing()
	}
	return s.queue.Drain(ctx)
}

// codeWriter captures the response status for metrics.
type codeWriter struct {
	http.ResponseWriter
	code int
}

func (w *codeWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// AnalyzeRequest is the body of POST /v1/analyze and POST /v1/jobs.
// Exactly one of Article, Verilog, or BLIF must be set.
type AnalyzeRequest struct {
	// Article names a built-in netlist (see GET /v1/articles).
	Article string `json:"article,omitempty"`
	// Verilog holds a structural Verilog netlist as text.
	Verilog string `json:"verilog,omitempty"`
	// BLIF holds a BLIF netlist as text.
	BLIF string `json:"blif,omitempty"`
	// BLIFLuts reads every BLIF cover table as a native k-input LUT cell,
	// for foreign LUT-mapped FPGA BLIF without the writer's per-cover
	// '# lut' markers. It changes the parsed netlist (and therefore its
	// fingerprint), so cached reports are keyed correctly for free.
	BLIFLuts bool           `json:"blif_luts,omitempty"`
	Options  RequestOptions `json:"options,omitempty"`
}

// RequestOptions mirrors the revan CLI's analysis flags. The zero value
// reproduces `revan -json` defaults (sliceable ILP, max-coverage
// objective, every algorithm enabled).
type RequestOptions struct {
	// Workers bounds the analysis worker pool (0 = GOMAXPROCS). Reports
	// are identical for any worker count, so Workers is excluded from the
	// cache key.
	Workers int `json:"workers,omitempty"`
	// TimeoutMS bounds the whole analysis in milliseconds (0 = server
	// default). A timed-out run yields a degraded report, not an error.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// StageTimeoutMS bounds each pipeline stage in milliseconds.
	StageTimeoutMS int64 `json:"stage_timeout_ms,omitempty"`
	SkipModMatch   bool  `json:"skip_modmatch,omitempty"`
	SkipWordProp   bool  `json:"skip_wordprop,omitempty"`
	KeepCandidates bool  `json:"keep_candidates,omitempty"`
	// Objective selects overlap resolution: "max" (coverage, default) or
	// "min" (modules, with CoverageTarget).
	Objective string `json:"objective,omitempty"`
	// CoverageTarget is the coverage fraction for Objective "min"
	// (default 0.5, like revan -target).
	CoverageTarget float64 `json:"coverage_target,omitempty"`
	// Sliceable selects the sliceable ILP formulation (default true,
	// like revan without -basic-ilp).
	Sliceable *bool `json:"sliceable,omitempty"`
	// IncludeElements renders the report with per-module element and
	// slice ID lists (the lossless wire format a fleet coordinator needs
	// to merge partition reports). Default reports omit them and stay
	// byte-identical to earlier releases.
	IncludeElements bool `json:"include_elements,omitempty"`
	// PartitionResets names the reset inputs anchoring fleet-mode
	// partitioning, overriding automatic discovery. Unknown names are a
	// 400. Ignored (beyond validation) when the netlist stays on the
	// single-process path.
	PartitionResets []string `json:"partition_resets,omitempty"`
}

func (o RequestOptions) validate() error {
	switch o.Objective {
	case "", "max", "min":
	default:
		return fmt.Errorf("options.objective must be \"max\" or \"min\", got %q", o.Objective)
	}
	if o.TimeoutMS < 0 || o.StageTimeoutMS < 0 || o.Workers < 0 {
		return errors.New("options.workers, timeout_ms and stage_timeout_ms must be >= 0")
	}
	if o.CoverageTarget < 0 || o.CoverageTarget > 1 {
		return errors.New("options.coverage_target must be in [0, 1]")
	}
	return nil
}

// toOptions lowers the wire options onto core Options for nl, applying
// the same derivations as the revan CLI (coverage target fraction ->
// element count).
func (o RequestOptions) toOptions(nl *netlistre.Netlist, defaultTimeout time.Duration) netlistre.Options {
	opt := netlistre.Options{
		Workers:        o.Workers,
		Timeout:        time.Duration(o.TimeoutMS) * time.Millisecond,
		StageTimeout:   time.Duration(o.StageTimeoutMS) * time.Millisecond,
		SkipModMatch:   o.SkipModMatch,
		SkipWordProp:   o.SkipWordProp,
		KeepCandidates: o.KeepCandidates,
	}
	if opt.Timeout == 0 {
		opt.Timeout = defaultTimeout
	}
	opt.Overlap.Sliceable = o.Sliceable == nil || *o.Sliceable
	if o.Objective == "min" {
		opt.Overlap.Objective = netlistre.MinModules
		target := o.CoverageTarget
		if target == 0 {
			target = 0.5
		}
		stats := nl.Stats()
		opt.Overlap.CoverageTarget = int(target * float64(stats.Gates+stats.Latches))
	}
	return opt
}

// cacheKey is the options half of the report-cache key: every field that
// can change the report, canonically rendered. Workers is deliberately
// absent (reports are worker-count-invariant by the scheduler's
// determinism guarantee).
func (o RequestOptions) cacheKey(fingerprint string, defaultTimeout time.Duration) string {
	timeout := time.Duration(o.TimeoutMS) * time.Millisecond
	if timeout == 0 {
		timeout = defaultTimeout
	}
	sliceable := o.Sliceable == nil || *o.Sliceable
	objective := o.Objective
	if objective == "" {
		objective = "max"
	}
	target := o.CoverageTarget
	if objective == "min" && target == 0 {
		target = 0.5
	}
	return fmt.Sprintf("%s|to=%s sto=%dms smm=%t swp=%t kc=%t obj=%s ct=%g sl=%t ie=%t pr=%s",
		fingerprint, timeout, o.StageTimeoutMS, o.SkipModMatch, o.SkipWordProp,
		o.KeepCandidates, objective, target, sliceable, o.IncludeElements,
		strings.Join(o.PartitionResets, ","))
}

// builtinArticle resolves a built-in netlist name, including the large
// case-study articles revan accepts.
func builtinArticle(name string) (*netlistre.Netlist, error) {
	switch name {
	case "bigsoc":
		return netlistre.BigSoC(), nil
	case "evoter-trojan":
		return netlistre.EVoterTrojaned(), nil
	case "oc8051-trojan":
		return netlistre.OC8051Trojaned(), nil
	default:
		return netlistre.TestArticle(name)
	}
}

// buildNetlist materializes the request's netlist source.
func buildNetlist(req *AnalyzeRequest) (*netlistre.Netlist, error) {
	sources := 0
	for _, set := range []bool{req.Article != "", req.Verilog != "", req.BLIF != ""} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, errors.New("exactly one of article, verilog, or blif is required")
	}
	switch {
	case req.Article != "":
		return builtinArticle(req.Article)
	case req.Verilog != "":
		return netlistre.ReadVerilog(strings.NewReader(req.Verilog))
	default:
		return netlistre.ReadBLIFOpts(strings.NewReader(req.BLIF),
			netlistre.BLIFOptions{Luts: req.BLIFLuts})
	}
}

// apiError is the JSON error body for non-2xx responses.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client disconnects are not actionable
}

func writeError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// parsedRequest is one decoded, validated analysis request.
type parsedRequest struct {
	nl          *netlistre.Netlist
	fingerprint string
	opt         netlistre.Options
	key         string
	ro          RequestOptions
}

// decodeRequest parses and validates an analysis request body, returning
// the netlist, its fingerprint, the lowered options, and the cache key.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (*parsedRequest, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req AnalyzeRequest
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
		} else {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		}
		return nil, false
	}
	if err := req.Options.validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil, false
	}
	nl, err := buildNetlist(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "netlist: %v", err)
		return nil, false
	}
	for _, name := range req.Options.PartitionResets {
		if nl.FindByName(name) == netlistre.NilID {
			writeError(w, http.StatusBadRequest, "options.partition_resets: no input named %q", name)
			return nil, false
		}
	}
	fp := nl.Fingerprint()
	return &parsedRequest{
		nl:          nl,
		fingerprint: fp,
		opt:         req.Options.toOptions(nl, s.cfg.DefaultTimeout),
		key:         req.Options.cacheKey(fp, s.cfg.DefaultTimeout),
		ro:          req.Options,
	}, true
}

// analyze runs one analysis through the cache: a hit returns the stored
// bytes; a miss runs the portfolio — stage-incrementally, through the
// process-wide stage store — feeds the stage histograms, and stores the
// rendered report unless it is degraded. A degraded report is never
// cached, but its completed stages live on in the stage store, so
// resubmitting the same request resumes the analysis instead of starting
// over. When fleet mode is on and the netlist is large enough to split,
// the analysis is sharded across the fleet instead (see fleet.go); the
// cache key covers every report-shaping option, so a given key always
// resolves through the same path within a process.
func (s *Server) analyze(ctx context.Context, source string, pr *parsedRequest) (report []byte, cacheHit, degraded bool, err error) {
	if b, _, ok := s.cache.Get(pr.key); ok {
		return b, true, false, nil
	}
	if s.fleetEligible(pr.nl) {
		report, degraded, handled, err := s.analyzeFleet(ctx, source, pr.nl, pr.opt, pr.fingerprint, pr.key, pr.ro)
		if handled || err != nil {
			return report, false, degraded, err
		}
	}
	opt := pr.opt
	if s.stages != nil {
		opt.StageStore = s.stages
		opt.Fingerprint = pr.fingerprint
	}
	rep := netlistre.AnalyzeContext(ctx, pr.nl, opt)
	s.metrics.AnalysisDone(source, rep.Trace)
	var buf bytes.Buffer
	if pr.ro.IncludeElements {
		err = netlistre.WriteJSONReportElements(&buf, rep)
	} else {
		err = netlistre.WriteJSONReport(&buf, rep)
	}
	if err != nil {
		return nil, false, false, err
	}
	if !rep.Degraded {
		s.cache.Put(pr.key, pr.fingerprint, buf.Bytes())
	}
	return buf.Bytes(), false, rep.Degraded, nil
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	pr, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	if s.cfg.MaxSyncElements > 0 {
		stats := pr.nl.Stats()
		if n := stats.Gates + stats.Latches; n > s.cfg.MaxSyncElements {
			writeError(w, http.StatusRequestEntityTooLarge,
				"netlist has %d elements (sync limit %d); submit it to POST /v1/jobs instead",
				n, s.cfg.MaxSyncElements)
			return
		}
	}
	report, hit, degraded, err := s.analyze(r.Context(), "sync", pr)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "rendering report: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Netlist-Fingerprint", pr.fingerprint)
	if hit {
		w.Header().Set("X-Cache", "HIT")
	} else {
		w.Header().Set("X-Cache", "MISS")
	}
	if degraded {
		w.Header().Set("X-Degraded", "true")
	}
	w.Write(report) //nolint:errcheck
}

// runJob is the queue executor: it performs the cached analysis for one
// job and moves it to its terminal state.
func (s *Server) runJob(ctx context.Context, j *Job) {
	report, hit, degraded, err := s.analyze(ctx, "job", &parsedRequest{
		nl:          j.nl,
		fingerprint: j.Fingerprint,
		opt:         j.opt,
		key:         j.key,
		ro:          j.ro,
	})
	switch {
	case err != nil:
		j.finish(JobFailed, nil, false, err.Error())
		s.metrics.JobFinished(JobFailed)
	case degraded:
		j.finish(JobDegraded, report, hit, "")
		s.metrics.JobFinished(JobDegraded)
	default:
		j.finish(JobDone, report, hit, "")
		s.metrics.JobFinished(JobDone)
	}
}

// retryAfterSeconds derives the Retry-After hint for a 503 from the
// queue's state: depth times the recent mean job duration, spread over
// the workers, clamped to [1s, 60s] so a cold or pathological estimate
// never tells clients to stay away too long or hammer too soon.
func (s *Server) retryAfterSeconds() string {
	secs := int(s.queue.EstimatedWaitSeconds() + 0.999)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return strconv.Itoa(secs)
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	pr, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	j := NewJob(pr.nl, pr.opt, pr.fingerprint, pr.key)
	j.ro = pr.ro
	switch err := s.queue.Submit(j); {
	case errors.Is(err, ErrQueueFull):
		// Backpressure: tell well-behaved clients when to come back and
		// count the rejection so operators can alert on sustained overload.
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		s.metrics.QueueFull()
		writeError(w, http.StatusServiceUnavailable, "job queue full (capacity %d)", s.queue.Capacity())
		return
	case errors.Is(err, ErrShuttingDown):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j := s.queue.Get(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q (finished jobs are retained for the last %d)", r.PathValue("id"), maxRetiredJobs)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// rtlCacheEntries bounds the decompiled-RTL artifact store.
const rtlCacheEntries = 128

// rtlArtifact is the cached value of one decompilation.
type rtlArtifact struct {
	verilog []byte
	equiv   *netlistre.RTLEquiv
}

// handleJobRTL serves GET /v1/jobs/{id}/rtl: the job's netlist decompiled
// to word-level Verilog. The emission is lazy — computed on first request,
// then cached in an artifact store keyed by the netlist fingerprint and
// the job's analysis options — and self-checked: RTL that fails the
// round-trip equivalence check is never served. Only done jobs qualify; a
// queued, running, degraded, or failed job gets 409, since its report
// (and so its lowering) is absent or partial.
func (s *Server) handleJobRTL(w http.ResponseWriter, r *http.Request) {
	j := s.queue.Get(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q (finished jobs are retained for the last %d)", r.PathValue("id"), maxRetiredJobs)
		return
	}
	if st := j.State(); st != JobDone {
		writeError(w, http.StatusConflict, "job is %s; RTL is only available for done jobs", st)
		return
	}
	h := artifact.NewHasher("netlistre-rtl-v1")
	h.Str(j.Fingerprint)
	h.Str(j.key)
	var computeErr error
	art, _, err := s.rtl.Do(r.Context(), h.Sum(), func() (*artifact.Artifact, bool) {
		// Re-derive the report from the retained netlist; the shared
		// stage store turns this into a replay of the original analysis.
		opt := j.opt
		if s.stages != nil {
			opt.StageStore = s.stages
			opt.Fingerprint = j.Fingerprint
		}
		rep := netlistre.AnalyzeContext(r.Context(), j.nl, opt)
		s.metrics.AnalysisDone("rtl", rep.Trace)
		if rep.Degraded {
			computeErr = fmt.Errorf("re-analysis for RTL emission was degraded")
			return nil, false
		}
		er, eq, err := netlistre.DecompileRTL(j.nl, rep)
		if err != nil {
			computeErr = err
			return nil, false
		}
		if !eq.Equivalent {
			computeErr = fmt.Errorf("round-trip equivalence self-check failed: %v", eq)
			return nil, false
		}
		return &artifact.Artifact{
			Stage: "rtl",
			Value: &rtlArtifact{verilog: er.Verilog, equiv: eq},
		}, true
	})
	switch {
	case err != nil:
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case computeErr != nil:
		writeError(w, http.StatusInternalServerError, "decompile: %v", computeErr)
		return
	case art == nil:
		// Another caller's compute declined to publish (its request was
		// canceled mid-flight); this request can simply be retried.
		writeError(w, http.StatusServiceUnavailable, "RTL emission interrupted; retry")
		return
	}
	ra := art.Value.(*rtlArtifact)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Netlist-Fingerprint", j.Fingerprint)
	w.Header().Set("X-RTL-Equiv", ra.equiv.Method)
	w.Write(ra.verilog) //nolint:errcheck
}

// Article is one entry of GET /v1/articles.
type Article struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

func (s *Server) handleArticles(w http.ResponseWriter, r *http.Request) {
	var articles []Article
	for _, name := range netlistre.TestArticleNames() {
		articles = append(articles, Article{Name: name, Description: netlistre.TestArticleDescription(name)})
	}
	articles = append(articles,
		Article{Name: "bigsoc", Description: "seven-core SoC case study (Section V-C)"},
		Article{Name: "evoter-trojan", Description: "eVoter with key-sequence backdoor"},
		Article{Name: "oc8051-trojan", Description: "oc8051 with XOR kill switch"},
	)
	writeJSON(w, http.StatusOK, articles)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.queue.Closing() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]interface{}{
		"status":         status,
		"queue_depth":    s.queue.Depth(),
		"queue_capacity": s.queue.Capacity(),
		"jobs_running":   s.queue.Running(),
		"uptime_ms":      time.Since(s.start).Milliseconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g := Gauges{
		QueueDepth:       s.queue.Depth(),
		QueueCapacity:    s.queue.Capacity(),
		JobsRunning:      s.queue.Running(),
		QueueWaitSeconds: s.queue.EstimatedWaitSeconds(),
		Cache:            s.cache.Stats(),
		UptimeSeconds:    time.Since(s.start).Seconds(),
		SessionsActive:   s.sessions.Active(),
	}
	if s.stages != nil {
		g.StageCache = s.stages.Stats()
	}
	if s.fleetDisp != nil {
		g.Fleet = &FleetGauges{
			Stats: s.fleetDisp.Stats(),
			Peers: s.fleetReg.PeerStates(),
		}
	}
	if err := s.metrics.WriteProm(w, g); err != nil {
		// The write failed mid-stream; nothing useful left to send.
		return
	}
}
