package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestJobRTLEndpoint exercises GET /v1/jobs/{id}/rtl: a done job serves
// self-checked word-level Verilog, repeated requests are byte-identical
// (artifact-store cached), and missing or unfinished jobs get 404/409.
func TestJobRTLEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp := postJSON(t, ts.URL+"/v1/jobs", AnalyzeRequest{Article: "evoter"})
	var st JobStatus
	if err := json.Unmarshal(readBody(t, resp), &st); err != nil {
		t.Fatal(err)
	}
	final := pollJob(t, ts.URL+"/v1/jobs/"+st.ID)
	if final.Status != JobDone {
		t.Fatalf("job finished %q, want done", final.Status)
	}

	get := func() (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/rtl")
		if err != nil {
			t.Fatal(err)
		}
		return resp, readBody(t, resp)
	}

	resp1, body1 := get()
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("rtl status %d: %s", resp1.StatusCode, body1)
	}
	if ct := resp1.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	if eq := resp1.Header.Get("X-RTL-Equiv"); eq == "" {
		t.Error("missing X-RTL-Equiv header")
	}
	if fp := resp1.Header.Get("X-Netlist-Fingerprint"); fp != final.Fingerprint {
		t.Errorf("X-Netlist-Fingerprint = %q, want %q", fp, final.Fingerprint)
	}
	if !bytes.Contains(body1, []byte("module ")) || !bytes.Contains(body1, []byte("endmodule")) {
		t.Errorf("body does not look like Verilog:\n%.200s", body1)
	}

	// Second request must be served from the artifact store, byte-identical.
	resp2, body2 := get()
	if resp2.StatusCode != http.StatusOK || !bytes.Equal(body1, body2) {
		t.Errorf("repeat rtl request differs (status %d)", resp2.StatusCode)
	}

	// Unknown job: 404.
	resp404, err := http.Get(ts.URL + "/v1/jobs/job-doesnotexist/rtl")
	if err != nil {
		t.Fatal(err)
	}
	if body := readBody(t, resp404); resp404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job rtl status %d, want 404 (%s)", resp404.StatusCode, body)
	}
}

// TestJobRTLNotDone verifies that a job that did not finish cleanly —
// here degraded by an unmeetable timeout — refuses to serve RTL with 409.
func TestJobRTLNotDone(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	req := AnalyzeRequest{Article: "mips16"}
	req.Options.TimeoutMS = 1
	resp := postJSON(t, ts.URL+"/v1/jobs", req)
	var st JobStatus
	if err := json.Unmarshal(readBody(t, resp), &st); err != nil {
		t.Fatal(err)
	}
	final := pollJob(t, ts.URL+"/v1/jobs/"+st.ID)
	if final.Status != JobDegraded {
		t.Skipf("job finished %q despite 1ms budget; cannot exercise the 409 path", final.Status)
	}
	r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/rtl")
	if err != nil {
		t.Fatal(err)
	}
	if body := readBody(t, r); r.StatusCode != http.StatusConflict {
		t.Fatalf("degraded job rtl status %d, want 409 (%s)", r.StatusCode, body)
	}
}
