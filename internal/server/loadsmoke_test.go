package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestLoadSmoke is the CI load check: ~50 concurrent requests mixing
// cache-hot repeats, cold uploads, async jobs, and read-only endpoints,
// followed by a clean shutdown and a goroutine-leak poll. Run it with
// -race (make ci does).
func TestLoadSmoke(t *testing.T) {
	before := runtime.NumGoroutine()

	s := New(Config{QueueWorkers: 2, QueueDepth: 32})
	ts := httptest.NewServer(s)

	verilog, blif := refVerilog(t, "smoke")
	client := ts.Client()
	get := func(path string) error {
		resp, err := client.Get(ts.URL + path)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: %d", path, resp.StatusCode)
		}
		return nil
	}
	post := func(path string, req AnalyzeRequest) (*http.Response, error) {
		b, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			return nil, err
		}
		return resp, nil
	}

	const n = 50
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var err error
			switch i % 5 {
			case 0: // cache-hot after the first: same article, same options
				var resp *http.Response
				if resp, err = post("/v1/analyze", AnalyzeRequest{Article: "evoter"}); err == nil {
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						err = fmt.Errorf("analyze evoter: %d", resp.StatusCode)
					}
				}
			case 1: // same circuit, two serializations: one cache entry
				req := AnalyzeRequest{Verilog: verilog}
				if i%2 == 1 {
					req = AnalyzeRequest{BLIF: blif}
				}
				var resp *http.Response
				if resp, err = post("/v1/analyze", req); err == nil {
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						err = fmt.Errorf("analyze upload: %d", resp.StatusCode)
					}
				}
			case 2: // async job; 503 on a momentarily full queue is expected
				var resp *http.Response
				if resp, err = post("/v1/jobs", AnalyzeRequest{Article: "evoter"}); err == nil {
					resp.Body.Close()
					if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusServiceUnavailable {
						err = fmt.Errorf("submit job: %d", resp.StatusCode)
					}
				}
			case 3:
				err = get("/metrics")
			case 4:
				err = get("/healthz")
			}
			if err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The mix repeats articles and re-serializes one circuit, so the cache
	// must have been exercised on both sides.
	st := s.cache.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("load mix did not exercise the cache: %+v", st)
	}

	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Workers, HTTP handlers, and analysis goroutines must all be gone.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Errorf("goroutine leak: %d before, %d after\n%s",
		before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}
