package server

// Fuzz coverage for the session-layer request decoders: arbitrary JSON
// bodies and cone-query strings must come back as 2xx or 4xx — never a
// panic, never a 5xx — because every malformed shape is a client error by
// contract. Seeds are the golden request bodies from the session tests.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// fuzzSession builds a server holding one analyzed session (tiny inline
// Verilog, so worker start-up stays cheap) and returns its base URL and
// session path.
func fuzzSession(f *testing.F) (ts *httptest.Server, base string) {
	f.Helper()
	s := New(Config{})
	ts = httptest.NewServer(s)
	f.Cleanup(ts.Close)

	const src = `module m (a, b, y);
 input a; input b;
 output y;
 and g0 (w, a, b);
 not g1 (y, w);
endmodule
`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(fmt.Sprintf(`{"verilog": %q}`, src)))
	if err != nil {
		f.Fatal(err)
	}
	var st JobStatus
	if err := decodeBody(resp, &st); err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			f.Fatal(err)
		}
		if err := decodeBody(r, &st); err != nil {
			f.Fatal(err)
		}
		if st.Status == JobDone {
			break
		}
		if st.Status == JobFailed || st.Status == JobDegraded {
			f.Fatalf("seed job finished %s", st.Status)
		}
	}
	resp, err = http.Post(ts.URL+"/v1/sessions", "application/json",
		strings.NewReader(fmt.Sprintf(`{"job_id": %q}`, st.ID)))
	if err != nil {
		f.Fatal(err)
	}
	var ss SessionStatus
	if err := decodeBody(resp, &ss); err != nil {
		f.Fatal(err)
	}
	if ss.ID == "" {
		f.Fatal("no session ID")
	}
	// A second revision so diff bodies can resolve real revisions.
	resp, err = http.Post(ts.URL+"/v1/sessions/"+ss.ID+"/revisions/suspect",
		"application/json", strings.NewReader(fmt.Sprintf(`{"verilog": %q}`, src)))
	if err != nil {
		f.Fatal(err)
	}
	resp.Body.Close()
	return ts, "/v1/sessions/" + ss.ID
}

// postRaw sends body and asserts the response is never a 5xx.
func postRaw(t *testing.T, url, body string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode >= 500 {
		t.Fatalf("POST %s with %q = %d; arbitrary input must be a client error", url, body, resp.StatusCode)
	}
}

func FuzzSessionRequest(f *testing.F) {
	ts, base := fuzzSession(f)

	// Golden request bodies and cone queries as seeds.
	for _, seed := range [][2]string{
		{`{"job_id": "job-0011223344556677"}`, "net=a&dir=fanout&depth=2&limit=10"},
		{`{"job_id": ""}`, "net=%23` + `0&dir=fanin"},
		{`{}`, "net=y&depth=1&limit=1"},
		{`{"workers": 1, "objective": "min"}`, "net=a&dir=sideways"},
		{`{"objective": "max", "timeout_ms": 5}`, "net=&depth=-1"},
		{`{"unknown_field": true}`, "net=a&depth=99999&limit=0"},
		{`[]`, "net=a%00b"},
		{``, `net=a&dir=fanin&depth=07&limit=+3`},
	} {
		f.Add(seed[0], seed[1])
	}

	f.Fuzz(func(t *testing.T, body, coneQuery string) {
		// Session creation decoder.
		postRaw(t, ts.URL+"/v1/sessions", body)
		// Re-run options decoder on the live session.
		postRaw(t, ts.URL+base+"/rerun", body)
		// Revision-upload decoder (unique name per shape is unnecessary:
		// duplicates are a 409, which is still a 4xx).
		postRaw(t, ts.URL+base+"/revisions/fuzzrev", body)
		// Cone query-parameter parsing.
		req, err := http.NewRequest(http.MethodGet, ts.URL+base+"/cone?"+coneQuery, nil)
		if err != nil {
			return // not even a legal URL: rejected before the server
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return
		}
		resp.Body.Close()
		if resp.StatusCode >= 500 {
			t.Fatalf("GET cone?%q = %d", coneQuery, resp.StatusCode)
		}
	})
}

func FuzzDiffRequest(f *testing.F) {
	ts, base := fuzzSession(f)

	for _, seed := range []string{
		`{"golden": "main", "suspect": "suspect"}`,
		`{"golden": "main", "suspect": "suspect", "max_passes": 4, "wl_rounds": 2}`,
		`{"golden": "suspect", "suspect": "main", "sim_cycles": 2, "sim_batches": 1}`,
		`{}`,
		`{"golden": "nope"}`,
		`{"max_passes": -1}`,
		`{"sim_batches": 99999999}`,
		`{"disable_wl": true, "disable_sim": true, "golden": "main", "suspect": "suspect"}`,
		`{"golden": 3}`,
		`null`,
		`{`,
	} {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, body string) {
		postRaw(t, ts.URL+base+"/diff", body)
	})
}

func decodeBody(resp *http.Response, v interface{}) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}
