// Package bitslice implements Algorithm 1 of the paper: cut-based Boolean
// matching of netlist nodes against a library of 1-bit datapath slices
// (Section II-A). For every gate it inspects the node's k-feasible cuts,
// shrinks away vacuous leaves, and matches the resulting function against
// the library permutation-independently. A match records which cut leaf
// plays which formal argument (e.g. which leaf is a mux select), which the
// aggregation algorithms rely on.
package bitslice

import (
	"sort"

	"netlistre/internal/cuts"
	"netlistre/internal/netlist"
	"netlistre/internal/truth"
)

// Match is one node matching one library slice.
type Match struct {
	Root  netlist.ID
	Class truth.Class
	// Args[j] is the netlist node driving formal argument j of the library
	// function.
	Args []netlist.ID
	// Cone lists the gates implementing the slice: the nodes between Root
	// (inclusive) and the cut leaves (exclusive), sorted.
	Cone []netlist.ID
}

// Result groups matches by class and indexes them by root.
type Result struct {
	ByClass map[truth.Class][]*Match
	ByRoot  map[netlist.ID][]*Match
	// UnknownClasses groups non-library cut functions by canonical table,
	// for candidate-module generation (Section II-B.1); keys are canonical
	// table strings.
	UnknownClasses map[string][]*Match
}

// Options tunes identification.
type Options struct {
	Cuts cuts.Options
	// Library is the slice library; nil selects truth.Library().
	Library []truth.Entry
	// KeepUnknown enables collecting unknown-function equivalence classes
	// (more memory; only needed when candidate generation is wanted).
	KeepUnknown bool
}

// Find runs cut enumeration and Boolean matching over the whole netlist.
func Find(nl *netlist.Netlist, opt Options) *Result {
	lib := opt.Library
	if lib == nil {
		lib = truth.Library()
	}
	// Index the library by arity for cheap pre-filtering.
	byArity := make(map[int][]truth.Entry)
	for _, e := range lib {
		byArity[e.Table.N] = append(byArity[e.Table.N], e)
	}

	cutSets := cuts.Enumerate(nl, opt.Cuts)
	res := &Result{
		ByClass: make(map[truth.Class][]*Match),
		ByRoot:  make(map[netlist.ID][]*Match),
	}
	if opt.KeepUnknown {
		res.UnknownClasses = make(map[string][]*Match)
	}

	// Deterministic iteration over nodes. The enumeration interrupt also
	// covers the matching loop: a budgeted caller gets the matches found
	// so far instead of a stall on a huge library.
	for id := netlist.ID(0); int(id) < nl.Len(); id++ {
		if id&63 == 0 && opt.Cuts.Interrupt != nil && opt.Cuts.Interrupt() {
			break
		}
		if !nl.Kind(id).IsGate() {
			continue
		}
		seenClass := make(map[truth.Class]bool)
		var seenUnknown map[string]bool
		if opt.KeepUnknown {
			seenUnknown = make(map[string]bool)
		}
		for _, c := range cutSets[id] {
			if len(c.Leaves) == 1 && c.Leaves[0] == id {
				continue // trivial cut matches nothing interesting
			}
			shrunk, orig := c.Table.Shrink()
			if shrunk.N == 0 {
				continue // constant function
			}
			leaves := make([]netlist.ID, shrunk.N)
			for j, oi := range orig {
				leaves[j] = c.Leaves[oi]
			}
			matched := false
			for _, entry := range byArity[shrunk.N] {
				perm, ok := shrunk.MatchAgainst(entry.Table)
				if !ok {
					continue
				}
				matched = true
				if seenClass[entry.Class] {
					continue // keep one match per (root, class)
				}
				seenClass[entry.Class] = true
				args := make([]netlist.ID, len(perm))
				for j, v := range perm {
					args[j] = leaves[v]
				}
				res.add(&Match{
					Root:  id,
					Class: entry.Class,
					Args:  args,
					Cone:  coneWithin(nl, id, leaves),
				})
			}
			if !matched && opt.KeepUnknown && shrunk.N >= 3 {
				canon, _ := shrunk.Canon()
				key := canon.String()
				if !seenUnknown[key] {
					seenUnknown[key] = true
					res.UnknownClasses[key] = append(res.UnknownClasses[key], &Match{
						Root:  id,
						Class: truth.ClassUnknown,
						Args:  leaves,
						Cone:  coneWithin(nl, id, leaves),
					})
				}
			}
		}
	}
	return res
}

func (r *Result) add(m *Match) {
	r.ByClass[m.Class] = append(r.ByClass[m.Class], m)
	r.ByRoot[m.Root] = append(r.ByRoot[m.Root], m)
}

// Matches returns the matches for a class (possibly nil).
func (r *Result) Matches(c truth.Class) []*Match { return r.ByClass[c] }

// RootMatches returns all matches rooted at id.
func (r *Result) RootMatches(id netlist.ID) []*Match { return r.ByRoot[id] }

// HasClass reports whether root has a match of the given class and returns
// it.
func (r *Result) HasClass(root netlist.ID, c truth.Class) (*Match, bool) {
	for _, m := range r.ByRoot[root] {
		if m.Class == c {
			return m, true
		}
	}
	return nil, false
}

// coneWithin returns the gates from root down to (but excluding) the given
// leaves, sorted ascending.
func coneWithin(nl *netlist.Netlist, root netlist.ID, leaves []netlist.ID) []netlist.ID {
	isLeaf := make(map[netlist.ID]bool, len(leaves))
	for _, l := range leaves {
		isLeaf[l] = true
	}
	seen := map[netlist.ID]bool{root: true}
	stack := []netlist.ID{root}
	var out []netlist.ID
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, id)
		for _, f := range nl.Fanin(id) {
			if isLeaf[f] || seen[f] || !nl.Kind(f).IsComb() {
				continue
			}
			seen[f] = true
			stack = append(stack, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
