// Package bitslice implements Algorithm 1 of the paper: cut-based Boolean
// matching of netlist nodes against a library of 1-bit datapath slices
// (Section II-A). For every gate it inspects the node's k-feasible cuts,
// shrinks away vacuous leaves, and matches the resulting function against
// the library permutation-independently. A match records which cut leaf
// plays which formal argument (e.g. which leaf is a mux select), which the
// aggregation algorithms rely on.
//
// Matching runs on the canonical-index fast path (truth.Index): one
// canonicalization plus one hash probe per distinct cut function, with a
// per-worker memo so repeated functions — ubiquitous in bit-sliced
// datapaths — classify with a single map hit. The original per-entry
// permutation search is retained behind Options.SlowMatch as the
// differential-testing oracle; both paths produce byte-identical Results.
package bitslice

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"netlistre/internal/cuts"
	"netlistre/internal/netlist"
	"netlistre/internal/truth"
)

// Match is one node matching one library slice.
type Match struct {
	Root  netlist.ID
	Class truth.Class
	// Args[j] is the netlist node driving formal argument j of the library
	// function.
	Args []netlist.ID
	// Cone lists the gates implementing the slice: the nodes between Root
	// (inclusive) and the cut leaves (exclusive), sorted.
	Cone []netlist.ID
}

// Result groups matches by class and indexes them by root.
type Result struct {
	ByClass map[truth.Class][]*Match
	ByRoot  map[netlist.ID][]*Match
	// UnknownClasses groups non-library cut functions by canonical table,
	// for candidate-module generation (Section II-B.1); keys are canonical
	// table strings.
	UnknownClasses map[string][]*Match
}

// Options tunes identification.
type Options struct {
	Cuts cuts.Options
	// Library is the slice library; nil selects truth.Library().
	Library []truth.Entry
	// KeepUnknown enables collecting unknown-function equivalence classes
	// (more memory; only needed when candidate generation is wanted).
	KeepUnknown bool
	// SlowMatch disables the canonical index and searches for a
	// permutation per library entry, as the original implementation did.
	// It exists as the oracle for differential tests; results are
	// identical either way.
	SlowMatch bool
	// Workers caps the matching parallelism. 0 uses GOMAXPROCS; 1 runs
	// serially. The Result is deterministic and independent of Workers.
	Workers int
}

// cutMatch is one classified (class, argument-permutation) pair for a cut
// function; classification depends only on the shrunk table, so these are
// memoized per worker.
type cutMatch struct {
	entry truth.Entry
	perm  []int
}

// classification is the memoized matching outcome of one shrunk table.
type classification struct {
	matches []cutMatch
	// unknownKey is the canonical-table key for unmatched functions of
	// arity >= 3 (only populated when unknown collection is on).
	unknownKey string
}

// classifier matches shrunk cut functions, memoizing by table. Each worker
// owns one, so no locking is needed on the hot path.
type classifier struct {
	ix          *truth.Index // nil in SlowMatch mode
	byArity     map[int][]truth.Entry
	keepUnknown bool
	memo        map[truth.Table]classification
}

func (cl *classifier) classify(shrunk truth.Table) classification {
	if c, ok := cl.memo[shrunk]; ok {
		return c
	}
	var c classification
	if cl.ix != nil {
		var hits []truth.Hit
		var canon truth.Table
		if cl.keepUnknown && shrunk.N >= 3 {
			// One Canon() serves both the index probe and, if nothing
			// matches, the unknown-class key below.
			hits, canon, _ = cl.ix.LookupCanon(shrunk)
		} else {
			hits = cl.ix.Lookup(shrunk)
		}
		for _, h := range hits {
			perm := h.Perm
			if !h.Unique {
				// Symmetric entries admit several valid permutations;
				// reproduce MatchAgainst's choice so downstream argument
				// orderings (and golden reports) are bit-identical.
				p, ok := shrunk.MatchAgainst(h.Entry.Table)
				if !ok {
					panic("bitslice: index hit that MatchAgainst rejects")
				}
				perm = p
			}
			c.matches = append(c.matches, cutMatch{entry: h.Entry, perm: perm})
		}
		if len(c.matches) == 0 && cl.keepUnknown && shrunk.N >= 3 {
			c.unknownKey = canon.String()
		}
	} else {
		for _, entry := range cl.byArity[shrunk.N] {
			if perm, ok := shrunk.MatchAgainst(entry.Table); ok {
				c.matches = append(c.matches, cutMatch{entry: entry, perm: perm})
			}
		}
		if len(c.matches) == 0 && cl.keepUnknown && shrunk.N >= 3 {
			canon, _ := shrunk.Canon()
			c.unknownKey = canon.String()
		}
	}
	cl.memo[shrunk] = c
	return c
}

// unknownRec is one unknown-class representative found at a node.
type unknownRec struct {
	key string
	m   *Match
}

// Find runs cut enumeration and Boolean matching over the whole netlist.
func Find(nl *netlist.Netlist, opt Options) *Result {
	lib := opt.Library
	if lib == nil {
		lib = truth.Library()
	}
	var ix *truth.Index
	if !opt.SlowMatch {
		if opt.Library == nil {
			ix = truth.DefaultIndex()
		} else {
			ix = truth.NewIndex(lib)
		}
	}
	// Arity buckets, library order preserved: the slow path scans these,
	// and index hits surface in the same order, so the two paths emit
	// matches identically.
	byArity := make(map[int][]truth.Entry)
	for _, e := range lib {
		byArity[e.Table.N] = append(byArity[e.Table.N], e)
	}

	cutSets := cuts.Enumerate(nl, opt.Cuts)
	res := &Result{
		ByClass: make(map[truth.Class][]*Match),
		ByRoot:  make(map[netlist.ID][]*Match),
	}
	if opt.KeepUnknown {
		res.UnknownClasses = make(map[string][]*Match)
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nl.Len()/chunk+1 {
		workers = nl.Len()/chunk + 1
	}

	// Workers claim 64-node chunks and fill per-node result slots; the
	// merge below walks nodes in ID order, so ByClass/ByRoot/UnknownClasses
	// contents and ordering are independent of scheduling. The enumeration
	// interrupt also covers matching: a budgeted caller gets the matches
	// found so far instead of a stall on a huge netlist.
	perNode := make([][]*Match, nl.Len())
	var perUnknown [][]unknownRec
	if opt.KeepUnknown {
		perUnknown = make([][]unknownRec, nl.Len())
	}
	var next, stopped atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := &classifier{
				ix:          ix,
				byArity:     byArity,
				keepUnknown: opt.KeepUnknown,
				memo:        make(map[truth.Table]classification),
			}
			for {
				lo := netlist.ID(next.Add(chunk) - chunk)
				if int(lo) >= nl.Len() || stopped.Load() != 0 {
					return
				}
				if opt.Cuts.Interrupt != nil && opt.Cuts.Interrupt() {
					stopped.Store(1)
					return
				}
				hi := lo + chunk
				if int(hi) > nl.Len() {
					hi = netlist.ID(nl.Len())
				}
				for id := lo; id < hi; id++ {
					matchNode(nl, id, cutSets[id], cl, perNode, perUnknown)
				}
			}
		}()
	}
	wg.Wait()

	for id := netlist.ID(0); int(id) < nl.Len(); id++ {
		for _, m := range perNode[id] {
			res.add(m)
		}
		if perUnknown != nil {
			for _, u := range perUnknown[id] {
				res.UnknownClasses[u.key] = append(res.UnknownClasses[u.key], u.m)
			}
		}
	}
	return res
}

// chunk is the number of consecutive node IDs a worker claims at a time;
// it doubles as the interrupt polling granularity (one check per chunk,
// matching the historical every-64-nodes cadence).
const chunk = 64

// matchNode classifies every non-trivial cut of one gate, keeping one match
// per (root, class) and one unknown representative per canonical function.
func matchNode(nl *netlist.Netlist, id netlist.ID, cs []cuts.Cut,
	cl *classifier, perNode [][]*Match, perUnknown [][]unknownRec) {
	if !nl.Kind(id).IsGate() {
		return
	}
	seenClass := make(map[truth.Class]bool)
	var seenUnknown map[string]bool
	if perUnknown != nil {
		seenUnknown = make(map[string]bool)
	}
	for _, c := range cs {
		if len(c.Leaves) == 1 && c.Leaves[0] == id {
			continue // trivial cut matches nothing interesting
		}
		shrunk, orig := c.Table.Shrink()
		if shrunk.N == 0 {
			continue // constant function
		}
		leaves := make([]netlist.ID, shrunk.N)
		for j, oi := range orig {
			leaves[j] = c.Leaves[oi]
		}
		cls := cl.classify(shrunk)
		for _, cm := range cls.matches {
			if seenClass[cm.entry.Class] {
				continue // keep one match per (root, class)
			}
			seenClass[cm.entry.Class] = true
			args := make([]netlist.ID, len(cm.perm))
			for j, v := range cm.perm {
				args[j] = leaves[v]
			}
			perNode[id] = append(perNode[id], &Match{
				Root:  id,
				Class: cm.entry.Class,
				Args:  args,
				Cone:  coneWithin(nl, id, leaves),
			})
		}
		if len(cls.matches) == 0 && seenUnknown != nil && shrunk.N >= 3 {
			if !seenUnknown[cls.unknownKey] {
				seenUnknown[cls.unknownKey] = true
				perUnknown[id] = append(perUnknown[id], unknownRec{
					key: cls.unknownKey,
					m: &Match{
						Root:  id,
						Class: truth.ClassUnknown,
						Args:  leaves,
						Cone:  coneWithin(nl, id, leaves),
					},
				})
			}
		}
	}
}

func (r *Result) add(m *Match) {
	r.ByClass[m.Class] = append(r.ByClass[m.Class], m)
	r.ByRoot[m.Root] = append(r.ByRoot[m.Root], m)
}

// Matches returns the matches for a class (possibly nil).
func (r *Result) Matches(c truth.Class) []*Match { return r.ByClass[c] }

// RootMatches returns all matches rooted at id.
func (r *Result) RootMatches(id netlist.ID) []*Match { return r.ByRoot[id] }

// HasClass reports whether root has a match of the given class and returns
// it.
func (r *Result) HasClass(root netlist.ID, c truth.Class) (*Match, bool) {
	for _, m := range r.ByRoot[root] {
		if m.Class == c {
			return m, true
		}
	}
	return nil, false
}

// coneWithin returns the gates from root down to (but excluding) the given
// leaves, sorted ascending.
func coneWithin(nl *netlist.Netlist, root netlist.ID, leaves []netlist.ID) []netlist.ID {
	isLeaf := make(map[netlist.ID]bool, len(leaves))
	for _, l := range leaves {
		isLeaf[l] = true
	}
	seen := map[netlist.ID]bool{root: true}
	stack := []netlist.ID{root}
	var out []netlist.ID
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, id)
		for _, f := range nl.Fanin(id) {
			if isLeaf[f] || seen[f] || !nl.Kind(f).IsComb() {
				continue
			}
			seen[f] = true
			stack = append(stack, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
