package bitslice

// Differential tests pinning the canonical-index fast path of Find against
// the original per-entry search (Options.SlowMatch) over every labeled
// generated article, and pinning the parallel scan against the serial one.
// The Result must be byte-identical — same classes, same argument order,
// same cones, same unknown-class keys — because downstream aggregation,
// golden reports and the conformance baseline all depend on the exact
// argument correspondences.

import (
	"fmt"
	"sort"
	"testing"

	"netlistre/internal/gen"
	"netlistre/internal/netlist"
	"netlistre/internal/truth"
)

// matchString renders a match deterministically for comparison.
func matchString(m *Match) string {
	return fmt.Sprintf("root=%d class=%v args=%v cone=%v", m.Root, m.Class, m.Args, m.Cone)
}

// resultDiff compares two Results exactly (contents and ordering) and
// reports the first discrepancy, or "" when identical.
func resultDiff(a, b *Result) string {
	if len(a.ByClass) != len(b.ByClass) {
		return fmt.Sprintf("ByClass size %d vs %d", len(a.ByClass), len(b.ByClass))
	}
	for cls, ms := range a.ByClass {
		bs := b.ByClass[cls]
		if len(ms) != len(bs) {
			return fmt.Sprintf("class %v: %d vs %d matches", cls, len(ms), len(bs))
		}
		for i := range ms {
			if matchString(ms[i]) != matchString(bs[i]) {
				return fmt.Sprintf("class %v match %d: %s vs %s", cls, i, matchString(ms[i]), matchString(bs[i]))
			}
		}
	}
	if len(a.ByRoot) != len(b.ByRoot) {
		return fmt.Sprintf("ByRoot size %d vs %d", len(a.ByRoot), len(b.ByRoot))
	}
	for root, ms := range a.ByRoot {
		bs := b.ByRoot[root]
		if len(ms) != len(bs) {
			return fmt.Sprintf("root %d: %d vs %d matches", root, len(ms), len(bs))
		}
		for i := range ms {
			if matchString(ms[i]) != matchString(bs[i]) {
				return fmt.Sprintf("root %d match %d: %s vs %s", root, i, matchString(ms[i]), matchString(bs[i]))
			}
		}
	}
	if (a.UnknownClasses == nil) != (b.UnknownClasses == nil) {
		return "UnknownClasses nil-ness differs"
	}
	if len(a.UnknownClasses) != len(b.UnknownClasses) {
		return fmt.Sprintf("UnknownClasses size %d vs %d", len(a.UnknownClasses), len(b.UnknownClasses))
	}
	var keys []string
	for k := range a.UnknownClasses {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ms, bs := a.UnknownClasses[k], b.UnknownClasses[k]
		if len(ms) != len(bs) {
			return fmt.Sprintf("unknown %q: %d vs %d", k, len(ms), len(bs))
		}
		for i := range ms {
			if matchString(ms[i]) != matchString(bs[i]) {
				return fmt.Sprintf("unknown %q match %d: %s vs %s", k, i, matchString(ms[i]), matchString(bs[i]))
			}
		}
	}
	return ""
}

// articles loads every labeled generated design once per test.
func articles(t *testing.T) map[string]*netlist.Netlist {
	t.Helper()
	out := make(map[string]*netlist.Netlist)
	for _, name := range gen.LabeledArticleNames() {
		nl, _, err := gen.LabeledArticle(name)
		if err != nil {
			t.Fatalf("article %s: %v", name, err)
		}
		out[name] = nl
	}
	return out
}

// TestFindIndexMatchesSlowPath: over every labeled article, the canonical
// index produces exactly the Result of the per-entry MatchAgainst search —
// the property the ISSUE gates the fast path on.
func TestFindIndexMatchesSlowPath(t *testing.T) {
	for name, nl := range articles(t) {
		for _, keepUnknown := range []bool{false, true} {
			fast := Find(nl, Options{KeepUnknown: keepUnknown, Workers: 1})
			slow := Find(nl, Options{KeepUnknown: keepUnknown, Workers: 1, SlowMatch: true})
			if d := resultDiff(fast, slow); d != "" {
				t.Errorf("%s (KeepUnknown=%v): fast vs slow: %s", name, keepUnknown, d)
			}
		}
	}
}

// TestFindWorkersDeterministic: the parallel scan must reproduce the serial
// Result exactly, independent of worker count.
func TestFindWorkersDeterministic(t *testing.T) {
	for name, nl := range articles(t) {
		serial := Find(nl, Options{KeepUnknown: true, Workers: 1})
		for _, workers := range []int{0, 2, 4} {
			par := Find(nl, Options{KeepUnknown: true, Workers: workers})
			if d := resultDiff(serial, par); d != "" {
				t.Errorf("%s: Workers=1 vs Workers=%d: %s", name, workers, d)
			}
		}
	}
}

// TestFindParallelRace drives the parallel path hard on the largest
// article so `go test -race` covers the worker/memo machinery.
func TestFindParallelRace(t *testing.T) {
	nl := gen.BigSoC()
	res := Find(nl, Options{KeepUnknown: true, Workers: 8})
	if len(res.ByClass) == 0 {
		t.Fatal("BigSoC produced no matches")
	}
}

// TestFindCustomLibraryIndex: a caller-supplied library takes the
// NewIndex path (not DefaultIndex); differential against the oracle.
func TestFindCustomLibraryIndex(t *testing.T) {
	lib := truth.Library()[:6]
	for name, nl := range articles(t) {
		fast := Find(nl, Options{Library: lib, Workers: 1})
		slow := Find(nl, Options{Library: lib, Workers: 1, SlowMatch: true})
		if d := resultDiff(fast, slow); d != "" {
			t.Errorf("%s: custom library fast vs slow: %s", name, d)
		}
	}
}
