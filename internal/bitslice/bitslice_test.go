package bitslice

import (
	"testing"

	"netlistre/internal/gen"
	"netlistre/internal/netlist"
	"netlistre/internal/truth"
)

func TestFullAdderSlices(t *testing.T) {
	nl := netlist.New("fa")
	a := gen.InputWord(nl, "a", 4)
	b := gen.InputWord(nl, "b", 4)
	cin := nl.AddInput("cin")
	sum, _ := gen.RippleAdder(nl, a, b, cin)
	res := Find(nl, Options{})

	sums := res.Matches(truth.ClassFASum)
	if len(sums) < 4 {
		t.Fatalf("found %d fa-sum matches, want >= 4", len(sums))
	}
	// Every sum output must be matched as an fa-sum slice.
	matchedRoots := make(map[netlist.ID]bool)
	for _, m := range sums {
		matchedRoots[m.Root] = true
	}
	for i, s := range sum {
		if !matchedRoots[s] {
			t.Errorf("sum bit %d not matched as fa-sum", i)
		}
	}
	carries := res.Matches(truth.ClassFACarry)
	if len(carries) < 3 {
		t.Errorf("found %d fa-carry matches, want >= 3", len(carries))
	}
}

func TestMuxSelectIdentification(t *testing.T) {
	nl := netlist.New("mux")
	sel := nl.AddInput("sel")
	d0 := gen.InputWord(nl, "a", 5)
	d1 := gen.InputWord(nl, "b", 5)
	out := gen.Mux2Word(nl, sel, d0, d1)
	res := Find(nl, Options{})

	muxes := res.Matches(truth.ClassMux2)
	found := 0
	for _, m := range muxes {
		isOut := false
		for _, o := range out {
			if m.Root == o {
				isOut = true
			}
		}
		if !isOut {
			continue
		}
		found++
		// Args are (d0, d1, s): the select must be the sel input.
		if m.Args[2] != sel {
			t.Errorf("mux root %d: select arg = %d, want %d", m.Root, m.Args[2], sel)
		}
		// Data args must be one bit of each data word.
		inWord := func(id netlist.ID, w gen.Word) bool {
			for _, b := range w {
				if b == id {
					return true
				}
			}
			return false
		}
		if !inWord(m.Args[0], d0) || !inWord(m.Args[1], d1) {
			t.Errorf("mux root %d: data args %v not aligned to words", m.Root, m.Args[:2])
		}
	}
	if found != 5 {
		t.Errorf("matched %d mux outputs, want 5", found)
	}
}

func TestSubtractorBorrowSlices(t *testing.T) {
	nl := netlist.New("sub")
	a := gen.InputWord(nl, "a", 4)
	b := gen.InputWord(nl, "b", 4)
	gen.RippleSubtractor(nl, a, b)
	res := Find(nl, Options{})
	if n := len(res.Matches(truth.ClassSubBorrow)); n < 3 {
		t.Errorf("found %d sub-borrow matches, want >= 3", n)
	}
}

func TestConeCoversSliceGates(t *testing.T) {
	nl := netlist.New("fa1")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	c := nl.AddInput("c")
	sum, carry := gen.FullAdder(nl, a, b, c)
	res := Find(nl, Options{})
	m, ok := res.HasClass(carry, truth.ClassFACarry)
	if !ok {
		t.Fatal("carry not matched")
	}
	// The carry cone must contain the or gate and the three and gates.
	if len(m.Cone) != 4 {
		t.Errorf("carry cone = %v, want 4 gates", m.Cone)
	}
	ms, ok := res.HasClass(sum, truth.ClassFASum)
	if !ok {
		t.Fatal("sum not matched")
	}
	if len(ms.Cone) != 1 {
		t.Errorf("sum cone = %v, want 1 gate (single xor3)", ms.Cone)
	}
}

func TestUnknownClassCollection(t *testing.T) {
	// A function outside the library: f = (a & b) | (c & d & e).
	nl := netlist.New("u")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	c := nl.AddInput("c")
	d := nl.AddInput("d")
	e := nl.AddInput("e")
	f := nl.AddGate(netlist.Or,
		nl.AddGate(netlist.And, a, b),
		nl.AddGate(netlist.And, c, d, e))
	res := Find(nl, Options{KeepUnknown: true})
	found := false
	for _, ms := range res.UnknownClasses {
		for _, m := range ms {
			if m.Root == f {
				found = true
			}
		}
	}
	if !found {
		t.Error("unknown 5-input function not collected")
	}
}

func TestPerRootClassDeduplication(t *testing.T) {
	nl := netlist.New("x")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	x := nl.AddGate(netlist.Xor, a, b)
	res := Find(nl, Options{})
	count := 0
	for _, m := range res.Matches(truth.ClassHASum) {
		if m.Root == x {
			count++
		}
	}
	if count != 1 {
		t.Errorf("xor root matched ha-sum %d times, want exactly 1", count)
	}
}
