package modmatch

import (
	"context"
	"testing"

	"netlistre/internal/gen"
	"netlistre/internal/module"
	"netlistre/internal/netlist"
	"netlistre/internal/words"
)

func mkWords(ws ...gen.Word) []words.Word {
	var out []words.Word
	for _, w := range ws {
		out = append(out, words.Word{Bits: w})
	}
	return out
}

func TestMatchAddSubALU(t *testing.T) {
	// The paper's flagship example: an 8-bit ALU whose operation is
	// selected by side inputs. With mode as a side input, the unit must
	// match "add" (mode=0) — and the side assignment must be reported.
	nl := netlist.New("alu")
	a := gen.InputWord(nl, "a", 8)
	b := gen.InputWord(nl, "b", 8)
	mode := nl.AddInput("mode")
	out, _ := gen.AddSub(nl, a, b, mode)

	ws := mkWords(a, b, out)
	mods := Match(context.Background(), nl, ws, Options{})
	var got *module.Module
	for _, m := range mods {
		if m.Attr["op"] == "add" {
			got = m
		}
	}
	if got == nil {
		t.Fatalf("add/sub unit not matched as add; modules: %d", len(mods))
	}
	if got.Width != 8 {
		t.Errorf("width = %d, want 8", got.Width)
	}
	// The mode side input must have been set to 0.
	if v, ok := got.Attr["side"+itoa(int(mode))]; !ok || v != "0" {
		t.Errorf("side assignment for mode = %q, want 0 (attrs %v)", v, got.Attr)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestMatchSubtractor(t *testing.T) {
	nl := netlist.New("sub")
	a := gen.InputWord(nl, "a", 6)
	b := gen.InputWord(nl, "b", 6)
	diff, _ := gen.RippleSubtractor(nl, a, b)
	mods := Match(context.Background(), nl, mkWords(a, b, gen.Word(diff)), Options{})
	found := false
	for _, m := range mods {
		if m.Attr["op"] == "sub" {
			found = true
		}
	}
	if !found {
		t.Errorf("subtractor not matched (%d modules)", len(mods))
	}
}

func TestMatchBitwiseXor(t *testing.T) {
	nl := netlist.New("bx")
	a := gen.InputWord(nl, "a", 4)
	b := gen.InputWord(nl, "b", 4)
	x := gen.Bitwise(nl, netlist.Xor, a, b)
	mods := Match(context.Background(), nl, mkWords(a, b, x), Options{})
	found := false
	for _, m := range mods {
		if m.Attr["op"] == "xor" {
			found = true
		}
	}
	if !found {
		t.Errorf("bitwise xor not matched")
	}
}

func TestMatchRotate(t *testing.T) {
	nl := netlist.New("rot")
	a := gen.InputWord(nl, "a", 6)
	r := gen.RotateLeft(nl, a, 2)
	mods := Match(context.Background(), nl, mkWords(a, r), Options{})
	found := false
	for _, m := range mods {
		if m.Attr["op"] == "rotl2" {
			found = true
		}
	}
	if !found {
		t.Errorf("rotate-left-2 not matched (%d mods)", len(mods))
	}
}

func TestNoMatchForRandomLogic(t *testing.T) {
	// An adder output word against unrelated random logic: no match.
	nl := netlist.New("rand")
	a := gen.InputWord(nl, "a", 4)
	b := gen.InputWord(nl, "b", 4)
	var out gen.Word
	for i := range a {
		// A function that is none of the library ops: (a&b) | (a>>?).
		j := (i + 1) % 4
		out = append(out, nl.AddGate(netlist.Or,
			nl.AddGate(netlist.And, a[i], b[i]),
			nl.AddGate(netlist.And, a[j], b[i])))
	}
	mods := Match(context.Background(), nl, mkWords(a, b, out), Options{})
	for _, m := range mods {
		t.Errorf("random logic matched %s", m.Name)
	}
}

func TestCandidateCarving(t *testing.T) {
	nl := netlist.New("carve")
	a := gen.InputWord(nl, "a", 4)
	b := gen.InputWord(nl, "b", 4)
	mode := nl.AddInput("mode")
	out, _ := gen.AddSub(nl, a, b, mode)
	cands := Candidates(nl, mkWords(a, b, out), Options{})
	if len(cands) != 1 {
		t.Fatalf("got %d candidates, want 1", len(cands))
	}
	c := cands[0]
	if len(c.Inputs) != 2 {
		t.Errorf("input words = %d, want 2", len(c.Inputs))
	}
	if len(c.Side) != 1 || c.Side[0] != mode {
		t.Errorf("side inputs = %v, want [mode]", c.Side)
	}
	if len(c.Gates) < 4*5 {
		t.Errorf("carved region has only %d gates", len(c.Gates))
	}
}
