// Package modmatch implements Algorithm 4 of the paper (Section II-D):
// module generation between identified words and QBF-based matching
// against a reference library.
//
// For each candidate output word the combinational region back to other
// words is carved out; any remaining cone inputs become side inputs Y. A
// reference implementation of each library operation is instantiated over
// the candidate's input words (in a scratch clone of the netlist, so the
// original is untouched), and the 2QBF question ∃Y ∀X . C(X,Y) == C'(X) is
// decided with the CEGAR solver. A match identifies both the operation and
// the side-input setting that selects it (e.g. the add/sub mode bit).
package modmatch

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"netlistre/internal/bitsim"
	"netlistre/internal/module"
	"netlistre/internal/netlist"
	"netlistre/internal/qbf"
	"netlistre/internal/truth"
	"netlistre/internal/words"
)

// Options tunes module matching.
type Options struct {
	// MaxSideInputs bounds |Y|; candidates with more side inputs are
	// skipped (the synthesis space doubles per side input).
	MaxSideInputs int
	// MinWidth skips narrow candidate words (narrow "words" are usually
	// incidental signal groups, and 2-3 bit library matches are noise).
	MinWidth int
	// MaxWidth bounds the word width matched (QBF cost grows with width).
	MaxWidth int
	// MaxRotate bounds the rotation/shift constants tried.
	MaxRotate int
	// Workers bounds the matching worker pool (0 = GOMAXPROCS). The
	// caller's scheduler sets this so that the stage respects the shared
	// analysis-wide worker budget.
	Workers int
	// DisablePrefilter turns off the bit-parallel simulation prefilter
	// that refutes non-matching reference operations before the QBF
	// solver runs. The prefilter is sound (it only skips instances whose
	// ∃Y∀X question is provably false), so this knob exists purely for
	// differential testing and measurement.
	DisablePrefilter bool
}

func (o *Options) defaults() {
	if o.MaxSideInputs <= 0 {
		o.MaxSideInputs = 6
	}
	if o.MinWidth <= 0 {
		o.MinWidth = 4
	}
	if o.MaxWidth <= 0 {
		o.MaxWidth = 16
	}
	if o.MaxRotate <= 0 {
		o.MaxRotate = 4
	}
}

// Candidate is a carved-out unknown module.
type Candidate struct {
	Out    words.Word
	Inputs []words.Word // words found on the cone boundary
	Side   []netlist.ID // remaining boundary signals (Y)
	Gates  []netlist.ID // combinational region between Out and the boundary
}

// Match finds word-level operator modules. wordSet supplies the words
// (from aggregation and propagation). Canceling ctx stops the matching
// cooperatively: candidates already matched are returned, the rest are
// skipped.
func Match(ctx context.Context, nl *netlist.Netlist, wordSet []words.Word, opt Options) []*module.Module {
	opt.defaults()
	cands := Candidates(nl, wordSet, opt)
	canceled := func() bool { return ctx != nil && ctx.Err() != nil }

	// Candidates are independent (each works on its own extracted region),
	// so match them concurrently; results are collected by index to keep
	// the output deterministic.
	results := make([]*module.Module, len(cands))
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers > 1 {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					if canceled() {
						continue // drain remaining indices without work
					}
					results[i] = matchCandidate(ctx, nl, cands[i], opt)
				}
			}()
		}
		for i := range cands {
			next <- i
		}
		close(next)
		wg.Wait()
	} else {
		for i := range cands {
			if canceled() {
				break
			}
			results[i] = matchCandidate(ctx, nl, cands[i], opt)
		}
	}

	var out []*module.Module
	seen := make(map[string]bool)
	for _, m := range results {
		if m == nil {
			continue
		}
		key := m.Attr["op"] + "/" + elementKey(m.Elements)
		if seen[key] {
			continue // same region matched via an equivalent word
		}
		seen[key] = true
		out = append(out, m)
	}
	return out
}

func elementKey(ids []netlist.ID) string {
	b := make([]byte, 0, len(ids)*4)
	for _, id := range ids {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}

// Candidates carves candidate modules: for every word whose bits are gates,
// the cone is cut at the bits of the other words.
func Candidates(nl *netlist.Netlist, wordSet []words.Word, opt Options) []Candidate {
	opt.defaults()
	// Map from signal to the words containing it.
	wordOf := make(map[netlist.ID][]int)
	for wi, w := range wordSet {
		for _, b := range w.Bits {
			wordOf[b] = append(wordOf[b], wi)
		}
	}
	var cands []Candidate
	for wi, w := range wordSet {
		if len(w.Bits) < opt.MinWidth || len(w.Bits) > opt.MaxWidth {
			continue
		}
		allGates := true
		for _, b := range w.Bits {
			if !nl.Kind(b).IsGate() {
				allGates = false
				break
			}
		}
		if !allGates {
			continue
		}
		cand, ok := carve(nl, wordSet, wordOf, wi)
		if !ok || len(cand.Inputs) == 0 || len(cand.Inputs) > 2 {
			continue
		}
		if len(cand.Side) > opt.MaxSideInputs {
			continue
		}
		cands = append(cands, cand)
	}
	return cands
}

// carve computes the combinational region from word wi's bits down to the
// bits of other words (cut points) or cone inputs.
func carve(nl *netlist.Netlist, wordSet []words.Word, wordOf map[netlist.ID][]int, wi int) (Candidate, bool) {
	w := wordSet[wi]
	inW := make(map[netlist.ID]bool, len(w.Bits))
	for _, b := range w.Bits {
		inW[b] = true
	}
	seen := make(map[netlist.ID]bool)
	boundary := make(map[netlist.ID]bool)
	var gates []netlist.ID
	stack := append([]netlist.ID(nil), w.Bits...)
	for _, b := range w.Bits {
		seen[b] = true
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		gates = append(gates, id)
		for _, f := range nl.Fanin(id) {
			if seen[f] || boundary[f] {
				continue
			}
			// Cut at other words' bits and at cone inputs.
			isCut := nl.Kind(f).IsConeInput() || !nl.Kind(f).IsGate()
			if !isCut {
				for _, owi := range wordOf[f] {
					if owi != wi {
						isCut = true
						break
					}
				}
			}
			if isCut {
				boundary[f] = true
				continue
			}
			seen[f] = true
			stack = append(stack, f)
		}
	}

	// Which words are fully present on the boundary?
	var inputWords []words.Word
	usedBits := make(map[netlist.ID]bool)
	for owi, ow := range wordSet {
		if owi == wi || len(ow.Bits) != len(w.Bits) {
			continue
		}
		all := true
		for _, b := range ow.Bits {
			if !boundary[b] {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		dup := false
		for _, b := range ow.Bits {
			if usedBits[b] {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		for _, b := range ow.Bits {
			usedBits[b] = true
		}
		inputWords = append(inputWords, ow)
		if len(inputWords) == 2 {
			break
		}
	}
	var side []netlist.ID
	for b := range boundary {
		if !usedBits[b] {
			side = append(side, b)
		}
	}
	side = netlist.SortedIDs(side)
	sort.Slice(gates, func(i, j int) bool { return gates[i] < gates[j] })
	return Candidate{Out: w, Inputs: inputWords, Side: side, Gates: gates}, true
}

// refBuilder instantiates a reference operation over the candidate's input
// words in a scratch netlist, returning the reference output bits.
type refBuilder struct {
	name  string
	arity int
	build func(nl *netlist.Netlist, a, b []netlist.ID) []netlist.ID
}

func referenceLibrary(opt Options) []refBuilder {
	lib := []refBuilder{
		{"add", 2, func(nl *netlist.Netlist, a, b []netlist.ID) []netlist.ID {
			return rippleAdd(nl, a, b, nl.AddConst(false))
		}},
		{"sub", 2, func(nl *netlist.Netlist, a, b []netlist.ID) []netlist.ID {
			// a - b = a + ~b + 1.
			nb := make([]netlist.ID, len(b))
			for i := range b {
				nb[i] = nl.AddGate(netlist.Not, b[i])
			}
			return rippleAdd(nl, a, nb, nl.AddConst(true))
		}},
		{"and", 2, bitwiseRef(netlist.And)},
		{"or", 2, bitwiseRef(netlist.Or)},
		{"xor", 2, bitwiseRef(netlist.Xor)},
		{"not", 1, func(nl *netlist.Netlist, a, _ []netlist.ID) []netlist.ID {
			out := make([]netlist.ID, len(a))
			for i := range a {
				out[i] = nl.AddGate(netlist.Not, a[i])
			}
			return out
		}},
		{"neg", 1, func(nl *netlist.Netlist, a, _ []netlist.ID) []netlist.ID {
			// Two's complement: ~a + 1.
			na := make([]netlist.ID, len(a))
			for i := range a {
				na[i] = nl.AddGate(netlist.Not, a[i])
			}
			zero := make([]netlist.ID, len(a))
			z := nl.AddConst(false)
			for i := range zero {
				zero[i] = z
			}
			return rippleAdd(nl, na, zero, nl.AddConst(true))
		}},
	}
	for k := 1; k <= opt.MaxRotate; k++ {
		k := k
		lib = append(lib, refBuilder{fmt.Sprintf("rotl%d", k), 1,
			func(nl *netlist.Netlist, a, _ []netlist.ID) []netlist.ID {
				out := make([]netlist.ID, len(a))
				for i := range a {
					out[(i+k)%len(a)] = nl.AddGate(netlist.Buf, a[i])
				}
				return out
			}})
		lib = append(lib, refBuilder{fmt.Sprintf("shl%d", k), 1,
			func(nl *netlist.Netlist, a, _ []netlist.ID) []netlist.ID {
				out := make([]netlist.ID, len(a))
				z := nl.AddConst(false)
				for i := 0; i < k && i < len(a); i++ {
					out[i] = nl.AddGate(netlist.Buf, z)
				}
				for i := k; i < len(a); i++ {
					out[i] = nl.AddGate(netlist.Buf, a[i-k])
				}
				return out
			}})
	}
	return lib
}

func bitwiseRef(kind netlist.Kind) func(nl *netlist.Netlist, a, b []netlist.ID) []netlist.ID {
	return func(nl *netlist.Netlist, a, b []netlist.ID) []netlist.ID {
		out := make([]netlist.ID, len(a))
		for i := range a {
			out[i] = nl.AddGate(kind, a[i], b[i])
		}
		return out
	}
}

func rippleAdd(nl *netlist.Netlist, a, b []netlist.ID, cin netlist.ID) []netlist.ID {
	carry := cin
	out := make([]netlist.ID, len(a))
	for i := range a {
		out[i] = nl.AddGate(netlist.Xor, a[i], b[i], carry)
		carry = nl.AddGate(netlist.Or,
			nl.AddGate(netlist.And, a[i], b[i]),
			nl.AddGate(netlist.And, b[i], carry),
			nl.AddGate(netlist.And, carry, a[i]))
	}
	return out
}

// MatchOne matches a single candidate against the reference library
// (exported for instrumentation and fine-grained control).
func MatchOne(ctx context.Context, nl *netlist.Netlist, cand Candidate, opt Options) *module.Module {
	opt.defaults()
	return matchCandidate(ctx, nl, cand, opt)
}

// extractRegion rebuilds the candidate's carved region as a standalone
// netlist whose primary inputs are the input-word bits and side inputs.
// Cutting at the word boundary is essential: the 2QBF question quantifies
// over the WORDS, not over the netlist's distant primary inputs, and
// encoding past the cut would leave boundary signals in neither X nor Y.
func extractRegion(nl *netlist.Netlist, cand Candidate) (*netlist.Netlist, map[netlist.ID]netlist.ID) {
	sub := netlist.New("region")
	m := make(map[netlist.ID]netlist.ID)
	for wi, w := range cand.Inputs {
		for bi, b := range w.Bits {
			m[b] = sub.AddInput(fmt.Sprintf("w%d_%d", wi, bi))
		}
	}
	for si, s := range cand.Side {
		m[s] = sub.AddInput(fmt.Sprintf("y%d", si))
	}
	inRegion := make(map[netlist.ID]bool, len(cand.Gates))
	for _, g := range cand.Gates {
		inRegion[g] = true
	}
	var resolve func(id netlist.ID) netlist.ID
	resolve = func(id netlist.ID) netlist.ID {
		if r, ok := m[id]; ok {
			return r
		}
		node := nl.Node(id)
		var r netlist.ID
		switch {
		case node.Kind == netlist.Const0 || node.Kind == netlist.Const1:
			r = sub.AddConst(node.Kind == netlist.Const1)
		case !inRegion[id]:
			// Stray boundary signal (should be rare): free input.
			r = sub.AddInput(fmt.Sprintf("ext%d", id))
		default:
			fan := make([]netlist.ID, len(node.Fanin))
			for i, f := range node.Fanin {
				fan[i] = resolve(f)
			}
			r = sub.AddGateLike(node, fan...)
		}
		m[id] = r
		return r
	}
	for _, b := range cand.Out.Bits {
		resolve(b)
	}
	return sub, m
}

// simRefuteRounds bounds the random input batches simRefute tries before
// handing the instance to the QBF solver.
const simRefuteRounds = 8

// simRefute decides ∃Y ∀X . outs(X,Y) == refOuts(X) negatively by
// bit-parallel simulation when it can: the 2^|Y| side-input assignments are
// spread across the 64 lanes of one word (lane L carries Y = L's bits, and
// an independent random X draw), so one RunCone tests every side-input
// setting at once. A lane mismatch refutes its Y assignment; when every
// assignment has been refuted, the QBF instance is provably UNSAT and the
// solver call is skipped. A true result is always sound — each Y has a
// concrete X witnessing outs != refOuts — and unknown lanes (reachable
// stray inputs outside X and Y) never count as mismatches.
func simRefute(region *netlist.Netlist, outs, refOuts, forall, exists []netlist.ID, rng *rand.Rand) bool {
	nY := len(exists)
	if nY > truth.MaxVars {
		return false // side-input space does not fit the lanes
	}
	lanes := 1 << uint(nY)
	full := truth.Mask(nY)
	assign := make(map[netlist.ID]bitsim.Vector, nY+len(forall))
	for i, y := range exists {
		assign[y] = bitsim.Known(truth.Var(i, truth.MaxVars).Bits)
	}
	roots := make([]netlist.ID, 0, len(outs)+len(refOuts))
	roots = append(roots, outs...)
	roots = append(roots, refOuts...)
	var refuted uint64
	for round := 0; round < simRefuteRounds && refuted != full; round++ {
		for _, x := range forall {
			assign[x] = bitsim.Known(rng.Uint64())
		}
		vals := bitsim.RunCone(region, roots, assign)
		var diff uint64
		for i := range outs {
			a, b := vals[outs[i]], vals[refOuts[i]]
			diff |= (a.Val ^ b.Val) &^ (a.Unk | b.Unk)
		}
		// Lanes repeat the Y assignments with period 2^nY; fold so a
		// mismatch anywhere refutes the lane's assignment.
		for sh := lanes; sh < bitsim.Lanes; sh *= 2 {
			diff |= diff >> uint(sh)
		}
		refuted |= diff & full
	}
	return refuted == full
}

// matchCandidate tries every library operation (and both operand orders for
// the asymmetric ones) against the candidate. Matching happens on the
// extracted region netlist, so the QBF instances stay small and the
// quantifier structure is exact.
func matchCandidate(ctx context.Context, nl *netlist.Netlist, cand Candidate, opt Options) *module.Module {
	region, rmap := extractRegion(nl, cand)
	var forall []netlist.ID
	for _, w := range cand.Inputs {
		for _, b := range w.Bits {
			forall = append(forall, rmap[b])
		}
	}
	var exists []netlist.ID
	for _, s := range cand.Side {
		exists = append(exists, rmap[s])
	}
	outs := make([]netlist.ID, len(cand.Out.Bits))
	for i, b := range cand.Out.Bits {
		outs[i] = rmap[b]
	}
	// Deterministically seeded per candidate; the prefilter's outcome only
	// gates provably-false QBF instances, so the seed never changes results.
	rng := rand.New(rand.NewSource(0x5eed<<20 ^ int64(len(cand.Gates))<<8 ^ int64(cand.Out.Bits[0])))

	for _, ref := range referenceLibrary(opt) {
		if ctx != nil && ctx.Err() != nil {
			return nil
		}
		if ref.arity != len(cand.Inputs) {
			continue
		}
		orders := [][2]int{{0, 1}}
		if ref.arity == 2 && ref.name == "sub" {
			orders = append(orders, [2]int{1, 0})
		}
		if ref.arity == 1 {
			orders = [][2]int{{0, 0}}
		}
		for _, ord := range orders {
			var a, b []netlist.ID
			for _, x := range cand.Inputs[ord[0]].Bits {
				a = append(a, rmap[x])
			}
			if ref.arity == 2 {
				for _, x := range cand.Inputs[ord[1]].Bits {
					b = append(b, rmap[x])
				}
			}
			refOuts := ref.build(region, a, b)
			if !opt.DisablePrefilter && simRefute(region, outs, refOuts, forall, exists, rng) {
				continue // provably no side-input setting works
			}
			res := qbf.SolveForallEqualWord(ctx, region, outs, refOuts, forall, exists, 0)
			if !res.Found {
				continue
			}
			m := module.New(module.WordOp, len(cand.Out.Bits), cand.Gates)
			m.Name = fmt.Sprintf("%s[%d]", ref.name, len(cand.Out.Bits))
			m.SetAttr("op", ref.name)
			m.SetPort("out", cand.Out.Bits)
			m.SetPort("a", cand.Inputs[ord[0]].Bits)
			if ref.arity == 2 {
				m.SetPort("b", cand.Inputs[ord[1]].Bits)
			}
			m.SetPort("side", cand.Side)
			back := make(map[netlist.ID]netlist.ID, len(cand.Side))
			for _, s := range cand.Side {
				back[rmap[s]] = s
			}
			for y, v := range res.Assignment {
				val := "0"
				if v {
					val = "1"
				}
				m.SetAttr(fmt.Sprintf("side%d", back[y]), val)
			}
			return m
		}
	}
	return nil
}
