package modmatch

// Differential tests for the bit-parallel QBF prefilter: matching with the
// prefilter on must produce exactly the modules produced with it off, and
// the prefilter itself must never refute a satisfiable instance.

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"netlistre/internal/gen"
	"netlistre/internal/module"
	"netlistre/internal/netlist"
	"netlistre/internal/qbf"
	"netlistre/internal/words"
)

// moduleKey renders a module deterministically for set comparison.
func moduleKey(m *module.Module) string {
	attrs := make([]string, 0, len(m.Attr))
	for k, v := range m.Attr {
		attrs = append(attrs, k+"="+v)
	}
	sort.Strings(attrs)
	return fmt.Sprintf("%s %v %v", m.Name, m.Elements, attrs)
}

func moduleKeys(ms []*module.Module) []string {
	keys := make([]string, len(ms))
	for i, m := range ms {
		keys[i] = moduleKey(m)
	}
	return keys
}

// prefilterCircuits builds the matching scenarios the package tests cover —
// ALUs with side inputs, subtractors, bitwise ops, rotates, and
// deliberately unmatched random logic.
func prefilterCircuits() map[string]struct {
	nl *netlist.Netlist
	ws []words.Word
} {
	out := make(map[string]struct {
		nl *netlist.Netlist
		ws []words.Word
	})
	add := func(name string, nl *netlist.Netlist, ws []words.Word) {
		out[name] = struct {
			nl *netlist.Netlist
			ws []words.Word
		}{nl, ws}
	}

	{
		nl := netlist.New("alu")
		a := gen.InputWord(nl, "a", 8)
		b := gen.InputWord(nl, "b", 8)
		mode := nl.AddInput("mode")
		sum, _ := gen.AddSub(nl, a, b, mode)
		add("addsub", nl, mkWords(a, b, sum))
	}
	{
		nl := netlist.New("sub")
		a := gen.InputWord(nl, "a", 6)
		b := gen.InputWord(nl, "b", 6)
		diff, _ := gen.RippleSubtractor(nl, a, b)
		add("sub", nl, mkWords(a, b, gen.Word(diff)))
	}
	{
		nl := netlist.New("bx")
		a := gen.InputWord(nl, "a", 4)
		b := gen.InputWord(nl, "b", 4)
		add("xor", nl, mkWords(a, b, gen.Bitwise(nl, netlist.Xor, a, b)))
	}
	{
		nl := netlist.New("rot")
		a := gen.InputWord(nl, "a", 6)
		add("rotl2", nl, mkWords(a, gen.RotateLeft(nl, a, 2)))
	}
	{
		nl := netlist.New("rand")
		a := gen.InputWord(nl, "a", 4)
		b := gen.InputWord(nl, "b", 4)
		var w gen.Word
		for i := range a {
			j := (i + 1) % 4
			w = append(w, nl.AddGate(netlist.Or,
				nl.AddGate(netlist.And, a[i], b[i]),
				nl.AddGate(netlist.And, a[j], b[i])))
		}
		add("random", nl, mkWords(a, b, w))
	}
	return out
}

// TestPrefilterDifferential: Match with the prefilter enabled must return
// exactly the modules of the oracle run with it disabled.
func TestPrefilterDifferential(t *testing.T) {
	for name, c := range prefilterCircuits() {
		on := Match(context.Background(), c.nl, c.ws, Options{})
		off := Match(context.Background(), c.nl, c.ws, Options{DisablePrefilter: true})
		kOn, kOff := moduleKeys(on), moduleKeys(off)
		if len(kOn) != len(kOff) {
			t.Errorf("%s: %d modules with prefilter, %d without", name, len(kOn), len(kOff))
			continue
		}
		for i := range kOn {
			if kOn[i] != kOff[i] {
				t.Errorf("%s module %d: %q (prefilter) vs %q (oracle)", name, i, kOn[i], kOff[i])
			}
		}
	}
}

// TestPrefilterNeverRefutesSAT: for every candidate and every reference
// instance across the scenario circuits, if the prefilter refutes then the
// QBF solver must agree the instance is unsatisfiable. This checks the
// soundness claim directly at the instance level rather than end to end.
func TestPrefilterNeverRefutesSAT(t *testing.T) {
	for name, c := range prefilterCircuits() {
		var opt Options
		opt.defaults()
		for _, cand := range Candidates(c.nl, c.ws, opt) {
			region, rmap := extractRegion(c.nl, cand)
			var forall []netlist.ID
			for _, w := range cand.Inputs {
				for _, b := range w.Bits {
					forall = append(forall, rmap[b])
				}
			}
			var exists []netlist.ID
			for _, s := range cand.Side {
				exists = append(exists, rmap[s])
			}
			outs := make([]netlist.ID, len(cand.Out.Bits))
			for i, b := range cand.Out.Bits {
				outs[i] = rmap[b]
			}
			rng := rand.New(rand.NewSource(99))
			for _, ref := range referenceLibrary(opt) {
				if ref.arity != len(cand.Inputs) {
					continue
				}
				var a, b []netlist.ID
				for _, x := range cand.Inputs[0].Bits {
					a = append(a, rmap[x])
				}
				if ref.arity == 2 {
					for _, x := range cand.Inputs[1].Bits {
						b = append(b, rmap[x])
					}
				}
				refOuts := ref.build(region, a, b)
				if !simRefute(region, outs, refOuts, forall, exists, rng) {
					continue
				}
				res := qbf.SolveForallEqualWord(context.Background(), region, outs, refOuts, forall, exists, 0)
				if res.Found {
					t.Errorf("%s: prefilter refuted %s but QBF finds a side assignment", name, ref.name)
				}
			}
		}
	}
}
