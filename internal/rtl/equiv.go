package rtl

// The round-trip equivalence checker. A pure-passthrough emission must
// elaborate to a netlist isomorphic to the original, so it is compared
// strictly by netlist.Fingerprint. Once templates or always blocks are
// involved the expansion is functionally — not structurally — equal, so
// the check switches to bitsim: identical stimulus on both netlists,
// comparing every primary output and every latch next-state, exhaustively
// when the state space is small and with random patterns plus exhaustive
// small-cone truth tables otherwise.

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"

	"netlistre/internal/bitsim"
	"netlistre/internal/netlist"
	"netlistre/internal/truth"
)

// exhaustiveVars is the input+state count up to which the bitsim path
// enumerates every pattern (2^12 = 64 bit-parallel rounds).
const exhaustiveVars = 12

// randomRounds is the number of 64-pattern rounds on the random path.
const randomRounds = 16

// maxMismatchReports bounds EquivResult.Mismatches.
const maxMismatchReports = 8

// Check re-elaborates an emission and verifies it against the original.
// A non-nil error means the check could not run (unparseable emission);
// an inequivalent design is reported in the result, not as an error.
func Check(orig *netlist.Netlist, er *EmitResult) (*EquivResult, error) {
	if orig == nil || er == nil {
		return nil, fmt.Errorf("rtl: nil arguments to Check")
	}
	elab, err := Elaborate(bytes.NewReader(er.Verilog))
	if err != nil {
		return nil, fmt.Errorf("rtl: emitted RTL does not elaborate: %w", err)
	}
	res := &EquivResult{}
	if er.Stats.Instances == 0 && er.Stats.AlwaysBlocks == 0 {
		rc := renamedCopy(orig, er)
		if rc.Fingerprint() == elab.Fingerprint() {
			res.Equivalent = true
			res.Method = "fingerprint"
			return res, nil
		}
		res.FingerprintMismatch = true
	}
	res.Method = "bitsim"
	bitsimCompare(orig, elab, er, res)
	return res, nil
}

// renamedCopy rebuilds orig with the emitted node, output, and design
// names applied, so a passthrough emission is fingerprint-comparable.
func renamedCopy(orig *netlist.Netlist, er *EmitResult) *netlist.Netlist {
	nl := netlist.New(er.design)
	newID := make([]netlist.ID, orig.Len())
	var anyID netlist.ID = netlist.Nil
	for id := netlist.ID(0); int(id) < orig.Len(); id++ {
		name := er.NodeName[id]
		switch k := orig.Kind(id); {
		case k == netlist.Input:
			newID[id] = nl.AddInput(name)
		case k == netlist.Const0 || k == netlist.Const1:
			newID[id] = nl.AddConst(k == netlist.Const1)
			if nl.Node(newID[id]).Name == "" {
				nl.SetName(newID[id], name)
			}
		case k == netlist.Latch:
			ph := anyID
			if f := orig.Fanin(id)[0]; f < id {
				ph = newID[f]
			}
			newID[id] = nl.AddNamedLatch(name, ph)
		default:
			fanin := make([]netlist.ID, len(orig.Fanin(id)))
			for i, f := range orig.Fanin(id) {
				fanin[i] = newID[f]
			}
			newID[id] = nl.AddGateLike(orig.Node(id), fanin...)
			nl.SetName(newID[id], name)
		}
		if anyID == netlist.Nil {
			anyID = newID[id]
		}
	}
	for _, l := range orig.Latches() {
		nl.SetLatchD(newID[l], newID[orig.Fanin(l)[0]])
	}
	for i, o := range orig.Outputs() {
		nl.MarkOutput(er.outNames[i], newID[o.Driver])
	}
	return nl
}

// signalPair is one compared signal: a primary output or a latch D.
type signalPair struct {
	label string
	o, e  netlist.ID // the compared nodes in orig / elab
}

func bitsimCompare(orig, elab *netlist.Netlist, er *EmitResult, res *EquivResult) {
	fail := func(format string, a ...any) {
		res.Equivalent = false
		if len(res.Mismatches) < maxMismatchReports {
			res.Mismatches = append(res.Mismatches, fmt.Sprintf(format, a...))
		}
	}

	// Pair the free variables (inputs and latch outputs) by emitted name.
	type varPair struct{ o, e netlist.ID }
	var vars []varPair
	pairVar := func(id netlist.ID, wantKind netlist.Kind, what string) bool {
		name, ok := er.NodeName[id]
		if !ok {
			fail("%s %s has no emitted name", what, orig.NameOf(id))
			return false
		}
		eid := elab.FindByName(name)
		if eid == netlist.Nil || elab.Kind(eid) != wantKind {
			fail("%s %s missing from elaboration", what, name)
			return false
		}
		vars = append(vars, varPair{o: id, e: eid})
		return true
	}
	for _, id := range orig.Inputs() {
		if !pairVar(id, netlist.Input, "input") {
			return
		}
	}
	if len(elab.Inputs()) != len(orig.Inputs()) {
		fail("input count differs: %d vs %d", len(orig.Inputs()), len(elab.Inputs()))
		return
	}
	origLatches := orig.Latches()
	for _, id := range origLatches {
		if !pairVar(id, netlist.Latch, "state bit") {
			return
		}
	}
	if len(elab.Latches()) != len(origLatches) {
		fail("state bit count differs: %d vs %d", len(origLatches), len(elab.Latches()))
		return
	}

	// Compared signals: primary outputs and latch next-states.
	var pairs []signalPair
	eOuts := elab.Outputs()
	if len(eOuts) != len(orig.Outputs()) {
		fail("output count differs: %d vs %d", len(orig.Outputs()), len(eOuts))
		return
	}
	for i, o := range orig.Outputs() {
		if eOuts[i].Name != er.outNames[i] {
			fail("output %d renamed to %s", i, eOuts[i].Name)
			return
		}
		pairs = append(pairs, signalPair{
			label: "output " + er.outNames[i], o: o.Driver, e: eOuts[i].Driver})
	}
	// vars holds input pairs first, then latch pairs in origLatches
	// order, so vars[len(inputs)+i].e is the elaborated latch for
	// origLatches[i]; its fanin is the elaborated next-state.
	for i, id := range origLatches {
		pairs = append(pairs, signalPair{
			label: "state " + er.NodeName[id],
			o:     orig.Fanin(id)[0], e: elab.Fanin(vars[len(orig.Inputs())+i].e)[0]})
	}

	var oRoots, eRoots []netlist.ID
	for _, pr := range pairs {
		oRoots = append(oRoots, pr.o)
		eRoots = append(eRoots, pr.e)
	}

	nVars := len(vars)
	exhaustive := nVars <= exhaustiveVars
	rounds := randomRounds
	if exhaustive {
		rounds = (1<<uint(nVars) + bitsim.Lanes - 1) / bitsim.Lanes
	}
	rng := rand.New(rand.NewSource(1))
	bad := map[string]bool{}
	for round := 0; round < rounds; round++ {
		oAssign := make(map[netlist.ID]bitsim.Vector, nVars)
		eAssign := make(map[netlist.ID]bitsim.Vector, nVars)
		var mask uint64 = ^uint64(0)
		if exhaustive {
			base := round * bitsim.Lanes
			total := 1 << uint(nVars)
			if rem := total - base; rem < bitsim.Lanes {
				mask = 1<<uint(rem) - 1
			}
			for vi, vp := range vars {
				var bits uint64
				for lane := 0; lane < bitsim.Lanes && base+lane < total; lane++ {
					if (base+lane)>>uint(vi)&1 == 1 {
						bits |= 1 << uint(lane)
					}
				}
				oAssign[vp.o] = bitsim.Known(bits)
				eAssign[vp.e] = bitsim.Known(bits)
			}
		} else {
			for _, vp := range vars {
				v := rng.Uint64()
				oAssign[vp.o] = bitsim.Known(v)
				eAssign[vp.e] = bitsim.Known(v)
			}
		}
		oRes := bitsim.RunCone(orig, oRoots, oAssign)
		eRes := bitsim.RunCone(elab, eRoots, eAssign)
		for _, pr := range pairs {
			if bad[pr.label] {
				continue
			}
			vo, ve := oRes[pr.o], eRes[pr.e]
			if (vo.Val^ve.Val)&mask&^vo.Unk&^ve.Unk != 0 || (vo.Unk^ve.Unk)&mask != 0 {
				bad[pr.label] = true
				fail("%s differs under simulation", pr.label)
			}
		}
		res.Patterns += popcountMask(mask)
	}

	// Exhaustive small-cone comparison: for every compared signal whose
	// original support fits a truth table, require identical tables.
	for _, pr := range pairs {
		if bad[pr.label] {
			continue
		}
		leaves := coneInputs(orig, pr.o)
		if len(leaves) > truth.MaxVars {
			continue
		}
		sort.Slice(leaves, func(i, j int) bool {
			return er.NodeName[leaves[i]] < er.NodeName[leaves[j]]
		})
		eLeaves := make([]netlist.ID, len(leaves))
		ok := true
		for i, l := range leaves {
			eLeaves[i] = elab.FindByName(er.NodeName[l])
			if eLeaves[i] == netlist.Nil {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		to, ok1 := bitsim.TableOf(orig, pr.o, leaves)
		te, ok2 := bitsim.TableOf(elab, pr.e, eLeaves)
		if !ok1 || !ok2 {
			continue // the elaborated cone widened; random patterns cover it
		}
		res.ExactCones++
		if to.Bits&truth.Mask(to.N) != te.Bits&truth.Mask(te.N) || to.N != te.N {
			bad[pr.label] = true
			fail("%s differs on exhaustive cone table", pr.label)
		}
	}

	res.Equivalent = len(res.Mismatches) == 0
}

// coneInputs returns the distinct cone inputs (primary inputs and latch
// outputs) feeding root.
func coneInputs(nl *netlist.Netlist, root netlist.ID) []netlist.ID {
	seen := map[netlist.ID]bool{}
	var out []netlist.ID
	stack := []netlist.ID{root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		if nl.Kind(id).IsConeInput() {
			out = append(out, id)
			continue
		}
		stack = append(stack, nl.Fanin(id)...)
	}
	return out
}

func popcountMask(m uint64) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}
