package rtl

// The bounded structural elaborator: re-reads the exact dialect Emit
// produces and expands it back to a gate-level netlist. Template
// instances are expanded from their names alone (the printed bodies are
// documentation), always blocks are rebuilt as per-bit latch logic, and
// residual statements map one-to-one onto gates — so a pure-passthrough
// emission elaborates to a netlist isomorphic to the original.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"netlistre/internal/netlist"
)

// Elaborate parses emitted RTL and returns the expanded gate-level
// netlist. It accepts only the dialect Emit produces.
func Elaborate(r io.Reader) (*netlist.Netlist, error) {
	e, err := scan(r)
	if err != nil {
		return nil, err
	}
	return e.build()
}

type defKind int

const (
	defInput defKind = iota
	defConst
	defGate
	defLut
	defDff
	defAlias
	defInst
	defReg
)

type netDef struct {
	kind defKind
	gate netlist.Kind
	args []string // gate/lut fanins, dff D, alias target
	mask uint64   // lut truth table
	cval bool
	inst *instDef
	reg  *regDef
	bit  int
}

type instDef struct {
	tmpl  template
	name  string
	conns map[string][]string // port -> net names, LSB first
	outs  map[string][]netlist.ID
	done  bool
}

type regDef struct {
	name   string
	width  int
	qNames []string // per-bit alias names from the unpack assign
	expr   []token  // next-state expression
	lats   []netlist.ID
}

type elab struct {
	design  string
	inputs  []string
	outputs []string
	defs    map[string]*netDef
	regs    []*regDef
	insts   []*instDef
	order   []string // statement-defined nets in file order
	clk     string
}

// --- tokenizer ---

type token struct {
	kind byte // 'i' identifier, 'n' number, or the symbol itself
	text string
	num  int
}

func tokenize(s string) ([]token, error) {
	var out []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '/' && i+1 < len(s) && s[i+1] == '/':
			i = len(s)
		case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
			j := i
			for j < len(s) && (s[j] == '_' || s[j] == '$' ||
				s[j] >= 'a' && s[j] <= 'z' || s[j] >= 'A' && s[j] <= 'Z' ||
				s[j] >= '0' && s[j] <= '9') {
				j++
			}
			out = append(out, token{kind: 'i', text: s[i:j]})
			i = j
		case c >= '0' && c <= '9':
			// A sized literal can carry hex digits after the base marker
			// ('h from re_lut INIT parameters), so a-f belong to the token.
			j := i
			for j < len(s) && (s[j] >= '0' && s[j] <= '9' ||
				s[j] == '\'' || s[j] >= 'a' && s[j] <= 'f' || s[j] == 'h') {
				j++
			}
			out = append(out, token{kind: 'n', text: s[i:j]})
			i = j
		case strings.IndexByte("(){}[],;=.?:+-@<#", c) >= 0:
			if c == '<' && i+1 < len(s) && s[i+1] == '=' {
				out = append(out, token{kind: '<', text: "<="})
				i += 2
				break
			}
			out = append(out, token{kind: c, text: string(c)})
			i++
		default:
			return nil, fmt.Errorf("rtl: unexpected character %q", c)
		}
	}
	return out, nil
}

// parseLiteral decodes N'dV / N'bV into (width, value).
func parseLiteral(t token) (width int, val uint64, err error) {
	if t.kind != 'n' {
		return 0, 0, fmt.Errorf("rtl: expected literal, got %q", t.text)
	}
	q := strings.IndexByte(t.text, '\'')
	if q < 0 {
		return 0, 0, fmt.Errorf("rtl: bare number %q", t.text)
	}
	w, err := strconv.Atoi(t.text[:q])
	if err != nil || w < 1 || w > 64 || q+2 > len(t.text) {
		return 0, 0, fmt.Errorf("rtl: bad literal %q", t.text)
	}
	base := 10
	switch t.text[q+1] {
	case 'b':
		base = 2
	case 'h':
		base = 16
	}
	v, err := strconv.ParseUint(t.text[q+2:], base, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("rtl: bad literal %q", t.text)
	}
	return w, v, nil
}

// --- scanner ---

func scan(r io.Reader) (*elab, error) {
	e := &elab{defs: map[string]*netDef{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	inTop, topDone, skipping, inAlways := false, false, false, false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if skipping {
			// Template bodies are documentation in a richer dialect than
			// the tokenizer accepts; skip them textually.
			if strings.TrimSpace(sc.Text()) == "endmodule" {
				skipping = false
			}
			continue
		}
		toks, err := tokenize(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if len(toks) == 0 {
			continue
		}
		head := toks[0]
		switch {
		case head.kind == 'i' && head.text == "module":
			if len(toks) < 2 || toks[1].kind != 'i' {
				return nil, fmt.Errorf("line %d: malformed module header", lineNo)
			}
			name := toks[1].text
			if topDone || inTop {
				if _, ok := parseTemplate(name); !ok {
					return nil, fmt.Errorf("line %d: unknown template module %q", lineNo, name)
				}
				skipping = true
				continue
			}
			e.design = name
			inTop = true
		case head.kind == 'i' && head.text == "endmodule":
			if inAlways {
				return nil, fmt.Errorf("line %d: endmodule inside always", lineNo)
			}
			inTop, topDone = false, true
		case !inTop:
			return nil, fmt.Errorf("line %d: statement outside module", lineNo)
		case inAlways:
			// Inside an always block: "R <= expr;" then "end".
			if head.kind == 'i' && head.text == "end" && len(toks) == 1 {
				inAlways = false
				continue
			}
			if len(toks) < 4 || head.kind != 'i' || toks[1].kind != '<' {
				return nil, fmt.Errorf("line %d: unsupported always statement", lineNo)
			}
			d, ok := e.defs[head.text]
			if !ok || d.kind != defReg {
				return nil, fmt.Errorf("line %d: assignment to non-register %s", lineNo, head.text)
			}
			if d.reg.expr != nil {
				return nil, fmt.Errorf("line %d: second assignment to %s", lineNo, head.text)
			}
			body := toks[2:]
			if body[len(body)-1].kind != ';' {
				return nil, fmt.Errorf("line %d: missing semicolon", lineNo)
			}
			d.reg.expr = body[:len(body)-1]
		case head.kind == 'i' && head.text == "input":
			name, err := oneIdent(toks[1:])
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			if _, dup := e.defs[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate net %s", lineNo, name)
			}
			e.defs[name] = &netDef{kind: defInput}
			e.inputs = append(e.inputs, name)
		case head.kind == 'i' && head.text == "output":
			name, err := oneIdent(toks[1:])
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			e.outputs = append(e.outputs, name)
		case head.kind == 'i' && head.text == "wire":
			// Scalar and vector wire declarations carry no structure.
		case head.kind == 'i' && head.text == "reg":
			// reg [h:0] name;
			if len(toks) != 8 || toks[1].kind != '[' || toks[2].kind != 'n' ||
				toks[3].kind != ':' || toks[4].kind != 'n' || toks[5].kind != ']' ||
				toks[6].kind != 'i' || toks[7].kind != ';' {
				return nil, fmt.Errorf("line %d: malformed reg declaration", lineNo)
			}
			hi, err1 := strconv.Atoi(toks[2].text)
			lo, err2 := strconv.Atoi(toks[4].text)
			if err1 != nil || err2 != nil || lo != 0 || hi < 0 || hi > 4095 {
				return nil, fmt.Errorf("line %d: malformed reg range", lineNo)
			}
			rd := &regDef{name: toks[6].text, width: hi + 1}
			if _, dup := e.defs[rd.name]; dup {
				return nil, fmt.Errorf("line %d: duplicate net %s", lineNo, rd.name)
			}
			e.defs[rd.name] = &netDef{kind: defReg, reg: rd}
			e.regs = append(e.regs, rd)
		case head.kind == 'i' && head.text == "always":
			// always @(posedge clk) begin
			if len(toks) != 7 || toks[1].kind != '@' || toks[2].kind != '(' ||
				toks[3].kind != 'i' || toks[3].text != "posedge" || toks[4].kind != 'i' ||
				toks[5].kind != ')' || toks[6].kind != 'i' || toks[6].text != "begin" {
				return nil, fmt.Errorf("line %d: malformed always header", lineNo)
			}
			if e.clk == "" {
				e.clk = toks[4].text
			} else if e.clk != toks[4].text {
				return nil, fmt.Errorf("line %d: second clock %s", lineNo, toks[4].text)
			}
			inAlways = true
		case head.kind == 'i' && head.text == "assign":
			if err := e.scanAssign(toks[1:]); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
		case head.kind == 'i' && head.text == "dff":
			outName, args, err := gateArgs(toks[1:])
			if err != nil || len(args) != 1 {
				return nil, fmt.Errorf("line %d: malformed dff", lineNo)
			}
			if _, dup := e.defs[outName]; dup {
				return nil, fmt.Errorf("line %d: duplicate net %s", lineNo, outName)
			}
			e.defs[outName] = &netDef{kind: defDff, args: args}
			e.order = append(e.order, outName)
		case head.kind == 'i' && gateKindOf(head.text) != 0:
			outName, args, err := gateArgs(toks[1:])
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			k := gateKindOf(head.text)
			if (k == netlist.Not || k == netlist.Buf) != (len(args) == 1) || len(args) == 0 {
				return nil, fmt.Errorf("line %d: bad arity for %s", lineNo, head.text)
			}
			if _, dup := e.defs[outName]; dup {
				return nil, fmt.Errorf("line %d: duplicate net %s", lineNo, outName)
			}
			e.defs[outName] = &netDef{kind: defGate, gate: k, args: args}
			e.order = append(e.order, outName)
		case head.kind == 'i' && head.text == "re_lut":
			// Parameterized truth-table cell: re_lut #(.INIT(L)) gN (.O(y), .I0(a), ...);
			if err := e.scanLut(toks); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
		case head.kind == 'i':
			// Template instance: re_x u0 (.p(a), .q({b, c}));
			if err := e.scanInstance(toks); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("line %d: unsupported statement", lineNo)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if e.design == "" {
		return nil, fmt.Errorf("rtl: no module found")
	}
	if !topDone {
		return nil, fmt.Errorf("rtl: missing endmodule")
	}
	return e, nil
}

func oneIdent(toks []token) (string, error) {
	if len(toks) != 2 || toks[0].kind != 'i' || toks[1].kind != ';' {
		return "", fmt.Errorf("expected single identifier")
	}
	return toks[0].text, nil
}

func gateKindOf(s string) netlist.Kind {
	switch s {
	case "and":
		return netlist.And
	case "or":
		return netlist.Or
	case "nand":
		return netlist.Nand
	case "nor":
		return netlist.Nor
	case "xor":
		return netlist.Xor
	case "xnor":
		return netlist.Xnor
	case "not":
		return netlist.Not
	case "buf":
		return netlist.Buf
	}
	return 0
}

// gateArgs parses "gN (out, a, b);" returning out and the fanin names.
func gateArgs(toks []token) (string, []string, error) {
	if len(toks) < 5 || toks[0].kind != 'i' || toks[1].kind != '(' {
		return "", nil, fmt.Errorf("malformed gate statement")
	}
	var names []string
	i := 2
	for {
		if i >= len(toks) || toks[i].kind != 'i' {
			return "", nil, fmt.Errorf("malformed gate argument")
		}
		names = append(names, toks[i].text)
		i++
		if i >= len(toks) {
			return "", nil, fmt.Errorf("unterminated gate statement")
		}
		if toks[i].kind == ',' {
			i++
			continue
		}
		if toks[i].kind == ')' {
			break
		}
		return "", nil, fmt.Errorf("malformed gate statement")
	}
	if i+1 >= len(toks) || toks[i+1].kind != ';' {
		return "", nil, fmt.Errorf("missing semicolon")
	}
	if len(names) < 2 {
		return "", nil, fmt.Errorf("gate needs an output and at least one input")
	}
	return names[0], names[1:], nil
}

// scanAssign classifies an assign statement (tokens after "assign").
func (e *elab) scanAssign(toks []token) error {
	if len(toks) < 4 || toks[len(toks)-1].kind != ';' {
		return fmt.Errorf("malformed assign")
	}
	toks = toks[:len(toks)-1]
	if toks[0].kind == '{' {
		// Unpack: {qN, ..., q0} = R
		var names []string
		i := 1
		for {
			if i >= len(toks) || toks[i].kind != 'i' {
				return fmt.Errorf("malformed unpack assign")
			}
			names = append(names, toks[i].text)
			i++
			if i < len(toks) && toks[i].kind == ',' {
				i++
				continue
			}
			break
		}
		if i+3 != len(toks) || toks[i].kind != '}' || toks[i+1].kind != '=' {
			return fmt.Errorf("malformed unpack assign")
		}
		// The RHS must be a register name.
		rhs := toks[i+2:]
		if len(rhs) != 1 || rhs[0].kind != 'i' {
			return fmt.Errorf("unpack RHS must be a register")
		}
		d, ok := e.defs[rhs[0].text]
		if !ok || d.kind != defReg {
			return fmt.Errorf("unpack of non-register %s", rhs[0].text)
		}
		if d.reg.qNames != nil {
			return fmt.Errorf("second unpack of %s", rhs[0].text)
		}
		if len(names) != d.reg.width {
			return fmt.Errorf("unpack width mismatch for %s", rhs[0].text)
		}
		// names are MSB first; store LSB first.
		q := make([]string, len(names))
		for i, n := range names {
			q[len(names)-1-i] = n
		}
		for bit, n := range q {
			if _, dup := e.defs[n]; dup {
				return fmt.Errorf("duplicate net %s", n)
			}
			e.defs[n] = &netDef{kind: defAlias, reg: d.reg, bit: bit}
		}
		d.reg.qNames = q
		return nil
	}
	if toks[0].kind != 'i' || toks[1].kind != '=' {
		return fmt.Errorf("malformed assign")
	}
	lhs, rhs := toks[0].text, toks[2:]
	switch {
	case len(rhs) == 1 && rhs[0].kind == 'n':
		w, v, err := parseLiteral(rhs[0])
		if err != nil || w != 1 {
			return fmt.Errorf("unsupported constant assign to %s", lhs)
		}
		if _, dup := e.defs[lhs]; dup {
			return fmt.Errorf("duplicate net %s", lhs)
		}
		e.defs[lhs] = &netDef{kind: defConst, cval: v == 1}
		e.order = append(e.order, lhs)
	case len(rhs) == 1 && rhs[0].kind == 'i':
		// Scalar alias; only meaningful for outputs, harmless otherwise.
		if _, dup := e.defs[lhs]; dup {
			return fmt.Errorf("duplicate net %s", lhs)
		}
		e.defs[lhs] = &netDef{kind: defAlias, args: []string{rhs[0].text}}
	case rhs[0].kind == '{':
		// Pack of a documentation word vector: structurally inert.
	default:
		return fmt.Errorf("unsupported assign to %s", lhs)
	}
	return nil
}

// scanLut parses "re_lut #(.INIT(2^k'h..)) gN (.O(y), .I0(a), ... .Ik-1(z));".
// Ports may appear in any order; the literal width must match 2^k for the
// connected input count.
func (e *elab) scanLut(toks []token) error {
	i := 1
	expect := func(k byte) bool {
		if i < len(toks) && toks[i].kind == k {
			i++
			return true
		}
		return false
	}
	ident := func() (string, bool) {
		if i < len(toks) && toks[i].kind == 'i' {
			s := toks[i].text
			i++
			return s, true
		}
		return "", false
	}
	if !expect('#') || !expect('(') || !expect('.') {
		return fmt.Errorf("malformed re_lut parameter list")
	}
	if p, ok := ident(); !ok || p != "INIT" {
		return fmt.Errorf("re_lut: expected .INIT parameter")
	}
	if !expect('(') || i >= len(toks) {
		return fmt.Errorf("malformed re_lut parameter list")
	}
	width, mask, err := parseLiteral(toks[i])
	if err != nil {
		return fmt.Errorf("re_lut INIT: %w", err)
	}
	i++
	if !expect(')') || !expect(')') {
		return fmt.Errorf("malformed re_lut parameter list")
	}
	if _, ok := ident(); !ok { // instance name
		return fmt.Errorf("re_lut: missing instance name")
	}
	if !expect('(') {
		return fmt.Errorf("malformed re_lut port list")
	}
	outName := ""
	ins := map[int]string{}
	for {
		if !expect('.') {
			return fmt.Errorf("malformed re_lut port connection")
		}
		port, ok := ident()
		if !ok {
			return fmt.Errorf("malformed re_lut port connection")
		}
		if !expect('(') {
			return fmt.Errorf("malformed re_lut port connection")
		}
		net, ok := ident()
		if !ok {
			return fmt.Errorf("malformed re_lut port connection")
		}
		if !expect(')') {
			return fmt.Errorf("malformed re_lut port connection")
		}
		switch {
		case port == "O":
			if outName != "" {
				return fmt.Errorf("re_lut: duplicate port O")
			}
			outName = net
		case len(port) == 2 && port[0] == 'I' && port[1] >= '0' && port[1] <= '5':
			idx := int(port[1] - '0')
			if _, dup := ins[idx]; dup {
				return fmt.Errorf("re_lut: duplicate port %s", port)
			}
			ins[idx] = net
		default:
			return fmt.Errorf("re_lut: unknown port %s", port)
		}
		if i < len(toks) && toks[i].kind == ',' {
			i++
			continue
		}
		break
	}
	if !expect(')') || !expect(';') || i != len(toks) {
		return fmt.Errorf("malformed re_lut instance")
	}
	k := len(ins)
	if outName == "" || k == 0 {
		return fmt.Errorf("re_lut: missing O or input ports")
	}
	args := make([]string, k)
	for j := 0; j < k; j++ {
		n, ok := ins[j]
		if !ok {
			return fmt.Errorf("re_lut: missing port I%d", j)
		}
		args[j] = n
	}
	if width != 1<<uint(k) {
		return fmt.Errorf("re_lut: INIT width %d does not match %d inputs", width, k)
	}
	if k < 6 && mask>>(1<<uint(k)) != 0 {
		return fmt.Errorf("re_lut: INIT %#x has bits beyond 2^%d rows", mask, k)
	}
	if _, dup := e.defs[outName]; dup {
		return fmt.Errorf("duplicate net %s", outName)
	}
	e.defs[outName] = &netDef{kind: defLut, args: args, mask: mask}
	e.order = append(e.order, outName)
	return nil
}

// scanInstance parses "re_x u0 (.p(a), .q({b, c}));".
func (e *elab) scanInstance(toks []token) error {
	if len(toks) < 6 || toks[0].kind != 'i' || toks[1].kind != 'i' || toks[2].kind != '(' {
		return fmt.Errorf("unsupported statement %q", toks[0].text)
	}
	tmpl, ok := parseTemplate(toks[0].text)
	if !ok {
		return fmt.Errorf("unknown template %q", toks[0].text)
	}
	inst := &instDef{tmpl: tmpl, name: toks[1].text, conns: map[string][]string{}}
	i := 3
	for {
		if i+3 >= len(toks) || toks[i].kind != '.' || toks[i+1].kind != 'i' || toks[i+2].kind != '(' {
			return fmt.Errorf("malformed port connection")
		}
		port := toks[i+1].text
		i += 3
		var bitsMSB []string
		if toks[i].kind == '{' {
			i++
			for {
				if toks[i].kind != 'i' {
					return fmt.Errorf("malformed port concat")
				}
				bitsMSB = append(bitsMSB, toks[i].text)
				i++
				if toks[i].kind == ',' {
					i++
					continue
				}
				break
			}
			if toks[i].kind != '}' {
				return fmt.Errorf("malformed port concat")
			}
			i++
		} else if toks[i].kind == 'i' {
			bitsMSB = append(bitsMSB, toks[i].text)
			i++
		} else {
			return fmt.Errorf("malformed port connection")
		}
		if toks[i].kind != ')' {
			return fmt.Errorf("malformed port connection")
		}
		i++
		if _, dup := inst.conns[port]; dup {
			return fmt.Errorf("duplicate port %s", port)
		}
		lsb := make([]string, len(bitsMSB))
		for j, n := range bitsMSB {
			lsb[len(bitsMSB)-1-j] = n
		}
		inst.conns[port] = lsb
		if toks[i].kind == ',' {
			i++
			continue
		}
		break
	}
	if i+1 >= len(toks) || toks[i].kind != ')' || toks[i+1].kind != ';' {
		return fmt.Errorf("malformed instance")
	}
	// Register output nets.
	for _, pw := range inst.tmpl.portWidths() {
		conn := inst.conns[pw.name]
		if len(conn) != pw.width {
			return fmt.Errorf("port %s of %s: %d bits connected, want %d",
				pw.name, inst.name, len(conn), pw.width)
		}
		if !pw.out {
			continue
		}
		for _, n := range conn {
			if _, dup := e.defs[n]; dup {
				return fmt.Errorf("duplicate net %s", n)
			}
			e.defs[n] = &netDef{kind: defInst, inst: inst}
			e.order = append(e.order, n)
		}
	}
	e.insts = append(e.insts, inst)
	return nil
}
