package rtl

import (
	"testing"

	"netlistre/internal/gen"
	"netlistre/internal/oracle"
)

// TestTrojanSuspectLineSpans decompiles the trojaned articles and checks
// that every trojan-suspect element the oracle flags maps to a concrete
// line of the emitted RTL: an analyst handed the suspect list must be able
// to jump straight to the backdoor logic in the decompiled source. Trojan
// gates never match a reference template, so they ride through as residual
// statements — which is exactly what gives them per-gate line spans.
func TestTrojanSuspectLineSpans(t *testing.T) {
	for _, article := range []string{"evoter-trojan", "oc8051-trojan"} {
		article := article
		t.Run(article, func(t *testing.T) {
			t.Parallel()
			nl, lab, err := gen.LabeledArticle(article)
			if err != nil {
				t.Fatal(err)
			}
			rep := analyze(t, nl, 1)
			suspects := oracle.TrojanSuspects(rep, lab, oracle.Options{})
			if len(suspects) == 0 {
				t.Fatal("oracle flagged no trojan suspects")
			}
			er, _ := decompileOK(t, nl, rep)
			missing := 0
			for _, id := range suspects {
				if er.LineOf(id) <= 0 {
					missing++
					if missing <= 5 {
						t.Errorf("suspect %s (%d) has no emitted line span", nl.NameOf(id), id)
					}
				}
			}
			if missing > 5 {
				t.Errorf("... and %d more suspects without line spans", missing-5)
			}
		})
	}
}
