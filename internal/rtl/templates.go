package rtl

// The reference template library. A template's full semantics are encoded
// in its module name (re_adder_w8_c7, re_decoder_w3_ah_m0_m1, ...), so the
// elaborator can expand an instance back to gates from the name alone; the
// printed module bodies exist for human readers and downstream tools and
// are never parsed by the round-trip checker.

import (
	"fmt"
	"strconv"
	"strings"

	"netlistre/internal/netlist"
)

// template is a parsed template name.
type template struct {
	kind     string // mux2, adder, sub, decoder, parity, popcount
	w        int    // input/data width
	c        int    // adder/sub: carry port width (w or w-1)
	outs     int    // popcount: count width; decoder: number of outputs
	low      bool   // decoder: active-low outputs
	minterms []int  // decoder: per-output minterm
}

// parseTemplate decodes a template module name; ok is false for names
// outside the library.
func parseTemplate(name string) (template, bool) {
	var t template
	rest, found := strings.CutPrefix(name, "re_")
	if !found {
		return t, false
	}
	if rest == "lut" {
		// The parameterized truth-table cell. Its semantics live in the
		// per-instance INIT parameter, so it never goes through the
		// portWidths/expandTemplate machinery — the scanner handles
		// re_lut instances directly. Recognizing the name here lets the
		// elaborator skip the printed documentation module.
		return template{kind: "lut"}, true
	}
	parts := strings.Split(rest, "_")
	if len(parts) < 2 {
		return t, false
	}
	t.kind = parts[0]
	num := func(s, prefix string) (int, bool) {
		v, ok2 := strings.CutPrefix(s, prefix)
		if !ok2 {
			return 0, false
		}
		n, err := strconv.Atoi(v)
		return n, err == nil && n >= 0
	}
	var ok bool
	if t.w, ok = num(parts[1], "w"); !ok || t.w < 1 {
		return t, false
	}
	switch t.kind {
	case "mux2", "parity":
		return t, len(parts) == 2
	case "adder", "sub":
		if len(parts) != 3 {
			return t, false
		}
		t.c, ok = num(parts[2], "c")
		return t, ok && (t.c == t.w || t.c == t.w-1)
	case "popcount":
		if len(parts) != 3 {
			return t, false
		}
		t.outs, ok = num(parts[2], "o")
		return t, ok && t.outs >= 1
	case "decoder":
		if len(parts) < 4 {
			return t, false
		}
		switch parts[2] {
		case "ah":
		case "al":
			t.low = true
		default:
			return t, false
		}
		for _, p := range parts[3:] {
			mt, mok := num(p, "m")
			if !mok || mt >= 1<<uint(t.w) {
				return t, false
			}
			t.minterms = append(t.minterms, mt)
		}
		t.outs = len(t.minterms)
		return t, true
	}
	return t, false
}

// templatePorts returns the port names and widths of a template, in
// declaration order, inputs first.
func (t template) portWidths() []struct {
	name  string
	width int
	out   bool
} {
	type p = struct {
		name  string
		width int
		out   bool
	}
	switch t.kind {
	case "mux2":
		return []p{{"sel", 1, false}, {"d0", t.w, false}, {"d1", t.w, false}, {"out", t.w, true}}
	case "adder", "sub":
		return []p{{"a", t.w, false}, {"b", t.w, false}, {"sum", t.w, true}, {"carry", t.c, true}}
	case "decoder":
		return []p{{"in", t.w, false}, {"out", t.outs, true}}
	case "parity":
		return []p{{"in", t.w, false}, {"out", 1, true}}
	case "popcount":
		return []p{{"in", t.w, false}, {"count", t.outs, true}}
	}
	return nil
}

// templateDoc renders the documentation body of a template module. The
// body is behaviorally accurate Verilog; the elaborator never reads it.
func templateDoc(name string) string {
	if name == "re_lut" {
		// The residual truth-table cell: K and INIT come from the
		// instance parameters; unconnected high inputs are unused because
		// INIT never selects on them.
		return "module re_lut #(parameter K = 1, parameter INIT = 64'h0) (O, I0, I1, I2, I3, I4, I5);\n" +
			"  output O;\n" +
			"  input I0, I1, I2, I3, I4, I5;\n" +
			"  wire [63:0] tab = INIT;\n" +
			"  assign O = tab[{I5, I4, I3, I2, I1, I0}];\n" +
			"endmodule\n"
	}
	t, ok := parseTemplate(name)
	if !ok {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (", name)
	var decls []string
	for _, p := range t.portWidths() {
		dir := "input"
		if p.out {
			dir = "output"
		}
		if p.width == 1 {
			decls = append(decls, fmt.Sprintf("%s %s", dir, p.name))
		} else {
			decls = append(decls, fmt.Sprintf("%s [%d:0] %s", dir, p.width-1, p.name))
		}
	}
	b.WriteString(strings.Join(decls, ", "))
	b.WriteString(");\n")
	switch t.kind {
	case "mux2":
		b.WriteString("  assign out = sel ? d1 : d0;\n")
	case "adder", "sub":
		w := t.w
		// c[i] is the carry (borrow) out of bit i; the incoming carry of
		// bit i is c[i-1], zero at bit 0. With c = n-1 the bit-0 carry
		// stays internal and the port exposes bits 1..n-1.
		fmt.Fprintf(&b, "  wire [%d:0] c;\n", w-1)
		if w > 1 {
			fmt.Fprintf(&b, "  wire [%d:0] cin = {c[%d:0], 1'b0};\n", w-1, w-2)
		} else {
			b.WriteString("  wire [0:0] cin = 1'b0;\n")
		}
		if t.kind == "adder" {
			b.WriteString("  assign c = (a & b) | (a & cin) | (b & cin);\n")
		} else {
			b.WriteString("  assign c = (~a & b) | (~a & cin) | (b & cin);\n")
		}
		b.WriteString("  assign sum = a ^ b ^ cin;\n")
		if t.c == w {
			b.WriteString("  assign carry = c;\n")
		} else {
			fmt.Fprintf(&b, "  assign carry = c[%d:1];\n", w-1)
		}
	case "decoder":
		for i, mt := range t.minterms {
			inv := ""
			if t.low {
				inv = "~"
			}
			fmt.Fprintf(&b, "  assign out[%d] = %s(in == %d'd%d);\n", i, inv, t.w, mt)
		}
	case "parity":
		b.WriteString("  assign out = ^in;\n")
	case "popcount":
		var terms []string
		for i := 0; i < t.w; i++ {
			terms = append(terms, fmt.Sprintf("in[%d]", i))
		}
		fmt.Fprintf(&b, "  assign count = %s;\n", strings.Join(terms, " + "))
	}
	b.WriteString("endmodule\n")
	return b.String()
}

// expandTemplate rebuilds a template instance as gates in nl. ports maps
// port name to resolved net IDs, LSB first; input ports must be fully
// resolved, output entries are returned (the caller names and memoizes
// them). The expansion mirrors the canonical shapes in internal/gen so a
// re-analysis of the elaborated netlist finds the same structures.
func expandTemplate(nl *netlist.Netlist, t template, ports map[string][]netlist.ID) (map[string][]netlist.ID, error) {
	need := func(name string, w int) ([]netlist.ID, error) {
		p := ports[name]
		if len(p) != w {
			return nil, fmt.Errorf("rtl: template %s port %s has %d bits, want %d", t.kind, name, len(p), w)
		}
		return p, nil
	}
	out := map[string][]netlist.ID{}
	switch t.kind {
	case "mux2":
		sel, err := need("sel", 1)
		if err != nil {
			return nil, err
		}
		d0, err := need("d0", t.w)
		if err != nil {
			return nil, err
		}
		d1, err := need("d1", t.w)
		if err != nil {
			return nil, err
		}
		ns := nl.AddGate(netlist.Not, sel[0])
		for i := 0; i < t.w; i++ {
			o := nl.AddGate(netlist.Or,
				nl.AddGate(netlist.And, sel[0], d1[i]),
				nl.AddGate(netlist.And, ns, d0[i]))
			out["out"] = append(out["out"], o)
		}
	case "adder", "sub":
		a, err := need("a", t.w)
		if err != nil {
			return nil, err
		}
		b, err := need("b", t.w)
		if err != nil {
			return nil, err
		}
		sub := t.kind == "sub"
		maj := func(x, y, c netlist.ID) netlist.ID {
			if sub {
				x = nl.AddGate(netlist.Not, x)
			}
			return nl.AddGate(netlist.Or,
				nl.AddGate(netlist.And, x, y),
				nl.AddGate(netlist.And, y, c),
				nl.AddGate(netlist.And, c, x))
		}
		var couts []netlist.ID
		cin := netlist.Nil
		for i := 0; i < t.w; i++ {
			if i == 0 {
				out["sum"] = append(out["sum"], nl.AddGate(netlist.Xor, a[0], b[0]))
				x := a[0]
				if sub {
					x = nl.AddGate(netlist.Not, x)
				}
				cin = nl.AddGate(netlist.And, x, b[0])
			} else {
				out["sum"] = append(out["sum"], nl.AddGate(netlist.Xor, a[i], b[i], cin))
				cin = maj(a[i], b[i], cin)
			}
			couts = append(couts, cin)
		}
		if t.c == t.w {
			out["carry"] = couts
		} else {
			out["carry"] = couts[1:]
		}
	case "decoder":
		in, err := need("in", t.w)
		if err != nil {
			return nil, err
		}
		inv := make([]netlist.ID, t.w)
		for i, s := range in {
			inv[i] = nl.AddGate(netlist.Not, s)
		}
		for _, mt := range t.minterms {
			lits := make([]netlist.ID, t.w)
			for i := 0; i < t.w; i++ {
				if mt>>uint(i)&1 == 1 {
					lits[i] = in[i]
				} else {
					lits[i] = inv[i]
				}
			}
			var o netlist.ID
			if t.w == 1 {
				o = nl.AddGate(netlist.Buf, lits[0])
			} else {
				o = nl.AddGate(netlist.And, lits...)
			}
			if t.low {
				o = nl.AddGate(netlist.Not, o)
			}
			out["out"] = append(out["out"], o)
		}
	case "parity":
		in, err := need("in", t.w)
		if err != nil {
			return nil, err
		}
		if t.w == 1 {
			out["out"] = []netlist.ID{nl.AddGate(netlist.Buf, in[0])}
		} else {
			out["out"] = []netlist.ID{nl.AddGate(netlist.Xor, in...)}
		}
	case "popcount":
		in, err := need("in", t.w)
		if err != nil {
			return nil, err
		}
		// Serial accumulation: add each input bit into a t.outs-wide
		// running count with a ripple increment conditioned on the bit.
		cnt := make([]netlist.ID, t.outs)
		for j := range cnt {
			cnt[j] = netlist.Nil
		}
		// cnt starts at in[0] in bit 0, zero elsewhere (represented
		// lazily: Nil means constant zero).
		zero := netlist.Nil
		getZero := func() netlist.ID {
			if zero == netlist.Nil {
				zero = nl.AddConst(false)
			}
			return zero
		}
		cnt[0] = in[0]
		for k := 1; k < t.w; k++ {
			// cnt += in[k]: carry = in[k]; for each bit: new = bit ^
			// carry, carry = bit & carry.
			carry := in[k]
			for j := 0; j < t.outs; j++ {
				if cnt[j] == netlist.Nil {
					cnt[j] = carry
					carry = netlist.Nil
					break
				}
				nb := nl.AddGate(netlist.Xor, cnt[j], carry)
				carry = nl.AddGate(netlist.And, cnt[j], carry)
				cnt[j] = nb
			}
		}
		for j := 0; j < t.outs; j++ {
			if cnt[j] == netlist.Nil {
				cnt[j] = getZero()
			} else if nl.Kind(cnt[j]) == netlist.Input || nl.Kind(cnt[j]) == netlist.Latch || nl.Node(cnt[j]).Name != "" {
				// Output roots get renamed by the caller; never hand it
				// a node that already owns a name (an input bit can be
				// an output root when w is small).
				cnt[j] = nl.AddGate(netlist.Buf, cnt[j])
			}
			out["count"] = append(out["count"], cnt[j])
		}
	default:
		return nil, fmt.Errorf("rtl: unknown template kind %q", t.kind)
	}
	return out, nil
}
