// Package rtl is the hardware decompilation backend: it lowers a
// core.Report plus its netlist into word-level Verilog and proves the
// result equivalent to the input.
//
// Emit turns every resolved module the planner can verify into either an
// instantiation of a reference-library template module (adders, muxes,
// decoders, parity trees, population counters) or an always-block over a
// vector register (counters, shift registers, multibit registers), with
// the module's port words flattened to buses. Recovered words become
// documentation vector wires. Every gate the planner cannot verify — or
// that the analysis never resolved — is passed through verbatim as
// residual structural logic, so the emitted file is always a complete,
// self-contained design.
//
// Check re-reads the emitted text through a bounded structural elaborator
// (Elaborate) that expands template instances and always blocks back to
// gates, then verifies the expansion against the original netlist: by
// netlist.Fingerprint when the emission was pure passthrough (gate-exact
// by construction), and by bitsim random-pattern plus exhaustive
// small-cone comparison otherwise. The verdict is machine-readable
// (EquivResult) so CLIs and services can gate on it.
//
// Emission is deterministic: all ordering and naming decisions key on net
// names, never raw node IDs, so the output is byte-identical across
// worker counts and across Verilog/BLIF input serializations of the same
// design.
package rtl

import (
	"fmt"

	"netlistre/internal/core"
	"netlistre/internal/netlist"
)

// EmitStats summarizes what one emission lowered.
type EmitStats struct {
	// Instances counts reference-library template instantiations.
	Instances int `json:"instances"`
	// AlwaysBlocks counts sequential always @(posedge clk) blocks.
	AlwaysBlocks int `json:"always_blocks"`
	// ResidualGates / ResidualLatches count nodes passed through as
	// structural logic because no verified template covered them.
	ResidualGates   int `json:"residual_gates"`
	ResidualLatches int `json:"residual_latches"`
	// CoveredElements counts original nodes replaced by templates.
	CoveredElements int `json:"covered_elements"`
	// Words counts recovered word declarations.
	Words int `json:"words"`
}

// EmitResult is the outcome of lowering one report.
type EmitResult struct {
	// Verilog is the emitted word-level RTL.
	Verilog []byte
	Stats   EmitStats

	// NodeName maps every visible original node to its emitted
	// identifier (inputs, residual nodes, template outputs, and the
	// per-bit aliases of sequential template registers).
	NodeName map[netlist.ID]string

	lineOf   map[netlist.ID]int
	design   string   // emitted (legalized) module name
	outNames []string // emitted output port names, Outputs() order
}

// LineOf returns the 1-based line of the emitted construct that carries
// the given original node — its declaration for inputs, its statement for
// residual logic, and the instance or always line for nodes a template
// covers. It returns 0 for nodes with no emitted span.
func (r *EmitResult) LineOf(id netlist.ID) int { return r.lineOf[id] }

// EquivResult is the machine-readable verdict of the round-trip check.
type EquivResult struct {
	Equivalent bool   `json:"equivalent"`
	Method     string `json:"method"` // "fingerprint" or "bitsim"
	// Patterns counts random input patterns simulated on the bitsim path.
	Patterns int `json:"patterns,omitempty"`
	// ExactCones counts compared signals whose full truth tables were
	// checked exhaustively (support small enough for TableOf).
	ExactCones int `json:"exact_cones,omitempty"`
	// FingerprintMismatch records that a passthrough emission failed the
	// strict fingerprint comparison and fell back to bitsim.
	FingerprintMismatch bool `json:"fingerprint_mismatch,omitempty"`
	// Mismatches lists up to a handful of differing signals.
	Mismatches []string `json:"mismatches,omitempty"`
}

// Decompile emits RTL for the report and self-checks it in one call.
func Decompile(nl *netlist.Netlist, rep *core.Report) (*EmitResult, *EquivResult, error) {
	er, err := Emit(nl, rep)
	if err != nil {
		return nil, nil, err
	}
	eq, err := Check(nl, er)
	if err != nil {
		return er, nil, err
	}
	return er, eq, nil
}

// String renders the verdict for logs.
func (e *EquivResult) String() string {
	state := "NOT EQUIVALENT"
	if e.Equivalent {
		state = "equivalent"
	}
	return fmt.Sprintf("%s (%s, %d patterns, %d exact cones)",
		state, e.Method, e.Patterns, e.ExactCones)
}
