package rtl

import (
	"bytes"
	"testing"

	"netlistre/internal/core"
	"netlistre/internal/gen"
	"netlistre/internal/netlist"
)

// fuzzSeedDesigns builds the small designs whose Verilog seeds the corpus:
// one per component class the planner lowers, plus a passthrough mix.
func fuzzSeedDesigns() []*netlist.Netlist {
	var designs []*netlist.Netlist
	add := func(name string, build func(nl *netlist.Netlist)) {
		nl := netlist.New(name)
		build(nl)
		designs = append(designs, nl)
	}
	add("seed_counter", func(nl *netlist.Netlist) {
		en, rst := nl.AddInput("en"), nl.AddInput("rst")
		gen.MarkOutputs(nl, "q", gen.Counter(nl, 4, en, rst, false))
	})
	add("seed_adder", func(nl *netlist.Netlist) {
		a := gen.InputWord(nl, "a", 4)
		b := gen.InputWord(nl, "b", 4)
		sum, cout := gen.RippleAdder(nl, a, b, netlist.Nil)
		gen.MarkOutputs(nl, "sum", sum)
		nl.MarkOutput("cout", cout)
	})
	add("seed_shift", func(nl *netlist.Netlist) {
		en, rst, si := nl.AddInput("en"), nl.AddInput("rst"), nl.AddInput("si")
		gen.MarkOutputs(nl, "q", gen.ShiftRegister(nl, 4, en, rst, si))
	})
	add("seed_mux", func(nl *netlist.Netlist) {
		sel := nl.AddInput("sel")
		d0 := gen.InputWord(nl, "d0", 3)
		d1 := gen.InputWord(nl, "d1", 3)
		gen.MarkOutputs(nl, "y", gen.Mux2Word(nl, sel, d0, d1))
	})
	add("seed_mix", func(nl *netlist.Netlist) {
		a, b, c := nl.AddInput("a"), nl.AddInput("b"), nl.AddInput("c")
		g := nl.AddGate(netlist.And, a, b)
		h := nl.AddGate(netlist.Xor, g, c)
		l := nl.AddNamedLatch("state", h)
		nl.MarkOutput("y", nl.AddGate(netlist.Or, l, g))
	})
	return designs
}

// fuzzMaxElements bounds accepted inputs so one fuzz iteration stays in
// the millisecond range; anything larger exercises no new emitter paths.
const fuzzMaxElements = 400

// FuzzEmitRTL feeds arbitrary structural Verilog through the whole
// decompilation round trip: parse -> analyze -> emit -> elaborate ->
// equivalence. Whatever the parser accepts and the validator admits, the
// emitted RTL must re-elaborate and verify equivalent to the source — the
// fuzzer is hunting for netlist shapes where the planner hides a net it
// should not, the elaborator mis-sequences a latch, or the emission is
// simply wrong.
func FuzzEmitRTL(f *testing.F) {
	for _, nl := range fuzzSeedDesigns() {
		var buf bytes.Buffer
		if err := nl.WriteVerilog(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		nl, err := netlist.ReadVerilog(bytes.NewReader(data))
		if err != nil {
			return // not parseable: out of scope
		}
		if err := nl.Validate(); err != nil {
			return // cyclic or malformed: analysis would reject it too
		}
		st := nl.Stats()
		if st.Gates+st.Latches+st.Inputs > fuzzMaxElements {
			return
		}
		rep := core.Analyze(nl, core.Options{Workers: 1})
		er, eq, err := Decompile(nl, rep)
		if err != nil {
			t.Fatalf("decompile failed on valid netlist: %v\ninput:\n%s", err, data)
		}
		if !eq.Equivalent {
			t.Fatalf("round trip not equivalent: %v\ninput:\n%s\nemitted:\n%s",
				eq, data, er.Verilog)
		}
	})
}
