package rtl

// The lowering planner. For each resolved module it tries to prove, at
// emission time, that the module's gates implement a known reference
// template exactly; only proven modules are lowered, everything else is
// passed through as residual logic. Proofs are either structural (the
// gate pattern pins the function, e.g. the counter next-state shape) or
// functional (exhaustive bit-parallel simulation over the template's port
// bits with every other signal X-poisoned, which simultaneously checks
// the function and the independence from non-port signals).

import (
	"fmt"
	"math/bits"
	"sort"

	"netlistre/internal/bitsim"
	"netlistre/internal/core"
	"netlistre/internal/module"
	"netlistre/internal/netlist"
	"netlistre/internal/truth"
)

// maxExactVars bounds the exhaustive functional checks (2^14 rows, swept
// 64 rows per bit-parallel pass).
const maxExactVars = 14

// maxConeNodes bounds the cone walked per functional check so a
// misaligned candidate cannot drag a whole design through the sweep.
const maxConeNodes = 2000

// portConn is one instance connection: template port name -> original
// nodes, LSB first.
type portConn struct {
	name string
	bits []netlist.ID
}

// instance is a planned combinational template instantiation.
type instance struct {
	template string // template module name, fully encoding the semantics
	ports    []portConn
	outputs  []netlist.ID // original nodes the template drives
	covered  []netlist.ID // original nodes the instance replaces
}

// Sequential block kinds.
const (
	regCounter = iota
	regShift
	regLoad
)

// regBlock is a planned always @(posedge clk) block over one latch word.
type regBlock struct {
	kind int
	q    []netlist.ID // latches, LSB/stage order

	en, rst netlist.ID // netlist.Nil when absent
	down    bool       // counter direction

	serialIn netlist.ID // shift register

	// load-register sources, outermost condition first.
	conds []netlist.ID
	srcs  [][]netlist.ID

	covered []netlist.ID
}

// plan is the complete lowering decision for one report.
type plan struct {
	instances  []*instance
	regs       []*regBlock
	covered    map[netlist.ID]bool      // nodes not emitted as residual
	exposed    map[netlist.ID]bool      // covered nodes still visible as nets
	referenced map[netlist.ID]bool      // nets named by an admitted plan's ports
	owner      map[netlist.ID]*instance // covered node -> owning instance
}

// buildPlans walks the resolved modules and keeps every plan that
// verifies and does not leak an unexposed internal net.
func buildPlans(nl *netlist.Netlist, rep *core.Report) *plan {
	p := &plan{covered: map[netlist.ID]bool{}, exposed: map[netlist.ID]bool{}, referenced: map[netlist.ID]bool{}, owner: map[netlist.ID]*instance{}}
	outDrivers := map[netlist.ID]bool{}
	for _, o := range nl.Outputs() {
		outDrivers[o.Driver] = true
	}
	for _, m := range rep.Resolved {
		switch m.Type {
		case module.Mux:
			if inst := planMux2(nl, m); inst != nil {
				p.admit(nl, inst, nil, outDrivers)
			}
		case module.Adder, module.Subtractor:
			if inst := planAddSub(nl, m); inst != nil {
				p.admit(nl, inst, nil, outDrivers)
			}
		case module.Decoder:
			if inst := planDecoder(nl, m); inst != nil {
				p.admit(nl, inst, nil, outDrivers)
			}
		case module.ParityTree:
			if inst := planParity(nl, m); inst != nil {
				p.admit(nl, inst, nil, outDrivers)
			}
		case module.PopCount:
			if inst := planPopCount(nl, m); inst != nil {
				p.admit(nl, inst, nil, outDrivers)
			}
		case module.Counter:
			if rb := planCounter(nl, m); rb != nil {
				p.admit(nl, nil, []*regBlock{rb}, outDrivers)
			}
		case module.ShiftRegister:
			for _, rb := range planShift(nl, m) {
				p.admit(nl, nil, []*regBlock{rb}, outDrivers)
			}
		case module.MultibitRegister:
			if rb := planRegister(nl, m); rb != nil {
				p.admit(nl, nil, []*regBlock{rb}, outDrivers)
			}
		}
	}
	return p
}

// admit runs the safety checks on a candidate plan and commits it. A node
// may only be hidden from the residual section when every consumer is
// itself hidden (by this or an earlier plan) or the node is re-exposed by
// the template (instance outputs, register Q aliases). Every net the
// template drives must be hidden by this plan, or the emitted file would
// drive it twice.
func (p *plan) admit(nl *netlist.Netlist, inst *instance, regs []*regBlock, outDrivers map[netlist.ID]bool) {
	var covered, exposedList []netlist.ID
	if inst != nil {
		covered = inst.covered
		exposedList = inst.outputs
	}
	for _, rb := range regs {
		covered = append(covered, rb.covered...)
		exposedList = append(exposedList, rb.q...)
	}
	inCover := map[netlist.ID]bool{}
	for _, id := range covered {
		// A node an earlier plan already hid (e.g. an inverter shared
		// between shift-register lanes) is simply not re-claimed.
		if !p.covered[id] {
			inCover[id] = true
		}
	}
	exposed := map[netlist.ID]bool{}
	for _, id := range exposedList {
		// Template-driven nets must be owned by this very plan; if one is
		// an input, was dropped above, or fell outside the module's
		// element set, emitting the instance would double-drive it.
		if !inCover[id] {
			return
		}
		exposed[id] = true
	}
	// refs are the nets this plan names in its emitted text — instance
	// input connections and always-block operands. Each must stay visible:
	// a prior plan may not have hidden it, and this plan may not hide it.
	var refs []netlist.ID
	if inst != nil {
		for _, pc := range inst.ports {
			for _, id := range pc.bits {
				if !exposed[id] {
					refs = append(refs, id)
				}
			}
		}
	}
	for _, rb := range regs {
		for _, id := range concat([]netlist.ID{rb.en, rb.rst, rb.serialIn}, rb.conds, flatten(rb.srcs)) {
			if id != netlist.Nil {
				refs = append(refs, id)
			}
		}
	}
	refSet := map[netlist.ID]bool{}
	for id := range p.referenced {
		refSet[id] = true
	}
	for _, id := range refs {
		if (p.covered[id] && !p.exposed[id]) || (inCover[id] && !exposed[id]) {
			return // a hidden net cannot be named
		}
		refSet[id] = true
	}
	for id := range inCover {
		if exposed[id] {
			continue
		}
		if outDrivers[id] || p.referenced[id] {
			return // hidden net drives a design output or is already named
		}
		for _, fo := range nl.Fanout(id) {
			if !inCover[fo] && !p.covered[fo] {
				// A consumer outside the plan is tolerable only when it is
				// dead logic (gates that transitively drive no output or
				// state); those are absorbed into the instance's span.
				if !absorbDead(nl, fo, inCover, p.covered, refSet, outDrivers) {
					return // hidden net feeds live logic outside the plan
				}
			}
		}
	}
	if inst != nil && p.createsCycle(nl, inst, inCover) {
		return
	}
	for _, id := range refs {
		p.referenced[id] = true
	}
	// Write the committed cover back to the candidate (shared nodes an
	// earlier plan claimed are gone, absorbed dead logic is added) so
	// emission attributes line spans to the right construct.
	committed := make([]netlist.ID, 0, len(inCover))
	for id := range inCover {
		committed = append(committed, id)
	}
	sort.Slice(committed, func(i, j int) bool { return committed[i] < committed[j] })
	if inst != nil {
		inst.covered = committed
		p.instances = append(p.instances, inst)
		for id := range inCover {
			p.owner[id] = inst
		}
	} else if len(regs) == 1 {
		regs[0].covered = committed
	}
	p.regs = append(p.regs, regs...)
	for id := range inCover {
		p.covered[id] = true
	}
	for id := range exposed {
		p.exposed[id] = true
	}
}

// createsCycle reports whether admitting inst would make the emitted
// design cyclic at instance granularity. The elaborator expands an
// instance atomically — every output depends on every input — so a
// combinational path from one of inst's outputs through outside logic
// back into inst's own cover (fine at gate level) would deadlock the
// round-trip. Already-admitted instances are traversed atomically for the
// same reason; latches are state boundaries and stop the walk.
func (p *plan) createsCycle(nl *netlist.Netlist, inst *instance, inCover map[netlist.ID]bool) bool {
	seen := map[netlist.ID]bool{}
	var stack []netlist.ID
	push := func(id netlist.ID) {
		if !seen[id] {
			seen[id] = true
			stack = append(stack, id)
		}
	}
	for _, o := range inst.outputs {
		for _, fo := range nl.Fanout(o) {
			if !inCover[fo] {
				push(fo)
			}
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if inCover[id] {
			return true
		}
		if nl.Kind(id) == netlist.Latch {
			continue
		}
		if own := p.owner[id]; own != nil {
			for _, o := range own.outputs {
				for _, fo := range nl.Fanout(o) {
					push(fo)
				}
			}
			continue
		}
		for _, fo := range nl.Fanout(id) {
			push(fo)
		}
	}
	return false
}

// absorbDead checks whether the transitive fanout of start consists only
// of gates that drive no design output and no latch — dead logic such as
// the unused top carry of a population counter's accumulator. If so it
// adds the whole closure to inCover and reports true.
func absorbDead(nl *netlist.Netlist, start netlist.ID, inCover, prior, referenced map[netlist.ID]bool, outDrivers map[netlist.ID]bool) bool {
	var closure []netlist.ID
	seen := map[netlist.ID]bool{}
	stack := []netlist.ID{start}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] || inCover[id] || prior[id] {
			continue
		}
		if !nl.Kind(id).IsGate() || outDrivers[id] || referenced[id] {
			return false
		}
		seen[id] = true
		closure = append(closure, id)
		stack = append(stack, nl.Fanout(id)...)
	}
	for _, id := range closure {
		inCover[id] = true
	}
	return true
}

// coverableElements filters a module's element list down to the nodes a
// plan may legitimately replace: gates and latches, never the port input
// nets themselves.
func coverableElements(nl *netlist.Netlist, m *module.Module, keepLatches bool, portInputs []netlist.ID) []netlist.ID {
	skip := map[netlist.ID]bool{}
	for _, id := range portInputs {
		skip[id] = true
	}
	var out []netlist.ID
	for _, id := range m.Elements {
		if skip[id] {
			continue
		}
		k := nl.Kind(id)
		if k.IsGate() || (keepLatches && k == netlist.Latch) {
			out = append(out, id)
		}
	}
	return out
}

// --- functional verification primitives ---

// distinct reports whether the ids are pairwise distinct and valid.
func distinct(ids ...netlist.ID) bool {
	seen := map[netlist.ID]bool{}
	for _, id := range ids {
		if id == netlist.Nil || seen[id] {
			return false
		}
		seen[id] = true
	}
	return true
}

// coneWithin reports whether root's fan-in cone, cut at the given leaves,
// stays under maxConeNodes.
func coneWithin(nl *netlist.Netlist, root netlist.ID, leaves []netlist.ID) bool {
	stop := map[netlist.ID]bool{}
	for _, l := range leaves {
		stop[l] = true
	}
	seen := map[netlist.ID]bool{}
	stack := []netlist.ID{root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] || stop[id] {
			continue
		}
		seen[id] = true
		if len(seen) > maxConeNodes {
			return false
		}
		if nl.Kind(id).IsConeInput() {
			continue
		}
		stack = append(stack, nl.Fanin(id)...)
	}
	return true
}

// exactFunc proves root == f(leaves) by exhaustive bit-parallel sweep:
// the leaves (which may be internal nets — bitsim cuts them loose) carry
// all 2^k assignments, every other signal is X, and every row must come
// out Known and equal to f. This checks the function and the independence
// from non-leaf signals in one pass.
func exactFunc(nl *netlist.Netlist, root netlist.ID, leaves []netlist.ID, f func(row uint) bool) bool {
	k := len(leaves)
	if k > maxExactVars || !distinct(leaves...) {
		return false
	}
	for _, l := range leaves {
		if l == root {
			return false
		}
		if k := nl.Kind(l); k == netlist.Const0 || k == netlist.Const1 {
			return false
		}
	}
	if !coneWithin(nl, root, leaves) {
		return false
	}
	total := 1 << uint(k)
	roots := []netlist.ID{root}
	for base := 0; base < total; base += bitsim.Lanes {
		assign := make(map[netlist.ID]bitsim.Vector, k)
		for li, l := range leaves {
			var bitsv uint64
			for lane := 0; lane < bitsim.Lanes && base+lane < total; lane++ {
				if (base+lane)>>uint(li)&1 == 1 {
					bitsv |= 1 << uint(lane)
				}
			}
			assign[l] = bitsim.Known(bitsv)
		}
		v := bitsim.RunCone(nl, roots, assign)[root]
		for lane := 0; lane < bitsim.Lanes && base+lane < total; lane++ {
			if v.Unk>>uint(lane)&1 == 1 {
				return false
			}
			if (v.Val>>uint(lane)&1 == 1) != f(uint(base+lane)) {
				return false
			}
		}
	}
	return true
}

func bit(row uint, i int) bool { return row>>uint(i)&1 == 1 }

// --- combinational planners ---

// planMux2 lowers a 2:1 word mux: out_i == sel ? d1_i : d0_i, proven
// exhaustively per bit.
func planMux2(nl *netlist.Netlist, m *module.Module) *instance {
	sel, out, d0, d1 := m.Port("sel"), m.Port("out"), m.Port("d0"), m.Port("d1")
	if len(sel) != 1 || len(out) < 2 || len(d0) != len(out) || len(d1) != len(out) {
		return nil
	}
	for i, o := range out {
		ok := exactFunc(nl, o, []netlist.ID{sel[0], d0[i], d1[i]}, func(row uint) bool {
			if bit(row, 0) {
				return bit(row, 2)
			}
			return bit(row, 1)
		})
		if !ok {
			return nil
		}
	}
	covered := coverableElements(nl, m, false, concat(sel, d0, d1))
	if !containsAll(covered, out) {
		return nil
	}
	return &instance{
		template: fmt.Sprintf("re_mux2_w%d", len(out)),
		ports: []portConn{
			{"sel", sel}, {"d0", d0}, {"d1", d1}, {"out", out},
		},
		outputs: out,
		covered: covered,
	}
}

// planAddSub lowers ripple carry/borrow chains. The slice-wise proof
// follows the carry word: sum_0 must be xor2 of (a_0,b_0), each carry the
// majority (adder) or borrow (subtractor) function of its slice, and each
// higher sum the xor3 of its slice with the incoming carry. Chains with
// an external carry-in are left as residual logic.
func planAddSub(nl *netlist.Netlist, m *module.Module) *instance {
	sum, a, b, carry := m.Port("sum"), m.Port("a"), m.Port("b"), m.Port("carry")
	n := len(sum)
	if n < 2 || len(a) != n || len(b) != n {
		return nil
	}
	return tryAddSub(nl, m, sum, a, b, carry, m.Type == module.Subtractor)
}

func tryAddSub(nl *netlist.Netlist, m *module.Module, sum, a, b, carry []netlist.ID, sub bool) *instance {
	n := len(sum)
	// The aggregation does not fix which operand bit is the minuend — and
	// it may decide differently per slice — so subtraction (asymmetric in
	// its operands) resolves the orientation bit by bit below.
	a = append([]netlist.ID(nil), a...)
	b = append([]netlist.ID(nil), b...)
	// Slice functions. Variable order in every row: bit0=a_i, bit1=b_i,
	// bit2=carry-in.
	sum2 := func(row uint) bool { return bit(row, 0) != bit(row, 1) }
	sum3 := func(row uint) bool { return bit(row, 0) != bit(row, 1) != bit(row, 2) }
	var cout2, cout3 func(row uint) bool
	if sub {
		cout2 = func(row uint) bool { return !bit(row, 0) && bit(row, 1) }
		cout3 = func(row uint) bool {
			x, y, c := !bit(row, 0), bit(row, 1), bit(row, 2)
			return (x && y) || (x && c) || (y && c)
		}
	} else {
		cout2 = func(row uint) bool { return bit(row, 0) && bit(row, 1) }
		cout3 = func(row uint) bool {
			x, y, c := bit(row, 0), bit(row, 1), bit(row, 2)
			return (x && y) || (x && c) || (y && c)
		}
	}

	// couts[i] is the net carrying the carry/borrow out of bit i; the
	// bit-0 half carry may be hidden (not in the carry port) when the
	// chain head was aggregated from a half slice.
	couts := make([]netlist.ID, n)
	var hidden netlist.ID = netlist.Nil
	switch len(carry) {
	case n:
		copy(couts, carry)
	case n - 1:
		// carry port holds couts of bits 1..n-1; recover the hidden
		// half carry from the bit-1 sum slice's fanins.
		for _, f := range nl.Fanin(sum[1]) {
			if f == a[1] || f == b[1] {
				continue
			}
			if hidden != netlist.Nil && hidden != f {
				return nil
			}
			hidden = f
		}
		if hidden == netlist.Nil {
			return nil
		}
		couts[0] = hidden
		copy(couts[1:], carry)
	default:
		return nil
	}

	if !exactFunc(nl, sum[0], []netlist.ID{a[0], b[0]}, sum2) {
		return nil
	}
	if !exactFunc(nl, couts[0], []netlist.ID{a[0], b[0]}, cout2) {
		if !sub {
			return nil
		}
		a[0], b[0] = b[0], a[0]
		if !exactFunc(nl, couts[0], []netlist.ID{a[0], b[0]}, cout2) {
			return nil
		}
	}
	for i := 1; i < n; i++ {
		if !exactFunc(nl, sum[i], []netlist.ID{a[i], b[i], couts[i-1]}, sum3) {
			return nil
		}
		if !exactFunc(nl, couts[i], []netlist.ID{a[i], b[i], couts[i-1]}, cout3) {
			if !sub {
				return nil
			}
			a[i], b[i] = b[i], a[i]
			if !exactFunc(nl, couts[i], []netlist.ID{a[i], b[i], couts[i-1]}, cout3) {
				return nil
			}
		}
	}

	// The hidden half carry is NOT exposed: if it feeds anything outside
	// the module, admit() rejects the plan and the chain stays residual.
	outs := append(append([]netlist.ID(nil), sum...), carry...)
	covered := coverableElements(nl, m, false, concat(a, b))
	if !containsAll(covered, sum) {
		return nil
	}
	kind := "adder"
	if sub {
		kind = "sub"
	}
	return &instance{
		template: fmt.Sprintf("re_%s_w%d_c%d", kind, n, len(carry)),
		ports: []portConn{
			{"a", a}, {"b", b}, {"sum", sum}, {"carry", carry},
		},
		outputs: outs,
		covered: covered,
	}
}

// planDecoder lowers a verified decoder whose every output is a single
// minterm (or its complement) over the select word.
func planDecoder(nl *netlist.Netlist, m *module.Module) *instance {
	in, out := m.Port("in"), m.Port("out")
	k := len(in)
	if k < 1 || k > truth.MaxVars || len(out) < 2 {
		return nil
	}
	activeLow := m.Attr != nil && m.Attr["polarity"] == "active-low"
	minterms := make([]int, len(out))
	for i, o := range out {
		if !coneWithin(nl, o, in) {
			return nil
		}
		tab, ok := bitsim.TableOf(nl, o, in)
		if !ok {
			return nil
		}
		bitsv := tab.Bits
		if activeLow {
			bitsv = ^bitsv & truth.Mask(k)
		}
		if bits.OnesCount64(bitsv) != 1 {
			return nil
		}
		minterms[i] = bits.TrailingZeros64(bitsv)
	}
	pol := "ah"
	if activeLow {
		pol = "al"
	}
	name := fmt.Sprintf("re_decoder_w%d_%s", k, pol)
	for _, mt := range minterms {
		name += fmt.Sprintf("_m%d", mt)
	}
	covered := coverableElements(nl, m, false, in)
	if !containsAll(covered, out) {
		return nil
	}
	return &instance{
		template: name,
		ports:    []portConn{{"in", in}, {"out", out}},
		outputs:  out,
		covered:  covered,
	}
}

// planParity lowers an xor tree. Leaves may repeat (a net feeding the
// tree twice cancels), so the proof enumerates the distinct leaves and
// expects the parity of the odd-multiplicity subset.
func planParity(nl *netlist.Netlist, m *module.Module) *instance {
	in, out := m.Port("in"), m.Port("out")
	if len(out) != 1 || len(in) < 2 {
		return nil
	}
	mult := map[netlist.ID]int{}
	var order []netlist.ID
	for _, id := range in {
		if mult[id] == 0 {
			order = append(order, id)
		}
		mult[id]++
	}
	var oddMask uint
	for i, id := range order {
		if mult[id]%2 == 1 {
			oddMask |= 1 << uint(i)
		}
	}
	f := func(row uint) bool { return bits.OnesCount(row&oddMask)%2 == 1 }
	if !exactFunc(nl, out[0], order, f) {
		return nil
	}
	odd := make([]netlist.ID, 0, len(order))
	for _, id := range order {
		if mult[id]%2 == 1 {
			odd = append(odd, id)
		}
	}
	if len(odd) == 0 {
		return nil // constant zero; leave as residual logic
	}
	covered := coverableElements(nl, m, false, order)
	if !containsAll(covered, out) {
		return nil
	}
	return &instance{
		template: fmt.Sprintf("re_parity_w%d", len(odd)),
		ports:    []portConn{{"in", odd}, {"out", out}},
		outputs:  out,
		covered:  covered,
	}
}

// planPopCount lowers a population counter whose count word is the low
// bits of popcount(in), proven exhaustively.
func planPopCount(nl *netlist.Netlist, m *module.Module) *instance {
	in, count := m.Port("in"), m.Port("count")
	k := len(in)
	if k < 3 || k > maxExactVars || len(count) < 2 {
		return nil
	}
	for j, c := range count {
		jj := j
		ok := exactFunc(nl, c, in, func(row uint) bool {
			return bits.OnesCount(row)>>uint(jj)&1 == 1
		})
		if !ok {
			return nil
		}
	}
	covered := coverableElements(nl, m, false, in)
	if !containsAll(covered, count) {
		return nil
	}
	return &instance{
		template: fmt.Sprintf("re_popcount_w%d_o%d", k, len(count)),
		ports:    []portConn{{"in", in}, {"count", count}},
		outputs:  count,
		covered:  covered,
	}
}

// --- sequential planners ---

// matchNot returns the fanin of a Not gate, or Nil.
func matchNot(nl *netlist.Netlist, id netlist.ID) netlist.ID {
	if nl.Kind(id) == netlist.Not {
		return nl.Fanin(id)[0]
	}
	return netlist.Nil
}

// matchMux2 recognizes Or(And(sel,d1), And(~sel,d0)) in any argument
// order and returns (sel, d0, d1).
func matchMux2(nl *netlist.Netlist, id netlist.ID) (sel, d0, d1 netlist.ID, ok bool) {
	if nl.Kind(id) != netlist.Or || len(nl.Fanin(id)) != 2 {
		return
	}
	x, y := nl.Fanin(id)[0], nl.Fanin(id)[1]
	if nl.Kind(x) != netlist.And || len(nl.Fanin(x)) != 2 ||
		nl.Kind(y) != netlist.And || len(nl.Fanin(y)) != 2 {
		return
	}
	try := func(hi, lo netlist.ID) (netlist.ID, netlist.ID, netlist.ID, bool) {
		// hi = And(sel, d1), lo = And(ns, d0) with ns = Not(sel).
		lf := nl.Fanin(lo)
		for ni := 0; ni < 2; ni++ {
			s := matchNot(nl, lf[ni])
			if s == netlist.Nil {
				continue
			}
			hf := nl.Fanin(hi)
			for si := 0; si < 2; si++ {
				if hf[si] == s {
					return s, lf[1-ni], hf[1-si], true
				}
			}
		}
		return netlist.Nil, netlist.Nil, netlist.Nil, false
	}
	if s, a0, a1, got := try(x, y); got {
		return s, a0, a1, true
	}
	if s, a0, a1, got := try(y, x); got {
		return s, a0, a1, true
	}
	return
}

// planCounter structurally matches the canonical synchronous counter
// next-state shape: D_i = And(~rst, Xor(q_i, T_i)) with T_i the AND of
// the enable and the i lower bits (complemented for a down counter). The
// gate pattern pins the function exactly, so no simulation is needed.
func planCounter(nl *netlist.Netlist, m *module.Module) *regBlock {
	q := m.Port("q")
	w := len(q)
	if w < 2 {
		return nil
	}
	down := m.Attr != nil && m.Attr["direction"] == "down"
	inQ := map[netlist.ID]int{}
	for i, l := range q {
		if nl.Kind(l) != netlist.Latch {
			return nil
		}
		inQ[l] = i
	}

	var en, rst netlist.ID = netlist.Nil, netlist.Nil
	// lowerOf returns the net that must appear as q_j (up) or ~q_j
	// (down) inside toggle terms.
	lowerMatches := func(id netlist.ID, j int) bool {
		if !down {
			return id == q[j]
		}
		return matchNot(nl, id) == q[j]
	}
	for i, l := range q {
		d := nl.Fanin(l)[0]
		toggled := d
		// Optional synchronous reset wrapper: And(Not(rst), toggled).
		if nl.Kind(d) == netlist.And && len(nl.Fanin(d)) == 2 {
			f := nl.Fanin(d)
			for ni := 0; ni < 2; ni++ {
				if r := matchNot(nl, f[ni]); r != netlist.Nil && (rst == netlist.Nil || rst == r) {
					rst, toggled = r, f[1-ni]
					break
				}
			}
			if toggled == d {
				return nil
			}
		} else if rst != netlist.Nil {
			return nil
		}
		if nl.Kind(toggled) != netlist.Xor || len(nl.Fanin(toggled)) != 2 {
			return nil
		}
		tf := nl.Fanin(toggled)
		var lower netlist.ID
		if tf[0] == l {
			lower = tf[1]
		} else if tf[1] == l {
			lower = tf[0]
		} else {
			return nil
		}
		switch i {
		case 0:
			en = lower
		case 1:
			if nl.Kind(lower) != netlist.And || len(nl.Fanin(lower)) != 2 {
				return nil
			}
			lf := nl.Fanin(lower)
			if lf[0] == en && lowerMatches(lf[1], 0) {
			} else if lf[1] == en && lowerMatches(lf[0], 0) {
			} else {
				return nil
			}
		default:
			if nl.Kind(lower) != netlist.And || len(nl.Fanin(lower)) != i+1 {
				return nil
			}
			need := map[int]bool{}
			sawEn := false
			for _, f := range nl.Fanin(lower) {
				if f == en && !sawEn {
					sawEn = true
					continue
				}
				matched := false
				for j := 0; j < i; j++ {
					if !need[j] && lowerMatches(f, j) {
						need[j] = true
						matched = true
						break
					}
				}
				if !matched {
					return nil
				}
			}
			if !sawEn || len(need) != i {
				return nil
			}
		}
	}
	// An enable that is itself a counter bit would break the word-level
	// reading; bail out to residual logic.
	if en == netlist.Nil {
		return nil
	}
	if _, isQ := inQ[en]; isQ {
		return nil
	}
	return &regBlock{
		kind:    regCounter,
		q:       q,
		en:      en,
		rst:     rst,
		down:    down,
		covered: coverableElements(nl, m, true, minus([]netlist.ID{en, rst}, q)),
	}
}

// planShift matches each lane of a (possibly multi-lane) shift register:
// D_i = And(~rst, Mux2(en, q_i, prev)), optionally without the reset
// wrapper. Each lane becomes its own always block.
func planShift(nl *netlist.Netlist, m *module.Module) []*regBlock {
	var lanes [][]netlist.ID
	for i := 0; ; i++ {
		lane := m.Port(fmt.Sprintf("q%d", i))
		if len(lane) == 0 {
			break
		}
		lanes = append(lanes, lane)
	}
	if len(lanes) == 0 {
		return nil
	}
	// Split the module's covered elements per lane afterwards; simplest
	// correct split: the lane's latches plus the D cones matched below.
	var out []*regBlock
	var en, rst netlist.ID = netlist.Nil, netlist.Nil
	for li, lane := range lanes {
		if len(lane) < 2 {
			return nil
		}
		rb := &regBlock{kind: regShift, q: lane}
		var matched []netlist.ID
		matched = append(matched, lane...)
		for i, l := range lane {
			if nl.Kind(l) != netlist.Latch {
				return nil
			}
			d := nl.Fanin(l)[0]
			muxNet := d
			if nl.Kind(d) == netlist.And && len(nl.Fanin(d)) == 2 {
				f := nl.Fanin(d)
				found := false
				for ni := 0; ni < 2; ni++ {
					if r := matchNot(nl, f[ni]); r != netlist.Nil && (rst == netlist.Nil || rst == r) {
						rst, muxNet = r, f[1-ni]
						found = true
						break
					}
				}
				if !found {
					return nil
				}
				matched = append(matched, d)
				matched = append(matched, nl.Fanin(d)...) // the Not(rst)
			} else if rst != netlist.Nil {
				return nil
			}
			s, d0, d1, ok := matchMux2(nl, muxNet)
			if !ok || d0 != l {
				return nil
			}
			if en == netlist.Nil {
				en = s
			} else if en != s {
				return nil
			}
			prev := rb.serialIn
			if i == 0 {
				rb.serialIn = d1
			} else if d1 != lane[i-1] {
				return nil
			}
			_ = prev
			matched = append(matched, muxNet)
			// The mux expands to two ANDs plus a shared Not(en); sweep
			// the grand-fanins so the inverter is hidden too (the
			// element-set intersection below drops port nets again).
			for _, f := range nl.Fanin(muxNet) {
				matched = append(matched, f)
				matched = append(matched, nl.Fanin(f)...)
			}
		}
		rb.en, rb.rst = en, rst
		// Covered set: restrict the module elements to this lane's
		// matched nodes so multi-lane modules split cleanly.
		elemSet := map[netlist.ID]bool{}
		for _, e := range coverableElements(nl, m, true, minus([]netlist.ID{en, rst, rb.serialIn}, lane)) {
			elemSet[e] = true
		}
		for _, id := range matched {
			if elemSet[id] {
				rb.covered = append(rb.covered, id)
			}
		}
		_ = li
		out = append(out, rb)
	}
	return out
}

// planRegister matches the Figure-7 multibit register: a cascade of word
// muxes ending in the hold leg, i.e. D = c_k ? src_k : (... c_0 ? src_0
// : q). Conditions are recovered outermost first.
func planRegister(nl *netlist.Netlist, m *module.Module) *regBlock {
	q := m.Port("q")
	w := len(q)
	if w < 2 {
		return nil
	}
	for _, l := range q {
		if nl.Kind(l) != netlist.Latch {
			return nil
		}
	}
	level := make([]netlist.ID, w)
	for i, l := range q {
		level[i] = nl.Fanin(l)[0]
	}
	rb := &regBlock{kind: regLoad, q: q}
	for depth := 0; depth < 8; depth++ {
		if idsEqual(level, q) {
			if depth == 0 {
				return nil
			}
			rb.covered = coverableElements(nl, m, true,
				minus(append(append([]netlist.ID{}, rb.conds...), flatten(rb.srcs)...), q))
			return rb
		}
		var cond netlist.ID = netlist.Nil
		src := make([]netlist.ID, w)
		next := make([]netlist.ID, w)
		for i, d := range level {
			s, d0, d1, ok := matchMux2(nl, d)
			if !ok {
				return nil
			}
			if cond == netlist.Nil {
				cond = s
			} else if cond != s {
				return nil
			}
			src[i], next[i] = d1, d0
		}
		rb.conds = append(rb.conds, cond)
		rb.srcs = append(rb.srcs, src)
		level = next
	}
	return nil
}

// --- small helpers ---

func concat(words ...[]netlist.ID) []netlist.ID {
	var out []netlist.ID
	for _, w := range words {
		out = append(out, w...)
	}
	return out
}

func flatten(words [][]netlist.ID) []netlist.ID { return concat(words...) }

// minus returns ids without any member of drop.
func minus(ids, drop []netlist.ID) []netlist.ID {
	in := map[netlist.ID]bool{}
	for _, id := range drop {
		in[id] = true
	}
	var out []netlist.ID
	for _, id := range ids {
		if !in[id] {
			out = append(out, id)
		}
	}
	return out
}

func containsAll(set []netlist.ID, want []netlist.ID) bool {
	in := map[netlist.ID]bool{}
	for _, id := range set {
		in[id] = true
	}
	for _, id := range want {
		if !in[id] {
			return false
		}
	}
	return true
}

func idsEqual(a, b []netlist.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortIDsByName orders ids by their emitted names.
func sortIDsByName(ids []netlist.ID, name func(netlist.ID) string) {
	sort.Slice(ids, func(i, j int) bool { return name(ids[i]) < name(ids[j]) })
}
