package rtl

// Netlist construction for the elaborator: demand-driven resolution of
// every scanned definition, template expansion, and the evaluator for
// always-block next-state expressions. Gate shapes built here mirror
// internal/gen (mux legs, ripple increments) so a re-analysis of the
// elaborated netlist recovers the same structures.

import (
	"fmt"

	"netlistre/internal/netlist"
)

// builder resolves net names to node IDs over a growing netlist.
type builder struct {
	e     *elab
	nl    *netlist.Netlist
	memo  map[string]netlist.ID
	stack map[string]bool // cycle guard over combinational resolution
	ph    netlist.ID      // latch D placeholder; Nil until first needed
	path  []string        // current resolution chain, for cycle reports

	// pendingD queues residual latch D cones: they are sequential, so
	// resolving them inline would thread an unrelated combinational
	// context (and possibly a half-expanded instance) through the guard.
	pendingD []pendingLatch
}

// pendingLatch is a residual dff awaiting its D cone.
type pendingLatch struct {
	lat   netlist.ID
	dName string
}

func (e *elab) build() (*netlist.Netlist, error) {
	b := &builder{
		e:     e,
		nl:    netlist.New(e.design),
		memo:  map[string]netlist.ID{},
		stack: map[string]bool{},
		ph:    netlist.Nil,
	}
	// Inputs first, in declaration order; the clock is structural only.
	for _, in := range e.inputs {
		if in == e.clk {
			continue
		}
		b.memo[in] = b.nl.AddInput(in)
	}
	if e.clk != "" {
		if d, ok := e.defs[e.clk]; !ok || d.kind != defInput {
			return nil, fmt.Errorf("rtl: clock %s is not an input", e.clk)
		}
	}
	// Register latches next so feedback paths resolve.
	for _, rd := range e.regs {
		if rd.qNames == nil {
			return nil, fmt.Errorf("rtl: register %s has no unpack alias", rd.name)
		}
		if rd.expr == nil {
			return nil, fmt.Errorf("rtl: register %s is never assigned", rd.name)
		}
		rd.lats = make([]netlist.ID, rd.width)
		for i, qn := range rd.qNames {
			rd.lats[i] = b.nl.AddNamedLatch(qn, b.placeholder())
			b.memo[qn] = rd.lats[i]
		}
	}
	// Materialize every statement-defined net in file order.
	for _, name := range e.order {
		if _, err := b.resolve(name); err != nil {
			return nil, err
		}
	}
	// Residual latch D cones (resolving one may surface further dffs).
	for i := 0; i < len(b.pendingD); i++ {
		pd := b.pendingD[i]
		dd, err := b.resolve(pd.dName)
		if err != nil {
			return nil, err
		}
		b.nl.SetLatchD(pd.lat, dd)
	}
	// Register next-state logic.
	for _, rd := range e.regs {
		d, err := b.eval(rd.expr, rd)
		if err != nil {
			return nil, fmt.Errorf("rtl: register %s: %w", rd.name, err)
		}
		if len(d) != rd.width {
			return nil, fmt.Errorf("rtl: register %s: next-state width %d, want %d",
				rd.name, len(d), rd.width)
		}
		for i, lat := range rd.lats {
			b.nl.SetLatchD(lat, d[i])
		}
	}
	// Outputs, in declaration order.
	for _, on := range e.outputs {
		id, err := b.resolve(on)
		if err != nil {
			return nil, err
		}
		b.nl.MarkOutput(on, id)
	}
	if err := b.nl.Validate(); err != nil {
		return nil, fmt.Errorf("rtl: elaborated netlist invalid: %w", err)
	}
	return b.nl, nil
}

// placeholder returns a safe temporary latch D, patched by SetLatchD.
func (b *builder) placeholder() netlist.ID {
	if b.ph == netlist.Nil {
		if ins := b.nl.Inputs(); len(ins) > 0 {
			b.ph = ins[0]
		} else {
			b.ph = b.nl.AddConst(false)
		}
	}
	return b.ph
}

// resolve materializes the node for a net name.
func (b *builder) resolve(name string) (netlist.ID, error) {
	if id, ok := b.memo[name]; ok {
		return id, nil
	}
	if b.stack[name] {
		return netlist.Nil, fmt.Errorf("rtl: combinational cycle through %s (path %v)", name, b.path)
	}
	d, ok := b.e.defs[name]
	if !ok {
		return netlist.Nil, fmt.Errorf("rtl: undefined net %s", name)
	}
	b.stack[name] = true
	b.path = append(b.path, name)
	defer func() { delete(b.stack, name); b.path = b.path[:len(b.path)-1] }()
	switch d.kind {
	case defConst:
		id := b.nl.AddConst(d.cval)
		if b.nl.Node(id).Name == "" {
			b.nl.SetName(id, name)
		}
		b.memo[name] = id
		return id, nil
	case defGate:
		fanin := make([]netlist.ID, len(d.args))
		for i, a := range d.args {
			f, err := b.resolve(a)
			if err != nil {
				return netlist.Nil, err
			}
			fanin[i] = f
		}
		id := b.nl.AddNamedGate(name, d.gate, fanin...)
		b.memo[name] = id
		return id, nil
	case defLut:
		fanin := make([]netlist.ID, len(d.args))
		for i, a := range d.args {
			f, err := b.resolve(a)
			if err != nil {
				return netlist.Nil, err
			}
			fanin[i] = f
		}
		id := b.nl.AddNamedLut(name, d.mask, fanin...)
		b.memo[name] = id
		return id, nil
	case defDff:
		id := b.nl.AddNamedLatch(name, b.placeholder())
		b.memo[name] = id // break the feedback before resolving D
		b.pendingD = append(b.pendingD, pendingLatch{lat: id, dName: d.args[0]})
		return id, nil
	case defAlias:
		if d.reg != nil {
			// Unpack alias bit; latches were created upfront.
			return netlist.Nil, fmt.Errorf("rtl: unpack alias %s resolved before registers", name)
		}
		id, err := b.resolve(d.args[0])
		if err != nil {
			return netlist.Nil, err
		}
		b.memo[name] = id
		return id, nil
	case defInst:
		if err := b.expand(d.inst); err != nil {
			return netlist.Nil, err
		}
		id, ok := b.memo[name]
		if !ok {
			return netlist.Nil, fmt.Errorf("rtl: instance %s did not drive %s", d.inst.name, name)
		}
		return id, nil
	case defReg:
		return netlist.Nil, fmt.Errorf("rtl: raw register %s referenced as a scalar", name)
	default: // defInput handled via memo
		return netlist.Nil, fmt.Errorf("rtl: unresolvable net %s", name)
	}
}

// expand builds one template instance's gates and names its outputs.
func (b *builder) expand(inst *instDef) error {
	if inst.done {
		return nil
	}
	inst.done = true
	ports := map[string][]netlist.ID{}
	for _, pw := range inst.tmpl.portWidths() {
		if pw.out {
			continue
		}
		ids := make([]netlist.ID, len(inst.conns[pw.name]))
		for i, n := range inst.conns[pw.name] {
			id, err := b.resolve(n)
			if err != nil {
				return err
			}
			ids[i] = id
		}
		ports[pw.name] = ids
	}
	outs, err := expandTemplate(b.nl, inst.tmpl, ports)
	if err != nil {
		return err
	}
	for _, pw := range inst.tmpl.portWidths() {
		if !pw.out {
			continue
		}
		roots := outs[pw.name]
		if len(roots) != pw.width {
			return fmt.Errorf("rtl: template %s expansion drove %d bits on %s, want %d",
				inst.name, len(roots), pw.name, pw.width)
		}
		for i, n := range inst.conns[pw.name] {
			b.nl.SetName(roots[i], n)
			b.memo[n] = roots[i]
		}
	}
	return nil
}

// --- always-block expression evaluation ---

// eval parses and builds a next-state expression, returning its bits LSB
// first. rd provides the register the expression belongs to (its name
// resolves to the current latch outputs).
func (b *builder) eval(toks []token, rd *regDef) ([]netlist.ID, error) {
	p := &exprParser{b: b, toks: toks, rd: rd}
	v, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("trailing tokens in expression")
	}
	return v, nil
}

type exprParser struct {
	b    *builder
	toks []token
	rd   *regDef
	pos  int
}

func (p *exprParser) peek() byte {
	if p.pos >= len(p.toks) {
		return 0
	}
	return p.toks[p.pos].kind
}

func (p *exprParser) next() token {
	t := p.toks[p.pos]
	p.pos++
	return t
}

// parseExpr := sum ('?' parseExpr ':' parseExpr)?
func (p *exprParser) parseExpr() ([]netlist.ID, error) {
	cond, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	if p.peek() != '?' {
		return cond, nil
	}
	p.next()
	if len(cond) != 1 {
		return nil, fmt.Errorf("ternary condition must be one bit")
	}
	thenV, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek() != ':' {
		return nil, fmt.Errorf("missing ':' in ternary")
	}
	p.next()
	elseV, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if len(thenV) != len(elseV) {
		return nil, fmt.Errorf("ternary arm widths differ (%d vs %d)", len(thenV), len(elseV))
	}
	nl := p.b.nl
	ns := nl.AddGate(netlist.Not, cond[0])
	out := make([]netlist.ID, len(thenV))
	for i := range thenV {
		out[i] = nl.AddGate(netlist.Or,
			nl.AddGate(netlist.And, cond[0], thenV[i]),
			nl.AddGate(netlist.And, ns, elseV[i]))
	}
	return out, nil
}

// parseSum := operand (('+'|'-') literal-one)?
func (p *exprParser) parseSum() ([]netlist.ID, error) {
	v, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	k := p.peek()
	if k != '+' && k != '-' {
		return v, nil
	}
	p.next()
	if p.peek() != 'n' {
		return nil, fmt.Errorf("expected literal after %c", k)
	}
	w, val, err := parseLiteral(p.next())
	if err != nil {
		return nil, err
	}
	if val != 1 || w != len(v) {
		return nil, fmt.Errorf("only +/- %d'd1 steps are supported", len(v))
	}
	if k == '+' {
		return p.b.increment(v), nil
	}
	return p.b.decrement(v), nil
}

func (p *exprParser) parseOperand() ([]netlist.ID, error) {
	switch p.peek() {
	case '(':
		p.next()
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("missing ')'")
		}
		p.next()
		return v, nil
	case '{':
		p.next()
		var partsMSB [][]netlist.ID
		for {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			partsMSB = append(partsMSB, v)
			if p.peek() == ',' {
				p.next()
				continue
			}
			break
		}
		if p.peek() != '}' {
			return nil, fmt.Errorf("missing '}'")
		}
		p.next()
		var out []netlist.ID
		for i := len(partsMSB) - 1; i >= 0; i-- {
			out = append(out, partsMSB[i]...)
		}
		return out, nil
	case 'n':
		w, val, err := parseLiteral(p.next())
		if err != nil {
			return nil, err
		}
		if val != 0 {
			return nil, fmt.Errorf("only zero literals appear as operands")
		}
		out := make([]netlist.ID, w)
		z := p.b.nl.AddConst(false)
		for i := range out {
			out[i] = z
		}
		return out, nil
	case 'i':
		name := p.next().text
		if d, ok := p.b.e.defs[name]; ok && d.kind == defReg {
			bits := append([]netlist.ID(nil), d.reg.lats...)
			if p.peek() == '[' {
				p.next()
				if p.peek() != 'n' {
					return nil, fmt.Errorf("malformed slice")
				}
				hi := p.next()
				if p.peek() != ':' {
					return nil, fmt.Errorf("malformed slice")
				}
				p.next()
				if p.peek() != 'n' {
					return nil, fmt.Errorf("malformed slice")
				}
				lo := p.next()
				if p.peek() != ']' {
					return nil, fmt.Errorf("malformed slice")
				}
				p.next()
				h, err1 := atoiTok(hi)
				l, err2 := atoiTok(lo)
				if err1 != nil || err2 != nil || l < 0 || h < l || h >= len(bits) {
					return nil, fmt.Errorf("slice [%s:%s] out of range", hi.text, lo.text)
				}
				bits = bits[l : h+1]
			}
			return bits, nil
		}
		id, err := p.b.resolve(name)
		if err != nil {
			return nil, err
		}
		return []netlist.ID{id}, nil
	}
	return nil, fmt.Errorf("unexpected token in expression")
}

func atoiTok(t token) (int, error) {
	var n int
	for i := 0; i < len(t.text); i++ {
		c := t.text[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("not a plain number: %s", t.text)
		}
		n = n*10 + int(c-'0')
		if n > 1<<20 {
			return 0, fmt.Errorf("number too large: %s", t.text)
		}
	}
	return n, nil
}

// increment builds v + 1 as a ripple chain: out_i = v_i ^ AND(v_0..v_i-1).
func (b *builder) increment(v []netlist.ID) []netlist.ID {
	nl := b.nl
	out := make([]netlist.ID, len(v))
	out[0] = nl.AddGate(netlist.Not, v[0])
	carry := v[0]
	for i := 1; i < len(v); i++ {
		out[i] = nl.AddGate(netlist.Xor, v[i], carry)
		if i < len(v)-1 {
			carry = nl.AddGate(netlist.And, carry, v[i])
		}
	}
	return out
}

// decrement builds v - 1: out_i = v_i ^ AND(~v_0..~v_i-1).
func (b *builder) decrement(v []netlist.ID) []netlist.ID {
	nl := b.nl
	out := make([]netlist.ID, len(v))
	nb := nl.AddGate(netlist.Not, v[0])
	out[0] = nb
	carry := nb
	for i := 1; i < len(v); i++ {
		out[i] = nl.AddGate(netlist.Xor, v[i], carry)
		if i < len(v)-1 {
			carry = nl.AddGate(netlist.And, carry, nl.AddGate(netlist.Not, v[i]))
		}
	}
	return out
}
