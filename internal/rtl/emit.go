package rtl

// The word-level Verilog renderer. Every ordering and naming decision
// keys on net names (never raw node IDs), so the emitted bytes are
// identical across worker counts and across Verilog/BLIF serializations
// of the same design — round-tripped netlists carry the same names even
// though their IDs differ.

import (
	"fmt"
	"sort"
	"strings"

	"netlistre/internal/core"
	"netlistre/internal/netlist"
)

// lineWriter accumulates output and tracks 1-based line numbers.
type lineWriter struct {
	b    strings.Builder
	line int
}

// linef writes one line and returns its line number.
func (w *lineWriter) linef(format string, a ...any) int {
	w.line++
	fmt.Fprintf(&w.b, format, a...)
	w.b.WriteByte('\n')
	return w.line
}

// raw writes pre-formatted text, counting its newlines.
func (w *lineWriter) raw(s string) {
	w.line += strings.Count(s, "\n")
	w.b.WriteString(s)
}

var primOf = map[netlist.Kind]string{
	netlist.And: "and", netlist.Or: "or", netlist.Nand: "nand",
	netlist.Nor: "nor", netlist.Xor: "xor", netlist.Xnor: "xnor",
	netlist.Not: "not", netlist.Buf: "buf",
}

// Emit lowers the report's recovered structure over nl into word-level
// Verilog. A nil report (or one without resolved modules) produces a pure
// structural passthrough, which the checker verifies fingerprint-exactly.
func Emit(nl *netlist.Netlist, rep *core.Report) (*EmitResult, error) {
	if nl == nil {
		return nil, fmt.Errorf("rtl: nil netlist")
	}
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("rtl: invalid input netlist: %w", err)
	}
	p := &plan{covered: map[netlist.ID]bool{}, exposed: map[netlist.ID]bool{}, referenced: map[netlist.ID]bool{}, owner: map[netlist.ID]*instance{}}
	if rep != nil {
		p = buildPlans(nl, rep)
	}
	hidden := func(id netlist.ID) bool { return p.covered[id] && !p.exposed[id] }

	// --- naming ---
	nm := netlist.NewNamer()
	outs := nl.Outputs()
	outNames := make([]string, len(outs))
	reuseFor := map[string]netlist.ID{} // claimed output name -> driver
	for i, o := range outs {
		outNames[i] = nm.Claim(o.Name)
		if _, dup := reuseFor[outNames[i]]; !dup {
			reuseFor[outNames[i]] = o.Driver
		}
	}
	nodeName := make(map[netlist.ID]string, nl.Len())
	reused := map[string]bool{} // output names directly carried by their driver
	for id := netlist.ID(0); int(id) < nl.Len(); id++ {
		if hidden(id) {
			continue
		}
		desired := netlist.Legalize(nl.NameOf(id))
		if drv, ok := reuseFor[desired]; ok && drv == id && !reused[desired] && nl.Kind(id) != netlist.Input {
			nodeName[id] = desired
			reused[desired] = true
			continue
		}
		nodeName[id] = nm.Claim(nl.NameOf(id))
	}
	name := func(id netlist.ID) string {
		n, ok := nodeName[id]
		if !ok {
			// Unreachable if the planner's leak check holds.
			panic(fmt.Sprintf("rtl: reference to hidden node %d", id))
		}
		return n
	}
	clkName := ""
	if len(p.regs) > 0 {
		clkName = nm.Claim("clk")
	}

	// --- deterministic ordering & derived names ---
	// Words: fully visible, width >= 2, deduplicated, sorted by bit names.
	type wordDecl struct {
		key  string
		name string
		bits []netlist.ID
	}
	var wdecls []wordDecl
	if rep != nil {
		seen := map[string]bool{}
		for _, w := range rep.Words {
			if len(w.Bits) < 2 {
				continue
			}
			ok := true
			names := make([]string, len(w.Bits))
			for i, b := range w.Bits {
				n, vis := nodeName[b]
				if !vis {
					ok = false
					break
				}
				names[i] = n
			}
			if !ok {
				continue
			}
			key := strings.Join(names, ",")
			if seen[key] {
				continue
			}
			seen[key] = true
			wdecls = append(wdecls, wordDecl{key: key, bits: w.Bits})
		}
		sort.Slice(wdecls, func(i, j int) bool { return wdecls[i].key < wdecls[j].key })
		for i := range wdecls {
			wdecls[i].name = nm.Claim(fmt.Sprintf("w%d", i))
		}
	}

	insts := append([]*instance(nil), p.instances...)
	sort.Slice(insts, func(i, j int) bool {
		ki := insts[i].template + "\x00" + name(insts[i].outputs[0])
		kj := insts[j].template + "\x00" + name(insts[j].outputs[0])
		return ki < kj
	})
	instName := make([]string, len(insts))
	for i := range insts {
		instName[i] = nm.Claim(fmt.Sprintf("u%d", i))
	}

	regs := append([]*regBlock(nil), p.regs...)
	sort.Slice(regs, func(i, j int) bool { return name(regs[i].q[0]) < name(regs[j].q[0]) })
	regName := make([]string, len(regs))
	for i, rb := range regs {
		prefix := map[int]string{regCounter: "cnt_", regShift: "sr_", regLoad: "reg_"}[rb.kind]
		regName[i] = nm.Claim(prefix + name(rb.q[0]))
	}

	// Residual nodes, sorted by emitted name.
	var residual []netlist.ID
	stats := EmitStats{
		Instances:       len(insts),
		AlwaysBlocks:    len(regs),
		CoveredElements: len(p.covered),
		Words:           len(wdecls),
	}
	for id := netlist.ID(0); int(id) < nl.Len(); id++ {
		if p.covered[id] {
			continue
		}
		switch k := nl.Kind(id); {
		case k == netlist.Input:
		case k == netlist.Latch:
			residual = append(residual, id)
			stats.ResidualLatches++
		case k.IsGate():
			residual = append(residual, id)
			stats.ResidualGates++
		default: // constants
			residual = append(residual, id)
		}
	}
	sortIDsByName(residual, name)

	// --- render ---
	w := &lineWriter{}
	lineOf := map[netlist.ID]int{}
	design := netlist.Legalize(nl.Name)
	w.linef("// %s: word-level RTL decompiled by netlistre revan.", design)
	w.linef("// instances=%d always_blocks=%d residual_gates=%d residual_latches=%d covered=%d words=%d",
		stats.Instances, stats.AlwaysBlocks, stats.ResidualGates,
		stats.ResidualLatches, stats.CoveredElements, stats.Words)

	inputs := nl.Inputs()
	var portList []string
	for _, id := range inputs {
		portList = append(portList, name(id))
	}
	if clkName != "" {
		portList = append(portList, clkName)
	}
	portList = append(portList, outNames...)
	w.linef("module %s (%s);", design, strings.Join(portList, ", "))

	for _, id := range inputs {
		lineOf[id] = w.linef("  input %s;", name(id))
	}
	if clkName != "" {
		w.linef("  input %s;", clkName)
	}
	for _, n := range outNames {
		w.linef("  output %s;", n)
	}

	// Scalar wires: every visible non-input net that is not carried
	// directly by an output declaration.
	var wireNames []string
	for id := netlist.ID(0); int(id) < nl.Len(); id++ {
		n, vis := nodeName[id]
		if !vis || nl.Kind(id) == netlist.Input || reused[n] {
			continue
		}
		wireNames = append(wireNames, n)
	}
	sort.Strings(wireNames)
	for _, n := range wireNames {
		w.linef("  wire %s;", n)
	}

	// Recovered words as documentation vectors.
	for _, wd := range wdecls {
		w.linef("  wire [%d:0] %s;  // recovered word", len(wd.bits)-1, wd.name)
		w.linef("  assign %s = %s;", wd.name, msbConcat(wd.bits, name))
	}

	for i, rb := range regs {
		w.linef("  reg [%d:0] %s;", len(rb.q)-1, regName[i])
	}

	for i, inst := range insts {
		var conns []string
		for _, pc := range inst.ports {
			conns = append(conns, fmt.Sprintf(".%s(%s)", pc.name, busRef(pc.bits, name)))
		}
		ln := w.linef("  %s %s (%s);", inst.template, instName[i], strings.Join(conns, ", "))
		for _, id := range inst.covered {
			lineOf[id] = ln
		}
		for _, id := range inst.outputs {
			lineOf[id] = ln
		}
	}

	for i, rb := range regs {
		expr := regExpr(rb, regName[i], name)
		ln := w.linef("  always @(posedge %s) begin", clkName)
		w.linef("    %s <= %s;", regName[i], expr)
		w.linef("  end")
		w.linef("  assign %s = %s;", msbConcat(rb.q, name), regName[i])
		for _, id := range rb.covered {
			lineOf[id] = ln
		}
		for _, id := range rb.q {
			lineOf[id] = ln
		}
	}

	gi := 0
	hasLut := false
	for _, id := range residual {
		switch k := nl.Kind(id); {
		case k == netlist.Const0:
			lineOf[id] = w.linef("  assign %s = 1'b0;", name(id))
		case k == netlist.Const1:
			lineOf[id] = w.linef("  assign %s = 1'b1;", name(id))
		case k == netlist.Latch:
			lineOf[id] = w.linef("  dff %s (%s, %s);",
				nm.Claim(fmt.Sprintf("g%d", gi)), name(id), name(nl.Fanin(id)[0]))
			gi++
		case k == netlist.Lut:
			hasLut = true
			fanin := nl.Fanin(id)
			conns := make([]string, 0, len(fanin)+1)
			conns = append(conns, fmt.Sprintf(".O(%s)", name(id)))
			for j, f := range fanin {
				conns = append(conns, fmt.Sprintf(".I%d(%s)", j, name(f)))
			}
			lineOf[id] = w.linef("  re_lut #(.INIT(%s)) %s (%s);",
				netlist.LutInitLiteral(nl.Node(id).Mask, len(fanin)),
				nm.Claim(fmt.Sprintf("g%d", gi)), strings.Join(conns, ", "))
			gi++
		default:
			args := []string{name(id)}
			for _, f := range nl.Fanin(id) {
				args = append(args, name(f))
			}
			lineOf[id] = w.linef("  %s %s (%s);",
				primOf[k], nm.Claim(fmt.Sprintf("g%d", gi)), strings.Join(args, ", "))
			gi++
		}
	}

	for i, o := range outs {
		if reused[outNames[i]] && reuseFor[outNames[i]] == o.Driver {
			continue
		}
		w.linef("  assign %s = %s;", outNames[i], name(o.Driver))
	}
	w.linef("endmodule")

	// Template definitions, one per distinct name.
	tset := map[string]bool{}
	var tnames []string
	if hasLut {
		tset["re_lut"] = true
		tnames = append(tnames, "re_lut")
	}
	for _, inst := range insts {
		if !tset[inst.template] {
			tset[inst.template] = true
			tnames = append(tnames, inst.template)
		}
	}
	sort.Strings(tnames)
	for _, tn := range tnames {
		w.linef("")
		w.raw(templateDoc(tn))
	}

	return &EmitResult{
		Verilog:  []byte(w.b.String()),
		Stats:    stats,
		NodeName: nodeName,
		lineOf:   lineOf,
		design:   design,
		outNames: outNames,
	}, nil
}

// busRef renders a port connection: a bare identifier for one bit, an
// MSB-first concatenation otherwise.
func busRef(bits []netlist.ID, name func(netlist.ID) string) string {
	if len(bits) == 1 {
		return name(bits[0])
	}
	return msbConcat(bits, name)
}

// msbConcat renders LSB-first bits as a Verilog {msb, ..., lsb} concat.
func msbConcat(bits []netlist.ID, name func(netlist.ID) string) string {
	parts := make([]string, len(bits))
	for i, b := range bits {
		parts[len(bits)-1-i] = name(b)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// regExpr renders the next-state expression of a sequential block.
func regExpr(rb *regBlock, reg string, name func(netlist.ID) string) string {
	w := len(rb.q)
	var inner string
	switch rb.kind {
	case regCounter:
		op := "+"
		if rb.down {
			op = "-"
		}
		inner = fmt.Sprintf("%s ? %s %s %d'd1 : %s", name(rb.en), reg, op, w, reg)
	case regShift:
		shifted := fmt.Sprintf("{%s[%d:0], %s}", reg, w-2, name(rb.serialIn))
		inner = fmt.Sprintf("%s ? %s : %s", name(rb.en), shifted, reg)
	case regLoad:
		expr := reg
		for i := len(rb.conds) - 1; i >= 0; i-- {
			if i < len(rb.conds)-1 {
				expr = "(" + expr + ")"
			}
			expr = fmt.Sprintf("%s ? %s : %s", name(rb.conds[i]), msbConcat(rb.srcs[i], name), expr)
		}
		return expr
	}
	if rb.rst != netlist.Nil {
		return fmt.Sprintf("%s ? %d'd0 : (%s)", name(rb.rst), w, inner)
	}
	return inner
}
