package rtl

import (
	"bytes"
	"strings"
	"testing"

	"netlistre/internal/core"
	"netlistre/internal/gen"
	"netlistre/internal/netlist"
)

func analyze(t *testing.T, nl *netlist.Netlist, workers int) *core.Report {
	t.Helper()
	rep := core.Analyze(nl, core.Options{Workers: workers})
	if rep == nil {
		t.Fatal("analysis returned nil report")
	}
	return rep
}

func decompileOK(t *testing.T, nl *netlist.Netlist, rep *core.Report) (*EmitResult, *EquivResult) {
	t.Helper()
	er, eq, err := Decompile(nl, rep)
	if err != nil {
		if er != nil {
			t.Logf("emitted RTL:\n%s", er.Verilog)
		}
		t.Fatalf("Decompile: %v", err)
	}
	if !eq.Equivalent {
		t.Fatalf("not equivalent: %v\nemitted RTL:\n%s", eq, er.Verilog)
	}
	return er, eq
}

// TestPassthroughFingerprint: with no resolved structure the emission is a
// pure structural passthrough and must verify fingerprint-exactly.
func TestPassthroughFingerprint(t *testing.T) {
	nl := netlist.New("plain")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	g := nl.AddNamedGate("g", netlist.And, a, b)
	h := nl.AddGate(netlist.Xor, g, nl.AddConst(true))
	l := nl.AddNamedLatch("state", h)
	nl.MarkOutput("y", nl.AddGate(netlist.Or, l, a))

	er, eq := decompileOK(t, nl, nil)
	if eq.Method != "fingerprint" {
		t.Fatalf("method = %s, want fingerprint (result %v)\n%s", eq.Method, eq, er.Verilog)
	}
	if er.Stats.ResidualGates != 3 || er.Stats.ResidualLatches != 1 {
		t.Fatalf("stats = %+v", er.Stats)
	}
}

// TestComponentRoundTrip drives each component class the planner lowers
// through analyze -> emit -> elaborate -> equivalence.
func TestComponentRoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		build func(nl *netlist.Netlist)
	}{
		{"counter-up", func(nl *netlist.Netlist) {
			en, rst := nl.AddInput("en"), nl.AddInput("rst")
			gen.MarkOutputs(nl, "q", gen.Counter(nl, 4, en, rst, false))
		}},
		{"counter-down", func(nl *netlist.Netlist) {
			en, rst := nl.AddInput("en"), nl.AddInput("rst")
			gen.MarkOutputs(nl, "q", gen.Counter(nl, 4, en, rst, true))
		}},
		{"shift", func(nl *netlist.Netlist) {
			en, rst, si := nl.AddInput("en"), nl.AddInput("rst"), nl.AddInput("si")
			gen.MarkOutputs(nl, "q", gen.ShiftRegister(nl, 5, en, rst, si))
		}},
		{"register", func(nl *netlist.Netlist) {
			d := gen.InputWord(nl, "d", 4)
			we := nl.AddInput("we")
			gen.MarkOutputs(nl, "q", gen.Register(nl, d, we))
		}},
		{"adder", func(nl *netlist.Netlist) {
			a := gen.InputWord(nl, "a", 4)
			b := gen.InputWord(nl, "b", 4)
			sum, cout := gen.RippleAdder(nl, a, b, netlist.Nil)
			gen.MarkOutputs(nl, "sum", sum)
			nl.MarkOutput("cout", cout)
		}},
		{"subtractor", func(nl *netlist.Netlist) {
			a := gen.InputWord(nl, "a", 4)
			b := gen.InputWord(nl, "b", 4)
			diff, bout := gen.RippleSubtractor(nl, a, b)
			gen.MarkOutputs(nl, "diff", diff)
			nl.MarkOutput("bout", bout)
		}},
		{"mux", func(nl *netlist.Netlist) {
			sel := nl.AddInput("sel")
			d0 := gen.InputWord(nl, "d0", 4)
			d1 := gen.InputWord(nl, "d1", 4)
			gen.MarkOutputs(nl, "out", gen.Mux2Word(nl, sel, d0, d1))
		}},
		{"decoder", func(nl *netlist.Netlist) {
			sel := gen.InputWord(nl, "sel", 3)
			gen.MarkOutputs(nl, "out", gen.Decoder(nl, sel))
		}},
		{"parity", func(nl *netlist.Netlist) {
			w := gen.InputWord(nl, "x", 5)
			nl.MarkOutput("p", gen.ParityTree(nl, w))
		}},
		{"popcount", func(nl *netlist.Netlist) {
			w := gen.InputWord(nl, "x", 5)
			gen.MarkOutputs(nl, "cnt", gen.PopCount(nl, w))
		}},
	}
	lowered := 0
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nl := netlist.New(tc.name)
			tc.build(nl)
			rep := analyze(t, nl, 1)
			er, eq := decompileOK(t, nl, rep)
			t.Logf("%s: %v, stats %+v", tc.name, eq, er.Stats)
			if er.Stats.Instances > 0 || er.Stats.AlwaysBlocks > 0 {
				lowered++
			}
		})
	}
	if lowered == 0 {
		t.Fatalf("no component was lowered to word-level structure")
	}
}

// TestEmitDeterministic: identical bytes across analysis worker counts.
func TestEmitDeterministic(t *testing.T) {
	nl := netlist.New("det")
	en, rst := nl.AddInput("en"), nl.AddInput("rst")
	gen.MarkOutputs(nl, "q", gen.Counter(nl, 4, en, rst, false))
	a := gen.InputWord(nl, "a", 4)
	b := gen.InputWord(nl, "b", 4)
	sum, cout := gen.RippleAdder(nl, a, b, netlist.Nil)
	gen.MarkOutputs(nl, "sum", sum)
	nl.MarkOutput("cout", cout)

	var emitted [][]byte
	for _, workers := range []int{1, 4} {
		rep := analyze(t, nl, workers)
		er, _ := decompileOK(t, nl, rep)
		emitted = append(emitted, er.Verilog)
	}
	if !bytes.Equal(emitted[0], emitted[1]) {
		t.Fatalf("emission differs across worker counts:\n--- workers=1\n%s\n--- workers=4\n%s",
			emitted[0], emitted[1])
	}
}

// TestResidualPassthrough: gates no module covers must appear verbatim in
// the residual section, with line spans resolvable via LineOf.
func TestResidualPassthrough(t *testing.T) {
	nl := netlist.New("noisy")
	a := gen.InputWord(nl, "a", 4)
	b := gen.InputWord(nl, "b", 4)
	sum, cout := gen.RippleAdder(nl, a, b, netlist.Nil)
	gen.MarkOutputs(nl, "sum", sum)
	nl.MarkOutput("cout", cout)
	// Noise logic the analysis has no template for.
	n1 := nl.AddNamedGate("noise_nand", netlist.Nand, a[0], b[3])
	n2 := nl.AddNamedGate("noise_xnor", netlist.Xnor, n1, a[2])
	nl.MarkOutput("noise_out", n2)

	rep := analyze(t, nl, 1)
	er, _ := decompileOK(t, nl, rep)
	text := string(er.Verilog)
	for id, stmt := range map[netlist.ID]string{
		n1: "nand", n2: "xnor",
	} {
		ln := er.LineOf(id)
		if ln <= 0 {
			t.Fatalf("no line span for residual node %d\n%s", id, text)
		}
		line := strings.Split(text, "\n")[ln-1]
		if !strings.Contains(line, stmt) || !strings.Contains(line, er.NodeName[id]) {
			t.Fatalf("line %d %q does not carry residual %s gate %s",
				ln, line, stmt, er.NodeName[id])
		}
	}
}

// TestLineSpansCoverAllNodes: every original node must map to an emitted
// line (declaration, statement, instance, or always block).
func TestLineSpansCoverAllNodes(t *testing.T) {
	nl := netlist.New("spans")
	en, rst := nl.AddInput("en"), nl.AddInput("rst")
	gen.MarkOutputs(nl, "q", gen.Counter(nl, 4, en, rst, false))
	rep := analyze(t, nl, 1)
	er, _ := decompileOK(t, nl, rep)
	lines := strings.Split(string(er.Verilog), "\n")
	for id := netlist.ID(0); int(id) < nl.Len(); id++ {
		ln := er.LineOf(id)
		if ln <= 0 || ln > len(lines) {
			t.Errorf("node %d (%s, kind %v): no line span", id, nl.NameOf(id), nl.Kind(id))
		}
	}
}

// TestLutRoundTrip: residual LUT cells emit as parameterized re_lut
// instances and elaborate back to a fingerprint-identical netlist.
func TestLutRoundTrip(t *testing.T) {
	nl := netlist.New("lutted")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	c := nl.AddInput("c")
	d := nl.AddInput("d")
	l1 := nl.AddNamedLut("l1", 0xcafe, a, b, c, d)
	l2 := nl.AddNamedLut("l2", 0x6, l1, a)
	l3 := nl.AddNamedLut("l3", 0x1, l2) // 1-input: ~l2
	st := nl.AddNamedLatch("st", l3)
	nl.MarkOutput("y", nl.AddLut(0x96969696969696e8, l1, l2, l3, st, a, b))

	er, eq := decompileOK(t, nl, nil)
	if eq.Method != "fingerprint" {
		t.Fatalf("method = %s, want fingerprint (result %v)\n%s", eq.Method, eq, er.Verilog)
	}
	text := string(er.Verilog)
	for _, want := range []string{
		"re_lut #(.INIT(16'hcafe))",
		"re_lut #(.INIT(4'h6))",
		"re_lut #(.INIT(2'h1))",
		"re_lut #(.INIT(64'h96969696969696e8))",
		"module re_lut #(parameter K = 1, parameter INIT = 64'h0)",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("emitted RTL missing %q:\n%s", want, text)
		}
	}
}
