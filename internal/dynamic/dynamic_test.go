package dynamic

import (
	"math/rand"
	"testing"

	"netlistre/internal/gen"
	"netlistre/internal/netlist"
)

func TestLocateAdderResultWord(t *testing.T) {
	// The paper's idea: drive known operands through the design and find
	// where the known results surface.
	nl := netlist.New("dp")
	a := gen.InputWord(nl, "a", 8)
	b := gen.InputWord(nl, "b", 8)
	sum, _ := gen.RippleAdder(nl, a, b, netlist.Nil)
	// Extra logic so the sum is not the only thing in the design.
	sel := nl.AddInput("sel")
	gen.Mux2Word(nl, sel, a, b)

	rng := rand.New(rand.NewSource(3))
	var stimuli []map[netlist.ID]bool
	var expect []uint64
	for t := 0; t < 48; t++ {
		av, bv := uint64(rng.Intn(256)), uint64(rng.Intn(256))
		inp := map[netlist.ID]bool{sel: rng.Intn(2) == 1}
		for i := 0; i < 8; i++ {
			inp[a[i]] = av>>uint(i)&1 == 1
			inp[b[i]] = bv>>uint(i)&1 == 1
		}
		stimuli = append(stimuli, inp)
		expect = append(expect, (av+bv)&255)
	}
	tr := Record(nl, stimuli)
	m := tr.LocateWord(expect, 8, 0)
	if !m.Found() {
		t.Fatal("adder result word not located")
	}
	word, unique := m.Unique()
	if !unique {
		t.Fatalf("result word ambiguous: %v", m.CandidatesPerBit)
	}
	for i := range sum {
		if word[i] != sum[i] {
			t.Errorf("bit %d located at %d, want %d", i, word[i], sum[i])
		}
	}
}

func TestLocatePipelinedWordWithDelay(t *testing.T) {
	// A registered copy of the operand appears one cycle later; the delay
	// sweep must find it at delay 1.
	nl := netlist.New("pipe")
	d := gen.InputWord(nl, "d", 6)
	var q []netlist.ID
	for i := range d {
		q = append(q, nl.AddLatch(d[i]))
	}

	rng := rand.New(rand.NewSource(5))
	var stimuli []map[netlist.ID]bool
	var seq []uint64
	for t := 0; t < 40; t++ {
		v := uint64(rng.Intn(64))
		inp := map[netlist.ID]bool{}
		for i := 0; i < 6; i++ {
			inp[d[i]] = v>>uint(i)&1 == 1
		}
		stimuli = append(stimuli, inp)
		seq = append(seq, v)
	}
	tr := Record(nl, stimuli)

	// At delay 0 only the inputs themselves match.
	m0 := tr.LocateWord(seq[:32], 6, 0)
	if !m0.Found() {
		t.Fatal("input word not found at delay 0")
	}
	// The registered copy appears at delay 1 among the candidates.
	m1 := tr.LocateWord(seq[:32], 6, 1)
	if !m1.Found() {
		t.Fatal("registered word not found at delay 1")
	}
	for i, l := range q {
		found := false
		for _, c := range m1.CandidatesPerBit[i] {
			if c == l {
				found = true
			}
		}
		if !found {
			t.Errorf("latch %d not among delay-1 candidates for bit %d", l, i)
		}
	}
	// The sweep helper agrees.
	if _, d1, ok := tr.LocateWordAnyDelay(seq[:32], 6, 4); !ok || d1 != 0 {
		t.Errorf("delay sweep = %d, %v (want 0, true: inputs match first)", d1, ok)
	}
}

func TestLocateWordAbsent(t *testing.T) {
	nl := netlist.New("none")
	a := gen.InputWord(nl, "a", 4)
	gen.BitwiseNot(nl, a)
	var stimuli []map[netlist.ID]bool
	for t := 0; t < 20; t++ {
		inp := map[netlist.ID]bool{}
		for i := range a {
			inp[a[i]] = false
		}
		stimuli = append(stimuli, inp)
	}
	tr := Record(nl, stimuli)
	// A counting sequence never appears in a constant-zero run.
	seq := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0, 1, 2, 3, 4}
	if m := tr.LocateWord(seq, 4, 0); m.Found() {
		t.Error("nonexistent sequence located")
	}
}

func TestEquivalentNodes(t *testing.T) {
	nl := netlist.New("eq")
	x := nl.AddInput("x")
	y := nl.AddInput("y")
	g1 := nl.AddGate(netlist.And, x, y)
	g2 := nl.AddGate(netlist.And, y, x) // same function, different node
	g3 := nl.AddGate(netlist.Or, x, y)
	rng := rand.New(rand.NewSource(9))
	var stimuli []map[netlist.ID]bool
	for t := 0; t < 64; t++ {
		stimuli = append(stimuli, map[netlist.ID]bool{
			x: rng.Intn(2) == 1, y: rng.Intn(2) == 1,
		})
	}
	tr := Record(nl, stimuli)
	groups := tr.EquivalentNodes()
	foundPair := false
	for _, g := range groups {
		if len(g) == 2 && g[0] == g1 && g[1] == g2 {
			foundPair = true
		}
		for _, n := range g {
			if n == g3 && len(g) > 1 {
				t.Error("or-gate grouped with and-gates")
			}
		}
	}
	if !foundPair {
		t.Errorf("equivalent and-gates not grouped: %v", groups)
	}
}

func TestLocateAccumulatorInOC8051(t *testing.T) {
	// End-to-end: drive the oc8051 article with known ALU adds and locate
	// the accumulator register dynamically (the first analyst step in the
	// paper's trojan walkthrough).
	nl := gen.OC8051()
	name := func(s string) netlist.ID { return nl.FindByName(s) }
	rng := rand.New(rand.NewSource(12))
	var stimuli []map[netlist.ID]bool
	var expect []uint64
	acc := uint64(0)
	for t := 0; t < 40; t++ {
		av, bv := uint64(rng.Intn(256)), uint64(rng.Intn(256))
		inp := map[netlist.ID]bool{
			name("rst"): false, name("ldalu"): true, name("ldbus"): false,
			name("alumode"): false, name("iramwe"): false,
			name("alusel0"): false, name("alusel1"): false,
		}
		for i := 0; i < 8; i++ {
			inp[name("acc_in"+string(rune('0'+i)))] = av>>uint(i)&1 == 1
			inp[name("opnd"+string(rune('0'+i)))] = bv>>uint(i)&1 == 1
			inp[name("bus"+string(rune('0'+i)))] = false
		}
		stimuli = append(stimuli, inp)
		acc = (av + bv) & 255
		expect = append(expect, acc)
	}
	tr := Record(nl, stimuli)
	// The accumulator holds the sum one cycle after the ALU computes it.
	m, delay, ok := tr.LocateWordAnyDelay(expect[:32], 8, 2)
	if !ok {
		t.Fatal("accumulator value stream not located")
	}
	// Some candidate set must include the accumulator latches (named
	// outputs acc0..acc7 drive from them).
	_ = delay
	accBits := map[netlist.ID]bool{}
	for _, p := range nl.Outputs() {
		if len(p.Name) == 4 && p.Name[:3] == "acc" {
			accBits[p.Driver] = true
		}
	}
	hits := 0
	for _, cands := range m.CandidatesPerBit {
		for _, c := range cands {
			if accBits[c] {
				hits++
				break
			}
		}
	}
	if delay == 0 {
		// Delay 0 finds the combinational ALU output; the latched
		// accumulator must appear at delay 1.
		m1 := tr.LocateWord(expect[:32], 8, 1)
		if m1.Found() {
			hits = 0
			for _, cands := range m1.CandidatesPerBit {
				for _, c := range cands {
					if accBits[c] {
						hits++
						break
					}
				}
			}
		}
	}
	if hits < 8 {
		t.Errorf("accumulator latches found for only %d of 8 bits", hits)
	}
}
