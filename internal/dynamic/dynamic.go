// Package dynamic implements the simulation-based analysis sketched in
// Section VI-B.4 of the paper: simulate the netlist with carefully
// constructed stimulus and observe *where* known operand and result values
// show up. The paper's example is finding an FFT co-processor by running
// FFTs in a loop and watching for the known transform values; the general
// mechanism is value-sequence matching over a recorded trace.
//
// The static portfolio identifies what structures exist; this dynamic pass
// binds them to architectural meaning (which word is the accumulator,
// where does the known result surface).
package dynamic

import (
	"context"
	"sort"

	"netlistre/internal/netlist"
)

// Trace records the value of every node over a simulated run.
type Trace struct {
	nl     *netlist.Netlist
	cycles int
	// sig[id] packs node id's value per cycle, LSB = cycle 0, chunked into
	// uint64 words.
	sig [][]uint64
}

// Record simulates nl from the all-zero state, applying stimuli[t] at cycle
// t, and captures every node's value each cycle.
func Record(nl *netlist.Netlist, stimuli []map[netlist.ID]bool) *Trace {
	return RecordContext(context.Background(), nl, stimuli)
}

// RecordContext is Record with cooperative cancellation: the context is
// checked once per simulated cycle, and on cancellation the trace is
// truncated to the cycles completed so far.
func RecordContext(ctx context.Context, nl *netlist.Netlist, stimuli []map[netlist.ID]bool) *Trace {
	tr := &Trace{nl: nl, cycles: len(stimuli)}
	words := (len(stimuli) + 63) / 64
	tr.sig = make([][]uint64, nl.Len())
	for i := range tr.sig {
		tr.sig[i] = make([]uint64, words)
	}
	st := nl.NewState()
	for t, inp := range stimuli {
		if ctx != nil && ctx.Err() != nil {
			tr.cycles = t
			break
		}
		vals := nl.Step(st, inp)
		for id, v := range vals {
			if v {
				tr.sig[id][t/64] |= 1 << uint(t%64)
			}
		}
	}
	return tr
}

// Cycles returns the trace length.
func (tr *Trace) Cycles() int { return tr.cycles }

// Value returns node id's value at cycle t.
func (tr *Trace) Value(id netlist.ID, t int) bool {
	return tr.sig[id][t/64]>>uint(t%64)&1 == 1
}

// sigKey builds a comparable key for a node's whole value history.
func (tr *Trace) sigKey(id netlist.ID) string {
	b := make([]byte, 0, len(tr.sig[id])*8)
	for _, w := range tr.sig[id] {
		for k := 0; k < 8; k++ {
			b = append(b, byte(w>>uint(8*k)))
		}
	}
	return string(b)
}

// WordMatch is the outcome of LocateWord: for each bit position of the
// searched word, the nodes whose simulated history equals that bit's
// expected sequence.
type WordMatch struct {
	// CandidatesPerBit[i] lists the nodes matching bit i of the sequence,
	// sorted. Empty means bit i was not found anywhere.
	CandidatesPerBit [][]netlist.ID
}

// Found reports whether every bit of the word was located somewhere.
func (m WordMatch) Found() bool {
	for _, c := range m.CandidatesPerBit {
		if len(c) == 0 {
			return false
		}
	}
	return len(m.CandidatesPerBit) > 0
}

// Unique returns the word if every bit matched exactly one node.
func (m WordMatch) Unique() ([]netlist.ID, bool) {
	out := make([]netlist.ID, len(m.CandidatesPerBit))
	for i, c := range m.CandidatesPerBit {
		if len(c) != 1 {
			return nil, false
		}
		out[i] = c[0]
	}
	return out, true
}

// LocateWord searches the trace for a width-bit word whose per-cycle values
// spell the expected sequence (sequence[t] is the word's expected value at
// cycle t). delay shifts the expectation: the word shows sequence[t] at
// cycle t+delay, which locates pipelined copies of a known value.
func (tr *Trace) LocateWord(sequence []uint64, width, delay int) WordMatch {
	if delay < 0 || len(sequence)+delay > tr.cycles {
		return WordMatch{}
	}
	// Index all node signatures restricted to the window.
	type window string
	nodeSig := func(id netlist.ID) window {
		b := make([]byte, 0, (len(sequence)+7)/8)
		var cur byte
		for t := 0; t < len(sequence); t++ {
			if tr.Value(id, t+delay) {
				cur |= 1 << uint(t%8)
			}
			if t%8 == 7 || t == len(sequence)-1 {
				b = append(b, cur)
				cur = 0
			}
		}
		return window(b)
	}
	index := make(map[window][]netlist.ID)
	for id := 0; id < tr.nl.Len(); id++ {
		k := tr.nl.Kind(netlist.ID(id))
		if !k.IsGate() && k != netlist.Latch && k != netlist.Input {
			continue
		}
		w := nodeSig(netlist.ID(id))
		index[w] = append(index[w], netlist.ID(id))
	}

	m := WordMatch{CandidatesPerBit: make([][]netlist.ID, width)}
	for bit := 0; bit < width; bit++ {
		b := make([]byte, 0, (len(sequence)+7)/8)
		var cur byte
		for t := 0; t < len(sequence); t++ {
			if sequence[t]>>uint(bit)&1 == 1 {
				cur |= 1 << uint(t%8)
			}
			if t%8 == 7 || t == len(sequence)-1 {
				b = append(b, cur)
				cur = 0
			}
		}
		cands := append([]netlist.ID(nil), index[window(b)]...)
		sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
		m.CandidatesPerBit[bit] = cands
	}
	return m
}

// LocateWordAnyDelay tries delays 0..maxDelay and returns the first delay
// at which the full word is found.
func (tr *Trace) LocateWordAnyDelay(sequence []uint64, width, maxDelay int) (WordMatch, int, bool) {
	for d := 0; d <= maxDelay; d++ {
		if m := tr.LocateWord(sequence, width, d); m.Found() {
			return m, d, true
		}
	}
	return WordMatch{}, 0, false
}

// EquivalentNodes groups nodes by identical whole-trace signatures —
// a dynamic (unsound but cheap) pre-filter for structural equivalence:
// nodes in different groups are definitely inequivalent on the stimulus.
func (tr *Trace) EquivalentNodes() [][]netlist.ID {
	groups := make(map[string][]netlist.ID)
	for id := 0; id < tr.nl.Len(); id++ {
		if !tr.nl.Kind(netlist.ID(id)).IsGate() {
			continue
		}
		k := tr.sigKey(netlist.ID(id))
		groups[k] = append(groups[k], netlist.ID(id))
	}
	var out [][]netlist.ID
	for _, g := range groups {
		if len(g) >= 2 {
			sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
			out = append(out, g)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
