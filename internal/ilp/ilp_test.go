package ilp

import (
	"math/rand"
	"testing"
)

// bruteForce enumerates all assignments and returns the best objective and
// whether any assignment is feasible.
func bruteForce(p *Problem) (int64, bool) {
	best := int64(0)
	found := false
	for m := 0; m < 1<<uint(p.NumVars); m++ {
		vals := make([]bool, p.NumVars)
		for i := range vals {
			vals[i] = m>>uint(i)&1 == 1
		}
		if !feasible(p, vals) {
			continue
		}
		var obj int64
		for i, on := range vals {
			if on {
				obj += p.Objective[i]
			}
		}
		if !found {
			best = obj
			found = true
			continue
		}
		if p.Sense == Maximize && obj > best {
			best = obj
		}
		if p.Sense == Minimize && obj < best {
			best = obj
		}
	}
	return best, found
}

func TestSimplePacking(t *testing.T) {
	// Two overlapping modules of size 5 and 3 plus a disjoint module of
	// size 4: optimal coverage = 5 + 4.
	p := &Problem{NumVars: 3, Objective: []int64{5, 3, 4}, Sense: Maximize}
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 1)
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 9 || !sol.Optimal {
		t.Errorf("objective = %d optimal=%v, want 9 true", sol.Objective, sol.Optimal)
	}
	if !sol.Values[0] || sol.Values[1] || !sol.Values[2] {
		t.Errorf("values = %v, want [true false true]", sol.Values)
	}
}

func TestMinimizeWithCoverageTarget(t *testing.T) {
	// Modules of size 6, 5, 5, 2; cover at least 10 elements with the
	// fewest modules: {6,5} = 2 modules.
	p := &Problem{NumVars: 4, Objective: []int64{1, 1, 1, 1}, Sense: Minimize}
	p.AddConstraint([]Term{{0, 6}, {1, 5}, {2, 5}, {3, 2}}, GE, 10)
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 2 {
		t.Errorf("objective = %d, want 2", sol.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{NumVars: 2, Objective: []int64{1, 1}, Sense: Maximize}
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, GE, 3) // max achievable is 2
	if _, err := Solve(p, Options{}); err != ErrInfeasible {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestForcedVariables(t *testing.T) {
	// x0 >= 1 forces x0; x0 + x1 <= 1 then forces x1 = 0.
	p := &Problem{NumVars: 2, Objective: []int64{1, 10}, Sense: Maximize}
	p.AddConstraint([]Term{{0, 1}}, GE, 1)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 1)
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Values[0] || sol.Values[1] {
		t.Errorf("values = %v, want [true false]", sol.Values)
	}
	if sol.Objective != 1 {
		t.Errorf("objective = %d, want 1", sol.Objective)
	}
}

func TestSliceLinkingShape(t *testing.T) {
	// A miniature of the paper's sliceable formulation (Figure 8): a 5-bit
	// mux with slices x1..x5 and umbrella x0, overlapping a RAM module y.
	// Slices 4 and 5 overlap the RAM; MinSlices = 2.
	// Vars: 0=x_i0, 1..5=x_i1..x_i5, 6=y (RAM, size 40).
	obj := []int64{1, 3, 3, 3, 3, 3, 40} // shared inverter=1, slices=3 gates each
	p := &Problem{NumVars: 7, Objective: obj, Sense: Maximize}
	// Overlap: slice4/slice5 vs RAM.
	p.AddConstraint([]Term{{4, 1}, {6, 1}}, LE, 1)
	p.AddConstraint([]Term{{5, 1}, {6, 1}}, LE, 1)
	// Slice linking: x0 >= xj  <=>  x0 - xj >= 0.
	for j := 1; j <= 5; j++ {
		p.AddConstraint([]Term{{0, 1}, {j, -1}}, GE, 0)
	}
	// MinSlices: sum xj - 2*x0 >= 0.
	p.AddConstraint([]Term{{1, 1}, {2, 1}, {3, 1}, {4, 1}, {5, 1}, {0, -2}}, GE, 0)
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Expected: RAM + slices 1,2,3 + umbrella = 40 + 9 + 1 = 50.
	if sol.Objective != 50 {
		t.Errorf("objective = %d, want 50 (values %v)", sol.Objective, sol.Values)
	}
	if !sol.Values[6] || !sol.Values[0] || sol.Values[4] || sol.Values[5] {
		t.Errorf("values = %v", sol.Values)
	}
}

func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(9)
		p := &Problem{NumVars: n, Sense: Sense(rng.Intn(2))}
		p.Objective = make([]int64, n)
		for i := range p.Objective {
			p.Objective[i] = int64(rng.Intn(21) - 5)
		}
		nCons := rng.Intn(6)
		for c := 0; c < nCons; c++ {
			nTerms := 1 + rng.Intn(n)
			perm := rng.Perm(n)[:nTerms]
			var terms []Term
			for _, v := range perm {
				terms = append(terms, Term{v, int64(rng.Intn(9) - 3)})
			}
			rel := Rel(rng.Intn(2))
			rhs := int64(rng.Intn(13) - 4)
			p.AddConstraint(terms, rel, rhs)
		}
		want, wantFeas := bruteForce(p)
		sol, err := Solve(p, Options{})
		if !wantFeas {
			if err != ErrInfeasible {
				t.Fatalf("trial %d: expected infeasible, got %v obj=%d", trial, err, sol.Objective)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: err = %v, want feasible obj %d", trial, err, want)
		}
		if sol.Objective != want {
			t.Fatalf("trial %d: objective = %d, want %d (sense=%v)", trial, sol.Objective, want, p.Sense)
		}
		if !feasible(p, sol.Values) {
			t.Fatalf("trial %d: returned assignment infeasible", trial)
		}
	}
}

func TestLargePackingPerformance(t *testing.T) {
	// 600 modules in 200 overlapping triples must solve quickly and
	// optimally: each triple contributes its max.
	rng := rand.New(rand.NewSource(99))
	const groups = 200
	p := &Problem{NumVars: 3 * groups, Sense: Maximize}
	p.Objective = make([]int64, p.NumVars)
	var want int64
	for g := 0; g < groups; g++ {
		best := int64(0)
		var terms []Term
		for j := 0; j < 3; j++ {
			v := 3*g + j
			p.Objective[v] = int64(1 + rng.Intn(50))
			if p.Objective[v] > best {
				best = p.Objective[v]
			}
			terms = append(terms, Term{v, 1})
		}
		p.AddConstraint(terms, LE, 1)
		want += best
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != want || !sol.Optimal {
		t.Errorf("objective = %d (optimal=%v), want %d", sol.Objective, sol.Optimal, want)
	}
}
