// Package ilp implements an exact solver for 0-1 integer linear programs,
// standing in for CPLEX in the paper's overlap-resolution step (Section IV).
//
// The instances produced by overlap resolution have a characteristic shape:
// binary variables (one per module or slice), packing rows (Σ x_i ≤ 1, one
// per multiply-covered netlist element), slice-linking rows, and optionally
// a single covering row (Σ S_i·x_i ≥ C_t). The solver is a branch-and-bound
// search with unit propagation over the rows, a clique-partition bound that
// exploits the packing rows, and a greedy warm start. It is exact: when it
// reports Optimal, the solution maximizes (or minimizes) the objective.
package ilp

import (
	"errors"
	"sort"
)

// Sense selects the optimization direction.
type Sense int8

// Optimization senses.
const (
	Maximize Sense = iota
	Minimize
)

// Rel is a linear constraint relation.
type Rel int8

// Constraint relations.
const (
	LE Rel = iota // Σ c_i x_i ≤ rhs
	GE            // Σ c_i x_i ≥ rhs
)

// Term is one coefficient of a constraint row.
type Term struct {
	Var  int
	Coef int64
}

// Constraint is a linear row over binary variables.
type Constraint struct {
	Terms []Term
	Rel   Rel
	RHS   int64
}

// Problem is a 0-1 ILP.
type Problem struct {
	NumVars     int
	Objective   []int64 // dense, one weight per variable
	Sense       Sense
	Constraints []Constraint
}

// AddConstraint appends a row.
func (p *Problem) AddConstraint(terms []Term, rel Rel, rhs int64) {
	p.Constraints = append(p.Constraints, Constraint{Terms: terms, Rel: rel, RHS: rhs})
}

// Solution is a solver result.
type Solution struct {
	Values    []bool
	Objective int64
	// Optimal is true when the search completed; false when NodeLimit was
	// hit, in which case Values holds the best incumbent found.
	Optimal bool
}

// Options tunes the search.
type Options struct {
	// NodeLimit bounds branch-and-bound nodes (0 = DefaultNodeLimit).
	NodeLimit int64
	// Incumbent optionally supplies a known feasible assignment used as
	// the initial best solution (it must have length NumVars; infeasible
	// incumbents are ignored). A strong incumbent massively improves
	// pruning.
	Incumbent []bool
	// Interrupt, when non-nil, is polled every 1024 branch-and-bound
	// nodes; when it returns true the search stops and the best incumbent
	// found so far is returned with Optimal=false (or ErrInfeasible when
	// no incumbent exists yet).
	Interrupt func() bool
}

// DefaultNodeLimit bounds the search; overlap instances solve in far fewer
// nodes, so hitting this indicates a pathological input rather than a
// normal run.
const DefaultNodeLimit = 20_000_000

// ErrInfeasible is returned when no assignment satisfies the constraints.
var ErrInfeasible = errors.New("ilp: infeasible")

type varRef struct {
	row  int32
	coef int64
}

type solver struct {
	p         *Problem
	obj       []int64 // internally always "maximize obj"
	rows      []row
	varRows   [][]varRef // rows touching each variable, with coefficients
	assign    []int8     // -1 unassigned, 0, 1
	trail     []int32
	bestVal   int64
	bestSet   []bool
	hasBest   bool
	nodes     int64
	nodeLimit int64
	currObj   int64 // objective of the current partial assignment
	interrupt func() bool
	stopped   bool // interrupt fired; unwind without exploring further

	// cliqueOf[v] is the packing row used for v in the bound computation,
	// or -1.
	cliqueOf  []int32
	branchOrd []int

	// bound() scratch: per-row best unassigned objective, epoch-stamped to
	// avoid clearing between nodes.
	cliqueBest  []int64
	cliqueEpoch []int64
	epoch       int64
}

type row struct {
	terms []Term
	rel   Rel
	rhs   int64
	// slack bookkeeping under current partial assignment:
	// curr  = Σ over assigned terms of c_i * x_i
	// posUn = Σ over unassigned terms of max(0, c_i)
	// negUn = Σ over unassigned terms of min(0, c_i)
	curr, posUn, negUn int64
	packing            bool // Σ x_i ≤ 1 with unit coefficients
}

// Solve finds an optimal 0-1 assignment for p.
func Solve(p *Problem, opt Options) (Solution, error) {
	if len(p.Objective) != p.NumVars {
		return Solution{}, errors.New("ilp: objective length mismatch")
	}
	s := &solver{p: p, nodeLimit: opt.NodeLimit, interrupt: opt.Interrupt}
	if s.nodeLimit == 0 {
		s.nodeLimit = DefaultNodeLimit
	}
	s.obj = make([]int64, p.NumVars)
	for i, o := range p.Objective {
		if p.Sense == Minimize {
			s.obj[i] = -o
		} else {
			s.obj[i] = o
		}
	}
	s.rows = make([]row, len(p.Constraints))
	s.varRows = make([][]varRef, p.NumVars)
	for i, c := range p.Constraints {
		r := row{terms: c.Terms, rel: c.Rel, rhs: c.RHS}
		r.packing = c.Rel == LE && c.RHS == 1
		for _, t := range c.Terms {
			if t.Var < 0 || t.Var >= p.NumVars {
				return Solution{}, errors.New("ilp: constraint variable out of range")
			}
			if t.Coef > 0 {
				r.posUn += t.Coef
			} else {
				r.negUn += t.Coef
			}
			if t.Coef != 1 {
				r.packing = false
			}
			s.varRows[t.Var] = append(s.varRows[t.Var], varRef{int32(i), t.Coef})
		}
		s.rows[i] = r
	}
	s.assign = make([]int8, p.NumVars)
	for i := range s.assign {
		s.assign[i] = -1
	}
	s.cliqueOf = make([]int32, p.NumVars)
	for i := range s.cliqueOf {
		s.cliqueOf[i] = -1
	}
	// Assign each variable to one packing row for the clique bound,
	// preferring larger rows (bigger cliques give tighter bounds).
	rowOrder := make([]int, 0, len(s.rows))
	for ri := range s.rows {
		if s.rows[ri].packing {
			rowOrder = append(rowOrder, ri)
		}
	}
	sort.Slice(rowOrder, func(a, b int) bool {
		return len(s.rows[rowOrder[a]].terms) > len(s.rows[rowOrder[b]].terms)
	})
	for _, ri := range rowOrder {
		for _, t := range s.rows[ri].terms {
			if s.cliqueOf[t.Var] == -1 {
				s.cliqueOf[t.Var] = int32(ri)
			}
		}
	}
	// Branch on high-objective variables first.
	s.branchOrd = make([]int, p.NumVars)
	for i := range s.branchOrd {
		s.branchOrd[i] = i
	}
	sort.Slice(s.branchOrd, func(a, b int) bool {
		oa, ob := s.obj[s.branchOrd[a]], s.obj[s.branchOrd[b]]
		if oa != ob {
			return oa > ob
		}
		return s.branchOrd[a] < s.branchOrd[b]
	})

	s.greedyWarmStart()
	if len(opt.Incumbent) == p.NumVars && feasible(p, opt.Incumbent) {
		var obj int64
		for v, on := range opt.Incumbent {
			if on {
				obj += s.obj[v]
			}
		}
		if !s.hasBest || obj > s.bestVal {
			s.bestVal = obj
			s.bestSet = append([]bool(nil), opt.Incumbent...)
			s.hasBest = true
		}
	}

	mark := len(s.trail)
	if s.propagateAll() {
		s.search(0)
	}
	s.undoTo(mark)

	if !s.hasBest {
		return Solution{}, ErrInfeasible
	}
	val := s.bestVal
	if p.Sense == Minimize {
		val = -val
	}
	return Solution{Values: s.bestSet, Objective: val, Optimal: s.nodes < s.nodeLimit && !s.stopped}, nil
}

// greedyWarmStart tries to construct a feasible incumbent by greedily
// setting high-objective variables to 1 when no LE row blocks them, then
// verifying all rows. It only installs the incumbent if genuinely feasible
// (GE rows may reject it).
func (s *solver) greedyWarmStart() {
	vals := make([]bool, s.p.NumVars)
	used := make([]int64, len(s.rows))
	for _, v := range s.branchOrd {
		if s.obj[v] < 0 {
			continue
		}
		ok := true
		for _, vr := range s.varRows[v] {
			r := &s.rows[vr.row]
			if r.rel != LE {
				continue
			}
			if vr.coef > 0 && used[vr.row]+vr.coef > r.rhs {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		vals[v] = true
		for _, vr := range s.varRows[v] {
			used[vr.row] += vr.coef
		}
	}
	if !feasible(s.p, vals) {
		return
	}
	var obj int64
	for v, on := range vals {
		if on {
			obj += s.obj[v]
		}
	}
	s.bestVal = obj
	s.bestSet = vals
	s.hasBest = true
}

func feasible(p *Problem, vals []bool) bool {
	for _, c := range p.Constraints {
		var sum int64
		for _, t := range c.Terms {
			if vals[t.Var] {
				sum += t.Coef
			}
		}
		if c.Rel == LE && sum > c.RHS {
			return false
		}
		if c.Rel == GE && sum < c.RHS {
			return false
		}
	}
	return true
}

func (s *solver) currentObjective() int64 { return s.currObj }

// set assigns v (recording on the trail) and updates row slacks. It returns
// false if a row became unsatisfiable.
func (s *solver) set(v int, val int8) bool {
	s.assign[v] = val
	if val == 1 {
		s.currObj += s.obj[v]
	}
	s.trail = append(s.trail, int32(v))
	for _, vr := range s.varRows[v] {
		r := &s.rows[vr.row]
		c := vr.coef
		if c > 0 {
			r.posUn -= c
		} else {
			r.negUn -= c
		}
		if val == 1 {
			r.curr += c
		}
		if r.rel == LE && r.curr+r.negUn > r.rhs {
			return false
		}
		if r.rel == GE && r.curr+r.posUn < r.rhs {
			return false
		}
	}
	return true
}

func (s *solver) undoTo(mark int) {
	for len(s.trail) > mark {
		v := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		val := s.assign[v]
		if val == 1 {
			s.currObj -= s.obj[int(v)]
		}
		s.assign[v] = -1
		for _, vr := range s.varRows[v] {
			r := &s.rows[vr.row]
			c := vr.coef
			if c > 0 {
				r.posUn += c
			} else {
				r.negUn += c
			}
			if val == 1 {
				r.curr -= c
			}
		}
	}
}

// propagateAll performs fixed-point unit propagation over all rows,
// returning false on conflict. It is used once at the root; the search
// uses the cheaper worklist propagation below.
func (s *solver) propagateAll() bool {
	for {
		changed := false
		for ri := range s.rows {
			switch s.propagateRow(ri) {
			case propConflict:
				return false
			case propChanged:
				changed = true
			}
		}
		if !changed {
			return true
		}
	}
}

// propagateSince processes the rows touched by assignments recorded on the
// trail from mark onward; newly forced assignments extend the trail and are
// processed in turn.
func (s *solver) propagateSince(mark int) bool {
	for i := mark; i < len(s.trail); i++ {
		v := s.trail[i]
		for _, vr := range s.varRows[v] {
			if s.propagateRow(int(vr.row)) == propConflict {
				return false
			}
		}
	}
	return true
}

type propResult int8

const (
	propNone propResult = iota
	propChanged
	propConflict
)

// propagateRow forces variables whose value is implied by row ri.
func (s *solver) propagateRow(ri int) propResult {
	r := &s.rows[ri]
	res := propNone
	if r.rel == LE {
		if r.curr+r.negUn > r.rhs {
			return propConflict
		}
		for _, t := range r.terms {
			if s.assign[t.Var] != -1 {
				continue
			}
			if t.Coef > 0 && r.curr+r.negUn+t.Coef > r.rhs {
				if !s.set(t.Var, 0) {
					return propConflict
				}
				res = propChanged
			} else if t.Coef < 0 && r.curr+r.negUn-t.Coef > r.rhs {
				// Leaving it 0 removes the negative help; must set to 1.
				if !s.set(t.Var, 1) {
					return propConflict
				}
				res = propChanged
			}
		}
	} else {
		if r.curr+r.posUn < r.rhs {
			return propConflict
		}
		for _, t := range r.terms {
			if s.assign[t.Var] != -1 {
				continue
			}
			if t.Coef > 0 && r.curr+r.posUn-t.Coef < r.rhs {
				if !s.set(t.Var, 1) {
					return propConflict
				}
				res = propChanged
			} else if t.Coef < 0 && r.curr+r.posUn+t.Coef < r.rhs {
				if !s.set(t.Var, 0) {
					return propConflict
				}
				res = propChanged
			}
		}
	}
	return res
}

// bound returns an upper bound on the best achievable objective from the
// current partial assignment: the current objective plus, for each packing
// clique, the best unassigned member, plus unclustered positive weights.
func (s *solver) bound(curr int64) int64 {
	if s.cliqueBest == nil {
		s.cliqueBest = make([]int64, len(s.rows))
		s.cliqueEpoch = make([]int64, len(s.rows))
	}
	s.epoch++
	b := curr
	for v, a := range s.assign {
		if a != -1 || s.obj[v] <= 0 {
			continue
		}
		ri := s.cliqueOf[v]
		if ri == -1 {
			b += s.obj[v]
			continue
		}
		// A clique whose row already has curr = rhs contributes nothing;
		// propagation normally forces members to 0 in that case, so curr <
		// rhs here in practice.
		if s.cliqueEpoch[ri] != s.epoch {
			s.cliqueEpoch[ri] = s.epoch
			s.cliqueBest[ri] = s.obj[v]
			b += s.obj[v]
		} else if s.obj[v] > s.cliqueBest[ri] {
			b += s.obj[v] - s.cliqueBest[ri]
			s.cliqueBest[ri] = s.obj[v]
		}
	}
	return b
}

func (s *solver) search(from int) {
	s.nodes++
	if s.nodes >= s.nodeLimit || s.stopped {
		return
	}
	if s.nodes&1023 == 0 && s.interrupt != nil && s.interrupt() {
		s.stopped = true
		return
	}
	curr := s.currentObjective()
	if s.hasBest && s.bound(curr) <= s.bestVal {
		return
	}
	// Pick the best-ranked unassigned variable, scanning from the parent's
	// position (earlier entries are already assigned on this path).
	v := -1
	next := from
	for ; next < len(s.branchOrd); next++ {
		if s.assign[s.branchOrd[next]] == -1 {
			v = s.branchOrd[next]
			break
		}
	}
	if v == -1 {
		if !s.hasBest || curr > s.bestVal {
			s.bestVal = curr
			s.bestSet = make([]bool, len(s.assign))
			for i, a := range s.assign {
				s.bestSet[i] = a == 1
			}
			s.hasBest = true
		}
		return
	}

	order := [2]int8{1, 0}
	if s.obj[v] < 0 {
		order = [2]int8{0, 1}
	}
	for _, val := range order {
		mark := len(s.trail)
		if s.set(v, val) && s.propagateSince(mark) {
			s.search(next + 1)
		}
		s.undoTo(mark)
		if s.nodes >= s.nodeLimit || s.stopped {
			return
		}
	}
}
