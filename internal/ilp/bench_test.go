package ilp

import (
	"math/rand"
	"testing"
)

// BenchmarkSetPacking measures the branch & bound on overlap-shaped
// instances: unit packing rows over weighted binaries.
func BenchmarkSetPacking(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const vars = 150
	p := &Problem{NumVars: vars, Sense: Maximize}
	p.Objective = make([]int64, vars)
	for i := range p.Objective {
		p.Objective[i] = int64(1 + rng.Intn(40))
	}
	for c := 0; c < 120; c++ {
		k := 2 + rng.Intn(3)
		terms := make([]Term, k)
		for j := range terms {
			terms[j] = Term{rng.Intn(vars), 1}
		}
		p.AddConstraint(terms, LE, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p, Options{NodeLimit: 500_000}); err != nil {
			b.Fatal(err)
		}
	}
}
