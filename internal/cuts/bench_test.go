package cuts

import (
	"math/rand"
	"testing"
)

// BenchmarkEnumerate measures 6-feasible cut enumeration throughput on a
// random 2k-gate circuit (the paper's k=6 workload).
func BenchmarkEnumerate(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	nl := randomComb(rng, 12, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Enumerate(nl, Options{})
	}
}
