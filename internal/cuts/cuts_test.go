package cuts

import (
	"math/rand"
	"testing"

	"netlistre/internal/netlist"
	"netlistre/internal/truth"
)

func buildFullAdder() (*netlist.Netlist, netlist.ID, netlist.ID, [3]netlist.ID) {
	n := netlist.New("fa")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	// sum = a ^ b ^ c built from 2-input gates.
	ab := n.AddGate(netlist.Xor, a, b)
	sum := n.AddGate(netlist.Xor, ab, c)
	// carry = ab + bc + ca built as (a&b) | (c & (a^b)).
	and1 := n.AddGate(netlist.And, a, b)
	and2 := n.AddGate(netlist.And, c, ab)
	carry := n.AddGate(netlist.Or, and1, and2)
	return n, sum, carry, [3]netlist.ID{a, b, c}
}

func findCut(cs []Cut, leaves []netlist.ID) (Cut, bool) {
	for _, c := range cs {
		if equalLeaves(c.Leaves, leaves) {
			return c, true
		}
	}
	return Cut{}, false
}

func TestFullAdderCuts(t *testing.T) {
	n, sum, carry, in := buildFullAdder()
	sets := Enumerate(n, Options{})
	want := []netlist.ID{in[0], in[1], in[2]}

	sc, ok := findCut(sets[sum], want)
	if !ok {
		t.Fatalf("sum has no cut over primary inputs; cuts: %v", sets[sum])
	}
	// sum should be xor3 on the input leaves.
	xor3 := truth.Var(0, 3).Xor(truth.Var(1, 3)).Xor(truth.Var(2, 3))
	if sc.Table.Bits != xor3.Bits {
		t.Errorf("sum cut table = %v, want xor3 %v", sc.Table, xor3)
	}

	cc, ok := findCut(sets[carry], want)
	if !ok {
		t.Fatalf("carry has no cut over primary inputs")
	}
	a, b, c := truth.Var(0, 3), truth.Var(1, 3), truth.Var(2, 3)
	maj := a.And(b).Or(b.And(c)).Or(c.And(a))
	if cc.Table.Bits != maj.Bits {
		t.Errorf("carry cut table = %v, want maj %v", cc.Table, maj)
	}
}

func TestTrivialCutPresent(t *testing.T) {
	n, sum, _, _ := buildFullAdder()
	sets := Enumerate(n, Options{})
	if _, ok := findCut(sets[sum], []netlist.ID{sum}); !ok {
		t.Error("trivial cut missing")
	}
}

func TestCutRespectKLimit(t *testing.T) {
	n := netlist.New("wide")
	var ins []netlist.ID
	for i := 0; i < 8; i++ {
		ins = append(ins, n.AddInput(string(rune('a'+i))))
	}
	g := n.AddGate(netlist.And, ins...)
	for _, k := range []int{2, 4, 6} {
		sets := Enumerate(n, Options{K: k})
		for _, c := range sets[g] {
			if len(c.Leaves) > k {
				t.Errorf("K=%d: cut with %d leaves", k, len(c.Leaves))
			}
		}
		// The wide and-gate has no non-trivial k-feasible cut for k < 8.
		if len(sets[g]) != 1 {
			t.Errorf("K=%d: expected only trivial cut, got %d cuts", k, len(sets[g]))
		}
	}
}

// TestCutFunctionsMatchConeEvaluation is the core soundness property: the
// table attached to each cut must agree with concrete evaluation of the
// netlist for every assignment to the cut leaves.
func TestCutFunctionsMatchConeEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := randomComb(rng, 4+rng.Intn(3), 12+rng.Intn(12))
		sets := Enumerate(n, Options{})
		for id, cs := range sets {
			if !n.Kind(id).IsGate() {
				continue
			}
			for _, c := range cs {
				if len(c.Leaves) == 1 && c.Leaves[0] == id {
					continue // trivial
				}
				checkCut(t, n, id, c)
			}
		}
	}
}

// checkCut verifies c.Table against evaluation. Leaves are fixed per row;
// other boundary inputs get random values (they must not matter: a correct
// cut determines the root from its leaves alone).
func checkCut(t *testing.T, n *netlist.Netlist, root netlist.ID, c Cut) {
	t.Helper()
	for row := uint(0); row < 1<<uint(len(c.Leaves)); row++ {
		assign := make(map[netlist.ID]bool)
		for j, l := range c.Leaves {
			assign[l] = row>>uint(j)&1 == 1
		}
		// Leaves can be internal gates; force their cone inputs so the leaf
		// evaluates to the wanted value. Instead of solving for that, we
		// exploit Eval's boundary map only for inputs/latches, so restrict
		// checking to cuts whose leaves are all boundary nodes.
		allBoundary := true
		for _, l := range c.Leaves {
			if !n.Kind(l).IsConeInput() {
				allBoundary = false
				break
			}
		}
		if !allBoundary {
			return
		}
		vals := n.Eval(assign)
		if vals[root] != c.Table.Eval(row) {
			t.Fatalf("cut %v of node %d: row %d evaluates to %v, table says %v",
				c.Leaves, root, row, vals[root], c.Table.Eval(row))
		}
	}
}

func randomComb(rng *rand.Rand, nIn, nGates int) *netlist.Netlist {
	n := netlist.New("rand")
	var pool []netlist.ID
	for i := 0; i < nIn; i++ {
		pool = append(pool, n.AddInput(string(rune('a'+i))))
	}
	kinds := []netlist.Kind{netlist.And, netlist.Or, netlist.Nand, netlist.Nor,
		netlist.Xor, netlist.Xnor, netlist.Not}
	for i := 0; i < nGates; i++ {
		k := kinds[rng.Intn(len(kinds))]
		if k == netlist.Not {
			pool = append(pool, n.AddGate(k, pool[rng.Intn(len(pool))]))
			continue
		}
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		pool = append(pool, n.AddGate(k, a, b))
	}
	return n
}

func TestAverageCutsPerGateBand(t *testing.T) {
	// On a reasonably-sized random circuit the average number of 6-feasible
	// cuts per gate should be in a plausible band (the paper reports 15-35
	// on synthesized designs; random circuits land lower but must exceed 1,
	// i.e. more than just trivial cuts).
	rng := rand.New(rand.NewSource(9))
	n := randomComb(rng, 8, 300)
	sets := Enumerate(n, Options{})
	avg := AverageCutsPerGate(n, sets)
	if avg <= 2 || avg > 64 {
		t.Errorf("average cuts per gate = %.1f, outside sanity band", avg)
	}
}

func TestDominancePruning(t *testing.T) {
	// y = (a & b) & (a & b)  -- the two identical subterms force duplicate
	// cuts that pruning must collapse.
	n := netlist.New("dup")
	a := n.AddInput("a")
	b := n.AddInput("b")
	g1 := n.AddGate(netlist.And, a, b)
	g2 := n.AddGate(netlist.And, g1, g1)
	sets := Enumerate(n, Options{})
	seen := make(map[string]bool)
	for _, c := range sets[g2] {
		key := ""
		for _, l := range c.Leaves {
			key += string(rune(l)) + ","
		}
		if seen[key] {
			t.Errorf("duplicate cut %v", c.Leaves)
		}
		seen[key] = true
	}
	// The {a,b} cut must exist and must not be accompanied by a dominated
	// {a,b,g1} cut.
	if _, ok := findCut(sets[g2], []netlist.ID{a, b}); !ok {
		t.Error("missing {a,b} cut")
	}
	if _, ok := findCut(sets[g2], []netlist.ID{a, b, g1}); ok {
		t.Error("dominated cut {a,b,g1} survived pruning")
	}
}
