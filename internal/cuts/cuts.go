// Package cuts implements k-feasible cut enumeration with attached cut
// functions (Section II-A of the paper). A feasible cut of a node G is a set
// of nodes in G's transitive fan-in whose values determine G; a cut is
// k-feasible when it has at most k leaves. Cut enumeration was introduced
// for technology mapping and is reused here to generate candidate bitslice
// boundaries for Boolean matching.
package cuts

import (
	"math/bits"
	"sort"

	"netlistre/internal/netlist"
	"netlistre/internal/truth"
)

// Cut is a k-feasible cut of some root node, together with the Boolean
// function of the root in terms of the cut leaves (leaf j is variable j of
// the table).
type Cut struct {
	Leaves []netlist.ID // sorted ascending
	Table  truth.Table
}

// trivially reports whether the cut is the root's trivial cut {root}.
func (c Cut) trivial(root netlist.ID) bool {
	return len(c.Leaves) == 1 && c.Leaves[0] == root
}

// Options configures enumeration.
type Options struct {
	// K is the maximum number of cut leaves. The paper fixes K=6; values
	// above truth.MaxVars are rejected.
	K int
	// MaxCuts bounds the number of cuts kept per node (0 means the
	// default). Smaller cuts are preferred when truncating.
	MaxCuts int
	// Interrupt, when non-nil, is polled every few nodes during
	// enumeration; when it returns true, Enumerate stops and returns the
	// cut sets computed so far (downstream matching simply sees fewer
	// candidates).
	Interrupt func() bool
}

// DefaultMaxCuts bounds per-node cut sets; the paper reports an average of
// 15-35 6-feasible cuts per gate, so 48 loses almost nothing.
const DefaultMaxCuts = 48

// Enumerate computes the k-feasible cuts of every node in n. Boundary nodes
// (inputs, latches) get only their trivial cut; constants get a single
// empty-leaf constant cut.
func Enumerate(n *netlist.Netlist, opt Options) map[netlist.ID][]Cut {
	if opt.K <= 0 || opt.K > truth.MaxVars {
		opt.K = truth.MaxVars
	}
	if opt.MaxCuts <= 0 {
		opt.MaxCuts = DefaultMaxCuts
	}
	res := make(map[netlist.ID][]Cut, n.Len())
	for i, id := range n.TopoOrder() {
		if i&63 == 0 && opt.Interrupt != nil && opt.Interrupt() {
			return res
		}
		switch kind := n.Kind(id); {
		case kind == netlist.Input || kind == netlist.Latch:
			res[id] = []Cut{{Leaves: []netlist.ID{id}, Table: truth.Var(0, 1)}}
		case kind == netlist.Const0:
			res[id] = []Cut{{Table: truth.Const(false, 0)}}
		case kind == netlist.Const1:
			res[id] = []Cut{{Table: truth.Const(true, 0)}}
		case kind == netlist.Lut:
			res[id] = enumerateLut(n, id, res, opt)
		default:
			res[id] = enumerateGate(n, id, res, opt)
		}
	}
	return res
}

func enumerateGate(n *netlist.Netlist, id netlist.ID, res map[netlist.ID][]Cut, opt Options) []Cut {
	fanin := n.Fanin(id)
	kind := n.Kind(id)

	// Fold the fanin cut sets pairwise under the gate's associative
	// operation (And for And/Nand, Or for Or/Nor, Xor for Xor/Xnor),
	// pruning between folds so intermediate sets stay bounded. The
	// negation for inverting kinds is applied once at the end.
	op, invert := foldOp(kind)
	partial := res[fanin[0]]
	if kind == netlist.Not || kind == netlist.Buf {
		out := make([]Cut, 0, len(partial)+1)
		for _, c := range partial {
			t := c.Table
			if kind == netlist.Not {
				t = t.Not()
			}
			out = append(out, Cut{Leaves: c.Leaves, Table: t})
		}
		out = prune(out, opt.MaxCuts)
		return append(out, Cut{Leaves: []netlist.ID{id}, Table: truth.Var(0, 1)})
	}

	// For each fanin pair product, first collect feasible merged leaf sets
	// (into one slab, not one allocation per pair), prune and truncate on
	// leaf sets alone, and only then compute tables for the survivors: for
	// a fixed root and fanin prefix, the cut function is determined by the
	// leaf set, so duplicates and dominated cuts can be discarded before
	// paying for table expansion. Per-set signature words make both the
	// feasibility test (popcount is a lower bound on the distinct-leaf
	// count) and the dominance test (subset implies signature subset)
	// mostly one word operation.
	var pending []pendingCut
	var sa, sb []uint64
	for fi := 1; fi < len(fanin); fi++ {
		next := res[fanin[fi]]
		sa, sb = sa[:0], sb[:0]
		for _, a := range partial {
			sa = append(sa, leafSig(a.Leaves))
		}
		for _, b := range next {
			sb = append(sb, leafSig(b.Leaves))
		}
		slab := make([]netlist.ID, 0, len(partial)*len(next)*(opt.K+1))
		pending = pending[:0]
		for ai, a := range partial {
			for bi, b := range next {
				sig := sa[ai] | sb[bi]
				if bits.OnesCount64(sig) > opt.K {
					continue // provably more than K distinct leaves
				}
				start := len(slab)
				after, ok := unionLeavesInto(slab, a.Leaves, b.Leaves, opt.K)
				if !ok {
					continue
				}
				slab = after
				pending = append(pending, pendingCut{
					leaves: slab[start:len(slab):len(slab)],
					sig:    sig,
					a:      ai, b: bi,
				})
			}
		}
		kept := prunePending(pending, opt.MaxCuts)
		merged := make([]Cut, len(kept))
		for i, p := range kept {
			leaves := make([]netlist.ID, len(p.leaves))
			copy(leaves, p.leaves)
			merged[i] = combine2(op, partial[p.a], next[p.b], leaves)
		}
		partial = merged
	}
	if invert {
		for i := range partial {
			partial[i].Table = partial[i].Table.Not()
		}
	}
	return append(partial, Cut{Leaves: []netlist.ID{id}, Table: truth.Var(0, 1)})
}

// enumerateLut computes the cuts of a k-input truth-table cell. LUTs have no
// associative fold, so the merge tracks, for every feasible merged leaf set,
// which cut was chosen at each fanin position; tables are computed only for
// the pruned survivors by expanding each chosen fanin cut onto the merged
// leaf set and composing through the node's mask (truth.Compose). Dedup and
// dominance pruning on leaf sets alone stays sound for the same reason as in
// enumerateGate: for a fixed root, the cut function is determined by the
// leaf set.
func enumerateLut(n *netlist.Netlist, id netlist.ID, res map[netlist.ID][]Cut, opt Options) []Cut {
	fanin := n.Fanin(id)
	mask := n.Node(id).Mask

	type selCut struct {
		leaves []netlist.ID
		sig    uint64
		choice []int // choice[j] indexes res[fanin[j]]
	}
	partial := make([]selCut, 0, len(res[fanin[0]]))
	for ci, c := range res[fanin[0]] {
		partial = append(partial, selCut{leaves: c.Leaves, sig: leafSig(c.Leaves), choice: []int{ci}})
	}
	var pending []pendingCut
	var sb []uint64
	for fi := 1; fi < len(fanin); fi++ {
		next := res[fanin[fi]]
		sb = sb[:0]
		for _, b := range next {
			sb = append(sb, leafSig(b.Leaves))
		}
		slab := make([]netlist.ID, 0, len(partial)*len(next)*(opt.K+1))
		pending = pending[:0]
		for ai, a := range partial {
			for bi, b := range next {
				sig := a.sig | sb[bi]
				if bits.OnesCount64(sig) > opt.K {
					continue
				}
				start := len(slab)
				after, ok := unionLeavesInto(slab, a.leaves, b.Leaves, opt.K)
				if !ok {
					continue
				}
				slab = after
				pending = append(pending, pendingCut{
					leaves: slab[start:len(slab):len(slab)],
					sig:    sig,
					a:      ai, b: bi,
				})
			}
		}
		kept := prunePending(pending, opt.MaxCuts)
		merged := make([]selCut, len(kept))
		for i, p := range kept {
			leaves := make([]netlist.ID, len(p.leaves))
			copy(leaves, p.leaves)
			choice := make([]int, len(partial[p.a].choice)+1)
			copy(choice, partial[p.a].choice)
			choice[len(choice)-1] = p.b
			merged[i] = selCut{leaves: leaves, sig: p.sig, choice: choice}
		}
		partial = merged
	}

	out := make([]Cut, 0, len(partial)+1)
	args := make([]truth.Table, len(fanin))
	for _, s := range partial {
		for j := range fanin {
			args[j] = expandOnto(res[fanin[j]][s.choice[j]], s.leaves)
		}
		out = append(out, Cut{Leaves: s.leaves, Table: truth.Compose(mask, args)})
	}
	return append(out, Cut{Leaves: []netlist.ID{id}, Table: truth.Var(0, 1)})
}

type binOp uint8

const (
	opAnd binOp = iota
	opOr
	opXor
)

func foldOp(kind netlist.Kind) (binOp, bool) {
	switch kind {
	case netlist.And:
		return opAnd, false
	case netlist.Nand:
		return opAnd, true
	case netlist.Or:
		return opOr, false
	case netlist.Nor:
		return opOr, true
	case netlist.Xor:
		return opXor, false
	case netlist.Xnor:
		return opXor, true
	case netlist.Not, netlist.Buf:
		return opAnd, false // unused
	}
	panic("cuts: foldOp on non-gate kind " + kind.String())
}

// expandOnto re-expresses a cut's table over a merged leaf set that contains
// the cut's own leaves. Both leaf lists are sorted, so a single linear scan
// recovers each leaf's variable position — this is the hottest allocation
// site of cut enumeration, so no map here.
func expandOnto(c Cut, leaves []netlist.ID) truth.Table {
	var m [truth.MaxVars]int
	i := 0
	for j, l := range c.Leaves {
		for leaves[i] != l {
			i++
		}
		m[j] = i
	}
	return c.Table.Expand(m[:len(c.Leaves)], len(leaves))
}

// combine2 merges two cuts under a binary operation on the merged leaf set.
func combine2(op binOp, a, b Cut, leaves []netlist.ID) Cut {
	ta, tb := expandOnto(a, leaves), expandOnto(b, leaves)
	var t truth.Table
	switch op {
	case opAnd:
		t = ta.And(tb)
	case opOr:
		t = ta.Or(tb)
	case opXor:
		t = ta.Xor(tb)
	}
	return Cut{Leaves: leaves, Table: t}
}

// pendingCut is a feasible merged leaf set whose table has not been
// computed yet; a and b index the parent cuts it merges, and sig is
// leafSig(leaves).
type pendingCut struct {
	leaves []netlist.ID
	sig    uint64
	a, b   int
}

// leafSig hashes a leaf set into a 64-bit signature: bit (id mod 64) per
// leaf. Signatures underapproximate set relations soundly: popcount(sig)
// never exceeds the set size, and A ⊆ B implies sig(A) &^ sig(B) == 0.
func leafSig(ls []netlist.ID) uint64 {
	var s uint64
	for _, l := range ls {
		s |= 1 << (uint(l) & 63)
	}
	return s
}

// unionLeavesInto merges two sorted leaf sets, appending to dst. It
// reports false (with dst unchanged in length) when the union exceeds k
// leaves.
func unionLeavesInto(dst []netlist.ID, a, b []netlist.ID, k int) ([]netlist.ID, bool) {
	start := len(dst)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
		if len(dst)-start > k {
			return dst[:start], false
		}
	}
	if len(dst)-start+len(a)-i+len(b)-j > k {
		return dst[:start], false
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst, true
}

// prune removes duplicate and dominated cuts (a cut is dominated when its
// leaf set is a strict superset of another cut's) and truncates to maxCuts,
// preferring cuts with fewer leaves.
func prune(cs []Cut, maxCuts int) []Cut {
	ps := make([]pendingCut, len(cs))
	for i, c := range cs {
		ps[i] = pendingCut{leaves: c.Leaves, sig: leafSig(c.Leaves), a: i}
	}
	kept := prunePending(ps, maxCuts)
	out := make([]Cut, len(kept))
	for i, p := range kept {
		out[i] = cs[p.a]
	}
	return out
}

// prunePending is the leaf-set core of prune: it sorts by (leaf count, leaf
// order), removes duplicates and dominated sets, and truncates to maxCuts.
// The dominance scan tests signatures first, so most non-subset pairs cost
// one word operation.
func prunePending(ps []pendingCut, maxCuts int) []pendingCut {
	sort.Slice(ps, func(i, j int) bool {
		if len(ps[i].leaves) != len(ps[j].leaves) {
			return len(ps[i].leaves) < len(ps[j].leaves)
		}
		return lessLeaves(ps[i].leaves, ps[j].leaves)
	})
	var kept []pendingCut
	for _, c := range ps {
		dominated := false
		for _, k := range kept {
			if k.sig&^c.sig != 0 || len(k.leaves) > len(c.leaves) {
				continue // cannot be a subset
			}
			if isSubset(k.leaves, c.leaves) {
				if len(k.leaves) < len(c.leaves) || equalLeaves(k.leaves, c.leaves) {
					dominated = true
					break
				}
			}
		}
		if !dominated {
			kept = append(kept, c)
			if len(kept) >= maxCuts {
				break
			}
		}
	}
	return kept
}

func isSubset(a, b []netlist.ID) bool {
	i := 0
	for _, x := range b {
		if i < len(a) && a[i] == x {
			i++
		}
	}
	return i == len(a)
}

func equalLeaves(a, b []netlist.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func lessLeaves(a, b []netlist.ID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// AverageCutsPerGate returns the mean number of cuts per combinational gate,
// the statistic the paper reports as 15-35 for k=6.
func AverageCutsPerGate(n *netlist.Netlist, sets map[netlist.ID][]Cut) float64 {
	gates := n.Gates()
	if len(gates) == 0 {
		return 0
	}
	total := 0
	for _, g := range gates {
		total += len(sets[g])
	}
	return float64(total) / float64(len(gates))
}
