// Package aggregate implements Algorithm 2 of the paper (Section II-B):
// grouping matched bitslices into multibit modules. Two aggregation
// patterns are used: common signals (multiplexers share a select) and
// propagated signals (adder carry chains, subtractor borrow chains, parity
// trees). It also implements the module-fusion post-processing of Section
// II-F.
package aggregate

import (
	"fmt"
	"sort"

	"netlistre/internal/bitslice"
	"netlistre/internal/module"
	"netlistre/internal/netlist"
	"netlistre/internal/truth"
)

// Options tunes aggregation.
type Options struct {
	// MinSlices is the smallest slice count that forms a module (the paper
	// uses 2).
	MinSlices int
	// MinParity is the smallest xor-match count that forms a parity tree;
	// 3 avoids classifying single adder-style xors as trees.
	MinParity int
}

func (o *Options) defaults() {
	if o.MinSlices <= 0 {
		o.MinSlices = 2
	}
	if o.MinParity <= 0 {
		o.MinParity = 3
	}
}

// CommonSignal aggregates mux-family bitslices sharing select signals
// (Section II-B.1) and unknown bitslices sharing a common signal into
// candidate modules.
func CommonSignal(nl *netlist.Netlist, res *bitslice.Result, opt Options) []*module.Module {
	opt.defaults()
	var out []*module.Module
	out = append(out, muxGroups(nl, res.Matches(truth.ClassMux2), truth.ClassMux2, opt)...)
	out = append(out, muxGroups(nl, res.Matches(truth.ClassMux2Inv), truth.ClassMux2Inv, opt)...)
	out = append(out, mux4Groups(nl, res.Matches(truth.ClassMux4), opt)...)
	out = append(out, gatingGroups(nl, res, opt)...)
	out = append(out, unknownCandidates(nl, res, opt)...)
	return out
}

// gatingGroups aggregates word-wide gating functions: and/and-not/or
// slices that share one control argument across at least four bits. These
// are the "gating function" modules that zero out or force a word (the
// oc8051 trojan payload of Section V-D is exactly such a module).
func gatingGroups(nl *netlist.Netlist, res *bitslice.Result, opt Options) []*module.Module {
	minBits := opt.MinSlices * 2
	if minBits < 4 {
		minBits = 4
	}
	// Gates that already participate in a mux slice are mux interior, not
	// gating logic: a 2:1 mux is exactly an and-or of two gated legs, and
	// emitting its and-gates again as "gating" modules floods overlap
	// resolution with redundant candidates.
	muxInterior := make(map[netlist.ID]bool)
	for _, class := range []truth.Class{truth.ClassMux2, truth.ClassMux2Inv, truth.ClassMux4} {
		for _, m := range res.Matches(class) {
			for _, g := range m.Cone {
				muxInterior[g] = true
			}
		}
	}
	classes := []truth.Class{truth.ClassHACarry, truth.ClassAndNot, truth.ClassOr2}
	type key struct {
		class truth.Class
		ctl   netlist.ID
	}
	groups := make(map[key][]*bitslice.Match)
	for _, class := range classes {
		for _, m := range res.Matches(class) {
			if muxInterior[m.Root] {
				continue
			}
			for _, a := range m.Args {
				groups[key{class, a}] = append(groups[key{class, a}], m)
			}
		}
	}
	var keys []key
	for k, g := range groups {
		if len(dedupeByRoot(g)) >= minBits {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].class != keys[j].class {
			return keys[i].class < keys[j].class
		}
		return keys[i].ctl < keys[j].ctl
	})
	var out []*module.Module
	for _, k := range keys {
		group := dedupeByRoot(groups[k])
		// The control must not be a data bit: require that it is the only
		// argument shared by every slice.
		shared := true
		for _, m := range group {
			found := false
			for _, a := range m.Args {
				if a == k.ctl {
					found = true
				}
			}
			if !found {
				shared = false
				break
			}
		}
		if !shared {
			continue
		}
		mod := buildSliceModule(module.Gating, group)
		mod.Name = fmt.Sprintf("gating-%s[%d]", k.class, len(group))
		mod.SetPort("ctl", []netlist.ID{k.ctl})
		mod.SetPort("out", roots(group))
		out = append(out, mod)
	}
	return out
}

// muxGroups groups 2:1 mux matches by select signal.
func muxGroups(nl *netlist.Netlist, ms []*bitslice.Match, class truth.Class, opt Options) []*module.Module {
	bySel := make(map[netlist.ID][]*bitslice.Match)
	for _, m := range ms {
		bySel[m.Args[2]] = append(bySel[m.Args[2]], m)
	}
	var sels []netlist.ID
	for s := range bySel {
		sels = append(sels, s)
	}
	sort.Slice(sels, func(i, j int) bool { return sels[i] < sels[j] })

	var out []*module.Module
	for _, sel := range sels {
		group := dedupeByRoot(bySel[sel])
		if len(group) < opt.MinSlices {
			continue
		}
		mod := buildSliceModule(module.Mux, group)
		mod.SetPort("sel", []netlist.ID{sel})
		mod.SetPort("out", roots(group))
		mod.SetPort("d0", argColumn(group, 0))
		mod.SetPort("d1", argColumn(group, 1))
		if class == truth.ClassMux2Inv {
			mod.Name = fmt.Sprintf("mux-inv[%d]", len(group))
		}
		out = append(out, mod)
	}
	return out
}

// mux4Groups groups 4:1 mux matches by their select pair.
func mux4Groups(nl *netlist.Netlist, ms []*bitslice.Match, opt Options) []*module.Module {
	type selKey struct{ a, b netlist.ID }
	bySel := make(map[selKey][]*bitslice.Match)
	for _, m := range ms {
		s0, s1 := m.Args[4], m.Args[5]
		if s1 < s0 {
			s0, s1 = s1, s0
		}
		bySel[selKey{s0, s1}] = append(bySel[selKey{s0, s1}], m)
	}
	var keys []selKey
	for k := range bySel {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	var out []*module.Module
	for _, k := range keys {
		group := dedupeByRoot(bySel[k])
		if len(group) < opt.MinSlices {
			continue
		}
		mod := buildSliceModule(module.Mux, group)
		mod.Name = fmt.Sprintf("mux4[%d]", len(group))
		mod.SetPort("sel", []netlist.ID{k.a, k.b})
		mod.SetPort("out", roots(group))
		out = append(out, mod)
	}
	return out
}

// unknownCandidates aggregates unknown-function bitslices connected by a
// common signal into candidate modules for a human analyst (Section
// II-B.1). Requires bitslice.Find to have run with KeepUnknown.
func unknownCandidates(nl *netlist.Netlist, res *bitslice.Result, opt Options) []*module.Module {
	if res.UnknownClasses == nil {
		return nil
	}
	var keys []string
	for k := range res.UnknownClasses {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []*module.Module
	for _, k := range keys {
		ms := dedupeByRoot(res.UnknownClasses[k])
		if len(ms) < opt.MinSlices+1 {
			continue
		}
		// Group by a shared argument signal: pick the argument that occurs
		// in the most matches.
		occ := make(map[netlist.ID][]*bitslice.Match)
		for _, m := range ms {
			for _, a := range m.Args {
				occ[a] = append(occ[a], m)
			}
		}
		var best netlist.ID = netlist.Nil
		for a, group := range occ {
			if best == netlist.Nil || len(group) > len(occ[best]) ||
				(len(group) == len(occ[best]) && a < best) {
				best = a
			}
		}
		if best == netlist.Nil || len(occ[best]) < opt.MinSlices+1 {
			continue
		}
		group := dedupeByRoot(occ[best])
		mod := buildSliceModule(module.Candidate, group)
		mod.Name = fmt.Sprintf("candidate[%d]", len(group))
		mod.SetPort("common", []netlist.ID{best})
		mod.SetPort("out", roots(group))
		mod.SetAttr("function", k)
		out = append(out, mod)
	}
	return out
}

// PropagatedSignal aggregates carry/borrow chains into adders and
// subtractors and xor trees into parity trees (Section II-B.2).
func PropagatedSignal(nl *netlist.Netlist, res *bitslice.Result, opt Options) []*module.Module {
	opt.defaults()
	var out []*module.Module
	out = append(out, chainModules(nl, res, truth.ClassFACarry, module.Adder, opt)...)
	out = append(out, chainModules(nl, res, truth.ClassSubBorrow, module.Subtractor, opt)...)
	out = append(out, parityTrees(nl, res, opt)...)
	return out
}

// chainModules finds maximal chains of carry-class matches where the root
// of one match is an argument of the next, then attaches the matching sum
// slices and the bit-0 half slice.
func chainModules(nl *netlist.Netlist, res *bitslice.Result, carryClass truth.Class, typ module.Type, opt Options) []*module.Module {
	carries := dedupeByRoot(res.Matches(carryClass))
	byRoot := make(map[netlist.ID]*bitslice.Match, len(carries))
	for _, m := range carries {
		byRoot[m.Root] = m
	}
	// next[m] = m' when root(m) is an argument of m'. A ripple chain has
	// exactly one such consumer inside the chain.
	next := make(map[*bitslice.Match]*bitslice.Match)
	prev := make(map[*bitslice.Match]*bitslice.Match)
	for _, m := range carries {
		for _, a := range m.Args {
			if p, ok := byRoot[a]; ok && p != m {
				// a = root of p feeds m: edge p -> m.
				if _, dup := next[p]; !dup {
					next[p] = m
				}
				if _, dup := prev[m]; !dup {
					prev[m] = p
				}
			}
		}
	}
	// Sum-slice lookup: sum matches keyed by sorted arg set.
	sumClass := truth.ClassFASum
	if carryClass == truth.ClassSubBorrow {
		// Subtractor difference slices synthesize as plain xor3 as well
		// (a ^ b ^ bin); keep FASum and also accept Xor3Not.
		sumClass = truth.ClassFASum
	}
	sumByArgs := make(map[string]*bitslice.Match)
	for _, m := range res.Matches(sumClass) {
		sumByArgs[argKey(m.Args)] = m
	}
	for _, m := range res.Matches(truth.ClassXor3Not) {
		if _, dup := sumByArgs[argKey(m.Args)]; !dup {
			sumByArgs[argKey(m.Args)] = m
		}
	}

	var out []*module.Module
	for _, head := range carries {
		if prev[head] != nil {
			continue // not a chain head
		}
		var chain []*bitslice.Match
		for m := head; m != nil; m = next[m] {
			if len(chain) > 0 && m == chain[0] {
				break // cycle guard
			}
			chain = append(chain, m)
		}
		if len(chain) < 2 {
			continue
		}
		var elements []netlist.ID
		var sumOuts, aWord, bWord []netlist.ID
		for i, m := range chain {
			elements = append(elements, m.Cone...)
			// Operand bits: the two args that are not the propagated-in
			// signal.
			var ops []netlist.ID
			for _, a := range m.Args {
				if i > 0 && a == chain[i-1].Root {
					continue
				}
				ops = append(ops, a)
			}
			if i == 0 {
				// Head: one arg may be the bit-0 half-carry; detect below.
				ops = headOperands(nl, res, m, &elements, &sumOuts, &aWord, &bWord, carryClass)
			}
			if len(ops) >= 2 {
				aWord = append(aWord, ops[0])
				bWord = append(bWord, ops[1])
			}
			if s, ok := sumByArgs[argKey(m.Args)]; ok {
				elements = append(elements, s.Cone...)
				sumOuts = append(sumOuts, s.Root)
			}
		}
		mod := module.New(typ, len(chain)+1, elements)
		mod.Name = fmt.Sprintf("%s[%d]", typ, len(chain)+1)
		mod.SetPort("sum", sumOuts)
		mod.SetPort("a", aWord)
		mod.SetPort("b", bWord)
		mod.SetPort("carry", matchRoots(chain))
		out = append(out, mod)
	}
	return out
}

// headOperands handles the first chain element: if one of its arguments is
// the root of a bit-0 half slice (and2 for adders, and-not for
// subtractors), that half slice and its xor2 sum are pulled into the
// module. It returns the operand args of the head (excluding the bit-0
// carry).
func headOperands(nl *netlist.Netlist, res *bitslice.Result, head *bitslice.Match,
	elements *[]netlist.ID, sumOuts, aWord, bWord *[]netlist.ID, carryClass truth.Class) []netlist.ID {

	halfClass := truth.ClassHACarry
	if carryClass == truth.ClassSubBorrow {
		halfClass = truth.ClassAndNot
	}
	var ops []netlist.ID
	var half *bitslice.Match
	for _, a := range head.Args {
		if half == nil {
			if hm, ok := res.HasClass(a, halfClass); ok {
				half = hm
				continue
			}
		}
		ops = append(ops, a)
	}
	if half == nil {
		return head.Args
	}
	*elements = append(*elements, half.Cone...)
	// Bit-0 operands and sum (xor2 over the same args).
	*aWord = append(*aWord, half.Args[0])
	*bWord = append(*bWord, half.Args[1])
	for _, s := range res.Matches(truth.ClassHASum) {
		if argKey(s.Args) == argKey(half.Args) {
			*elements = append(*elements, s.Cone...)
			*sumOuts = append(*sumOuts, s.Root)
			break
		}
	}
	return ops
}

// parityTrees finds connected components of xor-family matches linked by
// propagated outputs.
func parityTrees(nl *netlist.Netlist, res *bitslice.Result, opt Options) []*module.Module {
	var xs []*bitslice.Match
	for _, c := range []truth.Class{truth.ClassHASum, truth.ClassFASum} {
		xs = append(xs, res.Matches(c)...)
	}
	xs = dedupeByRoot(xs)
	byRoot := make(map[netlist.ID]*bitslice.Match, len(xs))
	for _, m := range xs {
		byRoot[m.Root] = m
	}
	// Union-find over matches.
	parent := make(map[*bitslice.Match]*bitslice.Match)
	var find func(m *bitslice.Match) *bitslice.Match
	find = func(m *bitslice.Match) *bitslice.Match {
		if parent[m] == nil || parent[m] == m {
			parent[m] = m
			return m
		}
		parent[m] = find(parent[m])
		return parent[m]
	}
	union := func(a, b *bitslice.Match) { parent[find(a)] = find(b) }
	for _, m := range xs {
		for _, a := range m.Args {
			if p, ok := byRoot[a]; ok && p != m {
				union(p, m)
			}
		}
	}
	comps := make(map[*bitslice.Match][]*bitslice.Match)
	for _, m := range xs {
		r := find(m)
		comps[r] = append(comps[r], m)
	}
	var reps []*bitslice.Match
	for r := range comps {
		reps = append(reps, r)
	}
	sort.Slice(reps, func(i, j int) bool { return reps[i].Root < reps[j].Root })

	var out []*module.Module
	for _, r := range reps {
		comp := comps[r]
		if len(comp) < opt.MinParity {
			continue
		}
		// A parity tree has exactly one root match whose output feeds no
		// other member; adder sum columns (disconnected xors) never reach
		// MinParity because they are singletons.
		var elements, leaves []netlist.ID
		rootCount := 0
		var treeRoot netlist.ID
		memberRoots := make(map[netlist.ID]bool, len(comp))
		for _, m := range comp {
			memberRoots[m.Root] = true
		}
		for _, m := range comp {
			elements = append(elements, m.Cone...)
			feeds := false
			for _, o := range comp {
				if o == m {
					continue
				}
				for _, a := range o.Args {
					if a == m.Root {
						feeds = true
					}
				}
			}
			if !feeds {
				rootCount++
				treeRoot = m.Root
			}
			for _, a := range m.Args {
				if !memberRoots[a] {
					leaves = append(leaves, a)
				}
			}
		}
		if rootCount != 1 {
			continue // not a single-output tree
		}
		mod := module.New(module.ParityTree, len(leaves), elements)
		mod.Name = fmt.Sprintf("parity-tree[%d]", len(leaves))
		mod.SetPort("in", leaves)
		mod.SetPort("out", []netlist.ID{treeRoot})
		out = append(out, mod)
	}
	return out
}

// --- helpers ---

func dedupeByRoot(ms []*bitslice.Match) []*bitslice.Match {
	seen := make(map[netlist.ID]bool, len(ms))
	var out []*bitslice.Match
	for _, m := range ms {
		if !seen[m.Root] {
			seen[m.Root] = true
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Root < out[j].Root })
	return out
}

func roots(ms []*bitslice.Match) []netlist.ID { return matchRoots(ms) }

func matchRoots(ms []*bitslice.Match) []netlist.ID {
	out := make([]netlist.ID, len(ms))
	for i, m := range ms {
		out[i] = m.Root
	}
	return out
}

func argColumn(ms []*bitslice.Match, j int) []netlist.ID {
	out := make([]netlist.ID, len(ms))
	for i, m := range ms {
		out[i] = m.Args[j]
	}
	return out
}

func argKey(args []netlist.ID) string {
	s := netlist.SortedIDs(args)
	b := make([]byte, 0, len(s)*4)
	for _, id := range s {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}

// buildSliceModule creates a sliceable module whose slices are the match
// cones.
func buildSliceModule(typ module.Type, group []*bitslice.Match) *module.Module {
	var elements []netlist.ID
	slices := make([][]netlist.ID, len(group))
	for i, m := range group {
		elements = append(elements, m.Cone...)
		slices[i] = append([]netlist.ID(nil), m.Cone...)
	}
	mod := module.New(typ, len(group), elements)
	mod.Slices = slices
	return mod
}
