package aggregate

import (
	"testing"

	"netlistre/internal/gen"
	"netlistre/internal/module"
	"netlistre/internal/netlist"
)

func TestFuseMuxTree(t *testing.T) {
	// A 4:1 mux tree: two first-level 2:1 muxes feeding a second-level
	// 2:1 mux. The three aggregated muxes must fuse into one module.
	nl := netlist.New("tree")
	s0 := nl.AddInput("s0")
	s1 := nl.AddInput("s1")
	var data []gen.Word
	for i := 0; i < 4; i++ {
		data = append(data, gen.InputWord(nl, string(rune('a'+i)), 4))
	}
	out := gen.MuxTree(nl, gen.Word{s0, s1}, data)
	mods := CommonSignal(nl, analyze(nl, false), Options{})

	muxes := 0
	for _, m := range mods {
		if m.Type == module.Mux {
			muxes++
		}
	}
	if muxes < 3 {
		t.Fatalf("aggregated %d muxes, want >= 3", muxes)
	}

	fused := Fuse(mods)
	if len(fused) == 0 {
		t.Fatal("no fused module produced")
	}
	var best *module.Module
	for _, f := range fused {
		if best == nil || f.Size() > best.Size() {
			best = f
		}
	}
	// The fused module must expose the tree outputs.
	outs := best.Port("out")
	outSet := make(map[netlist.ID]bool)
	for _, o := range outs {
		outSet[o] = true
	}
	for i, o := range out {
		if !outSet[o] {
			t.Errorf("fused module missing tree output bit %d", i)
		}
	}
	// And it must cover at least as much as the three constituent muxes.
	if best.Size() < 3*4*3 { // 3 muxes x 4 bits x >=3 gates per slice
		t.Errorf("fused module covers %d elements, suspiciously few", best.Size())
	}
}

func TestFuseNothingWhenDisconnected(t *testing.T) {
	nl := netlist.New("d")
	s1 := nl.AddInput("s1")
	s2 := nl.AddInput("s2")
	a := gen.InputWord(nl, "a", 4)
	b := gen.InputWord(nl, "b", 4)
	c := gen.InputWord(nl, "c", 4)
	d := gen.InputWord(nl, "d", 4)
	gen.Mux2Word(nl, s1, a, b)
	gen.Mux2Word(nl, s2, c, d)
	mods := CommonSignal(nl, analyze(nl, false), Options{})
	if fused := Fuse(mods); len(fused) != 0 {
		t.Errorf("disconnected muxes fused: %d modules", len(fused))
	}
}

func TestFuseDecoderIntoRouting(t *testing.T) {
	// A decoder whose one-hot outputs drive the select inputs of a bank of
	// muxes fuses into a routing structure (Section II-F's second fusion
	// pattern).
	nl := netlist.New("route")
	sel := gen.InputWord(nl, "s", 2)
	dec := gen.Decoder(nl, sel) // 4 one-hot outputs
	bus := gen.InputWord(nl, "bus", 4)
	var srcs []gen.Word
	for k := 0; k < 4; k++ {
		srcs = append(srcs, gen.InputWord(nl, "src"+string(rune('a'+k)), 4))
	}
	// Each decoder output selects its source onto a per-lane mux.
	for k := 0; k < 4; k++ {
		out := gen.Mux2Word(nl, dec[k], bus, srcs[k])
		gen.MarkOutputs(nl, "y"+string(rune('a'+k)), out)
	}

	res := analyze(nl, false)
	muxMods := CommonSignal(nl, res, Options{})
	var fusable []*module.Module
	for _, m := range muxMods {
		if m.Type == module.Mux {
			fusable = append(fusable, m)
		}
	}
	if len(fusable) < 4 {
		t.Fatalf("aggregated %d muxes, want 4", len(fusable))
	}
	decMod := module.New(module.Decoder, 4, dec)
	decMod.SetPort("out", dec)
	decMod.SetPort("in", sel)
	fusable = append(fusable, decMod)

	fused := Fuse(fusable)
	foundRouting := false
	for _, f := range fused {
		if f.Attr["kind"] == "decoder+mux routing structure" {
			foundRouting = true
			// The routing structure must swallow the decoder and all muxes.
			if f.Attr["members"] != "5" {
				t.Errorf("routing members = %s, want 5", f.Attr["members"])
			}
		}
	}
	if !foundRouting {
		t.Errorf("decoder+mux routing not fused (got %d fused modules)", len(fused))
	}
}

func TestChainWithBranchingCarry(t *testing.T) {
	// An adder whose carry chain also feeds external logic (overflow flag
	// consumers) must still aggregate as one adder.
	nl := netlist.New("branch")
	a := gen.InputWord(nl, "a", 6)
	b := gen.InputWord(nl, "b", 6)
	sum, cout := gen.RippleAdder(nl, a, b, netlist.Nil)
	// External consumers of intermediate carries.
	probe := nl.AddInput("probe")
	for _, s := range sum[2:4] {
		nl.AddGate(netlist.And, s, probe)
	}
	nl.MarkOutput("v", nl.AddGate(netlist.Xor, cout, probe))

	mods := PropagatedSignal(nl, analyze(nl, false), Options{})
	best := 0
	for _, m := range mods {
		if m.Type == module.Adder && m.Width > best {
			best = m.Width
		}
	}
	if best != 6 {
		t.Errorf("adder width with branching consumers = %d, want 6", best)
	}
}
