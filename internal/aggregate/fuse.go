package aggregate

// Module fusion post-processing (Section II-F): compatible adjacent modules
// are fused into larger ones — mux layers into n:1 muxes, decoders feeding
// mux selects into routing structures. Fused modules are ADDED to the
// collection; the constituents are kept, and overlap resolution (Section
// IV) decides which representation survives.

import (
	"fmt"
	"sort"

	"netlistre/internal/module"
	"netlistre/internal/netlist"
)

// compatible reports whether a module of type a may fuse into a consumer of
// type b.
func compatible(a, b module.Type) bool {
	switch {
	case a == module.Mux && b == module.Mux:
		return true
	case a == module.Decoder && b == module.Mux:
		return true
	}
	return false
}

// moduleInputs collects the input signals of a module for fusion-edge
// construction.
func moduleInputs(m *module.Module) map[netlist.ID]bool {
	in := make(map[netlist.ID]bool)
	for name, port := range m.Ports {
		if name == "out" {
			continue
		}
		for _, id := range port {
			in[id] = true
		}
	}
	return in
}

// Fuse builds the module fusion graph and returns one fused module per
// connected component with at least two members.
func Fuse(mods []*module.Module) []*module.Module {
	inputsOf := make([]map[netlist.ID]bool, len(mods))
	for i, m := range mods {
		inputsOf[i] = moduleInputs(m)
	}
	// Union-find over module indices.
	parent := make([]int, len(mods))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	// Select-port lookup for the decoder->mux pattern.
	selOf := make([]map[netlist.ID]bool, len(mods))
	for i, m := range mods {
		selOf[i] = make(map[netlist.ID]bool)
		for _, s := range m.Port("sel") {
			selOf[i][s] = true
		}
	}

	edges := 0
	for ai, a := range mods {
		outs := a.Port("out")
		if len(outs) == 0 {
			continue
		}
		for bi, b := range mods {
			if ai == bi || !compatible(a.Type, b.Type) {
				continue
			}
			connected := false
			if a.Type == module.Decoder && b.Type == module.Mux {
				// A decoder fans its one-hot outputs across SEVERAL muxes'
				// selects; any select hit links the pair (the component
				// gathers the rest of the routing structure).
				for _, o := range outs {
					if selOf[bi][o] {
						connected = true
						break
					}
				}
			} else {
				// Mux layers fuse only when one layer's outputs are fully
				// consumed by the next (a genuine tree stage).
				connected = true
				for _, o := range outs {
					if !inputsOf[bi][o] {
						connected = false
						break
					}
				}
			}
			if connected {
				union(ai, bi)
				edges++
			}
		}
	}
	if edges == 0 {
		return nil
	}

	comps := make(map[int][]int)
	for i := range mods {
		r := find(i)
		comps[r] = append(comps[r], i)
	}
	var reps []int
	for r, members := range comps {
		if len(members) >= 2 {
			reps = append(reps, r)
		}
	}
	sort.Ints(reps)

	var out []*module.Module
	for _, r := range reps {
		members := comps[r]
		sort.Ints(members)
		var elements []netlist.ID
		width := 0
		muxCount := 0
		hasDecoder := false
		memberOuts := make(map[netlist.ID]bool)
		for _, mi := range members {
			elements = append(elements, mods[mi].Elements...)
			switch mods[mi].Type {
			case module.Mux:
				muxCount++
				if mods[mi].Width > width {
					width = mods[mi].Width
				}
			case module.Decoder:
				hasDecoder = true
			}
			for _, o := range mods[mi].Port("out") {
				memberOuts[o] = true
			}
		}
		fused := module.New(module.Fused, width, elements)
		switch {
		case hasDecoder:
			fused.Name = fmt.Sprintf("routing[%d]", width)
			fused.SetAttr("kind", "decoder+mux routing structure")
		default:
			fused.Name = fmt.Sprintf("mux%d:1[%d]", muxCount+1, width)
			fused.SetAttr("kind", "fused mux tree")
		}
		// The fused outputs are the member outputs that are not consumed
		// by another member.
		var outs []netlist.ID
		for _, mi := range members {
			for _, o := range mods[mi].Port("out") {
				consumed := false
				for _, mj := range members {
					if mi != mj && inputsOf[mj][o] {
						consumed = true
						break
					}
				}
				if !consumed {
					outs = append(outs, o)
				}
			}
		}
		fused.SetPort("out", netlist.SortedIDs(outs))
		fused.SetAttr("members", fmt.Sprint(len(members)))
		out = append(out, fused)
	}
	return out
}
