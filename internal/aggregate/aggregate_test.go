package aggregate

import (
	"testing"

	"netlistre/internal/bitslice"
	"netlistre/internal/gen"
	"netlistre/internal/module"
	"netlistre/internal/netlist"
)

func analyze(nl *netlist.Netlist, keepUnknown bool) *bitslice.Result {
	return bitslice.Find(nl, bitslice.Options{KeepUnknown: keepUnknown})
}

func TestMuxAggregation(t *testing.T) {
	nl := netlist.New("mux")
	sel := nl.AddInput("sel")
	d0 := gen.InputWord(nl, "a", 8)
	d1 := gen.InputWord(nl, "b", 8)
	out := gen.Mux2Word(nl, sel, d0, d1)
	mods := CommonSignal(nl, analyze(nl, false), Options{})

	var mux *module.Module
	for _, m := range mods {
		if m.Type == module.Mux && m.Width == 8 {
			mux = m
		}
	}
	if mux == nil {
		t.Fatalf("no 8-bit mux aggregated; modules: %v", names(mods))
	}
	if got := mux.Port("sel"); len(got) != 1 || got[0] != sel {
		t.Errorf("sel port = %v", got)
	}
	if got := mux.Port("out"); len(got) != 8 {
		t.Errorf("out port = %v", got)
	} else {
		for i, o := range got {
			if o != out[i] {
				t.Errorf("out[%d] = %d, want %d", i, o, out[i])
			}
		}
	}
	if !mux.Sliceable() || len(mux.Slices) != 8 {
		t.Error("mux module should be sliceable into 8 slices")
	}
	// The shared select inverter must be in the shared bucket.
	if shared := mux.SharedElements(); len(shared) != 1 {
		t.Errorf("shared elements = %v, want exactly the sel inverter", shared)
	}
}

func TestTwoMuxesSeparateSelects(t *testing.T) {
	nl := netlist.New("mux2")
	s1 := nl.AddInput("s1")
	s2 := nl.AddInput("s2")
	a := gen.InputWord(nl, "a", 4)
	b := gen.InputWord(nl, "b", 4)
	c := gen.InputWord(nl, "c", 4)
	gen.Mux2Word(nl, s1, a, b)
	gen.Mux2Word(nl, s2, b, c)
	mods := CommonSignal(nl, analyze(nl, false), Options{})
	count := 0
	for _, m := range mods {
		if m.Type == module.Mux && m.Width == 4 {
			count++
		}
	}
	if count != 2 {
		t.Errorf("found %d 4-bit muxes, want 2 (modules: %v)", count, names(mods))
	}
}

func TestAdderAggregation(t *testing.T) {
	nl := netlist.New("add")
	a := gen.InputWord(nl, "a", 8)
	b := gen.InputWord(nl, "b", 8)
	sum, _ := gen.RippleAdder(nl, a, b, netlist.Nil)
	mods := PropagatedSignal(nl, analyze(nl, false), Options{})

	var adder *module.Module
	for _, m := range mods {
		if m.Type == module.Adder {
			if adder == nil || m.Width > adder.Width {
				adder = m
			}
		}
	}
	if adder == nil {
		t.Fatalf("no adder aggregated; modules: %v", names(mods))
	}
	if adder.Width != 8 {
		t.Errorf("adder width = %d, want 8", adder.Width)
	}
	// The sum outputs must be discovered in bit order.
	sums := adder.Port("sum")
	if len(sums) != 8 {
		t.Fatalf("sum port has %d bits, want 8 (%v)", len(sums), sums)
	}
	for i := range sums {
		if sums[i] != sum[i] {
			t.Errorf("sum[%d] = %d, want %d", i, sums[i], sum[i])
		}
	}
	// Operand words must be bits of a and b (in either column).
	aw, bw := adder.Port("a"), adder.Port("b")
	if len(aw) != 8 || len(bw) != 8 {
		t.Fatalf("operand widths %d/%d, want 8/8", len(aw), len(bw))
	}
	for i := 0; i < 8; i++ {
		ok := (aw[i] == a[i] && bw[i] == b[i]) || (aw[i] == b[i] && bw[i] == a[i])
		if !ok {
			t.Errorf("bit %d operands (%d,%d) not {a%d,b%d}", i, aw[i], bw[i], i, i)
		}
	}
}

func TestSubtractorAggregation(t *testing.T) {
	nl := netlist.New("sub")
	a := gen.InputWord(nl, "a", 6)
	b := gen.InputWord(nl, "b", 6)
	gen.RippleSubtractor(nl, a, b)
	mods := PropagatedSignal(nl, analyze(nl, false), Options{})
	var sub *module.Module
	for _, m := range mods {
		if m.Type == module.Subtractor {
			if sub == nil || m.Width > sub.Width {
				sub = m
			}
		}
	}
	if sub == nil {
		t.Fatalf("no subtractor aggregated; modules: %v", names(mods))
	}
	if sub.Width != 6 {
		t.Errorf("subtractor width = %d, want 6", sub.Width)
	}
}

func TestParityTreeAggregation(t *testing.T) {
	nl := netlist.New("par")
	w := gen.InputWord(nl, "w", 8)
	root := gen.ParityTree(nl, w)
	mods := PropagatedSignal(nl, analyze(nl, false), Options{})
	var tree *module.Module
	for _, m := range mods {
		if m.Type == module.ParityTree {
			tree = m
		}
	}
	if tree == nil {
		t.Fatalf("no parity tree; modules: %v", names(mods))
	}
	if got := tree.Port("out"); len(got) != 1 || got[0] != root {
		t.Errorf("tree out = %v, want %d", got, root)
	}
	if tree.Width != 8 {
		t.Errorf("tree width = %d, want 8 leaves", tree.Width)
	}
}

func TestAdderDoesNotCreateParityTree(t *testing.T) {
	nl := netlist.New("add")
	a := gen.InputWord(nl, "a", 8)
	b := gen.InputWord(nl, "b", 8)
	gen.RippleAdder(nl, a, b, netlist.Nil)
	mods := PropagatedSignal(nl, analyze(nl, false), Options{})
	for _, m := range mods {
		if m.Type == module.ParityTree {
			t.Errorf("adder produced a spurious parity tree of width %d", m.Width)
		}
	}
}

func TestUnknownCandidateAggregation(t *testing.T) {
	// Replicate a non-library bitslice 6 times sharing a control signal:
	// f_i = (ctl & a_i) | (~ctl & a_i & b_i)   (a 3-input non-library fn).
	nl := netlist.New("u")
	ctl := nl.AddInput("ctl")
	a := gen.InputWord(nl, "a", 6)
	b := gen.InputWord(nl, "b", 6)
	nctl := nl.AddGate(netlist.Not, ctl)
	for i := 0; i < 6; i++ {
		nl.AddGate(netlist.Or,
			nl.AddGate(netlist.And, ctl, a[i]),
			nl.AddGate(netlist.And, nctl, a[i], b[i]))
	}
	mods := CommonSignal(nl, analyze(nl, true), Options{})
	found := false
	for _, m := range mods {
		if m.Type == module.Candidate && m.Width >= 4 {
			found = true
		}
	}
	if !found {
		t.Errorf("no candidate module aggregated; modules: %v", names(mods))
	}
}

func names(mods []*module.Module) []string {
	var out []string
	for _, m := range mods {
		out = append(out, m.Name)
	}
	return out
}
