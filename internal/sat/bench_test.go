package sat

import (
	"math/rand"
	"testing"
)

// BenchmarkSolveRandom3SAT measures CDCL throughput near the phase
// transition.
func BenchmarkSolveRandom3SAT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const nVars = 120
	nClauses := int(4.2 * nVars)
	for i := 0; i < b.N; i++ {
		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		for c := 0; c < nClauses; c++ {
			s.AddClause(
				MkLit(rng.Intn(nVars), rng.Intn(2) == 0),
				MkLit(rng.Intn(nVars), rng.Intn(2) == 0),
				MkLit(rng.Intn(nVars), rng.Intn(2) == 0))
		}
		s.Solve()
	}
}

// BenchmarkPigeonhole measures learned-clause performance on a classic
// unsat family.
func BenchmarkPigeonhole(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		n := 7
		vars := make([][]int, n+1)
		for p := range vars {
			vars[p] = make([]int, n)
			for h := range vars[p] {
				vars[p][h] = s.NewVar()
			}
		}
		for p := 0; p <= n; p++ {
			lits := make([]Lit, n)
			for h := 0; h < n; h++ {
				lits[h] = MkLit(vars[p][h], false)
			}
			s.AddClause(lits...)
		}
		for h := 0; h < n; h++ {
			for p1 := 0; p1 <= n; p1++ {
				for p2 := p1 + 1; p2 <= n; p2++ {
					s.AddClause(MkLit(vars[p1][h], true), MkLit(vars[p2][h], true))
				}
			}
		}
		if s.Solve() != Unsat {
			b.Fatal("PHP sat?")
		}
	}
}
