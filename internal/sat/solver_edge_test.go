package sat

import (
	"testing"
)

func TestMaxConflictsUnknown(t *testing.T) {
	// A hard pigeonhole instance with a tiny conflict budget must return
	// Unknown, not hang or misreport.
	s := New()
	s.MaxConflicts = 20
	n := 7
	vars := make([][]int, n+1)
	for p := range vars {
		vars[p] = make([]int, n)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ {
		lits := make([]Lit, n)
		for h := 0; h < n; h++ {
			lits[h] = MkLit(vars[p][h], false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(MkLit(vars[p1][h], true), MkLit(vars[p2][h], true))
			}
		}
	}
	if got := s.Solve(); got != Unknown {
		t.Errorf("Solve with tiny budget = %v, want Unknown", got)
	}
	// Raising the budget must eventually decide it.
	s.MaxConflicts = 0
	if got := s.Solve(); got != Unsat {
		t.Errorf("Solve with no budget = %v, want Unsat", got)
	}
}

func TestTautologyAndDuplicateLiterals(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	// Tautology is dropped silently.
	if !s.AddClause(MkLit(a, false), MkLit(a, true)) {
		t.Error("tautology rejected")
	}
	// Duplicates collapse.
	if !s.AddClause(MkLit(b, false), MkLit(b, false)) {
		t.Error("duplicate-literal clause rejected")
	}
	if s.Solve() != Sat || !s.Value(b) {
		t.Error("unit b not enforced")
	}
}

func TestAddClauseAfterUnsat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	s.AddClause(MkLit(a, true)) // now unsat
	if s.AddClause(MkLit(a, false)) {
		t.Error("AddClause on dead solver should report failure")
	}
	if s.Solve() != Unsat {
		t.Error("dead solver should stay unsat")
	}
}

func TestLitHelpers(t *testing.T) {
	l := MkLit(5, false)
	if l.Var() != 5 || l.Sign() || l.Neg().Sign() != true || l.Neg().Var() != 5 {
		t.Error("literal helpers broken")
	}
	if l.String() != "x5" || l.Neg().String() != "~x5" {
		t.Errorf("literal strings: %s %s", l, l.Neg())
	}
	for _, st := range []Status{Sat, Unsat, Unknown} {
		if st.String() == "" {
			t.Error("empty status string")
		}
	}
}

func TestLubySequence(t *testing.T) {
	want := []int{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(i + 1); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestManyRandomRestarting(t *testing.T) {
	// A satisfiable instance large enough to trigger restarts.
	s := New()
	const n = 60
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	// Chain implications x0 -> x1 -> ... -> x59 plus x0.
	s.AddClause(MkLit(0, false))
	for i := 0; i+1 < n; i++ {
		s.AddClause(MkLit(i, true), MkLit(i+1, false))
	}
	if s.Solve() != Sat {
		t.Fatal("chain unsat?")
	}
	for i := 0; i < n; i++ {
		if !s.Value(i) {
			t.Fatalf("x%d should be true", i)
		}
	}
}
