package sat

// This file implements Tseitin encoding of netlist cones into CNF, plus the
// miter-style equivalence queries used throughout the sequential analyses.

import (
	"netlistre/internal/netlist"
)

// Encoder incrementally encodes the combinational logic of a netlist into a
// Solver. Every netlist node gets at most one SAT variable; cones are
// encoded on demand and shared between queries on the same Encoder.
type Encoder struct {
	S  *Solver
	nl *netlist.Netlist

	varOf map[netlist.ID]int
}

// NewEncoder returns an encoder targeting the given solver.
func NewEncoder(s *Solver, nl *netlist.Netlist) *Encoder {
	return &Encoder{S: s, nl: nl, varOf: make(map[netlist.ID]int)}
}

// LitOf returns the solver literal for node id, encoding its combinational
// cone if necessary. Inputs and latches become free variables.
func (e *Encoder) LitOf(id netlist.ID) Lit {
	if v, ok := e.varOf[id]; ok {
		return MkLit(v, false)
	}
	// Iterative DFS so ripple chains do not overflow the stack.
	type frame struct {
		id       netlist.ID
		expanded bool
	}
	stack := []frame{{id, false}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		if _, done := e.varOf[f.id]; done {
			stack = stack[:len(stack)-1]
			continue
		}
		node := e.nl.Node(f.id)
		if node.Kind.IsConeInput() {
			e.varOf[f.id] = e.S.NewVar()
			stack = stack[:len(stack)-1]
			continue
		}
		if node.Kind == netlist.Const0 || node.Kind == netlist.Const1 {
			v := e.S.NewVar()
			e.varOf[f.id] = v
			e.S.AddClause(MkLit(v, node.Kind == netlist.Const0))
			stack = stack[:len(stack)-1]
			continue
		}
		if !f.expanded {
			stack[len(stack)-1].expanded = true
			for _, fi := range node.Fanin {
				if _, done := e.varOf[fi]; !done {
					stack = append(stack, frame{fi, false})
				}
			}
			continue
		}
		stack = stack[:len(stack)-1]
		e.encodeGate(f.id, node)
	}
	return MkLit(e.varOf[id], false)
}

// VarOf returns the solver variable of an already-encoded node.
func (e *Encoder) VarOf(id netlist.ID) (int, bool) {
	v, ok := e.varOf[id]
	return v, ok
}

func (e *Encoder) encodeGate(id netlist.ID, node *netlist.Node) {
	out := e.S.NewVar()
	e.varOf[id] = out
	o := MkLit(out, false)
	ins := make([]Lit, len(node.Fanin))
	for i, f := range node.Fanin {
		ins[i] = MkLit(e.varOf[f], false)
	}
	switch node.Kind {
	case netlist.Buf:
		e.equal(o, ins[0])
	case netlist.Not:
		e.equal(o, ins[0].Neg())
	case netlist.And:
		e.andGate(o, ins)
	case netlist.Nand:
		e.andGate(o.Neg(), ins)
	case netlist.Or:
		e.orGate(o, ins)
	case netlist.Nor:
		e.orGate(o.Neg(), ins)
	case netlist.Xor, netlist.Xnor:
		// Chain xors pairwise through auxiliary variables.
		acc := ins[0]
		for i := 1; i < len(ins)-1; i++ {
			aux := MkLit(e.S.NewVar(), false)
			e.xorGate(aux, acc, ins[i])
			acc = aux
		}
		want := o
		if node.Kind == netlist.Xnor {
			want = o.Neg()
		}
		e.xorGate(want, acc, ins[len(ins)-1])
	case netlist.Lut:
		e.lutGate(o, node.Mask, ins)
	default:
		panic("sat: cannot encode " + node.Kind.String())
	}
}

// lutGate encodes o <-> mask(ins) with one clause per truth-table row: when
// the inputs match row r the output is forced to the mask bit. 2^k clauses
// of k+1 literals each, k <= 6.
func (e *Encoder) lutGate(o Lit, mask uint64, ins []Lit) {
	rows := uint(1) << uint(len(ins))
	clause := make([]Lit, 0, len(ins)+1)
	for r := uint(0); r < rows; r++ {
		clause = clause[:0]
		for j, in := range ins {
			if r>>uint(j)&1 == 1 {
				clause = append(clause, in.Neg())
			} else {
				clause = append(clause, in)
			}
		}
		if mask>>r&1 == 1 {
			clause = append(clause, o)
		} else {
			clause = append(clause, o.Neg())
		}
		e.S.AddClause(clause...)
	}
}

func (e *Encoder) equal(a, b Lit) {
	e.S.AddClause(a.Neg(), b)
	e.S.AddClause(a, b.Neg())
}

// andGate encodes o <-> AND(ins).
func (e *Encoder) andGate(o Lit, ins []Lit) {
	long := make([]Lit, 0, len(ins)+1)
	for _, in := range ins {
		e.S.AddClause(o.Neg(), in) // o -> in
		long = append(long, in.Neg())
	}
	long = append(long, o)
	e.S.AddClause(long...) // all ins -> o
}

// orGate encodes o <-> OR(ins).
func (e *Encoder) orGate(o Lit, ins []Lit) {
	long := make([]Lit, 0, len(ins)+1)
	for _, in := range ins {
		e.S.AddClause(o, in.Neg()) // in -> o
		long = append(long, in)
	}
	long = append(long, o.Neg())
	e.S.AddClause(long...) // o -> some in
}

// xorGate encodes o <-> a XOR b.
func (e *Encoder) xorGate(o, a, b Lit) {
	e.S.AddClause(o.Neg(), a, b)
	e.S.AddClause(o.Neg(), a.Neg(), b.Neg())
	e.S.AddClause(o, a.Neg(), b)
	e.S.AddClause(o, a, b.Neg())
}

// LitOfFixed encodes a FRESH copy of root's cone in which the boundary
// signals listed in fixed are replaced by constants, while all other
// boundary signals share this encoder's variables. Each call creates new
// internal variables, so different cofactor copies of the same cone do not
// interfere — this is how the counter/shift-register checks compare
// cofactors under conflicting cubes (Sections III-A.2 and III-B.2).
func (e *Encoder) LitOfFixed(root netlist.ID, fixed map[netlist.ID]bool) Lit {
	lits := make(map[netlist.ID]Lit)
	var constT Lit
	haveConst := false
	constLit := func(v bool) Lit {
		if !haveConst {
			constT = MkLit(e.S.NewVar(), false)
			e.S.AddClause(constT)
			haveConst = true
		}
		if v {
			return constT
		}
		return constT.Neg()
	}

	type frame struct {
		id       netlist.ID
		expanded bool
	}
	stack := []frame{{root, false}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		if _, done := lits[f.id]; done {
			stack = stack[:len(stack)-1]
			continue
		}
		node := e.nl.Node(f.id)
		if node.Kind.IsConeInput() {
			if v, isFixed := fixed[f.id]; isFixed {
				lits[f.id] = constLit(v)
			} else {
				lits[f.id] = e.LitOf(f.id) // shared free variable
			}
			stack = stack[:len(stack)-1]
			continue
		}
		switch node.Kind {
		case netlist.Const0:
			lits[f.id] = constLit(false)
			stack = stack[:len(stack)-1]
			continue
		case netlist.Const1:
			lits[f.id] = constLit(true)
			stack = stack[:len(stack)-1]
			continue
		}
		if !f.expanded {
			stack[len(stack)-1].expanded = true
			for _, fi := range node.Fanin {
				if _, done := lits[fi]; !done {
					stack = append(stack, frame{fi, false})
				}
			}
			continue
		}
		stack = stack[:len(stack)-1]
		lits[f.id] = e.encodeGateWith(node, lits)
	}
	return lits[root]
}

// encodeGateWith encodes one gate over the given literal environment,
// returning the output literal (fresh except for Buf/Not pass-through).
func (e *Encoder) encodeGateWith(node *netlist.Node, lits map[netlist.ID]Lit) Lit {
	ins := make([]Lit, len(node.Fanin))
	for i, f := range node.Fanin {
		ins[i] = lits[f]
	}
	switch node.Kind {
	case netlist.Buf:
		return ins[0]
	case netlist.Not:
		return ins[0].Neg()
	}
	out := MkLit(e.S.NewVar(), false)
	o := out
	switch node.Kind {
	case netlist.Nand, netlist.Nor, netlist.Xnor:
		o = out.Neg()
	}
	switch node.Kind {
	case netlist.And, netlist.Nand:
		e.andGate(o, ins)
	case netlist.Or, netlist.Nor:
		e.orGate(o, ins)
	case netlist.Xor, netlist.Xnor:
		acc := ins[0]
		for i := 1; i < len(ins)-1; i++ {
			aux := MkLit(e.S.NewVar(), false)
			e.xorGate(aux, acc, ins[i])
			acc = aux
		}
		e.xorGate(o, acc, ins[len(ins)-1])
	case netlist.Lut:
		e.lutGate(o, node.Mask, ins)
	default:
		panic("sat: cannot encode " + node.Kind.String())
	}
	return out
}

// NotEqualWitness returns a literal that is true iff a != b (a fresh miter
// output).
func (e *Encoder) NotEqualWitness(a, b Lit) Lit {
	x := MkLit(e.S.NewVar(), false)
	e.xorGate(x, a, b)
	return x
}

// Equivalent checks whether nodes a and b compute the same combinational
// function of the shared boundary signals, optionally under a cube of
// boundary assumptions. It is the workhorse of the counter and
// shift-register verifications (Sections III-A.2 and III-B.2).
func Equivalent(nl *netlist.Netlist, a, b netlist.ID, assume map[netlist.ID]bool) bool {
	s := New()
	e := NewEncoder(s, nl)
	la, lb := e.LitOf(a), e.LitOf(b)
	assumptions := make([]Lit, 0, len(assume)+1)
	for id, v := range assume {
		assumptions = append(assumptions, MkLit(int(e.LitOf(id).Var()), !v))
	}
	// Miter: (a XOR b) must be unsatisfiable.
	x := MkLit(s.NewVar(), false)
	e.xorGate(x, la, lb)
	assumptions = append(assumptions, x)
	return s.Solve(assumptions...) == Unsat
}
