// Package sat implements a CDCL (conflict-driven clause learning)
// satisfiability solver and a Tseitin encoder for netlist cones. It stands
// in for MiniSat in the paper's counter/shift-register verification and
// QBF-based module matching: all uses are plain (un)satisfiability queries
// on miter-style formulas, optionally under assumptions.
//
// The solver implements two-literal watching, VSIDS-style activity
// heuristics with phase saving, first-UIP clause learning and Luby
// restarts. Learnt clauses are kept for the life of the solver: the
// instances produced by the analyses in this repository are small, so
// clause-database reduction would add risk for no measurable benefit.
package sat

import "fmt"

// Lit is a literal: variable v as a positive literal is 2v, negated is
// 2v+1. The zero Lit is "variable 0, positive".
type Lit int32

// MkLit builds a literal from a variable index and sign (neg=true for the
// negated literal).
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Neg returns the complement literal.
func (l Lit) Neg() Lit { return l ^ 1 }

// Sign reports whether the literal is negated.
func (l Lit) Sign() bool { return l&1 == 1 }

func (l Lit) String() string {
	if l.Sign() {
		return fmt.Sprintf("~x%d", l.Var())
	}
	return fmt.Sprintf("x%d", l.Var())
}

// Status is a solve result.
type Status int8

// Solve outcomes.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unknown"
}

type lbool int8

const (
	lUndef lbool = 0
	lTrue  lbool = 1
	lFalse lbool = -1
)

type clause struct {
	lits     []Lit
	learnt   bool
	activity float64
}

// watcher pairs a clause index with a blocker literal for fast skips.
type watcher struct {
	cref    int32
	blocker Lit
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	clauses []clause
	watches [][]watcher // indexed by literal

	assign []lbool // indexed by var
	level  []int32
	reason []int32 // clause index or -1
	phase  []bool  // saved phases
	trail  []Lit
	lim    []int32 // decision level boundaries in trail
	qhead  int
	ok     bool // false once the instance is trivially unsat

	model     []lbool
	activity  []float64
	varInc    float64
	heapIdx   []int32 // position of var in heap, -1 when absent
	heap      []int32 // max-heap on activity
	claInc    float64
	seen      []bool
	conflicts int64

	// MaxConflicts aborts Solve with Unknown when positive and exceeded.
	MaxConflicts int64
	// Interrupt, when non-nil, is polled periodically during search (at
	// restart boundaries and every interruptCheckMask+1 conflicts); when
	// it returns true, Solve aborts with Unknown. The nil check is free,
	// so an unbudgeted solve pays nothing.
	Interrupt func() bool
}

// interruptCheckMask spaces out Interrupt polls: the callback typically
// reads a context or an atomic flag, which must not show up in the
// per-conflict profile.
const interruptCheckMask = 255

const (
	varDecay    = 1.0 / 0.95
	clauseDecay = 1.0 / 0.999
	rescaleAt   = 1e100
)

// New returns an empty solver.
func New() *Solver {
	return &Solver{ok: true, varInc: 1, claInc: 1}
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assign) }

// NewVar allocates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assign)
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, -1)
	s.phase = append(s.phase, false)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.heapIdx = append(s.heapIdx, -1)
	s.heapInsert(int32(v))
	return v
}

func (s *Solver) value(l Lit) lbool {
	v := s.assign[l.Var()]
	if l.Sign() {
		return -v
	}
	return v
}

// AddClause adds a clause over existing variables. It returns false if the
// solver became trivially unsatisfiable.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if len(s.lim) != 0 {
		panic("sat: AddClause at non-root decision level")
	}
	// Normalize: drop duplicate/false literals, detect tautology/satisfied.
	norm := lits[:0:0]
	for _, l := range lits {
		switch s.value(l) {
		case lTrue:
			return true // already satisfied at root
		case lFalse:
			continue
		}
		dup, taut := false, false
		for _, k := range norm {
			if k == l {
				dup = true
				break
			}
			if k == l.Neg() {
				taut = true
				break
			}
		}
		if taut {
			return true
		}
		if !dup {
			norm = append(norm, l)
		}
	}
	switch len(norm) {
	case 0:
		s.ok = false
		return false
	case 1:
		if !s.enqueue(norm[0], -1) {
			s.ok = false
			return false
		}
		if s.propagate() != -1 {
			s.ok = false
			return false
		}
		return true
	}
	s.attachClause(norm, false)
	return true
}

func (s *Solver) attachClause(lits []Lit, learnt bool) int32 {
	cref := int32(len(s.clauses))
	s.clauses = append(s.clauses, clause{lits: lits, learnt: learnt, activity: s.claInc})
	s.watches[lits[0].Neg()] = append(s.watches[lits[0].Neg()], watcher{cref, lits[1]})
	s.watches[lits[1].Neg()] = append(s.watches[lits[1].Neg()], watcher{cref, lits[0]})
	return cref
}

func (s *Solver) enqueue(l Lit, from int32) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l.Sign() {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	s.level[v] = int32(len(s.lim))
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

// propagate performs unit propagation; it returns the index of a
// conflicting clause or -1.
func (s *Solver) propagate() int32 {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		ws := s.watches[p]
		kept := ws[:0]
		conflict := int32(-1)
	nextWatcher:
		for wi := 0; wi < len(ws); wi++ {
			w := ws[wi]
			if s.value(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := &s.clauses[w.cref]
			// Ensure the false literal (p.Neg()) is at position 1.
			if c.lits[0] == p.Neg() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				kept = append(kept, watcher{w.cref, first})
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Neg()] = append(s.watches[c.lits[1].Neg()], watcher{w.cref, first})
					continue nextWatcher
				}
			}
			// Clause is unit or conflicting.
			kept = append(kept, w)
			if s.value(first) == lFalse {
				conflict = w.cref
				// Copy remaining watchers and stop.
				kept = append(kept, ws[wi+1:]...)
				s.qhead = len(s.trail)
				break
			}
			if !s.enqueue(first, w.cref) {
				panic("sat: enqueue of unit failed unexpectedly")
			}
		}
		s.watches[p] = kept
		if conflict != -1 {
			return conflict
		}
	}
	return -1
}

func (s *Solver) decisionLevel() int32 { return int32(len(s.lim)) }

func (s *Solver) newDecisionLevel() {
	s.lim = append(s.lim, int32(len(s.trail)))
}

func (s *Solver) cancelUntil(lvl int32) {
	if s.decisionLevel() <= lvl {
		return
	}
	for i := len(s.trail) - 1; i >= int(s.lim[lvl]); i-- {
		l := s.trail[i]
		v := l.Var()
		s.phase[v] = s.assign[v] == lTrue
		s.assign[v] = lUndef
		s.reason[v] = -1
		if s.heapIdx[v] == -1 {
			s.heapInsert(int32(v))
		}
	}
	s.trail = s.trail[:s.lim[lvl]]
	s.lim = s.lim[:lvl]
	s.qhead = len(s.trail)
}

// analyze performs first-UIP conflict analysis, returning the learnt clause
// (with the asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl int32) ([]Lit, int32) {
	learnt := []Lit{0} // placeholder for asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	for {
		c := &s.clauses[confl]
		if c.learnt {
			s.bumpClause(confl)
		}
		start := 0
		if p != -1 {
			start = 1
		}
		for _, q := range c.lits[start:] {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if s.level[v] == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Select next literal to expand from the trail.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = p.Neg()

	// Compute backtrack level (second highest level in clause).
	bt := int32(0)
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		bt = s.level[learnt[1].Var()]
	}
	for _, l := range learnt {
		s.seen[l.Var()] = false
	}
	return learnt, bt
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > rescaleAt {
		for i := range s.activity {
			s.activity[i] *= 1 / rescaleAt
		}
		s.varInc *= 1 / rescaleAt
	}
	if s.heapIdx[v] != -1 {
		s.heapUp(s.heapIdx[v])
	}
}

func (s *Solver) bumpClause(c int32) {
	s.clauses[c].activity += s.claInc
	if s.clauses[c].activity > rescaleAt {
		for i := range s.clauses {
			if s.clauses[i].learnt {
				s.clauses[i].activity *= 1 / rescaleAt
			}
		}
		s.claInc *= 1 / rescaleAt
	}
}

// Solve determines satisfiability under the given assumptions. The model is
// available via Value after Sat.
func (s *Solver) Solve(assumptions ...Lit) Status {
	if !s.ok {
		return Unsat
	}
	defer s.cancelUntil(0)

	restarts := 0
	for {
		if s.Interrupt != nil && s.Interrupt() {
			return Unknown
		}
		limit := int64(100) * int64(luby(restarts+1))
		st := s.search(limit, assumptions)
		if st != Unknown {
			return st
		}
		restarts++
		if s.MaxConflicts > 0 && s.conflicts >= s.MaxConflicts {
			return Unknown
		}
	}
}

// search runs CDCL until a result, a conflict budget exhaustion (Unknown),
// or an assumption failure (Unsat).
func (s *Solver) search(budget int64, assumptions []Lit) Status {
	var conflictsHere int64
	for {
		confl := s.propagate()
		if confl != -1 {
			s.conflicts++
			conflictsHere++
			if s.decisionLevel() <= int32(len(assumptions)) {
				// Conflict within assumption levels: unsat under
				// assumptions. (Level 0 conflict is globally unsat.)
				if s.decisionLevel() == 0 {
					s.ok = false
				}
				return Unsat
			}
			learnt, bt := s.analyze(confl)
			if bt < int32(len(assumptions)) {
				bt = int32(len(assumptions))
			}
			s.cancelUntil(bt)
			if len(learnt) == 1 {
				// Asserting unit: must hold at the assumption level; if it
				// conflicts there the next propagate reports it.
				if !s.enqueue(learnt[0], -1) {
					return Unsat
				}
			} else {
				cref := s.attachClause(learnt, true)
				if !s.enqueue(learnt[0], cref) {
					return Unsat
				}
			}
			s.varInc *= varDecay
			s.claInc *= clauseDecay
			if s.conflicts&interruptCheckMask == 0 && s.Interrupt != nil && s.Interrupt() {
				s.cancelUntil(0)
				return Unknown
			}
			if conflictsHere >= budget {
				s.cancelUntil(int32(len(assumptions)))
				// Keep assumption levels? Simpler: restart from root.
				s.cancelUntil(0)
				return Unknown
			}
			continue
		}

		// Place assumptions as successive decision levels.
		if int(s.decisionLevel()) < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.value(a) {
			case lTrue:
				s.newDecisionLevel() // already implied; dummy level
				continue
			case lFalse:
				return Unsat
			}
			s.newDecisionLevel()
			if !s.enqueue(a, -1) {
				return Unsat
			}
			continue
		}

		// Decide.
		v := s.pickBranchVar()
		if v == -1 {
			// Capture the model before Solve backtracks to root.
			s.model = append(s.model[:0], s.assign...)
			return Sat
		}
		s.newDecisionLevel()
		if !s.enqueue(MkLit(v, !s.phase[v]), -1) {
			panic("sat: decision enqueue failed")
		}
	}
}

func (s *Solver) pickBranchVar() int {
	for len(s.heap) > 0 {
		v := s.heapPop()
		if s.assign[v] == lUndef {
			return int(v)
		}
	}
	return -1
}

// Value returns the model value of variable v from the most recent Sat
// result.
func (s *Solver) Value(v int) bool { return v < len(s.model) && s.model[v] == lTrue }

// luby returns the i-th element (1-based) of the Luby sequence.
func luby(i int) int {
	// Find the finite subsequence containing i.
	k := 1
	for (1<<uint(k))-1 < i {
		k++
	}
	for {
		if (1<<uint(k))-1 == i {
			return 1 << uint(k-1)
		}
		i -= (1 << uint(k-1)) - 1
		k = 1
		for (1<<uint(k))-1 < i {
			k++
		}
	}
}

// --- activity heap (max-heap keyed by activity) ---

func (s *Solver) heapLess(a, b int32) bool { return s.activity[a] > s.activity[b] }

func (s *Solver) heapInsert(v int32) {
	s.heapIdx[v] = int32(len(s.heap))
	s.heap = append(s.heap, v)
	s.heapUp(int32(len(s.heap) - 1))
}

func (s *Solver) heapUp(i int32) {
	v := s.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !s.heapLess(v, s.heap[p]) {
			break
		}
		s.heap[i] = s.heap[p]
		s.heapIdx[s.heap[i]] = i
		i = p
	}
	s.heap[i] = v
	s.heapIdx[v] = i
}

func (s *Solver) heapPop() int32 {
	top := s.heap[0]
	last := s.heap[len(s.heap)-1]
	s.heap = s.heap[:len(s.heap)-1]
	s.heapIdx[top] = -1
	if len(s.heap) > 0 {
		s.heapDown(0, last)
	}
	return top
}

func (s *Solver) heapDown(i int32, v int32) {
	n := int32(len(s.heap))
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		best := l
		if r := l + 1; r < n && s.heapLess(s.heap[r], s.heap[l]) {
			best = r
		}
		if !s.heapLess(s.heap[best], v) {
			break
		}
		s.heap[i] = s.heap[best]
		s.heapIdx[s.heap[i]] = i
		i = best
	}
	s.heap[i] = v
	s.heapIdx[v] = i
}
