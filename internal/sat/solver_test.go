package sat

import (
	"math/rand"
	"testing"

	"netlistre/internal/netlist"
)

func TestTrivial(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(MkLit(a, false))
	s.AddClause(MkLit(b, true))
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	if !s.Value(a) || s.Value(b) {
		t.Errorf("model a=%v b=%v, want true,false", s.Value(a), s.Value(b))
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	if ok := s.AddClause(MkLit(a, true)); ok {
		t.Error("adding contradictory unit should report failure")
	}
	if s.Solve() != Unsat {
		t.Error("solver should be unsat")
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(n+1, n): n+1 pigeons in n holes is unsatisfiable.
	for n := 2; n <= 5; n++ {
		s := New()
		vars := make([][]int, n+1)
		for p := range vars {
			vars[p] = make([]int, n)
			for h := range vars[p] {
				vars[p][h] = s.NewVar()
			}
		}
		for p := 0; p <= n; p++ {
			lits := make([]Lit, n)
			for h := 0; h < n; h++ {
				lits[h] = MkLit(vars[p][h], false)
			}
			s.AddClause(lits...)
		}
		for h := 0; h < n; h++ {
			for p1 := 0; p1 <= n; p1++ {
				for p2 := p1 + 1; p2 <= n; p2++ {
					s.AddClause(MkLit(vars[p1][h], true), MkLit(vars[p2][h], true))
				}
			}
		}
		if got := s.Solve(); got != Unsat {
			t.Errorf("PHP(%d,%d) = %v, want Unsat", n+1, n, got)
		}
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	// a -> b
	s.AddClause(MkLit(a, true), MkLit(b, false))
	if s.Solve(MkLit(a, false), MkLit(b, true)) != Unsat {
		t.Error("a & ~b should be unsat under a->b")
	}
	// Solver must remain usable after an assumption failure.
	if s.Solve(MkLit(a, false)) != Sat {
		t.Error("a alone should be sat")
	}
	if !s.Value(a) || !s.Value(b) {
		t.Error("model should satisfy a and b")
	}
	if s.Solve() != Sat {
		t.Error("no assumptions should be sat")
	}
}

// bruteForceSat checks satisfiability of a clause set by enumeration.
func bruteForceSat(nVars int, clauses [][]Lit) bool {
	for m := 0; m < 1<<uint(nVars); m++ {
		all := true
		for _, c := range clauses {
			sat := false
			for _, l := range c {
				v := m>>uint(l.Var())&1 == 1
				if v != l.Sign() {
					sat = true
					break
				}
			}
			if !sat {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// TestRandom3SATAgainstBruteForce is the solver's core correctness
// property: agreement with exhaustive enumeration on random instances
// around the phase-transition density.
func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 400; trial++ {
		nVars := 4 + rng.Intn(9)
		nClauses := int(4.3 * float64(nVars))
		var clauses [][]Lit
		s := New()
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		for i := 0; i < nClauses; i++ {
			c := make([]Lit, 3)
			for j := range c {
				c[j] = MkLit(rng.Intn(nVars), rng.Intn(2) == 0)
			}
			clauses = append(clauses, c)
			s.AddClause(c...)
		}
		want := bruteForceSat(nVars, clauses)
		got := s.Solve()
		if (got == Sat) != want {
			t.Fatalf("trial %d: solver=%v bruteforce=%v", trial, got, want)
		}
		if got == Sat {
			// The model must satisfy all clauses.
			for ci, c := range clauses {
				ok := false
				for _, l := range c {
					if s.Value(l.Var()) != l.Sign() {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("trial %d: model violates clause %d", trial, ci)
				}
			}
		}
	}
}

func TestEncoderEquivalence(t *testing.T) {
	// Two structurally different implementations of xor3 must be proven
	// equivalent; xor3 vs xnor3 must not.
	nl := netlist.New("t")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	c := nl.AddInput("c")
	x1 := nl.AddGate(netlist.Xor, a, b, c)
	ab := nl.AddGate(netlist.Xor, a, b)
	x2 := nl.AddGate(netlist.Xor, ab, c)
	x3 := nl.AddGate(netlist.Xnor, a, b, c)

	if !Equivalent(nl, x1, x2, nil) {
		t.Error("xor3 implementations not proven equivalent")
	}
	if Equivalent(nl, x1, x3, nil) {
		t.Error("xor3 and xnor3 claimed equivalent")
	}
}

func TestEquivalentUnderAssumptions(t *testing.T) {
	// f = s ? a : b and g = a are equivalent only under s=1.
	nl := netlist.New("t")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	sSig := nl.AddInput("s")
	sa := nl.AddGate(netlist.And, sSig, a)
	ns := nl.AddGate(netlist.Not, sSig)
	nsb := nl.AddGate(netlist.And, ns, b)
	f := nl.AddGate(netlist.Or, sa, nsb)
	g := nl.AddGate(netlist.Buf, a)

	if Equivalent(nl, f, g, nil) {
		t.Error("mux and passthrough claimed equivalent unconditionally")
	}
	if !Equivalent(nl, f, g, map[netlist.ID]bool{sSig: true}) {
		t.Error("mux|s=1 and passthrough not proven equivalent")
	}
}

func TestEncoderAgainstEval(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		nl := netlist.New("r")
		var pool []netlist.ID
		nIn := 4 + rng.Intn(3)
		for i := 0; i < nIn; i++ {
			pool = append(pool, nl.AddInput(string(rune('a'+i))))
		}
		kinds := []netlist.Kind{netlist.And, netlist.Or, netlist.Nand,
			netlist.Nor, netlist.Xor, netlist.Xnor, netlist.Not}
		for i := 0; i < 15; i++ {
			k := kinds[rng.Intn(len(kinds))]
			if k == netlist.Not {
				pool = append(pool, nl.AddGate(k, pool[rng.Intn(len(pool))]))
			} else {
				pool = append(pool, nl.AddGate(k,
					pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))]))
			}
		}
		root := pool[len(pool)-1]

		s := New()
		e := NewEncoder(s, nl)
		rootLit := e.LitOf(root)

		// For each input assignment, the SAT encoding restricted to that
		// assignment must force root to its simulated value.
		for m := 0; m < 1<<uint(nIn); m++ {
			assign := make(map[netlist.ID]bool)
			var assumptions []Lit
			for i, in := range nl.Inputs() {
				v := m>>uint(i)&1 == 1
				assign[in] = v
				assumptions = append(assumptions, MkLit(e.LitOf(in).Var(), !v))
			}
			want := nl.Eval(assign)[root]
			// root forced to want: asserting the opposite must be unsat.
			bad := rootLit
			if want {
				bad = rootLit.Neg()
			}
			if s.Solve(append(assumptions, bad)...) != Unsat {
				t.Fatalf("trial %d mask %d: encoding allows wrong root value", trial, m)
			}
		}
	}
}
