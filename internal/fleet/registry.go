package fleet

// Peer registry: tracks worker health with per-peer circuit breakers and
// optional background /healthz probing. The registry is the dispatcher's
// only view of the fleet — a peer the breaker rejects simply stops being
// offered work until its cooldown expires.

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// breakerState is the classic three-state circuit breaker.
type breakerState uint8

const (
	breakerClosed   breakerState = iota // healthy: all requests allowed
	breakerOpen                         // tripped: requests rejected until cooldown
	breakerHalfOpen                     // cooling down: one trial request allowed
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	default:
		return "half-open"
	}
}

// Peer is one worker endpoint plus its breaker state. All state is
// guarded by mu; Peers are shared between the dispatcher and the prober.
type Peer struct {
	// URL is the worker's base URL, e.g. "http://10.0.0.7:8080".
	URL string

	mu        sync.Mutex
	state     breakerState
	failures  int  // consecutive failures while closed
	inTrial   bool // a half-open trial request is in flight
	openUntil time.Time
	threshold int
	cooldown  time.Duration
}

// Allow reports whether the peer may receive a request now. In the open
// state it flips to half-open once the cooldown expires, admitting
// exactly one trial request; further callers are rejected until that
// trial reports Success or Failure.
func (p *Peer) Allow() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch p.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Now().Before(p.openUntil) {
			return false
		}
		p.state = breakerHalfOpen
		p.inTrial = true
		return true
	default: // half-open
		if p.inTrial {
			return false
		}
		p.inTrial = true
		return true
	}
}

// Success records a completed request: the breaker closes and the failure
// streak resets.
func (p *Peer) Success() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.state = breakerClosed
	p.failures = 0
	p.inTrial = false
}

// Failure records a failed request. A failed half-open trial reopens the
// breaker immediately; in the closed state the breaker opens after
// threshold consecutive failures.
func (p *Peer) Failure() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.state == breakerHalfOpen {
		p.open()
		return
	}
	p.failures++
	if p.failures >= p.threshold {
		p.open()
	}
}

// open transitions to the open state; callers hold mu.
func (p *Peer) open() {
	p.state = breakerOpen
	p.failures = 0
	p.inTrial = false
	p.openUntil = time.Now().Add(p.cooldown)
}

// State returns the breaker state name for metrics.
func (p *Peer) State() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state.String()
}

// Registry holds the fleet's peers and hands them out round-robin.
type Registry struct {
	peers  []*Peer
	client *http.Client
	opt    Options

	mu   sync.Mutex
	next int // round-robin cursor

	probeStop chan struct{}
	probeDone chan struct{}
}

// NewRegistry builds a registry over the given base URLs. client is used
// for health probes (nil selects http.DefaultClient); breaker tuning
// comes from opt.
func NewRegistry(urls []string, client *http.Client, opt Options) *Registry {
	opt = opt.withDefaults()
	if client == nil {
		client = http.DefaultClient
	}
	r := &Registry{client: client, opt: opt}
	for _, u := range urls {
		r.peers = append(r.peers, &Peer{
			URL:       u,
			threshold: opt.FailureThreshold,
			cooldown:  opt.BreakerCooldown,
		})
	}
	return r
}

// Len returns the number of registered peers (healthy or not).
func (r *Registry) Len() int { return len(r.peers) }

// Pick returns the next breaker-admitted peer in round-robin order,
// skipping any peer in avoid. It returns nil when no peer is eligible —
// the dispatcher's cue to back off or fall back to local execution.
func (r *Registry) Pick(avoid map[*Peer]bool) *Peer {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 0; i < len(r.peers); i++ {
		p := r.peers[(r.next+i)%len(r.peers)]
		if avoid[p] || !p.Allow() {
			continue
		}
		r.next = (r.next + i + 1) % len(r.peers)
		return p
	}
	return nil
}

// Probe checks every peer's /healthz once, feeding the breakers: a 200
// closes a peer's breaker (or completes its half-open trial), anything
// else counts as a failure. It returns the number of healthy peers.
func (r *Registry) Probe(ctx context.Context) int {
	healthy := 0
	for _, p := range r.peers {
		if r.probeOne(ctx, p) {
			healthy++
		}
	}
	return healthy
}

func (r *Registry) probeOne(ctx context.Context, p *Peer) bool {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.URL+"/healthz", nil)
	if err != nil {
		p.Failure()
		return false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		p.Failure()
		return false
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		p.Failure()
		return false
	}
	p.Success()
	return true
}

// StartProbing launches a background goroutine probing all peers every
// Options.ProbeInterval until StopProbing is called. Probing lets an
// open breaker recover (and a dead peer be re-marked) even while no
// dispatch traffic is flowing.
func (r *Registry) StartProbing() {
	if r.probeStop != nil {
		return
	}
	r.probeStop = make(chan struct{})
	r.probeDone = make(chan struct{})
	go func() {
		defer close(r.probeDone)
		ticker := time.NewTicker(r.opt.ProbeInterval)
		defer ticker.Stop()
		for {
			select {
			case <-r.probeStop:
				return
			case <-ticker.C:
				r.Probe(context.Background())
			}
		}
	}()
}

// StopProbing stops the background prober and waits for it to exit.
func (r *Registry) StopProbing() {
	if r.probeStop == nil {
		return
	}
	close(r.probeStop)
	<-r.probeDone
	r.probeStop = nil
	r.probeDone = nil
}

// PeerStates returns each peer's URL and breaker state, in registration
// order, for metrics export.
func (r *Registry) PeerStates() []struct{ URL, State string } {
	out := make([]struct{ URL, State string }, len(r.peers))
	for i, p := range r.peers {
		out[i].URL = p.URL
		out[i].State = p.State()
	}
	return out
}
