package fleet

// Dispatcher: runs tasks against the fleet with bounded parallelism,
// retries with seeded-jitter exponential backoff, hedged re-dispatch of
// slow attempts, and per-task local fallback.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Dispatcher executes Tasks against a Registry of peers.
type Dispatcher struct {
	reg    *Registry
	client *http.Client
	opt    Options
	stats  counters

	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewDispatcher builds a dispatcher. client is used for job submission
// and polling (nil selects http.DefaultClient).
func NewDispatcher(reg *Registry, client *http.Client, opt Options) *Dispatcher {
	opt = opt.withDefaults()
	if client == nil {
		client = http.DefaultClient
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	return &Dispatcher{
		reg:    reg,
		client: client,
		opt:    opt,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Stats snapshots the dispatcher's counters.
func (d *Dispatcher) Stats() Stats { return d.stats.snapshot() }

// Run dispatches all tasks with Options.Parallel concurrency and returns
// their results in task order. Run returns only when every task has
// resolved (remotely or via local fallback) and every hedge goroutine has
// exited; it never leaks goroutines past its return.
func (d *Dispatcher) Run(ctx context.Context, tasks []Task) []Result {
	results := make([]Result, len(tasks))
	sem := make(chan struct{}, d.opt.Parallel)
	var wg sync.WaitGroup
	for i := range tasks {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = d.runTask(ctx, tasks[i])
		}(i)
	}
	wg.Wait()
	return results
}

// retryAfterError carries a server-suggested delay from a 503 response;
// the retry backoff stretches to honor it.
type retryAfterError struct {
	err   error
	delay time.Duration
}

func (e *retryAfterError) Error() string { return e.err.Error() }
func (e *retryAfterError) Unwrap() error { return e.err }

// runTask walks one task through the dispatch state machine:
// dispatch -> retry (backoff+jitter) -> hedge -> local fallback.
func (d *Dispatcher) runTask(ctx context.Context, t Task) Result {
	start := time.Now()
	res := Result{Key: t.Key, Source: "local"}

	var suggested time.Duration
	for attempt := 0; attempt < d.opt.MaxAttempts && ctx.Err() == nil; attempt++ {
		peer := d.reg.Pick(nil)
		if peer == nil {
			break // no eligible peer: straight to local fallback
		}
		if attempt > 0 {
			d.stats.add(func(s *Stats) { s.Retries++ })
			if !d.sleep(ctx, d.backoff(attempt, suggested)) {
				break
			}
		}
		report, src, hedged, err := d.attemptPair(ctx, peer, t.Body)
		if hedged {
			res.Hedged = true
		}
		if err == nil {
			res.Report = report
			res.Source = src
			res.Attempts = attempt + 1
			res.Duration = time.Since(start)
			d.stats.add(func(s *Stats) { s.Remote++ })
			return res
		}
		res.Attempts = attempt + 1
		var ra *retryAfterError
		if errors.As(err, &ra) {
			suggested = ra.delay
		} else {
			suggested = 0
		}
	}

	// Local fallback: the fleet could not produce the report, the
	// coordinator computes it itself.
	report, err := t.Local(ctx)
	res.Report = report
	res.Err = err
	res.Duration = time.Since(start)
	d.stats.add(func(s *Stats) { s.Local++ })
	return res
}

// backoff computes the pre-attempt delay: exponential from BaseBackoff,
// capped at MaxBackoff, minus up to 50% deterministic jitter, stretched
// to any server-suggested Retry-After.
func (d *Dispatcher) backoff(attempt int, suggested time.Duration) time.Duration {
	delay := d.opt.BaseBackoff << (attempt - 1)
	if delay > d.opt.MaxBackoff || delay <= 0 {
		delay = d.opt.MaxBackoff
	}
	d.rngMu.Lock()
	jitter := time.Duration(d.rng.Int63n(int64(delay)/2 + 1))
	d.rngMu.Unlock()
	delay -= jitter
	if suggested > delay {
		delay = suggested
	}
	return delay
}

// sleep waits for dur unless ctx ends first, reporting whether the full
// wait elapsed.
func (d *Dispatcher) sleep(ctx context.Context, dur time.Duration) bool {
	if dur <= 0 {
		return true
	}
	timer := time.NewTimer(dur)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// attemptPair runs one dispatch attempt against primary, hedging onto a
// second peer after HedgeAfter if the primary is still running. The first
// success wins; both goroutines are joined before returning so a slow
// loser cannot outlive the call.
func (d *Dispatcher) attemptPair(ctx context.Context, primary *Peer, body []byte) (report []byte, source string, hedged bool, err error) {
	ctx, cancel := context.WithTimeout(ctx, d.opt.AttemptTimeout)
	defer cancel()

	outcomes := make(chan attemptOutcome, 2)
	var wg sync.WaitGroup
	launched := 1
	wg.Add(1)
	go func() {
		defer wg.Done()
		b, e := d.attempt(ctx, primary, body)
		outcomes <- attemptOutcome{b, primary, e}
	}()

	var hedgeTimer <-chan time.Time
	if d.opt.HedgeAfter > 0 {
		timer := time.NewTimer(d.opt.HedgeAfter)
		defer timer.Stop()
		hedgeTimer = timer.C
	}

	var firstErr error
	seen := 0
	for seen < launched {
		select {
		case o := <-outcomes:
			seen++
			if o.err == nil {
				// Winner: record breaker success, cancel the straggler, and
				// wait for it so no goroutine outlives the attempt.
				o.peer.Success()
				cancel()
				wg.Wait()
				d.drainOutcomes(ctx, outcomes, launched-seen)
				if hedged && o.peer != primary {
					d.stats.add(func(s *Stats) { s.HedgeWins++ })
				}
				return o.report, o.peer.URL, hedged, nil
			}
			d.feedFailure(ctx, o.peer, o.err)
			if firstErr == nil {
				firstErr = o.err
			}
		case <-hedgeTimer:
			hedgeTimer = nil
			second := d.reg.Pick(map[*Peer]bool{primary: true})
			if second == nil {
				continue
			}
			hedged = true
			d.stats.add(func(s *Stats) { s.Hedges++ })
			launched++
			wg.Add(1)
			go func() {
				defer wg.Done()
				b, e := d.attempt(ctx, second, body)
				outcomes <- attemptOutcome{b, second, e}
			}()
		}
	}
	wg.Wait()
	return nil, "", hedged, firstErr
}

// attemptOutcome is one attempt goroutine's result.
type attemptOutcome struct {
	report []byte
	peer   *Peer
	err    error
}

// drainOutcomes consumes the losers' outcomes after a winner, feeding
// their failures (if real, not winner-induced cancellation) to breakers.
func (d *Dispatcher) drainOutcomes(ctx context.Context, outcomes chan attemptOutcome, n int) {
	for i := 0; i < n; i++ {
		o := <-outcomes
		if o.err != nil {
			d.feedFailure(ctx, o.peer, o.err)
		}
	}
}

// feedFailure records a failed attempt on a peer's breaker — unless the
// failure is just our own cancellation of a losing hedge, which says
// nothing about the peer's health.
func (d *Dispatcher) feedFailure(ctx context.Context, p *Peer, err error) {
	if errors.Is(err, context.Canceled) && ctx.Err() != nil && !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return
	}
	p.Failure()
	d.stats.add(func(s *Stats) { s.Failures++ })
}

// attempt performs one full remote execution on a peer: submit the job,
// poll it to a terminal state, return the report bytes. Only a "done"
// job succeeds; "degraded" and "failed" are attempt failures (the local
// fallback or another peer can still do better).
func (d *Dispatcher) attempt(ctx context.Context, p *Peer, body []byte) ([]byte, error) {
	id, err := d.submit(ctx, p, body)
	if err != nil {
		return nil, err
	}
	return d.poll(ctx, p, id)
}

// jobStatus is the subset of the /v1/jobs wire form the dispatcher needs.
type jobStatus struct {
	ID     string          `json:"id"`
	Status string          `json:"status"`
	Error  string          `json:"error"`
	Report json.RawMessage `json:"report"`
}

func (d *Dispatcher) submit(ctx context.Context, p *Peer, body []byte) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := d.client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		err := fmt.Errorf("fleet: %s: submit returned %s", p.URL, resp.Status)
		if resp.StatusCode == http.StatusServiceUnavailable {
			if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
				return "", &retryAfterError{err: err, delay: time.Duration(secs) * time.Second}
			}
		}
		return "", err
	}
	var st jobStatus
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		return "", fmt.Errorf("fleet: %s: decoding submit response: %w", p.URL, err)
	}
	if st.ID == "" {
		return "", fmt.Errorf("fleet: %s: submit response carries no job ID", p.URL)
	}
	return st.ID, nil
}

// maxPollFailures bounds consecutive status-poll failures before the
// attempt is abandoned. Polls are idempotent reads: a long-running job is
// polled hundreds of times, so on a lossy network (the chaos model
// injects failures per request) a single dropped poll must not discard
// an otherwise healthy in-flight job. Eight consecutive failures, on the
// other hand, is a dead peer with overwhelming probability, and the
// attempt moves on to retry, hedge, or local fallback.
const maxPollFailures = 8

func (d *Dispatcher) poll(ctx context.Context, p *Peer, id string) ([]byte, error) {
	ticker := time.NewTicker(d.opt.PollInterval)
	defer ticker.Stop()
	consecutive := 0
	for {
		st, err := d.getJob(ctx, p, id)
		switch {
		case err != nil && ctx.Err() != nil:
			return nil, ctx.Err()
		case err != nil:
			consecutive++
			if consecutive >= maxPollFailures {
				return nil, fmt.Errorf("fleet: %s: job %s lost after %d consecutive poll failures: %w",
					p.URL, id, consecutive, err)
			}
		default:
			consecutive = 0
			switch st.Status {
			case "done":
				if len(st.Report) == 0 {
					return nil, fmt.Errorf("fleet: %s: job %s done without a report", p.URL, id)
				}
				return st.Report, nil
			case "degraded", "failed":
				return nil, fmt.Errorf("fleet: %s: job %s ended %s: %s", p.URL, id, st.Status, st.Error)
			}
		}
		select {
		case <-ticker.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func (d *Dispatcher) getJob(ctx context.Context, p *Peer, id string) (*jobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: %s: job %s status returned %s", p.URL, id, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("fleet: %s: reading job %s status: %w", p.URL, id, err)
	}
	var st jobStatus
	if err := json.Unmarshal(b, &st); err != nil {
		return nil, fmt.Errorf("fleet: %s: decoding job %s status: %w", p.URL, id, err)
	}
	return &st, nil
}
