package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fastOptions keeps dispatch tests snappy.
func fastOptions() Options {
	return Options{
		MaxAttempts:      3,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       5 * time.Millisecond,
		AttemptTimeout:   5 * time.Second,
		HedgeAfter:       -1, // no hedging unless a test asks for it
		PollInterval:     2 * time.Millisecond,
		Parallel:         4,
		FailureThreshold: 3,
		BreakerCooldown:  20 * time.Millisecond,
		Seed:             7,
	}
}

// fakeWorker is a minimal /v1/jobs peer: submissions are accepted (or
// rejected by failSubmits), and every job completes instantly with the
// worker's fixed report.
type fakeWorker struct {
	report      string
	failSubmits int64 // fail this many submissions with 500 before accepting
	submitDelay time.Duration

	submits int64
	polls   int64
}

func (f *fakeWorker) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt64(&f.submits, 1)
		if f.submitDelay > 0 {
			select {
			case <-time.After(f.submitDelay):
			case <-r.Context().Done():
				return
			}
		}
		if atomic.AddInt64(&f.failSubmits, -1) >= 0 {
			http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"job-1","status":"queued"}`)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt64(&f.polls, 1)
		resp := map[string]interface{}{
			"id":     r.PathValue("id"),
			"status": "done",
			"report": json.RawMessage(f.report),
		}
		json.NewEncoder(w).Encode(resp) //nolint:errcheck
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	return mux
}

func TestBreakerTransitions(t *testing.T) {
	p := &Peer{URL: "http://x", threshold: 2, cooldown: 50 * time.Millisecond}

	if !p.Allow() {
		t.Fatal("closed breaker must allow")
	}
	p.Failure()
	if !p.Allow() {
		t.Fatal("one failure below threshold must not open the breaker")
	}
	p.Failure() // second consecutive failure: opens
	if p.State() != "open" {
		t.Fatalf("state after threshold failures = %s, want open", p.State())
	}
	if p.Allow() {
		t.Fatal("open breaker must reject before cooldown")
	}

	time.Sleep(60 * time.Millisecond)
	if !p.Allow() {
		t.Fatal("cooled-down breaker must admit a half-open trial")
	}
	if p.Allow() {
		t.Fatal("half-open breaker must admit only one trial at a time")
	}
	p.Failure() // failed trial: reopen immediately
	if p.State() != "open" {
		t.Fatalf("state after failed trial = %s, want open", p.State())
	}

	time.Sleep(60 * time.Millisecond)
	if !p.Allow() {
		t.Fatal("second cooldown must admit another trial")
	}
	p.Success()
	if p.State() != "closed" {
		t.Fatalf("state after successful trial = %s, want closed", p.State())
	}
	if !p.Allow() || !p.Allow() {
		t.Fatal("closed breaker must allow freely again")
	}
}

func TestDispatchRemoteSuccess(t *testing.T) {
	worker := &fakeWorker{report: `{"who":"peer"}`}
	srv := httptest.NewServer(worker.handler())
	defer srv.Close()

	reg := NewRegistry([]string{srv.URL}, nil, fastOptions())
	d := NewDispatcher(reg, nil, fastOptions())
	res := d.Run(context.Background(), []Task{{
		Key:   "p1",
		Body:  []byte(`{}`),
		Local: func(context.Context) ([]byte, error) { return []byte(`{"who":"local"}`), nil },
	}})

	if len(res) != 1 || res[0].Err != nil {
		t.Fatalf("Run: %+v", res)
	}
	if string(res[0].Report) != `{"who":"peer"}` {
		t.Errorf("report = %s, want the peer's", res[0].Report)
	}
	if res[0].Source != srv.URL || res[0].Attempts != 1 {
		t.Errorf("source=%s attempts=%d, want %s/1", res[0].Source, res[0].Attempts, srv.URL)
	}
	if st := d.Stats(); st.Remote != 1 || st.Local != 0 {
		t.Errorf("stats = %+v, want one remote resolution", st)
	}
}

func TestDispatchRetriesAcrossFailures(t *testing.T) {
	worker := &fakeWorker{report: `{"ok":true}`, failSubmits: 2}
	srv := httptest.NewServer(worker.handler())
	defer srv.Close()

	opt := fastOptions()
	opt.FailureThreshold = 10 // keep the lone peer eligible through the failures
	reg := NewRegistry([]string{srv.URL}, nil, opt)
	d := NewDispatcher(reg, nil, opt)
	res := d.Run(context.Background(), []Task{{
		Key:   "p1",
		Body:  []byte(`{}`),
		Local: func(context.Context) ([]byte, error) { return []byte(`{"who":"local"}`), nil },
	}})

	if res[0].Err != nil || string(res[0].Report) != `{"ok":true}` {
		t.Fatalf("result: %+v", res[0])
	}
	if res[0].Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (two failures, then success)", res[0].Attempts)
	}
	if st := d.Stats(); st.Retries != 2 || st.Failures != 2 || st.Remote != 1 {
		t.Errorf("stats = %+v, want retries=2 failures=2 remote=1", st)
	}
}

func TestDispatchLocalFallbackWhenFleetDead(t *testing.T) {
	// A peer that is down for good: the URL points at a closed listener.
	dead := httptest.NewServer(http.NotFoundHandler())
	url := dead.URL
	dead.Close()

	reg := NewRegistry([]string{url}, nil, fastOptions())
	d := NewDispatcher(reg, nil, fastOptions())
	var localRuns int64
	res := d.Run(context.Background(), []Task{{
		Key:  "p1",
		Body: []byte(`{}`),
		Local: func(context.Context) ([]byte, error) {
			atomic.AddInt64(&localRuns, 1)
			return []byte(`{"who":"local"}`), nil
		},
	}})

	if res[0].Err != nil || string(res[0].Report) != `{"who":"local"}` {
		t.Fatalf("result: %+v", res[0])
	}
	if res[0].Source != "local" {
		t.Errorf("source = %q, want local", res[0].Source)
	}
	if localRuns != 1 {
		t.Errorf("local fallback ran %d times, want 1", localRuns)
	}
	if st := d.Stats(); st.Local != 1 || st.Remote != 0 {
		t.Errorf("stats = %+v, want one local resolution", st)
	}
}

func TestDispatchNoPeersGoesStraightLocal(t *testing.T) {
	reg := NewRegistry(nil, nil, fastOptions())
	d := NewDispatcher(reg, nil, fastOptions())
	res := d.Run(context.Background(), []Task{{
		Key:   "p1",
		Body:  []byte(`{}`),
		Local: func(context.Context) ([]byte, error) { return []byte(`{}`), nil },
	}})
	if res[0].Err != nil || res[0].Source != "local" || res[0].Attempts != 0 {
		t.Fatalf("result: %+v, want an immediate local resolution", res[0])
	}
}

func TestHedgeWinsOverStuckPeer(t *testing.T) {
	// The primary accepts the job but never finishes it (status stays
	// queued); the hedge peer answers instantly.
	stuckMux := http.NewServeMux()
	stuckMux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"job-stuck","status":"queued"}`)
	})
	stuckMux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"id":"job-stuck","status":"running"}`)
	})
	stuck := httptest.NewServer(stuckMux)
	defer stuck.Close()
	fast := httptest.NewServer((&fakeWorker{report: `{"who":"hedge"}`}).handler())
	defer fast.Close()

	opt := fastOptions()
	opt.HedgeAfter = 20 * time.Millisecond
	opt.AttemptTimeout = 5 * time.Second
	reg := NewRegistry([]string{stuck.URL, fast.URL}, nil, opt)
	d := NewDispatcher(reg, nil, opt)
	res := d.Run(context.Background(), []Task{{
		Key:   "p1",
		Body:  []byte(`{}`),
		Local: func(context.Context) ([]byte, error) { return []byte(`{"who":"local"}`), nil },
	}})

	if res[0].Err != nil || string(res[0].Report) != `{"who":"hedge"}` {
		t.Fatalf("result: %+v, want the hedge peer's report", res[0])
	}
	if !res[0].Hedged || res[0].Source != fast.URL {
		t.Errorf("hedged=%v source=%s, want hedged win from %s", res[0].Hedged, res[0].Source, fast.URL)
	}
	if st := d.Stats(); st.Hedges != 1 || st.HedgeWins != 1 {
		t.Errorf("stats = %+v, want hedges=1 hedgeWins=1", st)
	}
}

func TestRegistryProbeRecoversBreaker(t *testing.T) {
	var healthy atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			http.Error(w, `{"status":"down"}`, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	opt := fastOptions()
	opt.FailureThreshold = 1
	reg := NewRegistry([]string{srv.URL}, nil, opt)

	if n := reg.Probe(context.Background()); n != 0 {
		t.Fatalf("probe of sick peer: healthy=%d, want 0", n)
	}
	if p := reg.Pick(nil); p != nil {
		t.Fatal("tripped breaker must remove the peer from rotation")
	}

	healthy.Store(true)
	time.Sleep(opt.BreakerCooldown + 10*time.Millisecond)
	if n := reg.Probe(context.Background()); n != 1 {
		t.Fatalf("probe of recovered peer: healthy=%d, want 1", n)
	}
	if p := reg.Pick(nil); p == nil {
		t.Fatal("recovered peer must return to rotation")
	}
}

func TestRunBoundsParallelismAndJoins(t *testing.T) {
	// No peers: every task runs its Local closure. Track concurrency.
	opt := fastOptions()
	opt.Parallel = 2
	reg := NewRegistry(nil, nil, opt)
	d := NewDispatcher(reg, nil, opt)

	var mu sync.Mutex
	cur, peak := 0, 0
	tasks := make([]Task, 8)
	for i := range tasks {
		i := i
		tasks[i] = Task{
			Key:  fmt.Sprintf("p%d", i),
			Body: []byte(`{}`),
			Local: func(context.Context) ([]byte, error) {
				mu.Lock()
				cur++
				if cur > peak {
					peak = cur
				}
				mu.Unlock()
				time.Sleep(5 * time.Millisecond)
				mu.Lock()
				cur--
				mu.Unlock()
				return []byte(fmt.Sprintf(`{"i":%d}`, i)), nil
			},
		}
	}
	res := d.Run(context.Background(), tasks)
	for i, r := range res {
		if r.Err != nil || string(r.Report) != fmt.Sprintf(`{"i":%d}`, i) {
			t.Fatalf("task %d: %+v (results must keep task order)", i, r)
		}
	}
	if peak > 2 {
		t.Errorf("peak concurrency %d exceeds Parallel=2", peak)
	}
}
