// Package chaos provides a fault-injecting http.RoundTripper for testing
// fleet mode against an unreliable network. Faults are drawn from a
// seeded source, so a chaos run is reproducible: the same seed injects
// the same fault sequence. Supported faults:
//
//   - refused connections (the request never reaches the peer)
//   - added latency (bounded, respecting the request context)
//   - synthesized 5xx responses (the peer is never consulted)
//   - truncated response bodies (the peer answers, the client reads a cut
//     stream and fails to decode it)
//   - mid-job peer death: Kill(host) makes every later request to that
//     host fail, regardless of probabilities — the wrapped server can be
//     shut down alongside to complete the illusion
//
// The transport never mutates a request body it forwards, so an injected
// fault can make an attempt fail but can never corrupt what a surviving
// attempt computes — exactly the failure model fleet mode promises to
// absorb.
package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Config sets per-request fault probabilities. Probabilities are checked
// in order (refuse, delay, 5xx, truncate); at most one fault fires per
// request. The zero value injects nothing.
type Config struct {
	// Seed seeds the fault source (0 selects a fixed default).
	Seed int64
	// RefuseProb is the probability of failing a request with a
	// connection-refused error.
	RefuseProb float64
	// DelayProb is the probability of delaying a request by up to
	// MaxDelay before forwarding it.
	DelayProb float64
	// MaxDelay bounds injected latency (default 50ms).
	MaxDelay time.Duration
	// ErrorProb is the probability of answering 503 without forwarding.
	ErrorProb float64
	// TruncateProb is the probability of forwarding the request but
	// cutting the response body in half.
	TruncateProb float64
}

// Transport is the fault-injecting RoundTripper. Wrap it around a real
// transport and install it as an http.Client's Transport.
type Transport struct {
	// Next is the wrapped transport (nil selects http.DefaultTransport).
	Next http.RoundTripper

	cfg Config

	mu     sync.Mutex
	rng    *rand.Rand
	dead   map[string]bool
	counts Counts
}

// Counts tallies injected faults for test assertions.
type Counts struct {
	Requests  int64 // requests seen (including faulted ones)
	Refused   int64
	Delayed   int64
	Errored   int64
	Truncated int64
	DeadHost  int64 // requests rejected because their host was Killed
}

// Total returns the number of injected faults (excluding delays, which
// slow an attempt but do not fail it).
func (c Counts) Total() int64 { return c.Refused + c.Errored + c.Truncated + c.DeadHost }

// New builds a fault-injecting transport over next.
func New(next http.RoundTripper, cfg Config) *Transport {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 50 * time.Millisecond
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Transport{
		Next: next,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(seed)),
		dead: make(map[string]bool),
	}
}

// Kill marks a host (as in req.URL.Host, "addr:port") permanently dead:
// every subsequent request to it fails with a connection error. Combine
// with shutting the real server down to simulate a peer dying mid-job.
func (t *Transport) Kill(host string) {
	t.mu.Lock()
	t.dead[host] = true
	t.mu.Unlock()
}

// Counts returns a snapshot of the fault tallies.
func (t *Transport) Counts() Counts {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts
}

// fault is the decision drawn for one request.
type fault int

const (
	faultNone fault = iota
	faultRefuse
	faultDelay
	faultError
	faultTruncate
	faultDead
)

// draw picks the request's fault under the lock, so the fault sequence
// depends only on the seed and the request order.
func (t *Transport) draw(host string) (fault, time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.counts.Requests++
	if t.dead[host] {
		t.counts.DeadHost++
		return faultDead, 0
	}
	roll := t.rng.Float64()
	switch {
	case roll < t.cfg.RefuseProb:
		t.counts.Refused++
		return faultRefuse, 0
	case roll < t.cfg.RefuseProb+t.cfg.DelayProb:
		t.counts.Delayed++
		delay := time.Duration(t.rng.Int63n(int64(t.cfg.MaxDelay)) + 1)
		return faultDelay, delay
	case roll < t.cfg.RefuseProb+t.cfg.DelayProb+t.cfg.ErrorProb:
		t.counts.Errored++
		return faultError, 0
	case roll < t.cfg.RefuseProb+t.cfg.DelayProb+t.cfg.ErrorProb+t.cfg.TruncateProb:
		t.counts.Truncated++
		return faultTruncate, 0
	}
	return faultNone, 0
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	next := t.Next
	if next == nil {
		next = http.DefaultTransport
	}
	f, delay := t.draw(req.URL.Host)
	switch f {
	case faultDead:
		return nil, fmt.Errorf("chaos: connect %s: host is dead", req.URL.Host)
	case faultRefuse:
		return nil, fmt.Errorf("chaos: connect %s: connection refused", req.URL.Host)
	case faultDelay:
		timer := time.NewTimer(delay)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return next.RoundTrip(req)
	case faultError:
		body := `{"error":"chaos: injected server error"}`
		return &http.Response{
			StatusCode:    http.StatusServiceUnavailable,
			Status:        "503 Service Unavailable",
			Proto:         req.Proto,
			ProtoMajor:    req.ProtoMajor,
			ProtoMinor:    req.ProtoMinor,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	case faultTruncate:
		resp, err := next.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		return truncateBody(resp), nil
	}
	return next.RoundTrip(req)
}

// truncateBody reads the response and returns it with the body cut in
// half, so the client sees a well-formed status line but a stream that
// ends mid-payload.
func truncateBody(resp *http.Response) *http.Response {
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		// The body already failed on its own; pass the failure through.
		resp.Body = io.NopCloser(strings.NewReader(""))
		return resp
	}
	cut := b[:len(b)/2]
	resp.Body = io.NopCloser(strings.NewReader(string(cut)))
	resp.ContentLength = int64(len(cut))
	resp.Header.Del("Content-Length")
	return resp
}
