package chaos

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// drive sends n GET requests through the transport against srv and
// returns the outcome signature: one letter per request (ok, refused,
// 5xx, truncated, dead).
func drive(t *testing.T, tr *Transport, srv *httptest.Server, n int) string {
	t.Helper()
	client := &http.Client{Transport: tr}
	var sig strings.Builder
	for i := 0; i < n; i++ {
		resp, err := client.Get(srv.URL + "/payload")
		if err != nil {
			switch {
			case strings.Contains(err.Error(), "host is dead"):
				sig.WriteByte('d')
			case strings.Contains(err.Error(), "connection refused"):
				sig.WriteByte('r')
			default:
				t.Fatalf("request %d: unexpected error %v", i, err)
			}
			continue
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusServiceUnavailable:
			sig.WriteByte('e')
		case rerr != nil || len(body) < 32:
			sig.WriteByte('t') // truncated: full payload is 32 bytes
		default:
			sig.WriteByte('o')
		}
	}
	return sig.String()
}

func payloadServer() *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, strings.Repeat("x", 32))
	}))
}

func TestSeededFaultSequenceIsReproducible(t *testing.T) {
	srv := payloadServer()
	defer srv.Close()
	cfg := Config{Seed: 99, RefuseProb: 0.2, ErrorProb: 0.2, TruncateProb: 0.2}

	a := drive(t, New(nil, cfg), srv, 50)
	b := drive(t, New(nil, cfg), srv, 50)
	if a != b {
		t.Fatalf("same seed produced different fault sequences:\n%s\n%s", a, b)
	}
	if !strings.ContainsAny(a, "ret") || !strings.Contains(a, "o") {
		t.Fatalf("sequence %s should mix faults and successes", a)
	}

	cfg.Seed = 100
	c := drive(t, New(nil, cfg), srv, 50)
	if a == c {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestEachFaultKindObservable(t *testing.T) {
	srv := payloadServer()
	defer srv.Close()
	tr := New(nil, Config{Seed: 7, RefuseProb: 0.15, DelayProb: 0.15, MaxDelay: time.Millisecond, ErrorProb: 0.15, TruncateProb: 0.15})
	sig := drive(t, tr, srv, 200)

	counts := tr.Counts()
	if counts.Requests != 200 {
		t.Errorf("Requests = %d, want 200", counts.Requests)
	}
	for _, c := range []struct {
		name string
		got  int64
	}{
		{"Refused", counts.Refused},
		{"Delayed", counts.Delayed},
		{"Errored", counts.Errored},
		{"Truncated", counts.Truncated},
	} {
		if c.got == 0 {
			t.Errorf("%s = 0 after 200 requests at 15%% each", c.name)
		}
	}
	if counts.Total() != counts.Refused+counts.Errored+counts.Truncated {
		t.Errorf("Total() = %d must exclude delays", counts.Total())
	}
	// The observed wire behavior must match the counters.
	if int64(strings.Count(sig, "r")) != counts.Refused {
		t.Errorf("observed %d refusals, counted %d", strings.Count(sig, "r"), counts.Refused)
	}
	if int64(strings.Count(sig, "e")) != counts.Errored {
		t.Errorf("observed %d 503s, counted %d", strings.Count(sig, "e"), counts.Errored)
	}
	if int64(strings.Count(sig, "t")) != counts.Truncated {
		t.Errorf("observed %d truncations, counted %d", strings.Count(sig, "t"), counts.Truncated)
	}
}

func TestTruncateCutsBodyInHalf(t *testing.T) {
	srv := payloadServer()
	defer srv.Close()
	tr := New(nil, Config{Seed: 1, TruncateProb: 1})
	client := &http.Client{Transport: tr}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(body) != 16 {
		t.Fatalf("truncated body is %d bytes, want 16 (half of 32)", len(body))
	}
}

func TestKillMakesHostPermanentlyDead(t *testing.T) {
	srv := payloadServer()
	defer srv.Close()
	tr := New(nil, Config{Seed: 1})
	client := &http.Client{Transport: tr}

	if _, err := client.Get(srv.URL); err != nil {
		t.Fatalf("pre-kill request: %v", err)
	}
	tr.Kill(strings.TrimPrefix(srv.URL, "http://"))
	for i := 0; i < 3; i++ {
		if _, err := client.Get(srv.URL); err == nil || !strings.Contains(err.Error(), "host is dead") {
			t.Fatalf("post-kill request %d: err = %v, want host-is-dead", i, err)
		}
	}
	if c := tr.Counts(); c.DeadHost != 3 {
		t.Errorf("DeadHost = %d, want 3", c.DeadHost)
	}
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	srv := payloadServer()
	defer srv.Close()
	sig := drive(t, New(nil, Config{}), srv, 20)
	if sig != strings.Repeat("o", 20) {
		t.Fatalf("zero config produced faults: %s", sig)
	}
}
