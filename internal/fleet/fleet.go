// Package fleet implements the coordinator side of revand's fault-tolerant
// fleet mode: dispatching partition analysis jobs to peer revand workers
// over the /v1/jobs API and degrading gracefully when peers are slow,
// flaky, or dead.
//
// The dispatch state machine per task is
//
//	probe -> dispatch -> retry (backoff+jitter) -> hedge -> local fallback
//
// A task is first offered to a healthy peer (round-robin over the
// registry, gated by per-peer circuit breakers). A failed attempt —
// connection error, 5xx, truncated or malformed response, remote job
// ending degraded or failed, or the per-attempt timeout — feeds the
// peer's breaker and the task retries on the next eligible peer after an
// exponential backoff with deterministic seeded jitter. An attempt that
// is merely slow is hedged: after Options.HedgeAfter the task is
// re-dispatched to a different peer and the first successful result wins.
// When every remote attempt is exhausted (or no peer is eligible at all)
// the task runs on the coordinator itself via its Local closure, so a
// fully dead fleet degrades to single-process behavior instead of failing
// the job.
//
// None of this machinery can change the analysis result: peers are
// deterministic (reports are worker-count invariant), so which executor
// computes a partition — and after how many retries — affects only
// latency and the Stats counters, never the bytes a task resolves to.
// That is the invariant the chaos tests (internal/fleet/chaos) pin down.
package fleet

import (
	"context"
	"sync"
	"time"
)

// Options tunes the dispatcher. The zero value of any field selects the
// default noted on it.
type Options struct {
	// MaxAttempts bounds remote dispatch attempts per task before the
	// task falls back to local execution (default 3). A hedged pair
	// counts as one attempt.
	MaxAttempts int
	// BaseBackoff is the delay before the second attempt; it doubles per
	// attempt up to MaxBackoff, with up to 50% deterministic jitter
	// subtracted (defaults 50ms and 2s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// AttemptTimeout bounds one remote attempt end to end: job
	// submission, polling, and report download (default 60s).
	AttemptTimeout time.Duration
	// HedgeAfter re-dispatches a still-running attempt to a second peer
	// after this long; the first success wins (default 10s; negative
	// disables hedging).
	HedgeAfter time.Duration
	// PollInterval is the GET /v1/jobs/{id} polling period (default 50ms).
	PollInterval time.Duration
	// Parallel bounds concurrently dispatched tasks (default 4).
	Parallel int
	// Seed seeds the jitter source. The default (0) selects a fixed seed
	// so retry schedules are reproducible; the jitter exists to spread
	// retries across peers, not to be unpredictable.
	Seed int64
	// FailureThreshold consecutive failures open a peer's circuit
	// breaker (default 3).
	FailureThreshold int
	// BreakerCooldown is how long an open breaker rejects a peer before
	// allowing one half-open trial attempt (default 2s).
	BreakerCooldown time.Duration
	// ProbeInterval is the background health-probe period started by
	// Registry.StartProbing (default 1s).
	ProbeInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 50 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.AttemptTimeout <= 0 {
		o.AttemptTimeout = 60 * time.Second
	}
	if o.HedgeAfter == 0 {
		o.HedgeAfter = 10 * time.Second
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 50 * time.Millisecond
	}
	if o.Parallel <= 0 {
		o.Parallel = 4
	}
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 2 * time.Second
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = time.Second
	}
	return o
}

// Task is one unit of dispatch: a POST /v1/jobs body plus the local
// fallback that computes the same bytes on the coordinator.
type Task struct {
	// Key names the task in results and logs (the partition name).
	Key string
	// Body is the JSON request body for POST /v1/jobs on a peer.
	Body []byte
	// Local computes the task's report locally. It is called when remote
	// attempts are exhausted or no peer is eligible; it must return the
	// same bytes (up to wall-clock fields) a healthy peer would.
	Local func(ctx context.Context) ([]byte, error)
}

// Result is one task's outcome.
type Result struct {
	// Key echoes the task key.
	Key string
	// Report is the JSON report bytes (nil when Err is set).
	Report []byte
	// Source is the URL of the peer that produced the report, or "local".
	Source string
	// Attempts counts remote dispatch attempts made (0 when the task went
	// straight to local fallback).
	Attempts int
	// Hedged reports whether a hedge attempt was launched.
	Hedged bool
	// Duration is the end-to-end time from dispatch to result.
	Duration time.Duration
	// Err is non-nil only when the local fallback itself failed (remote
	// failures alone never fail a task).
	Err error
}

// Stats is a point-in-time snapshot of dispatcher counters.
type Stats struct {
	// Remote counts tasks resolved by a peer; Local counts tasks resolved
	// by the coordinator's fallback.
	Remote int64
	Local  int64
	// Retries counts remote attempts beyond each task's first.
	Retries int64
	// Hedges counts hedge attempts launched; HedgeWins counts hedges
	// whose result was used.
	Hedges    int64
	HedgeWins int64
	// Failures counts failed remote attempts (including lost hedges'
	// failures).
	Failures int64
}

// counters aggregates Stats under a lock.
type counters struct {
	mu sync.Mutex
	s  Stats
}

func (c *counters) add(f func(*Stats)) {
	c.mu.Lock()
	f(&c.s)
	c.mu.Unlock()
}

func (c *counters) snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s
}
