package core

// Partition-report merging: the entry point a fleet coordinator (or any
// partitioned analysis) uses to combine per-partition resolved module
// sets into one Report for the parent netlist. The merge mirrors the
// scheduler's canonical-order guarantee at the next level up: partials
// are concatenated in the caller's (deterministic) partition order and
// pushed through the same overlap resolution the single-process pipeline
// uses, so the merged report depends only on the partition contents —
// never on which worker computed each partial, in what order they
// arrived, or how many retries, hedges, or local fallbacks it took to
// obtain them.

import (
	"context"
	"time"

	"netlistre/internal/module"
	"netlistre/internal/netlist"
	"netlistre/internal/overlap"
)

// Partial is one partition's contribution to a merged report. Modules
// must already be remapped into the parent netlist's ID space.
type Partial struct {
	// Name identifies the partition (the anchoring reset input's name).
	Name string
	// Modules is the partition's resolved module set, in the partition
	// report's canonical order.
	Modules []*module.Module
	// Degraded marks a partial obtained from an incomplete partition
	// analysis; it propagates to the merged report's Degraded flag.
	Degraded bool
	// Duration is the wall clock spent obtaining the partial (dispatch
	// plus analysis); recorded in the merged report's trace.
	Duration time.Duration
}

// MergePartitioned builds the parent netlist's Report from per-partition
// partials: the module lists are concatenated in partial order (the
// canonical pre-resolution set), overlap resolution selects the final
// non-overlapping subset — resolving both intra-partition leftovers and
// modules claimed by multiple partitions through shared (multi-owned)
// gates — and coverage is accounted against the whole parent. Only
// opt.Overlap is consulted. The merged trace carries one entry per
// partition plus one for the merge itself, so fleet runs remain
// observable stage by stage.
func MergePartitioned(ctx context.Context, nl *netlist.Netlist, opt Options, parts []Partial) *Report {
	start := time.Now()
	rep := &Report{Netlist: nl}
	stats := nl.Stats()
	rep.TotalElements = stats.Gates + stats.Latches

	var all []*module.Module
	var offset time.Duration
	for _, p := range parts {
		all = append(all, p.Modules...)
		t := StageTiming{
			Name:     "part:" + p.Name,
			Start:    offset,
			Duration: p.Duration,
			Modules:  len(p.Modules),
		}
		if p.Degraded {
			t.Status = StageFailed
			t.Err = "partition analysis degraded"
			rep.Degraded = true
		}
		rep.Trace = append(rep.Trace, t)
		offset += p.Duration
	}

	rep.All = all
	rep.CoverageBefore = module.CoverageCount(all)
	rep.CountsBefore = module.CountByType(all)
	rep.CountsAfter = map[module.Type]int{}

	mergeStart := time.Now()
	o := opt.Overlap
	o.Interrupt = interruptOf(ctx)
	res, err := overlap.Resolve(all, o)
	if err == nil {
		rep.Resolved = res.Selected
		rep.CoverageAfter = res.Coverage
		rep.OverlapOptimal = res.Optimal
		rep.CountsAfter = module.CountByType(res.Selected)
	} else {
		rep.OverlapErr = err
	}
	rep.Trace = append(rep.Trace, StageTiming{
		Name:     "merge",
		Start:    offset,
		Duration: time.Since(mergeStart),
		Modules:  len(rep.Resolved),
	})

	if ctx != nil && ctx.Err() != nil {
		rep.Degraded = true
	}
	rep.Runtime = time.Since(start)
	return rep
}
