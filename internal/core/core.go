// Package core orchestrates the full reverse-engineering portfolio of the
// paper (Figure 1): bitslice identification and aggregation, word
// identification and propagation, QBF module matching, common-support
// analysis, the sequential analyses, module fusion, and ILP overlap
// resolution — producing a coverage report in the shape of Table 3.
package core

import (
	"time"

	"netlistre/internal/aggregate"
	"netlistre/internal/bitslice"
	"netlistre/internal/graph"
	"netlistre/internal/modmatch"
	"netlistre/internal/module"
	"netlistre/internal/netlist"
	"netlistre/internal/overlap"
	"netlistre/internal/seq"
	"netlistre/internal/support"
	"netlistre/internal/truth"
	"netlistre/internal/words"
)

// Options configures the portfolio. The zero value runs every algorithm
// with the paper's parameters.
type Options struct {
	Bitslice  bitslice.Options
	Aggregate aggregate.Options
	Words     words.Options
	// WordRounds bounds iterative word propagation (0 = default 3).
	WordRounds int
	ModMatch   modmatch.Options
	Support    support.Options
	Seq        seq.Options
	Overlap    overlap.Options

	// SkipModMatch disables QBF module matching (the most expensive
	// algorithm on wide datapaths).
	SkipModMatch bool
	// SkipWordProp disables symbolic word propagation.
	SkipWordProp bool
	// KeepCandidates includes unknown-bitslice candidate modules in the
	// report (they are never part of overlap resolution or coverage).
	KeepCandidates bool

	// ExtraLibrary appends design-specific bitslice functions to the
	// matching library (Section VI-B.1: a human analyst may extend the
	// tool with bitslices specific to the chip being analyzed).
	ExtraLibrary []truth.Entry
	// ExtraPasses run after the built-in portfolio; each returns
	// additional inferred modules that participate in overlap resolution
	// like any other (the paper's design-specific algorithms, e.g. the
	// BigSoC framebuffer-read detector).
	ExtraPasses []func(*netlist.Netlist) []*module.Module
}

// Report is the outcome of analyzing one netlist.
type Report struct {
	Netlist *netlist.Netlist

	// All lists every inferred module before overlap resolution
	// (excluding analyst candidates).
	All []*module.Module
	// Candidates lists unknown-bitslice candidate modules (Section
	// II-B.1) when requested.
	Candidates []*module.Module
	// Resolved is the non-overlapping selection.
	Resolved []*module.Module

	// Words holds all identified and propagated words.
	Words []words.Word

	// TotalElements counts coverable elements (gates + latches).
	TotalElements int
	// CoverageBefore/After count elements covered before/after overlap
	// resolution.
	CoverageBefore int
	CoverageAfter  int

	// CountsBefore/After tally modules per type.
	CountsBefore map[module.Type]int
	CountsAfter  map[module.Type]int

	// Runtime is the wall-clock analysis time.
	Runtime time.Duration
	// OverlapOptimal is false when the ILP hit its node limit.
	OverlapOptimal bool
}

// CoverageFractionBefore returns pre-resolution coverage in [0,1].
func (r *Report) CoverageFractionBefore() float64 {
	if r.TotalElements == 0 {
		return 0
	}
	return float64(r.CoverageBefore) / float64(r.TotalElements)
}

// CoverageFraction returns post-resolution coverage in [0,1].
func (r *Report) CoverageFraction() float64 {
	if r.TotalElements == 0 {
		return 0
	}
	return float64(r.CoverageAfter) / float64(r.TotalElements)
}

// Analyze runs the full portfolio on nl.
func Analyze(nl *netlist.Netlist, opt Options) *Report {
	start := time.Now()
	rep := &Report{Netlist: nl}
	stats := nl.Stats()
	rep.TotalElements = stats.Gates + stats.Latches

	// Stage 1: cut enumeration + Boolean matching (Algorithm 1).
	opt.Bitslice.KeepUnknown = opt.KeepCandidates
	if len(opt.ExtraLibrary) > 0 {
		lib := opt.Bitslice.Library
		if lib == nil {
			lib = truth.Library()
		}
		opt.Bitslice.Library = append(append([]truth.Entry(nil), lib...), opt.ExtraLibrary...)
	}
	slices := bitslice.Find(nl, opt.Bitslice)

	// Stage 2: aggregation (Algorithm 2).
	common := aggregate.CommonSignal(nl, slices, opt.Aggregate)
	propagated := aggregate.PropagatedSignal(nl, slices, opt.Aggregate)

	var mods []*module.Module
	var muxMods []*module.Module
	for _, m := range common {
		if m.Type == module.Candidate {
			rep.Candidates = append(rep.Candidates, m)
			continue
		}
		mods = append(mods, m)
		if m.Type == module.Mux {
			muxMods = append(muxMods, m)
		}
	}
	mods = append(mods, propagated...)

	// Stage 3: common-support analysis (Algorithm 5).
	supportMods := support.Analyze(nl, opt.Support)
	mods = append(mods, supportMods...)

	// Stage 4: module fusion post-processing (Section II-F). Fusion
	// candidates are the mux and decoder modules.
	var fusable []*module.Module
	fusable = append(fusable, muxMods...)
	for _, m := range supportMods {
		if m.Type == module.Decoder {
			fusable = append(fusable, m)
		}
	}
	mods = append(mods, aggregate.Fuse(fusable)...)

	// Stage 5: word identification and propagation (Algorithm 3).
	seeds := words.FromModules(mods)
	rounds := opt.WordRounds
	if rounds <= 0 {
		rounds = 3
	}
	if opt.SkipWordProp {
		rep.Words = seeds
	} else {
		all, _ := words.PropagateAll(nl, seeds, rounds, opt.Words)
		rep.Words = all
	}

	// Stage 6: QBF module matching between words (Algorithm 4).
	if !opt.SkipModMatch {
		mods = append(mods, modmatch.Match(nl, rep.Words, opt.ModMatch)...)
	}

	// Stage 7: sequential analyses (Algorithms 6-9).
	lcg := graph.BuildLCG(nl)
	mods = append(mods, seq.FindCounters(nl, lcg, opt.Seq)...)
	mods = append(mods, seq.FindShiftRegisters(nl, lcg, opt.Seq)...)
	mods = append(mods, seq.FindRAMs(nl, slices, opt.Seq)...)
	mods = append(mods, seq.FindMultibitRegisters(nl, muxMods, opt.Seq)...)

	// Footnote 15: recover multibit-register bit order by matching the
	// registers against ordered words (word propagation reaches the
	// registers' D-input gates; the driven latches inherit the order).
	var regMods []*module.Module
	for _, m := range mods {
		if m.Type == module.MultibitRegister {
			regMods = append(regMods, m)
		}
	}
	if len(regMods) > 0 {
		var ordered [][]netlist.ID
		for _, w := range rep.Words {
			ordered = append(ordered, w.Bits)
		}
		seq.OrderRegisterBits(nl, regMods, ordered)
	}

	// Stage 7b: design-specific passes supplied by the analyst.
	for _, pass := range opt.ExtraPasses {
		mods = append(mods, pass(nl)...)
	}

	rep.All = mods
	rep.CoverageBefore = module.CoverageCount(mods)
	rep.CountsBefore = module.CountByType(mods)

	// Stage 8: overlap resolution (Algorithm 10).
	res, err := overlap.Resolve(mods, opt.Overlap)
	if err == nil {
		rep.Resolved = res.Selected
		rep.CoverageAfter = res.Coverage
		rep.OverlapOptimal = res.Optimal
		rep.CountsAfter = module.CountByType(res.Selected)
	} else {
		// Infeasible only when a MinModules target exceeds what is
		// coverable; report the unresolved set.
		rep.CountsAfter = map[module.Type]int{}
	}

	rep.Runtime = time.Since(start)
	return rep
}
