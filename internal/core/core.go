// Package core orchestrates the full reverse-engineering portfolio of the
// paper (Figure 1): bitslice identification and aggregation, word
// identification and propagation, QBF module matching, common-support
// analysis, the sequential analyses, module fusion, and ILP overlap
// resolution — producing a coverage report in the shape of Table 3.
//
// The portfolio is executed as an explicit stage DAG by a bounded
// worker-pool scheduler (sched.go): the independent analyses run
// concurrently, downstream stages are gated on their declared inputs, and
// results are merged in a canonical order so the report is bit-identical
// for any worker count.
//
// Stages exchange data exclusively through typed artifacts
// (internal/artifact): each stage consumes the artifacts of its declared
// dependencies and produces exactly one output artifact, with no shared
// locals. When Options.StageStore is set, stage results are memoized
// content-addressed — the digest covers the netlist fingerprint, the stage
// name, the stage-relevant option fields, and the upstream artifact
// digests — so re-analyzing an unchanged netlist replays every stage from
// the store (provenance StageCached in the trace) and a degraded run's
// completed stages survive for the next attempt. Without a store, nothing
// is digested and the unbudgeted path has zero caching overhead.
package core

import (
	"context"
	"runtime"
	"time"

	"netlistre/internal/aggregate"
	"netlistre/internal/artifact"
	"netlistre/internal/bitslice"
	"netlistre/internal/graph"
	"netlistre/internal/modmatch"
	"netlistre/internal/module"
	"netlistre/internal/netlist"
	"netlistre/internal/overlap"
	"netlistre/internal/seq"
	"netlistre/internal/support"
	"netlistre/internal/truth"
	"netlistre/internal/words"
)

// Options configures the portfolio. The zero value runs every algorithm
// with the paper's parameters.
type Options struct {
	Bitslice  bitslice.Options
	Aggregate aggregate.Options
	Words     words.Options
	// WordRounds bounds iterative word propagation (0 = default 3).
	WordRounds int
	ModMatch   modmatch.Options
	Support    support.Options
	Seq        seq.Options
	Overlap    overlap.Options

	// Workers bounds the number of pipeline stages in flight and the
	// inner worker pools of the support and modmatch stages (0 =
	// GOMAXPROCS). The report is identical for any worker count;
	// Workers=1 runs the portfolio serially.
	Workers int
	// Timeout bounds the whole analysis (0 = no limit). When it expires,
	// running stages are interrupted cooperatively, remaining stages are
	// skipped, and the report is returned with Degraded set and the
	// affected stages marked TimedOut in the trace.
	Timeout time.Duration
	// StageTimeout bounds each pipeline stage individually (0 = no
	// limit); a stage that exceeds it is marked TimedOut, its partial
	// outputs are kept, and downstream stages still run.
	StageTimeout time.Duration
	// Progress, if non-nil, receives a StageEvent when each pipeline
	// stage starts and finishes. The callback is invoked serially but
	// from scheduler goroutines, not the Analyze caller's goroutine.
	Progress func(StageEvent)

	// StageStore, if non-nil, memoizes per-stage results across analyses:
	// a stage whose input closure (netlist fingerprint, options,
	// upstream artifacts) matches a stored artifact is replayed instead
	// of executed, with StageCached provenance in the trace. Stages
	// interrupted by a timeout or cancellation never publish, so a
	// degraded run's completed stages are reusable and a later identical
	// run re-executes only the interrupted ones. Budget fields (Workers,
	// Timeout, StageTimeout) and callbacks are excluded from the digests:
	// they cannot change a completed stage's result.
	StageStore *artifact.Store
	// Fingerprint optionally supplies a precomputed nl.Fingerprint() so
	// AnalyzeContext does not recompute it when StageStore is set (the
	// analysis service already fingerprints every request for its report
	// cache). Ignored when StageStore is nil; computed on demand when
	// empty.
	Fingerprint string

	// SkipModMatch disables QBF module matching (the most expensive
	// algorithm on wide datapaths).
	SkipModMatch bool
	// SkipWordProp disables symbolic word propagation.
	SkipWordProp bool
	// KeepCandidates includes unknown-bitslice candidate modules in the
	// report (they are never part of overlap resolution or coverage).
	KeepCandidates bool

	// ExtraLibrary appends design-specific bitslice functions to the
	// matching library (Section VI-B.1: a human analyst may extend the
	// tool with bitslices specific to the chip being analyzed).
	ExtraLibrary []truth.Entry
	// ExtraPasses run after the built-in portfolio; each returns
	// additional inferred modules that participate in overlap resolution
	// like any other (the paper's design-specific algorithms, e.g. the
	// BigSoC framebuffer-read detector). Passes run sequentially, after
	// every built-in stage has finished. Because arbitrary functions
	// cannot be digested, the extra stage (and everything downstream of
	// it) is never memoized when passes are present.
	ExtraPasses []func(*netlist.Netlist) []*module.Module
}

// Report is the outcome of analyzing one netlist.
type Report struct {
	Netlist *netlist.Netlist

	// All lists every inferred module before overlap resolution
	// (excluding analyst candidates).
	All []*module.Module
	// Candidates lists unknown-bitslice candidate modules (Section
	// II-B.1) when requested.
	Candidates []*module.Module
	// Resolved is the non-overlapping selection.
	Resolved []*module.Module

	// Words holds all identified and propagated words.
	Words []words.Word

	// TotalElements counts coverable elements (gates + latches).
	TotalElements int
	// CoverageBefore/After count elements covered before/after overlap
	// resolution.
	CoverageBefore int
	CoverageAfter  int

	// CountsBefore/After tally modules per type.
	CountsBefore map[module.Type]int
	CountsAfter  map[module.Type]int

	// Runtime is the wall-clock analysis time.
	Runtime time.Duration
	// Trace records per-stage wall-clock timings in pipeline order.
	Trace []StageTiming
	// OverlapOptimal is false when the ILP hit its node limit.
	OverlapOptimal bool
	// OverlapErr is non-nil when overlap resolution failed (an
	// infeasible MinModules coverage target); Resolved is then empty
	// and the pre-resolution module set in All stands.
	OverlapErr error

	// Degraded is true when the report is incomplete: the input failed
	// validation, the analysis timed out or was canceled, or a stage
	// panicked. The per-stage Status fields in Trace say which stages
	// were affected; everything else in the report is still valid for
	// the work that did complete.
	Degraded bool
	// ValidationErr is non-nil when the input netlist failed
	// Netlist.Validate; no analysis runs in that case.
	ValidationErr error
}

// CoverageFractionBefore returns pre-resolution coverage in [0,1].
func (r *Report) CoverageFractionBefore() float64 {
	if r.TotalElements == 0 {
		return 0
	}
	return float64(r.CoverageBefore) / float64(r.TotalElements)
}

// CoverageFraction returns post-resolution coverage in [0,1].
func (r *Report) CoverageFraction() float64 {
	if r.TotalElements == 0 {
		return 0
	}
	return float64(r.CoverageAfter) / float64(r.TotalElements)
}

// Analyze runs the full portfolio on nl.
func Analyze(nl *netlist.Netlist, opt Options) *Report {
	return AnalyzeContext(context.Background(), nl, opt)
}

// interruptOf adapts a context to the Interrupt hooks of the solver
// packages. It returns nil for a context that can never be canceled
// (e.g. context.Background with no Timeout configured) so the hot loops
// skip polling entirely and the unbudgeted path pays no overhead.
func interruptOf(ctx context.Context) func() bool {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return func() bool { return ctx.Err() != nil }
}

// aggregateOut is the aggregate stage's artifact value: every module list
// the rest of the pipeline reads from aggregation.
type aggregateOut struct {
	// Common holds the common-signal modules (mux groups, gating, ...).
	Common []*module.Module
	// Propagated holds the propagated-signal modules (adders, parity
	// trees, ...).
	Propagated []*module.Module
	// Mux is the mux subset of Common (fusion and register detection
	// read it).
	Mux []*module.Module
	// Candidates holds unknown-bitslice candidate modules for the
	// analyst; excluded from merging and coverage.
	Candidates []*module.Module
}

// overlapOut is the overlap stage's artifact value: the merged
// pre-resolution module set plus the resolved selection and its coverage
// accounting, i.e. everything the stage contributes to the Report.
type overlapOut struct {
	All            []*module.Module
	Resolved       []*module.Module
	CoverageBefore int
	CoverageAfter  int
	CountsBefore   map[module.Type]int
	CountsAfter    map[module.Type]int
	Optimal        bool
	Err            error
}

// modsOf returns the module list produced by the named stage, or nil when
// the stage produced nothing (skipped, or a different value type).
func modsOf(in map[string]*artifact.Artifact, name string) []*module.Module {
	if a := in[name]; a != nil {
		ms, _ := a.Value.([]*module.Module)
		return ms
	}
	return nil
}

// aggOf returns the aggregate stage's output (zero value when absent).
func aggOf(in map[string]*artifact.Artifact) aggregateOut {
	if a := in["aggregate"]; a != nil {
		out, _ := a.Value.(aggregateOut)
		return out
	}
	return aggregateOut{}
}

// wordsOf returns the word stage's output (nil when absent).
func wordsOf(in map[string]*artifact.Artifact) []words.Word {
	if a := in["words"]; a != nil {
		ws, _ := a.Value.([]words.Word)
		return ws
	}
	return nil
}

// baseMods assembles the combinational module set in the canonical
// (serial) order; the word stage seeds from it.
func baseMods(in map[string]*artifact.Artifact) []*module.Module {
	agg := aggOf(in)
	var mods []*module.Module
	mods = append(mods, agg.Common...)
	mods = append(mods, agg.Propagated...)
	mods = append(mods, modsOf(in, "support")...)
	mods = append(mods, modsOf(in, "fuse")...)
	return mods
}

// mergeMods assembles the full pre-resolution module set in the canonical
// order of the serial pipeline. It reads only stage artifacts, so after a
// degraded run it merges whatever the completed stages produced. The
// register list comes from the order stage's artifact (ordered copies)
// when it exists, falling back to the raw detection output.
func mergeMods(in map[string]*artifact.Artifact) []*module.Module {
	mods := baseMods(in)
	mods = append(mods, modsOf(in, "modmatch")...)
	mods = append(mods, modsOf(in, "counters")...)
	mods = append(mods, modsOf(in, "shift")...)
	mods = append(mods, modsOf(in, "rams")...)
	if a := in["order"]; a != nil {
		mods = append(mods, modsOf(in, "order")...)
	} else {
		mods = append(mods, modsOf(in, "registers")...)
	}
	if a := in["extra"]; a != nil {
		if lists, ok := a.Value.([][]*module.Module); ok {
			for _, ms := range lists {
				mods = append(mods, ms...)
			}
		}
	}
	return mods
}

// cloneModule returns a copy of m whose Ports and Attr maps are fresh, so
// in-place edits (SetPort/SetAttr) do not reach the original. Elements and
// Slices are shared: nothing in the pipeline mutates them after
// construction.
func cloneModule(m *module.Module) *module.Module {
	c := *m
	if m.Ports != nil {
		c.Ports = make(map[string][]netlist.ID, len(m.Ports))
		for k, v := range m.Ports {
			c.Ports[k] = v
		}
	}
	if m.Attr != nil {
		c.Attr = make(map[string]string, len(m.Attr))
		for k, v := range m.Attr {
			c.Attr[k] = v
		}
	}
	return &c
}

// digestLibrary appends the effective matching library to a stage digest.
func digestLibrary(h *artifact.Hasher, lib []truth.Entry) {
	h.Bool(lib != nil)
	h.Int(int64(len(lib)))
	for _, e := range lib {
		h.Int(int64(e.Class))
		h.Uint64(e.Table.Bits)
		h.Int(int64(e.Table.N))
		h.Int(int64(len(e.ArgNames)))
		for _, a := range e.ArgNames {
			h.Str(a)
		}
	}
}

// digestSeq appends the sequential-analysis options to a stage digest.
func digestSeq(h *artifact.Hasher, o seq.Options) {
	h.Int(int64(o.MinCounter))
	h.Int(int64(o.MinShift))
	h.Int(int64(o.MaxSelectVars))
}

// AnalyzeContext runs the full portfolio on nl under ctx. Cancellation is
// cooperative: the solver loops (SAT search, QBF CEGAR, ILP
// branch-and-bound, cut enumeration, word propagation, BDD verification)
// poll the context and stop early, keeping the results found so far. A
// canceled or timed-out run returns a well-formed Report with Degraded
// set and the affected stages marked in Trace rather than an error; a run
// with an already-canceled context deterministically returns an empty
// degraded report.
func AnalyzeContext(ctx context.Context, nl *netlist.Netlist, opt Options) *Report {
	start := time.Now()
	rep := &Report{Netlist: nl}
	stats := nl.Stats()
	rep.TotalElements = stats.Gates + stats.Latches

	// Malformed inputs produce a report carrying the validation error
	// instead of a panic deep inside an analysis.
	if err := nl.Validate(); err != nil {
		rep.ValidationErr = err
		rep.Degraded = true
		rep.CountsBefore = map[module.Type]int{}
		rep.CountsAfter = map[module.Type]int{}
		rep.Runtime = time.Since(start)
		return rep
	}

	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
		defer cancel() // releases the timer; no goroutine outlives Analyze
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The support and modmatch stages have inner worker pools; cap them
	// at the shared budget unless explicitly configured.
	if opt.Support.Workers <= 0 {
		opt.Support.Workers = workers
	}
	if opt.ModMatch.Workers <= 0 {
		opt.ModMatch.Workers = workers
	}
	// Bitslice matching parallelism is a budget knob, not a semantic one:
	// Find's Result is deterministic regardless of Workers (and SlowMatch),
	// so neither appears in the stage digest below.
	if opt.Bitslice.Workers <= 0 {
		opt.Bitslice.Workers = workers
	}

	opt.Bitslice.KeepUnknown = opt.KeepCandidates
	if len(opt.ExtraLibrary) > 0 {
		lib := opt.Bitslice.Library
		if lib == nil {
			lib = truth.Library()
		}
		opt.Bitslice.Library = append(append([]truth.Entry(nil), lib...), opt.ExtraLibrary...)
	}

	// Fingerprint the netlist only when memoization is on; the digest of
	// every stage key starts from it.
	fingerprint := ""
	if opt.StageStore != nil {
		fingerprint = opt.Fingerprint
		if fingerprint == "" {
			fingerprint = nl.Fingerprint()
		}
	}

	wordRounds := opt.WordRounds
	if wordRounds <= 0 {
		wordRounds = 3
	}

	stages := []stage{
		// Stage 1: cut enumeration + Boolean matching (Algorithm 1).
		{name: "bitslice",
			digest: func(h *artifact.Hasher) {
				h.Int(int64(opt.Bitslice.Cuts.K))
				h.Int(int64(opt.Bitslice.Cuts.MaxCuts))
				h.Bool(opt.Bitslice.KeepUnknown)
				digestLibrary(h, opt.Bitslice.Library)
			},
			run: func(ctx context.Context, in map[string]*artifact.Artifact) (any, int) {
				o := opt.Bitslice
				o.Cuts.Interrupt = interruptOf(ctx)
				return bitslice.Find(nl, o), 0
			}},
		// Stage 3: common-support analysis (Algorithm 5); independent of
		// the bitslice pipeline.
		{name: "support",
			digest: func(h *artifact.Hasher) {
				h.Int(int64(opt.Support.MaxSupport))
				h.Int(int64(opt.Support.MinOutputs))
				h.Int(int64(opt.Support.MaxConeGates))
			},
			run: func(ctx context.Context, in map[string]*artifact.Artifact) (any, int) {
				o := opt.Support
				o.Interrupt = interruptOf(ctx)
				mods := support.Analyze(nl, o)
				return mods, len(mods)
			}},
		// Latch-connection graph shared by the sequential detectors.
		{name: "lcg",
			run: func(ctx context.Context, in map[string]*artifact.Artifact) (any, int) {
				return graph.BuildLCG(nl), 0
			}},
		// Stage 7 (LCG half): counter and shift-register detection
		// (Algorithms 6-7); independent of the combinational stages.
		{name: "counters", deps: []string{"lcg"},
			digest: func(h *artifact.Hasher) { digestSeq(h, opt.Seq) },
			run: func(ctx context.Context, in map[string]*artifact.Artifact) (any, int) {
				a := in["lcg"]
				if a == nil {
					return []*module.Module(nil), 0 // upstream stage was skipped
				}
				mods := seq.FindCounters(nl, a.Value.(*graph.LCG), opt.Seq)
				return mods, len(mods)
			}},
		{name: "shift", deps: []string{"lcg"},
			digest: func(h *artifact.Hasher) { digestSeq(h, opt.Seq) },
			run: func(ctx context.Context, in map[string]*artifact.Artifact) (any, int) {
				a := in["lcg"]
				if a == nil {
					return []*module.Module(nil), 0
				}
				mods := seq.FindShiftRegisters(nl, a.Value.(*graph.LCG), opt.Seq)
				return mods, len(mods)
			}},
		// Stage 2: aggregation (Algorithm 2).
		{name: "aggregate", deps: []string{"bitslice"},
			digest: func(h *artifact.Hasher) {
				h.Int(int64(opt.Aggregate.MinSlices))
				h.Int(int64(opt.Aggregate.MinParity))
			},
			run: func(ctx context.Context, in map[string]*artifact.Artifact) (any, int) {
				a := in["bitslice"]
				if a == nil {
					return aggregateOut{}, 0
				}
				slices := a.Value.(*bitslice.Result)
				var out aggregateOut
				for _, m := range aggregate.CommonSignal(nl, slices, opt.Aggregate) {
					if m.Type == module.Candidate {
						out.Candidates = append(out.Candidates, m)
						continue
					}
					out.Common = append(out.Common, m)
					if m.Type == module.Mux {
						out.Mux = append(out.Mux, m)
					}
				}
				out.Propagated = aggregate.PropagatedSignal(nl, slices, opt.Aggregate)
				return out, len(out.Common) + len(out.Propagated)
			}},
		// Stage 4: module fusion post-processing (Section II-F). Fusion
		// candidates are the mux and decoder modules.
		{name: "fuse", deps: []string{"aggregate", "support"},
			run: func(ctx context.Context, in map[string]*artifact.Artifact) (any, int) {
				var fusable []*module.Module
				fusable = append(fusable, aggOf(in).Mux...)
				for _, m := range modsOf(in, "support") {
					if m.Type == module.Decoder {
						fusable = append(fusable, m)
					}
				}
				fused := aggregate.Fuse(fusable)
				return fused, len(fused)
			}},
		// Stage 5: word identification and propagation (Algorithm 3).
		{name: "words", deps: []string{"aggregate", "support", "fuse"},
			digest: func(h *artifact.Hasher) {
				h.Bool(opt.SkipWordProp)
				h.Int(int64(wordRounds))
				h.Int(int64(opt.Words.ControlDepth))
				h.Int(int64(opt.Words.MaxControls))
				h.Int(int64(opt.Words.MaxControlSet))
			},
			run: func(ctx context.Context, in map[string]*artifact.Artifact) (any, int) {
				seeds := words.FromModules(baseMods(in))
				if opt.SkipWordProp {
					return seeds, len(seeds)
				}
				o := opt.Words
				o.Interrupt = interruptOf(ctx)
				all, _ := words.PropagateAll(nl, seeds, wordRounds, o)
				return all, len(all)
			}},
		// Stage 6: QBF module matching between words (Algorithm 4).
		{name: "modmatch", deps: []string{"words"},
			digest: func(h *artifact.Hasher) {
				h.Bool(opt.SkipModMatch)
				h.Int(int64(opt.ModMatch.MaxSideInputs))
				h.Int(int64(opt.ModMatch.MinWidth))
				h.Int(int64(opt.ModMatch.MaxWidth))
				h.Int(int64(opt.ModMatch.MaxRotate))
			},
			run: func(ctx context.Context, in map[string]*artifact.Artifact) (any, int) {
				if opt.SkipModMatch {
					return []*module.Module(nil), 0
				}
				mods := modmatch.Match(ctx, nl, wordsOf(in), opt.ModMatch)
				return mods, len(mods)
			}},
		// Stage 7 (bitslice half): RAM and multibit-register detection
		// (Algorithms 8-9).
		{name: "rams", deps: []string{"bitslice"},
			digest: func(h *artifact.Hasher) { digestSeq(h, opt.Seq) },
			run: func(ctx context.Context, in map[string]*artifact.Artifact) (any, int) {
				a := in["bitslice"]
				if a == nil {
					return []*module.Module(nil), 0
				}
				mods := seq.FindRAMs(nl, a.Value.(*bitslice.Result), opt.Seq)
				return mods, len(mods)
			}},
		{name: "registers", deps: []string{"aggregate"},
			digest: func(h *artifact.Hasher) { digestSeq(h, opt.Seq) },
			run: func(ctx context.Context, in map[string]*artifact.Artifact) (any, int) {
				mods := seq.FindMultibitRegisters(nl, aggOf(in).Mux, opt.Seq)
				return mods, len(mods)
			}},
		// Footnote 15: recover multibit-register bit order by matching the
		// registers against ordered words (word propagation reaches the
		// registers' D-input gates; the driven latches inherit the order).
		// The detection output is immutable once published, so the stage
		// orders fresh copies; its artifact replaces the register list in
		// the merge.
		{name: "order", deps: []string{"words", "registers"},
			run: func(ctx context.Context, in map[string]*artifact.Artifact) (any, int) {
				regs := modsOf(in, "registers")
				if len(regs) == 0 {
					return []*module.Module(nil), 0
				}
				copies := make([]*module.Module, len(regs))
				for i, m := range regs {
					copies[i] = cloneModule(m)
				}
				var ordered [][]netlist.ID
				for _, w := range wordsOf(in) {
					ordered = append(ordered, w.Bits)
				}
				seq.OrderRegisterBits(nl, copies, ordered)
				return copies, 0
			}},
		// Stage 7b: design-specific passes supplied by the analyst. They
		// run sequentially after every built-in stage, matching the
		// serial pipeline's semantics (a pass may inspect the netlist
		// without racing the built-in analyses). A panicking pass fails
		// only this stage; the built-in stages' modules are unaffected.
		// Arbitrary functions have no digest, so the stage is uncacheable
		// whenever passes are present.
		{name: "extra", deps: []string{"modmatch", "counters", "shift", "rams", "order"},
			uncacheable: len(opt.ExtraPasses) > 0,
			run: func(ctx context.Context, in map[string]*artifact.Artifact) (any, int) {
				var extras [][]*module.Module
				n := 0
				for _, pass := range opt.ExtraPasses {
					if ctx.Err() != nil {
						break
					}
					ms := pass(nl)
					extras = append(extras, ms)
					n += len(ms)
				}
				return extras, n
			}},
		// Stage 8: overlap resolution (Algorithm 10). Depends on every
		// stage whose modules it merges; "extra" transitively gates on the
		// rest, so the merge sees all completed outputs. Running it inside
		// the DAG gives it the same timeout/panic handling as the
		// analyses.
		{name: "overlap",
			deps: []string{"aggregate", "support", "fuse", "modmatch",
				"counters", "shift", "rams", "registers", "order", "extra"},
			digest: func(h *artifact.Hasher) {
				h.Int(int64(opt.Overlap.Objective))
				h.Int(int64(opt.Overlap.CoverageTarget))
				h.Bool(opt.Overlap.Sliceable)
				h.Int(int64(opt.Overlap.MinSlices))
				h.Int(opt.Overlap.NodeLimit)
			},
			run: func(ctx context.Context, in map[string]*artifact.Artifact) (any, int) {
				mods := mergeMods(in)
				out := overlapOut{
					All:            mods,
					CoverageBefore: module.CoverageCount(mods),
					CountsBefore:   module.CountByType(mods),
				}
				o := opt.Overlap
				o.Interrupt = interruptOf(ctx)
				res, err := overlap.Resolve(mods, o)
				if err == nil {
					out.Resolved = res.Selected
					out.CoverageAfter = res.Coverage
					out.Optimal = res.Optimal
					out.CountsAfter = module.CountByType(res.Selected)
				} else {
					// Infeasible only when a MinModules target exceeds what
					// is coverable; report the unresolved set.
					out.Err = err
					out.CountsAfter = map[module.Type]int{}
				}
				return out, len(out.Resolved)
			}},
	}

	sched := newScheduler(ctx, workers, opt.StageTimeout, start, opt.Progress,
		opt.StageStore, fingerprint)
	timings, arts := sched.run(stages)
	rep.Trace = timings

	// Assemble the report from the stage artifacts. byName is the same
	// shape as a stage's input map, so the merge helpers work on it.
	byName := make(map[string]*artifact.Artifact, len(stages))
	for i, st := range stages {
		if arts[i] != nil {
			byName[st.name] = arts[i]
		}
	}
	rep.Candidates = aggOf(byName).Candidates
	rep.Words = wordsOf(byName)
	if a := byName["overlap"]; a != nil {
		out := a.Value.(overlapOut)
		rep.All = out.All
		rep.Resolved = out.Resolved
		rep.CoverageBefore = out.CoverageBefore
		rep.CoverageAfter = out.CoverageAfter
		rep.CountsBefore = out.CountsBefore
		rep.CountsAfter = out.CountsAfter
		rep.OverlapOptimal = out.Optimal
		rep.OverlapErr = out.Err
	} else {
		// The overlap stage was skipped (run canceled/timed out before it
		// started) or died before merging; still assemble the canonical
		// merge of whatever the completed stages produced so the report
		// lists them.
		mods := mergeMods(byName)
		rep.All = mods
		rep.CoverageBefore = module.CoverageCount(mods)
		rep.CountsBefore = module.CountByType(mods)
	}
	if rep.CountsBefore == nil {
		rep.CountsBefore = map[module.Type]int{}
	}
	if rep.CountsAfter == nil {
		rep.CountsAfter = map[module.Type]int{}
	}
	for _, t := range rep.Trace {
		if t.Status != StageOK {
			rep.Degraded = true
			break
		}
	}

	rep.Runtime = time.Since(start)
	return rep
}
