// Package core orchestrates the full reverse-engineering portfolio of the
// paper (Figure 1): bitslice identification and aggregation, word
// identification and propagation, QBF module matching, common-support
// analysis, the sequential analyses, module fusion, and ILP overlap
// resolution — producing a coverage report in the shape of Table 3.
//
// The portfolio is executed as an explicit stage DAG by a bounded
// worker-pool scheduler (sched.go): the independent analyses run
// concurrently, downstream stages are gated on their declared inputs, and
// results are merged in a canonical order so the report is bit-identical
// for any worker count.
package core

import (
	"context"
	"runtime"
	"time"

	"netlistre/internal/aggregate"
	"netlistre/internal/bitslice"
	"netlistre/internal/graph"
	"netlistre/internal/modmatch"
	"netlistre/internal/module"
	"netlistre/internal/netlist"
	"netlistre/internal/overlap"
	"netlistre/internal/seq"
	"netlistre/internal/support"
	"netlistre/internal/truth"
	"netlistre/internal/words"
)

// Options configures the portfolio. The zero value runs every algorithm
// with the paper's parameters.
type Options struct {
	Bitslice  bitslice.Options
	Aggregate aggregate.Options
	Words     words.Options
	// WordRounds bounds iterative word propagation (0 = default 3).
	WordRounds int
	ModMatch   modmatch.Options
	Support    support.Options
	Seq        seq.Options
	Overlap    overlap.Options

	// Workers bounds the number of pipeline stages in flight and the
	// inner worker pools of the support and modmatch stages (0 =
	// GOMAXPROCS). The report is identical for any worker count;
	// Workers=1 runs the portfolio serially.
	Workers int
	// Timeout bounds the whole analysis (0 = no limit). When it expires,
	// running stages are interrupted cooperatively, remaining stages are
	// skipped, and the report is returned with Degraded set and the
	// affected stages marked TimedOut in the trace.
	Timeout time.Duration
	// StageTimeout bounds each pipeline stage individually (0 = no
	// limit); a stage that exceeds it is marked TimedOut, its partial
	// outputs are kept, and downstream stages still run.
	StageTimeout time.Duration
	// Progress, if non-nil, receives a StageEvent when each pipeline
	// stage starts and finishes. The callback is invoked serially but
	// from scheduler goroutines, not the Analyze caller's goroutine.
	Progress func(StageEvent)

	// SkipModMatch disables QBF module matching (the most expensive
	// algorithm on wide datapaths).
	SkipModMatch bool
	// SkipWordProp disables symbolic word propagation.
	SkipWordProp bool
	// KeepCandidates includes unknown-bitslice candidate modules in the
	// report (they are never part of overlap resolution or coverage).
	KeepCandidates bool

	// ExtraLibrary appends design-specific bitslice functions to the
	// matching library (Section VI-B.1: a human analyst may extend the
	// tool with bitslices specific to the chip being analyzed).
	ExtraLibrary []truth.Entry
	// ExtraPasses run after the built-in portfolio; each returns
	// additional inferred modules that participate in overlap resolution
	// like any other (the paper's design-specific algorithms, e.g. the
	// BigSoC framebuffer-read detector). Passes run sequentially, after
	// every built-in stage has finished.
	ExtraPasses []func(*netlist.Netlist) []*module.Module
}

// Report is the outcome of analyzing one netlist.
type Report struct {
	Netlist *netlist.Netlist

	// All lists every inferred module before overlap resolution
	// (excluding analyst candidates).
	All []*module.Module
	// Candidates lists unknown-bitslice candidate modules (Section
	// II-B.1) when requested.
	Candidates []*module.Module
	// Resolved is the non-overlapping selection.
	Resolved []*module.Module

	// Words holds all identified and propagated words.
	Words []words.Word

	// TotalElements counts coverable elements (gates + latches).
	TotalElements int
	// CoverageBefore/After count elements covered before/after overlap
	// resolution.
	CoverageBefore int
	CoverageAfter  int

	// CountsBefore/After tally modules per type.
	CountsBefore map[module.Type]int
	CountsAfter  map[module.Type]int

	// Runtime is the wall-clock analysis time.
	Runtime time.Duration
	// Trace records per-stage wall-clock timings in pipeline order.
	Trace []StageTiming
	// OverlapOptimal is false when the ILP hit its node limit.
	OverlapOptimal bool
	// OverlapErr is non-nil when overlap resolution failed (an
	// infeasible MinModules coverage target); Resolved is then empty
	// and the pre-resolution module set in All stands.
	OverlapErr error

	// Degraded is true when the report is incomplete: the input failed
	// validation, the analysis timed out or was canceled, or a stage
	// panicked. The per-stage Status fields in Trace say which stages
	// were affected; everything else in the report is still valid for
	// the work that did complete.
	Degraded bool
	// ValidationErr is non-nil when the input netlist failed
	// Netlist.Validate; no analysis runs in that case.
	ValidationErr error
}

// CoverageFractionBefore returns pre-resolution coverage in [0,1].
func (r *Report) CoverageFractionBefore() float64 {
	if r.TotalElements == 0 {
		return 0
	}
	return float64(r.CoverageBefore) / float64(r.TotalElements)
}

// CoverageFraction returns post-resolution coverage in [0,1].
func (r *Report) CoverageFraction() float64 {
	if r.TotalElements == 0 {
		return 0
	}
	return float64(r.CoverageAfter) / float64(r.TotalElements)
}

// Analyze runs the full portfolio on nl.
func Analyze(nl *netlist.Netlist, opt Options) *Report {
	return AnalyzeContext(context.Background(), nl, opt)
}

// interruptOf adapts a context to the Interrupt hooks of the solver
// packages. It returns nil for a context that can never be canceled
// (e.g. context.Background with no Timeout configured) so the hot loops
// skip polling entirely and the unbudgeted path pays no overhead.
func interruptOf(ctx context.Context) func() bool {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return func() bool { return ctx.Err() != nil }
}

// AnalyzeContext runs the full portfolio on nl under ctx. Cancellation is
// cooperative: the solver loops (SAT search, QBF CEGAR, ILP
// branch-and-bound, cut enumeration, word propagation, BDD verification)
// poll the context and stop early, keeping the results found so far. A
// canceled or timed-out run returns a well-formed Report with Degraded
// set and the affected stages marked in Trace rather than an error; a run
// with an already-canceled context deterministically returns an empty
// degraded report.
func AnalyzeContext(ctx context.Context, nl *netlist.Netlist, opt Options) *Report {
	start := time.Now()
	rep := &Report{Netlist: nl}
	stats := nl.Stats()
	rep.TotalElements = stats.Gates + stats.Latches

	// Malformed inputs produce a report carrying the validation error
	// instead of a panic deep inside an analysis.
	if err := nl.Validate(); err != nil {
		rep.ValidationErr = err
		rep.Degraded = true
		rep.CountsBefore = map[module.Type]int{}
		rep.CountsAfter = map[module.Type]int{}
		rep.Runtime = time.Since(start)
		return rep
	}

	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
		defer cancel() // releases the timer; no goroutine outlives Analyze
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The support and modmatch stages have inner worker pools; cap them
	// at the shared budget unless explicitly configured.
	if opt.Support.Workers <= 0 {
		opt.Support.Workers = workers
	}
	if opt.ModMatch.Workers <= 0 {
		opt.ModMatch.Workers = workers
	}

	opt.Bitslice.KeepUnknown = opt.KeepCandidates
	if len(opt.ExtraLibrary) > 0 {
		lib := opt.Bitslice.Library
		if lib == nil {
			lib = truth.Library()
		}
		opt.Bitslice.Library = append(append([]truth.Entry(nil), lib...), opt.ExtraLibrary...)
	}

	// Intermediate state shared between stages. Each field is written by
	// exactly one stage and read only by stages gated on it.
	var (
		slices *bitslice.Result
		lcg    *graph.LCG

		common, propagated []*module.Module
		muxMods            []*module.Module
		supportMods        []*module.Module
		fused              []*module.Module
		wordOps            []*module.Module
		counters, shifts   []*module.Module
		rams, regs         []*module.Module
		extras             [][]*module.Module
	)

	// baseMods assembles the combinational module set in the canonical
	// (serial) order; the word stage seeds from it.
	baseMods := func() []*module.Module {
		var mods []*module.Module
		mods = append(mods, common...)
		mods = append(mods, propagated...)
		mods = append(mods, supportMods...)
		mods = append(mods, fused...)
		return mods
	}

	// mergeMods assembles the full pre-resolution module set in the
	// canonical order of the serial pipeline. It reads only stage outputs,
	// so after a degraded run it merges whatever the completed stages
	// produced.
	mergeMods := func() []*module.Module {
		mods := baseMods()
		mods = append(mods, wordOps...)
		mods = append(mods, counters...)
		mods = append(mods, shifts...)
		mods = append(mods, rams...)
		mods = append(mods, regs...)
		for _, ms := range extras {
			mods = append(mods, ms...)
		}
		return mods
	}

	stages := []stage{
		// Stage 1: cut enumeration + Boolean matching (Algorithm 1).
		{name: "bitslice", run: func(ctx context.Context) int {
			o := opt.Bitslice
			o.Cuts.Interrupt = interruptOf(ctx)
			slices = bitslice.Find(nl, o)
			return 0
		}},
		// Stage 3: common-support analysis (Algorithm 5); independent of
		// the bitslice pipeline.
		{name: "support", run: func(ctx context.Context) int {
			o := opt.Support
			o.Interrupt = interruptOf(ctx)
			supportMods = support.Analyze(nl, o)
			return len(supportMods)
		}},
		// Latch-connection graph shared by the sequential detectors.
		{name: "lcg", run: func(ctx context.Context) int {
			lcg = graph.BuildLCG(nl)
			return 0
		}},
		// Stage 7 (LCG half): counter and shift-register detection
		// (Algorithms 6-7); independent of the combinational stages.
		{name: "counters", deps: []string{"lcg"}, run: func(ctx context.Context) int {
			if lcg == nil {
				return 0 // upstream stage was skipped
			}
			counters = seq.FindCounters(nl, lcg, opt.Seq)
			return len(counters)
		}},
		{name: "shift", deps: []string{"lcg"}, run: func(ctx context.Context) int {
			if lcg == nil {
				return 0
			}
			shifts = seq.FindShiftRegisters(nl, lcg, opt.Seq)
			return len(shifts)
		}},
		// Stage 2: aggregation (Algorithm 2).
		{name: "aggregate", deps: []string{"bitslice"}, run: func(ctx context.Context) int {
			if slices == nil {
				return 0
			}
			for _, m := range aggregate.CommonSignal(nl, slices, opt.Aggregate) {
				if m.Type == module.Candidate {
					rep.Candidates = append(rep.Candidates, m)
					continue
				}
				common = append(common, m)
				if m.Type == module.Mux {
					muxMods = append(muxMods, m)
				}
			}
			propagated = aggregate.PropagatedSignal(nl, slices, opt.Aggregate)
			return len(common) + len(propagated)
		}},
		// Stage 4: module fusion post-processing (Section II-F). Fusion
		// candidates are the mux and decoder modules.
		{name: "fuse", deps: []string{"aggregate", "support"}, run: func(ctx context.Context) int {
			var fusable []*module.Module
			fusable = append(fusable, muxMods...)
			for _, m := range supportMods {
				if m.Type == module.Decoder {
					fusable = append(fusable, m)
				}
			}
			fused = aggregate.Fuse(fusable)
			return len(fused)
		}},
		// Stage 5: word identification and propagation (Algorithm 3).
		{name: "words", deps: []string{"fuse"}, run: func(ctx context.Context) int {
			seeds := words.FromModules(baseMods())
			rounds := opt.WordRounds
			if rounds <= 0 {
				rounds = 3
			}
			if opt.SkipWordProp {
				rep.Words = seeds
			} else {
				o := opt.Words
				o.Interrupt = interruptOf(ctx)
				all, _ := words.PropagateAll(nl, seeds, rounds, o)
				rep.Words = all
			}
			return len(rep.Words)
		}},
		// Stage 6: QBF module matching between words (Algorithm 4).
		{name: "modmatch", deps: []string{"words"}, run: func(ctx context.Context) int {
			if opt.SkipModMatch {
				return 0
			}
			wordOps = modmatch.Match(ctx, nl, rep.Words, opt.ModMatch)
			return len(wordOps)
		}},
		// Stage 7 (bitslice half): RAM and multibit-register detection
		// (Algorithms 8-9).
		{name: "rams", deps: []string{"bitslice"}, run: func(ctx context.Context) int {
			if slices == nil {
				return 0
			}
			rams = seq.FindRAMs(nl, slices, opt.Seq)
			return len(rams)
		}},
		{name: "registers", deps: []string{"aggregate"}, run: func(ctx context.Context) int {
			regs = seq.FindMultibitRegisters(nl, muxMods, opt.Seq)
			return len(regs)
		}},
		// Footnote 15: recover multibit-register bit order by matching the
		// registers against ordered words (word propagation reaches the
		// registers' D-input gates; the driven latches inherit the order).
		{name: "order", deps: []string{"words", "registers"}, run: func(ctx context.Context) int {
			if len(regs) == 0 {
				return 0
			}
			var ordered [][]netlist.ID
			for _, w := range rep.Words {
				ordered = append(ordered, w.Bits)
			}
			seq.OrderRegisterBits(nl, regs, ordered)
			return 0
		}},
		// Stage 7b: design-specific passes supplied by the analyst. They
		// run sequentially after every built-in stage, matching the
		// serial pipeline's semantics (a pass may inspect the netlist
		// without racing the built-in analyses). A panicking pass fails
		// only this stage; passes that ran before the panic keep their
		// modules.
		{name: "extra", deps: []string{"modmatch", "counters", "shift", "rams", "order"}, run: func(ctx context.Context) int {
			n := 0
			for _, pass := range opt.ExtraPasses {
				if ctx.Err() != nil {
					break
				}
				ms := pass(nl)
				extras = append(extras, ms)
				n += len(ms)
			}
			return n
		}},
		// Stage 8: overlap resolution (Algorithm 10). Depends on "extra",
		// which transitively gates on every other stage, so the merge sees
		// all completed outputs. Running it inside the DAG gives it the
		// same timeout/panic handling as the analyses.
		{name: "overlap", deps: []string{"extra"}, run: func(ctx context.Context) int {
			mods := mergeMods()
			rep.All = mods
			rep.CoverageBefore = module.CoverageCount(mods)
			rep.CountsBefore = module.CountByType(mods)
			o := opt.Overlap
			o.Interrupt = interruptOf(ctx)
			res, err := overlap.Resolve(mods, o)
			if err == nil {
				rep.Resolved = res.Selected
				rep.CoverageAfter = res.Coverage
				rep.OverlapOptimal = res.Optimal
				rep.CountsAfter = module.CountByType(res.Selected)
			} else {
				// Infeasible only when a MinModules target exceeds what
				// is coverable; report the unresolved set.
				rep.OverlapErr = err
				rep.CountsAfter = map[module.Type]int{}
			}
			return len(rep.Resolved)
		}},
	}

	sched := newScheduler(ctx, workers, opt.StageTimeout, start, opt.Progress)
	rep.Trace = sched.run(stages)

	// When the overlap stage was skipped (run canceled/timed out before it
	// started) or died before merging, still assemble the canonical merge
	// of whatever the completed stages produced so the report lists them.
	if rep.All == nil {
		mods := mergeMods()
		rep.All = mods
		rep.CoverageBefore = module.CoverageCount(mods)
		rep.CountsBefore = module.CountByType(mods)
	}
	if rep.CountsAfter == nil {
		rep.CountsAfter = map[module.Type]int{}
	}
	for _, t := range rep.Trace {
		if t.Status != StageOK {
			rep.Degraded = true
			break
		}
	}

	rep.Runtime = time.Since(start)
	return rep
}
