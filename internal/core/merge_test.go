package core

import (
	"context"
	"testing"
	"time"

	"netlistre/internal/module"
	"netlistre/internal/netlist"
)

// mergeFixture builds a small parent netlist plus two partials whose
// module sets overlap on one shared gate, exercising cross-partition
// overlap resolution.
func mergeFixture() (*netlist.Netlist, []Partial) {
	nl := netlist.New("parent")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	var gates []netlist.ID
	prev := a
	for i := 0; i < 8; i++ {
		prev = nl.AddGate(netlist.Xor, prev, b)
		gates = append(gates, prev)
	}
	nl.MarkOutput("o", prev)

	// Partition A claims gates 0-4 as an adder; partition B claims gates
	// 4-7 as a mux. Gate 4 is multi-owned, so overlap resolution must drop
	// or trim one of them.
	mA := module.New(module.Adder, 4, gates[0:5])
	mB := module.New(module.Mux, 2, gates[4:8])
	return nl, []Partial{
		{Name: "rst_a", Modules: []*module.Module{mA}, Duration: 10 * time.Millisecond},
		{Name: "rst_b", Modules: []*module.Module{mB}, Duration: 20 * time.Millisecond},
	}
}

func TestMergePartitionedCombinesAndResolves(t *testing.T) {
	nl, parts := mergeFixture()
	rep := MergePartitioned(context.Background(), nl, Options{}, parts)

	if rep.Degraded {
		t.Error("merge of healthy partials must not be degraded")
	}
	if len(rep.All) != 2 {
		t.Fatalf("All has %d modules, want the 2 concatenated partials", len(rep.All))
	}
	if rep.All[0] != parts[0].Modules[0] || rep.All[1] != parts[1].Modules[0] {
		t.Error("All must preserve partial order (canonical-order contract)")
	}
	if id, ok := module.Disjoint(rep.Resolved); !ok {
		t.Errorf("resolved modules still overlap on element %d", id)
	}
	if len(rep.Resolved) == 0 {
		t.Error("overlap resolution selected nothing")
	}
	if rep.CoverageAfter > rep.CoverageBefore {
		t.Errorf("coverage grew across resolution: %d -> %d", rep.CoverageBefore, rep.CoverageAfter)
	}
	if rep.TotalElements != nl.Stats().Gates+nl.Stats().Latches {
		t.Errorf("TotalElements = %d, want the parent's element count", rep.TotalElements)
	}

	// Trace: one entry per partition, then the merge, with stacked starts.
	wantTrace := []string{"part:rst_a", "part:rst_b", "merge"}
	if len(rep.Trace) != len(wantTrace) {
		t.Fatalf("trace has %d entries, want %d", len(rep.Trace), len(wantTrace))
	}
	for i, name := range wantTrace {
		if rep.Trace[i].Name != name {
			t.Errorf("trace[%d] = %s, want %s", i, rep.Trace[i].Name, name)
		}
	}
	if rep.Trace[1].Start != parts[0].Duration {
		t.Errorf("part:rst_b starts at %v, want stacked after %v", rep.Trace[1].Start, parts[0].Duration)
	}
}

func TestMergePartitionedIsDeterministic(t *testing.T) {
	nl, parts := mergeFixture()
	a := MergePartitioned(context.Background(), nl, Options{}, parts)
	b := MergePartitioned(context.Background(), nl, Options{}, parts)
	if len(a.Resolved) != len(b.Resolved) {
		t.Fatalf("runs resolved %d vs %d modules", len(a.Resolved), len(b.Resolved))
	}
	for i := range a.Resolved {
		if a.Resolved[i] != b.Resolved[i] {
			t.Errorf("resolved[%d] differs between identical merges", i)
		}
	}
	if a.CoverageAfter != b.CoverageAfter {
		t.Errorf("coverage differs: %d vs %d", a.CoverageAfter, b.CoverageAfter)
	}
}

func TestMergePartitionedDegradedPropagates(t *testing.T) {
	nl, parts := mergeFixture()
	parts[1].Degraded = true
	rep := MergePartitioned(context.Background(), nl, Options{}, parts)
	if !rep.Degraded {
		t.Error("a degraded partial must mark the merged report degraded")
	}
	st := rep.Trace[1]
	if st.Status != StageFailed || st.Err == "" {
		t.Errorf("degraded partial's trace entry = %+v, want a failed stage with an error", st)
	}
	// The healthy partial's entry stays clean.
	if rep.Trace[0].Status == StageFailed {
		t.Error("healthy partial's trace entry marked failed")
	}
}

func TestMergePartitionedCanceledContext(t *testing.T) {
	nl, parts := mergeFixture()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep := MergePartitioned(ctx, nl, Options{}, parts)
	if !rep.Degraded {
		t.Error("merge under a canceled context must be degraded")
	}
}
