package core

// A bounded worker-pool scheduler for the portfolio's stage DAG. The
// paper's analyses are largely independent (Figure 1): bitslice matching,
// common-support analysis and the latch-connection-graph detectors share
// no intermediate state, so they run concurrently; downstream stages are
// gated on their declared inputs. Execution is deterministic for any
// worker count because every stage consumes only the artifacts of its
// declared dependencies, writes exactly one output artifact, and the
// final module list is assembled in a fixed canonical order.
//
// Memoization: when the analysis carries a stage store, each stage's
// input closure is digested — netlist fingerprint, stage name, the
// stage-relevant option fields, and the digests of its dependency
// artifacts — and the store is consulted before the stage body runs. A
// hit replays the finished artifact (provenance StageCached in the
// trace); a miss executes under single-flight so concurrent analyses of
// the same content compute each stage once. Only complete artifacts with
// fully canonical inputs are published: a stage interrupted mid-run, or
// one that consumed a partial upstream output, keeps its result out of
// the store so a later run never resumes from poisoned state.
//
// Robustness: every stage runs under the analysis context (optionally
// narrowed by a per-stage timeout), panics are recovered and converted to
// a Failed status with the stack, and a stage that times out or fails
// does not stop the run — downstream stages still execute against
// whatever partial artifacts the stage managed to produce.

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"netlistre/internal/artifact"
)

// StageStatus classifies how a pipeline stage ended.
type StageStatus uint8

const (
	// StageOK means the stage ran to completion.
	StageOK StageStatus = iota
	// StageTimedOut means the stage hit Options.StageTimeout or the
	// whole-run Options.Timeout; its outputs may be partial.
	StageTimedOut
	// StageCanceled means the analysis context was canceled; the stage's
	// outputs may be partial, or empty when the context was already
	// canceled before the stage started.
	StageCanceled
	// StageFailed means the stage panicked; the panic value and stack are
	// in StageTiming.Err.
	StageFailed
)

// String returns the status name used in reports.
func (s StageStatus) String() string {
	switch s {
	case StageOK:
		return "ok"
	case StageTimedOut:
		return "timed-out"
	case StageCanceled:
		return "canceled"
	case StageFailed:
		return "failed"
	}
	return fmt.Sprintf("StageStatus(%d)", uint8(s))
}

// StageProvenance records how a stage's output came to be: executed in
// this run, replayed from the stage store, or never produced because the
// run was already over. Orthogonal to StageStatus — a degraded run and a
// warm-cache run both differ from a cold one only in provenance.
type StageProvenance uint8

const (
	// StageRan means the stage body executed in this run.
	StageRan StageProvenance = iota
	// StageCached means the stage's artifact was replayed from the stage
	// store (or from a concurrent analysis's in-flight computation)
	// without executing the body.
	StageCached
	// StageSkipped means the body never ran: the whole-run budget had
	// expired or the context was canceled before the stage started.
	StageSkipped
)

// String returns the provenance name used in traces ("ran", "cached",
// "skipped").
func (p StageProvenance) String() string {
	switch p {
	case StageRan:
		return "ran"
	case StageCached:
		return "cached"
	case StageSkipped:
		return "skipped"
	}
	return fmt.Sprintf("StageProvenance(%d)", uint8(p))
}

// StageTiming records the wall-clock footprint of one pipeline stage.
type StageTiming struct {
	// Name identifies the stage (see Analyze for the stage list).
	Name string
	// Start is the stage's start offset from the beginning of Analyze.
	Start time.Duration
	// Duration is the stage's wall-clock run time.
	Duration time.Duration
	// Modules counts the items the stage produced: inferred modules for
	// the detector stages, words for the word stage, selected modules
	// for the overlap stage, and 0 for pure intermediate stages. A
	// cached stage reports the count recorded when its artifact was
	// first produced.
	Modules int
	// Status classifies how the stage ended; anything but StageOK marks
	// the report as Degraded.
	Status StageStatus
	// Provenance records whether the stage body ran, was replayed from
	// the stage store, or was skipped outright.
	Provenance StageProvenance
	// Err holds the error text for a non-OK stage (the context error, or
	// the panic value plus stack for StageFailed).
	Err string
}

// StageEvent is delivered to Options.Progress when a stage starts
// (Done=false) and finishes (Done=true). Events are emitted serially:
// the callback is never invoked concurrently with itself.
type StageEvent struct {
	Stage string
	Done  bool
	// Start is the stage's start offset from the beginning of Analyze.
	Start time.Duration
	// Duration and Modules are zero until Done.
	Duration time.Duration
	Modules  int
	// Status, Provenance and Err mirror the finished stage's
	// StageTiming; all are zero until Done.
	Status     StageStatus
	Provenance StageProvenance
	Err        string
}

// stage is one node of the DAG. Deps name earlier stages whose artifacts
// the stage consumes; they must finish before run is called, and their
// digests are folded into this stage's digest. run executes the body
// against the dependency artifacts and returns the output value plus the
// produced item count for the trace. The context passed to run is the
// analysis context, narrowed by the per-stage timeout when one is
// configured.
type stage struct {
	name string
	deps []string
	// digest appends the stage-relevant Options fields to the stage's
	// content digest; nil when the stage has no option knobs of its own.
	// Fields that cannot change the result (Workers, budgets, callbacks)
	// must not be digested.
	digest func(h *artifact.Hasher)
	// uncacheable forces execution and suppresses publication — used when
	// the stage's behavior cannot be digested (analyst ExtraPasses).
	uncacheable bool
	run         func(ctx context.Context, in map[string]*artifact.Artifact) (value any, items int)
}

// scheduler executes a stage DAG with at most `workers` stages in flight.
type scheduler struct {
	ctx          context.Context
	stageTimeout time.Duration
	workers      int
	start        time.Time
	progress     func(StageEvent)

	// store and fingerprint enable memoization; both zero on the
	// unbudgeted fast path so no digesting happens at all.
	store       *artifact.Store
	fingerprint string

	stages []stage
	index  map[string]int
	// arts[i] is stage i's output artifact (nil when it never produced
	// one); canonical[i] reports whether that artifact is the complete
	// result of fully complete inputs — the publication criterion.
	arts      []*artifact.Artifact
	canonical []bool
	timings   []StageTiming

	mu sync.Mutex // serializes progress callbacks
}

func newScheduler(ctx context.Context, workers int, stageTimeout time.Duration, start time.Time, progress func(StageEvent), store *artifact.Store, fingerprint string) *scheduler {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers < 1 {
		workers = 1
	}
	return &scheduler{ctx: ctx, stageTimeout: stageTimeout, workers: workers,
		start: start, progress: progress, store: store, fingerprint: fingerprint}
}

func (s *scheduler) emit(ev StageEvent) {
	if s.progress == nil {
		return
	}
	s.mu.Lock()
	s.progress(ev)
	s.mu.Unlock()
}

// run executes the stages and returns per-stage timings in declaration
// order plus each stage's output artifact. Stages may only depend on
// earlier-declared stages (the declaration order is a topological order);
// a forward or unknown dependency panics, as it is a programming error in
// the stage table.
func (s *scheduler) run(stages []stage) ([]StageTiming, []*artifact.Artifact) {
	n := len(stages)
	s.stages = stages
	s.index = make(map[string]int, n)
	for i, st := range stages {
		if _, dup := s.index[st.name]; dup {
			panic(fmt.Sprintf("core: duplicate stage %q", st.name))
		}
		s.index[st.name] = i
	}
	waiting := make([]int, n) // unmet dependency count per stage
	dependents := make([][]int, n)
	for i, st := range stages {
		for _, d := range st.deps {
			j, ok := s.index[d]
			if !ok || j >= i {
				panic(fmt.Sprintf("core: stage %q has invalid dep %q", st.name, d))
			}
			waiting[i]++
			dependents[j] = append(dependents[j], i)
		}
	}

	s.timings = make([]StageTiming, n)
	s.arts = make([]*artifact.Artifact, n)
	s.canonical = make([]bool, n)
	done := make(chan int)
	// ready holds runnable stage indices in ascending order so that with
	// Workers=1 execution follows the declaration (serial) order.
	var ready []int
	for i := range stages {
		if waiting[i] == 0 {
			ready = append(ready, i)
		}
	}
	running, completed := 0, 0
	for completed < n {
		for len(ready) > 0 && running < s.workers {
			i := ready[0]
			ready = ready[1:]
			running++
			go s.exec(i, done)
		}
		i := <-done
		running--
		completed++
		for _, d := range dependents[i] {
			waiting[d]--
			if waiting[d] == 0 {
				// Insert in ascending order (the list is tiny).
				pos := len(ready)
				for k, r := range ready {
					if r > d {
						pos = k
						break
					}
				}
				ready = append(ready[:pos], append([]int{d}, ready[pos:]...)...)
			}
		}
	}
	return s.timings, s.arts
}

func (s *scheduler) exec(i int, done chan<- int) {
	st := s.stages[i]
	startOff := time.Since(s.start)
	s.emit(StageEvent{Stage: st.name, Start: startOff})
	status, errText, prov, art, canonical := s.runStage(st)
	dur := time.Since(s.start) - startOff
	mods := 0
	if art != nil {
		mods = art.Items
	}
	// Publication order matters for visibility: arts/canonical are read
	// by dependents only after the done send below is received by the
	// scheduling loop, which happens-before their exec goroutines start.
	s.arts[i] = art
	s.canonical[i] = canonical
	s.timings[i] = StageTiming{Name: st.name, Start: startOff, Duration: dur,
		Modules: mods, Status: status, Provenance: prov, Err: errText}
	s.emit(StageEvent{Stage: st.name, Done: true, Start: startOff, Duration: dur,
		Modules: mods, Status: status, Provenance: prov, Err: errText})
	done <- i
}

// runStage executes one stage: it gathers the dependency artifacts,
// consults the stage store when the inputs are canonical, and otherwise
// runs the body with panic recovery and timeout/cancel status mapping.
func (s *scheduler) runStage(st stage) (status StageStatus, errText string, prov StageProvenance, art *artifact.Artifact, canonical bool) {
	in := make(map[string]*artifact.Artifact, len(st.deps))
	depsCanonical := true
	for _, d := range st.deps {
		j := s.index[d]
		if a := s.arts[j]; a != nil {
			in[d] = a
		}
		if !s.canonical[j] {
			depsCanonical = false
		}
	}

	// When the run is already over (whole-run timeout expired or the
	// caller canceled), skip the stage body entirely: every remaining
	// stage is marked the same way and produces nothing, which keeps the
	// partial report deterministic for a given cancellation point.
	if err := s.ctx.Err(); err != nil {
		return statusFromCtxErr(err), err.Error(), StageSkipped, nil, false
	}
	ctx := s.ctx
	if s.stageTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.stageTimeout)
		defer cancel() // releases the timer; no goroutine outlives the stage
	}
	defer func() {
		if r := recover(); r != nil {
			status = StageFailed
			errText = fmt.Sprintf("panic: %v\n%s", r, debug.Stack())
			prov = StageRan
			art = nil
			canonical = false
		}
	}()

	compute := func(digest artifact.Digest) (*artifact.Artifact, bool) {
		v, items := st.run(ctx, in)
		a := &artifact.Artifact{Stage: st.name, Digest: digest, Value: v, Items: items}
		// Publish only complete results of complete inputs; a partial
		// artifact is still handed to this run's downstream stages.
		return a, depsCanonical && ctx.Err() == nil
	}

	if s.store != nil && !st.uncacheable && depsCanonical {
		key := s.stageKey(st)
		a, cached, err := s.store.Do(ctx, key, func() (*artifact.Artifact, bool) {
			return compute(key)
		})
		if err != nil {
			// The wait on another analysis's in-flight computation
			// outlived this run's budget.
			return statusFromCtxErr(err), err.Error(), StageSkipped, nil, false
		}
		if cached {
			return StageOK, "", StageCached, a, true
		}
		if err := ctx.Err(); err != nil {
			return statusFromCtxErr(err), err.Error(), StageRan, a, false
		}
		return StageOK, "", StageRan, a, true
	}

	a, _ := compute("")
	if err := ctx.Err(); err != nil {
		return statusFromCtxErr(err), err.Error(), StageRan, a, false
	}
	return StageOK, "", StageRan, a, depsCanonical && !st.uncacheable
}

// stageKey digests a stage's input closure: the netlist fingerprint, the
// stage name, the stage-relevant option fields, and the digests of the
// dependency artifacts (all canonical when this is called).
func (s *scheduler) stageKey(st stage) artifact.Digest {
	h := artifact.NewHasher("netlistre-stage-v1")
	h.Str(s.fingerprint)
	h.Str(st.name)
	if st.digest != nil {
		st.digest(h)
	}
	for _, d := range st.deps {
		h.Digest(s.arts[s.index[d]].Digest)
	}
	return h.Sum()
}

// statusFromCtxErr maps a context error to the stage status it implies.
func statusFromCtxErr(err error) StageStatus {
	if errors.Is(err, context.DeadlineExceeded) {
		return StageTimedOut
	}
	return StageCanceled
}
