package core

// A bounded worker-pool scheduler for the portfolio's stage DAG. The
// paper's analyses are largely independent (Figure 1): bitslice matching,
// common-support analysis and the latch-connection-graph detectors share
// no intermediate state, so they run concurrently; downstream stages are
// gated on their declared inputs. Execution is deterministic for any
// worker count because every stage writes to its own output slot and the
// final module list is assembled in a fixed canonical order.
//
// Robustness: every stage runs under the analysis context (optionally
// narrowed by a per-stage timeout), panics are recovered and converted to
// a Failed status with the stack, and a stage that times out or fails
// does not stop the run — downstream stages still execute against
// whatever partial intermediate state the stage managed to produce.

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"
)

// StageStatus classifies how a pipeline stage ended.
type StageStatus uint8

const (
	// StageOK means the stage ran to completion.
	StageOK StageStatus = iota
	// StageTimedOut means the stage hit Options.StageTimeout or the
	// whole-run Options.Timeout; its outputs may be partial.
	StageTimedOut
	// StageCanceled means the analysis context was canceled; the stage's
	// outputs may be partial, or empty when the context was already
	// canceled before the stage started.
	StageCanceled
	// StageFailed means the stage panicked; the panic value and stack are
	// in StageTiming.Err.
	StageFailed
)

// String returns the status name used in reports.
func (s StageStatus) String() string {
	switch s {
	case StageOK:
		return "ok"
	case StageTimedOut:
		return "timed-out"
	case StageCanceled:
		return "canceled"
	case StageFailed:
		return "failed"
	}
	return fmt.Sprintf("StageStatus(%d)", uint8(s))
}

// StageTiming records the wall-clock footprint of one pipeline stage.
type StageTiming struct {
	// Name identifies the stage (see Analyze for the stage list).
	Name string
	// Start is the stage's start offset from the beginning of Analyze.
	Start time.Duration
	// Duration is the stage's wall-clock run time.
	Duration time.Duration
	// Modules counts the items the stage produced: inferred modules for
	// the detector stages, words for the word stage, selected modules
	// for the overlap stage, and 0 for pure intermediate stages.
	Modules int
	// Status classifies how the stage ended; anything but StageOK marks
	// the report as Degraded.
	Status StageStatus
	// Err holds the error text for a non-OK stage (the context error, or
	// the panic value plus stack for StageFailed).
	Err string
}

// StageEvent is delivered to Options.Progress when a stage starts
// (Done=false) and finishes (Done=true). Events are emitted serially:
// the callback is never invoked concurrently with itself.
type StageEvent struct {
	Stage string
	Done  bool
	// Start is the stage's start offset from the beginning of Analyze.
	Start time.Duration
	// Duration and Modules are zero until Done.
	Duration time.Duration
	Modules  int
	// Status and Err mirror the finished stage's StageTiming; both are
	// zero until Done.
	Status StageStatus
	Err    string
}

// stage is one node of the DAG. Deps name earlier stages that must finish
// before run is called; run returns the produced item count for the trace.
// The context passed to run is the analysis context, narrowed by the
// per-stage timeout when one is configured.
type stage struct {
	name string
	deps []string
	run  func(ctx context.Context) int
}

// scheduler executes a stage DAG with at most `workers` stages in flight.
type scheduler struct {
	ctx          context.Context
	stageTimeout time.Duration
	workers      int
	start        time.Time
	progress     func(StageEvent)

	mu sync.Mutex // serializes progress callbacks
}

func newScheduler(ctx context.Context, workers int, stageTimeout time.Duration, start time.Time, progress func(StageEvent)) *scheduler {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers < 1 {
		workers = 1
	}
	return &scheduler{ctx: ctx, stageTimeout: stageTimeout, workers: workers,
		start: start, progress: progress}
}

func (s *scheduler) emit(ev StageEvent) {
	if s.progress == nil {
		return
	}
	s.mu.Lock()
	s.progress(ev)
	s.mu.Unlock()
}

// run executes the stages and returns per-stage timings in declaration
// order. Stages may only depend on earlier-declared stages (the
// declaration order is a topological order); a forward or unknown
// dependency panics, as it is a programming error in the stage table.
func (s *scheduler) run(stages []stage) []StageTiming {
	n := len(stages)
	index := make(map[string]int, n)
	for i, st := range stages {
		if _, dup := index[st.name]; dup {
			panic(fmt.Sprintf("core: duplicate stage %q", st.name))
		}
		index[st.name] = i
	}
	waiting := make([]int, n) // unmet dependency count per stage
	dependents := make([][]int, n)
	for i, st := range stages {
		for _, d := range st.deps {
			j, ok := index[d]
			if !ok || j >= i {
				panic(fmt.Sprintf("core: stage %q has invalid dep %q", st.name, d))
			}
			waiting[i]++
			dependents[j] = append(dependents[j], i)
		}
	}

	timings := make([]StageTiming, n)
	done := make(chan int)
	// ready holds runnable stage indices in ascending order so that with
	// Workers=1 execution follows the declaration (serial) order.
	var ready []int
	for i := range stages {
		if waiting[i] == 0 {
			ready = append(ready, i)
		}
	}
	running, completed := 0, 0
	for completed < n {
		for len(ready) > 0 && running < s.workers {
			i := ready[0]
			ready = ready[1:]
			running++
			go s.exec(stages[i], i, timings, done)
		}
		i := <-done
		running--
		completed++
		for _, d := range dependents[i] {
			waiting[d]--
			if waiting[d] == 0 {
				// Insert in ascending order (the list is tiny).
				pos := len(ready)
				for k, r := range ready {
					if r > d {
						pos = k
						break
					}
				}
				ready = append(ready[:pos], append([]int{d}, ready[pos:]...)...)
			}
		}
	}
	return timings
}

func (s *scheduler) exec(st stage, i int, timings []StageTiming, done chan<- int) {
	startOff := time.Since(s.start)
	s.emit(StageEvent{Stage: st.name, Start: startOff})
	status, errText, mods := s.runStage(st)
	dur := time.Since(s.start) - startOff
	timings[i] = StageTiming{Name: st.name, Start: startOff, Duration: dur,
		Modules: mods, Status: status, Err: errText}
	s.emit(StageEvent{Stage: st.name, Done: true, Start: startOff, Duration: dur,
		Modules: mods, Status: status, Err: errText})
	done <- i
}

// runStage executes one stage body with panic recovery and timeout/cancel
// status mapping.
func (s *scheduler) runStage(st stage) (status StageStatus, errText string, mods int) {
	// When the run is already over (whole-run timeout expired or the
	// caller canceled), skip the stage body entirely: every remaining
	// stage is marked the same way and produces nothing, which keeps the
	// partial report deterministic for a given cancellation point.
	if err := s.ctx.Err(); err != nil {
		return statusFromCtxErr(err), err.Error(), 0
	}
	ctx := s.ctx
	if s.stageTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.stageTimeout)
		defer cancel() // releases the timer; no goroutine outlives the stage
	}
	defer func() {
		if r := recover(); r != nil {
			status = StageFailed
			errText = fmt.Sprintf("panic: %v\n%s", r, debug.Stack())
			mods = 0
		}
	}()
	mods = st.run(ctx)
	if err := ctx.Err(); err != nil {
		return statusFromCtxErr(err), err.Error(), mods
	}
	return StageOK, "", mods
}

// statusFromCtxErr maps a context error to the stage status it implies.
func statusFromCtxErr(err error) StageStatus {
	if errors.Is(err, context.DeadlineExceeded) {
		return StageTimedOut
	}
	return StageCanceled
}
