package core

// A bounded worker-pool scheduler for the portfolio's stage DAG. The
// paper's analyses are largely independent (Figure 1): bitslice matching,
// common-support analysis and the latch-connection-graph detectors share
// no intermediate state, so they run concurrently; downstream stages are
// gated on their declared inputs. Execution is deterministic for any
// worker count because every stage writes to its own output slot and the
// final module list is assembled in a fixed canonical order.

import (
	"fmt"
	"sync"
	"time"
)

// StageTiming records the wall-clock footprint of one pipeline stage.
type StageTiming struct {
	// Name identifies the stage (see Analyze for the stage list).
	Name string
	// Start is the stage's start offset from the beginning of Analyze.
	Start time.Duration
	// Duration is the stage's wall-clock run time.
	Duration time.Duration
	// Modules counts the items the stage produced: inferred modules for
	// the detector stages, words for the word stage, selected modules
	// for the overlap stage, and 0 for pure intermediate stages.
	Modules int
}

// StageEvent is delivered to Options.Progress when a stage starts
// (Done=false) and finishes (Done=true). Events are emitted serially:
// the callback is never invoked concurrently with itself.
type StageEvent struct {
	Stage string
	Done  bool
	// Start is the stage's start offset from the beginning of Analyze.
	Start time.Duration
	// Duration and Modules are zero until Done.
	Duration time.Duration
	Modules  int
}

// stage is one node of the DAG. Deps name earlier stages that must finish
// before run is called; run returns the produced item count for the trace.
type stage struct {
	name string
	deps []string
	run  func() int
}

// scheduler executes a stage DAG with at most `workers` stages in flight.
type scheduler struct {
	workers  int
	start    time.Time
	progress func(StageEvent)

	mu sync.Mutex // serializes progress callbacks
}

func newScheduler(workers int, start time.Time, progress func(StageEvent)) *scheduler {
	if workers < 1 {
		workers = 1
	}
	return &scheduler{workers: workers, start: start, progress: progress}
}

func (s *scheduler) emit(ev StageEvent) {
	if s.progress == nil {
		return
	}
	s.mu.Lock()
	s.progress(ev)
	s.mu.Unlock()
}

// run executes the stages and returns per-stage timings in declaration
// order. Stages may only depend on earlier-declared stages (the
// declaration order is a topological order); a forward or unknown
// dependency panics, as it is a programming error in the stage table.
func (s *scheduler) run(stages []stage) []StageTiming {
	n := len(stages)
	index := make(map[string]int, n)
	for i, st := range stages {
		if _, dup := index[st.name]; dup {
			panic(fmt.Sprintf("core: duplicate stage %q", st.name))
		}
		index[st.name] = i
	}
	waiting := make([]int, n) // unmet dependency count per stage
	dependents := make([][]int, n)
	for i, st := range stages {
		for _, d := range st.deps {
			j, ok := index[d]
			if !ok || j >= i {
				panic(fmt.Sprintf("core: stage %q has invalid dep %q", st.name, d))
			}
			waiting[i]++
			dependents[j] = append(dependents[j], i)
		}
	}

	timings := make([]StageTiming, n)
	done := make(chan int)
	// ready holds runnable stage indices in ascending order so that with
	// Workers=1 execution follows the declaration (serial) order.
	var ready []int
	for i := range stages {
		if waiting[i] == 0 {
			ready = append(ready, i)
		}
	}
	running, completed := 0, 0
	for completed < n {
		for len(ready) > 0 && running < s.workers {
			i := ready[0]
			ready = ready[1:]
			running++
			go s.exec(stages[i], i, timings, done)
		}
		i := <-done
		running--
		completed++
		for _, d := range dependents[i] {
			waiting[d]--
			if waiting[d] == 0 {
				// Insert in ascending order (the list is tiny).
				pos := len(ready)
				for k, r := range ready {
					if r > d {
						pos = k
						break
					}
				}
				ready = append(ready[:pos], append([]int{d}, ready[pos:]...)...)
			}
		}
	}
	return timings
}

func (s *scheduler) exec(st stage, i int, timings []StageTiming, done chan<- int) {
	startOff := time.Since(s.start)
	s.emit(StageEvent{Stage: st.name, Start: startOff})
	mods := st.run()
	dur := time.Since(s.start) - startOff
	timings[i] = StageTiming{Name: st.name, Start: startOff, Duration: dur, Modules: mods}
	s.emit(StageEvent{Stage: st.name, Done: true, Start: startOff, Duration: dur, Modules: mods})
	done <- i
}
