package core

import (
	"fmt"
	"math/rand"
	"testing"

	"netlistre/internal/gen"
	"netlistre/internal/module"
	"netlistre/internal/netlist"
)

func TestAnalyzeComposite(t *testing.T) {
	// A circuit containing one instance of each major component class; the
	// full portfolio must find them all.
	nl := netlist.New("composite")
	a := gen.InputWord(nl, "a", 8)
	b := gen.InputWord(nl, "b", 8)
	sum, _ := gen.RippleAdder(nl, a, b, netlist.Nil)
	gen.MarkOutputs(nl, "sum", sum)

	sel := nl.AddInput("sel")
	mx := gen.Mux2Word(nl, sel, a, b)
	gen.MarkOutputs(nl, "mx", mx)

	en := nl.AddInput("en")
	rst := nl.AddInput("rst")
	gen.Counter(nl, 5, en, rst, false)
	sin := nl.AddInput("sin")
	gen.ShiftRegister(nl, 5, en, rst, sin)

	waddr := gen.InputWord(nl, "wa", 2)
	raddr := gen.InputWord(nl, "ra", 2)
	we := nl.AddInput("we")
	read, _ := gen.RegisterFile(nl, 4, 8, waddr, gen.InputWord(nl, "wd", 8), we, raddr)
	gen.MarkOutputs(nl, "rd", read)

	dsel := gen.InputWord(nl, "ds", 3)
	gen.MarkOutputs(nl, "dec", gen.Decoder(nl, dsel))

	nl.MarkOutput("par", gen.ParityTree(nl, a))

	rep := Analyze(nl, Options{})

	want := []module.Type{module.Adder, module.Mux, module.Counter,
		module.ShiftRegister, module.RAM, module.Decoder, module.ParityTree}
	for _, ty := range want {
		if rep.CountsBefore[ty] == 0 {
			t.Errorf("no %v found (counts: %v)", ty, rep.CountsBefore)
		}
	}

	// Resolved modules must be disjoint and cover a meaningful fraction.
	if id, ok := module.Disjoint(rep.Resolved); !ok {
		t.Errorf("resolved modules overlap on element %d", id)
	}
	if rep.CoverageFraction() < 0.7 {
		t.Errorf("coverage = %.2f, want >= 0.7 on a pure-datapath circuit", rep.CoverageFraction())
	}
	if rep.CoverageAfter > rep.CoverageBefore {
		t.Error("resolution cannot increase coverage")
	}
	if !rep.OverlapOptimal {
		t.Error("tiny instance should resolve optimally")
	}
	if rep.TotalElements != nl.Stats().Gates+nl.Stats().Latches {
		t.Error("TotalElements wrong")
	}
}

func TestAnalyzeSkipFlags(t *testing.T) {
	nl := netlist.New("skip")
	a := gen.InputWord(nl, "a", 4)
	b := gen.InputWord(nl, "b", 4)
	sum, _ := gen.RippleAdder(nl, a, b, netlist.Nil)
	gen.MarkOutputs(nl, "s", sum)
	rep := Analyze(nl, Options{SkipModMatch: true, SkipWordProp: true})
	if rep.CountsBefore[module.WordOp] != 0 {
		t.Error("modmatch ran despite SkipModMatch")
	}
	if rep.CountsBefore[module.Adder] == 0 {
		t.Error("adder missing")
	}
}

func TestAnalyzeEmptyNetlist(t *testing.T) {
	nl := netlist.New("empty")
	nl.AddInput("a")
	rep := Analyze(nl, Options{})
	if len(rep.All) != 0 || rep.CoverageAfter != 0 {
		t.Errorf("empty netlist produced modules: %v", rep.All)
	}
	if rep.CoverageFraction() != 0 {
		t.Error("coverage fraction on empty design should be 0")
	}
}

func TestTrojanInferenceDeltas(t *testing.T) {
	// Table 8 of the paper: the trojaned articles show extra modules of
	// the kinds that make up the trojan.
	cleanO := Analyze(gen.OC8051(), Options{SkipModMatch: true})
	trojO := Analyze(gen.OC8051Trojaned(), Options{SkipModMatch: true})
	if trojO.CountsBefore[module.Counter] <= cleanO.CountsBefore[module.Counter] {
		t.Errorf("oc8051 trojan: counters %d -> %d, want increase",
			cleanO.CountsBefore[module.Counter], trojO.CountsBefore[module.Counter])
	}
	if trojO.CountsBefore[module.Gating] <= cleanO.CountsBefore[module.Gating] {
		t.Errorf("oc8051 trojan: gating %d -> %d, want increase",
			cleanO.CountsBefore[module.Gating], trojO.CountsBefore[module.Gating])
	}

	cleanE := Analyze(gen.EVoter(), Options{SkipModMatch: true})
	trojE := Analyze(gen.EVoterTrojaned(), Options{SkipModMatch: true})
	if trojE.CountsBefore[module.Mux] <= cleanE.CountsBefore[module.Mux] {
		t.Errorf("evoter trojan: muxes %d -> %d, want increase",
			cleanE.CountsBefore[module.Mux], trojE.CountsBefore[module.Mux])
	}
	decDemux := func(r *Report) int {
		return r.CountsBefore[module.Decoder] + r.CountsBefore[module.Demux]
	}
	if decDemux(trojE) <= decDemux(cleanE) {
		t.Errorf("evoter trojan: decoders+demuxes %d -> %d, want increase",
			decDemux(cleanE), decDemux(trojE))
	}
}

func TestBitOrderInference(t *testing.T) {
	// Footnote 15 end-to-end: a register fed by an adder gets its q port
	// ordered by the adder's carry chain through word propagation.
	nl := netlist.New("ord")
	a := gen.InputWord(nl, "a", 6)
	b := gen.InputWord(nl, "b", 6)
	sum, _ := gen.RippleAdder(nl, a, b, netlist.Nil)
	we := nl.AddInput("we")
	q := gen.Register(nl, sum, we)
	gen.MarkOutputs(nl, "q", q)

	rep := Analyze(nl, Options{SkipModMatch: true})
	var reg *module.Module
	for _, m := range rep.All {
		if m.Type == module.MultibitRegister {
			reg = m
		}
	}
	if reg == nil {
		t.Fatal("register not detected")
	}
	if reg.Attr["bit-order"] != "inferred" {
		t.Fatalf("bit order not inferred (attrs %v)", reg.Attr)
	}
	got := reg.Port("q")
	for i := range q {
		if got[i] != q[i] {
			t.Errorf("q[%d] = %d, want %d (adder order)", i, got[i], q[i])
		}
	}
}

func TestPortfolioOnRandomNetlists(t *testing.T) {
	// Robustness fuzz: the portfolio must not crash, must keep its
	// invariants, and must not hallucinate large structured modules in
	// pure random logic.
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 8; trial++ {
		nl := netlist.New("rand")
		var pool []netlist.ID
		for i := 0; i < 6; i++ {
			pool = append(pool, nl.AddInput(fmt.Sprintf("i%d", i)))
		}
		var latches []netlist.ID
		for i := 0; i < 10; i++ {
			l := nl.AddLatch(pool[rng.Intn(len(pool))])
			latches = append(latches, l)
			pool = append(pool, l)
		}
		kinds := []netlist.Kind{netlist.And, netlist.Or, netlist.Nand,
			netlist.Nor, netlist.Xor, netlist.Xnor, netlist.Not}
		for i := 0; i < 250; i++ {
			k := kinds[rng.Intn(len(kinds))]
			if k == netlist.Not {
				pool = append(pool, nl.AddGate(k, pool[rng.Intn(len(pool))]))
			} else {
				pool = append(pool, nl.AddGate(k,
					pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))]))
			}
		}
		for _, l := range latches {
			nl.SetLatchD(l, pool[rng.Intn(len(pool))])
		}
		nl.MarkOutput("y", pool[len(pool)-1])
		if err := nl.Check(); err != nil {
			t.Fatal(err)
		}

		rep := Analyze(nl, Options{})
		if id, ok := module.Disjoint(rep.Resolved); !ok {
			t.Fatalf("trial %d: resolved modules overlap on %d", trial, id)
		}
		if rep.CoverageAfter > rep.TotalElements {
			t.Fatalf("trial %d: coverage exceeds element count", trial)
		}
		if rep.CoverageAfter > rep.CoverageBefore {
			t.Fatalf("trial %d: resolution increased coverage", trial)
		}
		// Random logic must not produce wide adders or RAMs.
		for _, m := range rep.All {
			if m.Type == module.Adder && m.Width >= 6 {
				t.Errorf("trial %d: %d-bit adder hallucinated in noise", trial, m.Width)
			}
			if m.Type == module.RAM {
				t.Errorf("trial %d: RAM hallucinated in noise", trial)
			}
		}
	}
}
