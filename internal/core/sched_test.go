package core

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netlistre/internal/artifact"
	"netlistre/internal/gen"
	"netlistre/internal/netlist"
)

// buildTraceTestNetlist makes a small design that exercises several
// detector stages (adder, mux, counter).
func buildTraceTestNetlist() *netlist.Netlist {
	nl := netlist.New("tracetest")
	a := gen.InputWord(nl, "a", 6)
	b := gen.InputWord(nl, "b", 6)
	sum, _ := gen.RippleAdder(nl, a, b, netlist.Nil)
	gen.MarkOutputs(nl, "s", sum)
	sel := nl.AddInput("sel")
	gen.MarkOutputs(nl, "m", gen.Mux2Word(nl, sel, a, b))
	en := nl.AddInput("en")
	rst := nl.AddInput("rst")
	gen.Counter(nl, 5, en, rst, false)
	return nl
}

// simple wraps a bare body as a stage run function.
func simple(body func() int) func(context.Context, map[string]*artifact.Artifact) (any, int) {
	return func(context.Context, map[string]*artifact.Artifact) (any, int) {
		n := body()
		return nil, n
	}
}

func TestSchedulerRespectsDependencies(t *testing.T) {
	var mu sync.Mutex
	var order []string
	record := func(name string) func(context.Context, map[string]*artifact.Artifact) (any, int) {
		return simple(func() int {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return 0
		})
	}
	stages := []stage{
		{name: "a", run: record("a")},
		{name: "b", run: record("b")},
		{name: "c", deps: []string{"a", "b"}, run: record("c")},
		{name: "d", deps: []string{"c"}, run: record("d")},
	}
	for _, workers := range []int{1, 4} {
		order = nil
		s := newScheduler(context.Background(), workers, 0, time.Now(), nil, nil, "")
		timings, _ := s.run(stages)
		if len(order) != 4 {
			t.Fatalf("workers=%d: ran %d stages, want 4", workers, len(order))
		}
		pos := map[string]int{}
		for i, n := range order {
			pos[n] = i
		}
		if pos["c"] < pos["a"] || pos["c"] < pos["b"] || pos["d"] < pos["c"] {
			t.Errorf("workers=%d: dependency order violated: %v", workers, order)
		}
		// Timings come back in declaration order regardless of execution
		// order.
		for i, want := range []string{"a", "b", "c", "d"} {
			if timings[i].Name != want {
				t.Errorf("workers=%d: timings[%d] = %q, want %q", workers, i, timings[i].Name, want)
			}
		}
	}
}

func TestSchedulerBoundsConcurrency(t *testing.T) {
	const workers = 2
	var inFlight, peak atomic.Int32
	busy := simple(func() int {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		inFlight.Add(-1)
		return 0
	})
	var stages []stage
	names := []string{"s0", "s1", "s2", "s3", "s4", "s5"}
	for _, n := range names {
		stages = append(stages, stage{name: n, run: busy})
	}
	newScheduler(context.Background(), workers, 0, time.Now(), nil, nil, "").run(stages)
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds worker budget %d", p, workers)
	}
}

func TestSchedulerSerialOrderWithOneWorker(t *testing.T) {
	// With Workers=1 and no dependencies, stages run in declaration order.
	var mu sync.Mutex
	var order []string
	var stages []stage
	for _, n := range []string{"x", "y", "z"} {
		n := n
		stages = append(stages, stage{name: n, run: simple(func() int {
			mu.Lock()
			order = append(order, n)
			mu.Unlock()
			return 0
		})})
	}
	newScheduler(context.Background(), 1, 0, time.Now(), nil, nil, "").run(stages)
	for i, want := range []string{"x", "y", "z"} {
		if order[i] != want {
			t.Fatalf("serial order = %v", order)
		}
	}
}

func TestSchedulerProgressEventsPaired(t *testing.T) {
	var events []StageEvent // Progress is documented as serialized.
	s := newScheduler(context.Background(), 4, 0, time.Now(), func(ev StageEvent) {
		events = append(events, ev)
	}, nil, "")
	s.run([]stage{
		{name: "a", run: simple(func() int { return 3 })},
		{name: "b", deps: []string{"a"}, run: simple(func() int { return 1 })},
	})
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4 (start+done per stage)", len(events))
	}
	open := map[string]bool{}
	for _, ev := range events {
		if !ev.Done {
			open[ev.Stage] = true
			continue
		}
		if !open[ev.Stage] {
			t.Errorf("done event for %q before its start", ev.Stage)
		}
		open[ev.Stage] = false
		if ev.Duration < 0 {
			t.Errorf("stage %q negative duration", ev.Stage)
		}
	}
	var doneMods int
	for _, ev := range events {
		if ev.Done {
			doneMods += ev.Modules
		}
	}
	if doneMods != 4 {
		t.Errorf("done events carried %d produced items, want 4", doneMods)
	}
}

func TestSchedulerInvalidDepPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("forward dependency did not panic")
		}
	}()
	newScheduler(context.Background(), 1, 0, time.Now(), nil, nil, "").run([]stage{
		{name: "a", deps: []string{"b"}, run: simple(func() int { return 0 })},
		{name: "b", run: simple(func() int { return 0 })},
	})
}

func TestAnalyzeTraceShape(t *testing.T) {
	nl := buildTraceTestNetlist()
	rep := Analyze(nl, Options{SkipModMatch: true})
	wantStages := []string{"bitslice", "support", "lcg", "counters", "shift",
		"aggregate", "fuse", "words", "modmatch", "rams", "registers",
		"order", "extra", "overlap"}
	if len(rep.Trace) != len(wantStages) {
		t.Fatalf("trace has %d stages, want %d: %+v", len(rep.Trace), len(wantStages), rep.Trace)
	}
	for i, want := range wantStages {
		if rep.Trace[i].Name != want {
			t.Errorf("trace[%d] = %q, want %q", i, rep.Trace[i].Name, want)
		}
		if rep.Trace[i].Duration < 0 || rep.Trace[i].Start < 0 {
			t.Errorf("trace[%d] has negative timing: %+v", i, rep.Trace[i])
		}
		if rep.Trace[i].Provenance != StageRan {
			t.Errorf("trace[%d] provenance = %v, want ran (no store configured)",
				i, rep.Trace[i].Provenance)
		}
	}
}

func TestSchedulerPanicBecomesFailedStage(t *testing.T) {
	s := newScheduler(context.Background(), 2, 0, time.Now(), nil, nil, "")
	timings, _ := s.run([]stage{
		{name: "good", run: simple(func() int { return 1 })},
		{name: "bad", run: simple(func() int { panic("kaput") })},
		{name: "after", deps: []string{"bad"}, run: simple(func() int { return 2 })},
	})
	if timings[0].Status != StageOK || timings[0].Modules != 1 {
		t.Errorf("good stage: %+v", timings[0])
	}
	if timings[1].Status != StageFailed {
		t.Errorf("bad stage status = %v, want failed", timings[1].Status)
	}
	if !strings.Contains(timings[1].Err, "kaput") || !strings.Contains(timings[1].Err, "goroutine") {
		t.Errorf("bad stage error missing panic value or stack: %q", timings[1].Err)
	}
	// The dependent of a failed stage still runs (graceful degradation).
	if timings[2].Status != StageOK || timings[2].Modules != 2 {
		t.Errorf("downstream stage did not run after failure: %+v", timings[2])
	}
}

func TestSchedulerCanceledContextSkipsBodies(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	timings, _ := newScheduler(ctx, 1, 0, time.Now(), nil, nil, "").run([]stage{
		{name: "a", run: simple(func() int { ran = true; return 7 })},
	})
	if ran {
		t.Error("stage body ran under an already-canceled context")
	}
	if timings[0].Status != StageCanceled || timings[0].Modules != 0 {
		t.Errorf("stage timing = %+v, want canceled with 0 modules", timings[0])
	}
	if timings[0].Provenance != StageSkipped {
		t.Errorf("stage provenance = %v, want skipped", timings[0].Provenance)
	}
}

func TestSchedulerStageTimeout(t *testing.T) {
	s := newScheduler(context.Background(), 1, 5*time.Millisecond, time.Now(), nil, nil, "")
	timings, _ := s.run([]stage{
		{name: "slow", run: func(ctx context.Context, in map[string]*artifact.Artifact) (any, int) {
			<-ctx.Done() // cooperative: return when the stage budget expires
			return nil, 3
		}},
		{name: "fast", run: simple(func() int { return 1 })},
	})
	if timings[0].Status != StageTimedOut {
		t.Errorf("slow stage status = %v, want timed-out", timings[0].Status)
	}
	if timings[0].Modules != 3 {
		t.Errorf("timed-out stage lost its partial result count: %+v", timings[0])
	}
	if timings[1].Status != StageOK {
		t.Errorf("fast stage status = %v, want ok", timings[1].Status)
	}
}

func TestStageStatusStrings(t *testing.T) {
	want := map[StageStatus]string{
		StageOK: "ok", StageTimedOut: "timed-out",
		StageCanceled: "canceled", StageFailed: "failed",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("StageStatus(%d).String() = %q, want %q", s, s.String(), w)
		}
	}
	if StageStatus(9).String() == "" {
		t.Error("unknown status must still render")
	}
}

func TestStageProvenanceStrings(t *testing.T) {
	want := map[StageProvenance]string{
		StageRan: "ran", StageCached: "cached", StageSkipped: "skipped",
	}
	for p, w := range want {
		if p.String() != w {
			t.Errorf("StageProvenance(%d).String() = %q, want %q", p, p.String(), w)
		}
	}
	if StageProvenance(9).String() == "" {
		t.Error("unknown provenance must still render")
	}
}

// twoStage returns a two-stage DAG whose second stage consumes the first's
// artifact; calls counts body executions per stage.
func twoStage(calls *[2]atomic.Int32) []stage {
	return []stage{
		{name: "first",
			digest: func(h *artifact.Hasher) { h.Int(1) },
			run: func(ctx context.Context, in map[string]*artifact.Artifact) (any, int) {
				calls[0].Add(1)
				return 10, 1
			}},
		{name: "second", deps: []string{"first"},
			run: func(ctx context.Context, in map[string]*artifact.Artifact) (any, int) {
				calls[1].Add(1)
				return in["first"].Value.(int) * 2, 1
			}},
	}
}

func TestSchedulerMemoizesStages(t *testing.T) {
	store := artifact.NewStore(16)
	var calls [2]atomic.Int32
	cold, coldArts := newScheduler(context.Background(), 1, 0, time.Now(), nil, store, "fp").run(twoStage(&calls))
	for i, tm := range cold {
		if tm.Status != StageOK || tm.Provenance != StageRan {
			t.Fatalf("cold[%d] = %+v, want ok/ran", i, tm)
		}
	}
	warm, warmArts := newScheduler(context.Background(), 1, 0, time.Now(), nil, store, "fp").run(twoStage(&calls))
	for i, tm := range warm {
		if tm.Status != StageOK || tm.Provenance != StageCached {
			t.Fatalf("warm[%d] = %+v, want ok/cached", i, tm)
		}
		if tm.Modules != cold[i].Modules {
			t.Errorf("warm[%d] modules = %d, want %d", i, tm.Modules, cold[i].Modules)
		}
	}
	if calls[0].Load() != 1 || calls[1].Load() != 1 {
		t.Errorf("bodies ran %d/%d times, want 1/1", calls[0].Load(), calls[1].Load())
	}
	if warmArts[1].Value.(int) != coldArts[1].Value.(int) {
		t.Errorf("warm value %v != cold value %v", warmArts[1].Value, coldArts[1].Value)
	}

	// A different fingerprint misses the cache entirely.
	newScheduler(context.Background(), 1, 0, time.Now(), nil, store, "other").run(twoStage(&calls))
	if calls[0].Load() != 2 || calls[1].Load() != 2 {
		t.Errorf("different fingerprint reused artifacts: %d/%d body runs",
			calls[0].Load(), calls[1].Load())
	}
}

// TestSchedulerPartialArtifactsNotPublished: a stage that times out must
// not publish, and its dependent — which consumed partial input — must
// not publish either, so a rerun re-executes exactly those stages.
func TestSchedulerPartialArtifactsNotPublished(t *testing.T) {
	store := artifact.NewStore(16)
	var okRuns, slowRuns, downRuns atomic.Int32
	mk := func(slow bool) []stage {
		return []stage{
			{name: "ok", run: func(ctx context.Context, in map[string]*artifact.Artifact) (any, int) {
				okRuns.Add(1)
				return "done", 1
			}},
			{name: "slow", run: func(ctx context.Context, in map[string]*artifact.Artifact) (any, int) {
				slowRuns.Add(1)
				if slow {
					<-ctx.Done()
				}
				return "partial", 0
			}},
			{name: "down", deps: []string{"ok", "slow"},
				run: func(ctx context.Context, in map[string]*artifact.Artifact) (any, int) {
					downRuns.Add(1)
					return "derived", 0
				}},
		}
	}
	timings, _ := newScheduler(context.Background(), 1, 5*time.Millisecond, time.Now(), nil, store, "fp").run(mk(true))
	if timings[1].Status != StageTimedOut {
		t.Fatalf("slow stage = %+v, want timed-out", timings[1])
	}
	if timings[2].Status != StageOK || timings[2].Provenance != StageRan {
		t.Fatalf("down stage = %+v, want ok/ran on partial input", timings[2])
	}

	// Resume: only the interrupted stage and its dependent re-execute.
	timings, _ = newScheduler(context.Background(), 1, 0, time.Now(), nil, store, "fp").run(mk(false))
	if timings[0].Provenance != StageCached {
		t.Errorf("ok stage re-ran on resume: %+v", timings[0])
	}
	if timings[1].Provenance != StageRan || timings[2].Provenance != StageRan {
		t.Errorf("interrupted chain not re-executed: slow=%+v down=%+v", timings[1], timings[2])
	}
	if okRuns.Load() != 1 || slowRuns.Load() != 2 || downRuns.Load() != 2 {
		t.Errorf("body runs ok=%d slow=%d down=%d, want 1/2/2",
			okRuns.Load(), slowRuns.Load(), downRuns.Load())
	}

	// Third run: everything is canonical now, so everything caches.
	timings, _ = newScheduler(context.Background(), 1, 0, time.Now(), nil, store, "fp").run(mk(false))
	for i, tm := range timings {
		if tm.Provenance != StageCached {
			t.Errorf("third run stage %d = %+v, want cached", i, tm)
		}
	}
}

// TestSchedulerUncacheableStage: an uncacheable stage always runs and taints
// its dependents' cacheability, but not unrelated stages.
func TestSchedulerUncacheableStage(t *testing.T) {
	store := artifact.NewStore(16)
	mk := func() []stage {
		return []stage{
			{name: "pure", run: simple(func() int { return 1 })},
			{name: "opaque", uncacheable: true, run: simple(func() int { return 2 })},
			{name: "tainted", deps: []string{"opaque"}, run: simple(func() int { return 3 })},
		}
	}
	newScheduler(context.Background(), 1, 0, time.Now(), nil, store, "fp").run(mk())
	timings, _ := newScheduler(context.Background(), 1, 0, time.Now(), nil, store, "fp").run(mk())
	if timings[0].Provenance != StageCached {
		t.Errorf("pure stage = %+v, want cached", timings[0])
	}
	if timings[1].Provenance != StageRan {
		t.Errorf("uncacheable stage = %+v, want ran", timings[1])
	}
	if timings[2].Provenance != StageRan {
		t.Errorf("dependent of uncacheable stage = %+v, want ran", timings[2])
	}
}
