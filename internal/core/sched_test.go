package core

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netlistre/internal/gen"
	"netlistre/internal/netlist"
)

// buildTraceTestNetlist makes a small design that exercises several
// detector stages (adder, mux, counter).
func buildTraceTestNetlist() *netlist.Netlist {
	nl := netlist.New("tracetest")
	a := gen.InputWord(nl, "a", 6)
	b := gen.InputWord(nl, "b", 6)
	sum, _ := gen.RippleAdder(nl, a, b, netlist.Nil)
	gen.MarkOutputs(nl, "s", sum)
	sel := nl.AddInput("sel")
	gen.MarkOutputs(nl, "m", gen.Mux2Word(nl, sel, a, b))
	en := nl.AddInput("en")
	rst := nl.AddInput("rst")
	gen.Counter(nl, 5, en, rst, false)
	return nl
}

func TestSchedulerRespectsDependencies(t *testing.T) {
	var mu sync.Mutex
	var order []string
	record := func(name string) func(context.Context) int {
		return func(context.Context) int {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return 0
		}
	}
	stages := []stage{
		{name: "a", run: record("a")},
		{name: "b", run: record("b")},
		{name: "c", deps: []string{"a", "b"}, run: record("c")},
		{name: "d", deps: []string{"c"}, run: record("d")},
	}
	for _, workers := range []int{1, 4} {
		order = nil
		s := newScheduler(context.Background(), workers, 0, time.Now(), nil)
		timings := s.run(stages)
		if len(order) != 4 {
			t.Fatalf("workers=%d: ran %d stages, want 4", workers, len(order))
		}
		pos := map[string]int{}
		for i, n := range order {
			pos[n] = i
		}
		if pos["c"] < pos["a"] || pos["c"] < pos["b"] || pos["d"] < pos["c"] {
			t.Errorf("workers=%d: dependency order violated: %v", workers, order)
		}
		// Timings come back in declaration order regardless of execution
		// order.
		for i, want := range []string{"a", "b", "c", "d"} {
			if timings[i].Name != want {
				t.Errorf("workers=%d: timings[%d] = %q, want %q", workers, i, timings[i].Name, want)
			}
		}
	}
}

func TestSchedulerBoundsConcurrency(t *testing.T) {
	const workers = 2
	var inFlight, peak atomic.Int32
	busy := func(context.Context) int {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		inFlight.Add(-1)
		return 0
	}
	var stages []stage
	names := []string{"s0", "s1", "s2", "s3", "s4", "s5"}
	for _, n := range names {
		stages = append(stages, stage{name: n, run: busy})
	}
	newScheduler(context.Background(), workers, 0, time.Now(), nil).run(stages)
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds worker budget %d", p, workers)
	}
}

func TestSchedulerSerialOrderWithOneWorker(t *testing.T) {
	// With Workers=1 and no dependencies, stages run in declaration order.
	var mu sync.Mutex
	var order []string
	var stages []stage
	for _, n := range []string{"x", "y", "z"} {
		n := n
		stages = append(stages, stage{name: n, run: func(context.Context) int {
			mu.Lock()
			order = append(order, n)
			mu.Unlock()
			return 0
		}})
	}
	newScheduler(context.Background(), 1, 0, time.Now(), nil).run(stages)
	for i, want := range []string{"x", "y", "z"} {
		if order[i] != want {
			t.Fatalf("serial order = %v", order)
		}
	}
}

func TestSchedulerProgressEventsPaired(t *testing.T) {
	var events []StageEvent // Progress is documented as serialized.
	s := newScheduler(context.Background(), 4, 0, time.Now(), func(ev StageEvent) {
		events = append(events, ev)
	})
	s.run([]stage{
		{name: "a", run: func(context.Context) int { return 3 }},
		{name: "b", deps: []string{"a"}, run: func(context.Context) int { return 1 }},
	})
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4 (start+done per stage)", len(events))
	}
	open := map[string]bool{}
	for _, ev := range events {
		if !ev.Done {
			open[ev.Stage] = true
			continue
		}
		if !open[ev.Stage] {
			t.Errorf("done event for %q before its start", ev.Stage)
		}
		open[ev.Stage] = false
		if ev.Duration < 0 {
			t.Errorf("stage %q negative duration", ev.Stage)
		}
	}
	var doneMods int
	for _, ev := range events {
		if ev.Done {
			doneMods += ev.Modules
		}
	}
	if doneMods != 4 {
		t.Errorf("done events carried %d produced items, want 4", doneMods)
	}
}

func TestSchedulerInvalidDepPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("forward dependency did not panic")
		}
	}()
	newScheduler(context.Background(), 1, 0, time.Now(), nil).run([]stage{
		{name: "a", deps: []string{"b"}, run: func(context.Context) int { return 0 }},
		{name: "b", run: func(context.Context) int { return 0 }},
	})
}

func TestAnalyzeTraceShape(t *testing.T) {
	nl := buildTraceTestNetlist()
	rep := Analyze(nl, Options{SkipModMatch: true})
	wantStages := []string{"bitslice", "support", "lcg", "counters", "shift",
		"aggregate", "fuse", "words", "modmatch", "rams", "registers",
		"order", "extra", "overlap"}
	if len(rep.Trace) != len(wantStages) {
		t.Fatalf("trace has %d stages, want %d: %+v", len(rep.Trace), len(wantStages), rep.Trace)
	}
	for i, want := range wantStages {
		if rep.Trace[i].Name != want {
			t.Errorf("trace[%d] = %q, want %q", i, rep.Trace[i].Name, want)
		}
		if rep.Trace[i].Duration < 0 || rep.Trace[i].Start < 0 {
			t.Errorf("trace[%d] has negative timing: %+v", i, rep.Trace[i])
		}
	}
}

func TestSchedulerPanicBecomesFailedStage(t *testing.T) {
	s := newScheduler(context.Background(), 2, 0, time.Now(), nil)
	timings := s.run([]stage{
		{name: "good", run: func(context.Context) int { return 1 }},
		{name: "bad", run: func(context.Context) int { panic("kaput") }},
		{name: "after", deps: []string{"bad"}, run: func(context.Context) int { return 2 }},
	})
	if timings[0].Status != StageOK || timings[0].Modules != 1 {
		t.Errorf("good stage: %+v", timings[0])
	}
	if timings[1].Status != StageFailed {
		t.Errorf("bad stage status = %v, want failed", timings[1].Status)
	}
	if !strings.Contains(timings[1].Err, "kaput") || !strings.Contains(timings[1].Err, "goroutine") {
		t.Errorf("bad stage error missing panic value or stack: %q", timings[1].Err)
	}
	// The dependent of a failed stage still runs (graceful degradation).
	if timings[2].Status != StageOK || timings[2].Modules != 2 {
		t.Errorf("downstream stage did not run after failure: %+v", timings[2])
	}
}

func TestSchedulerCanceledContextSkipsBodies(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	timings := newScheduler(ctx, 1, 0, time.Now(), nil).run([]stage{
		{name: "a", run: func(context.Context) int { ran = true; return 7 }},
	})
	if ran {
		t.Error("stage body ran under an already-canceled context")
	}
	if timings[0].Status != StageCanceled || timings[0].Modules != 0 {
		t.Errorf("stage timing = %+v, want canceled with 0 modules", timings[0])
	}
}

func TestSchedulerStageTimeout(t *testing.T) {
	s := newScheduler(context.Background(), 1, 5*time.Millisecond, time.Now(), nil)
	timings := s.run([]stage{
		{name: "slow", run: func(ctx context.Context) int {
			<-ctx.Done() // cooperative: return when the stage budget expires
			return 3
		}},
		{name: "fast", run: func(context.Context) int { return 1 }},
	})
	if timings[0].Status != StageTimedOut {
		t.Errorf("slow stage status = %v, want timed-out", timings[0].Status)
	}
	if timings[0].Modules != 3 {
		t.Errorf("timed-out stage lost its partial result count: %+v", timings[0])
	}
	if timings[1].Status != StageOK {
		t.Errorf("fast stage status = %v, want ok", timings[1].Status)
	}
}

func TestStageStatusStrings(t *testing.T) {
	want := map[StageStatus]string{
		StageOK: "ok", StageTimedOut: "timed-out",
		StageCanceled: "canceled", StageFailed: "failed",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("StageStatus(%d).String() = %q, want %q", s, s.String(), w)
		}
	}
	if StageStatus(9).String() == "" {
		t.Error("unknown status must still render")
	}
}
