package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"netlistre/internal/netlist"
	"netlistre/internal/truth"
)

func TestTerminalIdentities(t *testing.T) {
	m := New(2)
	a := m.Var(0)
	if m.And(a, True) != a || m.And(a, False) != False {
		t.Error("And identities broken")
	}
	if m.Or(a, False) != a || m.Or(a, True) != True {
		t.Error("Or identities broken")
	}
	if m.Not(m.Not(a)) != a {
		t.Error("double negation broken")
	}
	if m.Xor(a, a) != False || m.Xnor(a, a) != True {
		t.Error("xor identities broken")
	}
}

func TestCanonicity(t *testing.T) {
	m := New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	// (a&b)|c  built two different ways must produce the same Ref.
	f1 := m.Or(m.And(a, b), c)
	f2 := m.Not(m.And(m.Not(m.And(a, b)), m.Not(c)))
	if f1 != f2 {
		t.Error("equivalent constructions yield different refs")
	}
}

// tableToBDD builds the BDD of a truth table for cross-validation.
func tableToBDD(m *Manager, tt truth.Table) Ref {
	f := False
	for r := uint(0); r < 1<<uint(tt.N); r++ {
		if !tt.Eval(r) {
			continue
		}
		cube := True
		for i := 0; i < tt.N; i++ {
			if r>>uint(i)&1 == 1 {
				cube = m.And(cube, m.Var(i))
			} else {
				cube = m.And(cube, m.NVar(i))
			}
		}
		f = m.Or(f, cube)
	}
	return f
}

// TestAgainstTruthTables is the core property: BDD operations agree with
// truth-table semantics on random functions.
func TestAgainstTruthTables(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5)
		ta := truth.Table{Bits: rng.Uint64() & truth.Mask(n), N: n}
		tb := truth.Table{Bits: rng.Uint64() & truth.Mask(n), N: n}
		m := New(n)
		fa, fb := tableToBDD(m, ta), tableToBDD(m, tb)
		checks := []struct {
			name string
			ref  Ref
			tt   truth.Table
		}{
			{"and", m.And(fa, fb), ta.And(tb)},
			{"or", m.Or(fa, fb), ta.Or(tb)},
			{"xor", m.Xor(fa, fb), ta.Xor(tb)},
			{"not", m.Not(fa), ta.Not()},
		}
		for _, c := range checks {
			for r := uint(0); r < 1<<uint(n); r++ {
				assign := make(map[int]bool)
				for i := 0; i < n; i++ {
					assign[i] = r>>uint(i)&1 == 1
				}
				if m.Eval(c.ref, assign) != c.tt.Eval(r) {
					t.Fatalf("trial %d: %s disagrees with truth table at row %d", trial, c.name, r)
				}
			}
		}
	}
}

func TestRestrict(t *testing.T) {
	m := New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	f := m.Or(m.And(a, b), c)
	if m.Restrict(f, 2, true) != True {
		t.Error("f|c=1 should be True")
	}
	if m.Restrict(f, 2, false) != m.And(a, b) {
		t.Error("f|c=0 should be a&b")
	}
	g := m.RestrictCube(f, map[int]bool{0: true, 2: false})
	if g != b {
		t.Error("f|a=1,c=0 should be b")
	}
}

func TestConstrainAgreesOnCareSet(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(4)
		tf := truth.Table{Bits: rng.Uint64() & truth.Mask(n), N: n}
		tc := truth.Table{Bits: rng.Uint64() & truth.Mask(n), N: n}
		if ok, _ := tc.IsConst(); ok {
			continue
		}
		m := New(n)
		f, c := tableToBDD(m, tf), tableToBDD(m, tc)
		fc := m.Constrain(f, c)
		for r := uint(0); r < 1<<uint(n); r++ {
			if !tc.Eval(r) {
				continue
			}
			assign := make(map[int]bool)
			for i := 0; i < n; i++ {
				assign[i] = r>>uint(i)&1 == 1
			}
			if m.Eval(fc, assign) != tf.Eval(r) {
				t.Fatalf("constrain disagrees with f on care set at row %d", r)
			}
		}
	}
}

func TestExists(t *testing.T) {
	m := New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	f := m.Or(m.And(a, b), m.And(m.Not(a), c))
	// ∃a. f = b | c
	g := m.Exists(f, m.Var(0))
	if g != m.Or(b, c) {
		t.Error("Exists over a is wrong")
	}
	// Quantifying everything yields True for satisfiable f.
	all := m.Cube([]int{0, 1, 2})
	if m.Exists(f, all) != True {
		t.Error("Exists over all vars of sat function should be True")
	}
	if m.Exists(False, all) != False {
		t.Error("Exists of False should be False")
	}
}

func TestSatCountAndAnySat(t *testing.T) {
	m := New(4)
	a, b := m.Var(0), m.Var(1)
	f := m.And(a, b) // 1/4 of the space: 4 of 16 assignments
	if got := m.SatCount(f); got != 4 {
		t.Errorf("SatCount = %v, want 4", got)
	}
	sat := m.AnySat(f)
	if sat == nil || !sat[0] || !sat[1] {
		t.Errorf("AnySat = %v", sat)
	}
	if m.AnySat(False) != nil {
		t.Error("AnySat(False) should be nil")
	}
	if got := m.SatCount(True); got != 16 {
		t.Errorf("SatCount(True) = %v, want 16", got)
	}
}

func TestSupport(t *testing.T) {
	m := New(5)
	f := m.Or(m.And(m.Var(1), m.Var(3)), m.Var(4))
	sup := m.Support(f)
	want := []int{1, 3, 4}
	if len(sup) != len(want) {
		t.Fatalf("support = %v, want %v", sup, want)
	}
	for i := range want {
		if sup[i] != want[i] {
			t.Fatalf("support = %v, want %v", sup, want)
		}
	}
}

func TestOverflowRecovery(t *testing.T) {
	m := New(40)
	m.Limit = 64
	err := m.Run(func() {
		f := False
		// A function designed to blow past 64 nodes.
		for i := 0; i < 20; i++ {
			f = m.Xor(f, m.And(m.Var(i), m.Var((i+7)%40)))
		}
	})
	if err != ErrOverflow {
		t.Errorf("err = %v, want ErrOverflow", err)
	}
}

func TestBuilderAgainstEval(t *testing.T) {
	// Build a small sequential circuit and verify Builder's BDDs against
	// netlist.Eval on all boundary assignments.
	nl := netlist.New("t")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	l := nl.AddLatch(a)
	g1 := nl.AddGate(netlist.Xor, a, b)
	g2 := nl.AddGate(netlist.And, g1, l)
	g3 := nl.AddGate(netlist.Nor, g2, b)

	m := New(0)
	bld := NewBuilder(m, nl)
	refs := map[netlist.ID]Ref{g1: bld.Build(g1), g2: bld.Build(g2), g3: bld.Build(g3)}

	for mask := 0; mask < 8; mask++ {
		assign := map[netlist.ID]bool{
			a: mask&1 != 0, b: mask&2 != 0, l: mask&4 != 0,
		}
		vals := nl.Eval(assign)
		bddAssign := make(map[int]bool)
		for id, v := range assign {
			if vi, ok := bld.HasVar(id); ok {
				bddAssign[vi] = v
			}
		}
		for id, r := range refs {
			if m.Eval(r, bddAssign) != vals[id] {
				t.Fatalf("node %d: BDD disagrees with Eval at mask %d", id, mask)
			}
		}
	}
}

func TestBuilderSharesVariables(t *testing.T) {
	nl := netlist.New("t")
	a := nl.AddInput("a")
	g1 := nl.AddGate(netlist.Not, a)
	g2 := nl.AddGate(netlist.Buf, a)
	m := New(0)
	bld := NewBuilder(m, nl)
	r1 := bld.Build(g1)
	r2 := bld.Build(g2)
	if m.Not(r1) != r2 {
		t.Error("cones over the same input do not share variables")
	}
}

func TestITEQuickProperty(t *testing.T) {
	// ITE(f,g,h) == (f&g) | (~f&h) on random 3-var functions.
	m := New(3)
	build := func(bits uint64) Ref {
		return tableToBDD(m, truth.Table{Bits: bits & truth.Mask(3), N: 3})
	}
	prop := func(fb, gb, hb uint64) bool {
		f, g, h := build(fb), build(gb), build(hb)
		lhs := m.ITE(f, g, h)
		rhs := m.Or(m.And(f, g), m.And(m.Not(f), h))
		return lhs == rhs
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
