package bdd

import "testing"

// BenchmarkAdderEquivalence builds two n-bit adder BDD vectors and checks
// equality — the canonical BDD stress pattern.
func BenchmarkAdderEquivalence(b *testing.B) {
	const n = 12
	for i := 0; i < b.N; i++ {
		m := New(2 * n)
		carry1, carry2 := False, False
		for j := 0; j < n; j++ {
			a, x := m.Var(j), m.Var(n+j)
			s1 := m.Xor(m.Xor(a, x), carry1)
			carry1 = m.Or(m.And(a, x), m.And(carry1, m.Xor(a, x)))
			s2 := m.Xor(a, m.Xor(x, carry2))
			carry2 = m.Or(m.Or(m.And(a, x), m.And(x, carry2)), m.And(carry2, a))
			if s1 != s2 {
				b.Fatal("adder sums differ")
			}
		}
		if carry1 != carry2 {
			b.Fatal("carries differ")
		}
	}
}

// BenchmarkConstrain measures the generalized cofactor on mid-size
// functions.
func BenchmarkConstrain(b *testing.B) {
	m := New(16)
	f, c := False, True
	for j := 0; j < 8; j++ {
		f = m.Xor(f, m.And(m.Var(j), m.Var(8+j)))
		c = m.And(c, m.Or(m.Var(j), m.NVar(8+j)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Constrain(f, c)
	}
}
