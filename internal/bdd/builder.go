package bdd

import (
	"netlistre/internal/netlist"
)

// Builder constructs BDDs for netlist nodes over a shared variable space.
// Boundary signals (primary inputs and latch outputs) are mapped to BDD
// variables on first use, so multiple cones built through the same Builder
// share variables — a requirement for the cross-latch equivalence checks in
// the counter and shift-register analyses.
type Builder struct {
	M  *Manager
	nl *netlist.Netlist

	varOf map[netlist.ID]int
	ids   []netlist.ID // inverse of varOf
	memo  map[netlist.ID]Ref
}

// NewBuilder returns a builder over the given netlist with an empty
// variable space.
func NewBuilder(m *Manager, nl *netlist.Netlist) *Builder {
	return &Builder{
		M:     m,
		nl:    nl,
		varOf: make(map[netlist.ID]int),
		memo:  make(map[netlist.ID]Ref),
	}
}

// VarOf returns the BDD variable index for boundary signal id, allocating
// one if needed.
func (b *Builder) VarOf(id netlist.ID) int {
	if v, ok := b.varOf[id]; ok {
		return v
	}
	v := b.M.AddVar()
	b.varOf[id] = v
	b.ids = append(b.ids, id)
	return v
}

// SignalOf returns the boundary signal mapped to BDD variable v.
func (b *Builder) SignalOf(v int) netlist.ID { return b.ids[v] }

// HasVar reports whether boundary signal id has been assigned a variable.
func (b *Builder) HasVar(id netlist.ID) (int, bool) {
	v, ok := b.varOf[id]
	return v, ok
}

// Build returns the BDD of node id's combinational function over the
// boundary signals of its cone. Results are memoized across calls.
func (b *Builder) Build(id netlist.ID) Ref {
	if r, ok := b.memo[id]; ok {
		return r
	}
	// Iterative post-order traversal to avoid deep recursion on long
	// chains (e.g. ripple carries).
	type frame struct {
		id       netlist.ID
		expanded bool
	}
	stack := []frame{{id, false}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		if _, done := b.memo[f.id]; done {
			stack = stack[:len(stack)-1]
			continue
		}
		node := b.nl.Node(f.id)
		if node.Kind.IsConeInput() {
			b.memo[f.id] = b.M.Var(b.VarOf(f.id))
			stack = stack[:len(stack)-1]
			continue
		}
		switch node.Kind {
		case netlist.Const0:
			b.memo[f.id] = False
			stack = stack[:len(stack)-1]
			continue
		case netlist.Const1:
			b.memo[f.id] = True
			stack = stack[:len(stack)-1]
			continue
		}
		if !f.expanded {
			stack[len(stack)-1].expanded = true
			for _, fi := range node.Fanin {
				if _, done := b.memo[fi]; !done {
					stack = append(stack, frame{fi, false})
				}
			}
			continue
		}
		stack = stack[:len(stack)-1]
		b.memo[f.id] = b.combine(node)
	}
	return b.memo[id]
}

func (b *Builder) combine(node *netlist.Node) Ref {
	m := b.M
	in := func(i int) Ref { return b.memo[node.Fanin[i]] }
	switch node.Kind {
	case netlist.Not:
		return m.Not(in(0))
	case netlist.Buf:
		return in(0)
	case netlist.And, netlist.Nand:
		r := True
		for i := range node.Fanin {
			r = m.And(r, in(i))
		}
		if node.Kind == netlist.Nand {
			r = m.Not(r)
		}
		return r
	case netlist.Or, netlist.Nor:
		r := False
		for i := range node.Fanin {
			r = m.Or(r, in(i))
		}
		if node.Kind == netlist.Nor {
			r = m.Not(r)
		}
		return r
	case netlist.Xor, netlist.Xnor:
		r := False
		for i := range node.Fanin {
			r = m.Xor(r, in(i))
		}
		if node.Kind == netlist.Xnor {
			r = m.Not(r)
		}
		return r
	case netlist.Lut:
		return lutRef(m, node.Mask, len(node.Fanin), in)
	}
	panic("bdd: cannot build " + node.Kind.String())
}

// lutRef builds the BDD of a k-input truth-table cell by Shannon recursion
// on the packed mask: mask rows are split on the last fanin's function and
// the halves recombined with an ite over already-built fanin BDDs.
func lutRef(m *Manager, mask uint64, k int, in func(int) Ref) Ref {
	if k == 0 {
		if mask&1 == 1 {
			return True
		}
		return False
	}
	half := uint(1) << uint(k-1)
	lo := lutRef(m, mask, k-1, in)
	hi := lutRef(m, mask>>half, k-1, in)
	s := in(k - 1)
	return m.Or(m.And(s, hi), m.And(m.Not(s), lo))
}
