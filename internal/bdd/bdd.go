// Package bdd implements reduced ordered binary decision diagrams, the
// functional-analysis workhorse of the paper's RAM, decoder, counter and
// shift-register checks (standing in for the CUDD package the authors use).
//
// The manager owns all nodes; functions are identified by Ref values, and
// two functions are equivalent iff their Refs are equal (canonicity of
// ROBDDs). There are no complement edges: the structure is kept simple in
// exchange for a slightly larger node count, which is irrelevant at the
// cone sizes these analyses inspect.
package bdd

import (
	"errors"
	"fmt"
	"math"
)

// Ref identifies a BDD node (and hence a Boolean function) within a
// Manager.
type Ref int32

// Terminal nodes.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	level  int32 // variable level; terminals use math.MaxInt32
	lo, hi Ref
}

type uniqueKey struct {
	level  int32
	lo, hi Ref
}

type iteKey struct{ f, g, h Ref }

// ErrOverflow is panicked (and recovered into an error by Run) when a
// manager exceeds its node limit.
var ErrOverflow = errors.New("bdd: node limit exceeded")

// Manager owns BDD nodes and operation caches.
type Manager struct {
	nodes   []node
	unique  map[uniqueKey]Ref
	iteC    map[iteKey]Ref
	exC     map[exKey]Ref
	conC    map[iteKey]Ref
	numVars int
	// Limit bounds the node table; 0 means DefaultLimit.
	Limit int
}

type exKey struct {
	f    Ref
	cube Ref
}

// DefaultLimit is the default node-table bound.
const DefaultLimit = 4 << 20

// New returns a manager with n variables at levels 0..n-1 (level order =
// variable order).
func New(n int) *Manager {
	m := &Manager{
		nodes:   make([]node, 2, 1024),
		unique:  make(map[uniqueKey]Ref),
		iteC:    make(map[iteKey]Ref),
		exC:     make(map[exKey]Ref),
		conC:    make(map[iteKey]Ref),
		numVars: n,
	}
	m.nodes[False] = node{level: math.MaxInt32}
	m.nodes[True] = node{level: math.MaxInt32}
	return m
}

// NumVars returns the number of variables in the manager.
func (m *Manager) NumVars() int { return m.numVars }

// AddVar appends a fresh variable at the bottom of the order and returns
// its index.
func (m *Manager) AddVar() int {
	m.numVars++
	return m.numVars - 1
}

// Size returns the number of live nodes (including terminals).
func (m *Manager) Size() int { return len(m.nodes) }

// Run executes f, converting an ErrOverflow panic into an error. Analyses
// wrap potentially explosive BDD constructions in Run.
func (m *Manager) Run(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if r == ErrOverflow {
				err = ErrOverflow
				return
			}
			panic(r)
		}
	}()
	f()
	return nil
}

func (m *Manager) mk(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	k := uniqueKey{level, lo, hi}
	if r, ok := m.unique[k]; ok {
		return r
	}
	limit := m.Limit
	if limit == 0 {
		limit = DefaultLimit
	}
	if len(m.nodes) >= limit {
		panic(ErrOverflow)
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, node{level: level, lo: lo, hi: hi})
	m.unique[k] = r
	return r
}

// Var returns the function of variable i.
func (m *Manager) Var(i int) Ref {
	if i < 0 || i >= m.numVars {
		panic(fmt.Sprintf("bdd: Var(%d) out of range [0,%d)", i, m.numVars))
	}
	return m.mk(int32(i), False, True)
}

// NVar returns the negation of variable i.
func (m *Manager) NVar(i int) Ref {
	if i < 0 || i >= m.numVars {
		panic(fmt.Sprintf("bdd: NVar(%d) out of range", i))
	}
	return m.mk(int32(i), True, False)
}

// Const returns the constant function v.
func (m *Manager) Const(v bool) Ref {
	if v {
		return True
	}
	return False
}

func (m *Manager) level(r Ref) int32 { return m.nodes[r].level }

// ITE computes if-then-else(f, g, h).
func (m *Manager) ITE(f, g, h Ref) Ref {
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	k := iteKey{f, g, h}
	if r, ok := m.iteC[k]; ok {
		return r
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	f0, f1 := m.cofs(f, top)
	g0, g1 := m.cofs(g, top)
	h0, h1 := m.cofs(h, top)
	lo := m.ITE(f0, g0, h0)
	hi := m.ITE(f1, g1, h1)
	r := m.mk(top, lo, hi)
	m.iteC[k] = r
	return r
}

// cofs returns the cofactors of r at the given level.
func (m *Manager) cofs(r Ref, level int32) (lo, hi Ref) {
	n := m.nodes[r]
	if n.level != level {
		return r, r
	}
	return n.lo, n.hi
}

// Not returns the complement of f.
func (m *Manager) Not(f Ref) Ref { return m.ITE(f, False, True) }

// And returns f AND g.
func (m *Manager) And(f, g Ref) Ref { return m.ITE(f, g, False) }

// Or returns f OR g.
func (m *Manager) Or(f, g Ref) Ref { return m.ITE(f, True, g) }

// Xor returns f XOR g.
func (m *Manager) Xor(f, g Ref) Ref { return m.ITE(f, m.Not(g), g) }

// Xnor returns f XNOR g.
func (m *Manager) Xnor(f, g Ref) Ref { return m.ITE(f, g, m.Not(g)) }

// Implies returns f -> g.
func (m *Manager) Implies(f, g Ref) Ref { return m.ITE(f, g, True) }

// Restrict fixes variable i to value v in f (the Shannon cofactor).
func (m *Manager) Restrict(f Ref, i int, v bool) Ref {
	lvl := int32(i)
	var rec func(r Ref) Ref
	memo := make(map[Ref]Ref)
	rec = func(r Ref) Ref {
		n := m.nodes[r]
		if n.level > lvl {
			return r // terminals and variables below i are unaffected
		}
		if got, ok := memo[r]; ok {
			return got
		}
		var out Ref
		if n.level == lvl {
			if v {
				out = n.hi
			} else {
				out = n.lo
			}
		} else {
			out = m.mk(n.level, rec(n.lo), rec(n.hi))
		}
		memo[r] = out
		return out
	}
	return rec(f)
}

// RestrictCube fixes a set of variables given as (index, value) pairs.
func (m *Manager) RestrictCube(f Ref, assign map[int]bool) Ref {
	for i, v := range assign {
		f = m.Restrict(f, i, v)
	}
	return f
}

// Constrain computes the Coudert-Madre generalized cofactor f|c: a function
// that agrees with f wherever c holds. It implements the paper's
// cofactor(f, g) for non-cube g (used by the counter check's h_i).
func (m *Manager) Constrain(f, c Ref) Ref {
	switch {
	case c == True, f == False, f == True:
		return f
	case c == False:
		return False // undefined domain; conventional result
	case f == c:
		return True
	}
	k := iteKey{f, c, -1}
	if r, ok := m.conC[k]; ok {
		return r
	}
	top := m.level(f)
	if l := m.level(c); l < top {
		top = l
	}
	c0, c1 := m.cofs(c, top)
	f0, f1 := m.cofs(f, top)
	var r Ref
	switch {
	case c1 == False:
		r = m.Constrain(f0, c0)
	case c0 == False:
		r = m.Constrain(f1, c1)
	default:
		r = m.mk(top, m.Constrain(f0, c0), m.Constrain(f1, c1))
	}
	m.conC[k] = r
	return r
}

// Exists existentially quantifies the variables of cube (a conjunction of
// positive variables) out of f.
func (m *Manager) Exists(f, cube Ref) Ref {
	if cube == True || f == False || f == True {
		return f
	}
	k := exKey{f, cube}
	if r, ok := m.exC[k]; ok {
		return r
	}
	fl, cl := m.level(f), m.level(cube)
	var r Ref
	switch {
	case cl < fl:
		r = m.Exists(f, m.nodes[cube].hi)
	case cl > fl:
		n := m.nodes[f]
		r = m.mk(n.level, m.Exists(n.lo, cube), m.Exists(n.hi, cube))
	default:
		n := m.nodes[f]
		rest := m.nodes[cube].hi
		lo := m.Exists(n.lo, rest)
		hi := m.Exists(n.hi, rest)
		r = m.Or(lo, hi)
	}
	m.exC[k] = r
	return r
}

// Cube builds the conjunction of the given variables (all positive).
func (m *Manager) Cube(vars []int) Ref {
	r := True
	for _, v := range vars {
		r = m.And(r, m.Var(v))
	}
	return r
}

// Eval evaluates f under a complete assignment (missing variables default
// to false).
func (m *Manager) Eval(f Ref, assign map[int]bool) bool {
	for f != True && f != False {
		n := m.nodes[f]
		if assign[int(n.level)] {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True
}

// AnySat returns a satisfying assignment of f (over the variables on the
// satisfying path only), or nil when f is unsatisfiable.
func (m *Manager) AnySat(f Ref) map[int]bool {
	if f == False {
		return nil
	}
	assign := make(map[int]bool)
	for f != True {
		n := m.nodes[f]
		if n.hi != False {
			assign[int(n.level)] = true
			f = n.hi
		} else {
			assign[int(n.level)] = false
			f = n.lo
		}
	}
	return assign
}

// SatCount returns the number of satisfying assignments of f over all
// numVars variables.
func (m *Manager) SatCount(f Ref) float64 {
	memo := make(map[Ref]float64)
	var rec func(r Ref, level int32) float64
	rec = func(r Ref, level int32) float64 {
		if r == False {
			return 0
		}
		if r == True {
			return math.Pow(2, float64(int32(m.numVars)-level))
		}
		n := m.nodes[r]
		key := r
		base, ok := memo[key]
		if !ok {
			base = rec(n.lo, n.level+1) + rec(n.hi, n.level+1)
			memo[key] = base
		}
		return base * math.Pow(2, float64(n.level-level))
	}
	return rec(f, 0)
}

// Support returns the sorted variable indices f depends on.
func (m *Manager) Support(f Ref) []int {
	seen := make(map[Ref]bool)
	vars := make(map[int32]bool)
	var rec func(r Ref)
	rec = func(r Ref) {
		if r == True || r == False || seen[r] {
			return
		}
		seen[r] = true
		n := m.nodes[r]
		vars[n.level] = true
		rec(n.lo)
		rec(n.hi)
	}
	rec(f)
	out := make([]int, 0, len(vars))
	for v := range vars {
		out = append(out, int(v))
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// NodeCount returns the number of distinct internal nodes reachable from f.
func (m *Manager) NodeCount(f Ref) int {
	seen := make(map[Ref]bool)
	stack := []Ref{f}
	count := 0
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if r == True || r == False || seen[r] {
			continue
		}
		seen[r] = true
		count++
		n := m.nodes[r]
		stack = append(stack, n.lo, n.hi)
	}
	return count
}
