package netlist

import (
	"strings"
	"testing"
)

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	f()
}

func TestBuilderPanics(t *testing.T) {
	n := New("p")
	a := n.AddInput("a")
	mustPanic(t, "AddGate with latch kind", func() { n.AddGate(Latch, a) })
	mustPanic(t, "Not with 2 fanins", func() { n.AddGate(Not, a, a) })
	mustPanic(t, "And with 1 fanin", func() { n.AddGate(And, a) })
	mustPanic(t, "out-of-range fanin", func() { n.AddGate(And, a, ID(99)) })
	l := n.AddLatch(a)
	mustPanic(t, "SetLatchD on non-latch", func() { n.SetLatchD(a, l) })
}

func TestCheckReportsArityErrors(t *testing.T) {
	n := New("c")
	a := n.AddInput("a")
	g := n.AddGate(And, a, a)
	// Corrupt arity directly.
	n.nodes[g].Fanin = n.nodes[g].Fanin[:1]
	if err := n.Check(); err == nil || !strings.Contains(err.Error(), "fanins") {
		t.Errorf("Check = %v", err)
	}
}

func TestNameOfAnonymous(t *testing.T) {
	n := New("x")
	a := n.AddInput("a")
	g := n.AddGate(Not, a)
	if got := n.NameOf(g); got != "n1" {
		t.Errorf("NameOf anonymous = %q", got)
	}
	if n.FindByName("missing") != Nil {
		t.Error("FindByName on missing should be Nil")
	}
}

func TestKindStringsAndPredicates(t *testing.T) {
	for k := Const0; k < numKinds; k++ {
		if k.String() == "" {
			t.Errorf("kind %d unnamed", k)
		}
	}
	if !And.IsGate() || Latch.IsGate() || Input.IsGate() {
		t.Error("IsGate wrong")
	}
	if !Const0.IsComb() || Input.IsComb() {
		t.Error("IsComb wrong")
	}
	if !Input.IsConeInput() || !Latch.IsConeInput() || Buf.IsConeInput() {
		t.Error("IsConeInput wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	n := New("orig")
	a := n.AddInput("a")
	g := n.AddGate(Not, a)
	n.MarkOutput("y", g)
	c := n.Clone()
	// Extending the clone must not disturb the original.
	c.AddGate(Buf, g)
	if n.Len() == c.Len() {
		t.Error("clone shares node storage")
	}
	if c.FindByName("a") != a {
		t.Error("clone lost name map")
	}
	if len(c.Outputs()) != 1 || c.Outputs()[0].Name != "y" {
		t.Error("clone lost outputs")
	}
}

func TestVerilogParseErrors(t *testing.T) {
	cases := []string{
		"module m (a); input a; xor g (a); endmodule",                  // gate arity
		"module m (a, y); input a; output y; endmodule",                // undriven output
		"module m (y); output y; and g (y, z, z); endmodule",           // undriven net
		"module m (a); input a; frob g (x, a); endmodule",              // unknown gate
		"module m (a, y); input a; output y; not g1 (y, y); endmodule", // cycle
	}
	for i, src := range cases {
		if _, err := ReadVerilog(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestVerilogComments(t *testing.T) {
	src := `
// top comment
module m (a, y);
  input a; // the input
  output y;
  not g0 (y, a); // inverter
endmodule
`
	nl, err := ReadVerilog(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if nl.Stats().Gates != 1 {
		t.Errorf("gates = %d", nl.Stats().Gates)
	}
}

func TestSanitize(t *testing.T) {
	if got := Legalize("a.b[3]"); strings.ContainsAny(got, ".[]") {
		t.Errorf("sanitize left specials: %q", got)
	}
	if Legalize("") != "_" {
		t.Error("empty name should sanitize to _")
	}
	if got := Legalize("3x"); got[0] == '3' {
		t.Errorf("leading digit survived: %q", got)
	}
}
