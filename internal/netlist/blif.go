package netlist

// BLIF (Berkeley Logic Interchange Format) reader and writer. BLIF is the
// lingua franca of academic logic-synthesis tools (SIS, ABC, mockturtle),
// so supporting it lets this library exchange netlists with the ecosystem
// the paper's techniques come from.
//
// Supported subset: .model/.inputs/.outputs/.names/.latch/.end, with
// multi-line cover tables for .names. Latches use the re (rising-edge)
// convention; clock and init fields are accepted and ignored (the analyses
// are clock-agnostic and assume zero initialization).

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteBLIF serializes the netlist in BLIF. Gates become .names cover
// tables; latches become .latch lines.
func (n *Netlist) WriteBLIF(w io.Writer) error {
	bw := bufio.NewWriter(w)
	name := n.Name
	if name == "" {
		name = "top"
	}
	netName := func(id ID) string {
		if nm := n.nodes[id].Name; nm != "" {
			return blifName(nm)
		}
		return fmt.Sprintf("n%d", id)
	}

	fmt.Fprintf(bw, ".model %s\n", blifName(name))
	fmt.Fprintf(bw, ".inputs")
	for _, in := range n.Inputs() {
		fmt.Fprintf(bw, " %s", netName(in))
	}
	fmt.Fprintln(bw)
	fmt.Fprintf(bw, ".outputs")
	seenOut := map[string]bool{}
	for _, p := range n.outputs {
		nm := blifName(p.Name)
		if !seenOut[nm] {
			seenOut[nm] = true
			fmt.Fprintf(bw, " %s", nm)
		}
	}
	fmt.Fprintln(bw)

	for i := range n.nodes {
		id := ID(i)
		node := &n.nodes[i]
		switch node.Kind {
		case Input:
		case Latch:
			fmt.Fprintf(bw, ".latch %s %s re clk 0\n", netName(node.Fanin[0]), netName(id))
		case Const0:
			fmt.Fprintf(bw, ".names %s\n", netName(id)) // empty cover = constant 0
		case Const1:
			fmt.Fprintf(bw, ".names %s\n1\n", netName(id))
		default:
			writeCover(bw, n, id, netName)
		}
	}
	for _, p := range n.outputs {
		nm := blifName(p.Name)
		if netName(p.Driver) != nm {
			// Alias buffer for the output name.
			fmt.Fprintf(bw, ".names %s %s\n1 1\n", netName(p.Driver), nm)
		}
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

// blifName returns a net name as a BLIF token. BLIF has no reserved words,
// so any whitespace-free printable name that cannot be mistaken for a
// directive, comment, or continuation passes through verbatim — which is
// what lets FPGA-style names (`LUT4`, `n$123`) round-trip byte-identically.
// Everything else falls back to Legalize.
func blifName(s string) string {
	if !escapable(s) || s[0] == '.' || strings.ContainsAny(s, "\\#") {
		return Legalize(s)
	}
	return s
}

// writeCover emits the .names cover of one gate. Lut covers carry a
// trailing "# lut" comment: BLIF cover tables cannot distinguish a
// truth-table cell from the gate computing the same function (an And cover
// and a Lut-mask-0b1000 cover are byte-identical), so the writer marks the
// distinction in a comment any other BLIF tool ignores, and ReadBLIF maps
// exactly the marked covers back to native Lut nodes. This keeps mixed
// gate/LUT netlists — and their fingerprints — exact across a round trip.
func writeCover(bw *bufio.Writer, n *Netlist, id ID, netName func(ID) string) {
	node := &n.nodes[id]
	fmt.Fprintf(bw, ".names")
	for _, f := range node.Fanin {
		fmt.Fprintf(bw, " %s", netName(f))
	}
	fmt.Fprintf(bw, " %s", netName(id))
	if node.Kind == Lut {
		fmt.Fprintf(bw, " # lut")
	}
	fmt.Fprintln(bw)
	k := len(node.Fanin)
	switch node.Kind {
	case Lut:
		// One fully-specified minterm row per set mask bit, ascending.
		for r := uint(0); r < 1<<uint(k); r++ {
			if node.Mask>>r&1 == 0 {
				continue
			}
			row := make([]byte, k)
			for j := 0; j < k; j++ {
				if r>>uint(j)&1 == 1 {
					row[j] = '1'
				} else {
					row[j] = '0'
				}
			}
			fmt.Fprintf(bw, "%s 1\n", row)
		}
	case Buf:
		fmt.Fprintln(bw, "1 1")
	case Not:
		fmt.Fprintln(bw, "0 1")
	case And:
		fmt.Fprintln(bw, strings.Repeat("1", k)+" 1")
	case Nand:
		// ~AND as a sum of single-zero cubes.
		for i := 0; i < k; i++ {
			row := make([]byte, k)
			for j := range row {
				row[j] = '-'
			}
			row[i] = '0'
			fmt.Fprintf(bw, "%s 1\n", row)
		}
	case Or:
		for i := 0; i < k; i++ {
			row := make([]byte, k)
			for j := range row {
				row[j] = '-'
			}
			row[i] = '1'
			fmt.Fprintf(bw, "%s 1\n", row)
		}
	case Nor:
		fmt.Fprintln(bw, strings.Repeat("0", k)+" 1")
	case Xor, Xnor:
		// Enumerate parity rows (gate arity in this IR is small).
		wantOdd := node.Kind == Xor
		for m := 0; m < 1<<uint(k); m++ {
			ones := 0
			row := make([]byte, k)
			for j := 0; j < k; j++ {
				if m>>uint(j)&1 == 1 {
					row[j] = '1'
					ones++
				} else {
					row[j] = '0'
				}
			}
			if (ones%2 == 1) == wantOdd {
				fmt.Fprintf(bw, "%s 1\n", row)
			}
		}
	}
}

// BLIFOptions configures ReadBLIFOpts.
type BLIFOptions struct {
	// Luts keeps arbitrary .names cover tables as native Lut nodes (up to
	// MaxLutInputs inputs) instead of decomposing them into primitive
	// gates — the natural reading for LUT-mapped FPGA netlists. Empty
	// covers stay constants and the single-cube `1 1` alias cover stays a
	// Buf, so alias structure (and therefore fingerprints) agree with the
	// structural-Verilog reader. Covers wider than MaxLutInputs fall back
	// to the gate decomposition.
	Luts bool
}

// ReadBLIF parses the BLIF subset emitted by WriteBLIF plus common
// variations (multi-cube .names, '-' don't-cares, single-output covers).
// Cover tables are converted to netlist gates: each cube becomes an AND of
// literals and cubes are ORed; covers listing output 0 are complemented.
func ReadBLIF(r io.Reader) (*Netlist, error) {
	return ReadBLIFOpts(r, BLIFOptions{})
}

// ReadBLIFOpts is ReadBLIF with explicit options.
func ReadBLIFOpts(r io.Reader, opt BLIFOptions) (*Netlist, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	type cover struct {
		inputs []string
		out    string
		cubes  []string // input-plane rows
		outVal byte     // '1' or '0'
		lut    bool     // .names carried the "# lut" marker
	}
	type latchDecl struct{ d, q string }

	var model string
	var inputs, outputs []string
	var covers []cover
	var latches []latchDecl
	var cur *cover

	flush := func() {
		if cur != nil {
			covers = append(covers, *cur)
			cur = nil
		}
	}

	// Join continuation lines ending in '\'. The "# lut" marker WriteBLIF
	// appends to Lut covers is consumed here, before general comment
	// stripping.
	type srcLine struct {
		text string
		lut  bool
	}
	var lines []srcLine
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		lut := false
		if i := strings.Index(line, "#"); i >= 0 {
			lut = strings.TrimSpace(line[i+1:]) == "lut"
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		for strings.HasSuffix(line, "\\") && sc.Scan() {
			line = strings.TrimSuffix(line, "\\") + " " + strings.TrimSpace(sc.Text())
		}
		lines = append(lines, srcLine{text: line, lut: lut})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	for _, ln := range lines {
		line := ln.text
		fields := strings.Fields(line)
		switch fields[0] {
		case ".model":
			if len(fields) > 1 {
				model = fields[1]
			}
		case ".inputs":
			flush()
			inputs = append(inputs, fields[1:]...)
		case ".outputs":
			flush()
			outputs = append(outputs, fields[1:]...)
		case ".latch":
			flush()
			if len(fields) < 3 {
				return nil, fmt.Errorf("blif: malformed .latch %q", line)
			}
			latches = append(latches, latchDecl{d: fields[1], q: fields[2]})
		case ".names":
			flush()
			if len(fields) < 2 {
				return nil, fmt.Errorf("blif: malformed .names %q", line)
			}
			cur = &cover{
				inputs: fields[1 : len(fields)-1],
				out:    fields[len(fields)-1],
				outVal: '1',
				lut:    ln.lut,
			}
		case ".end":
			flush()
		default:
			if fields[0][0] == '.' {
				return nil, fmt.Errorf("blif: unsupported construct %q", fields[0])
			}
			if cur == nil {
				return nil, fmt.Errorf("blif: cover row outside .names: %q", line)
			}
			switch len(fields) {
			case 1:
				if len(cur.inputs) != 0 {
					return nil, fmt.Errorf("blif: missing input plane in %q", line)
				}
				cur.cubes = append(cur.cubes, "")
				cur.outVal = fields[0][0]
			case 2:
				if len(fields[0]) != len(cur.inputs) {
					return nil, fmt.Errorf("blif: cube width mismatch in %q", line)
				}
				cur.cubes = append(cur.cubes, fields[0])
				cur.outVal = fields[1][0]
			default:
				return nil, fmt.Errorf("blif: malformed cover row %q", line)
			}
		}
	}
	flush()

	n := New(model)
	ids := make(map[string]ID)
	for _, in := range inputs {
		if _, dup := ids[in]; dup {
			return nil, fmt.Errorf("blif: duplicate input %q", in)
		}
		ids[in] = n.AddInput(in)
	}
	// Latches first (feedback), patched later.
	for _, l := range latches {
		if _, dup := ids[l.q]; dup {
			return nil, fmt.Errorf("blif: latch output %q already driven", l.q)
		}
		ids[l.q] = n.AddNamedLatch(l.q, Nil) // D patched after covers build
	}

	coverOf := make(map[string]*cover, len(covers))
	for i := range covers {
		c := &covers[i]
		if _, dup := coverOf[c.out]; dup {
			return nil, fmt.Errorf("blif: net %q driven by two covers", c.out)
		}
		coverOf[c.out] = c
	}

	var build func(net string, trail map[string]bool) (ID, error)
	build = func(net string, trail map[string]bool) (ID, error) {
		if id, ok := ids[net]; ok {
			return id, nil
		}
		if trail[net] {
			return Nil, fmt.Errorf("blif: combinational cycle through %q", net)
		}
		trail[net] = true
		defer delete(trail, net)
		c, ok := coverOf[net]
		if !ok {
			return Nil, fmt.Errorf("blif: net %q has no driver", net)
		}
		fan := make([]ID, len(c.inputs))
		for i, in := range c.inputs {
			fid, err := build(in, trail)
			if err != nil {
				return Nil, err
			}
			fan[i] = fid
		}
		id, err := buildCoverGate(n, c.cubes, c.outVal, fan, c.lut, opt)
		if err != nil {
			return Nil, fmt.Errorf("blif: cover for %q: %w", net, err)
		}
		n.SetName(id, net)
		ids[net] = id
		return id, nil
	}

	var nets []string
	for net := range coverOf {
		nets = append(nets, net)
	}
	sort.Strings(nets)
	for _, net := range nets {
		if _, err := build(net, map[string]bool{}); err != nil {
			return nil, err
		}
	}
	for _, l := range latches {
		d, err := build(l.d, map[string]bool{})
		if err != nil {
			return nil, err
		}
		n.SetLatchD(ids[l.q], d)
	}
	for _, out := range outputs {
		id, ok := ids[out]
		if !ok {
			return nil, fmt.Errorf("blif: output %q has no driver", out)
		}
		n.MarkOutput(out, id)
	}
	return n, nil
}

// buildCoverGate converts a BLIF cover into gates. Covers in the canonical
// shapes WriteBLIF emits (single all-1 cube, sum of single-literal cubes,
// full parity tables, ...) are recognized and rebuilt as the matching gate
// kind, so a BLIF round trip preserves the netlist structure — and its
// Fingerprint — instead of lowering Nand/Nor/Xor/Xnor to AND/OR/NOT
// networks. Anything else falls back to OR-of-cube-ANDs (complemented for
// output-0 covers).
func buildCoverGate(n *Netlist, cubes []string, outVal byte, fan []ID, lutMark bool, opt BLIFOptions) (ID, error) {
	if lutMark && len(fan) > 0 && len(fan) <= MaxLutInputs {
		// The writer marked this cover as a truth-table cell: rebuild it
		// exactly, mask and all, with no alias-cover exception (a marked
		// "1 1" cover is the Lut1 identity, not a Buf).
		mask, err := coverMask(cubes, outVal, len(fan))
		if err != nil {
			return Nil, err
		}
		return n.AddLut(mask, fan...), nil
	}
	if opt.Luts && len(fan) > 0 && len(fan) <= MaxLutInputs {
		if !(len(cubes) == 1 && cubes[0] == "1" && outVal == '1') {
			// Everything except the `1 1` alias/buffer cover becomes a
			// native LUT.
			mask, err := coverMask(cubes, outVal, len(fan))
			if err != nil {
				return Nil, err
			}
			return n.AddLut(mask, fan...), nil
		}
	}
	if len(cubes) == 0 {
		// Empty cover: constant 0 (or 1 for output-0 covers).
		return n.AddConst(outVal == '0'), nil
	}
	if kind, ok := recognizeCover(cubes, len(fan)); ok {
		if outVal == '0' {
			kind = complementKind[kind]
		}
		return n.AddGate(kind, fan...), nil
	}
	var terms []ID
	for _, cube := range cubes {
		var lits []ID
		for i := 0; i < len(cube); i++ {
			switch cube[i] {
			case '1':
				lits = append(lits, fan[i])
			case '0':
				lits = append(lits, n.AddGate(Not, fan[i]))
			case '-':
			default:
				return Nil, fmt.Errorf("bad cube char %q", cube[i])
			}
		}
		switch len(lits) {
		case 0:
			// Tautological cube: cover is constant 1.
			return n.AddConst(outVal == '1'), nil
		case 1:
			if len(cubes) == 1 && cube[strings.IndexAny(cube, "01")] == '1' && outVal == '1' {
				// A pure buffer cover: materialize a Buf gate so the cover
				// output gets its own node (naming the fanin directly would
				// clobber the fanin's name).
				return n.AddGate(Buf, lits[0]), nil
			}
			terms = append(terms, lits[0])
		default:
			terms = append(terms, n.AddGate(And, lits...))
		}
	}
	var sum ID
	if len(terms) == 1 {
		sum = terms[0]
	} else {
		sum = n.AddGate(Or, terms...)
	}
	if outVal == '0' {
		sum = n.AddGate(Not, sum)
	}
	return sum, nil
}

// coverMask evaluates a cover table into a packed truth-table mask over k
// inputs: each cube's '-' positions are expanded over all rows, set rows are
// ORed across cubes, and output-0 covers are complemented.
func coverMask(cubes []string, outVal byte, k int) (uint64, error) {
	var mask uint64
	for _, cube := range cubes {
		var base, dc uint
		for i := 0; i < len(cube); i++ {
			switch cube[i] {
			case '1':
				base |= 1 << uint(i)
			case '0':
			case '-':
				dc |= 1 << uint(i)
			default:
				return 0, fmt.Errorf("bad cube char %q", cube[i])
			}
		}
		for sub := dc; ; sub = (sub - 1) & dc {
			mask |= 1 << (base | sub)
			if sub == 0 {
				break
			}
		}
	}
	if outVal == '0' {
		full := ^uint64(0)
		if k < MaxLutInputs {
			full = (uint64(1) << (1 << uint(k))) - 1
		}
		mask = ^mask & full
	}
	return mask, nil
}

// complementKind maps each recognizable gate kind to its complement, used
// when a canonical cover lists the output-0 plane.
var complementKind = map[Kind]Kind{
	Buf: Not, Not: Buf,
	And: Nand, Nand: And,
	Or: Nor, Nor: Or,
	Xor: Xnor, Xnor: Xor,
}

// recognizeCover reports the gate kind a cover computes (for an output-1
// plane) when the cube set matches one of the canonical shapes WriteBLIF
// emits. Recognition is function-exact: it only fires when the cover is
// semantically identical to the returned kind over all k inputs.
func recognizeCover(cubes []string, k int) (Kind, bool) {
	if k == 0 {
		return 0, false
	}
	if k == 1 {
		if len(cubes) == 1 {
			switch cubes[0] {
			case "1":
				return Buf, true
			case "0":
				return Not, true
			}
		}
		return 0, false
	}
	if len(cubes) == 1 {
		switch cubes[0] {
		case strings.Repeat("1", k):
			return And, true
		case strings.Repeat("0", k):
			return Nor, true
		}
		return 0, false
	}
	// Sum of k single-literal cubes, one per input position: OR (positive
	// literals) or NAND (negative literals, by De Morgan).
	if len(cubes) == k {
		single := func(lit byte) bool {
			seen := make([]bool, k)
			for _, c := range cubes {
				pos := -1
				for i := 0; i < k; i++ {
					switch c[i] {
					case lit:
						if pos >= 0 {
							return false
						}
						pos = i
					case '-':
					default:
						return false
					}
				}
				if pos < 0 || seen[pos] {
					return false
				}
				seen[pos] = true
			}
			return true
		}
		if single('1') {
			return Or, true
		}
		if single('0') {
			return Nand, true
		}
	}
	// Exhaustive parity table: 2^(k-1) distinct fully-specified rows of
	// uniform parity enumerate exactly the odd (XOR) or even (XNOR)
	// minterms.
	if k <= 16 && len(cubes) == 1<<uint(k-1) {
		parity := -1
		seen := make(map[string]bool, len(cubes))
		for _, c := range cubes {
			ones := 0
			for i := 0; i < k; i++ {
				switch c[i] {
				case '1':
					ones++
				case '0':
				default:
					return 0, false
				}
			}
			if seen[c] {
				return 0, false
			}
			seen[c] = true
			if p := ones & 1; parity == -1 {
				parity = p
			} else if parity != p {
				return 0, false
			}
		}
		if parity == 1 {
			return Xor, true
		}
		return Xnor, true
	}
	return 0, false
}
