package netlist

import (
	"bytes"
	"strings"
	"testing"
)

func TestLegalize(t *testing.T) {
	cases := map[string]string{
		"a":      "a",
		"abc_3":  "abc_3",
		"module": "module_",
		"wire":   "wire_",
		"and":    "and_",
		"1abc":   "_1abc",
		"a.b[3]": "a_b_3_",
		"":       "_",
		"3":      "_3",
	}
	for in, want := range cases {
		if got := Legalize(in); got != want {
			t.Errorf("Legalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNamerUniquifies(t *testing.T) {
	nm := NewNamer()
	nm.Reserve("n5")
	if got := nm.Claim("n5"); got != "n5_" {
		t.Errorf("Claim over reserved = %q, want n5_", got)
	}
	if got := nm.Claim("module"); got != "module_" {
		t.Errorf("Claim(module) = %q", got)
	}
	if got := nm.Claim("module_"); got != "module__" {
		t.Errorf("Claim(module_) = %q, want module__", got)
	}
}

// TestWriteVerilogLegalizesReservedNames is the regression test for the
// name-legalization bug: nets named after Verilog keywords or starting
// with a digit used to be emitted verbatim, producing files WriteVerilog's
// own reader (or any other Verilog tool) rejects. Such names are now
// emitted as backslash-escaped identifiers, so the round trip preserves
// them losslessly instead of mangling them.
func TestWriteVerilogLegalizesReservedNames(t *testing.T) {
	n := New("top")
	a := n.AddInput("module")
	b := n.AddInput("1abc")
	g := n.AddNamedGate("wire", And, a, b)
	n.MarkOutput("wire", g)

	var buf bytes.Buffer
	if err := n.WriteVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, bad := range []string{" module;", " wire;", " 1abc"} {
		if strings.Contains(text, bad) {
			t.Fatalf("emitted illegal identifier %q:\n%s", bad, text)
		}
	}
	back, err := ReadVerilog(&buf)
	if err != nil {
		t.Fatalf("round trip rejected legalized output: %v\n%s", err, text)
	}
	if len(back.Inputs()) != 2 || len(back.Outputs()) != 1 {
		t.Fatalf("round trip lost structure: %d inputs, %d outputs",
			len(back.Inputs()), len(back.Outputs()))
	}
	if back.FindByName("module") == Nil || back.FindByName("1abc") == Nil {
		t.Fatalf("escaped names missing from round trip:\n%s", text)
	}
	if back.Fingerprint() != n.Fingerprint() {
		t.Fatalf("escaped-identifier round trip changed fingerprint:\n%s", text)
	}

	var blif bytes.Buffer
	if err := n.WriteBLIF(&blif); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBLIF(&blif); err != nil {
		t.Fatalf("BLIF round trip rejected legalized output: %v", err)
	}
}
