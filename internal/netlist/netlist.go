// Package netlist provides the gate-level netlist intermediate
// representation used by every analysis in this repository.
//
// A netlist is a flat "sea of gates": primary inputs, single-output
// combinational gates, and latches (D flip-flops). There is no module
// hierarchy — recovering structure from this representation is exactly the
// reverse-engineering problem the paper addresses. Nodes are identified by
// dense integer IDs; a node's output signal is identified with the node
// itself, which is valid because every primitive has exactly one output.
package netlist

import (
	"errors"
	"fmt"
	"sort"
)

// ID identifies a node in a Netlist. IDs are dense and start at 0.
type ID int32

// Nil is the invalid node ID.
const Nil ID = -1

// Kind enumerates the primitive node types.
type Kind uint8

// Primitive node kinds. And/Or/Nand/Nor/Xor/Xnor accept two or more fanins;
// Not and Buf accept exactly one; Latch has exactly one fanin (its D input).
const (
	Const0 Kind = iota
	Const1
	Input
	And
	Or
	Nand
	Nor
	Xor
	Xnor
	Not
	Buf
	Latch
	// Lut is a k-input single-output truth-table cell (k <= MaxLutInputs).
	// Its function is the packed Node.Mask: bit i of the mask is the output
	// for the input assignment where Fanin[j] carries bit j of i. Lut is
	// appended after Latch so the numeric values of the primitive-gate kinds
	// (which are baked into serialized fingerprints) stay stable.
	Lut
	numKinds
)

// MaxLutInputs is the largest LUT arity the packed uint64 mask can hold.
const MaxLutInputs = 6

var kindNames = [numKinds]string{
	"const0", "const1", "input", "and", "or", "nand", "nor", "xor", "xnor",
	"not", "buf", "dff", "lut",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsGate reports whether k is a combinational gate (excludes inputs,
// constants and latches). Gates are the unit of the paper's coverage metric.
func (k Kind) IsGate() bool { return k >= And && k <= Buf || k == Lut }

// IsComb reports whether a node of kind k computes a combinational function
// of its fanins (gates and constants, but not inputs or latches).
func (k Kind) IsComb() bool { return k.IsGate() || k == Const0 || k == Const1 }

// IsConeInput reports whether a node of kind k terminates combinational
// fan-in cone traversal: primary inputs and latch outputs.
func (k Kind) IsConeInput() bool { return k == Input || k == Latch }

// Node is a single primitive in the netlist.
type Node struct {
	Kind  Kind
	Name  string // optional; always set for inputs
	Fanin []ID
	// Mask is the packed truth table of a Lut node (zero for every other
	// kind): bit i is the output value for the fanin assignment encoded by
	// the bits of i, with Fanin[0] the least significant variable. Only the
	// low 2^len(Fanin) bits are meaningful and the rest must be zero.
	Mask uint64
}

// UnaryKind reports the unary primitive a node behaves as: Not and Buf
// themselves, plus 1-input LUTs carrying the inverter (0b01) or identity
// (0b10) mask. Structural passes that trace through inverter/buffer chains
// use it so LUT-mapped netlists traverse the same way as gate-level ones.
func (n *Node) UnaryKind() (Kind, bool) {
	switch {
	case n.Kind == Not || n.Kind == Buf:
		return n.Kind, true
	case n.Kind == Lut && len(n.Fanin) == 1:
		switch n.Mask {
		case 1:
			return Not, true
		case 2:
			return Buf, true
		}
	}
	return n.Kind, false
}

// Netlist is a flat gate-level circuit.
//
// The zero value is an empty netlist ready for use; use the Add* methods to
// populate it. Netlists are not safe for concurrent mutation.
type Netlist struct {
	Name string

	nodes   []Node
	fanout  [][]ID
	outputs []Port
	byName  map[string]ID
}

// Port names a primary output and the node driving it.
type Port struct {
	Name   string
	Driver ID
}

// New returns an empty netlist with the given name.
func New(name string) *Netlist {
	return &Netlist{Name: name, byName: make(map[string]ID)}
}

// Len returns the number of nodes in the netlist.
func (n *Netlist) Len() int { return len(n.nodes) }

// Node returns the node with the given ID. The returned pointer stays valid
// until the next Add* call.
func (n *Netlist) Node(id ID) *Node { return &n.nodes[id] }

// Kind returns the kind of node id.
func (n *Netlist) Kind(id ID) Kind { return n.nodes[id].Kind }

// Fanin returns the fanin list of node id. The slice must not be mutated.
func (n *Netlist) Fanin(id ID) []ID { return n.nodes[id].Fanin }

// Fanout returns the IDs of the nodes that have id as a fanin. The slice
// must not be mutated.
func (n *Netlist) Fanout(id ID) []ID { return n.fanout[id] }

// NameOf returns the name of node id, or a synthesized placeholder when the
// node is anonymous.
func (n *Netlist) NameOf(id ID) string {
	if name := n.nodes[id].Name; name != "" {
		return name
	}
	return fmt.Sprintf("n%d", id)
}

// FindByName returns the node with the given name, or Nil.
func (n *Netlist) FindByName(name string) ID {
	if id, ok := n.byName[name]; ok {
		return id
	}
	return Nil
}

func (n *Netlist) add(node Node) ID {
	id := ID(len(n.nodes))
	n.nodes = append(n.nodes, node)
	n.fanout = append(n.fanout, nil)
	for _, f := range node.Fanin {
		if f == Nil {
			// Only a latch D placeholder awaiting SetLatchD (readers and
			// rewriters use it for forward references); Validate flags any
			// Nil fanin that survives construction.
			continue
		}
		n.fanout[f] = append(n.fanout[f], id)
	}
	if node.Name != "" {
		if n.byName == nil {
			n.byName = make(map[string]ID)
		}
		n.byName[node.Name] = id
	}
	return id
}

// AddInput adds a named primary input.
func (n *Netlist) AddInput(name string) ID {
	return n.add(Node{Kind: Input, Name: name})
}

// AddConst adds a constant node with the given value.
func (n *Netlist) AddConst(v bool) ID {
	k := Const0
	if v {
		k = Const1
	}
	return n.add(Node{Kind: k})
}

// AddGate adds a combinational gate. It panics if the kind or arity is
// invalid: this is a programming error in the circuit builder, not a data
// error.
func (n *Netlist) AddGate(kind Kind, fanin ...ID) ID {
	switch {
	case !kind.IsGate():
		panic(fmt.Sprintf("netlist: AddGate with non-gate kind %v", kind))
	case kind == Lut:
		panic("netlist: AddGate with Lut kind; use AddLut to supply the mask")
	case kind == Not || kind == Buf:
		if len(fanin) != 1 {
			panic(fmt.Sprintf("netlist: %v requires 1 fanin, got %d", kind, len(fanin)))
		}
	case len(fanin) < 2:
		panic(fmt.Sprintf("netlist: %v requires >=2 fanins, got %d", kind, len(fanin)))
	}
	for _, f := range fanin {
		if f < 0 || int(f) >= len(n.nodes) {
			panic(fmt.Sprintf("netlist: fanin %d out of range", f))
		}
	}
	return n.add(Node{Kind: kind, Fanin: append([]ID(nil), fanin...)})
}

// AddNamedGate is AddGate with an explicit output net name.
func (n *Netlist) AddNamedGate(name string, kind Kind, fanin ...ID) ID {
	id := n.AddGate(kind, fanin...)
	n.SetName(id, name)
	return id
}

// AddLut adds a k-input truth-table cell (1 <= k <= MaxLutInputs). Bit i of
// mask is the output for the fanin assignment encoded by the bits of i, with
// fanin[0] the least significant variable. It panics on arity violations and
// on mask bits beyond 2^k, mirroring AddGate's contract.
func (n *Netlist) AddLut(mask uint64, fanin ...ID) ID {
	k := len(fanin)
	if k < 1 || k > MaxLutInputs {
		panic(fmt.Sprintf("netlist: lut requires 1..%d fanins, got %d", MaxLutInputs, k))
	}
	if k < MaxLutInputs && mask>>(1<<uint(k)) != 0 {
		panic(fmt.Sprintf("netlist: lut mask %#x has bits beyond 2^%d rows", mask, k))
	}
	for _, f := range fanin {
		if f < 0 || int(f) >= len(n.nodes) {
			panic(fmt.Sprintf("netlist: fanin %d out of range", f))
		}
	}
	return n.add(Node{Kind: Lut, Fanin: append([]ID(nil), fanin...), Mask: mask})
}

// AddNamedLut is AddLut with an explicit output net name.
func (n *Netlist) AddNamedLut(name string, mask uint64, fanin ...ID) ID {
	id := n.AddLut(mask, fanin...)
	n.SetName(id, name)
	return id
}

// AddGateLike adds a combinational gate with the kind — and, for Lut nodes,
// the mask — of the template node over the given fanins. It is the building
// block for passes that rebuild netlists node by node (simplify, partition
// extraction, mutation) and must work for every gate kind.
func (n *Netlist) AddGateLike(tmpl *Node, fanin ...ID) ID {
	if tmpl.Kind == Lut {
		return n.AddLut(tmpl.Mask, fanin...)
	}
	return n.AddGate(tmpl.Kind, fanin...)
}

// AddLatch adds a D flip-flop whose D input is d.
func (n *Netlist) AddLatch(d ID) ID {
	return n.add(Node{Kind: Latch, Fanin: []ID{d}})
}

// AddNamedLatch adds a named D flip-flop.
func (n *Netlist) AddNamedLatch(name string, d ID) ID {
	id := n.AddLatch(d)
	n.SetName(id, name)
	return id
}

// SetName assigns a name to node id.
func (n *Netlist) SetName(id ID, name string) {
	n.nodes[id].Name = name
	if n.byName == nil {
		n.byName = make(map[string]ID)
	}
	n.byName[name] = id
}

// SetLatchD rewires the D input of latch id. It is the only permitted
// mutation of an existing node and exists so builders can create latches
// before the logic that feeds them (e.g. for feedback paths).
func (n *Netlist) SetLatchD(id, d ID) {
	if n.nodes[id].Kind != Latch {
		panic("netlist: SetLatchD on non-latch")
	}
	old := n.nodes[id].Fanin
	if len(old) == 1 && old[0] != Nil {
		n.removeFanout(old[0], id)
	}
	n.nodes[id].Fanin = []ID{d}
	n.fanout[d] = append(n.fanout[d], id)
}

func (n *Netlist) removeFanout(from, to ID) {
	fo := n.fanout[from]
	for i, x := range fo {
		if x == to {
			n.fanout[from] = append(fo[:i], fo[i+1:]...)
			return
		}
	}
}

// MarkOutput declares node id to be a primary output with the given name.
func (n *Netlist) MarkOutput(name string, id ID) {
	n.outputs = append(n.outputs, Port{Name: name, Driver: id})
}

// Outputs returns the primary output ports in declaration order.
func (n *Netlist) Outputs() []Port { return n.outputs }

// Inputs returns the IDs of all primary inputs in creation order.
func (n *Netlist) Inputs() []ID {
	var ids []ID
	for i, node := range n.nodes {
		if node.Kind == Input {
			ids = append(ids, ID(i))
		}
	}
	return ids
}

// Latches returns the IDs of all latches in creation order.
func (n *Netlist) Latches() []ID {
	var ids []ID
	for i, node := range n.nodes {
		if node.Kind == Latch {
			ids = append(ids, ID(i))
		}
	}
	return ids
}

// Gates returns the IDs of all combinational gates in creation order.
func (n *Netlist) Gates() []ID {
	var ids []ID
	for i, node := range n.nodes {
		if node.Kind.IsGate() {
			ids = append(ids, ID(i))
		}
	}
	return ids
}

// Stats summarizes a netlist for reporting (Table 2 of the paper).
type Stats struct {
	Inputs  int
	Outputs int
	Gates   int
	Latches int
}

// Stats returns the inventory counts of the netlist.
func (n *Netlist) Stats() Stats {
	var s Stats
	for _, node := range n.nodes {
		switch {
		case node.Kind == Input:
			s.Inputs++
		case node.Kind == Latch:
			s.Latches++
		case node.Kind.IsGate():
			s.Gates++
		}
	}
	s.Outputs = len(n.outputs)
	return s
}

// Check validates internal consistency and returns an error describing the
// first problem found. It is intended for tests and after deserialization.
func (n *Netlist) Check() error {
	if ps := n.problems(1); len(ps) > 0 {
		return ps[0]
	}
	return nil
}

// Validate reports every structural problem in the netlist joined into one
// error (errors.Join), or nil when the netlist is well-formed. It catches
// dangling fanins (Nil or out-of-range references), wrong gate arities,
// latches with an unset D input, dangling output drivers, and combinational
// cycles. Analyze calls it before running the portfolio so malformed inputs
// yield a report with a validation error instead of a panic deep inside an
// analysis.
func (n *Netlist) Validate() error {
	const maxProblems = 64 // enough to be useful, bounded to stay readable
	ps := n.problems(maxProblems)
	if len(ps) == 0 {
		return nil
	}
	return errors.Join(ps...)
}

// problems collects up to limit structural problems. The combinational-cycle
// check runs only when the node-local checks pass: cycle detection walks
// fanins and must not chase dangling references.
func (n *Netlist) problems(limit int) []error {
	var ps []error
	add := func(err error) bool {
		ps = append(ps, err)
		return len(ps) >= limit
	}
	for i, node := range n.nodes {
		id := ID(i)
		switch node.Kind {
		case Input, Const0, Const1:
			if len(node.Fanin) != 0 {
				if add(fmt.Errorf("node %d (%v) has %d fanins, want 0", id, node.Kind, len(node.Fanin))) {
					return ps
				}
			}
		case Not, Buf, Latch:
			if len(node.Fanin) != 1 {
				if node.Kind == Latch {
					if add(fmt.Errorf("latch %d (%s) has unset D input", id, n.NameOf(id))) {
						return ps
					}
				} else if add(fmt.Errorf("node %d (%v) has %d fanins, want 1", id, node.Kind, len(node.Fanin))) {
					return ps
				}
			}
		case And, Or, Nand, Nor, Xor, Xnor:
			if len(node.Fanin) < 2 {
				if add(fmt.Errorf("node %d (%v) has %d fanins, want >=2", id, node.Kind, len(node.Fanin))) {
					return ps
				}
			}
		case Lut:
			k := len(node.Fanin)
			if k < 1 || k > MaxLutInputs {
				if add(fmt.Errorf("node %d (lut) has %d fanins, want 1..%d", id, k, MaxLutInputs)) {
					return ps
				}
			} else if k < MaxLutInputs && node.Mask>>(1<<uint(k)) != 0 {
				if add(fmt.Errorf("node %d (lut) mask %#x has bits beyond 2^%d rows", id, node.Mask, k)) {
					return ps
				}
			}
		default:
			if add(fmt.Errorf("node %d has invalid kind %d", id, node.Kind)) {
				return ps
			}
		}
		if node.Kind != Lut && node.Mask != 0 {
			if add(fmt.Errorf("node %d (%v) has non-zero lut mask %#x", id, node.Kind, node.Mask)) {
				return ps
			}
		}
		for _, f := range node.Fanin {
			if f < 0 || int(f) >= len(n.nodes) {
				if f == Nil && node.Kind == Latch {
					if add(fmt.Errorf("latch %d (%s) has unset D input", id, n.NameOf(id))) {
						return ps
					}
				} else if add(fmt.Errorf("node %d has dangling fanin %d", id, f)) {
					return ps
				}
			}
		}
	}
	for _, p := range n.outputs {
		if p.Driver < 0 || int(p.Driver) >= len(n.nodes) {
			if add(fmt.Errorf("output %q has dangling driver %d", p.Name, p.Driver)) {
				return ps
			}
		}
	}
	if len(ps) > 0 {
		return ps // fanins unsafe to traverse; skip the cycle check
	}
	if cyc := n.findCombCycle(); cyc != Nil {
		add(fmt.Errorf("combinational cycle through node %d (%s)", cyc, n.NameOf(cyc)))
	}
	return ps
}

// findCombCycle returns a node on a combinational cycle, or Nil. Latches
// break cycles.
func (n *Netlist) findCombCycle() ID {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, len(n.nodes))
	// Iterative DFS to avoid stack overflow on deep netlists.
	type frame struct {
		id  ID
		idx int
	}
	var stack []frame
	for start := range n.nodes {
		if color[start] != white || n.nodes[start].Kind == Latch {
			continue
		}
		stack = append(stack[:0], frame{ID(start), 0})
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			node := &n.nodes[f.id]
			if node.Kind == Latch || f.idx >= len(node.Fanin) {
				color[f.id] = black
				stack = stack[:len(stack)-1]
				continue
			}
			child := node.Fanin[f.idx]
			f.idx++
			if n.nodes[child].Kind == Latch {
				continue
			}
			switch color[child] {
			case white:
				color[child] = gray
				stack = append(stack, frame{child, 0})
			case gray:
				return child
			}
		}
	}
	return Nil
}

// Clone returns a deep copy of the netlist with identical node IDs. It is
// used by analyses that append scratch logic (e.g. QBF reference modules)
// without disturbing the original.
func (n *Netlist) Clone() *Netlist {
	c := New(n.Name)
	c.nodes = make([]Node, len(n.nodes))
	for i, node := range n.nodes {
		c.nodes[i] = Node{Kind: node.Kind, Name: node.Name,
			Fanin: append([]ID(nil), node.Fanin...), Mask: node.Mask}
	}
	c.fanout = make([][]ID, len(n.fanout))
	for i, fo := range n.fanout {
		c.fanout[i] = append([]ID(nil), fo...)
	}
	c.outputs = append([]Port(nil), n.outputs...)
	for name, id := range n.byName {
		c.byName[name] = id
	}
	return c
}

// SortedIDs returns ids sorted ascending (a convenience for deterministic
// iteration over sets of nodes).
func SortedIDs(ids []ID) []ID {
	out := append([]ID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
