package netlist_test

// Unit tests for the structural differ. The heavy golden gates (exact
// trojan recovery on the labeled articles, metamorphic invariance) live in
// the root package's diff tests against the public API; these cover the
// matcher's primitive behaviors on small hand-built netlists plus a quick
// trojan-article sanity pass.

import (
	"sort"
	"testing"

	"netlistre/internal/gen"
	"netlistre/internal/netlist"
)

// buildPair builds two structurally identical netlists with a small
// spliced difference in the second when trojaned is set: an extra And gate
// inserted between an adder-ish chain and a latch.
func buildChain(trojaned bool) *netlist.Netlist {
	nl := netlist.New("chain")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	en := nl.AddInput("en")
	x := nl.AddGate(netlist.Xor, a, b)
	y := nl.AddGate(netlist.And, x, en)
	src := y
	if trojaned {
		trigger := nl.AddGate(netlist.And, a, en)
		kill := nl.AddGate(netlist.Not, trigger)
		src = nl.AddGate(netlist.And, y, kill)
	}
	q := nl.AddLatch(src)
	out := nl.AddGate(netlist.Or, q, b)
	nl.MarkOutput("out", out)
	if err := nl.Validate(); err != nil {
		panic(err)
	}
	return nl
}

func TestDiffSelfIsEmpty(t *testing.T) {
	g := buildChain(false)
	s := buildChain(false)
	d := netlist.DiffNetlists(g, s, netlist.DiffOptions{})
	if !d.Identical() {
		t.Fatalf("self-diff not empty: %+v", d)
	}
	if d.Matched == 0 {
		t.Fatalf("self-diff matched nothing")
	}
}

func TestDiffFindsSplicedGates(t *testing.T) {
	g := buildChain(false)
	s := buildChain(true)
	d := netlist.DiffNetlists(g, s, netlist.DiffOptions{})
	if len(d.Removed) != 0 || len(d.Retyped) != 0 {
		t.Fatalf("unexpected removed/retyped: %+v", d)
	}
	// The three injected gates: And(a,en), Not, And(y,kill).
	if len(d.Added) != 3 {
		t.Fatalf("want 3 added gates, got %v", d.Added)
	}
}

func TestDiffRetypedGate(t *testing.T) {
	g := buildChain(false)
	s := netlist.New("chain")
	a := s.AddInput("a")
	b := s.AddInput("b")
	en := s.AddInput("en")
	x := s.AddGate(netlist.Xnor, a, b) // retyped: Xor -> Xnor
	y := s.AddGate(netlist.And, x, en)
	q := s.AddLatch(y)
	out := s.AddGate(netlist.Or, q, b)
	s.MarkOutput("out", out)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	d := netlist.DiffNetlists(g, s, netlist.DiffOptions{})
	if len(d.Retyped) != 1 {
		t.Fatalf("want 1 retyped pair, got %+v", d)
	}
	if len(d.Added) != 0 || len(d.Removed) != 0 {
		t.Fatalf("retyped gate leaked into added/removed: %+v", d)
	}
	if got := d.SuspectSet(); len(got) != 1 || got[0] != x {
		t.Fatalf("suspect set = %v, want [%d]", got, x)
	}
}

func TestDiffBoundaryChanges(t *testing.T) {
	g := buildChain(false)
	s := buildChain(false)
	extra := s.AddInput("spare")
	s.MarkOutput("dbg", extra)
	d := netlist.DiffNetlists(g, s, netlist.DiffOptions{})
	if len(d.InputsAdded) != 1 || d.InputsAdded[0] != "spare" {
		t.Fatalf("InputsAdded = %v", d.InputsAdded)
	}
	if len(d.OutputsAdded) != 1 || d.OutputsAdded[0] != "dbg" {
		t.Fatalf("OutputsAdded = %v", d.OutputsAdded)
	}
	if d.Identical() {
		t.Fatalf("boundary change not detected")
	}
}

func idsEqual(a, b []netlist.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDiffTrojanArticles is the core exactness gate at the matcher level:
// for every golden/suspect article pair the added set must be exactly the
// recorded trojan span.
func TestDiffTrojanArticles(t *testing.T) {
	for _, pair := range gen.TrojanArticlePairs() {
		golden, suspect := pair[0], pair[1]
		t.Run(suspect, func(t *testing.T) {
			g, _, err := gen.LabeledArticle(golden)
			if err != nil {
				t.Fatal(err)
			}
			s, lab, err := gen.LabeledArticle(suspect)
			if err != nil {
				t.Fatal(err)
			}
			d := netlist.DiffNetlists(g, s, netlist.DiffOptions{})
			want := append([]netlist.ID(nil), lab.Trojan...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if !idsEqual(d.Added, want) {
				t.Errorf("added = %d nodes, want %d trojan nodes (passes=%d)",
					len(d.Added), len(want), d.Passes)
				t.Errorf("missing=%v extra=%v",
					idsDiff(want, d.Added), idsDiff(d.Added, want))
			}
			if len(d.Removed) != 0 || len(d.Retyped) != 0 {
				t.Errorf("removed=%v retyped=%v, want none", d.Removed, d.Retyped)
			}
		})
	}
}

func idsDiff(a, b []netlist.ID) []netlist.ID {
	inB := map[netlist.ID]bool{}
	for _, id := range b {
		inB[id] = true
	}
	var out []netlist.ID
	for _, id := range a {
		if !inB[id] {
			out = append(out, id)
		}
	}
	return out
}
