package netlist

import (
	"bytes"
	"strings"
	"testing"
)

// buildRefCircuit constructs a small sequential circuit (an AND-OR datapath
// with a latch feedback loop) using only kinds that round-trip structurally
// through both the Verilog and BLIF writers (And/Or/Not/Buf/Latch/Const).
// Every node is named and the output name matches its driver so neither
// writer needs an alias construct.
func buildRefCircuit() *Netlist {
	n := New("ref")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	w1 := n.AddNamedGate("w1", And, a, b)
	w2 := n.AddNamedGate("w2", Not, c)
	q := n.AddNamedLatch("q", w1)
	y := n.AddNamedGate("y", Or, w1, w2, q)
	n.SetLatchD(q, y)
	cst := n.AddConst(true)
	n.SetName(cst, "k1")
	z := n.AddNamedGate("z", Buf, cst)
	n.MarkOutput("y", y)
	n.MarkOutput("z", z)
	return n
}

// buildRefCircuitPermuted builds the same circuit as buildRefCircuit with a
// different node-creation order and permuted commutative fanins.
func buildRefCircuitPermuted() *Netlist {
	n := New("ref")
	c := n.AddInput("c")
	w2 := n.AddNamedGate("w2", Not, c)
	b := n.AddInput("b")
	a := n.AddInput("a")
	cst := n.AddConst(true)
	n.SetName(cst, "k1")
	z := n.AddNamedGate("z", Buf, cst)
	w1 := n.AddNamedGate("w1", And, b, a) // swapped commutative fanins
	q := n.AddNamedLatch("q", w1)
	y := n.AddNamedGate("y", Or, q, w2, w1)
	n.SetLatchD(q, y)
	n.MarkOutput("y", y)
	n.MarkOutput("z", z)
	return n
}

func TestFingerprintOrderInvariance(t *testing.T) {
	f1 := buildRefCircuit().Fingerprint()
	f2 := buildRefCircuitPermuted().Fingerprint()
	if f1 != f2 {
		t.Errorf("same circuit built in two orders fingerprints differently:\n%s\n%s", f1, f2)
	}
	if len(f1) != 64 || strings.ToLower(f1) != f1 {
		t.Errorf("fingerprint is not lowercase hex sha256: %q", f1)
	}
}

func TestFingerprintStable(t *testing.T) {
	n := buildRefCircuit()
	if a, b := n.Fingerprint(), n.Fingerprint(); a != b {
		t.Errorf("repeated Fingerprint calls differ: %s vs %s", a, b)
	}
}

// TestFingerprintVerilogBLIF is the cross-format determinism check: the
// same netlist serialized to Verilog and to BLIF parses back with very
// different node-creation orders (both readers resolve nets by sorted name
// via DFS, and BLIF decomposes covers), yet the canonical fingerprint must
// agree.
func TestFingerprintVerilogBLIF(t *testing.T) {
	src := buildRefCircuit()

	var v, b bytes.Buffer
	if err := src.WriteVerilog(&v); err != nil {
		t.Fatal(err)
	}
	if err := src.WriteBLIF(&b); err != nil {
		t.Fatal(err)
	}
	fromV, err := ReadVerilog(&v)
	if err != nil {
		t.Fatalf("ReadVerilog: %v", err)
	}
	fromB, err := ReadBLIF(&b)
	if err != nil {
		t.Fatalf("ReadBLIF: %v", err)
	}
	fv, fb := fromV.Fingerprint(), fromB.Fingerprint()
	if fv != fb {
		t.Errorf("Verilog-parsed and BLIF-parsed fingerprints differ:\nverilog: %s\nblif:    %s", fv, fb)
	}
}

// TestFingerprintAllKindsVerilogBLIF extends the cross-format check to every
// gate kind plus an aliased output name. BLIF lowers Nand/Nor/Xor/Xnor to
// cover tables and both formats express the output alias differently, so
// this only holds because ReadBLIF recognizes the canonical covers
// WriteBLIF emits and ReadVerilog materializes alias assigns as Buf nodes.
func TestFingerprintAllKindsVerilogBLIF(t *testing.T) {
	n := New("kinds")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	w1 := n.AddNamedGate("w_and", And, a, b)
	w2 := n.AddNamedGate("w_nand", Nand, a, b, c)
	w3 := n.AddNamedGate("w_or", Or, w1, w2)
	w4 := n.AddNamedGate("w_nor", Nor, a, c)
	w5 := n.AddNamedGate("w_xor", Xor, w3, w4, b)
	w6 := n.AddNamedGate("w_xnor", Xnor, w5, a)
	w7 := n.AddNamedGate("w_not", Not, w6)
	w8 := n.AddNamedGate("w_buf", Buf, w7)
	q := n.AddNamedLatch("q", w8)
	n.SetLatchD(q, w5)
	n.MarkOutput("y", w8) // alias: output name differs from driver name
	n.MarkOutput("q", q)

	var v, bl bytes.Buffer
	if err := n.WriteVerilog(&v); err != nil {
		t.Fatal(err)
	}
	if err := n.WriteBLIF(&bl); err != nil {
		t.Fatal(err)
	}
	fromV, err := ReadVerilog(&v)
	if err != nil {
		t.Fatalf("ReadVerilog: %v", err)
	}
	fromB, err := ReadBLIF(&bl)
	if err != nil {
		t.Fatalf("ReadBLIF: %v", err)
	}
	if fv, fb := fromV.Fingerprint(), fromB.Fingerprint(); fv != fb {
		t.Errorf("cross-format fingerprints differ:\nverilog: %s\nblif:    %s", fv, fb)
	}
	// The BLIF round trip must preserve gate kinds, not lower them.
	want := map[Kind]int{And: 1, Nand: 1, Or: 1, Nor: 1, Xor: 1, Xnor: 1, Not: 1, Buf: 2, Latch: 1}
	got := map[Kind]int{}
	for _, node := range fromB.nodes {
		if node.Kind != Input {
			got[node.Kind]++
		}
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("BLIF round trip: kind %v count = %d, want %d (all: %v)", k, got[k], w, got)
		}
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	base := buildRefCircuit().Fingerprint()

	kind := buildRefCircuit()
	// Rebuild with the And swapped for an Or.
	k2 := New("ref")
	a := k2.AddInput("a")
	b := k2.AddInput("b")
	c := k2.AddInput("c")
	w1 := k2.AddNamedGate("w1", Or, a, b)
	w2 := k2.AddNamedGate("w2", Not, c)
	q := k2.AddNamedLatch("q", w1)
	y := k2.AddNamedGate("y", Or, w1, w2, q)
	k2.SetLatchD(q, y)
	cst := k2.AddConst(true)
	k2.SetName(cst, "k1")
	z := k2.AddNamedGate("z", Buf, cst)
	k2.MarkOutput("y", y)
	k2.MarkOutput("z", z)
	if got := k2.Fingerprint(); got == base {
		t.Error("changing a gate kind did not change the fingerprint")
	}

	renamed := buildRefCircuit()
	renamed.SetName(renamed.FindByName("w1"), "w1x")
	if got := renamed.Fingerprint(); got == base {
		t.Error("renaming an internal node did not change the fingerprint")
	}

	outs := buildRefCircuit()
	outs.MarkOutput("extra", outs.FindByName("w1"))
	if got := outs.Fingerprint(); got == base {
		t.Error("adding an output did not change the fingerprint")
	}
	if kind.Fingerprint() != base {
		t.Error("control rebuild drifted") // guards the test itself
	}
}

// TestFingerprintAnonymousSymmetry: structurally identical anonymous nodes
// land in one refinement class; their arbitrary relative order must not
// leak into the digest.
func TestFingerprintAnonymousSymmetry(t *testing.T) {
	build := func(swap bool) *Netlist {
		n := New("sym")
		a := n.AddInput("a")
		b := n.AddInput("b")
		// Two anonymous, structurally identical dead consts plus live logic.
		n.AddConst(false)
		y := n.AddNamedGate("y", And, a, b)
		n.AddConst(false)
		if swap {
			n.MarkOutput("y", y)
			return n
		}
		n.MarkOutput("y", y)
		return n
	}
	if f1, f2 := build(false).Fingerprint(), build(true).Fingerprint(); f1 != f2 {
		t.Errorf("symmetric anonymous nodes perturb the fingerprint: %s vs %s", f1, f2)
	}
}

func TestFingerprintEmptyAndArticleScale(t *testing.T) {
	if f := New("empty").Fingerprint(); len(f) != 64 {
		t.Errorf("empty netlist fingerprint malformed: %q", f)
	}
	// A latch with an unset D (pre-Validate state) must not panic.
	n := New("unset")
	n.nodes = append(n.nodes, Node{Kind: Latch, Name: "q"})
	n.fanout = append(n.fanout, nil)
	if f := n.Fingerprint(); len(f) != 64 {
		t.Errorf("unset-latch fingerprint malformed: %q", f)
	}
}
