package netlist

// This file implements a structural Verilog subset reader and writer. The
// paper's tool consumes synthesized Verilog netlists; we support the subset
// such netlists use when mapped to primitive gates:
//
//	module name (p0, p1, ...);
//	  input a; output y; wire w1;
//	  and  g0 (w1, a, b);     // output port first, then inputs
//	  not  g1 (y, w1);
//	  dff  r0 (q, d);         // Q first, then D
//	  LUT2 #(.INIT(4'h8)) g2 (.O(w2), .I0(a), .I1(b));
//	  assign w3 = 1'b0;
//	endmodule
//
// Gate types: and, or, nand, nor, xor, xnor (n-ary), not, buf (unary),
// dff (2 ports), and FPGA-style LUT1..LUT6 truth-table cells with an INIT
// parameter and named ports (O, I0..I5). Backslash-escaped identifiers are
// accepted and emitted for names that are not legal simple identifiers, so
// FPGA tool output round-trips byte-identically. This is deliberately a
// tiny grammar: the point of the repository is netlist analysis, not
// Verilog parsing.

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteVerilog serializes the netlist in the structural subset described in
// the package documentation. Node names are preserved; anonymous nodes get
// synthesized names.
func (n *Netlist) WriteVerilog(w io.Writer) error {
	bw := bufio.NewWriter(w)
	name := n.Name
	if name == "" {
		name = "top"
	}

	netName := func(id ID) string {
		node := &n.nodes[id]
		if node.Name != "" {
			return VerilogName(node.Name)
		}
		return fmt.Sprintf("n%d", id)
	}

	var ports []string
	for _, in := range n.Inputs() {
		ports = append(ports, netName(in))
	}
	outPort := make(map[string]ID)
	var outNames []string
	for _, p := range n.outputs {
		nm := VerilogName(p.Name)
		if _, dup := outPort[nm]; !dup {
			outPort[nm] = p.Driver
			outNames = append(outNames, nm)
		}
	}
	ports = append(ports, outNames...)

	fmt.Fprintf(bw, "module %s (%s);\n", VerilogName(name), strings.Join(ports, ", "))
	for _, in := range n.Inputs() {
		fmt.Fprintf(bw, "  input %s;\n", netName(in))
	}
	for _, nm := range outNames {
		fmt.Fprintf(bw, "  output %s;\n", nm)
	}
	for i, node := range n.nodes {
		if node.Kind == Input {
			continue
		}
		fmt.Fprintf(bw, "  wire %s;\n", netName(ID(i)))
	}
	gi := 0
	for i, node := range n.nodes {
		id := ID(i)
		switch node.Kind {
		case Input:
			// ports only
		case Const0:
			fmt.Fprintf(bw, "  assign %s = 1'b0;\n", netName(id))
		case Const1:
			fmt.Fprintf(bw, "  assign %s = 1'b1;\n", netName(id))
		case Latch:
			fmt.Fprintf(bw, "  dff g%d (%s, %s);\n", gi, netName(id), netName(node.Fanin[0]))
			gi++
		case Lut:
			k := len(node.Fanin)
			args := make([]string, 0, k+1)
			args = append(args, fmt.Sprintf(".O(%s)", netName(id)))
			for j, f := range node.Fanin {
				args = append(args, fmt.Sprintf(".I%d(%s)", j, netName(f)))
			}
			fmt.Fprintf(bw, "  LUT%d #(.INIT(%s)) g%d (%s);\n",
				k, LutInitLiteral(node.Mask, k), gi, strings.Join(args, ", "))
			gi++
		default:
			args := make([]string, 0, len(node.Fanin)+1)
			args = append(args, netName(id))
			for _, f := range node.Fanin {
				args = append(args, netName(f))
			}
			fmt.Fprintf(bw, "  %s g%d (%s);\n", node.Kind, gi, strings.Join(args, ", "))
			gi++
		}
	}
	for _, nm := range outNames {
		drv := outPort[nm]
		if netName(drv) != nm {
			fmt.Fprintf(bw, "  assign %s = %s;\n", nm, netName(drv))
		}
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}

var gateKinds = map[string]Kind{
	"and": And, "or": Or, "nand": Nand, "nor": Nor,
	"xor": Xor, "xnor": Xnor, "not": Not, "buf": Buf,
}

// LutInitLiteral formats a LUT mask as the sized hex literal FPGA netlists
// use: 2^k bits, zero-padded to the full digit width.
func LutInitLiteral(mask uint64, k int) string {
	bits := 1 << uint(k)
	return fmt.Sprintf("%d'h%0*x", bits, (bits+3)/4, mask)
}

// parseSizedLiteral parses a sized Verilog literal (<width>'b..., 'd...,
// 'h...) into its value. Unsized plain decimal is also accepted.
func parseSizedLiteral(s string) (uint64, error) {
	body := s
	if i := strings.IndexByte(s, '\''); i >= 0 {
		body = s[i+1:]
	} else {
		body = "'d" + s // plain decimal
		body = body[1:]
	}
	if body == "" {
		return 0, fmt.Errorf("verilog: bad literal %q", s)
	}
	base := uint64(10)
	switch body[0] {
	case 'b', 'B':
		base, body = 2, body[1:]
	case 'd', 'D':
		base, body = 10, body[1:]
	case 'h', 'H':
		base, body = 16, body[1:]
	}
	if body == "" {
		return 0, fmt.Errorf("verilog: bad literal %q", s)
	}
	var v uint64
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c == '_' {
			continue
		}
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, fmt.Errorf("verilog: bad literal %q", s)
		}
		if d >= base {
			return 0, fmt.Errorf("verilog: bad literal %q", s)
		}
		prev := v
		v = v*base + d
		if v < prev {
			return 0, fmt.Errorf("verilog: literal %q overflows", s)
		}
	}
	return v, nil
}

// lutArity recognizes LUT1..LUT6 cell names.
func lutArity(t string) (int, bool) {
	if len(t) == 4 && strings.HasPrefix(t, "LUT") && t[3] >= '1' && t[3] <= '0'+MaxLutInputs {
		return int(t[3] - '0'), true
	}
	return 0, false
}

// unescapeTok strips the backslash of an escaped-identifier token.
func unescapeTok(t string) string {
	if strings.HasPrefix(t, "\\") {
		return t[1:]
	}
	return t
}

// ReadVerilog parses a netlist in the structural subset emitted by
// WriteVerilog.
func ReadVerilog(r io.Reader) (*Netlist, error) {
	toks, err := tokenize(r)
	if err != nil {
		return nil, err
	}
	p := &vparser{toks: toks}
	return p.parseModule()
}

type vparser struct {
	toks []string
	pos  int
}

func (p *vparser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *vparser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *vparser) expect(t string) error {
	if got := p.next(); got != t {
		return fmt.Errorf("verilog: expected %q, got %q", t, got)
	}
	return nil
}

// pending records facts collected during the parse, resolved once all nets
// are known.
type pendingGate struct {
	kind Kind
	out  string
	ins  []string
	mask uint64 // Lut only
}

func (p *vparser) parseModule() (*Netlist, error) {
	if err := p.expect("module"); err != nil {
		return nil, err
	}
	name := unescapeTok(p.next())
	if name == "" {
		return nil, fmt.Errorf("verilog: missing module name")
	}
	// Port list.
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for p.peek() != ")" && p.peek() != "" {
		p.next()
		if p.peek() == "," {
			p.next()
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}

	var inputs, outputs, wires []string
	var gates []pendingGate
	assigns := make(map[string]string) // lhs -> rhs net or "0"/"1"

	for {
		switch t := p.next(); t {
		case "endmodule":
			return buildFromParse(name, inputs, outputs, wires, gates, assigns)
		case "":
			return nil, fmt.Errorf("verilog: unexpected end of input")
		case "input", "output", "wire":
			for {
				nm := unescapeTok(p.next())
				if nm == "" || nm == ";" {
					return nil, fmt.Errorf("verilog: bad %s declaration", t)
				}
				switch t {
				case "input":
					inputs = append(inputs, nm)
				case "output":
					outputs = append(outputs, nm)
				case "wire":
					wires = append(wires, nm)
				}
				if sep := p.next(); sep == ";" {
					break
				} else if sep != "," {
					return nil, fmt.Errorf("verilog: expected , or ; in %s declaration, got %q", t, sep)
				}
			}
		case "assign":
			lhs := unescapeTok(p.next())
			if err := p.expect("="); err != nil {
				return nil, err
			}
			rhs := p.next()
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			switch rhs {
			case "1'b0":
				assigns[lhs] = "0"
			case "1'b1":
				assigns[lhs] = "1"
			default:
				assigns[lhs] = unescapeTok(rhs)
			}
		case "dff":
			p.next() // instance name
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			if len(args) != 2 {
				return nil, fmt.Errorf("verilog: dff needs 2 ports, got %d", len(args))
			}
			gates = append(gates, pendingGate{kind: Latch, out: args[0], ins: args[1:]})
		default:
			if k, ok := lutArity(t); ok {
				g, err := p.parseLutInstance(t, k)
				if err != nil {
					return nil, err
				}
				gates = append(gates, g)
				continue
			}
			kind, ok := gateKinds[t]
			if !ok {
				return nil, fmt.Errorf("verilog: unknown statement %q", t)
			}
			p.next() // instance name
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			if len(args) < 2 {
				return nil, fmt.Errorf("verilog: gate %s needs >=2 ports", t)
			}
			// Enforce gate arity here so malformed input is a parse error,
			// not a builder panic downstream.
			ins := len(args) - 1
			if kind == Not || kind == Buf {
				if ins != 1 {
					return nil, fmt.Errorf("verilog: gate %s needs 1 input, got %d", t, ins)
				}
			} else if ins < 2 {
				return nil, fmt.Errorf("verilog: gate %s needs >=2 inputs, got %d", t, ins)
			}
			gates = append(gates, pendingGate{kind: kind, out: args[0], ins: args[1:]})
		}
	}
}

// parseLutInstance parses `LUT<k> #(.INIT(lit)) name (.O(y), .I0(a), ...);`
// after the LUT<k> token has been consumed. Ports may appear in any order
// but all k inputs and the output must be present exactly once.
func (p *vparser) parseLutInstance(t string, k int) (pendingGate, error) {
	g := pendingGate{kind: Lut, ins: make([]string, k)}
	for _, want := range []string{"#", "(", ".INIT", "("} {
		if err := p.expect(want); err != nil {
			return g, err
		}
	}
	mask, err := parseSizedLiteral(p.next())
	if err != nil {
		return g, err
	}
	if k < MaxLutInputs && mask>>(1<<uint(k)) != 0 {
		return g, fmt.Errorf("verilog: %s INIT %#x has bits beyond 2^%d rows", t, mask, k)
	}
	g.mask = mask
	for _, want := range []string{")", ")"} {
		if err := p.expect(want); err != nil {
			return g, err
		}
	}
	p.next() // instance name
	if err := p.expect("("); err != nil {
		return g, err
	}
	haveOut := false
	haveIn := make([]bool, k)
	for {
		port := p.next()
		if err := p.expect("("); err != nil {
			return g, err
		}
		net := unescapeTok(p.next())
		if net == "" {
			return g, fmt.Errorf("verilog: %s port %s has empty net", t, port)
		}
		if err := p.expect(")"); err != nil {
			return g, err
		}
		switch {
		case port == ".O":
			if haveOut {
				return g, fmt.Errorf("verilog: %s has duplicate .O port", t)
			}
			haveOut = true
			g.out = net
		case strings.HasPrefix(port, ".I") && len(port) == 3 &&
			port[2] >= '0' && int(port[2]-'0') < k:
			idx := int(port[2] - '0')
			if haveIn[idx] {
				return g, fmt.Errorf("verilog: %s has duplicate %s port", t, port)
			}
			haveIn[idx] = true
			g.ins[idx] = net
		default:
			return g, fmt.Errorf("verilog: %s has unknown port %q", t, port)
		}
		switch sep := p.next(); sep {
		case ",":
		case ")":
			if err := p.expect(";"); err != nil {
				return g, err
			}
			if !haveOut {
				return g, fmt.Errorf("verilog: %s missing .O port", t)
			}
			for i, ok := range haveIn {
				if !ok {
					return g, fmt.Errorf("verilog: %s missing .I%d port", t, i)
				}
			}
			return g, nil
		default:
			return g, fmt.Errorf("verilog: expected , or ) in %s port list, got %q", t, sep)
		}
	}
}

func (p *vparser) parseArgs() ([]string, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var args []string
	for {
		a := p.next()
		if a == "" {
			return nil, fmt.Errorf("verilog: unexpected end of port list")
		}
		args = append(args, unescapeTok(a))
		switch sep := p.next(); sep {
		case ",":
		case ")":
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			return args, nil
		default:
			return nil, fmt.Errorf("verilog: expected , or ) in port list, got %q", sep)
		}
	}
}

func buildFromParse(name string, inputs, outputs, wires []string,
	gates []pendingGate, assigns map[string]string) (*Netlist, error) {

	n := New(name)
	ids := make(map[string]ID)
	for _, in := range inputs {
		if _, dup := ids[in]; dup {
			return nil, fmt.Errorf("verilog: duplicate input %q", in)
		}
		ids[in] = n.AddInput(in)
	}

	driver := make(map[string]int) // net -> index into gates, or -2 for const/alias
	for i, g := range gates {
		if _, dup := driver[g.out]; dup {
			return nil, fmt.Errorf("verilog: net %q driven twice", g.out)
		}
		if _, isIn := ids[g.out]; isIn {
			return nil, fmt.Errorf("verilog: input %q driven by gate", g.out)
		}
		driver[g.out] = i
	}

	// Create latches first so feedback resolves; the D input starts as the
	// Nil placeholder and is patched in a second pass, so parsing adds no
	// structure beyond what the file describes.
	for i := range gates {
		if gates[i].kind == Latch {
			ids[gates[i].out] = n.AddNamedLatch(gates[i].out, Nil)
		}
	}

	var resolve func(net string, trail map[string]bool) (ID, error)
	resolve = func(net string, trail map[string]bool) (ID, error) {
		if id, ok := ids[net]; ok {
			return id, nil
		}
		if trail[net] {
			return Nil, fmt.Errorf("verilog: combinational cycle through net %q", net)
		}
		trail[net] = true
		defer delete(trail, net)
		if rhs, ok := assigns[net]; ok {
			switch rhs {
			case "0":
				id := n.AddConst(false)
				n.SetName(id, net)
				ids[net] = id
				return id, nil
			case "1":
				id := n.AddConst(true)
				n.SetName(id, net)
				ids[net] = id
				return id, nil
			default:
				// Net alias: materialize a named Buf so the alias keeps its
				// own node, mirroring how ReadBLIF rebuilds the `1 1` alias
				// covers WriteBLIF emits. Both round trips then produce the
				// same structure (and the same Fingerprint).
				src, err := resolve(rhs, trail)
				if err != nil {
					return Nil, err
				}
				id := n.AddNamedGate(net, Buf, src)
				ids[net] = id
				return id, nil
			}
		}
		gi, ok := driver[net]
		if !ok {
			return Nil, fmt.Errorf("verilog: net %q has no driver", net)
		}
		g := gates[gi]
		fan := make([]ID, 0, len(g.ins))
		for _, in := range g.ins {
			fid, err := resolve(in, trail)
			if err != nil {
				return Nil, err
			}
			fan = append(fan, fid)
		}
		var id ID
		if g.kind == Lut {
			id = n.AddNamedLut(net, g.mask, fan...)
		} else {
			id = n.AddNamedGate(net, g.kind, fan...)
		}
		ids[net] = id
		return id, nil
	}

	// Resolve every declared wire and output, plus all gate outputs.
	all := append(append([]string{}, wires...), outputs...)
	for _, g := range gates {
		all = append(all, g.out)
	}
	sort.Strings(all)
	for _, net := range all {
		if _, err := resolve(net, map[string]bool{}); err != nil {
			return nil, err
		}
	}

	// Patch latch D inputs.
	for _, g := range gates {
		if g.kind != Latch {
			continue
		}
		d, err := resolve(g.ins[0], map[string]bool{})
		if err != nil {
			return nil, err
		}
		n.SetLatchD(ids[g.out], d)
	}

	for _, out := range outputs {
		id, ok := ids[out]
		if !ok {
			return nil, fmt.Errorf("verilog: output %q has no driver", out)
		}
		n.MarkOutput(out, id)
	}
	return n, nil
}

func tokenize(r io.Reader) ([]string, error) {
	br := bufio.NewReader(r)
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for {
		c, _, err := br.ReadRune()
		if err == io.EOF {
			flush()
			return toks, nil
		}
		if err != nil {
			return nil, err
		}
		switch {
		case c == '/':
			// Possible // comment.
			c2, _, err2 := br.ReadRune()
			if err2 == nil && c2 == '/' {
				flush()
				for {
					c3, _, err3 := br.ReadRune()
					if err3 != nil || c3 == '\n' {
						break
					}
				}
				continue
			}
			if err2 == nil {
				if uerr := br.UnreadRune(); uerr != nil {
					return nil, uerr
				}
			}
			cur.WriteRune(c)
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			flush()
		case c == '\\' && cur.Len() == 0:
			// Escaped identifier: backslash through the next whitespace,
			// punctuation included.
			cur.WriteRune(c)
			for {
				c2, _, err2 := br.ReadRune()
				if err2 == io.EOF {
					break
				}
				if err2 != nil {
					return nil, err2
				}
				if c2 == ' ' || c2 == '\t' || c2 == '\n' || c2 == '\r' {
					break
				}
				cur.WriteRune(c2)
			}
			flush()
		case c == '(' || c == ')' || c == ',' || c == ';' || c == '=':
			flush()
			toks = append(toks, string(c))
		default:
			cur.WriteRune(c)
		}
	}
}
