package netlist

// Shared identifier legalization for everything that prints Verilog: the
// structural netlist writer (WriteVerilog) and the word-level RTL emitter
// (internal/rtl). Netlist names come from arbitrary upstream tools, so a
// net can collide with a Verilog keyword ("module", "wire") or start with
// a digit ("1abc"); emitting such names verbatim produces unparseable
// output.

import "strings"

// verilogReserved lists the IEEE 1364 keywords (plus the common
// SystemVerilog ones a downstream tool is likely to reject). A legalized
// identifier never equals any of these.
var verilogReserved = map[string]bool{
	"always": true, "and": true, "assign": true, "automatic": true,
	"begin": true, "buf": true, "bufif0": true, "bufif1": true,
	"case": true, "casex": true, "casez": true, "cell": true,
	"cmos": true, "config": true, "deassign": true, "default": true,
	"defparam": true, "design": true, "disable": true, "edge": true,
	"else": true, "end": true, "endcase": true, "endconfig": true,
	"endfunction": true, "endgenerate": true, "endmodule": true,
	"endprimitive": true, "endspecify": true, "endtable": true,
	"endtask": true, "event": true, "for": true, "force": true,
	"forever": true, "fork": true, "function": true, "generate": true,
	"genvar": true, "highz0": true, "highz1": true, "if": true,
	"ifnone": true, "incdir": true, "include": true, "initial": true,
	"inout": true, "input": true, "instance": true, "integer": true,
	"join": true, "large": true, "liblist": true, "library": true,
	"localparam": true, "logic": true, "macromodule": true, "medium": true,
	"module": true, "nand": true, "negedge": true, "nmos": true,
	"nor": true, "noshowcancelled": true, "not": true, "notif0": true,
	"notif1": true, "or": true, "output": true, "parameter": true,
	"pmos": true, "posedge": true, "primitive": true, "pull0": true,
	"pull1": true, "pulldown": true, "pullup": true,
	"pulsestyle_ondetect": true, "pulsestyle_onevent": true,
	"rcmos": true, "real": true, "realtime": true, "reg": true,
	"release": true, "repeat": true, "rnmos": true, "rpmos": true,
	"rtran": true, "rtranif0": true, "rtranif1": true, "scalared": true,
	"showcancelled": true, "signed": true, "small": true, "specify": true,
	"specparam": true, "strong0": true, "strong1": true, "supply0": true,
	"supply1": true, "table": true, "task": true, "time": true,
	"tran": true, "tranif0": true, "tranif1": true, "tri": true,
	"tri0": true, "tri1": true, "triand": true, "trior": true,
	"trireg": true, "unsigned": true, "use": true, "vectored": true,
	"wait": true, "wand": true, "weak0": true, "weak1": true,
	"while": true, "wire": true, "wor": true, "xnor": true, "xor": true,
}

// Legalize maps an arbitrary net name to a legal Verilog simple
// identifier: characters outside [A-Za-z0-9_] become '_', a leading digit
// gets a '_' prefix, and reserved words get a '_' suffix. Well-behaved
// names (the common case) pass through unchanged, so existing emitted
// files are byte-stable. The mapping is deterministic but not injective:
// two pathological names can legalize to the same identifier, exactly as
// the previous sanitizer allowed; callers that need uniqueness layer a
// Namer on top.
func Legalize(s string) string {
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else if r >= '0' && r <= '9' { // leading digit: prefix, don't mangle
			b.WriteByte('_')
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	out := b.String()
	if verilogReserved[out] {
		return out + "_"
	}
	return out
}

// isSimpleIdent reports whether s is a legal (non-reserved) Verilog simple
// identifier: [A-Za-z_][A-Za-z0-9_$]*.
func isSimpleIdent(s string) bool {
	if s == "" || verilogReserved[s] {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
		case i > 0 && ((r >= '0' && r <= '9') || r == '$'):
		default:
			return false
		}
	}
	return true
}

// escapable reports whether s can be emitted as a Verilog backslash-escaped
// identifier: non-empty printable ASCII with no whitespace.
func escapable(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] <= ' ' || s[i] > '~' {
			return false
		}
	}
	return true
}

// VerilogName returns the Verilog identifier token for an arbitrary net
// name. Legal simple identifiers pass through unchanged; any other
// whitespace-free printable name (an FPGA tool's `\n$123`-style net, or a
// name colliding with a keyword) becomes a backslash-escaped identifier.
// The escaped form includes the terminating space the standard requires, so
// callers can concatenate punctuation directly after the token. Names that
// cannot be escaped (whitespace or non-printable bytes) fall back to
// Legalize, which is lossy but always printable.
func VerilogName(s string) string {
	if isSimpleIdent(s) {
		return s
	}
	if escapable(s) {
		return "\\" + s + " "
	}
	return Legalize(s)
}

// Namer hands out unique legalized identifiers. Reserve marks names that
// must not be produced (e.g. synthesized n<id> wires); Claim legalizes and
// uniquifies by appending '_' until the name is free. All decisions are
// deterministic in call order.
type Namer struct {
	used map[string]bool
}

// NewNamer returns an empty namer.
func NewNamer() *Namer { return &Namer{used: make(map[string]bool)} }

// Reserve marks name as taken verbatim.
func (nm *Namer) Reserve(name string) { nm.used[name] = true }

// Claim legalizes name, uniquifies it against every earlier Reserve/Claim,
// records it, and returns it.
func (nm *Namer) Claim(name string) string {
	s := Legalize(name)
	for nm.used[s] {
		s += "_"
	}
	nm.used[s] = true
	return s
}
