package netlist

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestBLIFRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 25; trial++ {
		orig := randomNetlist(rng, 3+rng.Intn(4), 5+rng.Intn(20), rng.Intn(4))
		var buf bytes.Buffer
		if err := orig.WriteBLIF(&buf); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		got, err := ReadBLIF(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: read: %v\n%s", trial, err, buf.String())
		}
		if err := got.Check(); err != nil {
			t.Fatalf("trial %d: parsed netlist invalid: %v", trial, err)
		}
		// Co-simulate.
		inByName := func(nl *Netlist) map[string]ID {
			m := make(map[string]ID)
			for _, in := range nl.Inputs() {
				m[nl.NameOf(in)] = in
			}
			return m
		}
		oIn, gIn := inByName(orig), inByName(got)
		if len(oIn) != len(gIn) {
			t.Fatalf("trial %d: input count changed", trial)
		}
		oSt, gSt := orig.NewState(), got.NewState()
		for cycle := 0; cycle < 6; cycle++ {
			oAssign := map[ID]bool{}
			gAssign := map[ID]bool{}
			for name, oid := range oIn {
				v := rng.Intn(2) == 1
				oAssign[oid] = v
				gAssign[gIn[name]] = v
			}
			oOut := orig.OutputValues(orig.Step(oSt, oAssign))
			gOut := got.OutputValues(got.Step(gSt, gAssign))
			for name, ov := range oOut {
				if gv, ok := gOut[name]; !ok || gv != ov {
					t.Fatalf("trial %d cycle %d: output %q = %v, want %v\n%s",
						trial, cycle, name, gv, ov, buf.String())
				}
			}
		}
	}
}

func TestReadBLIFHandWritten(t *testing.T) {
	src := `
# a tiny sequential design
.model demo
.inputs a b
.outputs y q
.names a b w1   # and
11 1
.names w1 nw    # not with dont-care style
0 1
.latch nw q re clk 0
.names a b q y
1-- 1
-11 1
.end
`
	nl, err := ReadBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.Check(); err != nil {
		t.Fatal(err)
	}
	if nl.Name != "demo" {
		t.Errorf("model name = %q", nl.Name)
	}
	s := nl.Stats()
	if s.Inputs != 2 || s.Latches != 1 || s.Outputs != 2 {
		t.Fatalf("stats = %+v", s)
	}
	// Behaviour: y = a | (b & q); q' = ~(a & b).
	a, b := nl.FindByName("a"), nl.FindByName("b")
	st := nl.NewState()
	vals := nl.Step(st, map[ID]bool{a: true, b: true})
	out := nl.OutputValues(vals)
	if !out["y"] {
		t.Error("y should be 1 when a=1")
	}
	// q' = ~(1&1) = 0.
	vals = nl.Step(st, map[ID]bool{a: false, b: true})
	out = nl.OutputValues(vals)
	if out["q"] {
		t.Error("q should be 0 after a=b=1 cycle")
	}
	if out["y"] {
		t.Error("y = a | b&q = 0 | 1&0 = 0")
	}
}

func TestReadBLIFConstantsAndComplementCover(t *testing.T) {
	src := `
.model consts
.inputs a
.outputs z0 z1 yc
.names z0
.names z1
1
.names a yc
1 0
.end
`
	nl, err := ReadBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	a := nl.FindByName("a")
	for _, av := range []bool{false, true} {
		out := nl.OutputValues(nl.Eval(map[ID]bool{a: av}))
		if out["z0"] != false || out["z1"] != true {
			t.Errorf("constants wrong: %v", out)
		}
		// yc lists cube "1" with output 0: f = ~(a) per complement cover.
		if out["yc"] != !av {
			t.Errorf("complement cover: yc(a=%v) = %v", av, out["yc"])
		}
	}
}

func TestReadBLIFErrors(t *testing.T) {
	cases := []string{
		".model m\n.inputs a\n.outputs y\n.names a y\n11 1\n.end",  // cube width
		".model m\n.inputs a\n.outputs y\n.end",                    // missing driver
		".model m\n.inputs a\n.outputs y\n.gate foo a y\n.end",     // unsupported
		".model m\n.inputs a\n.outputs y\n.names y y\n1 1\n.end",   // cycle
		".model m\n.inputs a a\n.outputs y\n.names a y\n1 1\n.end", // dup input
	}
	for i, src := range cases {
		if _, err := ReadBLIF(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestBLIFBufferCoverDoesNotClobberNames(t *testing.T) {
	src := `
.model buf
.inputs a
.outputs y
.names a y
1 1
.end
`
	nl, err := ReadBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	a := nl.FindByName("a")
	if nl.Kind(a) != Input || nl.NameOf(a) != "a" {
		t.Errorf("input a renamed or replaced")
	}
	y := nl.FindByName("y")
	if y == Nil || nl.Kind(y) != Buf {
		t.Errorf("y should be a distinct buffer node, got %v", nl.Kind(y))
	}
}
