package netlist

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// buildFullAdder returns a netlist computing sum and carry of three inputs.
func buildFullAdder() (*Netlist, ID, ID, [3]ID) {
	n := New("fa")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	sum := n.AddGate(Xor, a, b, c)
	ab := n.AddGate(And, a, b)
	bc := n.AddGate(And, b, c)
	ca := n.AddGate(And, c, a)
	carry := n.AddGate(Or, ab, bc, ca)
	n.MarkOutput("sum", sum)
	n.MarkOutput("carry", carry)
	return n, sum, carry, [3]ID{a, b, c}
}

func TestFullAdderEval(t *testing.T) {
	n, sum, carry, in := buildFullAdder()
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 8; m++ {
		a, b, c := m&1 != 0, m&2 != 0, m&4 != 0
		vals := n.Eval(map[ID]bool{in[0]: a, in[1]: b, in[2]: c})
		cnt := 0
		for _, v := range []bool{a, b, c} {
			if v {
				cnt++
			}
		}
		if got, want := vals[sum], cnt%2 == 1; got != want {
			t.Errorf("sum(%v,%v,%v) = %v, want %v", a, b, c, got, want)
		}
		if got, want := vals[carry], cnt >= 2; got != want {
			t.Errorf("carry(%v,%v,%v) = %v, want %v", a, b, c, got, want)
		}
	}
}

func TestStats(t *testing.T) {
	n, _, _, _ := buildFullAdder()
	s := n.Stats()
	if s.Inputs != 3 || s.Outputs != 2 || s.Gates != 5 || s.Latches != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestFanout(t *testing.T) {
	n := New("t")
	a := n.AddInput("a")
	b := n.AddInput("b")
	g1 := n.AddGate(And, a, b)
	g2 := n.AddGate(Or, a, g1)
	fo := n.Fanout(a)
	if len(fo) != 2 || fo[0] != g1 || fo[1] != g2 {
		t.Errorf("fanout(a) = %v", fo)
	}
	if len(n.Fanout(g2)) != 0 {
		t.Errorf("fanout(g2) = %v", n.Fanout(g2))
	}
}

func TestConeOf(t *testing.T) {
	n := New("t")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	l := n.AddLatch(c)
	g1 := n.AddGate(And, a, b)
	g2 := n.AddGate(Xor, g1, l)
	cone := n.ConeOf(g2)
	wantInputs := []ID{a, b, l}
	if len(cone.Inputs) != 3 {
		t.Fatalf("cone inputs = %v, want %v", cone.Inputs, wantInputs)
	}
	for i, id := range wantInputs {
		if cone.Inputs[i] != id {
			t.Errorf("cone.Inputs[%d] = %d, want %d", i, cone.Inputs[i], id)
		}
	}
	if len(cone.Nodes) != 2 {
		t.Errorf("cone nodes = %v, want {g1,g2}", cone.Nodes)
	}
}

func TestConeOfLatchRoot(t *testing.T) {
	n := New("t")
	a := n.AddInput("a")
	l := n.AddLatch(a)
	cone := n.ConeOf(l)
	if len(cone.Inputs) != 1 || cone.Inputs[0] != l {
		t.Errorf("cone of latch root = %+v", cone)
	}
	if len(cone.Nodes) != 0 {
		t.Errorf("latch root cone has nodes %v", cone.Nodes)
	}
}

func TestTopoOrder(t *testing.T) {
	n, _, _, _ := buildFullAdder()
	order := n.TopoOrder()
	if len(order) != n.Len() {
		t.Fatalf("topo order has %d nodes, want %d", len(order), n.Len())
	}
	pos := make(map[ID]int)
	for i, id := range order {
		pos[id] = i
	}
	for i := 0; i < n.Len(); i++ {
		id := ID(i)
		if !n.Kind(id).IsGate() {
			continue
		}
		for _, f := range n.Fanin(id) {
			if pos[f] > pos[id] {
				t.Errorf("fanin %d of %d comes after it in topo order", f, id)
			}
		}
	}
}

func TestHasCombPath(t *testing.T) {
	n := New("t")
	a := n.AddInput("a")
	g1 := n.AddGate(Not, a)
	l := n.AddLatch(g1)
	g2 := n.AddGate(Not, l)
	l2 := n.AddLatch(g2)
	if !n.HasCombPath(a, l) {
		t.Error("expected comb path a -> l")
	}
	if n.HasCombPath(a, l2) {
		t.Error("path a -> l2 goes through latch l; not combinational")
	}
	if !n.HasCombPath(l, l2) {
		t.Error("expected comb path l -> l2")
	}
}

func TestCountCombPaths(t *testing.T) {
	n := New("t")
	a := n.AddInput("a")
	l1 := n.AddLatch(a)
	g1 := n.AddGate(Not, l1)
	g2 := n.AddGate(Buf, l1)
	g3 := n.AddGate(And, g1, g2)
	l2 := n.AddLatch(g3)
	if got := n.CountCombPaths(l1, l2, 10); got != 2 {
		t.Errorf("paths l1->l2 = %d, want 2", got)
	}
	if got := n.CountCombPaths(l1, l2, 1); got != 1 {
		t.Errorf("saturated paths = %d, want 1", got)
	}
	if got := n.CountCombPaths(l2, l1, 10); got != 0 {
		t.Errorf("paths l2->l1 = %d, want 0", got)
	}
}

func TestCheckDetectsCycle(t *testing.T) {
	n := New("t")
	a := n.AddInput("a")
	g1 := n.AddGate(And, a, a) // placeholder fanin
	g2 := n.AddGate(Or, g1, a)
	// Introduce a cycle g1 <- g2 by surgery (not possible via public API,
	// which is the point of Check).
	n.nodes[g1].Fanin[1] = g2
	if err := n.Check(); err == nil {
		t.Error("Check did not detect combinational cycle")
	}
}

func TestLatchFeedbackIsNotCycle(t *testing.T) {
	n := New("t")
	en := n.AddInput("en")
	l := n.AddLatch(en) // temporary
	inv := n.AddGate(Not, l)
	d := n.AddGate(And, en, inv)
	n.SetLatchD(l, d)
	if err := n.Check(); err != nil {
		t.Errorf("latch feedback flagged as cycle: %v", err)
	}
	// Toggle behaviour: with en=1 the latch toggles each step.
	st := n.NewState()
	inp := map[ID]bool{en: true}
	n.Step(st, inp)
	if !st[l] {
		t.Error("latch should be 1 after first step")
	}
	n.Step(st, inp)
	if st[l] {
		t.Error("latch should toggle back to 0")
	}
}

func TestSetLatchDUpdatesFanout(t *testing.T) {
	n := New("t")
	a := n.AddInput("a")
	b := n.AddInput("b")
	l := n.AddLatch(a)
	n.SetLatchD(l, b)
	if len(n.Fanout(a)) != 0 {
		t.Errorf("stale fanout on a: %v", n.Fanout(a))
	}
	if len(n.Fanout(b)) != 1 || n.Fanout(b)[0] != l {
		t.Errorf("fanout(b) = %v", n.Fanout(b))
	}
}

// randomNetlist builds a random combinational+sequential netlist for
// round-trip and semantics-preservation property tests.
func randomNetlist(rng *rand.Rand, nIn, nGates, nLatches int) *Netlist {
	n := New("rand")
	var pool []ID
	for i := 0; i < nIn; i++ {
		pool = append(pool, n.AddInput(randName(rng, i)))
	}
	var latches []ID
	for i := 0; i < nLatches; i++ {
		l := n.AddLatch(pool[rng.Intn(len(pool))])
		latches = append(latches, l)
		pool = append(pool, l)
	}
	kinds := []Kind{And, Or, Nand, Nor, Xor, Xnor, Not, Buf, Lut}
	for i := 0; i < nGates; i++ {
		k := kinds[rng.Intn(len(kinds))]
		var id ID
		switch {
		case k == Lut:
			arity := 1 + rng.Intn(MaxLutInputs)
			fan := make([]ID, arity)
			for j := range fan {
				fan[j] = pool[rng.Intn(len(pool))]
			}
			mask := rng.Uint64()
			if arity < MaxLutInputs {
				mask &= 1<<(1<<uint(arity)) - 1
			}
			id = n.AddLut(mask, fan...)
		case k == Not || k == Buf:
			id = n.AddGate(k, pool[rng.Intn(len(pool))])
		default:
			arity := 2 + rng.Intn(3)
			fan := make([]ID, arity)
			for j := range fan {
				fan[j] = pool[rng.Intn(len(pool))]
			}
			id = n.AddGate(k, fan...)
		}
		pool = append(pool, id)
	}
	for i, l := range latches {
		n.SetLatchD(l, pool[rng.Intn(len(pool))])
		_ = i
	}
	n.MarkOutput("y", pool[len(pool)-1])
	return n
}

func randName(rng *rand.Rand, i int) string {
	letters := "abcdefghijklmnopqrstuvwxyz"
	return string(letters[i%26]) + string(letters[rng.Intn(26)]) + string(rune('0'+i%10))
}

func TestVerilogRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		orig := randomNetlist(rng, 3+rng.Intn(4), 5+rng.Intn(20), rng.Intn(4))
		if err := orig.Check(); err != nil {
			t.Fatalf("trial %d: bad random netlist: %v", trial, err)
		}
		var buf bytes.Buffer
		if err := orig.WriteVerilog(&buf); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		got, err := ReadVerilog(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: read: %v\n%s", trial, err, buf.String())
		}
		if err := got.Check(); err != nil {
			t.Fatalf("trial %d: parsed netlist invalid: %v", trial, err)
		}
		if gs, os := got.Stats(), orig.Stats(); gs.Inputs != os.Inputs ||
			gs.Latches != os.Latches || gs.Outputs != os.Outputs {
			t.Fatalf("trial %d: stats changed: %+v -> %+v", trial, os, gs)
		}
		// Semantic equivalence: simulate both for several cycles with the
		// same input sequences (matching inputs by name) and compare
		// outputs by name.
		inByName := func(nl *Netlist) map[string]ID {
			m := make(map[string]ID)
			for _, in := range nl.Inputs() {
				m[nl.NameOf(in)] = in
			}
			return m
		}
		oIn, gIn := inByName(orig), inByName(got)
		oSt, gSt := orig.NewState(), got.NewState()
		for cycle := 0; cycle < 6; cycle++ {
			oAssign := make(map[ID]bool)
			gAssign := make(map[ID]bool)
			for name, oid := range oIn {
				v := rng.Intn(2) == 1
				oAssign[oid] = v
				gid, ok := gIn[name]
				if !ok {
					t.Fatalf("trial %d: input %q lost in round trip", trial, name)
				}
				gAssign[gid] = v
			}
			oOut := orig.OutputValues(orig.Step(oSt, oAssign))
			gOut := got.OutputValues(got.Step(gSt, gAssign))
			for name, ov := range oOut {
				if gv, ok := gOut[name]; !ok || gv != ov {
					t.Fatalf("trial %d cycle %d: output %q = %v, want %v",
						trial, cycle, name, gv, ov)
				}
			}
		}
	}
}

func TestVerilogWriterOutput(t *testing.T) {
	n, _, _, _ := buildFullAdder()
	var buf bytes.Buffer
	if err := n.WriteVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"module fa", "input a;", "output sum;", "xor", "endmodule"} {
		if !bytes.Contains([]byte(text), []byte(want)) {
			t.Errorf("verilog output missing %q:\n%s", want, text)
		}
	}
}

func TestEvalKindProperty(t *testing.T) {
	// Property: De Morgan duality between And/Nand and Or/Nor under input
	// inversion.
	f := func(a, b, c bool) bool {
		in := []bool{a, b, c}
		ninv := []bool{!a, !b, !c}
		if EvalKind(Nand, in) != !EvalKind(And, in) {
			return false
		}
		if EvalKind(Nor, in) != !EvalKind(Or, in) {
			return false
		}
		if EvalKind(And, in) != !EvalKind(Or, ninv) {
			return false
		}
		return EvalKind(Xnor, in) == !EvalKind(Xor, in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
