package netlist

import (
	"strings"
	"testing"
)

func TestValidateOK(t *testing.T) {
	n := New("ok")
	a := n.AddInput("a")
	b := n.AddInput("b")
	g := n.AddGate(And, a, b)
	l := n.AddLatch(g)
	n.MarkOutput("q", l)
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate on well-formed netlist = %v", err)
	}
}

func TestValidateDanglingFanin(t *testing.T) {
	n := New("dangle")
	a := n.AddInput("a")
	g := n.AddGate(And, a, a)
	n.nodes[g].Fanin[1] = ID(99)
	err := n.Validate()
	if err == nil || !strings.Contains(err.Error(), "dangling fanin") {
		t.Fatalf("Validate = %v, want dangling fanin", err)
	}
	if cerr := n.Check(); cerr == nil {
		t.Error("Check missed the dangling fanin")
	}
}

func TestValidateLatchUnsetD(t *testing.T) {
	n := New("latch")
	a := n.AddInput("a")
	l := n.AddLatch(a)
	n.nodes[l].Fanin = nil
	err := n.Validate()
	if err == nil || !strings.Contains(err.Error(), "unset D") {
		t.Fatalf("Validate = %v, want unset D", err)
	}

	// A latch whose single fanin is Nil is the same defect.
	n2 := New("latch2")
	b := n2.AddInput("b")
	l2 := n2.AddLatch(b)
	n2.nodes[l2].Fanin[0] = Nil
	if err := n2.Validate(); err == nil || !strings.Contains(err.Error(), "unset D") {
		t.Fatalf("Validate = %v, want unset D", err)
	}
}

func TestValidateCombCycle(t *testing.T) {
	n := New("cycle")
	a := n.AddInput("a")
	g1 := n.AddGate(And, a, a)
	g2 := n.AddGate(Or, g1, a)
	n.nodes[g1].Fanin[1] = g2
	err := n.Validate()
	if err == nil || !strings.Contains(err.Error(), "combinational cycle") {
		t.Fatalf("Validate = %v, want combinational cycle", err)
	}
}

func TestValidateDanglingOutputDriver(t *testing.T) {
	n := New("out")
	a := n.AddInput("a")
	n.MarkOutput("o", a)
	n.outputs[0].Driver = ID(42)
	err := n.Validate()
	if err == nil || !strings.Contains(err.Error(), "dangling driver") {
		t.Fatalf("Validate = %v, want dangling driver", err)
	}
}

func TestValidateReportsAllProblems(t *testing.T) {
	n := New("multi")
	a := n.AddInput("a")
	g := n.AddGate(And, a, a)
	l := n.AddLatch(g)
	n.nodes[g].Fanin[1] = ID(99) // dangling fanin
	n.nodes[l].Fanin = nil       // unset D
	err := n.Validate()
	if err == nil {
		t.Fatal("Validate = nil, want two problems")
	}
	msg := err.Error()
	if !strings.Contains(msg, "dangling fanin") || !strings.Contains(msg, "unset D") {
		t.Errorf("Validate joined error missing a problem: %v", err)
	}
	// Check keeps first-problem semantics.
	if cerr := n.Check(); cerr == nil || strings.Contains(cerr.Error(), "\n") {
		t.Errorf("Check = %v, want a single problem", cerr)
	}
}
