package netlist

// Content-addressed netlist fingerprinting. Fingerprint returns a
// canonical SHA-256 over the netlist's functional content, independent of
// the order in which nodes were created: the same circuit built by hand,
// parsed from Verilog, or parsed from its BLIF serialization (which
// resolves nets in a different order) hashes identically, as long as the
// serialization preserves the gate-level structure — BLIF has no native
// Nand/Nor/Xor/Xnor, so writing those kinds lowers them to cube networks
// that are genuinely different graphs and hash differently. The analysis
// service uses the fingerprint as the netlist half of its report-cache
// key; it is also exposed as `revan -fingerprint`.
//
// Canonicalization is a Weisfeiler-Leman-style refinement: every node
// starts with a label derived from its local content (kind, name, and the
// primary-output ports it drives), then labels are repeatedly re-hashed
// with the labels of their fanins and fanouts until the partition into
// label classes stops refining. Sorting nodes by final label yields a
// canonical order; the serialization written in that order references
// fanins by canonical index, so the digest covers the full edge structure.
// Nodes still sharing a label after convergence are structurally
// indistinguishable to the refinement and are serialized as identical
// lines, so their relative order cannot affect the digest.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"

	"netlistre/internal/truth"
)

// maxRefineRounds bounds label refinement. Named netlists converge in one
// or two rounds (names separate almost every class immediately); the cap
// only matters for pathological fully-anonymous regular structures, where
// stopping early merely coarsens the canonical order inside symmetric
// classes.
const maxRefineRounds = 64

type fpLabel [sha256.Size]byte

// commutative reports whether a node kind's fanin order is semantically
// irrelevant, in which case the fingerprint sorts the fanin references so
// argument permutations do not change the hash.
func commutative(k Kind) bool {
	switch k {
	case And, Or, Nand, Nor, Xor, Xnor:
		return true
	}
	return false
}

// lutCanon holds the permutation-canonical view of one Lut node: the mask in
// its truth.Canon form and the fanin list reordered into the canonical
// argument slots. Hashing and serializing LUTs through this view gives them
// the same input-permutation treatment the Boolean matcher applies to cut
// functions: a LUT whose mask and fanin list are permuted together (as a
// writer/reader pair or a technology mapper may do) fingerprints
// identically, while LUTs with genuinely different functions do not.
type lutCanon struct {
	mask  uint64
	fanin []ID
}

func canonLut(node *Node) lutCanon {
	t := truth.Table{Bits: node.Mask, N: len(node.Fanin)}
	ct, perm := t.Canon()
	fanin := make([]ID, len(node.Fanin))
	for v, f := range node.Fanin {
		fanin[perm[v]] = f
	}
	return lutCanon{mask: ct.Bits, fanin: fanin}
}

// Fingerprint returns the canonical SHA-256 of the netlist as a lowercase
// hex string. Two netlists with the same fingerprint have the same design
// name, the same primary outputs in declaration order, and isomorphic
// node structure with matching kinds and node names — so an analysis
// report computed for one is valid for the other.
func (n *Netlist) Fingerprint() string {
	numNodes := len(n.nodes)
	labels := make([]fpLabel, numNodes)
	next := make([]fpLabel, numNodes)

	// Output ports driven by each node, in declaration order.
	outsOf := make(map[ID][]string)
	for _, p := range n.outputs {
		if p.Driver >= 0 && int(p.Driver) < numNodes {
			outsOf[p.Driver] = append(outsOf[p.Driver], p.Name)
		}
	}

	// Permutation-canonical view of every Lut node, computed once and used
	// by round 0, the refinement rounds, and the final serialization.
	var luts map[ID]lutCanon
	for i := range n.nodes {
		if n.nodes[i].Kind == Lut {
			if luts == nil {
				luts = make(map[ID]lutCanon)
			}
			luts[ID(i)] = canonLut(&n.nodes[i])
		}
	}

	// Round 0: local content only.
	h := sha256.New()
	var scratch [8]byte
	writeStr := func(s string) {
		binary.LittleEndian.PutUint64(scratch[:], uint64(len(s)))
		h.Write(scratch[:])
		h.Write([]byte(s))
	}
	for i, node := range n.nodes {
		h.Reset()
		h.Write([]byte{0x00, byte(node.Kind)})
		if node.Kind == Lut {
			binary.LittleEndian.PutUint64(scratch[:], luts[ID(i)].mask)
			h.Write(scratch[:])
		}
		writeStr(node.Name)
		for _, out := range outsOf[ID(i)] {
			writeStr(out)
		}
		h.Sum(labels[i][:0])
	}

	distinct := func(ls []fpLabel) int {
		seen := make(map[fpLabel]struct{}, len(ls))
		for _, l := range ls {
			seen[l] = struct{}{}
		}
		return len(seen)
	}

	classes := distinct(labels)
	var neigh []fpLabel
	for round := 0; classes < numNodes && round < maxRefineRounds; round++ {
		for i, node := range n.nodes {
			h.Reset()
			h.Write([]byte{0x01})
			h.Write(labels[i][:])
			neigh = neigh[:0]
			fanin := node.Fanin
			if node.Kind == Lut {
				// Canonical argument-slot order, matching the canonical
				// mask hashed in round 0.
				fanin = luts[ID(i)].fanin
			}
			for _, f := range fanin {
				if f >= 0 && int(f) < numNodes {
					neigh = append(neigh, labels[f])
				}
			}
			if commutative(node.Kind) {
				sortLabels(neigh)
			}
			for _, l := range neigh {
				h.Write(l[:])
			}
			h.Write([]byte{0x02})
			neigh = neigh[:0]
			for _, f := range n.fanout[i] {
				neigh = append(neigh, labels[f])
			}
			sortLabels(neigh)
			for _, l := range neigh {
				h.Write(l[:])
			}
			h.Sum(next[i][:0])
		}
		labels, next = next, labels
		refined := distinct(labels)
		if refined == classes {
			break
		}
		classes = refined
	}

	// Canonical order: by final label, original ID only inside classes the
	// refinement could not separate (such nodes serialize identically).
	order := make([]ID, numNodes)
	for i := range order {
		order[i] = ID(i)
	}
	sort.Slice(order, func(a, b int) bool {
		la, lb := &labels[order[a]], &labels[order[b]]
		for k := range la {
			if la[k] != lb[k] {
				return la[k] < lb[k]
			}
		}
		return order[a] < order[b]
	})
	rank := make([]int, numNodes)
	for r, id := range order {
		rank[id] = r
	}

	// Serialize in canonical order and hash.
	dig := sha256.New()
	fmt.Fprintf(dig, "netlistre-fp-v1\nname %q\n", n.Name)
	var fan []int
	for _, id := range order {
		node := &n.nodes[id]
		fan = fan[:0]
		fanin := node.Fanin
		kindToken := node.Kind.String()
		if node.Kind == Lut {
			lc := luts[id]
			fanin = lc.fanin
			kindToken = fmt.Sprintf("lut:%#x", lc.mask)
		}
		for _, f := range fanin {
			if f >= 0 && int(f) < numNodes {
				fan = append(fan, rank[f])
			} else {
				fan = append(fan, -1) // dangling (pre-Validate input)
			}
		}
		if commutative(node.Kind) {
			sort.Ints(fan)
		}
		fmt.Fprintf(dig, "node %s %q %v\n", kindToken, node.Name, fan)
	}
	for _, p := range n.outputs {
		r := -1
		if p.Driver >= 0 && int(p.Driver) < numNodes {
			r = rank[p.Driver]
		}
		fmt.Fprintf(dig, "output %q %d\n", p.Name, r)
	}
	return hex.EncodeToString(dig.Sum(nil))
}

func sortLabels(ls []fpLabel) {
	sort.Slice(ls, func(i, j int) bool {
		a, b := &ls[i], &ls[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}
