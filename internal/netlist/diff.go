package netlist

// Structural netlist diffing. DiffNetlists aligns two revisions of a
// design — a trusted "golden" netlist and a "suspect" netlist (a revision
// returned by an untrusted party, re-extracted from silicon, or simply a
// later edit) — and reports the nodes that exist on only one side. The
// output is the paper's Section V-D workflow turned into a primitive: a
// hardware trojan spliced into a design is exactly the suspect-only node
// set of a golden/suspect diff.
//
// The hard part is resynchronizing across a splice. A trojan that taps a
// word and re-drives it (the oc8051 kill switch gates the accumulator's
// write port, the eVoter backdoor muxes the key input of the vote decoder)
// changes the fanin identity of every downstream gate, so naive
// fanin-signature matching stalls at the splice point and flags the whole
// downstream cone. The matcher therefore interleaves three passes until a
// fixpoint:
//
//   - anchor: primary inputs are matched by name, primary-output drivers by
//     port name, so the boundary of the design is pinned regardless of how
//     internal nets were renamed.
//   - forward: an unmatched node whose fanins are all matched gets a
//     signature (kind, canonical LUT mask, golden-image fanin list, sorted
//     for commutative kinds). Signatures with equal multiplicity on both
//     sides are paired; unbalanced ones are skipped, so a trojan gate can
//     not steal the counterpart of a golden gate it happens to resemble.
//   - backward: an unmatched node is described by where its output goes —
//     the matched subset of its fanout (consumer's golden image plus the
//     fanin slot it feeds, slot-insensitive for commutative consumers) and
//     the output ports it drives. Unique backward signatures are paired,
//     which walks matching backward through a spliced region: the port
//     anchors the register, the register pulls in its write mux, the mux
//     pulls in the gates behind it.
//
// Regions with no path to an anchor (a free-running counter whose bits are
// never observed) are handled by a Weisfeiler-Leman refinement pass run
// only when the other passes stall: matched pairs are frozen at a shared
// color, unmatched nodes refine over fanin/fanout colors, and classes that
// end up with exactly one node per side are paired. The refinement reuses
// the fingerprint's conventions (commutative fanin sorting, canonical LUT
// masks), so the pairing is invariant under node reordering and renaming.
//
// Everything is deterministic: ties are broken by node ID, and no pass
// consults internal net names except the final retype classification,
// which degrades gracefully when names are absent or scrambled.

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// DiffOptions tunes DiffNetlists. The zero value selects the defaults.
type DiffOptions struct {
	// MaxPasses caps the forward/backward sweep count. Each sweep advances
	// the matched frontier by at least one level, so the default (512)
	// comfortably covers any realistic logic depth.
	MaxPasses int
	// WLRounds caps the Weisfeiler-Leman refinement depth used to align
	// anchor-free regions. 0 selects the fingerprint's default (64).
	WLRounds int
	// DisableWL skips the WL fallback pass entirely; unanchored identical
	// regions are then reported as added+removed instead of matched.
	DisableWL bool
	// DisableSim skips the functional (simulation) fallback pass.
	DisableSim bool
	// SimCycles is the length of each bit-parallel simulation run; 0
	// selects the default (4). Runs restart from the all-zero latch state,
	// so a sequential trigger deeper than SimCycles cannot fire during
	// matching — short runs are what keep a dormant trojan dormant and its
	// host design functionally identical to the golden revision.
	SimCycles int
	// SimBatches is the number of 64-run bit-parallel batches; 0 selects
	// the default (2), for 128 independent runs.
	SimBatches int
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.MaxPasses <= 0 {
		o.MaxPasses = 512
	}
	if o.WLRounds <= 0 {
		o.WLRounds = maxRefineRounds
	}
	if o.SimCycles <= 0 {
		o.SimCycles = 4
	}
	if o.SimBatches <= 0 {
		o.SimBatches = 2
	}
	return o
}

// RetypedPair is a golden/suspect node pair that occupies the same
// position in the design but differs in function (gate kind or LUT mask).
type RetypedPair struct {
	Golden  ID
	Suspect ID
}

// Diff is the result of DiffNetlists. Added and Removed list gate, latch
// and LUT nodes only; primary inputs and output ports present on a single
// side are reported by name, and constants are treated as interchangeable
// background and never reported.
type Diff struct {
	// Added lists suspect-side nodes with no golden counterpart, sorted.
	Added []ID
	// Removed lists golden-side nodes with no suspect counterpart, sorted.
	Removed []ID
	// Retyped lists matched-position pairs whose function changed. Retyped
	// nodes appear here instead of Added/Removed.
	Retyped []RetypedPair
	// InputsAdded/InputsRemoved and OutputsAdded/OutputsRemoved list
	// boundary names present on only one side, sorted.
	InputsAdded    []string
	InputsRemoved  []string
	OutputsAdded   []string
	OutputsRemoved []string
	// Matched counts matched node pairs (inputs included).
	Matched int
	// Passes counts forward/backward sweeps run before the fixpoint.
	Passes int
}

// Identical reports whether the diff found no structural change.
func (d *Diff) Identical() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 && len(d.Retyped) == 0 &&
		len(d.InputsAdded) == 0 && len(d.InputsRemoved) == 0 &&
		len(d.OutputsAdded) == 0 && len(d.OutputsRemoved) == 0
}

// SuspectSet returns the suspect-side nodes implicated by the diff: every
// added node plus the suspect half of every retyped pair, sorted. For a
// trojaned revision of a clean golden design this is the injected gate
// set.
func (d *Diff) SuspectSet() []ID {
	out := append([]ID(nil), d.Added...)
	for _, p := range d.Retyped {
		out = append(out, p.Suspect)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Sentinel fanin tokens shared by both sides of a signature. Constants are
// interchangeable (two Const0 nodes are the same value), so they resolve
// to a kind token rather than requiring an explicit node match.
const (
	tokConst0 = -2
	tokConst1 = -3
	tokNil    = -4
)

type differ struct {
	g, s *Netlist
	opt  DiffOptions

	g2s, s2g []ID // Nil = unmatched

	gPorts, sPorts map[ID][]string // output port names by driver

	gLuts, sLuts map[ID]lutCanon

	gSim, sSim []string // lazily computed simulation signatures

	// roles maps unmatched suspect nodes to the golden node whose role
	// they play in matched consumers' fanins. Non-nil only while a
	// rolePass is running; faninToken consults it as a fallback.
	roles map[ID]ID

	// dupCanon maps each golden node matched inside a multi-member
	// forward-signature class to the class's canonical representative.
	// Members of such a class are functionally identical duplicates
	// (same kind, same canonical fanins), so the bijection chosen inside
	// the class is arbitrary — and consumer signatures must therefore
	// not depend on which duplicate a consumer happens to read, or the
	// arbitrary choice would poison every downstream signature whenever
	// the two sides' duplicates pair "crosswise" (any ID permutation of
	// one side can cause this). Every signature that names a matched
	// golden node goes through canonOf to stay choice-invariant.
	dupCanon map[ID]ID
}

// canonOf resolves a golden node to its duplicate-class representative
// (itself when it was matched uniquely).
func (d *differ) canonOf(g ID) ID {
	if c, ok := d.dupCanon[g]; ok {
		return c
	}
	return g
}

// DiffNetlists structurally aligns golden and suspect and returns the
// difference. Both netlists should be Validated; the diff itself never
// mutates either side.
func DiffNetlists(golden, suspect *Netlist, opt DiffOptions) *Diff {
	d := &differ{
		g:        golden,
		s:        suspect,
		opt:      opt.withDefaults(),
		g2s:      make([]ID, golden.Len()),
		s2g:      make([]ID, suspect.Len()),
		gLuts:    map[ID]lutCanon{},
		sLuts:    map[ID]lutCanon{},
		dupCanon: map[ID]ID{},
	}
	for i := range d.g2s {
		d.g2s[i] = Nil
	}
	for i := range d.s2g {
		d.s2g[i] = Nil
	}
	d.gPorts = portsByDriver(golden)
	d.sPorts = portsByDriver(suspect)

	diff := &Diff{}
	d.anchor(diff)

	// Cheap exact passes run to quiescence; each stall escalates through
	// the progressively more global (and more expensive) resynchronizers,
	// any of which hands control back to the exact passes on progress.
	for pass := 0; pass < d.opt.MaxPasses; pass++ {
		diff.Passes++
		progress := d.forwardPass()
		progress = d.backwardPass() || progress
		if !progress {
			if !d.opt.DisableSim && d.simPass() {
				continue
			}
			if !d.opt.DisableWL && d.wlPass() {
				continue
			}
			if d.rolePass() {
				continue
			}
			break
		}
	}

	d.collect(diff)
	return diff
}

func portsByDriver(nl *Netlist) map[ID][]string {
	m := map[ID][]string{}
	for _, p := range nl.Outputs() {
		if p.Driver != Nil {
			m[p.Driver] = append(m[p.Driver], p.Name)
		}
	}
	for _, names := range m {
		sort.Strings(names)
	}
	return m
}

func (d *differ) match(g, s ID) {
	d.g2s[g] = s
	d.s2g[s] = g
}

func (d *differ) lut(nl *Netlist, cache map[ID]lutCanon, id ID) lutCanon {
	if lc, ok := cache[id]; ok {
		return lc
	}
	lc := canonLut(nl.Node(id))
	cache[id] = lc
	return lc
}

// matchable reports whether a node participates in structural matching.
// Inputs are handled by the anchor pass and constants by sentinel tokens.
func matchable(k Kind) bool {
	switch k {
	case Input, Const0, Const1:
		return false
	}
	return true
}

// anchor matches primary inputs by name and output-port drivers by port
// name, and records boundary names present on only one side.
func (d *differ) anchor(diff *Diff) {
	gin := map[string]ID{}
	for _, id := range d.g.Inputs() {
		gin[d.g.NameOf(id)] = id
	}
	sin := map[string]ID{}
	for _, id := range d.s.Inputs() {
		sin[d.s.NameOf(id)] = id
	}
	for name, g := range gin {
		if s, ok := sin[name]; ok {
			d.match(g, s)
		} else {
			diff.InputsRemoved = append(diff.InputsRemoved, name)
		}
	}
	for name := range sin {
		if _, ok := gin[name]; !ok {
			diff.InputsAdded = append(diff.InputsAdded, name)
		}
	}
	sort.Strings(diff.InputsAdded)
	sort.Strings(diff.InputsRemoved)

	gout := map[string]ID{}
	for _, p := range d.g.Outputs() {
		gout[p.Name] = p.Driver
	}
	sout := map[string]ID{}
	for _, p := range d.s.Outputs() {
		sout[p.Name] = p.Driver
	}
	for name, g := range gout {
		s, ok := sout[name]
		if !ok {
			diff.OutputsRemoved = append(diff.OutputsRemoved, name)
			continue
		}
		if g == Nil || s == Nil || d.g2s[g] != Nil || d.s2g[s] != Nil {
			continue
		}
		if !matchable(d.g.Kind(g)) || !d.sameShape(g, s) {
			continue
		}
		d.match(g, s)
	}
	for name := range sout {
		if _, ok := gout[name]; !ok {
			diff.OutputsAdded = append(diff.OutputsAdded, name)
		}
	}
	sort.Strings(diff.OutputsAdded)
	sort.Strings(diff.OutputsRemoved)
}

// sameShape reports whether a golden and a suspect node agree in kind (and
// canonical mask, for LUTs) — the precondition for any pairing.
func (d *differ) sameShape(g, s ID) bool {
	gk, sk := d.g.Kind(g), d.s.Kind(s)
	if gk != sk {
		return false
	}
	if gk == Lut {
		return d.lut(d.g, d.gLuts, g).mask == d.lut(d.s, d.sLuts, s).mask
	}
	return true
}

// faninToken resolves one fanin reference to a token in the shared (golden
// ID) namespace, or fails if the fanin is an unmatched node.
func (d *differ) faninToken(suspectSide bool, f ID) (int64, bool) {
	if f == Nil {
		return tokNil, true
	}
	var nl *Netlist
	if suspectSide {
		nl = d.s
	} else {
		nl = d.g
	}
	switch nl.Kind(f) {
	case Const0:
		return tokConst0, true
	case Const1:
		return tokConst1, true
	}
	if suspectSide {
		if g := d.s2g[f]; g != Nil {
			return int64(d.canonOf(g)), true
		}
		if g, ok := d.roles[f]; ok {
			return int64(d.canonOf(g)), true
		}
		return 0, false
	}
	if d.g2s[f] != Nil {
		return int64(d.canonOf(f)), true
	}
	return 0, false
}

// forwardSig is the fanin-side signature of one unmatched node: kind,
// canonical mask, and the golden-image tokens of every fanin, in canonical
// argument order. ok is false while any fanin is unmatched.
func (d *differ) forwardSig(suspectSide bool, id ID) (string, bool) {
	nl, cache := d.g, d.gLuts
	if suspectSide {
		nl, cache = d.s, d.sLuts
	}
	node := nl.Node(id)
	fanin := node.Fanin
	var mask uint64
	if node.Kind == Lut {
		lc := d.lut(nl, cache, id)
		fanin, mask = lc.fanin, lc.mask
	}
	toks := make([]int64, 0, len(fanin))
	for _, f := range fanin {
		t, ok := d.faninToken(suspectSide, f)
		if !ok {
			return "", false
		}
		toks = append(toks, t)
	}
	if commutative(node.Kind) {
		sort.Slice(toks, func(i, j int) bool { return toks[i] < toks[j] })
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%x", node.Kind, mask)
	for _, t := range toks {
		fmt.Fprintf(&b, "|%d", t)
	}
	return b.String(), true
}

// forwardPass matches unmatched nodes whose full fanin is matched,
// pairing signature classes with equal multiplicity on both sides. Equal
// signatures mean functionally identical nodes, so pairing inside a
// balanced class by ascending ID is sound.
func (d *differ) forwardPass() bool {
	gsig := map[string][]ID{}
	for i := 0; i < d.g.Len(); i++ {
		id := ID(i)
		if d.g2s[id] != Nil || !matchable(d.g.Kind(id)) {
			continue
		}
		if sig, ok := d.forwardSig(false, id); ok {
			gsig[sig] = append(gsig[sig], id)
		}
	}
	ssig := map[string][]ID{}
	for i := 0; i < d.s.Len(); i++ {
		id := ID(i)
		if d.s2g[id] != Nil || !matchable(d.s.Kind(id)) {
			continue
		}
		if sig, ok := d.forwardSig(true, id); ok {
			ssig[sig] = append(ssig[sig], id)
		}
	}
	progress := false
	for sig, gl := range gsig {
		sl := ssig[sig]
		if len(gl) != len(sl) {
			continue
		}
		for i := range gl {
			d.match(gl[i], sl[i])
			progress = true
			if len(gl) > 1 {
				// The members are functionally identical duplicates and
				// the intra-class bijection is arbitrary; record the
				// class representative so downstream signatures stay
				// invariant to the choice (gl is in ascending ID order,
				// so the representative is deterministic).
				d.dupCanon[gl[i]] = gl[0]
			}
		}
	}
	return progress
}

// inferRoles derives, for unmatched suspect nodes, the golden node whose
// functional role they play, from the fanins of already-matched pairs. A
// modification that reroutes a signal (a trojan muxing a key before its
// decoder, say) leaves the downstream consumers matched while the rerouted
// signal itself cannot match — but every matched consumer pair witnesses
// the correspondence: where the golden consumer reads the original signal,
// the suspect consumer reads the replacement. Positional kinds vote
// slot-by-slot; commutative kinds vote only when removing the images of the
// suspect's matched fanins from the golden fanin multiset leaves exactly
// one residual on each side. A suspect node gets a role only if all its
// votes agree on a single golden node.
func (d *differ) inferRoles() map[ID]ID {
	votes := map[ID]map[ID]int{}
	addVote := func(s, g ID) {
		if votes[s] == nil {
			votes[s] = map[ID]int{}
		}
		votes[s][g]++
	}
	for gi := 0; gi < d.g.Len(); gi++ {
		gID := ID(gi)
		sID := d.g2s[gID]
		if sID == Nil {
			continue
		}
		gn, sn := d.g.Node(gID), d.s.Node(sID)
		gf, sf := gn.Fanin, sn.Fanin
		if gn.Kind == Lut {
			gf = d.lut(d.g, d.gLuts, gID).fanin
		}
		if sn.Kind == Lut {
			sf = d.lut(d.s, d.sLuts, sID).fanin
		}
		if len(gf) != len(sf) {
			continue
		}
		if commutative(gn.Kind) {
			// The residual multiset is computed over canonical duplicate
			// representatives, so an intra-class pairing choice cannot
			// make a true image look like a residual.
			residual := map[ID]int{}
			for _, f := range gf {
				if d.g2s[f] != Nil {
					residual[d.canonOf(f)]++
				} else {
					residual[f]++
				}
			}
			var loose []ID
			ok := true
			for _, f := range sf {
				img := d.s2g[f]
				if img == Nil {
					loose = append(loose, f)
					continue
				}
				img = d.canonOf(img)
				if residual[img] == 0 {
					ok = false
					break
				}
				residual[img]--
			}
			if !ok || len(loose) != 1 {
				continue
			}
			var rest []ID
			for f, c := range residual {
				for ; c > 0; c-- {
					rest = append(rest, f)
				}
			}
			if len(rest) == 1 {
				addVote(loose[0], rest[0])
			}
		} else {
			for k := range sf {
				if d.s2g[sf[k]] == Nil {
					addVote(sf[k], gf[k])
				}
			}
		}
	}
	roles := map[ID]ID{}
	for s, cand := range votes {
		if len(cand) == 1 {
			for g := range cand {
				roles[s] = g
			}
		}
	}
	return roles
}

// rolePass is the last-resort resynchronizer for nodes that read a rerouted
// signal and have nothing downstream to anchor them (a dead decoder minterm
// of the replacement signal, shadowed in trace by an inserted comparator of
// the original). It re-runs forward signatures with suspect fanin tokens
// extended by inferred roles, and pairs only 1-1 classes: impostor gates
// read inserted nodes that earn no role, so their signatures stay
// incomputable rather than colliding.
func (d *differ) rolePass() bool {
	roles := d.inferRoles()
	if len(roles) == 0 {
		return false
	}
	saved := d.roles
	d.roles = roles
	defer func() { d.roles = saved }()

	gsig := map[string][]ID{}
	for i := 0; i < d.g.Len(); i++ {
		id := ID(i)
		if d.g2s[id] != Nil || !matchable(d.g.Kind(id)) {
			continue
		}
		if sig, ok := d.forwardSig(false, id); ok {
			gsig[sig] = append(gsig[sig], id)
		}
	}
	ssig := map[string][]ID{}
	for i := 0; i < d.s.Len(); i++ {
		id := ID(i)
		if d.s2g[id] != Nil || !matchable(d.s.Kind(id)) {
			continue
		}
		if sig, ok := d.forwardSig(true, id); ok {
			ssig[sig] = append(ssig[sig], id)
		}
	}
	progress := false
	for sig, gl := range gsig {
		sl := ssig[sig]
		if len(gl) == 1 && len(sl) == 1 {
			d.match(gl[0], sl[0])
			progress = true
		}
	}
	return progress
}

// backwardSig describes an unmatched node by its matched fanout: for every
// matched consumer, the consumer's golden image and the fanin slot fed
// (slot-insensitive for commutative consumers, canonical slots for LUTs),
// plus the output ports the node drives. ok is false when no matched
// consumer or port observes the node yet.
func (d *differ) backwardSig(suspectSide bool, id ID) (string, bool) {
	// Both sides express consumers in golden-ID space over MATCHED
	// consumers only: an unmatched golden consumer must be skipped just
	// like an unmatched suspect one, or any node whose fanout is not yet
	// fully matched could never equal its counterpart's signature.
	nl, cache, ports := d.g, d.gLuts, d.gPorts
	image := func(c ID) ID {
		if d.g2s[c] == Nil {
			return Nil
		}
		return c
	}
	if suspectSide {
		nl, cache, ports = d.s, d.sLuts, d.sPorts
		image = func(c ID) ID { return d.s2g[c] }
	}
	var elems []string
	for _, c := range nl.Fanout(id) {
		img := image(c)
		if img == Nil {
			continue
		}
		cn := nl.Node(c)
		fanin := cn.Fanin
		slotless := commutative(cn.Kind)
		if cn.Kind == Lut {
			fanin = d.lut(nl, cache, c).fanin
		}
		for slot, f := range fanin {
			if f != id {
				continue
			}
			if slotless {
				elems = append(elems, fmt.Sprintf("%d.*", img))
			} else {
				elems = append(elems, fmt.Sprintf("%d.%d", img, slot))
			}
		}
	}
	for _, p := range ports[id] {
		elems = append(elems, "p."+p)
	}
	if len(elems) == 0 {
		return "", false
	}
	sort.Strings(elems)
	node := nl.Node(id)
	var mask uint64
	if node.Kind == Lut {
		mask = d.lut(nl, cache, id).mask
	}
	return fmt.Sprintf("%d|%x|%s|%d", node.Kind, mask,
		strings.Join(elems, ","), len(node.Fanin)), true
}

// backwardPass matches nodes whose backward signature is unique on both
// sides. Unlike forward signatures, an equal backward signature does not
// imply interchangeability (two gates can feed the same commutative
// consumer from different sources), so only 1-1 classes are paired.
func (d *differ) backwardPass() bool {
	gsig := map[string][]ID{}
	for i := 0; i < d.g.Len(); i++ {
		id := ID(i)
		if d.g2s[id] != Nil || !matchable(d.g.Kind(id)) {
			continue
		}
		if sig, ok := d.backwardSig(false, id); ok {
			gsig[sig] = append(gsig[sig], id)
		}
	}
	ssig := map[string][]ID{}
	for i := 0; i < d.s.Len(); i++ {
		id := ID(i)
		if d.s2g[id] != Nil || !matchable(d.s.Kind(id)) {
			continue
		}
		if sig, ok := d.backwardSig(true, id); ok {
			ssig[sig] = append(ssig[sig], id)
		}
	}
	progress := false
	for sig, gl := range gsig {
		sl := ssig[sig]
		if len(gl) == 1 && len(sl) == 1 {
			d.match(gl[0], sl[0])
			progress = true
		}
	}
	return progress
}

// collect finalizes the diff: classify retyped pairs, then report the
// remaining unmatched gates, latches and LUTs.
func (d *differ) collect(diff *Diff) {
	var removed, added []ID
	for i := 0; i < d.g.Len(); i++ {
		id := ID(i)
		if d.g2s[id] == Nil && matchable(d.g.Kind(id)) {
			removed = append(removed, id)
		}
	}
	for i := 0; i < d.s.Len(); i++ {
		id := ID(i)
		if d.s2g[id] == Nil && matchable(d.s.Kind(id)) {
			added = append(added, id)
		}
	}
	retyped := d.retype(removed, added)
	inRetype := func(id ID, suspect bool) bool {
		for _, p := range retyped {
			if suspect && p.Suspect == id || !suspect && p.Golden == id {
				return true
			}
		}
		return false
	}
	for _, id := range removed {
		if !inRetype(id, false) {
			diff.Removed = append(diff.Removed, id)
		}
	}
	for _, id := range added {
		if !inRetype(id, true) {
			diff.Added = append(diff.Added, id)
		}
	}
	diff.Retyped = retyped
	for _, s := range d.g2s {
		if s != Nil {
			diff.Matched++
		}
	}
}

// retype pairs removed/added nodes that sit in the same position but
// compute a different function: identical resolved fanin token multiset
// (1-1 unique on both sides) with a differing kind or mask, or — as a
// name-assisted fallback — a unique shared nonempty node name.
func (d *differ) retype(removed, added []ID) []RetypedPair {
	type slot struct {
		ids   []ID
		shape []string
	}
	gpos := map[string]*slot{}
	for _, id := range removed {
		key, ok := d.positionKey(false, id)
		if !ok {
			continue
		}
		sl := gpos[key]
		if sl == nil {
			sl = &slot{}
			gpos[key] = sl
		}
		sl.ids = append(sl.ids, id)
	}
	spos := map[string][]ID{}
	for _, id := range added {
		key, ok := d.positionKey(true, id)
		if !ok {
			continue
		}
		spos[key] = append(spos[key], id)
	}
	var out []RetypedPair
	used := map[ID]bool{}
	for key, sl := range gpos {
		ss := spos[key]
		if len(sl.ids) != 1 || len(ss) != 1 {
			continue
		}
		g, s := sl.ids[0], ss[0]
		if !retypeCompatible(d.g.Node(g), d.s.Node(s)) {
			continue
		}
		if d.sameShape(g, s) {
			// Same function and same position yet unmatched means the
			// passes could not disambiguate it from a sibling; do not
			// guess here.
			continue
		}
		out = append(out, RetypedPair{Golden: g, Suspect: s})
		used[g] = true
	}

	// Name fallback: unique shared names classify renames of function.
	gname := map[string][]ID{}
	for _, id := range removed {
		if used[id] {
			continue
		}
		if n := d.g.NameOf(id); n != "" {
			gname[n] = append(gname[n], id)
		}
	}
	sname := map[string][]ID{}
	for _, id := range added {
		if n := d.s.NameOf(id); n != "" {
			sname[n] = append(sname[n], id)
		}
	}
	for n, gl := range gname {
		sl := sname[n]
		if len(gl) == 1 && len(sl) == 1 && !d.sameShape(gl[0], sl[0]) &&
			retypeCompatible(d.g.Node(gl[0]), d.s.Node(sl[0])) {
			out = append(out, RetypedPair{Golden: gl[0], Suspect: sl[0]})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Golden < out[j].Golden })
	return out
}

// retypeCompatible gates the retype classifier: a retype is a function
// change in place, so the pair must agree in arity and must not cross the
// state/combinational boundary (a latch never "retypes" into a gate).
func retypeCompatible(g, s *Node) bool {
	if len(g.Fanin) != len(s.Fanin) {
		return false
	}
	return (g.Kind == Latch) == (s.Kind == Latch)
}

// positionKey is a kind-insensitive forward signature: the sorted resolved
// fanin tokens plus the driven ports. Two nodes with the same position key
// read the same values and drive the same ports.
func (d *differ) positionKey(suspectSide bool, id ID) (string, bool) {
	nl, ports := d.g, d.gPorts
	if suspectSide {
		nl, ports = d.s, d.sPorts
	}
	toks := make([]int64, 0, len(nl.Fanin(id)))
	for _, f := range nl.Fanin(id) {
		t, ok := d.faninToken(suspectSide, f)
		if !ok {
			return "", false
		}
		toks = append(toks, t)
	}
	sort.Slice(toks, func(i, j int) bool { return toks[i] < toks[j] })
	var b strings.Builder
	for _, t := range toks {
		fmt.Fprintf(&b, "%d,", t)
	}
	for _, p := range ports[id] {
		b.WriteString("p." + p + ",")
	}
	return b.String(), true
}

// wlPass aligns anchor-free regions: a joint Weisfeiler-Leman refinement
// over both netlists in one color space, with matched pairs frozen at a
// shared color derived from the golden ID. After refinement, color classes
// holding exactly one unmatched node per side are paired. Returns whether
// any pair was made.
func (d *differ) wlPass() bool {
	// Seed the refinement with simulation traces when available: dormant
	// modifications leave every true pair with identical traces, so the
	// richer seed only splits classes, never separates a true pair — and
	// it lets structure break ties that traces alone cannot (an inserted
	// comparator mimicking a decoder minterm's trace diverges from it
	// within two rounds through its fanin and fanout).
	if !d.opt.DisableSim && d.gSim == nil {
		d.gSim = simSignatures(d.g, d.opt)
		d.sSim = simSignatures(d.s, d.opt)
	}
	gcol := d.wlColors(false)
	scol := d.wlColors(true)

	gclass := map[fpLabel][]ID{}
	for i := 0; i < d.g.Len(); i++ {
		id := ID(i)
		if d.g2s[id] == Nil && matchable(d.g.Kind(id)) {
			gclass[gcol[id]] = append(gclass[gcol[id]], id)
		}
	}
	sclass := map[fpLabel][]ID{}
	for i := 0; i < d.s.Len(); i++ {
		id := ID(i)
		if d.s2g[id] == Nil && matchable(d.s.Kind(id)) {
			sclass[scol[id]] = append(sclass[scol[id]], id)
		}
	}
	progress := false
	for col, gl := range gclass {
		sl := sclass[col]
		if len(gl) == 1 && len(sl) == 1 && d.sameShape(gl[0], sl[0]) {
			d.match(gl[0], sl[0])
			progress = true
		}
	}
	return progress
}

// simPass is the functional resynchronizer, and the pass that carries the
// paper's thesis into the diff: match gates by what they compute, not by
// where they sit. Both netlists are simulated bit-parallel (64 independent
// runs per batch) from the all-zero latch state with identical per-input
// random stimulus streams, keyed by input name so the two sides see the
// same values without needing any prior node matching. A node's signature
// is its value trace; as long as the suspect's modification is dormant
// under the stimuli — guaranteed for sequential triggers deeper than
// SimCycles, since every run restarts from reset — every unmodified node
// computes the identical trace on both sides, including the entire cone
// downstream of a splice that structural matching cannot cross.
//
// Only classes holding exactly one unmatched node per side (for a given
// kind and mask) are paired: functionally duplicated nodes are left to the
// forward pass, whose exact structural signatures pair them soundly, and a
// trojan gate that happens to mimic a golden gate's trace (a comparator
// equal to a decoder minterm, say) inflates its class above 1-1 on the
// suspect side and is skipped rather than mismatched.
func (d *differ) simPass() bool {
	if d.gSim == nil {
		d.gSim = simSignatures(d.g, d.opt)
		d.sSim = simSignatures(d.s, d.opt)
	}
	gclass := map[string][]ID{}
	for i := 0; i < d.g.Len(); i++ {
		id := ID(i)
		if d.g2s[id] == Nil && matchable(d.g.Kind(id)) {
			gclass[d.simKey(false, id)] = append(gclass[d.simKey(false, id)], id)
		}
	}
	sclass := map[string][]ID{}
	for i := 0; i < d.s.Len(); i++ {
		id := ID(i)
		if d.s2g[id] == Nil && matchable(d.s.Kind(id)) {
			sclass[d.simKey(true, id)] = append(sclass[d.simKey(true, id)], id)
		}
	}
	progress := false
	for key, gl := range gclass {
		sl := sclass[key]
		if len(gl) == 1 && len(sl) == 1 {
			d.match(gl[0], sl[0])
			progress = true
		}
	}
	return progress
}

// simKey combines a node's shape (kind, canonical LUT mask, arity) with
// its simulation trace, so a Buf that copies a signal can never pair with
// the gate computing it. The key deliberately does NOT mix in matched-fanin
// structure: at a splice frontier the suspect's true image reads the
// inserted signal where the golden node reads a matched one, so any
// structural refinement splits exactly the true pairs the pass exists to
// recover, handing their 1-1 classes to inserted impostor gates that read
// the original signals. Structure is left to the forward/backward/WL
// passes, which use it soundly.
func (d *differ) simKey(suspectSide bool, id ID) string {
	nl, cache, sims := d.g, d.gLuts, d.gSim
	if suspectSide {
		nl, cache, sims = d.s, d.sLuts, d.sSim
	}
	node := nl.Node(id)
	var mask uint64
	if node.Kind == Lut {
		mask = d.lut(nl, cache, id).mask
	}
	return fmt.Sprintf("%d|%x|%d|%x", node.Kind, mask, len(node.Fanin), sims[id])
}

// simSignatures simulates nl and returns one trace string per node. The
// stimulus for each primary input is a deterministic PRNG stream seeded by
// the input's name, so two netlists sharing input names receive identical
// stimuli without any coordination.
func simSignatures(nl *Netlist, opt DiffOptions) []string {
	n := nl.Len()
	vals := make([]uint64, n)
	sigs := make([][]byte, n)
	order := nl.TopoOrder()
	latches := nl.Latches()

	streams := make([]*simRand, n)
	for _, id := range nl.Inputs() {
		streams[id] = newSimRand(nl.NameOf(id))
	}

	var scratch [8]byte
	record := func() {
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(scratch[:], vals[i])
			sigs[i] = append(sigs[i], scratch[:]...)
		}
	}

	for batch := 0; batch < opt.SimBatches; batch++ {
		for i := range vals {
			vals[i] = 0
		}
		for cycle := 0; cycle < opt.SimCycles; cycle++ {
			for _, id := range order {
				node := nl.Node(id)
				switch node.Kind {
				case Input:
					vals[id] = streams[id].next()
				case Latch:
					// State: holds the value loaded at the end of the
					// previous cycle.
				case Const0:
					vals[id] = 0
				case Const1:
					vals[id] = ^uint64(0)
				case Lut:
					vals[id] = evalLutWord(node, vals)
				default:
					vals[id] = evalGateWord(node, vals)
				}
			}
			record()
			for _, l := range latches {
				if dIn := nl.Node(l).Fanin[0]; dIn != Nil {
					vals[l] = vals[dIn]
				}
			}
		}
	}

	out := make([]string, n)
	for i, s := range sigs {
		sum := sha256.Sum256(s)
		out[i] = string(sum[:])
	}
	return out
}

// evalGateWord evaluates one primitive gate over 64 parallel runs.
func evalGateWord(node *Node, vals []uint64) uint64 {
	var v uint64
	switch node.Kind {
	case And, Nand:
		v = ^uint64(0)
		for _, f := range node.Fanin {
			v &= vals[f]
		}
		if node.Kind == Nand {
			v = ^v
		}
	case Or, Nor:
		for _, f := range node.Fanin {
			v |= vals[f]
		}
		if node.Kind == Nor {
			v = ^v
		}
	case Xor, Xnor:
		for _, f := range node.Fanin {
			v ^= vals[f]
		}
		if node.Kind == Xnor {
			v = ^v
		}
	case Not:
		v = ^vals[node.Fanin[0]]
	case Buf:
		v = vals[node.Fanin[0]]
	}
	return v
}

// evalLutWord evaluates a Lut node lane by lane.
func evalLutWord(node *Node, vals []uint64) uint64 {
	var v uint64
	for lane := 0; lane < 64; lane++ {
		row := 0
		for j, f := range node.Fanin {
			if vals[f]>>uint(lane)&1 == 1 {
				row |= 1 << uint(j)
			}
		}
		if node.Mask>>uint(row)&1 == 1 {
			v |= 1 << uint(lane)
		}
	}
	return v
}

// simRand is a tiny deterministic PRNG (splitmix64) seeded from a string,
// used for per-input stimulus streams. Using our own generator keeps the
// diff's pairing decisions stable across Go releases.
type simRand struct{ state uint64 }

func newSimRand(name string) *simRand {
	sum := sha256.Sum256([]byte("netlistre-diff-sim|" + name))
	return &simRand{state: binary.LittleEndian.Uint64(sum[:8])}
}

func (r *simRand) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// wlColors runs the refinement for one side. Matched nodes are frozen at a
// color keyed by their golden ID, which is identical on both sides, so two
// unmatched regions with isomorphic structure and matching boundary
// converge to equal colors. Node names are deliberately excluded: the
// pairing must survive renames.
func (d *differ) wlColors(suspectSide bool) []fpLabel {
	nl, cache, sims := d.g, d.gLuts, d.gSim
	imageOf := func(id ID) ID { return d.canonOf(id) }
	matchedTo := d.g2s
	if suspectSide {
		nl, cache, sims = d.s, d.sLuts, d.sSim
		imageOf = func(id ID) ID { return d.canonOf(d.s2g[id]) }
		matchedTo = d.s2g
	}
	n := nl.Len()
	labels := make([]fpLabel, n)
	next := make([]fpLabel, n)
	fixed := make([]bool, n)

	h := sha256.New()
	var scratch [8]byte
	for i := 0; i < n; i++ {
		id := ID(i)
		node := nl.Node(id)
		h.Reset()
		switch {
		case matchedTo[id] != Nil:
			fixed[i] = true
			h.Write([]byte{0x10})
			binary.LittleEndian.PutUint64(scratch[:], uint64(imageOf(id)))
			h.Write(scratch[:])
		case node.Kind == Const0 || node.Kind == Const1:
			// Constants are interchangeable background: freeze them at a
			// kind-keyed color so a shared constant feeding both sides'
			// common logic and one side's new logic cannot leak the new
			// logic's color into the common region through its fanout.
			fixed[i] = true
			h.Write([]byte{0x14, byte(node.Kind)})
		default:
			h.Write([]byte{0x11, byte(node.Kind)})
			if node.Kind == Lut {
				binary.LittleEndian.PutUint64(scratch[:], d.lut(nl, cache, id).mask)
				h.Write(scratch[:])
			}
			if sims != nil {
				h.Write([]byte{0x15})
				h.Write([]byte(sims[id]))
			}
		}
		h.Sum(labels[i][:0])
	}

	// The round count must be identical on both sides — a label hash
	// encodes its round depth, so stopping early on one side would make
	// every cross-side comparison miss. Always run the full WLRounds.
	var neigh []fpLabel
	for round := 0; round < d.opt.WLRounds; round++ {
		for i := 0; i < n; i++ {
			if fixed[i] {
				next[i] = labels[i]
				continue
			}
			id := ID(i)
			node := nl.Node(id)
			h.Reset()
			h.Write([]byte{0x12})
			h.Write(labels[i][:])
			fanin := node.Fanin
			if node.Kind == Lut {
				fanin = d.lut(nl, cache, id).fanin
			}
			neigh = neigh[:0]
			for _, f := range fanin {
				if f >= 0 && int(f) < n {
					neigh = append(neigh, labels[f])
				}
			}
			if commutative(node.Kind) {
				sortLabels(neigh)
			}
			for _, l := range neigh {
				h.Write(l[:])
			}
			h.Write([]byte{0x13})
			neigh = neigh[:0]
			for _, f := range nl.Fanout(id) {
				neigh = append(neigh, labels[f])
			}
			sortLabels(neigh)
			for _, l := range neigh {
				h.Write(l[:])
			}
			h.Sum(next[i][:0])
		}
		labels, next = next, labels
	}
	return labels
}
