package netlist

// This file implements combinational fan-in cone traversal and topological
// ordering. Cones are the basic unit of functional analysis: the "full
// combinational fan-in cone" of a node stops at primary inputs and latch
// outputs, so the cone computes a pure Boolean function of those boundary
// signals.

// Cone describes the full combinational fan-in cone of one or more roots.
type Cone struct {
	// Roots are the nodes whose cone was traversed.
	Roots []ID
	// Inputs are the boundary signals (primary inputs and latch outputs)
	// the cone depends on, sorted ascending.
	Inputs []ID
	// Nodes are the combinational nodes inside the cone (including the
	// roots when they are combinational), sorted ascending.
	Nodes []ID
}

// ConeOf computes the full combinational fan-in cone of root.
func (n *Netlist) ConeOf(root ID) Cone { return n.ConeOfAll([]ID{root}) }

// ConeOfAll computes the merged full combinational fan-in cone of several
// roots.
func (n *Netlist) ConeOfAll(roots []ID) Cone {
	c := Cone{Roots: append([]ID(nil), roots...)}
	seen := make(map[ID]bool)
	var stack []ID
	push := func(id ID) {
		if !seen[id] {
			seen[id] = true
			stack = append(stack, id)
		}
	}
	for _, r := range roots {
		if n.nodes[r].Kind.IsConeInput() {
			// A root that is itself an input/latch contributes itself as a
			// boundary signal but no interior nodes.
			if !seen[r] {
				seen[r] = true
				c.Inputs = append(c.Inputs, r)
			}
			continue
		}
		push(r)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c.Nodes = append(c.Nodes, id)
		for _, f := range n.nodes[id].Fanin {
			if n.nodes[f].Kind.IsConeInput() {
				if !seen[f] {
					seen[f] = true
					c.Inputs = append(c.Inputs, f)
				}
				continue
			}
			push(f)
		}
	}
	c.Inputs = SortedIDs(c.Inputs)
	c.Nodes = SortedIDs(c.Nodes)
	return c
}

// SupportOf returns the sorted boundary signals (inputs and latches) that
// node id transitively depends on combinationally. For an input or latch it
// returns the node itself.
func (n *Netlist) SupportOf(id ID) []ID {
	if n.nodes[id].Kind.IsConeInput() {
		return []ID{id}
	}
	return n.ConeOf(id).Inputs
}

// TopoOrder returns all nodes in a topological order where every
// combinational node appears after its fanins. Inputs, constants and latches
// (whose outputs are state, not combinational functions) come first.
func (n *Netlist) TopoOrder() []ID {
	order := make([]ID, 0, len(n.nodes))
	state := make([]byte, len(n.nodes)) // 0 unvisited, 1 on stack, 2 done
	type frame struct {
		id  ID
		idx int
	}
	var stack []frame
	for i := range n.nodes {
		if state[i] != 0 {
			continue
		}
		if !n.nodes[i].Kind.IsGate() {
			// Boundary node: emit immediately.
			state[i] = 2
			order = append(order, ID(i))
			continue
		}
		stack = append(stack[:0], frame{ID(i), 0})
		state[i] = 1
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			node := &n.nodes[f.id]
			if f.idx >= len(node.Fanin) {
				state[f.id] = 2
				order = append(order, f.id)
				stack = stack[:len(stack)-1]
				continue
			}
			child := node.Fanin[f.idx]
			f.idx++
			if state[child] != 0 {
				continue
			}
			if !n.nodes[child].Kind.IsGate() {
				state[child] = 2
				order = append(order, child)
				continue
			}
			state[child] = 1
			stack = append(stack, frame{child, 0})
		}
	}
	return order
}

// ConeDirection selects which way BoundedCone walks the netlist graph.
type ConeDirection int

const (
	// Fanin walks against signal flow: the nodes whose values the root
	// depends on.
	Fanin ConeDirection = iota
	// Fanout walks with signal flow: the nodes whose values depend on the
	// root.
	Fanout
)

func (d ConeDirection) String() string {
	if d == Fanout {
		return "fanout"
	}
	return "fanin"
}

// ConeNode is one visited node of a BoundedCone traversal.
type ConeNode struct {
	ID    ID
	Depth int
}

// BoundedConeResult is the outcome of a depth- and size-capped cone query.
type BoundedConeResult struct {
	Root ID
	Dir  ConeDirection
	// Nodes lists the visited nodes in BFS order, the root first at depth
	// 0. Within one depth level nodes are ordered ascending by ID, so the
	// result is deterministic.
	Nodes []ConeNode
	// TruncatedDepth is set when the frontier still had unvisited
	// neighbors past MaxDepth; TruncatedSize when MaxNodes cut the
	// traversal short.
	TruncatedDepth bool
	TruncatedSize  bool
}

// BoundedCone runs a breadth-first cone traversal from root, through
// latches (the sequential cone, not just the combinational one ConeOf
// computes), bounded by maxDepth levels beyond the root and maxNodes
// visited nodes. A bound <= 0 means unbounded for that axis. Interactive
// exploration is the intended caller: the caps make a query over a
// high-fanout net (a clock enable, a reset tree) return a bounded answer
// with explicit truncation flags instead of the whole design.
func (n *Netlist) BoundedCone(root ID, dir ConeDirection, maxDepth, maxNodes int) BoundedConeResult {
	res := BoundedConeResult{Root: root, Dir: dir}
	if int(root) < 0 || int(root) >= len(n.nodes) {
		return res
	}
	seen := map[ID]bool{root: true}
	res.Nodes = append(res.Nodes, ConeNode{ID: root, Depth: 0})
	frontier := []ID{root}
	neighbors := func(id ID) []ID {
		if dir == Fanout {
			return n.fanout[id]
		}
		return n.nodes[id].Fanin
	}
	for depth := 1; len(frontier) > 0; depth++ {
		if maxDepth > 0 && depth > maxDepth {
			// Anything still reachable from the frontier is cut off.
			for _, id := range frontier {
				for _, nb := range neighbors(id) {
					if !seen[nb] {
						res.TruncatedDepth = true
					}
				}
			}
			break
		}
		var next []ID
		for _, id := range frontier {
			for _, nb := range neighbors(id) {
				if seen[nb] {
					continue
				}
				seen[nb] = true
				next = append(next, nb)
			}
		}
		next = SortedIDs(next)
		for _, nb := range next {
			if maxNodes > 0 && len(res.Nodes) >= maxNodes {
				res.TruncatedSize = true
				return res
			}
			res.Nodes = append(res.Nodes, ConeNode{ID: nb, Depth: depth})
		}
		frontier = next
	}
	return res
}

// HasCombPath reports whether there is a purely combinational path from the
// output of node from to node to (to itself is not considered a path unless
// a cycle through gates exists, which Check forbids).
func (n *Netlist) HasCombPath(from, to ID) bool {
	seen := make(map[ID]bool)
	var stack []ID
	for _, g := range n.fanout[from] {
		if g == to {
			return true
		}
		if n.nodes[g].Kind.IsGate() && !seen[g] {
			seen[g] = true
			stack = append(stack, g)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, g := range n.fanout[id] {
			if g == to {
				return true
			}
			if n.nodes[g].Kind.IsGate() && !seen[g] {
				seen[g] = true
				stack = append(stack, g)
			}
		}
	}
	return false
}

// CountCombPaths counts the number of distinct combinational paths from the
// output of from to node to, saturating at limit (counting all paths can be
// exponential; callers only ever need "zero, one, or more").
func (n *Netlist) CountCombPaths(from, to ID, limit int) int {
	// memo[g] = number of paths from the output of g to node `to`,
	// saturated at limit.
	memo := make(map[ID]int)
	var paths func(g ID) int
	paths = func(g ID) int {
		if v, ok := memo[g]; ok {
			return v
		}
		memo[g] = 0 // cycle guard; combinational logic is acyclic anyway
		total := 0
		for _, fo := range n.fanout[g] {
			if fo == to {
				total++
			} else if n.nodes[fo].Kind.IsGate() {
				total += paths(fo)
			}
			if total >= limit {
				total = limit
				break
			}
		}
		memo[g] = total
		return total
	}
	return paths(from)
}
