package netlist

import (
	"bytes"
	"testing"
)

// sopEval computes a mask's function the way the gate alphabet would: the
// OR (via EvalKind) of the minterm ANDs (via EvalKind over literal values)
// the mask selects. It shares no code with EvalLut, so agreement between
// the two is a real cross-check, not a tautology.
func sopEval(mask uint64, in []bool) bool {
	n := len(in)
	var minterms []bool
	for row := 0; row < 1<<uint(n); row++ {
		if mask>>uint(row)&1 == 0 {
			continue
		}
		lits := make([]bool, n)
		for i := 0; i < n; i++ {
			v := in[i]
			if row>>uint(i)&1 == 0 {
				v = EvalKind(Not, []bool{v})
			}
			lits[i] = v
		}
		minterms = append(minterms, EvalKind(And, lits))
	}
	if len(minterms) == 0 {
		return false
	}
	return EvalKind(Or, minterms)
}

// TestLutEvalExhaustive4 checks EvalLut against the EvalKind-composed
// sum-of-products reference for every 4-input mask and every input row:
// 2^16 functions x 16 rows, the full 4-variable Boolean space.
func TestLutEvalExhaustive4(t *testing.T) {
	in := make([]bool, 4)
	for mask := 0; mask < 1<<16; mask++ {
		for row := 0; row < 16; row++ {
			for i := range in {
				in[i] = row>>uint(i)&1 == 1
			}
			got := EvalLut(uint64(mask), in)
			want := sopEval(uint64(mask), in)
			if got != want {
				t.Fatalf("mask %#04x row %d: EvalLut=%v, SOP reference=%v",
					mask, row, got, want)
			}
		}
	}
}

// TestLutNetlistEvalAllMasks3 drives Netlist.Eval's Lut path against the
// primitive-gate path: one netlist holding, for each of the 256 3-input
// masks, both a Lut cell and its minterm AND-OR gate decomposition. All 8
// input rows must agree column-for-column.
func TestLutNetlistEvalAllMasks3(t *testing.T) {
	nl := New("masks3")
	var in [3]ID
	for i := range in {
		in[i] = nl.AddInput(string(rune('a' + i)))
	}
	inv := [3]ID{
		nl.AddGate(Not, in[0]), nl.AddGate(Not, in[1]), nl.AddGate(Not, in[2]),
	}
	var luts, gates [256]ID
	for mask := 0; mask < 256; mask++ {
		luts[mask] = nl.AddLut(uint64(mask), in[0], in[1], in[2])
		var minterms []ID
		for row := 0; row < 8; row++ {
			if mask>>uint(row)&1 == 0 {
				continue
			}
			lits := make([]ID, 3)
			for i := 0; i < 3; i++ {
				if row>>uint(i)&1 == 1 {
					lits[i] = in[i]
				} else {
					lits[i] = inv[i]
				}
			}
			minterms = append(minterms, nl.AddGate(And, lits...))
		}
		switch len(minterms) {
		case 0:
			gates[mask] = nl.AddConst(false)
		case 1:
			gates[mask] = nl.AddGate(Buf, minterms[0])
		default:
			gates[mask] = nl.AddGate(Or, minterms...)
		}
	}
	for row := 0; row < 8; row++ {
		boundary := map[ID]bool{}
		for i := range in {
			boundary[in[i]] = row>>uint(i)&1 == 1
		}
		vals := nl.Eval(boundary)
		for mask := 0; mask < 256; mask++ {
			if vals[luts[mask]] != vals[gates[mask]] {
				t.Fatalf("mask %#02x row %d: Lut=%v, gate SOP=%v",
					mask, row, vals[luts[mask]], vals[gates[mask]])
			}
		}
	}
}

// buildLutCircuit assembles a small mixed LUT/gate sequential design with
// FPGA-flavoured net names that need backslash escaping in Verilog.
func buildLutCircuit(name string) *Netlist {
	n := New(name)
	a := n.AddInput("a")
	b := n.AddInput("n$7") // escaped-identifier input
	c := n.AddInput("c")
	l1 := n.AddNamedLut("SLICE_X0Y1/lut4.out", 0xcafe, a, b, c, n.AddConst(true))
	l2 := n.AddNamedLut("module", 0x6, l1, a) // keyword net name
	inv := n.AddNamedLut("inv1", 0x1, l2)
	g := n.AddNamedGate("g1", Xor, l1, inv)
	q := n.AddNamedLatch("q", g)
	wide := n.AddLut(0x96969696969696e8, l1, l2, inv, g, q, a)
	n.SetLatchD(q, wide)
	n.MarkOutput("y", wide)
	n.MarkOutput("p", l2)
	return n
}

// buildLutCircuitPermuted builds the same circuit (same names) with a
// different node-creation order, so fingerprints must agree.
func buildLutCircuitPermuted(name string) *Netlist {
	n := New(name)
	c := n.AddInput("c")
	a := n.AddInput("a")
	k1 := n.AddConst(true)
	b := n.AddInput("n$7")
	l1 := n.AddNamedLut("SLICE_X0Y1/lut4.out", 0xcafe, a, b, c, k1)
	l2 := n.AddNamedLut("module", 0x6, l1, a)
	inv := n.AddNamedLut("inv1", 0x1, l2)
	g := n.AddNamedGate("g1", Xor, l1, inv)
	q := n.AddNamedLatch("q", g)
	wide := n.AddLut(0x96969696969696e8, l1, l2, inv, g, q, a)
	n.SetLatchD(q, wide)
	n.MarkOutput("y", wide)
	n.MarkOutput("p", l2)
	return n
}

// TestLutFingerprintReorder: the canonical fingerprint must not move under
// topological reorder (named or fully anonymous nodes), and must move when
// a single LUT mask changes.
func TestLutFingerprintReorder(t *testing.T) {
	f1 := buildLutCircuit("lc").Fingerprint()
	f2 := buildLutCircuitPermuted("lc").Fingerprint()
	if f1 != f2 {
		t.Errorf("reorder moved the fingerprint:\n%s\n%s", f1, f2)
	}

	// Anonymous variant: all internal structure unnamed, two build orders.
	anon := func(swap bool) string {
		n := New("anon")
		a := n.AddInput("a")
		b := n.AddInput("b")
		var x, y ID
		if swap {
			y = n.AddLut(0x8, a, b)
			x = n.AddLut(0x6, a, b)
		} else {
			x = n.AddLut(0x6, a, b)
			y = n.AddLut(0x8, a, b)
		}
		n.MarkOutput("o", n.AddLut(0xe, x, y))
		return n.Fingerprint()
	}
	if anon(false) != anon(true) {
		t.Error("anonymous LUT reorder moved the fingerprint")
	}

	tweaked := buildLutCircuit("lc")
	for id := ID(0); int(id) < tweaked.Len(); id++ {
		if tweaked.Kind(id) == Lut && tweaked.Node(id).Mask == 0xcafe {
			tweaked.Node(id).Mask = 0xcaff
		}
	}
	if tweaked.Fingerprint() == f1 {
		t.Error("changing a LUT mask did not move the fingerprint")
	}
}

// TestLutWriteReadByteStable: after one stabilizing round trip (a write
// can replace an output alias with an explicit Buf), write-read-write must
// be byte-identical in both formats, with LUT INIT parameters and escaped
// FPGA-style cell names surviving verbatim. The stabilized netlists must
// also agree on the canonical fingerprint cross-format.
func TestLutWriteReadByteStable(t *testing.T) {
	src := buildLutCircuit("lutstable")

	type codec struct {
		name  string
		write func(*Netlist, *bytes.Buffer) error
		read  func([]byte) (*Netlist, error)
	}
	codecs := []codec{
		{"verilog",
			func(n *Netlist, b *bytes.Buffer) error { return n.WriteVerilog(b) },
			func(p []byte) (*Netlist, error) { return ReadVerilog(bytes.NewReader(p)) }},
		{"blif",
			func(n *Netlist, b *bytes.Buffer) error { return n.WriteBLIF(b) },
			func(p []byte) (*Netlist, error) { return ReadBLIF(bytes.NewReader(p)) }},
	}
	var fps []string
	for _, c := range codecs {
		// Stabilize: the first write may turn `output p` driven by a net
		// named "module" into an alias construct the reader materializes
		// as a Buf node. From the second write on, bytes must be fixed.
		var w1 bytes.Buffer
		if err := c.write(src, &w1); err != nil {
			t.Fatalf("%s: first write: %v", c.name, err)
		}
		stable, err := c.read(w1.Bytes())
		if err != nil {
			t.Fatalf("%s: reparse: %v\n%s", c.name, err, w1.String())
		}
		if err := stable.Check(); err != nil {
			t.Fatalf("%s: reparsed netlist invalid: %v", c.name, err)
		}
		var w2 bytes.Buffer
		if err := c.write(stable, &w2); err != nil {
			t.Fatalf("%s: second write: %v", c.name, err)
		}
		again, err := c.read(w2.Bytes())
		if err != nil {
			t.Fatalf("%s: second reparse: %v\n%s", c.name, err, w2.String())
		}
		var w3 bytes.Buffer
		if err := c.write(again, &w3); err != nil {
			t.Fatalf("%s: third write: %v", c.name, err)
		}
		if !bytes.Equal(w2.Bytes(), w3.Bytes()) {
			t.Errorf("%s: stabilized write-read-write is not byte-stable:\n--- second\n%s\n--- third\n%s",
				c.name, w2.String(), w3.String())
		}
		if fp, fp2 := stable.Fingerprint(), again.Fingerprint(); fp != fp2 {
			t.Errorf("%s: stabilized reparse moved the fingerprint:\n%s\n%s",
				c.name, fp, fp2)
		}
		if c.name == "verilog" { // BLIF encodes masks as cover rows, not hex
			for _, want := range []string{"cafe", "96969696969696e8"} {
				if !bytes.Contains(w2.Bytes(), []byte(want)) {
					t.Errorf("%s: stabilized output lost LUT INIT %s:\n%s", c.name, want, w2.String())
				}
			}
		}
		fps = append(fps, stable.Fingerprint())
	}
	if fps[0] != fps[1] {
		t.Errorf("cross-format fingerprints differ:\nverilog: %s\nblif:    %s", fps[0], fps[1])
	}
}

// TestReadBLIFLutsOption: with BLIFOptions.Luts, foreign cover tables (no
// '# lut' markers) rebuild as native LUT cells, except the single-cube
// alias cover which stays a Buf.
func TestReadBLIFLutsOption(t *testing.T) {
	src := `
.model foreign
.inputs a b c
.outputs y z
.names a b c w
1-1 1
01- 1
.names w z
1 1
.names w a y
10 1
.end
`
	nl, err := ReadBLIFOpts(bytes.NewReader([]byte(src)), BLIFOptions{Luts: true})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Kind]int{}
	for id := ID(0); int(id) < nl.Len(); id++ {
		counts[nl.Kind(id)]++
	}
	if counts[Lut] != 2 {
		t.Errorf("want 2 native LUTs (w, y), got %d (%v)", counts[Lut], counts)
	}
	if counts[Buf] != 1 {
		t.Errorf("want the alias cover to stay a Buf, got %d (%v)", counts[Buf], counts)
	}
	// Same text without the option decomposes to primitive gates only.
	plain, err := ReadBLIF(bytes.NewReader([]byte(src)))
	if err != nil {
		t.Fatal(err)
	}
	for id := ID(0); int(id) < plain.Len(); id++ {
		if plain.Kind(id) == Lut {
			t.Fatalf("default ReadBLIF built a Lut from an unmarked cover")
		}
	}
}
