package netlist

// Fuzz coverage for the two parsers: malformed input must surface as an
// error, never a panic, and an accepted netlist must satisfy its own
// structural invariants (Check) — the rest of the portfolio assumes them.

import (
	"bytes"
	"strings"
	"testing"
)

// verilogSeeds mixes valid netlists (including writer round-trip output)
// with the known malformed shapes from the parser tests.
func verilogSeeds(f *testing.F) {
	n, _, _, _ := buildFullAdder()
	var buf bytes.Buffer
	if err := n.WriteVerilog(&buf); err != nil {
		f.Fatal(err)
	}
	var lutBuf bytes.Buffer
	if err := buildLutCircuit("fuzzlut").WriteVerilog(&lutBuf); err != nil {
		f.Fatal(err)
	}
	seeds := []string{
		buf.String(),
		lutBuf.String(),
		"module m (a, y);\n input a;\n output y;\n not g0 (y, a);\nendmodule\n",
		"// comment\nmodule m (a, b, y);\ninput a; input b;\noutput y;\nand g (y, a, b);\nendmodule",
		"module m (a); input a; xor g (a); endmodule",
		"module m (a, y); input a; output y; endmodule",
		"module m (y); output y; and g (y, z, z); endmodule",
		"module m (a); input a; frob g (x, a); endmodule",
		"module m (a, y); input a; output y; not g1 (y, y); endmodule",
		"module",
		"",
		"module m (a, y); input a; output y; not g1 (y, a); not g1 (y, a); endmodule",
		"module m (a, b, y);\n input a, b;\n output y;\n LUT2 #(.INIT(4'h6)) g0 (.O(y), .I0(a), .I1(b));\nendmodule\n",
		"module m (a, y); input a; output y; LUT1 #(.INIT(2'h1)) g0 (.O(y), .I0(a), .I1(a)); endmodule",
		"module m (a, y); input a; output y; LUT2 #(.INIT(4'hx)) g0 (.O(y), .I0(a), .I1(a)); endmodule",
		"module m (a, y); input a; output y; LUT9 #(.INIT(9'h0)) g0 (.O(y), .I0(a)); endmodule",
	}
	for _, s := range seeds {
		f.Add(s)
	}
}

func FuzzReadVerilog(f *testing.F) {
	verilogSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		nl, err := ReadVerilog(strings.NewReader(src))
		if err != nil {
			return // rejecting malformed input is the contract
		}
		if nl == nil {
			t.Fatal("nil netlist with nil error")
		}
		if cerr := nl.Check(); cerr != nil {
			t.Fatalf("parser accepted a netlist that fails Check: %v\ninput:\n%s", cerr, src)
		}
	})
}

func FuzzReadBLIF(f *testing.F) {
	n, _, _, _ := buildFullAdder()
	var buf bytes.Buffer
	if err := n.WriteBLIF(&buf); err != nil {
		f.Fatal(err)
	}
	var lutBuf bytes.Buffer
	if err := buildLutCircuit("fuzzlut").WriteBLIF(&lutBuf); err != nil {
		f.Fatal(err)
	}
	seeds := []string{
		buf.String(),
		lutBuf.String(),
		".model demo\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n",
		".model lut\n.inputs a b\n.outputs y\n.names a b y # lut\n10 1\n01 1\n.end\n",
		".model lut\n.inputs a b c d e f g\n.outputs y\n.names a b c d e f g y # lut\n1111111 1\n.end\n",
		".model lut\n.inputs a\n.outputs y\n.names a y # lut\n1- 1\n.end\n",
		".model lut\n.inputs a b\n.outputs y\n.names a b y # lut\n11 0\n.end\n",
		".model l\n.inputs d\n.outputs q\n.latch d q re clk 0\n.end\n",
		".model m\n.inputs a\n.outputs y\n.names a y\n11 1\n.end",
		".model m\n.inputs a\n.outputs y\n.end",
		".model m\n.inputs a\n.outputs y\n.gate foo a y\n.end",
		".model m\n.inputs a\n.outputs y\n.names y y\n1 1\n.end",
		".names a y",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Both reader modes must uphold the no-panic / Check contract; the
		// Luts option changes cover interpretation, not acceptance rules.
		for _, opt := range []BLIFOptions{{}, {Luts: true}} {
			nl, err := ReadBLIFOpts(strings.NewReader(src), opt)
			if err != nil {
				continue
			}
			if nl == nil {
				t.Fatal("nil netlist with nil error")
			}
			if cerr := nl.Check(); cerr != nil {
				t.Fatalf("parser (luts=%v) accepted a netlist that fails Check: %v\ninput:\n%s",
					opt.Luts, cerr, src)
			}
		}
	})
}
