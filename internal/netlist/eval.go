package netlist

// This file implements concrete Boolean evaluation of a netlist: pure
// combinational evaluation given values for inputs and latches, and a
// single-clock sequential step function. These are used by tests (to verify
// that generated circuits and simplifications behave correctly) and by the
// dynamic parts of the benchmark harness.

// EvalKind computes the output of a gate of the given kind over the fanin
// values. It panics for non-combinational kinds.
func EvalKind(k Kind, in []bool) bool {
	switch k {
	case Const0:
		return false
	case Const1:
		return true
	case And, Nand:
		v := true
		for _, b := range in {
			v = v && b
		}
		if k == Nand {
			return !v
		}
		return v
	case Or, Nor:
		v := false
		for _, b := range in {
			v = v || b
		}
		if k == Nor {
			return !v
		}
		return v
	case Xor, Xnor:
		v := false
		for _, b := range in {
			v = v != b
		}
		if k == Xnor {
			return !v
		}
		return v
	case Not:
		return !in[0]
	case Buf:
		return in[0]
	}
	panic("netlist: EvalKind on non-combinational kind " + k.String())
}

// EvalLut computes the output of a Lut node with the given packed mask over
// the fanin values: it indexes the mask by the row encoded by in, with in[0]
// the least significant variable.
func EvalLut(mask uint64, in []bool) bool {
	row := 0
	for i, b := range in {
		if b {
			row |= 1 << uint(i)
		}
	}
	return mask>>uint(row)&1 == 1
}

// Eval computes the value of every node given an assignment to the boundary
// signals. boundary must supply a value for every primary input and latch;
// missing entries default to false. The returned slice is indexed by node
// ID.
func (n *Netlist) Eval(boundary map[ID]bool) []bool {
	vals := make([]bool, len(n.nodes))
	order := n.TopoOrder()
	var buf []bool
	for _, id := range order {
		node := &n.nodes[id]
		switch {
		case node.Kind == Input || node.Kind == Latch:
			vals[id] = boundary[id]
		case node.Kind == Const1:
			vals[id] = true
		case node.Kind == Const0:
			vals[id] = false
		default:
			buf = buf[:0]
			for _, f := range node.Fanin {
				buf = append(buf, vals[f])
			}
			if node.Kind == Lut {
				vals[id] = EvalLut(node.Mask, buf)
			} else {
				vals[id] = EvalKind(node.Kind, buf)
			}
		}
	}
	return vals
}

// State holds the latch values of a netlist between sequential steps.
type State map[ID]bool

// NewState returns an all-zero state for the netlist.
func (n *Netlist) NewState() State { return make(State) }

// Step performs one clock cycle: it evaluates the combinational logic under
// the current state and input assignment, returns the node values, and
// advances every latch to the value of its D input.
func (n *Netlist) Step(st State, inputs map[ID]bool) []bool {
	boundary := make(map[ID]bool, len(st)+len(inputs))
	for id, v := range st {
		boundary[id] = v
	}
	for id, v := range inputs {
		boundary[id] = v
	}
	vals := n.Eval(boundary)
	for _, l := range n.Latches() {
		st[l] = vals[n.nodes[l].Fanin[0]]
	}
	return vals
}

// OutputValues extracts the primary output values from an Eval/Step result.
func (n *Netlist) OutputValues(vals []bool) map[string]bool {
	out := make(map[string]bool, len(n.outputs))
	for _, p := range n.outputs {
		out[p.Name] = vals[p.Driver]
	}
	return out
}
