// Package graph implements the latch connection graph (LCG) and its
// single-path variant (SPLCG) from Sections III-A.1 and III-B.1 of the
// paper, together with the chain-topology searches used to generate counter
// and shift-register candidates.
package graph

import (
	"sort"

	"netlistre/internal/netlist"
)

// LCG is the latch connection graph: vertices are latches, and a directed
// edge (u, v) exists iff a combinational path runs from the output of u to
// the D input of v. Edge multiplicity distinguishes the LCG (any path) from
// the SPLCG (exactly one path).
type LCG struct {
	// Latches lists the vertices in netlist order.
	Latches []netlist.ID
	// Succ[u] maps each latch to its successors, with the saturated
	// combinational path count (1 or 2, where 2 means "more than one").
	Succ map[netlist.ID]map[netlist.ID]int
	// Pred is the reverse adjacency (path counts mirrored from Succ).
	Pred map[netlist.ID]map[netlist.ID]int
}

// BuildLCG constructs the latch connection graph of nl. Path counts
// saturate at 2: the analyses only need to distinguish "no path", "exactly
// one path" and "multiple paths".
func BuildLCG(nl *netlist.Netlist) *LCG {
	g := &LCG{
		Latches: nl.Latches(),
		Succ:    make(map[netlist.ID]map[netlist.ID]int),
		Pred:    make(map[netlist.ID]map[netlist.ID]int),
	}
	for _, l := range g.Latches {
		g.Succ[l] = make(map[netlist.ID]int)
	}
	for _, l := range g.Latches {
		g.Pred[l] = make(map[netlist.ID]int)
	}

	// For each latch v, count combinational paths from every boundary
	// signal of its D cone. A single backward DP per latch: paths(x) =
	// number of paths from node x to v's D input, saturated at 2.
	for _, v := range g.Latches {
		d := nl.Fanin(v)[0]
		// Count boundary contributions: for boundary node u, the number of
		// paths u→v equals the number of paths from each gate g that has u
		// as fanin, summed over occurrences.
		boundary := make(map[netlist.ID]int)
		cone := nl.ConeOf(d)
		// fanCount(g) = number of paths from output of g to D input.
		fan := make(map[netlist.ID]int)
		if nl.Kind(d).IsConeInput() {
			boundary[d] += 1
		} else {
			fan[d] = 1
			// Process cone nodes in reverse topological order: fan of a
			// node's fanin accumulates fan of the node.
			order := topoWithin(nl, cone.Nodes, d)
			for _, x := range order {
				fx := fan[x]
				if fx == 0 {
					continue
				}
				for _, f := range nl.Fanin(x) {
					if nl.Kind(f).IsConeInput() {
						boundary[f] += fx
						if boundary[f] > 2 {
							boundary[f] = 2
						}
					} else {
						fan[f] += fx
						if fan[f] > 2 {
							fan[f] = 2
						}
					}
				}
			}
		}
		for u, c := range boundary {
			if nl.Kind(u) != netlist.Latch {
				continue
			}
			g.Succ[u][v] = c
			g.Pred[v][u] = c
		}
	}
	return g
}

// topoWithin returns the cone nodes ordered so that each node precedes its
// fanins (reverse topological from root).
func topoWithin(nl *netlist.Netlist, nodes []netlist.ID, root netlist.ID) []netlist.ID {
	inCone := make(map[netlist.ID]bool, len(nodes))
	for _, n := range nodes {
		inCone[n] = true
	}
	var order []netlist.ID
	state := make(map[netlist.ID]byte)
	type frame struct {
		id       netlist.ID
		expanded bool
	}
	stack := []frame{{root, false}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		if state[f.id] == 2 {
			stack = stack[:len(stack)-1]
			continue
		}
		if !f.expanded {
			stack[len(stack)-1].expanded = true
			for _, fi := range nl.Fanin(f.id) {
				if inCone[fi] && state[fi] == 0 {
					state[fi] = 1
					stack = append(stack, frame{fi, false})
				}
			}
			continue
		}
		stack = stack[:len(stack)-1]
		state[f.id] = 2
		order = append(order, f.id)
	}
	// order currently lists fanins before roots (post-order); reverse it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// HasEdge reports whether the LCG has an edge u -> v (any multiplicity).
func (g *LCG) HasEdge(u, v netlist.ID) bool { return g.Succ[u][v] > 0 }

// HasSingleEdge reports whether exactly one combinational path u -> v
// exists (the SPLCG edge relation).
func (g *LCG) HasSingleEdge(u, v netlist.ID) bool { return g.Succ[u][v] == 1 }

// CounterChains finds ordered latch sets V = {v1..vk} with the counter
// topology of Figure 5: for all i, j: edge (vi, vj) exists iff i <= j.
// In particular every member has a self-loop, earlier members feed all
// later members, and no backward edges exist. Chains shorter than minLen
// are discarded; maximal chains are returned.
func (g *LCG) CounterChains(minLen int) [][]netlist.ID {
	if minLen < 2 {
		minLen = 2
	}
	// Candidates must have self-loops.
	var selfLoop []netlist.ID
	for _, l := range g.Latches {
		if g.HasEdge(l, l) {
			selfLoop = append(selfLoop, l)
		}
	}
	// Greedy maximal-chain growth from each start, deduplicated by chain
	// signature. A latch v can follow chain c when every member of c has
	// an edge to v and v has no edge back to any member (v's own edges to
	// later members are checked as the chain grows).
	seen := make(map[string]bool)
	var chains [][]netlist.ID

	for _, start := range selfLoop {
		chain := []netlist.ID{start}
		for {
			// Eligible candidates: fed by every chain member, feeding none.
			var elig []netlist.ID
			for _, cand := range selfLoop {
				if contains(chain, cand) {
					continue
				}
				ok := true
				for _, m := range chain {
					if !g.HasEdge(m, cand) || g.HasEdge(cand, m) {
						ok = false
						break
					}
				}
				if ok {
					elig = append(elig, cand)
				}
			}
			if len(elig) == 0 {
				break
			}
			// In a counter, the true next bit dominates: it feeds every
			// other eligible (higher) bit. Picking a non-dominating
			// candidate would skip a bit and break the chain.
			next := elig[0]
			for _, cand := range elig {
				dominates := true
				for _, other := range elig {
					if other != cand && !g.HasEdge(cand, other) {
						dominates = false
						break
					}
				}
				if dominates {
					next = cand
					break
				}
			}
			chain = append(chain, next)
		}
		if len(chain) < minLen {
			continue
		}
		key := chainKey(chain)
		if !seen[key] {
			seen[key] = true
			chains = append(chains, chain)
		}
	}
	// Drop chains that are strict prefixes/subsets of others.
	return dropSubChains(chains)
}

// ShiftChains finds maximal latch chains v1 -> v2 -> ... -> vk in the
// SPLCG where consecutive latches are connected by exactly one
// combinational path and non-consecutive members are not connected at all
// (Section III-B.1). Chains shorter than minLen are discarded.
func (g *LCG) ShiftChains(minLen int) [][]netlist.ID {
	if minLen < 2 {
		minLen = 2
	}
	// next[u] = v when u has exactly one SPLCG successor v (self-loops from
	// hold/enable muxes are ignored: the paper's functional check, Eq. 3,
	// handles the hold term). Latches with several SPLCG successors are
	// branch points and terminate chains, since the chain relation requires
	// an edge iff j = i+1. Multi-bit shift registers shifting in tandem
	// appear as parallel chains and are aggregated afterwards.
	next := make(map[netlist.ID]netlist.ID)
	indeg := make(map[netlist.ID]int)
	for _, u := range g.Latches {
		var succ []netlist.ID
		for v, cnt := range g.Succ[u] {
			if v == u || cnt != 1 {
				continue
			}
			succ = append(succ, v)
		}
		if len(succ) == 1 {
			next[u] = succ[0]
			indeg[succ[0]]++
		}
	}
	var chains [][]netlist.ID
	for _, u := range g.Latches {
		if indeg[u] != 0 {
			continue // not a chain head
		}
		chain := []netlist.ID{u}
		cur := u
		for {
			v, ok := next[cur]
			if !ok || contains(chain, v) {
				break
			}
			// v must have at most one usable predecessor (cur) to extend a
			// clean chain; indeg counts that.
			if indeg[v] != 1 {
				break
			}
			chain = append(chain, v)
			cur = v
		}
		if len(chain) >= minLen {
			chains = append(chains, chain)
		}
	}
	sort.Slice(chains, func(i, j int) bool { return chains[i][0] < chains[j][0] })
	return chains
}

func contains(ids []netlist.ID, id netlist.ID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

func chainKey(chain []netlist.ID) string {
	s := netlist.SortedIDs(chain)
	b := make([]byte, 0, len(s)*4)
	for _, id := range s {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}

func dropSubChains(chains [][]netlist.ID) [][]netlist.ID {
	var out [][]netlist.ID
	for i, c := range chains {
		sub := false
		ci := map[netlist.ID]bool{}
		for _, x := range c {
			ci[x] = true
		}
		for j, d := range chains {
			if i == j || len(d) < len(c) || (len(d) == len(c) && j < i) {
				continue
			}
			all := true
			for _, x := range c {
				if !contains(d, x) {
					all = false
					break
				}
			}
			if all && (len(d) > len(c) || j > i) {
				sub = true
				break
			}
		}
		if !sub {
			out = append(out, c)
		}
	}
	return out
}
