package graph

import (
	"testing"

	"netlistre/internal/gen"
	"netlistre/internal/netlist"
)

func TestLCGEdges(t *testing.T) {
	nl := netlist.New("t")
	a := nl.AddInput("a")
	l1 := nl.AddLatch(a)
	g1 := nl.AddGate(netlist.Not, l1)
	l2 := nl.AddLatch(g1)
	l3 := nl.AddLatch(l2) // direct latch-to-latch
	g := BuildLCG(nl)
	if !g.HasEdge(l1, l2) || !g.HasSingleEdge(l1, l2) {
		t.Error("missing single edge l1->l2")
	}
	if !g.HasEdge(l2, l3) {
		t.Error("missing edge l2->l3 (direct connection)")
	}
	if g.HasEdge(l2, l1) || g.HasEdge(l3, l1) {
		t.Error("spurious backward edges")
	}
}

func TestLCGMultiPath(t *testing.T) {
	nl := netlist.New("t")
	a := nl.AddInput("a")
	l1 := nl.AddLatch(a)
	p1 := nl.AddGate(netlist.Not, l1)
	p2 := nl.AddGate(netlist.Buf, l1)
	m := nl.AddGate(netlist.And, p1, p2)
	l2 := nl.AddLatch(m)
	g := BuildLCG(nl)
	if !g.HasEdge(l1, l2) {
		t.Error("missing edge")
	}
	if g.HasSingleEdge(l1, l2) {
		t.Error("two paths must not be a single edge")
	}
}

func TestCounterChainsOnRealCounter(t *testing.T) {
	nl := netlist.New("ctr")
	en := nl.AddInput("en")
	rst := nl.AddInput("rst")
	q := gen.Counter(nl, 6, en, rst, false)
	g := BuildLCG(nl)
	chains := g.CounterChains(2)
	if len(chains) != 1 {
		t.Fatalf("found %d chains, want 1: %v", len(chains), chains)
	}
	if len(chains[0]) != 6 {
		t.Fatalf("chain length = %d, want 6", len(chains[0]))
	}
	// The chain must be in counter bit order.
	for i, l := range chains[0] {
		if l != q[i] {
			t.Errorf("chain[%d] = %d, want %d", i, l, q[i])
		}
	}
}

func TestCounterChainsIgnoreShiftRegisters(t *testing.T) {
	nl := netlist.New("sh")
	en := nl.AddInput("en")
	rst := nl.AddInput("rst")
	sin := nl.AddInput("sin")
	gen.ShiftRegister(nl, 6, en, rst, sin)
	g := BuildLCG(nl)
	// Shift register bits have self-loops (hold muxes) but no full counter
	// triangle: bit j is fed only by bit j-1 and itself.
	for _, c := range g.CounterChains(2) {
		if len(c) > 2 {
			t.Errorf("shift register produced counter chain of length %d", len(c))
		}
	}
}

func TestShiftChainsOnRealShiftRegister(t *testing.T) {
	nl := netlist.New("sh")
	en := nl.AddInput("en")
	rst := nl.AddInput("rst")
	sin := nl.AddInput("sin")
	q := gen.ShiftRegister(nl, 5, en, rst, sin)
	g := BuildLCG(nl)
	chains := g.ShiftChains(2)
	if len(chains) != 1 {
		t.Fatalf("found %d chains, want 1: %v", len(chains), chains)
	}
	if len(chains[0]) != 5 {
		t.Fatalf("chain length = %d, want 5", len(chains[0]))
	}
	for i, l := range chains[0] {
		if l != q[i] {
			t.Errorf("chain[%d] = %d, want %d", i, l, q[i])
		}
	}
}

func TestShiftChainsParallel(t *testing.T) {
	// Two independent shift registers must yield two separate chains.
	nl := netlist.New("sh2")
	en := nl.AddInput("en")
	rst := nl.AddInput("rst")
	s1 := nl.AddInput("s1")
	s2 := nl.AddInput("s2")
	gen.ShiftRegister(nl, 4, en, rst, s1)
	gen.ShiftRegister(nl, 4, en, rst, s2)
	g := BuildLCG(nl)
	chains := g.ShiftChains(2)
	if len(chains) != 2 {
		t.Fatalf("found %d chains, want 2", len(chains))
	}
	for _, c := range chains {
		if len(c) != 4 {
			t.Errorf("chain length = %d, want 4", len(c))
		}
	}
}

func TestCounterChainOnMixedDesign(t *testing.T) {
	// A counter embedded next to a register file should still be found.
	nl := netlist.New("mix")
	en := nl.AddInput("en")
	rst := nl.AddInput("rst")
	q := gen.Counter(nl, 4, en, rst, false)
	waddr := gen.InputWord(nl, "wa", 2)
	raddr := gen.InputWord(nl, "ra", 2)
	wdata := gen.InputWord(nl, "wd", 4)
	we := nl.AddInput("we")
	gen.RegisterFile(nl, 4, 4, waddr, wdata, we, raddr)
	g := BuildLCG(nl)
	found := false
	for _, c := range g.CounterChains(3) {
		if len(c) == 4 && c[0] == q[0] {
			found = true
		}
	}
	if !found {
		t.Error("counter not found next to register file")
	}
}
