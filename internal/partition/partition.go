// Package partition implements the reset-tree partitioning used to make
// BigSoC tractable (Section V-C.2): every latch is marked with the reset
// inputs found in its combinational fan-in cone, and each core's partition
// is the union of its latches and the gates of their cones. The package
// also extracts a partition into a standalone netlist so the inference
// portfolio can run per core.
package partition

import (
	"sort"

	"netlistre/internal/netlist"
)

// Partition is one reset domain.
type Partition struct {
	// Reset is the reset input anchoring the partition.
	Reset netlist.ID
	// Name is the reset input's name.
	Name string
	// Latches are the latches whose next-state cones read Reset.
	Latches []netlist.ID
	// Elements are the latches plus the gates of their cones.
	Elements []netlist.ID
}

// Summary reports the whole-design accounting of Table 5.
type Summary struct {
	Partitions []Partition
	// MultiOwned counts gates placed in more than one partition.
	MultiOwned int
	// Unowned counts gates in no partition (e.g. inter-core interconnect).
	Unowned int
}

// ByResets partitions nl by the given reset inputs.
func ByResets(nl *netlist.Netlist, resets []netlist.ID) Summary {
	owner := make(map[netlist.ID]map[netlist.ID]bool) // gate -> set of resets
	mark := func(g, r netlist.ID) {
		if owner[g] == nil {
			owner[g] = make(map[netlist.ID]bool)
		}
		owner[g][r] = true
	}

	isReset := make(map[netlist.ID]bool, len(resets))
	for _, r := range resets {
		isReset[r] = true
	}

	parts := make([]Partition, len(resets))
	for i, r := range resets {
		parts[i] = Partition{Reset: r, Name: nl.NameOf(r)}
	}
	residx := make(map[netlist.ID]int, len(resets))
	for i, r := range resets {
		residx[r] = i
	}

	for _, l := range nl.Latches() {
		cone := nl.ConeOf(nl.Fanin(l)[0])
		for _, in := range cone.Inputs {
			if !isReset[in] {
				continue
			}
			p := &parts[residx[in]]
			p.Latches = append(p.Latches, l)
			p.Elements = append(p.Elements, l)
			for _, g := range cone.Nodes {
				p.Elements = append(p.Elements, g)
				mark(g, in)
			}
		}
	}

	var s Summary
	for i := range parts {
		parts[i].Elements = dedupe(parts[i].Elements)
		parts[i].Latches = dedupe(parts[i].Latches)
	}
	s.Partitions = parts
	for _, g := range nl.Gates() {
		switch len(owner[g]) {
		case 0:
			s.Unowned++
		case 1:
		default:
			s.MultiOwned++
		}
	}
	return s
}

func dedupe(ids []netlist.ID) []netlist.ID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || ids[i-1] != id {
			out = append(out, id)
		}
	}
	return out
}

// Extract builds a standalone netlist from a partition's elements. Signals
// feeding the partition from outside become fresh primary inputs. It
// returns the sub-netlist and the mapping from original to extracted IDs.
func Extract(nl *netlist.Netlist, p Partition) (*netlist.Netlist, map[netlist.ID]netlist.ID) {
	inPart := make(map[netlist.ID]bool, len(p.Elements))
	for _, e := range p.Elements {
		inPart[e] = true
	}
	sub := netlist.New(nl.Name + "." + p.Name)
	m := make(map[netlist.ID]netlist.ID)

	var resolve func(id netlist.ID) netlist.ID
	var latchPatch []netlist.ID
	resolve = func(id netlist.ID) netlist.ID {
		if r, ok := m[id]; ok {
			return r
		}
		node := nl.Node(id)
		if !inPart[id] || node.Kind == netlist.Input {
			// Boundary: external signal becomes an input.
			r := sub.AddInput("ext_" + nl.NameOf(id))
			m[id] = r
			return r
		}
		switch node.Kind {
		case netlist.Latch:
			r := sub.AddLatch(sub.AddConst(false))
			m[id] = r
			latchPatch = append(latchPatch, id)
			return r
		case netlist.Const0, netlist.Const1:
			r := sub.AddConst(node.Kind == netlist.Const1)
			m[id] = r
			return r
		default:
			fan := make([]netlist.ID, len(node.Fanin))
			for i, f := range node.Fanin {
				fan[i] = resolve(f)
			}
			r := sub.AddGateLike(node, fan...)
			m[id] = r
			return r
		}
	}
	for _, e := range p.Elements {
		resolve(e)
	}
	// Latch D inputs: keep resolving until no new latches appear (a D cone
	// may pull in further partition latches).
	for i := 0; i < len(latchPatch); i++ {
		orig := latchPatch[i]
		sub.SetLatchD(m[orig], resolve(nl.Fanin(orig)[0]))
	}
	return sub, m
}
