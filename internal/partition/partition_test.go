package partition

import (
	"testing"

	"netlistre/internal/gen"
	"netlistre/internal/netlist"
)

// twoCoreDesign builds two independent counter cores with separate resets
// plus a shared interconnect gate owned by neither.
func twoCoreDesign() (*netlist.Netlist, []netlist.ID) {
	nl := netlist.New("soc")
	rst1 := nl.AddInput("rst1")
	rst2 := nl.AddInput("rst2")
	en := nl.AddInput("en")
	q1 := gen.Counter(nl, 4, en, rst1, false)
	q2 := gen.Counter(nl, 4, en, rst2, false)
	// Interconnect: combinational logic reading both cores but feeding a
	// primary output (no latch), hence unowned.
	x := nl.AddGate(netlist.Xor, q1[0], q2[0])
	nl.MarkOutput("link", x)
	return nl, []netlist.ID{rst1, rst2}
}

func TestByResets(t *testing.T) {
	nl, resets := twoCoreDesign()
	s := ByResets(nl, resets)
	if len(s.Partitions) != 2 {
		t.Fatalf("got %d partitions", len(s.Partitions))
	}
	for i, p := range s.Partitions {
		if len(p.Latches) != 4 {
			t.Errorf("partition %d has %d latches, want 4", i, len(p.Latches))
		}
		if len(p.Elements) <= 4 {
			t.Errorf("partition %d has no gates", i)
		}
	}
	if s.MultiOwned != 0 {
		t.Errorf("multi-owned = %d, want 0 (independent cores)", s.MultiOwned)
	}
	// The xor interconnect is unowned.
	if s.Unowned < 1 {
		t.Errorf("unowned = %d, want >= 1", s.Unowned)
	}
}

func TestSharedLogicIsMultiOwned(t *testing.T) {
	nl := netlist.New("shared")
	rst1 := nl.AddInput("rst1")
	rst2 := nl.AddInput("rst2")
	shared := nl.AddGate(netlist.Or, rst1, rst2)
	a := nl.AddInput("a")
	d := nl.AddGate(netlist.And, a, nl.AddGate(netlist.Not, shared))
	nl.AddLatch(d)
	s := ByResets(nl, []netlist.ID{rst1, rst2})
	if s.MultiOwned < 2 {
		t.Errorf("multi-owned = %d, want >= 2 (or gate + and gate)", s.MultiOwned)
	}
}

func TestExtractBehaviour(t *testing.T) {
	nl, resets := twoCoreDesign()
	s := ByResets(nl, resets)
	sub, m := Extract(nl, s.Partitions[0])
	if err := sub.Check(); err != nil {
		t.Fatalf("extracted netlist invalid: %v", err)
	}
	if got := sub.Stats().Latches; got != 4 {
		t.Errorf("extracted latches = %d, want 4", got)
	}
	// The extracted core must still count: drive ext inputs and compare
	// against the original counter behaviour.
	var rstIn, enIn netlist.ID = netlist.Nil, netlist.Nil
	for _, in := range sub.Inputs() {
		switch sub.NameOf(in) {
		case "ext_rst1":
			rstIn = in
		case "ext_en":
			enIn = in
		}
	}
	if rstIn == netlist.Nil || enIn == netlist.Nil {
		t.Fatalf("boundary inputs missing: %v", sub.Inputs())
	}
	st := sub.NewState()
	sub.Step(st, map[netlist.ID]bool{rstIn: true})
	for cycle := 0; cycle < 5; cycle++ {
		sub.Step(st, map[netlist.ID]bool{rstIn: false, enIn: true})
	}
	// Counter value should be 5 after 5 enabled cycles.
	var latches []netlist.ID
	for _, p := range s.Partitions[0].Latches {
		latches = append(latches, m[p])
	}
	got := 0
	for i, l := range latches {
		if st[l] {
			got |= 1 << uint(i)
		}
	}
	if got != 5 {
		t.Errorf("extracted counter = %d, want 5", got)
	}
}
