package partition

// Fleet-mode support: automatic reset discovery and the canonical "wire
// form" of an extracted partition. Fleet mode ships partitions to peer
// workers as structural Verilog, and the stage store memoizes per-stage
// results keyed by the netlist fingerprint, so the serialized partition
// must depend only on the partition's structure — not on the parent's
// node numbering or on synthesized names of unnamed boundary nodes.
// Canonical strips every node name so the fingerprint (and therefore the
// fleet-wide cache identity) of a partition survives topological
// reordering and net renaming of the parent netlist.

import (
	"sort"

	"netlistre/internal/netlist"
)

// GuessOptions tunes automatic reset discovery.
type GuessOptions struct {
	// MinLatches is the smallest number of latches an input must reach
	// (through latch next-state cones) to anchor a partition, and the
	// smallest number of *new* latches each accepted anchor must add
	// (default 4).
	MinLatches int
	// MaxResets caps the number of anchors returned (default 32).
	MaxResets int
}

func (o GuessOptions) withDefaults() GuessOptions {
	if o.MinLatches <= 0 {
		o.MinLatches = 4
	}
	if o.MaxResets <= 0 {
		o.MaxResets = 32
	}
	return o
}

// GuessResets discovers partition anchors in a netlist with no declared
// reset list: the per-core reset (or reset-like high-coverage control)
// inputs of Section V-C.2's reset-tree analysis. An input qualifies when
// it appears in the combinational next-state cone of at least MinLatches
// latches; candidates are ranked by latch coverage (ties broken by name)
// and accepted greedily while each adds at least MinLatches latches not
// reached by an earlier anchor. The result is deterministic: it depends
// only on the netlist's structure and names, never on map iteration or
// node creation order beyond the IDs themselves.
func GuessResets(nl *netlist.Netlist, opt GuessOptions) []netlist.ID {
	opt = opt.withDefaults()

	// latchesOf[input] = set of latches whose D cones read the input.
	latchesOf := make(map[netlist.ID][]netlist.ID)
	for _, l := range nl.Latches() {
		cone := nl.ConeOf(nl.Fanin(l)[0])
		for _, in := range cone.Inputs {
			if nl.Node(in).Kind == netlist.Input {
				latchesOf[in] = append(latchesOf[in], l)
			}
		}
	}

	type cand struct {
		id      netlist.ID
		latches []netlist.ID
	}
	var cands []cand
	for in, ls := range latchesOf {
		if len(ls) >= opt.MinLatches {
			cands = append(cands, cand{in, ls})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if len(cands[i].latches) != len(cands[j].latches) {
			return len(cands[i].latches) > len(cands[j].latches)
		}
		return nl.NameOf(cands[i].id) < nl.NameOf(cands[j].id)
	})

	covered := make(map[netlist.ID]bool)
	var resets []netlist.ID
	for _, c := range cands {
		if len(resets) >= opt.MaxResets {
			break
		}
		fresh := 0
		for _, l := range c.latches {
			if !covered[l] {
				fresh++
			}
		}
		if fresh < opt.MinLatches {
			continue
		}
		for _, l := range c.latches {
			covered[l] = true
		}
		resets = append(resets, c.id)
	}
	return resets
}

// Canonical rewrites an extracted partition in place into its canonical
// wire form: the design name becomes name and every node name is cleared,
// so WriteVerilog emits purely positional n<id> nets and the fingerprint
// depends only on the partition's structure plus the given name. Two
// extractions of the same logical partition from topologically reordered
// or net-renamed parents are isomorphic, and with names stripped their
// fingerprints are identical — which is what lets fleet workers share
// stage-store entries for the same partition across equivalent parent
// submissions.
func Canonical(sub *netlist.Netlist, name string) {
	sub.Name = name
	for i := 0; i < sub.Len(); i++ {
		if sub.Node(netlist.ID(i)).Name != "" {
			sub.SetName(netlist.ID(i), "")
		}
	}
}
