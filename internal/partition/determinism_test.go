package partition

// Fleet mode requires the partitioning pipeline to be deterministic under
// representation changes of the parent netlist: topological reorder and
// net renaming must leave the canonical wire form of every partition
// fingerprint-identical, or peers (and the shared stage store) would see
// the "same" partition as different work.

import (
	"testing"

	"netlistre/internal/gen"
	"netlistre/internal/netlist"
	"netlistre/internal/oracle/mutate"
)

func mutationByName(t *testing.T, name string) mutate.Mutation {
	t.Helper()
	for _, m := range mutate.All() {
		if m.Name == name {
			return m
		}
	}
	t.Fatalf("no mutation named %q", name)
	return mutate.Mutation{}
}

// canonicalFingerprints partitions nl by the named resets and returns the
// canonical-wire-form fingerprint of each extracted partition, keyed by
// reset name. Canonicalization uses only the reset name, never parent IDs,
// so the keys and values are comparable across representation changes.
func canonicalFingerprints(t *testing.T, nl *netlist.Netlist, resetNames []string) map[string]string {
	t.Helper()
	var resets []netlist.ID
	for _, name := range resetNames {
		id := nl.FindByName(name)
		if id == netlist.Nil {
			t.Fatalf("reset %q not found", name)
		}
		resets = append(resets, id)
	}
	s := ByResets(nl, resets)
	if len(s.Partitions) != len(resetNames) {
		t.Fatalf("got %d partitions, want %d", len(s.Partitions), len(resetNames))
	}
	fps := make(map[string]string, len(s.Partitions))
	for _, p := range s.Partitions {
		sub, _ := Extract(nl, p)
		Canonical(sub, "part:"+p.Name)
		fps[p.Name] = sub.Fingerprint()
	}
	return fps
}

func TestCanonicalPartitionsSurviveReorderAndRename(t *testing.T) {
	nl, _ := twoCoreDesign()
	resetNames := []string{"rst1", "rst2"}
	base := canonicalFingerprints(t, nl, resetNames)

	for _, mname := range []string{"reorder", "rename"} {
		m := mutationByName(t, mname)
		for seed := int64(1); seed <= 3; seed++ {
			mut, err := m.Apply(nl, &gen.Labels{}, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", mname, seed, err)
			}
			got := canonicalFingerprints(t, mut.Netlist, resetNames)
			for name, fp := range base {
				if got[name] != fp {
					t.Errorf("%s seed %d: partition %q fingerprint %s, want %s",
						mname, seed, name, got[name], fp)
				}
			}
		}
	}
}

func TestCanonicalIsLoadBearingUnderRename(t *testing.T) {
	// Without Canonical, a renamed parent yields extracted partitions with
	// different boundary-input names and therefore different fingerprints —
	// the failure mode Canonical exists to prevent.
	nl, resets := twoCoreDesign()
	s := ByResets(nl, resets)
	rawBase, _ := Extract(nl, s.Partitions[0])

	m := mutationByName(t, "rename")
	mut, err := m.Apply(nl, &gen.Labels{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	mutResets := []netlist.ID{mut.Netlist.FindByName("rst1"), mut.Netlist.FindByName("rst2")}
	ms := ByResets(mut.Netlist, mutResets)
	rawMut, _ := Extract(mut.Netlist, ms.Partitions[0])

	if rawBase.Fingerprint() == rawMut.Fingerprint() {
		t.Skip("rename did not alter this partition's raw serialization; nothing to show")
	}
	Canonical(rawBase, "p")
	Canonical(rawMut, "p")
	if rawBase.Fingerprint() != rawMut.Fingerprint() {
		t.Errorf("canonical forms still differ: %s vs %s", rawBase.Fingerprint(), rawMut.Fingerprint())
	}
}

func TestGuessResetsFindsPerCoreResets(t *testing.T) {
	nl := gen.SoC("minisoc", []string{"usb", "router"}, 0, 0)
	resets := GuessResets(nl, GuessOptions{})
	if len(resets) == 0 {
		t.Fatal("no resets guessed on a two-core SoC")
	}
	// Every core reset input reaches all of its core's latch cones, so the
	// greedy cover should anchor on (at least) the two rst_* inputs.
	names := make(map[string]bool, len(resets))
	for _, id := range resets {
		names[nl.NameOf(id)] = true
	}
	for _, want := range []string{"rst_usb", "rst_router"} {
		if !names[want] {
			t.Errorf("guessed anchors %v miss %s", keys(names), want)
		}
	}
	// The anchored partitions must cover the overwhelming majority of
	// latches: the glue between cores is combinational.
	s := ByResets(nl, resets)
	owned := 0
	for _, p := range s.Partitions {
		owned += len(p.Latches)
	}
	if total := nl.Stats().Latches; owned < total*9/10 {
		t.Errorf("anchored partitions own %d of %d latches", owned, total)
	}
}

func TestGuessResetsDeterministic(t *testing.T) {
	nl := gen.SoC("minisoc", []string{"usb", "router"}, 11, 0.15)
	base := GuessResets(nl, GuessOptions{})
	baseNames := make([]string, len(base))
	for i, id := range base {
		baseNames[i] = nl.NameOf(id)
	}

	// Same netlist, repeated calls: identical answer.
	for run := 0; run < 3; run++ {
		again := GuessResets(nl, GuessOptions{})
		if len(again) != len(base) {
			t.Fatalf("run %d: %d anchors, want %d", run, len(again), len(base))
		}
		for i := range again {
			if again[i] != base[i] {
				t.Fatalf("run %d: anchor %d = %v, want %v", run, i, again[i], base[i])
			}
		}
	}

	// Reordered parent: same anchors by name.
	m := mutationByName(t, "reorder")
	mut, err := m.Apply(nl, &gen.Labels{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	mutResets := GuessResets(mut.Netlist, GuessOptions{})
	if len(mutResets) != len(base) {
		t.Fatalf("reordered parent: %d anchors, want %d", len(mutResets), len(base))
	}
	for i, id := range mutResets {
		if got := mut.Netlist.NameOf(id); got != baseNames[i] {
			t.Errorf("reordered anchor %d = %s, want %s", i, got, baseNames[i])
		}
	}
}

func TestGuessResetsRespectsBounds(t *testing.T) {
	nl := gen.SoC("minisoc", []string{"usb", "router"}, 0, 0)
	if got := GuessResets(nl, GuessOptions{MaxResets: 1}); len(got) != 1 {
		t.Errorf("MaxResets=1 returned %d anchors", len(got))
	}
	// A MinLatches above every core's latch count leaves nothing.
	if got := GuessResets(nl, GuessOptions{MinLatches: 1 << 20}); len(got) != 0 {
		t.Errorf("impossible MinLatches still returned %d anchors", len(got))
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
