package seq

// Multibit register identification (Section III-D, Figure 7): an
// aggregated multiplexer (or a cascade of them) drives the D inputs of a
// latch word, and one leg of the cascade is the latch word itself (the
// hold path). The detection walks mux modules produced by common-select
// aggregation.

import (
	"fmt"

	"netlistre/internal/module"
	"netlistre/internal/netlist"
)

// FindMultibitRegisters inspects aggregated mux modules: a mux whose
// outputs feed latch D inputs anchors a candidate; the hold path is traced
// backwards through cascaded mux modules until it reaches the latch word
// itself.
func FindMultibitRegisters(nl *netlist.Netlist, muxes []*module.Module, opt Options) []*module.Module {
	opt.defaults()
	// Index mux modules by their output word for cascade walking.
	outKey := func(w []netlist.ID) string { return idKeySeq(netlist.SortedIDs(w)) }
	byOut := make(map[string]*module.Module)
	for _, m := range muxes {
		if m.Type != module.Mux {
			continue
		}
		if o := m.Port("out"); len(o) >= 2 {
			byOut[outKey(o)] = m
		}
	}

	var out []*module.Module
	for _, m := range muxes {
		if m.Type != module.Mux {
			continue
		}
		outs := m.Port("out")
		if len(outs) < 2 {
			continue
		}
		// Each output must drive exactly the D input of a latch (possibly
		// through a buffer).
		latches := make([]netlist.ID, len(outs))
		ok := true
		for i, o := range outs {
			l := drivenLatch(nl, o)
			if l == netlist.Nil {
				ok = false
				break
			}
			latches[i] = l
		}
		if !ok {
			continue
		}

		// Walk the hold path: one data leg must eventually be the latch
		// word, possibly through cascaded muxes (Figure 7 chains the hold
		// value through each condition mux).
		latchKey := outKey(latches)
		cascade := []*module.Module{m}
		var conds []netlist.ID
		cur := m
		found := false
		for depth := 0; depth < 8; depth++ {
			conds = append(conds, cur.Port("sel")...)
			d0, d1 := cur.Port("d0"), cur.Port("d1")
			if outKey(d0) == latchKey || outKey(d1) == latchKey {
				found = true
				break
			}
			var next *module.Module
			for _, leg := range [][]netlist.ID{d0, d1} {
				if n, okNext := byOut[outKey(leg)]; okNext && n != cur {
					next = n
					break
				}
			}
			if next == nil {
				break
			}
			cascade = append(cascade, next)
			cur = next
		}
		if !found {
			continue
		}

		var elements []netlist.ID
		for _, c := range cascade {
			elements = append(elements, c.Elements...)
		}
		elements = append(elements, latches...)
		reg := module.New(module.MultibitRegister, len(latches), elements)
		reg.Name = fmt.Sprintf("multibit-register[%d]", len(latches))
		reg.SetPort("q", latches)
		reg.SetPort("cond", dedupeIDs(conds))
		reg.SetAttr("sources", fmt.Sprint(len(cascade)))
		out = append(out, reg)
	}
	return out
}

// drivenLatch returns the latch whose D input is driven by node o (possibly
// via a chain of buffers), or Nil.
func drivenLatch(nl *netlist.Netlist, o netlist.ID) netlist.ID {
	for _, fo := range nl.Fanout(o) {
		switch {
		case nl.Kind(fo) == netlist.Latch && nl.Fanin(fo)[0] == o:
			return fo
		case nl.Kind(fo) == netlist.Buf:
			if l := drivenLatch(nl, fo); l != netlist.Nil {
				return l
			}
		}
	}
	return netlist.Nil
}

// OrderRegisterBits implements footnote 15 of the paper: the multibit
// register analysis cannot determine bit ordering by itself, but seeding
// symbolic word propagation with ORDERED words (e.g. adder outputs, whose
// order the carry chain fixes) and checking which register the propagated
// word lands on recovers the order. For every register whose latch set is
// exactly the latches driven by an ordered word's bits, the q port is
// reordered to match and the module is marked.
func OrderRegisterBits(nl *netlist.Netlist, regs []*module.Module, orderedWords [][]netlist.ID) {
	for _, reg := range regs {
		if reg.Type != module.MultibitRegister {
			continue
		}
		q := reg.Port("q")
		qset := make(map[netlist.ID]bool, len(q))
		for _, l := range q {
			qset[l] = true
		}
		for _, w := range orderedWords {
			if len(w) != len(q) {
				continue
			}
			ordered := make([]netlist.ID, len(w))
			ok := true
			for i, b := range w {
				l := drivenLatch(nl, b)
				if l == netlist.Nil || !qset[l] {
					ok = false
					break
				}
				ordered[i] = l
			}
			if !ok {
				continue
			}
			// Every driven latch must be distinct (a bijection onto q).
			seen := make(map[netlist.ID]bool, len(ordered))
			for _, l := range ordered {
				if seen[l] {
					ok = false
					break
				}
				seen[l] = true
			}
			if !ok {
				continue
			}
			reg.SetPort("q", ordered)
			reg.SetAttr("bit-order", "inferred")
			break
		}
	}
}
