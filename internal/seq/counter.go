// Package seq implements the sequential-component analyses of Section III:
// counters (III-A), shift registers (III-B), RAMs/register files (III-C)
// and multibit registers (III-D). Each analysis pairs a topological
// candidate generator (over the latch connection graph or aggregated
// modules) with a functional verification (SAT cofactor checks or BDD
// propagation checks).
package seq

import (
	"fmt"

	"netlistre/internal/graph"
	"netlistre/internal/module"
	"netlistre/internal/netlist"
	"netlistre/internal/sat"
)

// Options tunes the sequential analyses.
type Options struct {
	// MinCounter is the smallest counter accepted (bits).
	MinCounter int
	// MinShift is the smallest shift register accepted (stages).
	MinShift int
	// MaxSelectVars bounds the select-space enumeration in the RAM read
	// check.
	MaxSelectVars int
}

// verifyConflictBudget bounds each SAT query in the counter and
// shift-register checks; a genuine counter/shifter verifies in a handful of
// conflicts, so exceeding the budget (result Unknown) safely rejects the
// candidate instead of stalling on a pathological cone.
const verifyConflictBudget = 200_000

func (o *Options) defaults() {
	if o.MinCounter <= 0 {
		o.MinCounter = 3
	}
	if o.MinShift <= 0 {
		o.MinShift = 3
	}
	if o.MaxSelectVars <= 0 {
		o.MaxSelectVars = 8
	}
}

// FindCounters generates counter candidates from the LCG topology (Figure
// 5) and verifies them with the SAT cofactor formulation of Section
// III-A.2. Both up and down counters are detected.
func FindCounters(nl *netlist.Netlist, lcg *graph.LCG, opt Options) []*module.Module {
	opt.defaults()
	var out []*module.Module
	seen := make(map[string]bool)
	for _, chain := range lcg.CounterChains(opt.MinCounter) {
		for _, down := range []bool{false, true} {
			verified := bestVerifiedSubchain(nl, chain, down, opt.MinCounter)
			if len(verified) < opt.MinCounter {
				continue
			}
			k := idKeySeq(netlist.SortedIDs(verified))
			if seen[k] {
				break
			}
			seen[k] = true
			m := counterModule(nl, verified, down)
			out = append(out, m)
			break
		}
	}
	return out
}

// bestVerifiedSubchain returns the longest contiguous subchain passing the
// counter checks (at least minLen, else nil). Searching subchains — not
// just prefixes — matters because the topological chain can be contaminated
// at its head: a latch that happens to feed every true counter bit (e.g. a
// mode register gating the counter's enable) satisfies the Figure 5
// topology and gets prepended, and the true counter is then a proper
// subchain.
func bestVerifiedSubchain(nl *netlist.Netlist, chain []netlist.ID, down bool, minLen int) []netlist.ID {
	for n := len(chain); n >= minLen; n-- {
		for start := 0; start+n <= len(chain); start++ {
			if verifyCounter(nl, chain[start:start+n], down) {
				return chain[start : start+n]
			}
		}
	}
	return nil
}

// verifyCounter checks Equation 2 of the paper: the cofactors f_i, g_i and
// h_i of every bit's next-state function must be pairwise equivalent,
// which enforces (i) the toggle condition and (ii) shared reset/set/enable
// functions across the bits.
//
// The f and g cofactors fix a cube over the chain latches, implemented by
// encoding a fresh copy of the cone with those latches replaced by
// constants (sat.Encoder.LitOfFixed). The h check has a non-cube condition
// (some lower bit differs from the toggle level while q_i holds), so it is
// phrased as an implication: condition ∧ (d_i ≠ h_ref) must be UNSAT.
func verifyCounter(nl *netlist.Netlist, chain []netlist.ID, down bool) bool {
	s := sat.New()
	s.MaxConflicts = verifyConflictBudget
	e := sat.NewEncoder(s, nl)
	lowerLevel := !down // up counters toggle when lower bits are all 1

	dOf := func(i int) netlist.ID { return nl.Fanin(chain[i])[0] }
	cube := func(i int, qi bool) map[netlist.ID]bool {
		m := make(map[netlist.ID]bool, i+1)
		for j := 0; j < i; j++ {
			m[chain[j]] = lowerLevel
		}
		m[chain[i]] = qi
		return m
	}

	refF := e.LitOfFixed(dOf(0), cube(0, false))
	refG := e.LitOfFixed(dOf(0), cube(0, true))
	// Bit 0 sanity: toggling must actually be possible and distinguish the
	// two cofactors from constants equal to q_i (otherwise any latch with
	// a self-loop "verifies").
	// There must be some control assignment with f=1 (bit rises) and g=0
	// (bit toggles back), i.e. the counter can actually count.
	if s.Solve(refF, refG.Neg()) != sat.Sat {
		return false
	}

	for i := 1; i < len(chain); i++ {
		fi := e.LitOfFixed(dOf(i), cube(i, false))
		if s.Solve(e.NotEqualWitness(fi, refF)) != sat.Unsat {
			return false
		}
		gi := e.LitOfFixed(dOf(i), cube(i, true))
		if s.Solve(e.NotEqualWitness(gi, refG)) != sat.Unsat {
			return false
		}
	}

	// h checks (hold when a lower bit is off the toggle level): reference
	// is h_1 whose condition is a cube.
	if len(chain) >= 2 {
		hc := map[netlist.ID]bool{chain[0]: !lowerLevel, chain[1]: true}
		refH := e.LitOfFixed(dOf(1), hc)
		for i := 1; i < len(chain); i++ {
			di := e.LitOf(dOf(i)) // free encoding over the latch variables
			mit := e.NotEqualWitness(di, refH)
			// Activation clause: some lower bit != lowerLevel.
			act := sat.MkLit(s.NewVar(), false)
			lits := []sat.Lit{act.Neg()}
			for j := 0; j < i; j++ {
				lits = append(lits, sat.MkLit(e.LitOf(chain[j]).Var(), lowerLevel))
			}
			s.AddClause(lits...)
			qi := sat.MkLit(e.LitOf(chain[i]).Var(), false)
			if s.Solve(act, qi, mit) != sat.Unsat {
				return false
			}
		}
	}
	return true
}

// counterModule assembles the module for a verified counter: the latches
// plus the gates of their next-state cones that feed nothing outside the
// counter.
func counterModule(nl *netlist.Netlist, chain []netlist.ID, down bool) *module.Module {
	elements := exclusiveConeElements(nl, chain)
	m := module.New(module.Counter, len(chain), elements)
	dir := "up"
	if down {
		dir = "down"
	}
	m.Name = fmt.Sprintf("counter[%d]", len(chain))
	m.SetAttr("direction", dir)
	m.SetPort("q", chain)
	return m
}

// exclusiveConeElements returns the given latches plus the D-cone gates
// whose every fanout stays inside the cone or feeds one of the latches.
// This keeps shared upstream logic (e.g. a comparator that also feeds other
// subsystems) out of the module.
func exclusiveConeElements(nl *netlist.Netlist, latches []netlist.ID) []netlist.ID {
	var roots []netlist.ID
	isLatch := make(map[netlist.ID]bool, len(latches))
	for _, l := range latches {
		isLatch[l] = true
		roots = append(roots, nl.Fanin(l)[0])
	}
	cone := nl.ConeOfAll(roots)
	inCone := make(map[netlist.ID]bool, len(cone.Nodes))
	for _, n := range cone.Nodes {
		inCone[n] = true
	}
	// Iteratively drop gates with fanout escaping the cone (their
	// downstream consumers prove they are shared logic).
	changed := true
	for changed {
		changed = false
		for n := range inCone {
			for _, fo := range nl.Fanout(n) {
				if inCone[fo] || isLatch[fo] {
					continue
				}
				delete(inCone, n)
				changed = true
				break
			}
		}
	}
	// Keep only gates all of whose consumers survive too (transitive
	// closure is handled by the fixed point above).
	elements := append([]netlist.ID(nil), latches...)
	for n := range inCone {
		elements = append(elements, n)
	}
	return elements
}
