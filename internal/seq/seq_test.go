package seq

import (
	"testing"

	"netlistre/internal/aggregate"
	"netlistre/internal/bitslice"
	"netlistre/internal/gen"
	"netlistre/internal/graph"
	"netlistre/internal/module"
	"netlistre/internal/netlist"
)

func TestCounterDetection(t *testing.T) {
	for _, down := range []bool{false, true} {
		nl := netlist.New("ctr")
		en := nl.AddInput("en")
		rst := nl.AddInput("rst")
		q := gen.Counter(nl, 6, en, rst, down)
		lcg := graph.BuildLCG(nl)
		mods := FindCounters(nl, lcg, Options{})
		if len(mods) != 1 {
			t.Fatalf("down=%v: found %d counters, want 1", down, len(mods))
		}
		m := mods[0]
		if m.Width != 6 {
			t.Errorf("down=%v: width = %d, want 6", down, m.Width)
		}
		wantDir := "up"
		if down {
			wantDir = "down"
		}
		if m.Attr["direction"] != wantDir {
			t.Errorf("direction = %q, want %q", m.Attr["direction"], wantDir)
		}
		qs := m.Port("q")
		for i := range q {
			if qs[i] != q[i] {
				t.Errorf("q[%d] = %d, want %d", i, qs[i], q[i])
			}
		}
		// The module must cover the latches and their toggle logic.
		if m.Size() < 6+6 {
			t.Errorf("counter covers only %d elements", m.Size())
		}
	}
}

func TestShiftRegisterIsNotCounter(t *testing.T) {
	nl := netlist.New("sh")
	en := nl.AddInput("en")
	rst := nl.AddInput("rst")
	sin := nl.AddInput("sin")
	gen.ShiftRegister(nl, 6, en, rst, sin)
	lcg := graph.BuildLCG(nl)
	if mods := FindCounters(nl, lcg, Options{}); len(mods) != 0 {
		t.Errorf("shift register misdetected as %d counters", len(mods))
	}
}

func TestShiftRegisterDetection(t *testing.T) {
	nl := netlist.New("sh")
	en := nl.AddInput("en")
	rst := nl.AddInput("rst")
	sin := nl.AddInput("sin")
	q := gen.ShiftRegister(nl, 7, en, rst, sin)
	lcg := graph.BuildLCG(nl)
	mods := FindShiftRegisters(nl, lcg, Options{})
	if len(mods) != 1 {
		t.Fatalf("found %d shift registers, want 1", len(mods))
	}
	m := mods[0]
	if m.Width != 7 {
		t.Errorf("width = %d, want 7", m.Width)
	}
	qs := m.Port("q0")
	for i := range q {
		if qs[i] != q[i] {
			t.Errorf("q0[%d] = %d, want %d", i, qs[i], q[i])
		}
	}
}

func TestShiftRegisterAggregation(t *testing.T) {
	// Two lanes shifting in tandem (same enable/reset) must aggregate; a
	// third with a different enable must not.
	nl := netlist.New("sh3")
	en := nl.AddInput("en")
	en2 := nl.AddInput("en2")
	rst := nl.AddInput("rst")
	s1 := nl.AddInput("s1")
	s2 := nl.AddInput("s2")
	s3 := nl.AddInput("s3")
	gen.ShiftRegister(nl, 5, en, rst, s1)
	gen.ShiftRegister(nl, 5, en, rst, s2)
	gen.ShiftRegister(nl, 5, en2, rst, s3)
	lcg := graph.BuildLCG(nl)
	mods := FindShiftRegisters(nl, lcg, Options{})
	if len(mods) != 2 {
		t.Fatalf("found %d shift-register modules, want 2", len(mods))
	}
	lanes := map[string]bool{}
	for _, m := range mods {
		lanes[m.Attr["lanes"]] = true
	}
	if !lanes["2"] || !lanes["1"] {
		t.Errorf("lane grouping wrong: %v", lanes)
	}
}

func TestCounterIsNotShiftRegister(t *testing.T) {
	nl := netlist.New("c")
	en := nl.AddInput("en")
	rst := nl.AddInput("rst")
	gen.Counter(nl, 6, en, rst, false)
	lcg := graph.BuildLCG(nl)
	if mods := FindShiftRegisters(nl, lcg, Options{}); len(mods) != 0 {
		t.Errorf("counter misdetected as %d shift registers", len(mods))
	}
}

func TestRAMDetection(t *testing.T) {
	nl := netlist.New("rf")
	waddr := gen.InputWord(nl, "wa", 3)
	raddr := gen.InputWord(nl, "ra", 3)
	wdata := gen.InputWord(nl, "wd", 4)
	we := nl.AddInput("we")
	read, cells := gen.RegisterFile(nl, 8, 4, waddr, wdata, we, raddr)
	slices := bitslice.Find(nl, bitslice.Options{})
	mods := FindRAMs(nl, slices, Options{})
	if len(mods) != 1 {
		t.Fatalf("found %d RAMs, want 1", len(mods))
	}
	m := mods[0]
	if got := len(m.Port("cells")); got != 32 {
		t.Errorf("cells = %d, want 32", got)
	}
	if got := len(m.Port("read")); got != 4 {
		t.Errorf("read outputs = %d, want 4", got)
	}
	if m.Attr["write-logic"] != "verified" {
		t.Error("write logic not verified")
	}
	if got := len(m.Port("we")); got != 8 {
		t.Errorf("write enables = %d, want 8", got)
	}
	// All storage latches must be covered.
	elemSet := make(map[netlist.ID]bool)
	for _, e := range m.Elements {
		elemSet[e] = true
	}
	for _, w := range cells {
		for _, c := range w {
			if !elemSet[c] {
				t.Errorf("cell %d not covered", c)
			}
		}
	}
	_ = read
}

func TestPlainRegisterIsNotRAM(t *testing.T) {
	// A single register has no read select: must not be reported.
	nl := netlist.New("reg")
	d := gen.InputWord(nl, "d", 8)
	we := nl.AddInput("we")
	gen.Register(nl, d, we)
	slices := bitslice.Find(nl, bitslice.Options{})
	if mods := FindRAMs(nl, slices, Options{}); len(mods) != 0 {
		t.Errorf("plain register misdetected as %d RAMs", len(mods))
	}
}

func TestMultibitRegisterDetection(t *testing.T) {
	nl := netlist.New("mbr")
	v1 := gen.InputWord(nl, "v1", 8)
	v2 := gen.InputWord(nl, "v2", 8)
	v3 := gen.InputWord(nl, "v3", 8)
	c1 := nl.AddInput("c1")
	c2 := nl.AddInput("c2")
	c3 := nl.AddInput("c3")
	q := gen.MultibitRegister(nl, []gen.Word{v1, v2, v3}, []netlist.ID{c1, c2, c3})

	res := bitslice.Find(nl, bitslice.Options{})
	muxes := aggregate.CommonSignal(nl, res, aggregate.Options{})
	mods := FindMultibitRegisters(nl, muxes, Options{})
	var best *module.Module
	for _, m := range mods {
		if best == nil || m.Size() > best.Size() {
			best = m
		}
	}
	if best == nil {
		t.Fatalf("no multibit register found (from %d mux modules)", len(muxes))
	}
	if best.Width != 8 {
		t.Errorf("width = %d, want 8", best.Width)
	}
	qs := best.Port("q")
	qSet := make(map[netlist.ID]bool)
	for _, x := range qs {
		qSet[x] = true
	}
	for i, l := range q {
		if !qSet[l] {
			t.Errorf("latch %d (bit %d) not in register", l, i)
		}
	}
}

func TestSimpleRegisterAsMultibit(t *testing.T) {
	nl := netlist.New("reg")
	d := gen.InputWord(nl, "d", 6)
	we := nl.AddInput("we")
	q := gen.Register(nl, d, we)
	res := bitslice.Find(nl, bitslice.Options{})
	muxes := aggregate.CommonSignal(nl, res, aggregate.Options{})
	mods := FindMultibitRegisters(nl, muxes, Options{})
	if len(mods) == 0 {
		t.Fatal("write-enabled register not detected as multibit register")
	}
	if mods[0].Width != 6 {
		t.Errorf("width = %d, want 6", mods[0].Width)
	}
	_ = q
}
