package seq

import (
	"testing"

	"netlistre/internal/gen"
	"netlistre/internal/module"
	"netlistre/internal/netlist"
)

func TestOrderRegisterBits(t *testing.T) {
	// A register whose D inputs come from an adder; the adder's sum word
	// is ordered by its carry chain. Present the register with a scrambled
	// q port and check the inference restores sum order.
	nl := netlist.New("ord")
	a := gen.InputWord(nl, "a", 6)
	b := gen.InputWord(nl, "b", 6)
	sum, _ := gen.RippleAdder(nl, a, b, netlist.Nil)
	we := nl.AddInput("we")
	q := gen.Register(nl, sum, we)

	// The register module as detection would produce it, but scrambled.
	scrambled := []netlist.ID{q[3], q[0], q[5], q[1], q[4], q[2]}
	reg := module.New(module.MultibitRegister, 6, scrambled)
	reg.SetPort("q", scrambled)

	// The D-input word of the register: the or-gates driving the latches,
	// in sum order (this is what word propagation from the sum discovers).
	dWord := make([]netlist.ID, 6)
	for i, l := range q {
		dWord[i] = nl.Fanin(l)[0]
	}
	OrderRegisterBits(nl, []*module.Module{reg}, [][]netlist.ID{dWord})

	if reg.Attr["bit-order"] != "inferred" {
		t.Fatal("bit order not inferred")
	}
	got := reg.Port("q")
	for i := range q {
		if got[i] != q[i] {
			t.Errorf("q[%d] = %d, want %d", i, got[i], q[i])
		}
	}
}

func TestOrderRegisterBitsNoMatch(t *testing.T) {
	// A word driving DIFFERENT latches must not reorder the register.
	nl := netlist.New("nomatch")
	d1 := gen.InputWord(nl, "d1", 4)
	d2 := gen.InputWord(nl, "d2", 4)
	we := nl.AddInput("we")
	q1 := gen.Register(nl, d1, we)
	q2 := gen.Register(nl, d2, we)

	reg := module.New(module.MultibitRegister, 4, q1)
	reg.SetPort("q", q1)
	// Offer only q2's D word.
	dWord := make([]netlist.ID, 4)
	for i, l := range q2 {
		dWord[i] = nl.Fanin(l)[0]
	}
	OrderRegisterBits(nl, []*module.Module{reg}, [][]netlist.ID{dWord})
	if reg.Attr["bit-order"] == "inferred" {
		t.Error("order inferred from an unrelated word")
	}
}
