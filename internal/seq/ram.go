package seq

// RAM / register-file identification (Section III-C): read-logic marking,
// BDD verification of read behavior, and write-logic identification with
// mutual-exclusion checks on the write enables.

import (
	"fmt"
	"sort"

	"netlistre/internal/bdd"
	"netlistre/internal/bitslice"
	"netlistre/internal/module"
	"netlistre/internal/netlist"
	"netlistre/internal/truth"
)

// FindRAMs runs the full RAM analysis. slices supplies mux bitslice matches
// for write-logic identification (pass the result of bitslice.Find; write
// logic is skipped when nil).
func FindRAMs(nl *netlist.Netlist, slices *bitslice.Result, opt Options) []*module.Module {
	opt.defaults()
	marked := markReadLogic(nl)
	roots := readRoots(nl, marked, opt)

	type readBit struct {
		root    netlist.ID
		selects []netlist.ID // select signals, sorted
		cells   []netlist.ID // storage latches, sorted
	}
	var bits []readBit
	for _, root := range roots {
		sel, cells, ok := verifyReadBehavior(nl, marked, root, opt)
		if !ok {
			continue
		}
		bits = append(bits, readBit{root, sel, cells})
	}

	// Interior mux-tree levels verify as sub-reads of the same tree; keep
	// only roots not contained in another verified root's cone.
	if len(bits) > 1 {
		interior := make(map[netlist.ID]bool)
		for _, b := range bits {
			for _, n := range nl.ConeOf(b.root).Nodes {
				if n != b.root {
					interior[n] = true
				}
			}
		}
		kept := bits[:0]
		for _, b := range bits {
			if !interior[b.root] {
				kept = append(kept, b)
			}
		}
		bits = kept
	}

	// Aggregate read bits sharing the same select set into one array
	// (footnote 12 of the paper).
	bySel := make(map[string][]readBit)
	for _, b := range bits {
		bySel[idKeySeq(b.selects)] = append(bySel[idKeySeq(b.selects)], b)
	}
	var keys []string
	for k := range bySel {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// Merge select groups reading the SAME storage cells: those are
	// multiple read ports of one array (the paper reports its 32x32
	// register file with two read ports and one write port as a single
	// RAM module).
	type port struct {
		selects []netlist.ID
		bits    []readBit
	}
	byCells := make(map[string][]port)
	var cellKeys []string
	for _, k := range keys {
		group := bySel[k]
		var cells []netlist.ID
		for _, b := range group {
			cells = append(cells, b.cells...)
		}
		ck := idKeySeq(dedupeIDs(cells))
		if _, seenCK := byCells[ck]; !seenCK {
			cellKeys = append(cellKeys, ck)
		}
		byCells[ck] = append(byCells[ck], port{selects: group[0].selects, bits: group})
	}

	// Nested mux-tree levels verify as smaller sub-arrays of the same
	// storage; keep only cell sets not strictly contained in another.
	cellSets := make(map[string]map[netlist.ID]bool, len(cellKeys))
	for _, ck := range cellKeys {
		set := make(map[netlist.ID]bool)
		for _, p := range byCells[ck] {
			for _, b := range p.bits {
				for _, c := range b.cells {
					set[c] = true
				}
			}
		}
		cellSets[ck] = set
	}
	contained := func(a, b map[netlist.ID]bool) bool {
		if len(a) >= len(b) {
			return false
		}
		for c := range a {
			if !b[c] {
				return false
			}
		}
		return true
	}
	var keptKeys []string
	for _, ck := range cellKeys {
		sub := false
		for _, other := range cellKeys {
			if other != ck && contained(cellSets[ck], cellSets[other]) {
				sub = true
				break
			}
		}
		if !sub {
			keptKeys = append(keptKeys, ck)
		}
	}
	cellKeys = keptKeys

	var out []*module.Module
	for _, ck := range cellKeys {
		ports := byCells[ck]
		var cells, elements []netlist.ID
		width := 0
		for pi, p := range ports {
			var readOuts []netlist.ID
			for _, b := range p.bits {
				cells = append(cells, b.cells...)
				readOuts = append(readOuts, b.root)
				// Read-logic elements: marked nodes in the root's cone,
				// plus the unmarked inverters/buffers the verification
				// built through (select inverters shared across the port's
				// bits stay unmarked because of their fanout).
				for _, n := range nl.ConeOf(b.root).Nodes {
					_, unary := nl.Node(n).UnaryKind()
					if marked[n] || unary {
						elements = append(elements, n)
					}
				}
				elements = append(elements, b.root)
			}
			if len(p.bits) > width {
				width = len(p.bits)
			}
			_ = pi
		}
		cells = dedupeIDs(cells)
		if len(cells) < 4 || len(cells) < 2*width {
			// Too small to be an array, or fewer than two words: a
			// "one-word RAM" is just a register bank misread through its
			// hold muxes.
			continue
		}
		elements = append(elements, cells...)

		m := module.New(module.RAM, width, elements)
		m.SetPort("cells", cells)
		var allReads []netlist.ID
		for pi, p := range ports {
			var readOuts []netlist.ID
			for _, b := range p.bits {
				readOuts = append(readOuts, b.root)
			}
			m.SetPort(fmt.Sprintf("read%d", pi), readOuts)
			m.SetPort(fmt.Sprintf("select%d", pi), p.selects)
			allReads = append(allReads, readOuts...)
		}
		m.SetPort("read", allReads)
		m.SetPort("select", ports[0].selects)
		m.SetAttr("read-ports", fmt.Sprint(len(ports)))

		if slices != nil {
			if weis, writeElems, ok := identifyWriteLogic(nl, slices, cells); ok {
				all := append(append([]netlist.ID(nil), m.Elements...), writeElems...)
				m.SetElements(all)
				m.SetPort("we", weis)
				m.SetAttr("write-logic", "verified")
			}
		}
		m.Name = fmt.Sprintf("ram[%dw x %db]", len(cells)/width, width)
		if len(ports) > 1 {
			m.Name = fmt.Sprintf("ram[%dw x %db, %dr]", len(cells)/width, width, len(ports))
		}
		out = append(out, m)
	}
	return out
}

// markReadLogic implements the marking pass of Section III-C.1: latches are
// marked, then any gate with at least one marked input and at most one
// fanout, to a fixed point. (The paper says "only one fanout"; gates with
// zero fanout drive primary outputs and play the same tree-interior role,
// so they are marked as well.)
func markReadLogic(nl *netlist.Netlist) map[netlist.ID]bool {
	marked := make(map[netlist.ID]bool)
	for _, l := range nl.Latches() {
		marked[l] = true
	}
	changed := true
	for changed {
		changed = false
		for id := netlist.ID(0); int(id) < nl.Len(); id++ {
			if marked[id] || !nl.Kind(id).IsGate() || len(nl.Fanout(id)) > 1 {
				continue
			}
			for _, f := range nl.Fanin(id) {
				if marked[f] {
					marked[id] = true
					changed = true
					break
				}
			}
		}
	}
	return marked
}

// readRoots returns candidate read-tree roots using a support-purity
// analysis: a marked gate is "pure" when its combinational support consists
// of storage latches plus at most MaxSelectVars other signals — the shape
// of a genuine read tree. Candidates are the MAXIMAL pure marked gates
// (their consumer is unmarked or impure: the point where the read value
// leaves the array and mixes into the datapath), plus unmarked gates
// directly consuming a pure marked gate (read tops whose fanout keeps them
// unmarked). The BDD verification discards false candidates cheaply.
func readRoots(nl *netlist.Netlist, marked map[netlist.ID]bool, opt Options) []netlist.ID {
	type supInfo struct {
		latches map[netlist.ID]bool
		others  map[netlist.ID]bool
		impure  bool
	}
	info := make(map[netlist.ID]*supInfo)

	// resolveThrough follows unmarked inverter/buffer chains (including
	// their 1-input LUT forms), mirroring buildMarked's pass-through
	// behaviour.
	var resolveThrough func(id netlist.ID) netlist.ID
	resolveThrough = func(id netlist.ID) netlist.ID {
		if _, unary := nl.Node(id).UnaryKind(); unary && !marked[id] {
			return resolveThrough(nl.Fanin(id)[0])
		}
		return id
	}

	for _, id := range nl.TopoOrder() {
		if !marked[id] || !nl.Kind(id).IsGate() {
			continue
		}
		si := &supInfo{latches: map[netlist.ID]bool{}, others: map[netlist.ID]bool{}}
		for _, f0 := range nl.Fanin(id) {
			f := resolveThrough(f0)
			switch {
			case nl.Kind(f) == netlist.Latch:
				si.latches[f] = true
			case marked[f] && nl.Kind(f).IsGate():
				fi := info[f]
				if fi == nil || fi.impure {
					si.impure = true
				} else {
					for l := range fi.latches {
						si.latches[l] = true
					}
					for o := range fi.others {
						si.others[o] = true
					}
				}
			default:
				// Primary input or unmarked gate: a select-side signal.
				si.others[f] = true
			}
			if len(si.others) > opt.MaxSelectVars {
				si.impure = true
			}
			if si.impure {
				si.latches, si.others = nil, nil
				break
			}
		}
		info[id] = si
	}

	pure := func(id netlist.ID) bool {
		si := info[id]
		return si != nil && !si.impure && len(si.latches) >= 2
	}

	var roots []netlist.ID
	seen := make(map[netlist.ID]bool)
	add := func(id netlist.ID) {
		if !seen[id] {
			seen[id] = true
			roots = append(roots, id)
		}
	}
	for id := netlist.ID(0); int(id) < nl.Len(); id++ {
		if !nl.Kind(id).IsGate() {
			continue
		}
		if marked[id] {
			if !pure(id) {
				continue
			}
			// Frontier pure gates: a consumer that is unmarked, impure, or
			// that WIDENS the select set marks a potential array boundary
			// (nested mux-tree levels each add a select; larger trees
			// subsume smaller ones during aggregation).
			isRoot := len(nl.Fanout(id)) == 0 // output-driving top
			for _, fo := range nl.Fanout(id) {
				if !marked[fo] || !nl.Kind(fo).IsGate() || !pure(fo) {
					isRoot = true
					break
				}
				for o := range info[fo].others {
					if !info[id].others[o] {
						isRoot = true
						break
					}
				}
				if isRoot {
					break
				}
			}
			if isRoot {
				add(id)
			}
			continue
		}
		// Unmarked tree top over a pure marked subtree.
		for _, f := range nl.Fanin(id) {
			if marked[f] && nl.Kind(f).IsGate() && pure(f) {
				add(id)
				break
			}
		}
	}
	return roots
}

// verifyReadBehavior builds a BDD for the root in terms of latches, inputs
// and unmarked nodes, and checks the two properties of Section III-C.2:
// every select assignment propagates exactly one latch (possibly negated)
// to the output, and every latch in the support is propagated for some
// select assignment.
func verifyReadBehavior(nl *netlist.Netlist, marked map[netlist.ID]bool, root netlist.ID, opt Options) (selects, cells []netlist.ID, ok bool) {
	mgr := bdd.New(0)
	mgr.Limit = 1 << 20 // genuine read trees are small; cap runaway cones
	varOf := make(map[netlist.ID]int)
	ids := []netlist.ID{}
	ref, err := buildMarked(mgr, nl, root, marked, varOf, &ids)
	if err != nil {
		return nil, nil, false
	}
	sup := mgr.Support(ref)
	var selVars, cellVars []int
	for _, v := range sup {
		if nl.Kind(ids[v]) == netlist.Latch {
			cellVars = append(cellVars, v)
		} else {
			selVars = append(selVars, v)
		}
	}
	if len(cellVars) < 2 || len(selVars) == 0 || len(selVars) > opt.MaxSelectVars {
		return nil, nil, false
	}

	// Enumerate select assignments; each restriction must be exactly one
	// storage variable or its negation.
	seen := make(map[int]bool)
	for m := 0; m < 1<<uint(len(selVars)); m++ {
		f := ref
		for i, v := range selVars {
			f = mgr.Restrict(f, v, m>>uint(i)&1 == 1)
		}
		v, isVar := singleVar(mgr, f)
		if !isVar {
			return nil, nil, false
		}
		seen[v] = true
	}
	// Property 2: every storage latch is propagated.
	for _, v := range cellVars {
		if !seen[v] {
			return nil, nil, false
		}
	}
	for _, v := range selVars {
		selects = append(selects, ids[v])
	}
	for _, v := range cellVars {
		cells = append(cells, ids[v])
	}
	selects = netlist.SortedIDs(selects)
	cells = netlist.SortedIDs(cells)
	return selects, cells, true
}

// singleVar reports whether f is exactly a variable or its negation,
// returning the variable index.
func singleVar(mgr *bdd.Manager, f bdd.Ref) (int, bool) {
	sup := mgr.Support(f)
	if len(sup) != 1 {
		return 0, false
	}
	v := sup[0]
	if f == mgr.Var(v) || f == mgr.NVar(v) {
		return v, true
	}
	return 0, false
}

// buildMarked builds the BDD of root treating unmarked nodes, inputs and
// latches as variables (Section III-C.2: "in terms of the latches, inputs
// and unmarked nodes").
func buildMarked(mgr *bdd.Manager, nl *netlist.Netlist, root netlist.ID,
	marked map[netlist.ID]bool, varOf map[netlist.ID]int, ids *[]netlist.ID) (bdd.Ref, error) {

	memo := make(map[netlist.ID]bdd.Ref)
	var ref bdd.Ref
	err := mgr.Run(func() {
		var build func(id netlist.ID) bdd.Ref
		build = func(id netlist.ID) bdd.Ref {
			if r, done := memo[id]; done {
				return r
			}
			node := nl.Node(id)
			var r bdd.Ref
			// Unmarked inverters and buffers (gate or 1-input LUT form) are
			// built through rather than treated as variables: select
			// inverters are commonly shared across the bits of a read port
			// (fanout > 1, hence unmarked), and modeling them as free
			// variables would let the check see inconsistent select
			// assignments.
			_, passThrough := node.UnaryKind()
			switch {
			case id != root && !passThrough && (!marked[id] || !node.Kind.IsGate()):
				// Boundary: unmarked node, input, or latch.
				v, okVar := varOf[id]
				if !okVar {
					v = mgr.AddVar()
					varOf[id] = v
					*ids = append(*ids, id)
				}
				r = mgr.Var(v)
			case node.Kind == netlist.Const0:
				r = bdd.False
			case node.Kind == netlist.Const1:
				r = bdd.True
			default:
				fan := make([]bdd.Ref, len(node.Fanin))
				for i, f := range node.Fanin {
					fan[i] = build(f)
				}
				r = combineBDD(mgr, node, fan)
			}
			memo[id] = r
			return r
		}
		ref = build(root)
	})
	return ref, err
}

func combineBDD(mgr *bdd.Manager, node *netlist.Node, fan []bdd.Ref) bdd.Ref {
	kind := node.Kind
	switch kind {
	case netlist.Not:
		return mgr.Not(fan[0])
	case netlist.Buf:
		return fan[0]
	case netlist.And, netlist.Nand:
		r := bdd.True
		for _, f := range fan {
			r = mgr.And(r, f)
		}
		if kind == netlist.Nand {
			r = mgr.Not(r)
		}
		return r
	case netlist.Or, netlist.Nor:
		r := bdd.False
		for _, f := range fan {
			r = mgr.Or(r, f)
		}
		if kind == netlist.Nor {
			r = mgr.Not(r)
		}
		return r
	case netlist.Xor, netlist.Xnor:
		r := bdd.False
		for _, f := range fan {
			r = mgr.Xor(r, f)
		}
		if kind == netlist.Xnor {
			r = mgr.Not(r)
		}
		return r
	case netlist.Lut:
		// Shannon recursion on the packed mask over the fanin BDDs.
		var rec func(m uint64, k int) bdd.Ref
		rec = func(m uint64, k int) bdd.Ref {
			if k == 0 {
				if m&1 == 1 {
					return bdd.True
				}
				return bdd.False
			}
			half := uint(1) << uint(k-1)
			lo, hi := rec(m, k-1), rec(m>>half, k-1)
			s := fan[k-1]
			return mgr.Or(mgr.And(s, hi), mgr.And(mgr.Not(s), lo))
		}
		return rec(node.Mask, len(fan))
	}
	panic("seq: cannot build " + kind.String())
}

// identifyWriteLogic implements Section III-C.3: for every cell, the D
// input must be a 2:1 mux whose one data leg is the cell itself; the mux
// select is the write enable. Write enables are grouped (one per word) and
// checked for satisfiability and pairwise mutual exclusion with BDDs.
func identifyWriteLogic(nl *netlist.Netlist, slices *bitslice.Result, cells []netlist.ID) (weis, elements []netlist.ID, ok bool) {
	type writeInfo struct {
		we       netlist.ID
		activeLo bool
		cone     []netlist.ID
	}
	infos := make(map[netlist.ID]writeInfo, len(cells))
	for _, cell := range cells {
		d := nl.Fanin(cell)[0]
		m, found := slices.HasClass(d, truth.ClassMux2)
		if !found {
			return nil, nil, false
		}
		switch {
		case m.Args[0] == cell:
			// d0 = hold leg: select high writes (active-high WE).
			infos[cell] = writeInfo{we: m.Args[2], activeLo: false, cone: m.Cone}
		case m.Args[1] == cell:
			// d1 = hold leg: select low writes (active-low WE).
			infos[cell] = writeInfo{we: m.Args[2], activeLo: true, cone: m.Cone}
		default:
			return nil, nil, false
		}
	}
	// Group cells by write enable -> words.
	byWE := make(map[netlist.ID][]netlist.ID)
	for cell, info := range infos {
		byWE[info.we] = append(byWE[info.we], cell)
	}
	var wes []netlist.ID
	for we := range byWE {
		wes = append(wes, we)
	}
	wes = netlist.SortedIDs(wes)
	if len(wes) < 2 {
		return nil, nil, false
	}

	// BDD checks: each WE satisfiable, no two WEs simultaneously active.
	mgr := bdd.New(0)
	bld := bdd.NewBuilder(mgr, nl)
	refs := make([]bdd.Ref, len(wes))
	err := mgr.Run(func() {
		for i, we := range wes {
			r := bld.Build(we)
			// Normalize active-low enables.
			if infos[byWE[we][0]].activeLo {
				r = mgr.Not(r)
			}
			refs[i] = r
		}
	})
	if err != nil {
		return nil, nil, false
	}
	for i, r := range refs {
		if r == bdd.False {
			return nil, nil, false
		}
		for j := i + 1; j < len(refs); j++ {
			if mgr.And(r, refs[j]) != bdd.False {
				return nil, nil, false
			}
		}
	}

	for _, info := range infos {
		elements = append(elements, info.cone...)
	}
	// Include the WE cones (decoder + gating logic).
	weCone := nl.ConeOfAll(wes)
	elements = append(elements, weCone.Nodes...)
	return wes, dedupeIDs(elements), true
}

func dedupeIDs(ids []netlist.ID) []netlist.ID {
	seen := make(map[netlist.ID]bool, len(ids))
	var out []netlist.ID
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return netlist.SortedIDs(out)
}

func idKeySeq(ids []netlist.ID) string {
	b := make([]byte, 0, len(ids)*4)
	for _, id := range ids {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}
