package seq

import (
	"fmt"
	"math/rand"
	"testing"

	"netlistre/internal/bitslice"
	"netlistre/internal/gen"
	"netlistre/internal/graph"
	"netlistre/internal/netlist"
)

// TestCounterSweep detects counters across widths, directions, and with
// always-enabled variants.
func TestCounterSweep(t *testing.T) {
	for width := 3; width <= 9; width++ {
		for _, down := range []bool{false, true} {
			name := fmt.Sprintf("w%d-down%v", width, down)
			t.Run(name, func(t *testing.T) {
				nl := netlist.New("ctr")
				en := nl.AddInput("en")
				rst := nl.AddInput("rst")
				gen.Counter(nl, width, en, rst, down)
				mods := FindCounters(nl, graph.BuildLCG(nl), Options{})
				if len(mods) != 1 || mods[0].Width != width {
					t.Fatalf("counters = %v", mods)
				}
				wantDir := "up"
				if down {
					wantDir = "down"
				}
				if mods[0].Attr["direction"] != wantDir {
					t.Errorf("direction = %s", mods[0].Attr["direction"])
				}
			})
		}
	}
}

// TestAlwaysEnabledCounter uses a constant-true enable: the f/g sanity
// check must still accept (f=¬r, g=0 — there is an assignment with f∧¬g).
func TestAlwaysEnabledCounter(t *testing.T) {
	nl := netlist.New("free")
	rst := nl.AddInput("rst")
	one := nl.AddConst(true)
	en := nl.AddGate(netlist.Buf, one)
	gen.Counter(nl, 5, en, rst, false)
	mods := FindCounters(nl, graph.BuildLCG(nl), Options{})
	if len(mods) != 1 || mods[0].Width != 5 {
		t.Fatalf("free-running counter not found: %v", mods)
	}
}

// TestBrokenCounterRejected flips one toggle condition: the SAT check must
// reject the tampered bit while still accepting the clean prefix.
func TestBrokenCounterRejected(t *testing.T) {
	nl := netlist.New("bork")
	en := nl.AddInput("en")
	rst := nl.AddInput("rst")
	q := gen.Counter(nl, 6, en, rst, false)
	// Tamper with bit 4: make it toggle when lower bits are NOT all high
	// (detach its D and rewire with an inverter in the enable path).
	d4 := nl.Fanin(q[4])[0]
	nl.SetLatchD(q[4], nl.AddGate(netlist.Not, d4))
	mods := FindCounters(nl, graph.BuildLCG(nl), Options{})
	for _, m := range mods {
		if m.Width > 4 {
			t.Errorf("tampered counter accepted at width %d", m.Width)
		}
	}
	// The intact low-order prefix should still be found.
	found := false
	for _, m := range mods {
		if m.Width >= 3 {
			found = true
		}
	}
	if !found {
		t.Error("clean counter prefix not found")
	}
}

// TestShiftSweep detects shift registers across lengths.
func TestShiftSweep(t *testing.T) {
	for width := 3; width <= 10; width += 2 {
		t.Run(fmt.Sprintf("w%d", width), func(t *testing.T) {
			nl := netlist.New("sh")
			en := nl.AddInput("en")
			rst := nl.AddInput("rst")
			sin := nl.AddInput("sin")
			gen.ShiftRegister(nl, width, en, rst, sin)
			mods := FindShiftRegisters(nl, graph.BuildLCG(nl), Options{})
			if len(mods) != 1 || mods[0].Width != width {
				t.Fatalf("shift registers = %v", mods)
			}
		})
	}
}

// TestPlainPipelineIsShiftRegister verifies an enable-less register chain
// (d_i = q_{i-1}) is found: e is constant-1, the cofactor check still
// distinguishes f (load 1) from g (load 0).
func TestPlainPipelineIsShiftRegister(t *testing.T) {
	nl := netlist.New("pipe")
	sin := nl.AddInput("sin")
	prev := sin
	for i := 0; i < 6; i++ {
		prev = nl.AddLatch(prev)
	}
	mods := FindShiftRegisters(nl, graph.BuildLCG(nl), Options{})
	if len(mods) != 1 || mods[0].Width != 6 {
		t.Fatalf("pipeline not detected: %v", mods)
	}
}

// TestBrokenShiftRejected inverts one stage: stage polarity breaks the
// f/g equality and truncates the detected chain.
func TestBrokenShiftRejected(t *testing.T) {
	nl := netlist.New("bsh")
	en := nl.AddInput("en")
	rst := nl.AddInput("rst")
	sin := nl.AddInput("sin")
	q := gen.ShiftRegister(nl, 7, en, rst, sin)
	d := nl.Fanin(q[4])[0]
	nl.SetLatchD(q[4], nl.AddGate(netlist.Not, d))
	mods := FindShiftRegisters(nl, graph.BuildLCG(nl), Options{})
	for _, m := range mods {
		if m.Width == 7 {
			t.Error("tampered shift register accepted at full length")
		}
	}
}

// TestRAMSweep detects register files across geometries.
func TestRAMSweep(t *testing.T) {
	for _, geom := range []struct{ words, width, abits int }{
		{4, 4, 2}, {8, 8, 3}, {16, 4, 4},
	} {
		t.Run(fmt.Sprintf("%dx%d", geom.words, geom.width), func(t *testing.T) {
			nl := netlist.New("rf")
			waddr := gen.InputWord(nl, "wa", geom.abits)
			raddr := gen.InputWord(nl, "ra", geom.abits)
			wdata := gen.InputWord(nl, "wd", geom.width)
			we := nl.AddInput("we")
			gen.RegisterFile(nl, geom.words, geom.width, waddr, wdata, we, raddr)
			slices := bitslice.Find(nl, bitslice.Options{})
			mods := FindRAMs(nl, slices, Options{})
			if len(mods) != 1 {
				t.Fatalf("RAMs = %d", len(mods))
			}
			if got := len(mods[0].Port("cells")); got != geom.words*geom.width {
				t.Errorf("cells = %d, want %d", got, geom.words*geom.width)
			}
			if got := len(mods[0].Port("we")); got != geom.words {
				t.Errorf("write enables = %d, want %d", got, geom.words)
			}
		})
	}
}

// TestCountersInNoise embeds counters in random logic; both must be found
// and nothing else.
func TestCountersInNoise(t *testing.T) {
	nl := netlist.New("noise")
	en1 := nl.AddInput("en1")
	en2 := nl.AddInput("en2")
	rst := nl.AddInput("rst")
	gen.Counter(nl, 5, en1, rst, false)
	gen.Counter(nl, 4, en2, rst, true)
	// Random latched logic around them.
	rng := rand.New(rand.NewSource(77))
	pool := []netlist.ID{en1, en2, rst}
	for i := 0; i < 60; i++ {
		a, b := pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))]
		kinds := []netlist.Kind{netlist.And, netlist.Or, netlist.Xor, netlist.Nand}
		g := nl.AddGate(kinds[rng.Intn(4)], a, b)
		pool = append(pool, g)
		if i%6 == 0 {
			pool = append(pool, nl.AddLatch(g))
		}
	}
	mods := FindCounters(nl, graph.BuildLCG(nl), Options{})
	widths := map[int]int{}
	for _, m := range mods {
		widths[m.Width]++
	}
	if widths[5] != 1 || widths[4] != 1 {
		t.Errorf("counter widths found: %v, want one 5-bit and one 4-bit", widths)
	}
}

// TestMultiPortRegisterFile verifies that a two-read-port register file is
// reported as ONE RAM module with both ports (the paper's 32x32 2r1w case).
func TestMultiPortRegisterFile(t *testing.T) {
	nl := netlist.New("rf2")
	waddr := gen.InputWord(nl, "wa", 3)
	r1 := gen.InputWord(nl, "ra", 3)
	r2 := gen.InputWord(nl, "rb", 3)
	wdata := gen.InputWord(nl, "wd", 4)
	we := nl.AddInput("we")
	read1, cells := gen.RegisterFile(nl, 8, 4, waddr, wdata, we, r1)
	var flat []gen.Word
	flat = append(flat, cells...)
	read2 := gen.MuxTree(nl, r2, flat)
	gen.MarkOutputs(nl, "r1_", read1)
	gen.MarkOutputs(nl, "r2_", read2)

	slices := bitslice.Find(nl, bitslice.Options{})
	mods := FindRAMs(nl, slices, Options{})
	if len(mods) != 1 {
		t.Fatalf("RAM modules = %d, want 1 merged array", len(mods))
	}
	m := mods[0]
	if m.Attr["read-ports"] != "2" {
		t.Errorf("read-ports = %q, want 2", m.Attr["read-ports"])
	}
	if got := len(m.Port("cells")); got != 32 {
		t.Errorf("cells = %d, want 32", got)
	}
	if len(m.Port("read0")) != 4 || len(m.Port("read1")) != 4 {
		t.Errorf("per-port reads = %d/%d", len(m.Port("read0")), len(m.Port("read1")))
	}
	if m.Attr["write-logic"] != "verified" {
		t.Error("write logic not verified on multi-port array")
	}
}

// TestJohnsonCounterClassification documents the detector boundary: a
// Johnson (twisted-ring) counter is neither a binary counter (toggle
// conditions differ) nor a plain unidirectional shift register (the ring
// closes, so no chain head exists).
func TestJohnsonCounterClassification(t *testing.T) {
	nl := netlist.New("jc")
	en := nl.AddInput("en")
	rst := nl.AddInput("rst")
	gen.JohnsonCounter(nl, 6, en, rst)
	lcg := graph.BuildLCG(nl)
	for _, m := range FindCounters(nl, lcg, Options{}) {
		t.Errorf("Johnson counter misdetected as binary %s", m.Name)
	}
	for _, m := range FindShiftRegisters(nl, lcg, Options{}) {
		if m.Width == 6 {
			t.Errorf("closed Johnson ring misdetected as full shift register")
		}
	}
}

// TestGrayCounterRejected: the Gray counter matches the counter topology
// loosely but must fail the functional toggle check.
func TestGrayCounterRejected(t *testing.T) {
	nl := netlist.New("gc")
	en := nl.AddInput("en")
	rst := nl.AddInput("rst")
	gen.GrayCounter(nl, 4, en, rst)
	for _, m := range FindCounters(nl, graph.BuildLCG(nl), Options{}) {
		t.Errorf("Gray counter misdetected as binary %s", m.Name)
	}
}

// TestLFSRInteriorChain: the LFSR's interior stages form a genuine shift
// chain; the detector may find that segment (the ring feedback excludes the
// full ring). Whatever is found must be a strict interior segment.
func TestLFSRInteriorChain(t *testing.T) {
	nl := netlist.New("lfsr")
	en := nl.AddInput("en")
	rst := nl.AddInput("rst")
	q := gen.LFSR(nl, 8, []int{7, 5}, en, rst)
	mods := FindShiftRegisters(nl, graph.BuildLCG(nl), Options{})
	qset := map[netlist.ID]bool{}
	for _, l := range q {
		qset[l] = true
	}
	for _, m := range mods {
		if m.Width > 7 {
			t.Errorf("full LFSR ring claimed as open shift register (width %d)", m.Width)
		}
		for _, l := range m.Port("q0") {
			if !qset[l] {
				t.Errorf("shift segment contains foreign latch %d", l)
			}
		}
	}
}
