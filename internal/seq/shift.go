package seq

// Shift-register identification (Section III-B): SPLCG chain candidates
// verified by the cofactor check of Equation 3, then aggregated into
// multibit shift registers by length and shared set/reset/enable functions
// (Section III-B.3).

import (
	"fmt"

	"netlistre/internal/graph"
	"netlistre/internal/module"
	"netlistre/internal/netlist"
	"netlistre/internal/sat"
)

// FindShiftRegisters generates chain candidates from the SPLCG and verifies
// each with the SAT cofactor formulation, then aggregates compatible chains
// into multibit shift registers.
func FindShiftRegisters(nl *netlist.Netlist, lcg *graph.LCG, opt Options) []*module.Module {
	opt.defaults()
	var verified [][]netlist.ID
	for _, chain := range lcg.ShiftChains(opt.MinShift) {
		if v := verifyShiftPrefix(nl, chain, opt.MinShift); v != nil {
			verified = append(verified, v)
		}
	}
	groups := aggregateShiftChains(nl, verified)
	var out []*module.Module
	for _, g := range groups {
		out = append(out, shiftModule(nl, g))
	}
	return out
}

func verifyShiftPrefix(nl *netlist.Netlist, chain []netlist.ID, minLen int) []netlist.ID {
	for n := len(chain); n >= minLen; n-- {
		if verifyShift(nl, chain[:n]) {
			return chain[:n]
		}
	}
	return nil
}

// verifyShift checks Equation 3: for every stage i >= 1,
//
//	f_i = cofactor(d_i, q_{i-1}=1, q_i=0) = ¬r∧e ∨ s
//	g_i = cofactor(d_i, q_{i-1}=0, q_i=1) = ¬r∧¬e ∨ s
//
// and the f_i (resp. g_i) must be identical across the stages, which
// enforces shared reset/set/enable. The first stage has no predecessor
// inside the chain (its input is the serial-in), so it anchors nothing.
func verifyShift(nl *netlist.Netlist, chain []netlist.ID) bool {
	if len(chain) < 2 {
		return false
	}
	s := sat.New()
	s.MaxConflicts = verifyConflictBudget
	e := sat.NewEncoder(s, nl)
	dOf := func(i int) netlist.ID { return nl.Fanin(chain[i])[0] }

	refF := e.LitOfFixed(dOf(1), map[netlist.ID]bool{chain[0]: true, chain[1]: false})
	refG := e.LitOfFixed(dOf(1), map[netlist.ID]bool{chain[0]: false, chain[1]: true})
	// Sanity: the register must be able to shift (f=1: loads the 1 from
	// the predecessor) while not spuriously holding (g=0 under the same
	// control assignment).
	if s.Solve(refF, refG.Neg()) != sat.Sat {
		return false
	}
	for i := 2; i < len(chain); i++ {
		fi := e.LitOfFixed(dOf(i), map[netlist.ID]bool{chain[i-1]: true, chain[i]: false})
		if s.Solve(e.NotEqualWitness(fi, refF)) != sat.Unsat {
			return false
		}
		gi := e.LitOfFixed(dOf(i), map[netlist.ID]bool{chain[i-1]: false, chain[i]: true})
		if s.Solve(e.NotEqualWitness(gi, refG)) != sat.Unsat {
			return false
		}
	}
	return true
}

// aggregateShiftChains groups verified chains by length and equivalent
// control functions: chains whose f and g cofactors are pairwise equal
// shift in tandem and form one multibit shift register (Section III-B.3).
func aggregateShiftChains(nl *netlist.Netlist, chains [][]netlist.ID) [][][]netlist.ID {
	byLen := make(map[int][][]netlist.ID)
	for _, c := range chains {
		byLen[len(c)] = append(byLen[len(c)], c)
	}
	var lengths []int
	for l := range byLen {
		lengths = append(lengths, l)
	}
	for i := 1; i < len(lengths); i++ {
		for j := i; j > 0 && lengths[j] < lengths[j-1]; j-- {
			lengths[j], lengths[j-1] = lengths[j-1], lengths[j]
		}
	}
	var groups [][][]netlist.ID
	for _, l := range lengths {
		set := byLen[l]
		used := make([]bool, len(set))
		for i := range set {
			if used[i] {
				continue
			}
			group := [][]netlist.ID{set[i]}
			used[i] = true
			for j := i + 1; j < len(set); j++ {
				if used[j] {
					continue
				}
				if sameShiftControls(nl, set[i], set[j]) {
					group = append(group, set[j])
					used[j] = true
				}
			}
			groups = append(groups, group)
		}
	}
	return groups
}

// sameShiftControls checks that two chains share set/reset/enable by
// comparing their second-stage cofactors.
func sameShiftControls(nl *netlist.Netlist, a, b []netlist.ID) bool {
	s := sat.New()
	s.MaxConflicts = verifyConflictBudget
	e := sat.NewEncoder(s, nl)
	fa := e.LitOfFixed(nl.Fanin(a[1])[0], map[netlist.ID]bool{a[0]: true, a[1]: false})
	fb := e.LitOfFixed(nl.Fanin(b[1])[0], map[netlist.ID]bool{b[0]: true, b[1]: false})
	if s.Solve(e.NotEqualWitness(fa, fb)) != sat.Unsat {
		return false
	}
	ga := e.LitOfFixed(nl.Fanin(a[1])[0], map[netlist.ID]bool{a[0]: false, a[1]: true})
	gb := e.LitOfFixed(nl.Fanin(b[1])[0], map[netlist.ID]bool{b[0]: false, b[1]: true})
	return s.Solve(e.NotEqualWitness(ga, gb)) == sat.Unsat
}

func shiftModule(nl *netlist.Netlist, group [][]netlist.ID) *module.Module {
	var latches []netlist.ID
	for _, chain := range group {
		latches = append(latches, chain...)
	}
	elements := exclusiveConeElements(nl, latches)
	m := module.New(module.ShiftRegister, len(group[0]), elements)
	if len(group) > 1 {
		m.Name = fmt.Sprintf("shift-register[%dx%d]", len(group), len(group[0]))
	} else {
		m.Name = fmt.Sprintf("shift-register[%d]", len(group[0]))
	}
	m.SetAttr("lanes", fmt.Sprint(len(group)))
	for i, chain := range group {
		m.SetPort(fmt.Sprintf("q%d", i), chain)
	}
	return m
}
