package bitsim

// Differential tests pinning the bit-parallel engine to the scalar
// five-valued simulator: lane packing must be exact on {0, 1, X}
// assignments, the two-run pair encoding must agree with D-calculus
// wherever the scalar result is definite, and TableOf must reproduce the
// truth tables the cut enumerator computes structurally.

import (
	"math/rand"
	"testing"

	"netlistre/internal/cuts"
	"netlistre/internal/netlist"
	"netlistre/internal/sim"
)

// randNetlist builds a random DAG of gates over nIn inputs, with a couple
// of latches mixed in so cone-input handling is exercised.
func randNetlist(rng *rand.Rand, nIn, nGates int) *netlist.Netlist {
	nl := netlist.New("rand")
	pool := make([]netlist.ID, 0, nIn+nGates)
	for i := 0; i < nIn; i++ {
		pool = append(pool, nl.AddInput("in"+string(rune('a'+i))))
	}
	kinds := []netlist.Kind{
		netlist.And, netlist.Or, netlist.Nand, netlist.Nor,
		netlist.Xor, netlist.Xnor, netlist.Not, netlist.Buf,
	}
	for g := 0; g < nGates; g++ {
		k := kinds[rng.Intn(len(kinds))]
		var id netlist.ID
		switch {
		case k == netlist.Not || k == netlist.Buf:
			id = nl.AddGate(k, pool[rng.Intn(len(pool))])
		default:
			fanin := 2 + rng.Intn(2)
			ins := make([]netlist.ID, fanin)
			for i := range ins {
				ins[i] = pool[rng.Intn(len(pool))]
			}
			id = nl.AddGate(k, ins...)
		}
		if rng.Intn(12) == 0 {
			id = nl.AddLatch(id)
		}
		pool = append(pool, id)
	}
	return nl
}

// packAssign converts 64 scalar {0,1,X} assignments into one vector
// assignment (lane i carries scalar assignment i).
func packAssign(scalar [Lanes]map[netlist.ID]sim.Value) map[netlist.ID]Vector {
	packed := make(map[netlist.ID]Vector)
	for lane := 0; lane < Lanes; lane++ {
		for id, v := range scalar[lane] {
			vec := packed[id]
			switch v {
			case sim.One:
				vec.Val |= 1 << uint(lane)
			case sim.X:
				vec.Unk |= 1 << uint(lane)
			}
			packed[id] = vec
		}
	}
	return packed
}

// TestRunMatchesScalarSim: one bit-parallel Run over 64 packed {0,1,X}
// assignments must equal 64 scalar sim.Run calls lane for lane, on every
// node. On the three-valued subdomain the two engines implement the same
// Kleene algebra, so equality is exact — including X propagation.
func TestRunMatchesScalarSim(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	trials := 60
	if testing.Short() {
		trials = 15
	}
	three := []sim.Value{sim.Zero, sim.One, sim.X}
	for trial := 0; trial < trials; trial++ {
		nl := randNetlist(rng, 3+rng.Intn(4), 10+rng.Intn(40))
		// Assign every cone input plus a few random internal nodes (the
		// cut-loose semantics both engines share).
		var targets []netlist.ID
		for id := netlist.ID(0); int(id) < nl.Len(); id++ {
			if nl.Kind(id).IsConeInput() || rng.Intn(8) == 0 {
				targets = append(targets, id)
			}
		}
		// Every target is assigned in every lane: the assignment key set
		// must be lane-independent for the packing to be faithful.
		var scalar [Lanes]map[netlist.ID]sim.Value
		for lane := range scalar {
			scalar[lane] = make(map[netlist.ID]sim.Value, len(targets))
			for _, id := range targets {
				scalar[lane][id] = three[rng.Intn(3)]
			}
		}
		got := Run(nl, packAssign(scalar))
		for lane := 0; lane < Lanes; lane++ {
			want := sim.Run(nl, scalar[lane])
			for id := 0; id < nl.Len(); id++ {
				val, known := got[id].Get(lane)
				switch want[id] {
				case sim.Zero:
					if !known || val {
						t.Fatalf("trial %d node %d lane %d: sim=0 bitsim=(%v,%v)", trial, id, lane, val, known)
					}
				case sim.One:
					if !known || !val {
						t.Fatalf("trial %d node %d lane %d: sim=1 bitsim=(%v,%v)", trial, id, lane, val, known)
					}
				case sim.X:
					if known {
						t.Fatalf("trial %d node %d lane %d: sim=X bitsim known %v", trial, id, lane, val)
					}
				default:
					t.Fatalf("unexpected symbolic value from 3-valued assignment")
				}
			}
		}
	}
}

// concretize maps a five-valued assignment onto the three-valued engine for
// a concrete choice of the symbol D (D̄ is its complement).
func concretize(a map[netlist.ID]sim.Value, d bool) map[netlist.ID]Vector {
	out := make(map[netlist.ID]Vector, len(a))
	for id, v := range a {
		switch {
		case v == sim.One, v == sim.D && d, v == sim.DBar && !d:
			out[id] = Known(^uint64(0))
		case v == sim.Zero, v == sim.D && !d, v == sim.DBar && d:
			out[id] = Known(0)
		default:
			out[id] = Unknown()
		}
	}
	return out
}

// TestRunPairEncodingD: a five-valued sim.Run maps onto two bitsim runs
// (D=0 and D=1). Wherever the scalar engine produces a definite value
// (anything but X), both concrete runs must be known and decode to it:
// 0→(0,0), 1→(1,1), D→(0,1), D̄→(1,0). Where sim says X the concrete runs
// are unconstrained (exact simulation may know more than the D-calculus).
func TestRunPairEncodingD(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	five := []sim.Value{sim.Zero, sim.One, sim.D, sim.DBar, sim.X}
	trials := 120
	if testing.Short() {
		trials = 30
	}
	for trial := 0; trial < trials; trial++ {
		nl := randNetlist(rng, 3+rng.Intn(4), 10+rng.Intn(40))
		assign := make(map[netlist.ID]sim.Value)
		for id := netlist.ID(0); int(id) < nl.Len(); id++ {
			if nl.Kind(id).IsConeInput() || rng.Intn(8) == 0 {
				assign[id] = five[rng.Intn(5)]
			}
		}
		want := sim.Run(nl, assign)
		run0 := Run(nl, concretize(assign, false))
		run1 := Run(nl, concretize(assign, true))
		for id := 0; id < nl.Len(); id++ {
			if want[id] == sim.X {
				continue
			}
			v0, k0 := run0[id].Get(0)
			v1, k1 := run1[id].Get(0)
			if !k0 || !k1 {
				t.Fatalf("trial %d node %d: sim=%v but a concrete run is X", trial, id, want[id])
			}
			var decoded sim.Value
			switch {
			case !v0 && !v1:
				decoded = sim.Zero
			case v0 && v1:
				decoded = sim.One
			case !v0 && v1:
				decoded = sim.D
			default:
				decoded = sim.DBar
			}
			if decoded != want[id] {
				t.Fatalf("trial %d node %d: sim=%v pair decodes to %v", trial, id, want[id], decoded)
			}
		}
	}
}

// TestRunConeMatchesRun: the sparse cone evaluator must agree with the full
// sweep on every node it visits, and must visit at least the roots.
func TestRunConeMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		nl := randNetlist(rng, 3+rng.Intn(4), 10+rng.Intn(40))
		assign := make(map[netlist.ID]Vector)
		for id := netlist.ID(0); int(id) < nl.Len(); id++ {
			if nl.Kind(id).IsConeInput() && rng.Intn(3) != 0 {
				assign[id] = Vector{Val: rng.Uint64()}
			} else if rng.Intn(10) == 0 {
				assign[id] = Vector{Unk: rng.Uint64()}
			}
		}
		if v, ok := assign[0]; ok && v.Val&v.Unk != 0 {
			t.Fatal("test bug: invariant-violating assignment")
		}
		var roots []netlist.ID
		for i := 0; i < 3; i++ {
			roots = append(roots, netlist.ID(rng.Intn(nl.Len())))
		}
		full := Run(nl, assign)
		cone := RunCone(nl, roots, assign)
		for _, r := range roots {
			if _, ok := cone[r]; !ok {
				t.Fatalf("trial %d: root %d not evaluated", trial, r)
			}
		}
		for id, v := range cone {
			if v != full[id] {
				t.Fatalf("trial %d node %d: cone %+v, full %+v", trial, id, v, full[id])
			}
		}
	}
}

// TestVectorInvariant: every lane operation preserves Val & Unk == 0.
func TestVectorInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	randVec := func() Vector {
		unk := rng.Uint64()
		return Vector{Val: rng.Uint64() &^ unk, Unk: unk}
	}
	check := func(name string, v Vector) {
		if v.Val&v.Unk != 0 {
			t.Fatalf("%s violated Val&Unk==0: %+v", name, v)
		}
	}
	for i := 0; i < 2000; i++ {
		a, b := randVec(), randVec()
		check("And", a.And(b))
		check("Or", a.Or(b))
		check("Xor", a.Xor(b))
		check("Not", a.Not())
	}
}

// TestTableOfMatchesCuts: for every cut the enumerator produces, evaluating
// the root's cone with projection words on the cut leaves must reproduce
// the cut's truth table bit for bit. This pins the bit-parallel engine to
// the structural table construction it is meant to accelerate.
func TestTableOfMatchesCuts(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	trials := 40
	if testing.Short() {
		trials = 10
	}
	checked := 0
	for trial := 0; trial < trials; trial++ {
		nl := randNetlist(rng, 4+rng.Intn(3), 15+rng.Intn(40))
		sets := cuts.Enumerate(nl, cuts.Options{K: 6, MaxCuts: 24})
		for id, cs := range sets {
			for _, c := range cs {
				if len(c.Leaves) == 0 {
					continue // constant cut: no leaves to project
				}
				got, ok := TableOf(nl, id, c.Leaves)
				if !ok {
					t.Fatalf("trial %d root %d leaves %v: cut cone left X rows", trial, id, c.Leaves)
				}
				if got != c.Table {
					t.Fatalf("trial %d root %d leaves %v: TableOf=%v cut table=%v",
						trial, id, c.Leaves, got, c.Table)
				}
				checked++
			}
		}
	}
	if checked < 1000 {
		t.Fatalf("only %d cuts cross-checked; generator too small", checked)
	}
}
