// Package bitsim implements 64-lane bit-parallel three-valued simulation:
// one machine word per signal simulates 64 independent input patterns at
// once. Signals are dual-rail encoded — a value word and an unknown mask —
// so the Kleene {0, 1, X} algebra costs a handful of word operations per
// gate regardless of how many patterns are in flight.
//
// The engine is the word-parallel counterpart of internal/sim's five-valued
// scalar simulator and is used where the portfolio needs bulk semantic
// evidence cheaply: refuting candidate module matches before the QBF solver
// runs (internal/modmatch), refuting decoder/popcount candidates before
// BDDs are built (internal/support), and cross-checking cut functions
// against direct cone evaluation. The scalar simulator remains the
// reference for symbolic (D/D̄) reasoning; a D-valued run maps onto two
// correlated bitsim runs (D=0 and D=1), and the property tests in this
// package pin the two engines against each other under that encoding.
package bitsim

import (
	"netlistre/internal/netlist"
	"netlistre/internal/truth"
)

// Lanes is the number of input patterns one Vector carries.
const Lanes = 64

// Vector is 64 lanes of a three-valued signal. Lane i is unknown (X) when
// bit i of Unk is set, otherwise it carries bit i of Val. The invariant
// Val & Unk == 0 holds for every Vector the engine produces.
type Vector struct {
	Val uint64
	Unk uint64
}

// Known returns a fully-known vector with the given lane values.
func Known(val uint64) Vector { return Vector{Val: val} }

// Unknown returns the all-X vector.
func Unknown() Vector { return Vector{Unk: ^uint64(0)} }

// Get returns lane i as (value, known).
func (v Vector) Get(i int) (bool, bool) {
	return v.Val>>uint(i)&1 == 1, v.Unk>>uint(i)&1 == 0
}

// Not complements the known lanes.
func (v Vector) Not() Vector {
	return Vector{Val: ^v.Val &^ v.Unk, Unk: v.Unk}
}

// And is the 64-lane Kleene conjunction: a known 0 on either side forces a
// known 0 regardless of the other side being X.
func (a Vector) And(b Vector) Vector {
	known0 := (^a.Val &^ a.Unk) | (^b.Val &^ b.Unk)
	unk := (a.Unk | b.Unk) &^ known0
	return Vector{Val: a.Val & b.Val, Unk: unk}
}

// Or is the 64-lane Kleene disjunction.
func (a Vector) Or(b Vector) Vector {
	known1 := a.Val | b.Val
	unk := (a.Unk | b.Unk) &^ known1
	return Vector{Val: known1, Unk: unk}
}

// Xor is the 64-lane Kleene exclusive-or: any X poisons the lane.
func (a Vector) Xor(b Vector) Vector {
	unk := a.Unk | b.Unk
	return Vector{Val: (a.Val ^ b.Val) &^ unk, Unk: unk}
}

// EvalGate evaluates one gate over vectors, mirroring sim.EvalGate.
func EvalGate(kind netlist.Kind, in []Vector) Vector {
	switch kind {
	case netlist.Const0:
		return Known(0)
	case netlist.Const1:
		return Known(^uint64(0))
	case netlist.Not:
		return in[0].Not()
	case netlist.Buf:
		return in[0]
	case netlist.And, netlist.Nand:
		acc := Known(^uint64(0))
		for _, v := range in {
			acc = acc.And(v)
		}
		if kind == netlist.Nand {
			acc = acc.Not()
		}
		return acc
	case netlist.Or, netlist.Nor:
		acc := Known(0)
		for _, v := range in {
			acc = acc.Or(v)
		}
		if kind == netlist.Nor {
			acc = acc.Not()
		}
		return acc
	case netlist.Xor, netlist.Xnor:
		acc := Known(0)
		for _, v := range in {
			acc = acc.Xor(v)
		}
		if kind == netlist.Xnor {
			acc = acc.Not()
		}
		return acc
	}
	panic("bitsim: EvalGate on " + kind.String())
}

// EvalLut evaluates a k-input truth-table cell over vectors by Shannon
// recursion on the packed mask, selecting each cofactor pair with the
// consensus form of the Kleene multiplexer (s&hi | ~s&lo | hi&lo). The extra
// consensus term makes the select exact when s is X but both cofactors
// agree, which by induction makes the whole evaluation the fully precise
// three-valued extension of the mask — the same answer sim.EvalLut reaches
// by exhaustive enumeration, one lane at a time.
func EvalLut(mask uint64, in []Vector) Vector {
	var rec func(m uint64, j int) Vector
	rec = func(m uint64, j int) Vector {
		if j == 0 {
			if m&1 == 1 {
				return Known(^uint64(0))
			}
			return Known(0)
		}
		half := uint(1) << uint(j-1)
		lo := rec(m, j-1)
		hi := rec(m>>half, j-1)
		s := in[j-1]
		return s.And(hi).Or(s.Not().And(lo)).Or(hi.And(lo))
	}
	return rec(mask, len(in))
}

// Run evaluates the combinational logic of nl with the signals in assign
// forced to the given vectors. Like sim.Run, assignments may target ANY
// node: an assigned internal node is cut loose from its own logic and
// treated as a free input. Unassigned boundary signals are all-X. The
// returned slice is indexed by node ID.
func Run(nl *netlist.Netlist, assign map[netlist.ID]Vector) []Vector {
	vals := make([]Vector, nl.Len())
	var buf []Vector
	for _, id := range nl.TopoOrder() {
		if v, ok := assign[id]; ok {
			vals[id] = v
			continue
		}
		node := nl.Node(id)
		switch {
		case node.Kind.IsConeInput():
			vals[id] = Unknown()
		default:
			buf = buf[:0]
			for _, f := range node.Fanin {
				buf = append(buf, vals[f])
			}
			if node.Kind == netlist.Lut {
				vals[id] = EvalLut(node.Mask, buf)
			} else {
				vals[id] = EvalGate(node.Kind, buf)
			}
		}
	}
	return vals
}

// RunCone evaluates only the transitive fan-in cones of roots, stopping at
// assigned nodes and cone inputs, and returns the values of the visited
// nodes. It avoids the whole-netlist sweep of Run when the caller needs a
// few outputs of a large design — the shape of the candidate-filtering
// loops in modmatch and support.
func RunCone(nl *netlist.Netlist, roots []netlist.ID, assign map[netlist.ID]Vector) map[netlist.ID]Vector {
	vals := make(map[netlist.ID]Vector, 4*len(roots))
	var eval func(id netlist.ID) Vector
	buf := make([]Vector, 0, 8)
	eval = func(id netlist.ID) Vector {
		if v, ok := vals[id]; ok {
			return v
		}
		var v Vector
		if av, ok := assign[id]; ok {
			v = av
		} else if node := nl.Node(id); node.Kind.IsConeInput() {
			v = Unknown()
		} else {
			// Resolve fanins first (recursively), then fold the gate.
			for _, f := range node.Fanin {
				eval(f)
			}
			buf = buf[:0]
			for _, f := range node.Fanin {
				buf = append(buf, vals[f])
			}
			if node.Kind == netlist.Lut {
				v = EvalLut(node.Mask, buf)
			} else {
				v = EvalGate(node.Kind, buf)
			}
		}
		vals[id] = v
		return v
	}
	for _, r := range roots {
		eval(r)
	}
	return vals
}

// TableOf computes the truth table of root as a function of the given
// leaves by a single bit-parallel run: leaf i carries the projection
// pattern of variable i, so all 2^len(leaves) input rows evaluate in one
// word pass. It returns ok=false when root's value depends on signals
// other than the leaves (some row stayed X). len(leaves) must be at most
// truth.MaxVars.
func TableOf(nl *netlist.Netlist, root netlist.ID, leaves []netlist.ID) (truth.Table, bool) {
	n := len(leaves)
	if n > truth.MaxVars {
		panic("bitsim: TableOf beyond truth.MaxVars")
	}
	assign := make(map[netlist.ID]Vector, n)
	for i, l := range leaves {
		assign[l] = Known(truth.Var(i, truth.MaxVars).Bits)
	}
	vals := RunCone(nl, []netlist.ID{root}, assign)
	v := vals[root]
	mask := truth.Mask(n)
	if v.Unk&mask != 0 {
		return truth.Table{}, false
	}
	return truth.Table{Bits: v.Val & mask, N: n}, true
}
