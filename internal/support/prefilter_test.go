package support

// Differential tests for the bit-parallel class prefilter: Analyze with
// the prefilter on must return exactly the modules of the oracle run with
// it off, over every labeled generated design.

import (
	"fmt"
	"sort"
	"testing"

	"netlistre/internal/gen"
	"netlistre/internal/module"
)

func supportModuleKey(m *module.Module) string {
	attrs := make([]string, 0, len(m.Attr))
	for k, v := range m.Attr {
		attrs = append(attrs, k+"="+v)
	}
	sort.Strings(attrs)
	return fmt.Sprintf("%v %s %v %v %v", m.Type, m.Name, m.Elements, m.Ports, attrs)
}

func TestPrefilterDifferentialArticles(t *testing.T) {
	for _, name := range gen.LabeledArticleNames() {
		nl, _, err := gen.LabeledArticle(name)
		if err != nil {
			t.Fatalf("article %s: %v", name, err)
		}
		on := Analyze(nl, Options{Workers: 1})
		off := Analyze(nl, Options{Workers: 1, DisablePrefilter: true})
		if len(on) != len(off) {
			t.Errorf("%s: %d modules with prefilter, %d without", name, len(on), len(off))
			continue
		}
		for i := range on {
			if k1, k2 := supportModuleKey(on[i]), supportModuleKey(off[i]); k1 != k2 {
				t.Errorf("%s module %d: %q (prefilter) vs %q (oracle)", name, i, k1, k2)
			}
		}
	}
}

// TestPrefilterRefutesOnlyNil checks soundness at the class level: for
// every candidate class of every article, a refuted class must be one the
// full BDD verification rejects.
func TestPrefilterRefutesOnlyNil(t *testing.T) {
	for _, name := range gen.LabeledArticleNames() {
		nl, _, err := gen.LabeledArticle(name)
		if err != nil {
			t.Fatalf("article %s: %v", name, err)
		}
		var opt Options
		opt.defaults()
		for _, c := range Classes(nl) {
			if len(c.Support) > opt.MaxSupport || len(c.Outputs) < opt.MinOutputs {
				continue
			}
			if !simRefuteClass(nl, c, opt) {
				continue
			}
			noFilter := opt
			noFilter.DisablePrefilter = true
			if m := verifyClass(nl, c, noFilter); m != nil {
				t.Errorf("%s: prefilter refuted a class that verifies as %s (outputs %v)",
					name, m.Name, c.Outputs)
			}
		}
	}
}
