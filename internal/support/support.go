// Package support implements Algorithm 5 of the paper (Section II-E):
// detection of combinational modules whose outputs all depend on the same
// set of inputs — decoders, demultiplexers and population counters. Nodes
// are grouped into equivalence classes by the input set of their full
// combinational fan-in cones (computed with a union-find-free hashing
// scheme), and candidate classes are verified with BDD-based functional
// checks (Section II-E.2).
package support

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"netlistre/internal/bdd"
	"netlistre/internal/bitsim"
	"netlistre/internal/module"
	"netlistre/internal/netlist"
)

// Options tunes the analysis.
type Options struct {
	// MaxSupport bounds the common-support size considered (BDD blowup
	// guard); the paper's decoders have narrow selects.
	MaxSupport int
	// MinOutputs is the smallest class size verified (2 by default).
	MinOutputs int
	// MaxConeGates skips classes whose combined cone exceeds this many
	// gates (keeps candidate modules decoder-sized).
	MaxConeGates int
	// Workers bounds the verification worker pool (0 = GOMAXPROCS).
	// The caller's scheduler sets this so that the stage respects the
	// shared analysis-wide worker budget.
	Workers int
	// Interrupt, when non-nil, is polled between class verifications;
	// when it returns true, Analyze stops and returns the modules
	// verified so far.
	Interrupt func() bool
	// DisablePrefilter turns off the bit-parallel simulation prefilter
	// that refutes candidate classes before their BDDs are built. The
	// prefilter is sound — it skips a class only when every check
	// verifyClass could run is witnessed to fail — so this knob exists
	// purely for differential testing and measurement.
	DisablePrefilter bool
}

func (o *Options) defaults() {
	if o.MaxSupport <= 0 {
		o.MaxSupport = 10
	}
	if o.MinOutputs <= 0 {
		o.MinOutputs = 3
	}
	if o.MaxConeGates <= 0 {
		o.MaxConeGates = 400
	}
}

// Class is one common-support equivalence class.
type Class struct {
	Support []netlist.ID // the shared cone-input set, sorted
	Outputs []netlist.ID // gates whose cones read exactly Support
}

// Classes groups every combinational gate by the input set of its full
// fan-in cone. Only classes with at least two members are returned; they
// are sorted by first output for determinism.
func Classes(nl *netlist.Netlist) []Class {
	byKey := make(map[string]*Class)
	for id := netlist.ID(0); int(id) < nl.Len(); id++ {
		if !nl.Kind(id).IsGate() {
			continue
		}
		sup := nl.SupportOf(id)
		if len(sup) == 0 {
			continue
		}
		key := idKey(sup)
		c, ok := byKey[key]
		if !ok {
			c = &Class{Support: sup}
			byKey[key] = c
		}
		c.Outputs = append(c.Outputs, id)
	}
	var out []Class
	for _, c := range byKey {
		if len(c.Outputs) >= 2 {
			out = append(out, *c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Outputs[0] < out[j].Outputs[0] })
	return out
}

func idKey(ids []netlist.ID) string {
	b := make([]byte, 0, len(ids)*4)
	for _, id := range ids {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}

// Analyze finds decoder, demultiplexer and population-counter modules.
// Classes are verified concurrently (each builds its own BDD manager);
// results are collected in class order so the output is deterministic.
func Analyze(nl *netlist.Netlist, opt Options) []*module.Module {
	opt.defaults()
	var cands []Class
	for _, c := range Classes(nl) {
		if len(c.Support) > opt.MaxSupport || len(c.Outputs) < opt.MinOutputs {
			continue
		}
		cands = append(cands, c)
	}
	results := make([]*module.Module, len(cands))
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers > 1 {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					if opt.Interrupt != nil && opt.Interrupt() {
						continue // drain remaining indices without verifying
					}
					results[i] = verifyClass(nl, cands[i], opt)
				}
			}()
		}
		for i := range cands {
			next <- i
		}
		close(next)
		wg.Wait()
	} else {
		for i := range cands {
			if opt.Interrupt != nil && opt.Interrupt() {
				break
			}
			results[i] = verifyClass(nl, cands[i], opt)
		}
	}
	var out []*module.Module
	for _, m := range results {
		if m != nil {
			out = append(out, m)
		}
	}
	return out
}

// verifyClass runs the BDD checks on one candidate class.
func verifyClass(nl *netlist.Netlist, c Class, opt Options) *module.Module {
	cone := nl.ConeOfAll(c.Outputs)
	if len(cone.Nodes) > opt.MaxConeGates {
		return nil
	}
	if !opt.DisablePrefilter && simRefuteClass(nl, c, opt) {
		return nil // every possible check witnessed to fail; skip the BDDs
	}

	mgr := bdd.New(0)
	bld := bdd.NewBuilder(mgr, nl)
	allRefs := make([]bdd.Ref, len(c.Outputs))
	err := mgr.Run(func() {
		for i, o := range c.Outputs {
			allRefs[i] = bld.Build(o)
		}
	})
	if err != nil {
		return nil
	}

	// Drop functionally-constant outputs (dead logic with full structural
	// support): they are not module outputs and would defeat the checks.
	live := c
	live.Outputs = nil
	var refs []bdd.Ref
	for i, r := range allRefs {
		if r != bdd.True && r != bdd.False {
			live.Outputs = append(live.Outputs, c.Outputs[i])
			refs = append(refs, r)
		}
	}
	if len(live.Outputs) < 2 {
		return nil
	}

	// Population counter first: its count bits are NOT mutually exclusive,
	// so there is no conflict with the decoder checks. A support of at
	// least 3 avoids classifying every half adder (a 2-input popcount) as
	// a counter.
	if len(live.Support) >= 3 {
		if m := checkPopCount(nl, mgr, bld, live, refs); m != nil {
			return m
		}
	}

	// One-hot (decoder/demux) checks over candidate output groups: the
	// whole class first, then per-gate-kind subsets — synthesized classes
	// often mix both polarities (e.g. and-gates plus their inverters),
	// which are one-hot only within a polarity group.
	groups := outputGroups(nl, live.Outputs, opt)
	for _, group := range groups {
		gRefs := make([]bdd.Ref, len(group))
		for i, idx := range group {
			gRefs[i] = refs[idx]
		}
		// Active-high then active-low (Section II-E.2 footnote 8).
		for _, activeLow := range []bool{false, true} {
			fs := gRefs
			if activeLow {
				fs = make([]bdd.Ref, len(gRefs))
				for i, r := range gRefs {
					fs[i] = mgr.Not(r)
				}
			}
			if !mutuallyExclusive(mgr, fs) {
				continue
			}
			outs := make([]netlist.ID, len(group))
			for i, idx := range group {
				outs[i] = live.Outputs[idx]
			}
			gCone := nl.ConeOfAll(outs)
			m := module.New(module.Decoder, len(outs), gCone.Nodes)
			m.SetPort("out", outs)
			m.SetPort("in", live.Support)
			if dataIn, isDemux := demuxDataInput(mgr, bld, fs, live.Support); isDemux {
				m.Type = module.Demux
				m.Name = fmt.Sprintf("demux[%d]", len(outs))
				m.SetPort("data", []netlist.ID{dataIn})
			} else {
				m.Name = fmt.Sprintf("decoder[%d]", len(outs))
			}
			if activeLow {
				m.SetAttr("polarity", "active-low")
			}
			return m
		}
	}
	return nil
}

// simRefuteRounds bounds the random 64-pattern batches simRefuteClass
// tries before handing the class to the BDD checks.
const simRefuteRounds = 8

// simRefuteClass decides by bit-parallel simulation that a candidate class
// cannot verify, running random 64-lane batches over the class support.
// It reports true only when every outcome of verifyClass is witnessed to
// be impossible:
//
//   - every output took both values (so none is functionally constant and
//     the live output set the BDD pass would compute equals c.Outputs);
//   - no output can equal the support parity, killing the population-
//     counter match (whose count-bit-0 anchor is the parity function);
//   - every output group has, in both polarities, a lane where two group
//     members are simultaneously active, killing the one-hot checks (and
//     with them the decoder and demux outcomes).
//
// Each witness is a concrete input assignment, so a true result is sound:
// verifyClass would have returned nil. No witness means the class goes to
// the BDDs as before.
func simRefuteClass(nl *netlist.Netlist, c Class, opt Options) bool {
	nOut := len(c.Outputs)
	groups := outputGroups(nl, c.Outputs, opt)
	needParity := len(c.Support) >= 3
	seen0 := make([]bool, nOut)
	seen1 := make([]bool, nOut)
	parityRefuted := make([]bool, nOut)
	groupAlive := make([][2]bool, len(groups))
	for gi := range groupAlive {
		groupAlive[gi] = [2]bool{true, true}
	}
	outVal := make([]uint64, nOut)
	assign := make(map[netlist.ID]bitsim.Vector, len(c.Support))
	rng := rand.New(rand.NewSource(0xdec0de ^ int64(c.Outputs[0])<<16 ^ int64(len(c.Support))))
	for round := 0; round < simRefuteRounds; round++ {
		var parity uint64
		for _, s := range c.Support {
			v := rng.Uint64()
			assign[s] = bitsim.Known(v)
			parity ^= v
		}
		vals := bitsim.RunCone(nl, c.Outputs, assign)
		for i, o := range c.Outputs {
			v := vals[o]
			if v.Unk != 0 {
				return false // cone read something outside Support; let the BDDs decide
			}
			outVal[i] = v.Val
			if v.Val != 0 {
				seen1[i] = true
			}
			if v.Val != ^uint64(0) {
				seen0[i] = true
			}
			if v.Val != parity {
				parityRefuted[i] = true
			}
		}
		for gi, g := range groups {
			for pol := 0; pol < 2; pol++ {
				if !groupAlive[gi][pol] {
					continue
				}
				// seenTwo collects lanes where a second group member is
				// active: a one-hot violation witnessed in one word pass.
				var seenOne, seenTwo uint64
				for _, idx := range g {
					v := outVal[idx]
					if pol == 1 {
						v = ^v
					}
					seenTwo |= seenOne & v
					seenOne |= v
				}
				if seenTwo != 0 {
					groupAlive[gi][pol] = false
				}
			}
		}
		refuted := true
		for i := 0; i < nOut && refuted; i++ {
			refuted = seen0[i] && seen1[i] && (!needParity || parityRefuted[i])
		}
		for gi := range groups {
			if groupAlive[gi][0] || groupAlive[gi][1] {
				refuted = false
				break
			}
		}
		if refuted {
			return true
		}
	}
	return false
}

// outputGroups returns candidate output subsets (as indices) for the
// one-hot checks: the full set, then per-gate-kind subsets when the class
// mixes kinds.
func outputGroups(nl *netlist.Netlist, outputs []netlist.ID, opt Options) [][]int {
	// LUT cells are subgrouped by truth-table mask as well as kind: on a
	// LUT-mapped netlist every output is kind Lut, but a decoder's minterm
	// cells all tabulate the same function (the input inversions live in
	// the LUT1 inverters feeding them), so the mask recovers exactly the
	// gate-kind split the mapper erased.
	type groupKey struct {
		kind netlist.Kind
		mask uint64
	}
	all := make([]int, len(outputs))
	byKey := make(map[groupKey][]int)
	for i, o := range outputs {
		all[i] = i
		n := nl.Node(o)
		k := groupKey{kind: n.Kind}
		if n.Kind == netlist.Lut {
			k.mask = n.Mask
		}
		byKey[k] = append(byKey[k], i)
	}
	groups := [][]int{all}
	if len(byKey) > 1 {
		var keys []groupKey
		for k := range byKey {
			keys = append(keys, k)
		}
		// Larger subsets first: verifyClass returns the first group that
		// passes, and a class can hold both a real decoder and a few
		// same-support bystanders (e.g. noise inverters of its outputs)
		// that also verify; the bigger, more complete module must win.
		// Kind then mask breaks size ties deterministically.
		sort.Slice(keys, func(i, j int) bool {
			if li, lj := len(byKey[keys[i]]), len(byKey[keys[j]]); li != lj {
				return li > lj
			}
			if keys[i].kind != keys[j].kind {
				return keys[i].kind < keys[j].kind
			}
			return keys[i].mask < keys[j].mask
		})
		for _, k := range keys {
			if len(byKey[k]) >= opt.MinOutputs {
				groups = append(groups, byKey[k])
			}
		}
	}
	return groups
}

// mutuallyExclusive checks that no two functions are simultaneously true.
func mutuallyExclusive(mgr *bdd.Manager, fs []bdd.Ref) bool {
	for i := 0; i < len(fs); i++ {
		for j := i + 1; j < len(fs); j++ {
			if mgr.And(fs[i], fs[j]) != bdd.False {
				return false
			}
		}
	}
	return true
}

// demuxDataInput looks for a support signal implied by every output: a
// common data/enable input distinguishes a demultiplexer from a plain
// decoder.
func demuxDataInput(mgr *bdd.Manager, bld *bdd.Builder, fs []bdd.Ref, sup []netlist.ID) (netlist.ID, bool) {
	for _, s := range sup {
		v, ok := bld.HasVar(s)
		if !ok {
			continue
		}
		x := mgr.Var(v)
		all := true
		for _, f := range fs {
			if mgr.And(f, mgr.Not(x)) != bdd.False { // f -> x must hold
				all = false
				break
			}
		}
		if all {
			return s, true
		}
	}
	return netlist.Nil, false
}

// checkPopCount matches each output against the symmetric count-bit
// functions of the support (Section II-E.2, footnote 9). Count bits are
// symmetric in their inputs, so no input-order search is needed.
func checkPopCount(nl *netlist.Netlist, mgr *bdd.Manager, bld *bdd.Builder, c Class, refs []bdd.Ref) *module.Module {
	if len(c.Outputs) < 2 {
		return nil
	}
	// Build BDD count bits of sum over all support variables.
	var vars []bdd.Ref
	for _, s := range c.Support {
		v, ok := bld.HasVar(s)
		if !ok {
			return nil
		}
		vars = append(vars, mgr.Var(v))
	}
	nBits := 0
	for 1<<uint(nBits) <= len(vars) {
		nBits++
	}
	count := make([]bdd.Ref, nBits)
	for i := range count {
		count[i] = bdd.False
	}
	var err error
	err = mgr.Run(func() {
		for _, x := range vars {
			carry := x
			for i := 0; i < nBits && carry != bdd.False; i++ {
				newBit := mgr.Xor(count[i], carry)
				carry = mgr.And(count[i], carry)
				count[i] = newBit
			}
		}
	})
	if err != nil {
		return nil
	}
	// Match outputs to count bits. The class may also contain internal
	// nodes of the counter (full-support carries), so a subset match with
	// at least two distinct count bits suffices; the module is built from
	// the matched outputs.
	type pair struct {
		bit int
		id  netlist.ID
	}
	var matched []pair
	used := make(map[int]bool)
	for i, r := range refs {
		for j, cb := range count {
			if r == cb && !used[j] {
				used[j] = true
				matched = append(matched, pair{j, c.Outputs[i]})
				break
			}
		}
	}
	if len(matched) < 2 || !used[0] {
		return nil // bit 0 (parity) anchors a genuine population counter
	}
	sort.Slice(matched, func(a, b int) bool { return matched[a].bit < matched[b].bit })
	ordered := make([]netlist.ID, len(matched))
	for i, p := range matched {
		ordered[i] = p.id
	}
	cone := nl.ConeOfAll(ordered)
	m := module.New(module.PopCount, len(ordered), cone.Nodes)
	m.Name = fmt.Sprintf("popcount[%d]", len(c.Support))
	m.SetPort("in", c.Support)
	m.SetPort("out", ordered)
	m.SetPort("count", ordered)
	return m
}
