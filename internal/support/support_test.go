package support

import (
	"testing"

	"netlistre/internal/gen"
	"netlistre/internal/module"
	"netlistre/internal/netlist"
)

func TestClassesGrouping(t *testing.T) {
	nl := netlist.New("c")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	c := nl.AddInput("c")
	g1 := nl.AddGate(netlist.And, a, b)
	g2 := nl.AddGate(netlist.Or, a, b)
	g3 := nl.AddGate(netlist.Xor, g1, c) // support {a,b,c}
	_ = g3
	classes := Classes(nl)
	found := false
	for _, cl := range classes {
		if len(cl.Outputs) == 2 && cl.Outputs[0] == g1 && cl.Outputs[1] == g2 {
			found = true
			if len(cl.Support) != 2 || cl.Support[0] != a || cl.Support[1] != b {
				t.Errorf("support = %v, want [a b]", cl.Support)
			}
		}
	}
	if !found {
		t.Errorf("class {g1,g2} not found: %v", classes)
	}
}

func TestDecoderDetection(t *testing.T) {
	nl := netlist.New("dec")
	sel := gen.InputWord(nl, "s", 3)
	out := gen.Decoder(nl, sel)
	mods := Analyze(nl, Options{})
	var dec *module.Module
	for _, m := range mods {
		if m.Type == module.Decoder {
			dec = m
		}
	}
	if dec == nil {
		t.Fatalf("no decoder found; modules: %d", len(mods))
	}
	if dec.Width != 8 {
		t.Errorf("decoder width = %d, want 8", dec.Width)
	}
	outSet := make(map[netlist.ID]bool)
	for _, o := range dec.Port("out") {
		outSet[o] = true
	}
	for i, o := range out {
		if !outSet[o] {
			t.Errorf("decoder output %d missing from module", i)
		}
	}
	if got := dec.Port("in"); len(got) != 3 {
		t.Errorf("decoder inputs = %v, want the 3 selects", got)
	}
}

func TestDemuxDetection(t *testing.T) {
	// Decoder outputs gated by a data signal: every output implies data.
	nl := netlist.New("demux")
	sel := gen.InputWord(nl, "s", 2)
	data := nl.AddInput("d")
	dec := gen.Decoder(nl, sel)
	for i, o := range dec {
		nl.MarkOutput("y"+string(rune('0'+i)), nl.AddGate(netlist.And, o, data))
	}
	mods := Analyze(nl, Options{})
	var demux *module.Module
	for _, m := range mods {
		if m.Type == module.Demux {
			demux = m
		}
	}
	if demux == nil {
		t.Fatalf("no demux found among %d modules", len(mods))
	}
	if got := demux.Port("data"); len(got) != 1 || got[0] != data {
		t.Errorf("demux data port = %v, want [%d]", got, data)
	}
}

func TestActiveLowDecoder(t *testing.T) {
	// A NAND-based decoder: exactly one output LOW at a time.
	nl := netlist.New("declow")
	sel := gen.InputWord(nl, "s", 2)
	inv := gen.Word{nl.AddGate(netlist.Not, sel[0]), nl.AddGate(netlist.Not, sel[1])}
	for k := 0; k < 4; k++ {
		lits := make([]netlist.ID, 2)
		for i := 0; i < 2; i++ {
			if k>>uint(i)&1 == 1 {
				lits[i] = sel[i]
			} else {
				lits[i] = inv[i]
			}
		}
		nl.MarkOutput("y"+string(rune('0'+k)), nl.AddGate(netlist.Nand, lits...))
	}
	mods := Analyze(nl, Options{})
	foundLow := false
	for _, m := range mods {
		if (m.Type == module.Decoder || m.Type == module.Demux) && m.Attr["polarity"] == "active-low" {
			foundLow = true
		}
	}
	if !foundLow {
		t.Error("active-low decoder not detected")
	}
}

func TestPopCountDetection(t *testing.T) {
	nl := netlist.New("pc")
	w := gen.InputWord(nl, "w", 5)
	cnt := gen.PopCount(nl, w)
	mods := Analyze(nl, Options{})
	var pc *module.Module
	for _, m := range mods {
		if m.Type == module.PopCount {
			pc = m
		}
	}
	if pc == nil {
		t.Fatalf("no popcount found among %d modules", len(mods))
	}
	got := pc.Port("count")
	if len(got) != len(cnt) {
		t.Fatalf("count port = %v, want %d bits", got, len(cnt))
	}
	for i := range cnt {
		if got[i] != cnt[i] {
			t.Errorf("count[%d] = %d, want %d", i, got[i], cnt[i])
		}
	}
}

func TestAdderIsNotMisclassified(t *testing.T) {
	// Adders do NOT have common support across outputs (the paper makes
	// this exact point in Section II-E) and must produce no decoder or
	// popcount modules.
	nl := netlist.New("add")
	a := gen.InputWord(nl, "a", 5)
	b := gen.InputWord(nl, "b", 5)
	gen.RippleAdder(nl, a, b, netlist.Nil)
	for _, m := range Analyze(nl, Options{}) {
		t.Errorf("adder produced %s module", m.Name)
	}
}

func TestMuxIsNotDecoder(t *testing.T) {
	// All mux output bits have different supports (different data bits),
	// so no module should be inferred.
	nl := netlist.New("mux")
	s := nl.AddInput("s")
	a := gen.InputWord(nl, "a", 4)
	b := gen.InputWord(nl, "b", 4)
	gen.Mux2Word(nl, s, a, b)
	for _, m := range Analyze(nl, Options{}) {
		t.Errorf("mux produced %s module", m.Name)
	}
}
