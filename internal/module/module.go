// Package module defines the shared representation of inferred modules: the
// output of every inference algorithm in the portfolio and the input of
// overlap resolution (Section IV) and reporting.
package module

import (
	"fmt"
	"sort"

	"netlistre/internal/netlist"
)

// Type classifies an inferred module.
type Type uint8

// Inferred module types, mirroring the columns of Table 3 in the paper.
const (
	Unknown    Type = iota
	Mux             // multibit multiplexer (common-select aggregation)
	Decoder         // BDD-verified decoder (common-support analysis)
	Demux           // BDD-verified demultiplexer
	PopCount        // BDD-verified population counter
	Adder           // carry-chain aggregation
	Subtractor      // borrow-chain aggregation
	ParityTree      // xor-tree aggregation
	Counter         // LCG topology + SAT/BDD verification
	ShiftRegister
	RAM // register file / RAM array with read & write logic
	MultibitRegister
	WordOp    // QBF-matched word-level operator (add, sub, boolean, shift)
	Gating    // word-wide gating function (common-control and/or slices)
	Fused     // post-processing fusion of compatible modules
	Candidate // unknown bitslice aggregation offered to the analyst
	numTypes
)

var typeNames = [numTypes]string{
	"unknown", "mux", "decoder", "demux", "popcount", "adder", "subtractor",
	"parity-tree", "counter", "shift-register", "ram", "multibit-register",
	"word-op", "gating", "fused", "candidate",
}

func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return "type(?)"
}

// TypeFromString is the inverse of Type.String, used when reconstructing
// modules from a serialized report. Unrecognized names map to Unknown.
func TypeFromString(s string) Type {
	for i, name := range typeNames {
		if name == s {
			return Type(i)
		}
	}
	return Unknown
}

// Module is one inferred high-level component. Elements are the netlist
// nodes (gates and latches) the module covers; coverage accounting and
// overlap resolution operate on this set.
type Module struct {
	Type Type
	// Name is a short human-readable description, e.g. "adder[8]".
	Name string
	// Width is the bit width (number of slices, latches, or outputs,
	// whichever is the natural size measure for the type).
	Width int
	// Elements lists all covered nodes, sorted ascending, without
	// duplicates.
	Elements []netlist.ID
	// Slices optionally partitions part of Elements into per-bit slices
	// for the sliceable ILP formulation. Elements not in any slice are
	// shared among slices (the x_{i0} bucket of Section IV-B.1).
	Slices [][]netlist.ID
	// Ports names the interface words of the module (inputs, outputs,
	// selects) for reporting and downstream analyses.
	Ports map[string][]netlist.ID
	// Attr carries free-form details (e.g. the QBF-matched operation).
	Attr map[string]string
}

// New constructs a module with a deduplicated, sorted element set.
func New(t Type, width int, elements []netlist.ID) *Module {
	m := &Module{Type: t, Width: width}
	m.SetElements(elements)
	m.Name = fmt.Sprintf("%s[%d]", t, width)
	return m
}

// SetElements replaces the element set, deduplicating and sorting.
func (m *Module) SetElements(elements []netlist.ID) {
	seen := make(map[netlist.ID]bool, len(elements))
	out := elements[:0:0]
	for _, e := range elements {
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	m.Elements = out
}

// Size returns the number of covered elements.
func (m *Module) Size() int { return len(m.Elements) }

// Sliceable reports whether the module carries a slice decomposition.
func (m *Module) Sliceable() bool { return len(m.Slices) > 0 }

// SetPort records a named port word.
func (m *Module) SetPort(name string, ids []netlist.ID) {
	if m.Ports == nil {
		m.Ports = make(map[string][]netlist.ID)
	}
	m.Ports[name] = append([]netlist.ID(nil), ids...)
}

// Port returns a named port word (nil when absent).
func (m *Module) Port(name string) []netlist.ID { return m.Ports[name] }

// SetAttr records a free-form attribute.
func (m *Module) SetAttr(key, value string) {
	if m.Attr == nil {
		m.Attr = make(map[string]string)
	}
	m.Attr[key] = value
}

// SharedElements returns the elements not assigned to any slice (meaningful
// only for sliceable modules).
func (m *Module) SharedElements() []netlist.ID {
	if !m.Sliceable() {
		return nil
	}
	inSlice := make(map[netlist.ID]int)
	for si, s := range m.Slices {
		for _, e := range s {
			if prev, ok := inSlice[e]; ok && prev != si {
				inSlice[e] = -1 // in multiple slices: shared
			} else {
				inSlice[e] = si
			}
		}
	}
	var shared []netlist.ID
	for _, e := range m.Elements {
		si, ok := inSlice[e]
		if !ok || si == -1 {
			shared = append(shared, e)
		}
	}
	return shared
}

// CoverageCount returns the number of distinct elements covered by the
// given set of modules.
func CoverageCount(mods []*Module) int {
	seen := make(map[netlist.ID]bool)
	for _, m := range mods {
		for _, e := range m.Elements {
			seen[e] = true
		}
	}
	return len(seen)
}

// Disjoint reports whether no element is covered by two modules, returning
// the first offending element otherwise.
func Disjoint(mods []*Module) (netlist.ID, bool) {
	seen := make(map[netlist.ID]bool)
	for _, m := range mods {
		for _, e := range m.Elements {
			if seen[e] {
				return e, false
			}
			seen[e] = true
		}
	}
	return netlist.Nil, true
}

// CountByType tallies modules per type for Table 3-style reporting.
func CountByType(mods []*Module) map[Type]int {
	out := make(map[Type]int)
	for _, m := range mods {
		out[m.Type]++
	}
	return out
}
