package module

import (
	"testing"

	"netlistre/internal/netlist"
)

func ids(xs ...int) []netlist.ID {
	out := make([]netlist.ID, len(xs))
	for i, x := range xs {
		out[i] = netlist.ID(x)
	}
	return out
}

func TestNewDeduplicatesAndSorts(t *testing.T) {
	m := New(Adder, 4, ids(5, 3, 5, 1, 3))
	want := ids(1, 3, 5)
	if len(m.Elements) != 3 {
		t.Fatalf("elements = %v", m.Elements)
	}
	for i := range want {
		if m.Elements[i] != want[i] {
			t.Errorf("elements[%d] = %d, want %d", i, m.Elements[i], want[i])
		}
	}
	if m.Size() != 3 {
		t.Errorf("size = %d", m.Size())
	}
	if m.Name != "adder[4]" {
		t.Errorf("name = %q", m.Name)
	}
}

func TestSharedElements(t *testing.T) {
	m := New(Mux, 2, ids(1, 2, 3, 9))
	m.Slices = [][]netlist.ID{ids(1, 9), ids(2, 9)}
	shared := m.SharedElements()
	// 9 is in both slices; 3 is in no slice: both shared.
	if len(shared) != 2 || shared[0] != 3 || shared[1] != 9 {
		t.Errorf("shared = %v, want [3 9]", shared)
	}
	if !m.Sliceable() {
		t.Error("module with slices not sliceable")
	}
}

func TestCoverageAndDisjoint(t *testing.T) {
	a := New(Adder, 2, ids(1, 2, 3))
	b := New(Mux, 2, ids(4, 5))
	if got := CoverageCount([]*Module{a, b}); got != 5 {
		t.Errorf("coverage = %d, want 5", got)
	}
	if _, ok := Disjoint([]*Module{a, b}); !ok {
		t.Error("disjoint modules reported overlapping")
	}
	c := New(RAM, 1, ids(3, 6))
	if id, ok := Disjoint([]*Module{a, c}); ok || id != 3 {
		t.Errorf("overlap not detected (id=%d ok=%v)", id, ok)
	}
	if got := CoverageCount([]*Module{a, c}); got != 4 {
		t.Errorf("coverage = %d, want 4", got)
	}
}

func TestPortsAndAttrs(t *testing.T) {
	m := New(Counter, 3, ids(1, 2, 3))
	m.SetPort("q", ids(1, 2, 3))
	m.SetAttr("direction", "up")
	if got := m.Port("q"); len(got) != 3 {
		t.Errorf("port = %v", got)
	}
	if m.Port("missing") != nil {
		t.Error("missing port should be nil")
	}
	if m.Attr["direction"] != "up" {
		t.Error("attr lost")
	}
}

func TestCountByType(t *testing.T) {
	mods := []*Module{New(Adder, 1, nil), New(Adder, 2, nil), New(Mux, 3, nil)}
	counts := CountByType(mods)
	if counts[Adder] != 2 || counts[Mux] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestTypeStrings(t *testing.T) {
	for ty := Unknown; ty < numTypes; ty++ {
		if ty.String() == "" || ty.String() == "type(?)" {
			t.Errorf("type %d has no name", ty)
		}
	}
}
