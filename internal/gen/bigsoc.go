package gen

// BigSoC (Section V-C): a large SoC assembled from seven cores with
// per-core reset inputs, an inter-core interconnect, and "electrical"
// buffering noise (buffers, delay chains, paired inverters) emulating the
// raw synthesized form the paper reduces by ~55% with structural
// simplification.

import (
	"fmt"
	"math/rand"

	"netlistre/internal/netlist"
)

// BigSoCCoreNames lists the constituent cores in datasheet order.
func BigSoCCoreNames() []string {
	return []string{"mips16", "riscfpu", "router", "oc8051", "aemb", "msp430", "usb"}
}

// BigSoC assembles the SoC. Each core's latches are gated by a dedicated
// reset input named rst_<core> (the handle the paper's partitioning uses).
// The returned netlist contains the raw form including electrical noise;
// run simplify.Run to obtain the reduced form.
func BigSoC() *netlist.Netlist {
	return SoC("bigsoc", BigSoCCoreNames(), 4242, 0.22)
}

// SoC assembles an SoC from the named article cores, each behind a
// rst_<core> reset input, joined by inter-core interconnect glue and
// buried under electrical noise (noiseProb 0 skips the noise pass).
// BigSoC is SoC over all seven cores; tests that need a realistically
// structured but affordable multi-core design build a smaller one.
func SoC(name string, cores []string, noiseSeed int64, noiseProb float64) *netlist.Netlist {
	nl := netlist.New(name)

	var coreOutputs []netlist.ID
	for _, core := range cores {
		src, err := Article(core)
		if err != nil {
			panic(err)
		}
		rst := nl.AddInput("rst_" + core)
		outs := importCore(nl, src, core+"_", rst)
		coreOutputs = append(coreOutputs, outs...)
	}

	// Inter-core interconnect (~5% of gates end up in no reset partition):
	// combinational glue reading outputs of several cores.
	for i := 0; i+3 < len(coreOutputs); i += 4 {
		x := nl.AddGate(netlist.Xor, coreOutputs[i], coreOutputs[i+2])
		y := nl.AddGate(netlist.And, coreOutputs[i+1], coreOutputs[i+3])
		nl.MarkOutput(fmt.Sprintf("link%d", i/4), nl.AddGate(netlist.Or, x, y))
	}

	if noiseProb <= 0 {
		return nl
	}
	return AddElectricalNoise(nl, noiseSeed, noiseProb)
}

// importCore copies every node of src into dst with prefixed names and
// gates each latch's next state with the given synchronous reset. It
// returns the IDs (in dst) of src's primary-output drivers.
func importCore(dst *netlist.Netlist, src *netlist.Netlist, prefix string, rst netlist.ID) []netlist.ID {
	m := make(map[netlist.ID]netlist.ID, src.Len())
	var latches []netlist.ID
	nrst := dst.AddGate(netlist.Not, rst)
	for _, id := range src.TopoOrder() {
		node := src.Node(id)
		switch node.Kind {
		case netlist.Input:
			m[id] = dst.AddInput(prefix + src.NameOf(id))
		case netlist.Latch:
			l := dst.AddLatch(nrst) // placeholder D; patched below
			if node.Name != "" {
				dst.SetName(l, prefix+node.Name)
			}
			m[id] = l
			latches = append(latches, id)
		case netlist.Const0, netlist.Const1:
			m[id] = dst.AddConst(node.Kind == netlist.Const1)
		default:
			fan := make([]netlist.ID, len(node.Fanin))
			for i, f := range node.Fanin {
				fan[i] = m[f]
			}
			m[id] = dst.AddGateLike(node, fan...)
		}
	}
	for _, l := range latches {
		d := m[src.Fanin(l)[0]]
		dst.SetLatchD(m[l], dst.AddGate(netlist.And, nrst, d))
	}
	// Register the core's outputs (real SoC cores register their port
	// interfaces); this also places the output cones into the core's reset
	// partition, leaving only the inter-core glue unowned.
	var outs []netlist.ID
	for _, p := range src.Outputs() {
		oreg := dst.AddLatch(dst.AddGate(netlist.And, nrst, m[p.Driver]))
		dst.MarkOutput(prefix+p.Name, oreg)
		outs = append(outs, oreg)
	}
	return outs
}

// AddElectricalNoise rebuilds nl with buffers, delay chains and paired
// inverters randomly interposed on a fraction of the gate-to-gate edges,
// emulating electrically-motivated cells in a physical netlist. Semantics
// are preserved exactly.
func AddElectricalNoise(nl *netlist.Netlist, seed int64, prob float64) *netlist.Netlist {
	out, _ := AddElectricalNoiseMapped(nl, seed, prob)
	return out
}

// AddElectricalNoiseMapped is AddElectricalNoise returning also the
// old-to-new node mapping, so ground-truth labels (and any other
// per-node metadata) can follow the rebuild. Inserted noise cells appear
// in no map entry.
func AddElectricalNoiseMapped(nl *netlist.Netlist, seed int64, prob float64) (*netlist.Netlist, map[netlist.ID]netlist.ID) {
	rng := rand.New(rand.NewSource(seed))
	out := netlist.New(nl.Name)
	m := make(map[netlist.ID]netlist.ID, nl.Len())
	var latches []netlist.ID

	noisy := func(id netlist.ID) netlist.ID {
		for rng.Float64() < prob {
			switch rng.Intn(3) {
			case 0: // buffer
				id = out.AddGate(netlist.Buf, id)
			case 1: // delay chain
				id = out.AddGate(netlist.Buf, out.AddGate(netlist.Buf, id))
			default: // paired inverters
				id = out.AddGate(netlist.Not, out.AddGate(netlist.Not, id))
			}
		}
		return id
	}

	for _, id := range nl.TopoOrder() {
		node := nl.Node(id)
		switch node.Kind {
		case netlist.Input:
			m[id] = out.AddInput(nl.NameOf(id))
		case netlist.Latch:
			l := out.AddLatch(out.AddConst(false))
			if node.Name != "" {
				out.SetName(l, node.Name)
			}
			m[id] = l
			latches = append(latches, id)
		case netlist.Const0, netlist.Const1:
			m[id] = out.AddConst(node.Kind == netlist.Const1)
		default:
			fan := make([]netlist.ID, len(node.Fanin))
			for i, f := range node.Fanin {
				fan[i] = noisy(m[f])
			}
			g := out.AddGateLike(node, fan...)
			if node.Name != "" {
				out.SetName(g, node.Name)
			}
			m[id] = g
		}
	}
	for _, l := range latches {
		out.SetLatchD(m[l], noisy(m[nl.Fanin(l)[0]]))
	}
	for _, p := range nl.Outputs() {
		out.MarkOutput(p.Name, m[p.Driver])
	}
	return out, m
}
