package gen

// VGA-like core with a framebuffer read plane (the structure behind the
// paper's BigSoC VGA case study, Section V-C.3). The frame buffer is read
// through a wide OR-AND plane selected by a one-hot row decode — a shape
// the generic RAM analysis does not cover, motivating the design-specific
// fbscan pass.

import (
	"fmt"

	"netlistre/internal/netlist"
)

// VGACore builds a frame buffer of rows x cols 1-bit cells with:
//   - a row scan counter + decoder producing the one-hot row select,
//   - per-cell write logic (write the selected row from wdata when wren),
//   - an OR-AND read plane: pixel_c = OR_r (rowsel_r & cell_{r,c}).
//
// It returns the netlist and the pixel output word.
func VGACore(rows, cols int) (*netlist.Netlist, Word) {
	if rows&(rows-1) != 0 {
		panic("gen: VGACore rows must be a power of two")
	}
	nl := netlist.New("vga")
	rst := nl.AddInput("rst")
	scanEn := nl.AddInput("scanen")
	wren := nl.AddInput("wren")
	wdata := InputWord(nl, "wd", cols)

	// Row scan counter and its decoder (one-hot row select).
	bits := 0
	for 1<<uint(bits) < rows {
		bits++
	}
	rowctr := Counter(nl, bits, scanEn, rst, false)
	rowsel := Decoder(nl, rowctr)

	// Cell array with row-selected writes.
	cells := make([][]netlist.ID, rows)
	for r := 0; r < rows; r++ {
		we := nl.AddGate(netlist.And, rowsel[r], wren)
		nwe := nl.AddGate(netlist.Not, we)
		cells[r] = make([]netlist.ID, cols)
		for c := 0; c < cols; c++ {
			cells[r][c] = nl.AddLatch(nl.AddConst(false))
		}
		for c := 0; c < cols; c++ {
			nl.SetLatchD(cells[r][c], nl.AddGate(netlist.Or,
				nl.AddGate(netlist.And, we, wdata[c]),
				nl.AddGate(netlist.And, nwe, cells[r][c])))
		}
	}

	// OR-AND read plane.
	pixels := make(Word, cols)
	for c := 0; c < cols; c++ {
		taps := make([]netlist.ID, rows)
		for r := 0; r < rows; r++ {
			taps[r] = nl.AddGate(netlist.And, rowsel[r], cells[r][c])
		}
		pixels[c] = nl.AddGate(netlist.Or, taps...)
		nl.MarkOutput(fmt.Sprintf("pixel%d", c), pixels[c])
	}
	return nl, pixels
}
