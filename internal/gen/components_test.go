package gen

import (
	"math/rand"
	"testing"

	"netlistre/internal/netlist"
)

// wordValue decodes a word from an evaluation result.
func wordValue(vals []bool, w Word) uint64 {
	var v uint64
	for i, b := range w {
		if vals[b] {
			v |= 1 << uint(i)
		}
	}
	return v
}

// setWord writes an integer into an input-word assignment.
func setWord(assign map[netlist.ID]bool, w Word, v uint64) {
	for i, b := range w {
		assign[b] = v>>uint(i)&1 == 1
	}
}

func TestRippleAdder(t *testing.T) {
	nl := netlist.New("add")
	a := InputWord(nl, "a", 6)
	b := InputWord(nl, "b", 6)
	sum, cout := RippleAdder(nl, a, b, netlist.Nil)
	if err := nl.Check(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		av, bv := uint64(rng.Intn(64)), uint64(rng.Intn(64))
		assign := map[netlist.ID]bool{}
		setWord(assign, a, av)
		setWord(assign, b, bv)
		vals := nl.Eval(assign)
		got := wordValue(vals, sum)
		if vals[cout] {
			got |= 64
		}
		if got != av+bv {
			t.Fatalf("%d + %d = %d, want %d", av, bv, got, av+bv)
		}
	}
}

func TestRippleSubtractor(t *testing.T) {
	nl := netlist.New("sub")
	a := InputWord(nl, "a", 6)
	b := InputWord(nl, "b", 6)
	diff, bout := RippleSubtractor(nl, a, b)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		av, bv := uint64(rng.Intn(64)), uint64(rng.Intn(64))
		assign := map[netlist.ID]bool{}
		setWord(assign, a, av)
		setWord(assign, b, bv)
		vals := nl.Eval(assign)
		got := wordValue(vals, diff)
		want := (av - bv) & 63
		if got != want {
			t.Fatalf("%d - %d = %d, want %d", av, bv, got, want)
		}
		if vals[bout] != (bv > av) {
			t.Errorf("borrow(%d,%d) = %v", av, bv, vals[bout])
		}
	}
}

func TestAddSub(t *testing.T) {
	nl := netlist.New("addsub")
	a := InputWord(nl, "a", 5)
	b := InputWord(nl, "b", 5)
	mode := nl.AddInput("mode")
	out, _ := AddSub(nl, a, b, mode)
	for av := uint64(0); av < 32; av += 3 {
		for bv := uint64(0); bv < 32; bv += 5 {
			for _, m := range []bool{false, true} {
				assign := map[netlist.ID]bool{mode: m}
				setWord(assign, a, av)
				setWord(assign, b, bv)
				got := wordValue(nl.Eval(assign), out)
				want := (av + bv) & 31
				if m {
					want = (av - bv) & 31
				}
				if got != want {
					t.Fatalf("mode=%v a=%d b=%d: got %d want %d", m, av, bv, got, want)
				}
			}
		}
	}
}

func TestMuxTreeAndDecoder(t *testing.T) {
	nl := netlist.New("mux")
	sel := InputWord(nl, "s", 2)
	var data []Word
	for i := 0; i < 4; i++ {
		data = append(data, InputWord(nl, string(rune('a'+i)), 3))
	}
	out := MuxTree(nl, sel, data)
	dec := Decoder(nl, sel)
	for s := uint64(0); s < 4; s++ {
		assign := map[netlist.ID]bool{}
		setWord(assign, sel, s)
		for i, d := range data {
			setWord(assign, d, uint64(i+3))
		}
		vals := nl.Eval(assign)
		if got := wordValue(vals, out); got != uint64(s)+3 {
			t.Errorf("mux sel=%d: got %d want %d", s, got, s+3)
		}
		if got := wordValue(vals, dec); got != 1<<s {
			t.Errorf("decoder sel=%d: got %b want %b", s, got, 1<<s)
		}
	}
}

func TestParityAndPopCount(t *testing.T) {
	nl := netlist.New("p")
	w := InputWord(nl, "w", 7)
	par := ParityTree(nl, w)
	cnt := PopCount(nl, w)
	for v := uint64(0); v < 128; v++ {
		assign := map[netlist.ID]bool{}
		setWord(assign, w, v)
		vals := nl.Eval(assign)
		ones := uint64(0)
		for i := 0; i < 7; i++ {
			ones += v >> uint(i) & 1
		}
		if vals[par] != (ones%2 == 1) {
			t.Fatalf("parity(%b) = %v", v, vals[par])
		}
		if got := wordValue(vals, cnt); got != ones {
			t.Fatalf("popcount(%b) = %d, want %d", v, got, ones)
		}
	}
}

func TestComparators(t *testing.T) {
	nl := netlist.New("cmp")
	a := InputWord(nl, "a", 4)
	b := InputWord(nl, "b", 4)
	eq := EqualComparator(nl, a, b)
	eqc := EqualConst(nl, a, 9)
	for av := uint64(0); av < 16; av++ {
		for bv := uint64(0); bv < 16; bv++ {
			assign := map[netlist.ID]bool{}
			setWord(assign, a, av)
			setWord(assign, b, bv)
			vals := nl.Eval(assign)
			if vals[eq] != (av == bv) {
				t.Fatalf("eq(%d,%d) = %v", av, bv, vals[eq])
			}
			if vals[eqc] != (av == 9) {
				t.Fatalf("eqc(%d) = %v", av, vals[eqc])
			}
		}
	}
}

func TestCounterBehaviour(t *testing.T) {
	for _, down := range []bool{false, true} {
		nl := netlist.New("ctr")
		en := nl.AddInput("en")
		rst := nl.AddInput("rst")
		q := Counter(nl, 4, en, rst, down)
		if err := nl.Check(); err != nil {
			t.Fatal(err)
		}
		st := nl.NewState()
		// Reset.
		nl.Step(st, map[netlist.ID]bool{rst: true, en: false})
		read := func() uint64 {
			var v uint64
			for i, b := range q {
				if st[b] {
					v |= 1 << uint(i)
				}
			}
			return v
		}
		if read() != 0 {
			t.Fatal("counter not zero after reset")
		}
		expect := uint64(0)
		for cycle := 0; cycle < 40; cycle++ {
			enabled := cycle%3 != 0
			nl.Step(st, map[netlist.ID]bool{rst: false, en: enabled})
			if enabled {
				if down {
					expect = (expect - 1) & 15
				} else {
					expect = (expect + 1) & 15
				}
			}
			if read() != expect {
				t.Fatalf("down=%v cycle %d: counter = %d, want %d", down, cycle, read(), expect)
			}
		}
	}
}

func TestShiftRegisterBehaviour(t *testing.T) {
	nl := netlist.New("sh")
	en := nl.AddInput("en")
	rst := nl.AddInput("rst")
	sin := nl.AddInput("sin")
	q := ShiftRegister(nl, 5, en, rst, sin)
	st := nl.NewState()
	nl.Step(st, map[netlist.ID]bool{rst: true})
	pattern := []bool{true, false, true, true, false}
	for _, bit := range pattern {
		nl.Step(st, map[netlist.ID]bool{en: true, sin: bit})
	}
	for i := range q {
		// After 5 shifts, q[4] holds pattern[0], q[0] holds pattern[4].
		want := pattern[len(pattern)-1-i]
		if st[q[i]] != want {
			t.Errorf("q[%d] = %v, want %v", i, st[q[i]], want)
		}
	}
	// Hold when disabled.
	before := []bool{st[q[0]], st[q[1]], st[q[2]], st[q[3]], st[q[4]]}
	nl.Step(st, map[netlist.ID]bool{en: false, sin: true})
	for i := range q {
		if st[q[i]] != before[i] {
			t.Errorf("bit %d changed while disabled", i)
		}
	}
}

func TestRegisterFile(t *testing.T) {
	nl := netlist.New("rf")
	waddr := InputWord(nl, "wa", 2)
	raddr := InputWord(nl, "ra", 2)
	wdata := InputWord(nl, "wd", 4)
	we := nl.AddInput("we")
	read, cells := RegisterFile(nl, 4, 4, waddr, wdata, we, raddr)
	if len(cells) != 4 {
		t.Fatal("wrong cell count")
	}
	st := nl.NewState()
	// Write distinct values to each word.
	for wIdx := uint64(0); wIdx < 4; wIdx++ {
		assign := map[netlist.ID]bool{we: true}
		setWord(assign, waddr, wIdx)
		setWord(assign, wdata, wIdx*3+1)
		nl.Step(st, assign)
	}
	// Read them back.
	for rIdx := uint64(0); rIdx < 4; rIdx++ {
		assign := map[netlist.ID]bool{we: false}
		setWord(assign, raddr, rIdx)
		setWord(assign, waddr, 0)
		setWord(assign, wdata, 0)
		vals := nl.Step(st, assign)
		if got := wordValue(vals, read); got != rIdx*3+1 {
			t.Errorf("read[%d] = %d, want %d", rIdx, got, rIdx*3+1)
		}
	}
}

func TestMultibitRegister(t *testing.T) {
	nl := netlist.New("mbr")
	v1 := InputWord(nl, "v1", 4)
	v2 := InputWord(nl, "v2", 4)
	c1 := nl.AddInput("c1")
	c2 := nl.AddInput("c2")
	q := MultibitRegister(nl, []Word{v1, v2}, []netlist.ID{c1, c2})
	st := nl.NewState()
	read := func() uint64 {
		var v uint64
		for i, b := range q {
			if st[b] {
				v |= 1 << uint(i)
			}
		}
		return v
	}
	assign := map[netlist.ID]bool{c1: true, c2: false}
	setWord(assign, v1, 5)
	setWord(assign, v2, 9)
	nl.Step(st, assign)
	if read() != 5 {
		t.Fatalf("after c1 load: %d, want 5", read())
	}
	assign[c1] = false
	nl.Step(st, assign)
	if read() != 5 {
		t.Fatalf("hold failed: %d", read())
	}
	assign[c2] = true
	nl.Step(st, assign)
	if read() != 9 {
		t.Fatalf("after c2 load: %d, want 9", read())
	}
}

func TestRotateAndBitwise(t *testing.T) {
	nl := netlist.New("rot")
	w := InputWord(nl, "w", 8)
	rot := RotateLeft(nl, w, 3)
	inv := BitwiseNot(nl, w)
	assign := map[netlist.ID]bool{}
	setWord(assign, w, 0b10110001)
	vals := nl.Eval(assign)
	if got := wordValue(vals, rot); got != 0b10001101 {
		t.Errorf("rot = %08b", got)
	}
	if got := wordValue(vals, inv); got != 0b01001110 {
		t.Errorf("inv = %08b", got)
	}
}

func TestJohnsonCounterBehaviour(t *testing.T) {
	nl := netlist.New("jc")
	en := nl.AddInput("en")
	rst := nl.AddInput("rst")
	q := JohnsonCounter(nl, 4, en, rst)
	st := nl.NewState()
	nl.Step(st, map[netlist.ID]bool{rst: true})
	// Johnson sequence for 4 bits: 0000, 0001, 0011, 0111, 1111, 1110, ...
	want := []uint64{1, 3, 7, 15, 14, 12, 8, 0, 1}
	for i, w := range want {
		nl.Step(st, map[netlist.ID]bool{en: true})
		var v uint64
		for b, l := range q {
			if st[l] {
				v |= 1 << uint(b)
			}
		}
		if v != w {
			t.Fatalf("step %d: state = %04b, want %04b", i, v, w)
		}
	}
}

func TestGrayCounterBehaviour(t *testing.T) {
	nl := netlist.New("gc")
	en := nl.AddInput("en")
	rst := nl.AddInput("rst")
	q := GrayCounter(nl, 3, en, rst)
	st := nl.NewState()
	nl.Step(st, map[netlist.ID]bool{rst: true})
	prev := uint64(0)
	seen := map[uint64]bool{0: true}
	for i := 0; i < 7; i++ {
		nl.Step(st, map[netlist.ID]bool{en: true})
		var v uint64
		for b, l := range q {
			if st[l] {
				v |= 1 << uint(b)
			}
		}
		// Gray property: exactly one bit flips per step.
		diff := v ^ prev
		if diff == 0 || diff&(diff-1) != 0 {
			t.Fatalf("step %d: %03b -> %03b flips %d bits", i, prev, v, popcount(diff))
		}
		if seen[v] {
			t.Fatalf("state %03b repeated early", v)
		}
		seen[v] = true
		prev = v
	}
}

func popcount(v uint64) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

func TestLFSRBehaviour(t *testing.T) {
	nl := netlist.New("lfsr")
	en := nl.AddInput("en")
	rst := nl.AddInput("rst")
	q := LFSR(nl, 4, []int{3, 2}, en, rst)
	st := nl.NewState()
	nl.Step(st, map[netlist.ID]bool{rst: true})
	seen := map[uint64]int{}
	period := 0
	for i := 0; i < 40; i++ {
		nl.Step(st, map[netlist.ID]bool{en: true})
		var v uint64
		for b, l := range q {
			if st[l] {
				v |= 1 << uint(b)
			}
		}
		if first, ok := seen[v]; ok {
			period = i - first
			break
		}
		seen[v] = i
	}
	if period < 8 {
		t.Errorf("LFSR period = %d, want a long cycle", period)
	}
}
