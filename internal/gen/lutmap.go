package gen

// LutMapped rewrites a gate-level netlist into the FPGA-style LUT-mapped
// equivalent an off-the-shelf technology mapper would hand the analysis:
// every combinational gate becomes a k-input truth-table cell. The mapping
// is deliberately simple and deterministic — one gate, one LUT, with wide
// gates decomposed into balanced same-op trees — because the workload's
// point is that structural gate identities disappear (an AND and a NOR are
// both just masks) while the functional analysis still recovers the same
// modules.
//
// Mapping policy:
//   - Inputs, constants, and latches copy unchanged.
//   - Buf stays Buf. A Buf's single-cube BLIF cover ("1 1") is byte-identical
//     to the Lut1 identity cover, so keeping Buf native makes the
//     Verilog/BLIF round trip unambiguous; it also matches real mappers,
//     which never spend a LUT on a wire.
//   - Not becomes a 1-input LUT (mask 0b01).
//   - Every other gate with <= MaxLutInputs fanins becomes one LUT whose
//     mask tabulates the gate.
//   - Wider gates decompose into chunks of MaxLutInputs combined with the
//     gate's base (non-inverting) op, with the original op — including its
//     inversion, for Nand/Nor/Xnor — applied at the tree root.

import (
	"netlistre/internal/netlist"
)

// gateMask tabulates EvalKind over all 2^k fanin rows.
func gateMask(k netlist.Kind, n int) uint64 {
	var mask uint64
	in := make([]bool, n)
	for row := 0; row < 1<<uint(n); row++ {
		for i := range in {
			in[i] = row>>uint(i)&1 == 1
		}
		if netlist.EvalKind(k, in) {
			mask |= 1 << uint(row)
		}
	}
	return mask
}

// baseOp returns the non-inverting reduction op for a gate kind.
func baseOp(k netlist.Kind) netlist.Kind {
	switch k {
	case netlist.Nand:
		return netlist.And
	case netlist.Nor:
		return netlist.Or
	case netlist.Xnor:
		return netlist.Xor
	}
	return k
}

// LutMapped returns a LUT-mapped copy of src plus the node image map for
// Labels.Remap: each original node maps to the new nodes that realize it
// (several for decomposed wide gates, with the cone output last). The
// transform is purely structural and deterministic; node names, output
// names, and latch feedback are preserved.
func LutMapped(src *netlist.Netlist) (*netlist.Netlist, map[netlist.ID][]netlist.ID) {
	out := netlist.New(src.Name + "_lut")
	img := make(map[netlist.ID][]netlist.ID, src.Len())
	newOf := make([]netlist.ID, src.Len())
	var anyID netlist.ID = netlist.Nil
	for id := netlist.ID(0); int(id) < src.Len(); id++ {
		node := src.Node(id)
		var created []netlist.ID
		switch k := node.Kind; {
		case k == netlist.Input:
			created = []netlist.ID{out.AddInput(node.Name)}
		case k == netlist.Const0 || k == netlist.Const1:
			nid := out.AddConst(k == netlist.Const1)
			if node.Name != "" && out.Node(nid).Name == "" {
				out.SetName(nid, node.Name)
			}
			created = []netlist.ID{nid}
		case k == netlist.Latch:
			// D may reference a later node; patch it in the second pass.
			ph := anyID
			if f := node.Fanin[0]; f < id {
				ph = newOf[f]
			}
			created = []netlist.ID{out.AddLatch(ph)}
		case k == netlist.Buf:
			created = []netlist.ID{out.AddGate(netlist.Buf, newOf[node.Fanin[0]])}
		case k == netlist.Lut:
			// Already mapped: the transform is idempotent.
			fan := mappedFanin(newOf, node.Fanin)
			created = []netlist.ID{out.AddLut(node.Mask, fan...)}
		case k == netlist.Not:
			created = []netlist.ID{out.AddLut(1, newOf[node.Fanin[0]])}
		default:
			created = mapWideGate(out, k, mappedFanin(newOf, node.Fanin))
		}
		nid := created[len(created)-1]
		if node.Name != "" && node.Kind != netlist.Input && node.Kind != netlist.Const0 &&
			node.Kind != netlist.Const1 {
			out.SetName(nid, node.Name)
		}
		newOf[id] = nid
		img[id] = created
		if anyID == netlist.Nil {
			anyID = nid
		}
	}
	for _, l := range src.Latches() {
		out.SetLatchD(newOf[l], newOf[src.Fanin(l)[0]])
	}
	for _, o := range src.Outputs() {
		out.MarkOutput(o.Name, newOf[o.Driver])
	}
	return out, img
}

func mappedFanin(newOf []netlist.ID, fanin []netlist.ID) []netlist.ID {
	fan := make([]netlist.ID, len(fanin))
	for i, f := range fanin {
		fan[i] = newOf[f]
	}
	return fan
}

// mapWideGate lowers one gate to LUTs, decomposing fanins beyond
// MaxLutInputs into a balanced tree of base-op chunks with the original op
// (inversion included) at the root. Returns every created node, output last.
func mapWideGate(out *netlist.Netlist, k netlist.Kind, fan []netlist.ID) []netlist.ID {
	var created []netlist.ID
	base := baseOp(k)
	for len(fan) > netlist.MaxLutInputs {
		var next []netlist.ID
		for i := 0; i < len(fan); i += netlist.MaxLutInputs {
			end := i + netlist.MaxLutInputs
			if end > len(fan) {
				end = len(fan)
			}
			chunk := fan[i:end]
			if len(chunk) == 1 {
				next = append(next, chunk[0])
				continue
			}
			g := out.AddLut(gateMask(base, len(chunk)), chunk...)
			created = append(created, g)
			next = append(next, g)
		}
		fan = next
	}
	root := out.AddLut(gateMask(k, len(fan)), fan...)
	return append(created, root)
}

// LutMappedLabeled builds the named base article, LUT-maps it, and remaps
// its ground-truth labels through the node image map.
func LutMappedLabeled(build func() (*netlist.Netlist, *Labels)) (*netlist.Netlist, *Labels) {
	nl, lab := build()
	mapped, img := LutMapped(nl)
	rl := lab.Remap(func(id netlist.ID) []netlist.ID { return img[id] })
	rl.Design = mapped.Name
	return mapped, rl
}
