package gen

// Trojan injection (Section V-D): parameterized builders for the oc8051
// and eVoter articles with and without the paper's two trojans.
//
//   - eVoter: a backdoor armed by a secret seven-key sequence; once armed,
//     every vote is redirected to a stored candidate. Pressing the
//     sequence again disarms it. The trojan manifests as extra
//     decoders/comparators, two muxes and a multibit register — exactly
//     the modules the paper reports in Table 8.
//   - oc8051: a kill switch triggered by five consecutive XOR
//     instructions; once triggered, the ALU-to-accumulator path is
//     permanently zeroed. It manifests as an extra counter, a gating
//     module and trigger decoders.

import (
	"fmt"
	"math/rand"

	"netlistre/internal/netlist"
)

// OC8051Trojaned builds the oc8051 article with the XOR kill switch.
func OC8051Trojaned() *netlist.Netlist { nl, _ := buildOC8051(true); return nl }

// EVoterTrojaned builds the eVoter article with the key-sequence backdoor.
func EVoterTrojaned() *netlist.Netlist { nl, _ := buildEVoter(true); return nl }

// buildOC8051 builds the 8051-like microcontroller: the 8-bit ALU
// (add/sub/rotate/negate selected by side inputs — the paper's QBF
// example), accumulator, five timers, a small RAM and a heavy share of
// control logic. With trojan set, the XOR kill switch is inserted between
// the ALU and the accumulator.
func buildOC8051(trojan bool) (*netlist.Netlist, *Labels) {
	name := "oc8051"
	if trojan {
		name = "oc8051-trojan"
	}
	nl := netlist.New(name)
	lab := StartRecording(nl)
	defer StopRecording(nl)
	rng := rand.New(rand.NewSource(404))

	// ALU with side inputs: op word selects among add, sub, rot, neg.
	a := InputWord(nl, "acc_in", 8)
	b := InputWord(nl, "opnd", 8)
	mode := nl.AddInput("alumode")
	addsub, _ := AddSub(nl, a, b, mode)
	rot := RotateLeft(nl, a, 1)
	neg := BitwiseNot(nl, a)
	sel := InputWord(nl, "alusel", 2)
	xorw := Bitwise(nl, netlist.Xor, a, b)
	aluOut := MuxTree(nl, sel, []Word{addsub, rot, neg, xorw})

	rst := nl.AddInput("rst")
	ldAlu := nl.AddInput("ldalu")
	ldBus := nl.AddInput("ldbus")

	accSrc := aluOut
	if trojan {
		tj := beginTrojan(nl)
		// Trigger: an XOR instruction is one with alusel == 3 committed to
		// the accumulator.
		xorEv := nl.AddGate(netlist.And, EqualConst(nl, sel, 3), ldAlu)
		notXor := nl.AddGate(netlist.Not, xorEv)
		ctrRst := nl.AddGate(netlist.Or, notXor, rst)
		count := Counter(nl, 3, xorEv, ctrRst, false)
		// Kill switch: sticky latch set when the run length reaches 5.
		trigger := EqualConst(nl, count, 5)
		kill := nl.AddLatch(nl.AddConst(false))
		nrst := nl.AddGate(netlist.Not, rst)
		nl.SetLatchD(kill, nl.AddGate(netlist.And, nrst,
			nl.AddGate(netlist.Or, kill, trigger)))
		// Gating module: zero the ALU result once killed.
		nkill := nl.AddGate(netlist.Not, kill)
		gated := make(Word, len(aluOut))
		for i := range aluOut {
			gated[i] = nl.AddGate(netlist.And, aluOut[i], nkill)
		}
		accSrc = gated
		tj.end()
	}

	// Accumulator: multibit register loading the ALU result or the bus.
	bus := InputWord(nl, "bus", 8)
	acc := MultibitRegister(nl, []Word{accSrc, bus}, []netlist.ID{ldAlu, ldBus})
	MarkOutputs(nl, "acc", acc)

	// Five timers (the paper finds five counters in oc8051).
	for i := 0; i < 5; i++ {
		en := nl.AddInput(fmt.Sprintf("t%den", i))
		width := 8
		if i >= 3 {
			width = 13
		}
		Counter(nl, width, en, rst, false)
	}

	// Internal RAM: 16x8 register file.
	waddr := InputWord(nl, "iramwa", 4)
	raddr := InputWord(nl, "iramra", 4)
	we := nl.AddInput("iramwe")
	read, _ := RegisterFile(nl, 16, 8, waddr, InputWord(nl, "iramwd", 8), we, raddr)
	MarkOutputs(nl, "iram", read)

	// Opcode decoder.
	opc := InputWord(nl, "opcode", 4)
	dec := Decoder(nl, opc)

	// Heavy irregular control (8051s are control-dominated).
	ctl := append(append(Word{}, dec[:10]...), acc[0], acc[7], we)
	controlNoise(nl, rng, ctl, 900, 30)
	return nl, lab
}

// evoterSecret is the backdoor key sequence (seven keypad codes).
var evoterSecret = []uint64{3, 7, 1, 12, 5, 9, 14}

// buildEVoter builds the voting-machine article (based on the design of
// Sturton et al. that the paper evaluates): a keypad decoder, per-candidate
// vote counters incremented by key+confirm, a display mux and a
// control-heavy state machine. With trojan set, the key-sequence backdoor
// is inserted in front of the key decoder.
func buildEVoter(trojan bool) (*netlist.Netlist, *Labels) {
	name := "evoter"
	if trojan {
		name = "evoter-trojan"
	}
	nl := netlist.New(name)
	lab := StartRecording(nl)
	defer StopRecording(nl)
	rng := rand.New(rand.NewSource(808))

	key := InputWord(nl, "key", 4)
	confirm := nl.AddInput("confirm")
	rst := nl.AddInput("rst")

	effKey := key
	if trojan {
		tj := beginTrojan(nl)
		// Sequence detector: a 3-bit progress register advances when the
		// pressed key matches the next secret code, and clears otherwise.
		progress := make(Word, 3)
		for i := range progress {
			progress[i] = nl.AddLatch(nl.AddConst(false))
		}
		// match = key == secret[progress].
		var cmps []Word
		for _, code := range evoterSecret {
			cmps = append(cmps, Word{EqualConst(nl, key, code)})
		}
		cmps = append(cmps, Word{nl.AddConst(false)}) // progress=7: idle
		match := MuxTree(nl, progress, cmps)[0]
		step := nl.AddGate(netlist.And, match, confirm)

		// Next progress: +1 on step, 0 on confirmed mismatch, hold else.
		one := make(Word, 3)
		one[0] = nl.AddConst(true)
		one[1] = nl.AddConst(false)
		one[2] = one[1]
		// A constant +1 on a 3-bit FSM state is not an architectural adder;
		// don't hold the detectors to finding one.
		u := beginUnlabeled(nl)
		inc, _ := RippleAdder(nl, progress, one, netlist.Nil)
		u.end()
		mismatch := nl.AddGate(netlist.And, nl.AddGate(netlist.Not, match), confirm)
		nextP := Mux2Word(nl, step, progress, inc)
		nextP = Mux2Word(nl, mismatch, nextP, Word{one[1], one[1], one[1]})
		nrst := nl.AddGate(netlist.Not, rst)
		for i := range progress {
			nl.SetLatchD(progress[i], nl.AddGate(netlist.And, nrst, nextP[i]))
		}

		// Arming toggle: sequence complete at progress == 6 with a match.
		done := nl.AddGate(netlist.And, EqualConst(nl, progress, 6), step)
		active := nl.AddLatch(nl.AddConst(false))
		nl.SetLatchD(active, nl.AddGate(netlist.And, nrst,
			nl.AddGate(netlist.Xor, active, done)))

		// Stored candidate: the first key pressed after arming.
		stored := Register(nl, key, done)

		// Override: once active, every vote goes to the stored candidate.
		effKey = Mux2Word(nl, active, key, stored)
		tj.end()
	}

	dec := Decoder(nl, effKey)

	// Vote counters: four candidates, 8-bit counts.
	var counts []Word
	for c := 0; c < 4; c++ {
		en := nl.AddGate(netlist.And, dec[c], confirm)
		q := Counter(nl, 8, en, rst, false)
		counts = append(counts, q)
	}

	// Display: select a candidate's count.
	dsel := InputWord(nl, "dsel", 2)
	disp := MuxTree(nl, dsel, counts)
	MarkOutputs(nl, "disp", disp)

	// Ballot register: latches the current key on confirm.
	ballot := Register(nl, effKey, confirm)
	MarkOutputs(nl, "ballot", ballot)

	// Total-votes tally: counts[0] + counts[1] (checked against the
	// machine's public counter in audits).
	tally, _ := RippleAdder(nl, counts[0], counts[1], netlist.Nil)
	MarkOutputs(nl, "tally", tally)

	// Control-heavy state machine.
	ctl := append(append(Word{}, dec[4:10]...), confirm, rst)
	controlNoise(nl, rng, ctl, 300, 16)
	return nl, lab
}
