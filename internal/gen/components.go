// Package gen builds synthetic gate-level circuits: datapath components,
// full test articles structurally equivalent to the paper's benchmarks, the
// BigSoC case study, and the trojan-injected variants. The paper's actual
// netlists are proprietary or synthesized from opencores RTL with a
// commercial flow; these generators reproduce their structural mix
// (replicated datapath bitslices + irregular control logic) so that the
// coverage experiments exercise the same code paths and produce the same
// qualitative shape.
package gen

import (
	"fmt"

	"netlistre/internal/netlist"
)

// Word is an ordered list of nodes forming a multi-bit signal, LSB first.
type Word []netlist.ID

// InputWord adds width named inputs (name0..nameN) and returns them as a
// word.
func InputWord(nl *netlist.Netlist, name string, width int) Word {
	w := make(Word, width)
	for i := range w {
		w[i] = nl.AddInput(fmt.Sprintf("%s%d", name, i))
	}
	return w
}

// FullAdder adds a 1-bit full adder and returns (sum, carry).
func FullAdder(nl *netlist.Netlist, a, b, cin netlist.ID) (netlist.ID, netlist.ID) {
	sum := nl.AddGate(netlist.Xor, a, b, cin)
	carry := nl.AddGate(netlist.Or,
		nl.AddGate(netlist.And, a, b),
		nl.AddGate(netlist.And, b, cin),
		nl.AddGate(netlist.And, cin, a))
	return sum, carry
}

// RippleAdder builds a ripple-carry adder; cin may be netlist.Nil for a
// constant-zero carry-in. It returns the sum word and the carry-out.
func RippleAdder(nl *netlist.Netlist, a, b Word, cin netlist.ID) (Word, netlist.ID) {
	if len(a) != len(b) {
		panic("gen: adder operand width mismatch")
	}
	span := beginComponent(nl)
	carry := cin
	if carry == netlist.Nil {
		carry = nl.AddConst(false)
	}
	sum := make(Word, len(a))
	for i := range a {
		sum[i], carry = FullAdder(nl, a[i], b[i], carry)
	}
	span.end(ClassAdder, len(a), map[string]Word{"a": a, "b": b, "sum": sum})
	return sum, carry
}

// RippleSubtractor builds a - b using full-subtractor slices (difference =
// a^b^bin, borrow = maj(~a, b, bin)). It returns the difference word and
// borrow-out.
func RippleSubtractor(nl *netlist.Netlist, a, b Word) (Word, netlist.ID) {
	if len(a) != len(b) {
		panic("gen: subtractor operand width mismatch")
	}
	span := beginComponent(nl)
	borrow := netlist.ID(nl.AddConst(false))
	diff := make(Word, len(a))
	for i := range a {
		diff[i] = nl.AddGate(netlist.Xor, a[i], b[i], borrow)
		na := nl.AddGate(netlist.Not, a[i])
		borrow = nl.AddGate(netlist.Or,
			nl.AddGate(netlist.And, na, b[i]),
			nl.AddGate(netlist.And, b[i], borrow),
			nl.AddGate(netlist.And, borrow, na))
	}
	span.end(ClassSubtractor, len(a), map[string]Word{"a": a, "b": b, "diff": diff})
	return diff, borrow
}

// AddSub builds a shared add/subtract unit: out = a + b when mode=0 and
// a - b (two's complement) when mode=1.
func AddSub(nl *netlist.Netlist, a, b Word, mode netlist.ID) (Word, netlist.ID) {
	span := beginComponent(nl)
	bx := make(Word, len(b))
	for i := range b {
		bx[i] = nl.AddGate(netlist.Xor, b[i], mode)
	}
	sum, cout := RippleAdder(nl, a, bx, mode)
	// The b operand word is recorded as bx: the raw b never reaches the
	// adder, so bx is the operand a word-recovery pass can actually see.
	span.end(ClassAdder, len(a), map[string]Word{"a": a, "b": bx, "sum": sum})
	return sum, cout
}

// Mux2 builds a 1-bit 2:1 mux: sel ? d1 : d0.
func Mux2(nl *netlist.Netlist, sel, d0, d1 netlist.ID) netlist.ID {
	ns := nl.AddGate(netlist.Not, sel)
	return nl.AddGate(netlist.Or,
		nl.AddGate(netlist.And, sel, d1),
		nl.AddGate(netlist.And, ns, d0))
}

// Mux2Word builds a word-wide 2:1 mux sharing one select.
func Mux2Word(nl *netlist.Netlist, sel netlist.ID, d0, d1 Word) Word {
	if len(d0) != len(d1) {
		panic("gen: mux operand width mismatch")
	}
	span := beginComponent(nl)
	out := make(Word, len(d0))
	ns := nl.AddGate(netlist.Not, sel)
	for i := range d0 {
		out[i] = nl.AddGate(netlist.Or,
			nl.AddGate(netlist.And, sel, d1[i]),
			nl.AddGate(netlist.And, ns, d0[i]))
	}
	span.end(ClassMux, len(d0), map[string]Word{"out": out})
	return out
}

// MuxTree selects among 2^len(sel) data words with a tree of 2:1 muxes.
func MuxTree(nl *netlist.Netlist, sel Word, data []Word) Word {
	if len(data) != 1<<uint(len(sel)) {
		panic(fmt.Sprintf("gen: mux tree needs %d inputs, got %d", 1<<uint(len(sel)), len(data)))
	}
	span := beginComponent(nl)
	layer := data
	for s := 0; s < len(sel); s++ {
		nextLayer := make([]Word, len(layer)/2)
		for i := range nextLayer {
			nextLayer[i] = Mux2Word(nl, sel[s], layer[2*i], layer[2*i+1])
		}
		layer = nextLayer
	}
	span.end(ClassMux, len(data[0]), map[string]Word{"out": layer[0]})
	return layer[0]
}

// Decoder builds a full 2^n output decoder from n select bits. Output k is
// high iff sel == k.
func Decoder(nl *netlist.Netlist, sel Word) Word {
	n := len(sel)
	span := beginComponent(nl)
	inv := make(Word, n)
	for i, s := range sel {
		inv[i] = nl.AddGate(netlist.Not, s)
	}
	out := make(Word, 1<<uint(n))
	for k := range out {
		lits := make([]netlist.ID, n)
		for i := 0; i < n; i++ {
			if k>>uint(i)&1 == 1 {
				lits[i] = sel[i]
			} else {
				lits[i] = inv[i]
			}
		}
		if n == 1 {
			out[k] = nl.AddGate(netlist.Buf, lits[0])
		} else {
			out[k] = nl.AddGate(netlist.And, lits...)
		}
	}
	span.end(ClassDecoder, n, nil)
	return out
}

// ParityTree xors all bits of w pairwise into a single parity output.
func ParityTree(nl *netlist.Netlist, w Word) netlist.ID {
	if len(w) == 0 {
		panic("gen: empty parity tree")
	}
	span := beginComponent(nl)
	layer := append(Word(nil), w...)
	for len(layer) > 1 {
		var nextLayer Word
		for i := 0; i+1 < len(layer); i += 2 {
			nextLayer = append(nextLayer, nl.AddGate(netlist.Xor, layer[i], layer[i+1]))
		}
		if len(layer)%2 == 1 {
			nextLayer = append(nextLayer, layer[len(layer)-1])
		}
		layer = nextLayer
	}
	span.end(ClassParityTree, len(w), nil)
	return layer[0]
}

// EqualComparator returns a single bit that is high iff a == b.
func EqualComparator(nl *netlist.Netlist, a, b Word) netlist.ID {
	eq := make(Word, len(a))
	for i := range a {
		eq[i] = nl.AddGate(netlist.Xnor, a[i], b[i])
	}
	if len(eq) == 1 {
		return eq[0]
	}
	return nl.AddGate(netlist.And, eq...)
}

// EqualConst returns a bit that is high iff w equals the constant k.
func EqualConst(nl *netlist.Netlist, w Word, k uint64) netlist.ID {
	lits := make([]netlist.ID, len(w))
	for i := range w {
		if k>>uint(i)&1 == 1 {
			lits[i] = w[i]
		} else {
			lits[i] = nl.AddGate(netlist.Not, w[i])
		}
	}
	if len(lits) == 1 {
		return lits[0]
	}
	return nl.AddGate(netlist.And, lits...)
}

// PopCount builds a population counter over w, returning the count word.
func PopCount(nl *netlist.Netlist, w Word) Word {
	// Reduce by chaining small adders over (count-so-far, next bit).
	span := beginComponent(nl)
	zero := netlist.ID(nl.AddConst(false))
	count := Word{nl.AddGate(netlist.Buf, w[0])}
	for i := 1; i < len(w); i++ {
		addend := make(Word, len(count))
		addend[0] = w[i]
		for j := 1; j < len(count); j++ {
			addend[j] = zero
		}
		var cout netlist.ID
		count, cout = RippleAdder(nl, count, addend, netlist.Nil)
		// Extend width when the count can overflow.
		if 1<<uint(len(count)) <= i+1 {
			count = append(count, cout)
		}
	}
	span.end(ClassPopCount, len(w), map[string]Word{"count": count})
	return count
}

// Counter builds a width-bit up or down counter with enable and synchronous
// reset, following Equation 1 of the paper with s=0: each bit toggles when
// the counter is enabled and all lower-order bits are 1 (up) or 0 (down).
// It returns the latch word (LSB first).
func Counter(nl *netlist.Netlist, width int, en, rst netlist.ID, down bool) Word {
	span := beginComponent(nl)
	q := make(Word, width)
	for i := range q {
		q[i] = nl.AddLatch(nl.AddConst(false)) // D patched below
	}
	nrst := nl.AddGate(netlist.Not, rst)
	for i := range q {
		// lower = AND of lower-order bits (or their complements for a down
		// counter); empty AND is "1".
		var lower netlist.ID
		switch i {
		case 0:
			lower = en
		case 1:
			b := q[0]
			if down {
				b = nl.AddGate(netlist.Not, q[0])
			}
			lower = nl.AddGate(netlist.And, en, b)
		default:
			lits := make([]netlist.ID, 0, i+1)
			lits = append(lits, en)
			for j := 0; j < i; j++ {
				if down {
					lits = append(lits, nl.AddGate(netlist.Not, q[j]))
				} else {
					lits = append(lits, q[j])
				}
			}
			lower = nl.AddGate(netlist.And, lits...)
		}
		toggled := nl.AddGate(netlist.Xor, q[i], lower)
		nl.SetLatchD(q[i], nl.AddGate(netlist.And, nrst, toggled))
	}
	span.end(ClassCounter, width, map[string]Word{"q": q})
	return q
}

// ShiftRegister builds a width-bit unidirectional shift register with
// enable and synchronous reset following Equation 3 of the paper (s=0):
// bit i loads bit i-1 when enabled, holds otherwise; bit 0 loads serialIn.
// It returns the latch word in shift order.
func ShiftRegister(nl *netlist.Netlist, width int, en, rst, serialIn netlist.ID) Word {
	span := beginComponent(nl)
	q := make(Word, width)
	for i := range q {
		q[i] = nl.AddLatch(nl.AddConst(false))
	}
	nrst := nl.AddGate(netlist.Not, rst)
	for i := range q {
		prev := serialIn
		if i > 0 {
			prev = q[i-1]
		}
		sel := Mux2(nl, en, q[i], prev)
		nl.SetLatchD(q[i], nl.AddGate(netlist.And, nrst, sel))
	}
	span.end(ClassShiftRegister, width, map[string]Word{"q": q})
	return q
}

// Register builds a word-wide register with a write-enable: each bit holds
// unless we is set, in which case it loads d. It returns the latch word.
func Register(nl *netlist.Netlist, d Word, we netlist.ID) Word {
	span := beginComponent(nl)
	q := make(Word, len(d))
	for i := range q {
		q[i] = nl.AddLatch(nl.AddConst(false))
	}
	nwe := nl.AddGate(netlist.Not, we)
	for i := range q {
		nl.SetLatchD(q[i], nl.AddGate(netlist.Or,
			nl.AddGate(netlist.And, we, d[i]),
			nl.AddGate(netlist.And, nwe, q[i])))
	}
	span.end(ClassRegister, len(d), map[string]Word{"q": q})
	return q
}

// MultibitRegister builds the Figure 7 structure: a register that each
// cycle loads one of several source words (selected by one-hot conditions)
// or holds its value. conds[i] selects sources[i]; when no condition is
// set, the register holds.
func MultibitRegister(nl *netlist.Netlist, sources []Word, conds []netlist.ID) Word {
	if len(sources) != len(conds) || len(sources) == 0 {
		panic("gen: MultibitRegister needs one condition per source")
	}
	width := len(sources[0])
	span := beginComponent(nl)
	q := make(Word, width)
	for i := range q {
		q[i] = nl.AddLatch(nl.AddConst(false))
	}
	cur := Word(q)
	for s := range sources {
		cur = Mux2Word(nl, conds[s], cur, sources[s])
	}
	for i := range q {
		nl.SetLatchD(q[i], cur[i])
	}
	span.end(ClassRegister, width, map[string]Word{"q": q})
	return q
}

// RegisterFile builds a words x width register file with one write port
// (waddr/wdata/we) and one read port (raddr), in the Figure 6 style: a
// write decoder gates per-word write-enables driving 2:1 muxes in front of
// the latches, and the read port is a mux tree. words must be a power of
// two matching the address widths.
func RegisterFile(nl *netlist.Netlist, words, width int, waddr Word, wdata Word, we netlist.ID, raddr Word) (read Word, cells []Word) {
	if words != 1<<uint(len(waddr)) || words != 1<<uint(len(raddr)) {
		panic("gen: register file address width mismatch")
	}
	span := beginComponent(nl)
	dec := Decoder(nl, waddr)
	cells = make([]Word, words)
	for w := 0; w < words; w++ {
		wei := nl.AddGate(netlist.And, dec[w], we)
		nwei := nl.AddGate(netlist.Not, wei)
		cells[w] = make(Word, width)
		for b := 0; b < width; b++ {
			cells[w][b] = nl.AddLatch(nl.AddConst(false))
		}
		for b := 0; b < width; b++ {
			nl.SetLatchD(cells[w][b], nl.AddGate(netlist.Or,
				nl.AddGate(netlist.And, wei, wdata[b]),
				nl.AddGate(netlist.And, nwei, cells[w][b])))
		}
	}
	read = MuxTree(nl, raddr, cells)
	span.end(ClassRAM, width, map[string]Word{"read": read})
	return read, cells
}

// RotateLeft builds a constant left-rotation of w by k bits (pure wiring
// plus buffers so the structure is visible as gates).
func RotateLeft(nl *netlist.Netlist, w Word, k int) Word {
	out := make(Word, len(w))
	for i := range w {
		out[(i+k)%len(w)] = nl.AddGate(netlist.Buf, w[i])
	}
	return out
}

// BitwiseNot negates every bit of w.
func BitwiseNot(nl *netlist.Netlist, w Word) Word {
	out := make(Word, len(w))
	for i := range w {
		out[i] = nl.AddGate(netlist.Not, w[i])
	}
	return out
}

// Bitwise applies a 2-input gate kind across two words.
func Bitwise(nl *netlist.Netlist, kind netlist.Kind, a, b Word) Word {
	if len(a) != len(b) {
		panic("gen: bitwise width mismatch")
	}
	out := make(Word, len(a))
	for i := range a {
		out[i] = nl.AddGate(kind, a[i], b[i])
	}
	return out
}

// MarkOutputs declares every bit of w as a primary output named
// name0..nameN.
func MarkOutputs(nl *netlist.Netlist, name string, w Word) {
	for i, b := range w {
		nl.MarkOutput(fmt.Sprintf("%s%d", name, i), b)
	}
}

// JohnsonCounter builds a twisted-ring (Johnson) counter: a shift ring
// whose feedback is the complement of the last stage. Johnson counters are
// NOT plain unidirectional shift registers (the ring closes), and they are
// not binary counters either — a useful negative case for both detectors.
func JohnsonCounter(nl *netlist.Netlist, width int, en, rst netlist.ID) Word {
	q := make(Word, width)
	for i := range q {
		q[i] = nl.AddLatch(nl.AddConst(false))
	}
	nrst := nl.AddGate(netlist.Not, rst)
	feedback := nl.AddGate(netlist.Not, q[width-1])
	for i := range q {
		prev := feedback
		if i > 0 {
			prev = q[i-1]
		}
		sel := Mux2(nl, en, q[i], prev)
		nl.SetLatchD(q[i], nl.AddGate(netlist.And, nrst, sel))
	}
	return q
}

// GrayCounter builds a counter that steps through the Gray-code sequence:
// the state register holds gray(n) and the next state is gray(n+1),
// computed by decoding to binary, incrementing, and re-encoding. Its
// latch-to-latch topology resembles a binary counter's, but the toggle
// conditions differ — the functional check must reject it.
func GrayCounter(nl *netlist.Netlist, width int, en, rst netlist.ID) Word {
	q := make(Word, width)
	for i := range q {
		q[i] = nl.AddLatch(nl.AddConst(false))
	}
	// binary[i] = q[i] ^ q[i+1] ^ ... ^ q[width-1].
	bin := make(Word, width)
	acc := netlist.ID(nl.AddConst(false))
	for i := width - 1; i >= 0; i-- {
		acc = nl.AddGate(netlist.Xor, acc, q[i])
		bin[i] = acc
	}
	one := make(Word, width)
	one[0] = nl.AddConst(true)
	for i := 1; i < width; i++ {
		one[i] = nl.AddConst(false)
	}
	inc, _ := RippleAdder(nl, bin, one, netlist.Nil)
	// gray(n+1)[i] = inc[i] ^ inc[i+1].
	gray := make(Word, width)
	for i := 0; i < width-1; i++ {
		gray[i] = nl.AddGate(netlist.Xor, inc[i], inc[i+1])
	}
	gray[width-1] = nl.AddGate(netlist.Buf, inc[width-1])
	nrst := nl.AddGate(netlist.Not, rst)
	for i := range q {
		sel := Mux2(nl, en, q[i], gray[i])
		nl.SetLatchD(q[i], nl.AddGate(netlist.And, nrst, sel))
	}
	return q
}

// LFSR builds a Fibonacci linear-feedback shift register with the given
// tap positions (xor of taps feeds stage 0). The interior stages form a
// plain shift chain; the feedback makes the whole structure a ring.
func LFSR(nl *netlist.Netlist, width int, taps []int, en, rst netlist.ID) Word {
	q := make(Word, width)
	for i := range q {
		q[i] = nl.AddLatch(nl.AddConst(false))
	}
	fb := q[taps[0]]
	for _, t := range taps[1:] {
		fb = nl.AddGate(netlist.Xor, fb, q[t])
	}
	// Invert the feedback so the all-zero state is not absorbing.
	fb = nl.AddGate(netlist.Not, fb)
	nrst := nl.AddGate(netlist.Not, rst)
	for i := range q {
		prev := fb
		if i > 0 {
			prev = q[i-1]
		}
		sel := Mux2(nl, en, q[i], prev)
		nl.SetLatchD(q[i], nl.AddGate(netlist.And, nrst, sel))
	}
	return q
}
